#include "sim/systolic.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "render/mlp.hpp"
#include "render/embedding.hpp"

namespace spnerf {
namespace {

TEST(Systolic, TimingSingleTile) {
  const SystolicArray arr({64, 64, 8});
  const LayerTiming t = arr.TimeGemm(64, 39, 64);
  EXPECT_EQ(t.cycles, 39u + 8u);  // one tile: K + overhead
  EXPECT_EQ(t.macs, 64u * 39 * 64);
}

TEST(Systolic, TimingTilesOverOutputs) {
  const SystolicArray arr({64, 64, 8});
  // 128 outputs on a 64-wide array: two tiles.
  EXPECT_EQ(arr.TimeGemm(64, 39, 128).cycles, 2u * (39 + 8));
  // 65 rows: two row tiles as well.
  EXPECT_EQ(arr.TimeGemm(65, 39, 128).cycles, 4u * (39 + 8));
}

TEST(Systolic, UtilizationFullTileIsHigh) {
  const SystolicArray arr({64, 64, 8});
  const LayerTiming t = arr.TimeGemm(64, 128, 64);
  EXPECT_GT(t.utilization, 0.9);
  EXPECT_LE(t.utilization, 1.0);
}

TEST(Systolic, UtilizationSmallOutputLayerIsLow) {
  // The 3-wide RGB layer badly underfills a 64x64 array — a real effect the
  // cycle model must capture.
  const SystolicArray arr({64, 64, 8});
  const LayerTiming t = arr.TimeGemm(64, 128, 3);
  EXPECT_LT(t.utilization, 0.06);
}

TEST(Systolic, MlpBatchCyclesComposition) {
  const SystolicArray arr({64, 64, 8});
  const u64 expect = arr.TimeGemm(64, kMlpInputDim, kMlpHiddenDim).cycles +
                     arr.TimeGemm(64, kMlpHiddenDim, kMlpHiddenDim).cycles +
                     arr.TimeGemm(64, kMlpHiddenDim, kMlpOutputDim).cycles;
  EXPECT_EQ(arr.CyclesPerMlpBatch(64, InputLayout::kBlockCirculant), expect);
}

TEST(Systolic, FeedBoundWhenComputeTiny) {
  // A 1x1 "array" still computes, but with a huge array and tiny K the
  // input feed could dominate; verify max(feed, compute) semantics.
  const SystolicArray arr({256, 256, 0});
  const u64 cycles = arr.CyclesPerMlpBatch(64, InputLayout::kPaddedNaive);
  const u64 compute = arr.TimeGemm(64, 39, 128).cycles +
                      arr.TimeGemm(64, 128, 128).cycles +
                      arr.TimeGemm(64, 128, 3).cycles;
  const u64 feed = 128;  // 64 vectors x 2 cycles
  EXPECT_EQ(cycles, std::max(compute, feed));
}

TEST(Systolic, NaiveLayoutNeverFaster) {
  const SystolicArray arr({64, 64, 8});
  EXPECT_LE(arr.CyclesPerMlpBatch(64, InputLayout::kBlockCirculant),
            arr.CyclesPerMlpBatch(64, InputLayout::kPaddedNaive));
}

TEST(Systolic, BiggerArrayNeverSlower) {
  const SystolicArray small({32, 32, 8});
  const SystolicArray big({64, 64, 8});
  EXPECT_LE(big.CyclesPerMlpBatch(64, InputLayout::kBlockCirculant),
            small.CyclesPerMlpBatch(64, InputLayout::kBlockCirculant));
}

TEST(Systolic, InvalidDimsThrow) {
  EXPECT_THROW(SystolicArray({0, 64, 8}), SpnerfError);
  const SystolicArray arr({64, 64, 8});
  EXPECT_THROW((void)arr.TimeGemm(0, 1, 1), SpnerfError);
}

TEST(Systolic, FunctionalLayerMatchesMlpFp16) {
  // The simulator's FP16 GEMM must be bit-identical to the renderer's
  // ForwardFp16 — the accumulation order is the same.
  const Mlp mlp = Mlp::Random(3);
  Rng rng(4);
  const int batch = 8;
  std::vector<float> in(static_cast<std::size_t>(batch) * kMlpInputDim);
  for (auto& v : in) v = rng.Uniform(-1.f, 1.f);

  // Layer 1 through the simulator:
  std::vector<float> h1 = SystolicArray::ComputeLayerFp16(
      in, batch, kMlpInputDim, mlp.W(0), mlp.B(0), kMlpHiddenDim, true);
  std::vector<float> h2 = SystolicArray::ComputeLayerFp16(
      h1, batch, kMlpHiddenDim, mlp.W(1), mlp.B(1), kMlpHiddenDim, true);
  std::vector<float> out = SystolicArray::ComputeLayerFp16(
      h2, batch, kMlpHiddenDim, mlp.W(2), mlp.B(2), kMlpOutputDim, false);

  for (int b = 0; b < batch; ++b) {
    std::array<float, kMlpInputDim> sample{};
    for (int i = 0; i < kMlpInputDim; ++i) {
      sample[static_cast<std::size_t>(i)] =
          in[static_cast<std::size_t>(b) * kMlpInputDim + static_cast<std::size_t>(i)];
    }
    const Vec3f rgb = mlp.ForwardFp16(sample);
    // ForwardFp16 applies sigmoid; undo it by comparing pre-sigmoid via the
    // logit of the returned value.
    for (int c = 0; c < 3; ++c) {
      const float pre =
          out[static_cast<std::size_t>(b) * kMlpOutputDim + static_cast<std::size_t>(c)];
      const float expect = 1.0f / (1.0f + std::exp(-pre));
      EXPECT_NEAR(rgb[c], expect, 1e-6f) << "batch " << b << " ch " << c;
    }
  }
}

TEST(Systolic, FunctionalShapeMismatchThrows) {
  std::vector<float> in(10), w(10), b(2);
  EXPECT_THROW(SystolicArray::ComputeLayerFp16(in, 2, 5, w, b, 3, true),
               SpnerfError);
}

class ArraySizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ArraySizeSweep, CyclesShrinkWithArraySize) {
  const int dim = GetParam();
  const SystolicArray arr({dim, dim, 8});
  const u64 cycles = arr.CyclesPerMlpBatch(64, InputLayout::kBlockCirculant);
  // Total MACs / array capacity is a lower bound.
  const double lower = static_cast<double>(64ull * Mlp::MacsPerSample()) /
                       (static_cast<double>(dim) * dim);
  EXPECT_GE(static_cast<double>(cycles), lower);
}

INSTANTIATE_TEST_SUITE_P(Dims, ArraySizeSweep, ::testing::Values(16, 32, 64, 128));

}  // namespace
}  // namespace spnerf
