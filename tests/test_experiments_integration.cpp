// Experiment-runner integration tests at reduced scale: every figure/table
// runner must produce rows with the paper's qualitative shape.
#include "core/experiments.hpp"

#include <gtest/gtest.h>

namespace spnerf {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.scenes = {SceneId::kMaterials, SceneId::kMic};
  cfg.resolution_override = 56;
  cfg.psnr_image_size = 40;
  cfg.tile_size = 32;
  cfg.vqrf.codebook_size = 256;
  cfg.vqrf.kmeans_iterations = 3;
  cfg.spnerf.subgrid_count = 16;
  cfg.spnerf.table_size = 8192;
  return cfg;
}

TEST(Experiments, SparsityRowsInBand) {
  const auto rows = RunSparsity(SmallConfig());
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) {
    EXPECT_GT(r.nonzero_fraction, 0.005) << r.scene;
    EXPECT_LT(r.nonzero_fraction, 0.10) << r.scene;
    EXPECT_EQ(r.total_voxels, 56u * 56 * 56);
    EXPECT_NEAR(static_cast<double>(r.nonzero_voxels) /
                    static_cast<double>(r.total_voxels),
                r.nonzero_fraction, 1e-12);
  }
}

TEST(Experiments, MemoryRowsShowReduction) {
  const auto rows = RunMemory(SmallConfig());
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) {
    EXPECT_GT(r.reduction, 3.0) << r.scene;  // small grids reduce less
    EXPECT_EQ(r.spnerf_bytes, r.hash_table_bytes + r.bitmap_bytes +
                                  r.codebook_bytes + r.true_grid_bytes + 8);
    EXPECT_NEAR(r.reduction,
                static_cast<double>(r.vqrf_restored_bytes) /
                    static_cast<double>(r.spnerf_bytes),
                1e-9);
  }
}

TEST(Experiments, PsnrRowsHavePaperShape) {
  const auto rows = RunPsnr(SmallConfig());
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) {
    // post-mask ~ VQRF >> pre-mask (Fig 6(b)).
    EXPECT_GT(r.spnerf_postmask_psnr, r.spnerf_premask_psnr + 4.0) << r.scene;
    EXPECT_GT(r.spnerf_postmask_psnr, r.vqrf_psnr - 4.0) << r.scene;
    EXPECT_GE(r.build_collision_rate, 0.0);
    EXPECT_LE(r.nonzero_alias_rate, r.build_collision_rate + 1e-9);
  }
}

TEST(Experiments, TableSweepSaturates) {
  ExperimentConfig cfg = SmallConfig();
  cfg.scenes = {SceneId::kDrums};
  cfg.resolution_override = 96;
  cfg.psnr_image_size = 64;
  const auto pts = RunTableSweep(cfg, 16, {256u, 4096u, 65536u});
  ASSERT_EQ(pts.size(), 3u);
  // PSNR improves with table size (Fig 7(b) rising curve)...
  EXPECT_GT(pts[2].mean_psnr, pts[0].mean_psnr + 1.0);
  // ...while alias rate falls and memory grows.
  EXPECT_LT(pts[2].alias_rate, pts[0].alias_rate);
  EXPECT_GT(pts[2].spnerf_bytes, pts[0].spnerf_bytes);
}

TEST(Experiments, SubgridSweepImprovesPsnr) {
  ExperimentConfig cfg = SmallConfig();
  cfg.scenes = {SceneId::kMaterials};
  cfg.psnr_image_size = 32;
  const auto pts = RunSubgridSweep(cfg, {1, 8, 32}, 2048);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_GT(pts[2].mean_psnr, pts[0].mean_psnr);  // Fig 7(a) rising curve
  EXPECT_LT(pts[2].alias_rate, pts[0].alias_rate);
}

TEST(Experiments, RuntimeBreakdownMatchesFig2a) {
  const auto rows = RunRuntimeBreakdown(SmallConfig());
  ASSERT_EQ(rows.size(), 3u);  // A100, ONX, XNX
  double a100_mem = 0, onx_mem = 0, xnx_mem = 0;
  for (const auto& r : rows) {
    EXPECT_NEAR(r.memory_share + r.compute_share + r.overhead_share, 1.0,
                1e-6);
    if (r.platform == "A100") a100_mem = r.memory_share;
    if (r.platform == "ONX") onx_mem = r.memory_share;
    if (r.platform == "XNX") xnx_mem = r.memory_share;
  }
  // Edge platforms spend a multiple of the A100's share on memory.
  EXPECT_GT(xnx_mem / a100_mem, 2.5);
  EXPECT_GT(onx_mem / a100_mem, 2.5);
}

TEST(Experiments, HardwareComparisonShape) {
  const auto rows = RunHardwareComparison(SmallConfig());
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) {
    // SpNeRF is orders of magnitude faster than both edge GPUs (Fig 8).
    EXPECT_GT(r.speedup_vs_xnx, 10.0) << r.scene;
    EXPECT_GT(r.speedup_vs_onx, 5.0) << r.scene;
    // XNX speedup exceeds ONX speedup (ONX is the faster baseline).
    EXPECT_GT(r.speedup_vs_xnx, r.speedup_vs_onx) << r.scene;
    // Energy-efficiency gains exceed speedups (edge GPUs burn 20-25 W).
    EXPECT_GT(r.energy_eff_gain_vs_xnx, r.speedup_vs_xnx) << r.scene;
    EXPECT_GT(r.sim.fps, 1.0);
  }
}

TEST(Experiments, DesignReportAssemblesTableII) {
  const ExperimentConfig cfg = SmallConfig();
  const auto rows = RunHardwareComparison(cfg);
  const DesignReport rep = MakeDesignReport(cfg, rows);
  ASSERT_EQ(rep.table2.size(), 3u);
  EXPECT_EQ(rep.table2[2].name, "SpNeRF (Ours)");
  EXPECT_NEAR(rep.table2[2].sram_mb, 0.61, 0.01);
  EXPECT_GT(rep.mean_fps, 0.0);
  EXPECT_GT(rep.power.total_w, 0.5);
  EXPECT_NEAR(rep.area.total_mm2, 7.7, 0.8);
  // The small-scale workload still shows the Fig 9(b) shape.
  EXPECT_GT(rep.power.SystolicShare(), 0.3);
}

TEST(Experiments, MeanOfHelper) {
  EXPECT_DOUBLE_EQ(MeanOf({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(MeanOf({}), 0.0);
}

TEST(Experiments, MakeDesignReportEmptyThrows) {
  EXPECT_THROW(MakeDesignReport(SmallConfig(), {}), SpnerfError);
}

}  // namespace
}  // namespace spnerf
