#include "sim/accelerator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spnerf {
namespace {

/// A representative 800x800 frame workload (hand-authored so the simulator
/// can be tested without building a scene).
FrameWorkload TypicalWorkload() {
  FrameWorkload w;
  w.scene = "synthetic";
  w.rays = 640000;
  w.samples = 12'000'000;
  w.coarse_skips = 9'000'000;
  w.mlp_evals = 2'000'000;
  w.table_bytes = 64ull * 32768 * 26 / 8;  // K=64, T=32k
  w.bitmap_bytes = 512000;
  w.codebook_bytes = 4096 * 12;
  w.true_grid_bytes = 300000;
  w.weight_bytes = 43779;
  w.subgrid_count = 64;
  w.bitmap_zero_frac = 0.55;
  w.codebook_frac = 0.36;
  w.true_grid_frac = 0.09;
  return w;
}

TEST(Accelerator, SimulatesTypicalFrame) {
  const AcceleratorSim sim;
  const SimResult r = sim.SimulateFrame(TypicalWorkload());
  EXPECT_GT(r.fps, 10.0);
  EXPECT_LT(r.fps, 500.0);
  EXPECT_GT(r.frame_cycles, 0u);
  EXPECT_NEAR(r.frame_seconds, static_cast<double>(r.frame_cycles) * 1e-9,
              1e-12);
  EXPECT_EQ(r.scene, "synthetic");
}

TEST(Accelerator, FrameIsMaxOfStagesPlusFill) {
  const AcceleratorSim sim;
  const SimResult r = sim.SimulateFrame(TypicalWorkload());
  const u64 steady = std::max({r.sgpu_cycles, r.mlp_cycles, r.dram_cycles});
  EXPECT_EQ(r.frame_cycles, steady + r.fill_cycles);
  EXPECT_FALSE(r.bottleneck.empty());
}

TEST(Accelerator, MlpBoundForEvalHeavyFrames) {
  FrameWorkload w = TypicalWorkload();
  w.mlp_evals = 5'000'000;
  const AcceleratorSim sim;
  const SimResult r = sim.SimulateFrame(w);
  EXPECT_EQ(r.bottleneck, "mlp-systolic");
  EXPECT_GE(r.mlp_cycles, r.sgpu_cycles);
}

TEST(Accelerator, SgpuBoundForSampleHeavyFrames) {
  FrameWorkload w = TypicalWorkload();
  w.samples = 60'000'000;
  w.mlp_evals = 100'000;
  // Sample-heavy frames traverse mostly empty space: nearly every vertex
  // lookup is answered by the bitmap, so DRAM sees few true-grid fetches.
  w.bitmap_zero_frac = 0.97;
  w.codebook_frac = 0.025;
  w.true_grid_frac = 0.005;
  const AcceleratorSim sim;
  const SimResult r = sim.SimulateFrame(w);
  EXPECT_EQ(r.bottleneck, "sgpu");
}

TEST(Accelerator, MoreEvalsMoreCyclesAndEnergy) {
  const AcceleratorSim sim;
  FrameWorkload w = TypicalWorkload();
  const SimResult base = sim.SimulateFrame(w);
  w.mlp_evals *= 2;
  const SimResult heavy = sim.SimulateFrame(w);
  EXPECT_GT(heavy.mlp_cycles, base.mlp_cycles);
  EXPECT_GT(heavy.ledger.systolic_j, base.ledger.systolic_j * 1.9);
}

TEST(Accelerator, SystolicEnergyDominates) {
  // Fig 9(b): "the systolic array accounts for the dominant portion of
  // overall power consumption".
  const AcceleratorSim sim;
  const SimResult r = sim.SimulateFrame(TypicalWorkload());
  EXPECT_GT(r.power.systolic_w, r.power.sram_w);
  EXPECT_GT(r.power.systolic_w, r.power.sgpu_logic_w);
  EXPECT_GT(r.power.systolic_w, r.power.dram_w);
  EXPECT_GT(r.power.SystolicShare(), 0.4);
}

TEST(Accelerator, SramIsSmallAreaFraction) {
  // Fig 9(a): "on-chip SRAM occupies only a small fraction of the area".
  const AcceleratorSim sim;
  const SimResult r = sim.SimulateFrame(TypicalWorkload());
  EXPECT_LT(r.area.SramShare(), 0.10);
  EXPECT_NEAR(r.area.total_mm2, 7.7, 0.8);  // Table II: 7.7 mm^2
}

TEST(Accelerator, SramBudgetMatchesTableII) {
  const AcceleratorConfig cfg;
  // 571 KB SGPU + 58 KB MLP buffers = 0.61 MB (paper V-C / Table II).
  EXPECT_EQ(cfg.inventory.SgpuSramBytes(), 571u * 1024);
  EXPECT_EQ(cfg.inventory.MlpSramBytes(), 58u * 1024);
  EXPECT_NEAR(static_cast<double>(cfg.inventory.TotalSramBytes()) / 1048576.0,
              0.61, 0.01);
}

TEST(Accelerator, DramTrafficIncludesAllStructures) {
  const AcceleratorSim sim;
  const FrameWorkload w = TypicalWorkload();
  const SimResult r = sim.SimulateFrame(w);
  const u64 stream = w.table_bytes + w.bitmap_bytes + w.codebook_bytes +
                     w.weight_bytes;
  EXPECT_GE(r.dram.bytes_read, stream);
  EXPECT_GE(r.dram.bytes_written, w.OutputBytes());
}

TEST(Accelerator, TrueGridCacheHitReducesTraffic) {
  AcceleratorConfig hi;
  hi.true_grid_cache_hit = 0.95;
  AcceleratorConfig lo;
  lo.true_grid_cache_hit = 0.05;
  const FrameWorkload w = TypicalWorkload();
  const SimResult rh = AcceleratorSim(hi).SimulateFrame(w);
  const SimResult rl = AcceleratorSim(lo).SimulateFrame(w);
  EXPECT_LT(rh.dram.bytes_read, rl.dram.bytes_read);
}

TEST(Accelerator, BlockCirculantNoSlowerThanNaive) {
  AcceleratorConfig bc;
  bc.input_layout = InputLayout::kBlockCirculant;
  AcceleratorConfig naive;
  naive.input_layout = InputLayout::kPaddedNaive;
  const FrameWorkload w = TypicalWorkload();
  EXPECT_LE(AcceleratorSim(bc).SimulateFrame(w).mlp_cycles,
            AcceleratorSim(naive).SimulateFrame(w).mlp_cycles);
}

TEST(Accelerator, SlowerDramLengthensDramPhase) {
  AcceleratorConfig fast;
  fast.dram = Lpddr4_3200();
  AcceleratorConfig slow;
  slow.dram = Lpddr4_1600();
  const FrameWorkload w = TypicalWorkload();
  EXPECT_GT(AcceleratorSim(slow).SimulateFrame(w).dram_cycles,
            AcceleratorSim(fast).SimulateFrame(w).dram_cycles);
}

TEST(Accelerator, DramHiddenBehindComputeAtDesignPoint) {
  // The headline architectural claim: streaming the compact encoded model
  // never bottlenecks the pipeline at LPDDR4-3200.
  const AcceleratorSim sim;
  const SimResult r = sim.SimulateFrame(TypicalWorkload());
  EXPECT_LT(r.dram_cycles, std::max(r.mlp_cycles, r.sgpu_cycles));
}

TEST(Accelerator, PowerNearPaperDesignPoint) {
  const AcceleratorSim sim;
  const SimResult r = sim.SimulateFrame(TypicalWorkload());
  EXPECT_GT(r.power.total_w, 1.5);
  EXPECT_LT(r.power.total_w, 4.5);  // Table II: 3 W
}

TEST(Accelerator, DeterministicAcrossRuns) {
  const AcceleratorSim sim;
  const SimResult a = sim.SimulateFrame(TypicalWorkload());
  const SimResult b = sim.SimulateFrame(TypicalWorkload());
  EXPECT_EQ(a.frame_cycles, b.frame_cycles);
  EXPECT_EQ(a.dram.bytes_read, b.dram.bytes_read);
  EXPECT_DOUBLE_EQ(a.ledger.TotalJ(), b.ledger.TotalJ());
}

TEST(Accelerator, EmptyWorkloadThrows) {
  const AcceleratorSim sim;
  const FrameWorkload empty;
  EXPECT_THROW(sim.SimulateFrame(empty), SpnerfError);
}

TEST(Accelerator, UtilizationsAreInUnitRange) {
  const AcceleratorSim sim;
  const SimResult r = sim.SimulateFrame(TypicalWorkload());
  EXPECT_GT(r.sgpu_lane_utilization, 0.0);
  EXPECT_LE(r.sgpu_lane_utilization, 1.0);
  EXPECT_GT(r.systolic_utilization, 0.0);
  EXPECT_LE(r.systolic_utilization, 1.0);
}

class LaneSweep : public ::testing::TestWithParam<int> {};

TEST_P(LaneSweep, MoreLanesNeverSlower) {
  AcceleratorConfig narrow;
  narrow.inventory.sgpu_lanes = GetParam();
  AcceleratorConfig wide;
  wide.inventory.sgpu_lanes = GetParam() * 2;
  FrameWorkload w = TypicalWorkload();
  w.samples = 50'000'000;  // make the SGPU the constraint
  w.mlp_evals = 200'000;
  EXPECT_GE(AcceleratorSim(narrow).SimulateFrame(w).frame_cycles,
            AcceleratorSim(wide).SimulateFrame(w).frame_cycles);
}

INSTANTIATE_TEST_SUITE_P(Lanes, LaneSweep, ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace spnerf
