#include "grid/dense_grid.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {
namespace {

TEST(GridDims, FlattenUnflattenRoundTrip) {
  const GridDims d{5, 7, 11};
  for (int x = 0; x < d.nx; ++x) {
    for (int y = 0; y < d.ny; ++y) {
      for (int z = 0; z < d.nz; ++z) {
        const Vec3i p{x, y, z};
        EXPECT_EQ(d.Unflatten(d.Flatten(p)), p);
      }
    }
  }
}

TEST(GridDims, FlattenIsXMajor) {
  // Consecutive x values must be separated by ny*nz so x-partitioned
  // subgrids are contiguous index ranges (the preprocessing step depends
  // on this).
  const GridDims d{4, 3, 5};
  EXPECT_EQ(d.Flatten({1, 0, 0}) - d.Flatten({0, 0, 0}),
            static_cast<VoxelIndex>(d.ny) * d.nz);
  EXPECT_EQ(d.Flatten({0, 1, 0}) - d.Flatten({0, 0, 0}),
            static_cast<VoxelIndex>(d.nz));
  EXPECT_EQ(d.Flatten({0, 0, 1}) - d.Flatten({0, 0, 0}), 1u);
}

TEST(GridDims, ContainsChecksBounds) {
  const GridDims d{2, 2, 2};
  EXPECT_TRUE(d.Contains({0, 0, 0}));
  EXPECT_TRUE(d.Contains({1, 1, 1}));
  EXPECT_FALSE(d.Contains({2, 0, 0}));
  EXPECT_FALSE(d.Contains({0, -1, 0}));
}

TEST(GridDims, VoxelCount) {
  EXPECT_EQ((GridDims{10, 20, 30}).VoxelCount(), 6000u);
  EXPECT_EQ((GridDims{160, 160, 160}).VoxelCount(), 4096000u);
}

TEST(DenseGrid, StartsAllZero) {
  DenseGrid g({4, 4, 4});
  EXPECT_EQ(g.CountNonZero(), 0u);
  EXPECT_EQ(g.NonZeroFraction(), 0.0);
  EXPECT_TRUE(g.NonZeroIndices().empty());
}

TEST(DenseGrid, SetAndGetVoxel) {
  DenseGrid g({4, 4, 4});
  VoxelData v;
  v.density = 2.5f;
  v.features[0] = 1.0f;
  v.features[11] = -0.5f;
  g.SetVoxel({1, 2, 3}, v);
  const VoxelData out = g.Voxel({1, 2, 3});
  EXPECT_EQ(out.density, 2.5f);
  EXPECT_EQ(out.features[0], 1.0f);
  EXPECT_EQ(out.features[11], -0.5f);
  EXPECT_EQ(g.CountNonZero(), 1u);
}

TEST(DenseGrid, NonZeroDetectsFeatureOnlyVoxels) {
  DenseGrid g({2, 2, 2});
  VoxelData v;
  v.density = 0.0f;
  v.features[5] = 0.1f;  // zero density but non-zero feature
  g.SetVoxel({0, 0, 1}, v);
  EXPECT_TRUE(g.IsNonZero(g.Dims().Flatten({0, 0, 1})));
  EXPECT_EQ(g.CountNonZero(), 1u);
}

TEST(DenseGrid, NonZeroIndicesAscending) {
  DenseGrid g({8, 8, 8});
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    VoxelData v;
    v.density = 1.0f;
    g.SetVoxel({rng.UniformInt(0, 7), rng.UniformInt(0, 7), rng.UniformInt(0, 7)},
               v);
  }
  const auto idx = g.NonZeroIndices();
  for (std::size_t i = 1; i < idx.size(); ++i) EXPECT_LT(idx[i - 1], idx[i]);
  EXPECT_EQ(idx.size(), g.CountNonZero());
}

TEST(DenseGrid, OutOfBoundsThrows) {
  DenseGrid g({2, 2, 2});
  EXPECT_THROW((void)g.Voxel({2, 0, 0}), SpnerfError);
  EXPECT_THROW(g.SetVoxel({0, 0, -1}, {}), SpnerfError);
}

TEST(DenseGrid, InvalidDimsThrow) {
  EXPECT_THROW(DenseGrid({0, 4, 4}), SpnerfError);
  EXPECT_THROW(DenseGrid({4, -1, 4}), SpnerfError);
}

TEST(DenseGrid, RestoredBytesIsFp32Layout) {
  DenseGrid g({10, 10, 10});
  // FP32 density + 12 FP32 features per voxel.
  EXPECT_EQ(g.RestoredBytes(), 1000u * 4 * 13);
}

TEST(DenseGrid, VoxelDataIsZeroHelper) {
  VoxelData v;
  EXPECT_TRUE(v.IsZero());
  v.density = 1e-9f;
  EXPECT_FALSE(v.IsZero());
  v.density = 0.0f;
  v.features[3] = -1e-9f;
  EXPECT_FALSE(v.IsZero());
}

}  // namespace
}  // namespace spnerf
