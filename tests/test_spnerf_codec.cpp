#include "encoding/spnerf_codec.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {
namespace {

DenseGrid MakeGrid(int n, double occupancy, u64 seed = 1) {
  DenseGrid g({n, n, n});
  Rng rng(seed);
  const auto want = static_cast<u64>(occupancy * static_cast<double>(g.VoxelCount()));
  u64 placed = 0;
  while (placed < want) {
    const Vec3i p{rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1),
                  rng.UniformInt(0, n - 1)};
    if (g.IsNonZero(g.Dims().Flatten(p))) continue;
    VoxelData v;
    v.density = rng.Uniform(1.f, 80.f);
    for (int c = 0; c < kColorFeatureDim; ++c) v.features[c] = rng.Uniform(-1.f, 1.f);
    g.SetVoxel(p, v);
    ++placed;
  }
  return g;
}

VqrfModel MakeModel(int n = 24, double occupancy = 0.06) {
  VqrfBuildParams p;
  p.codebook_size = 64;
  p.kmeans_iterations = 3;
  return VqrfModel::Build(MakeGrid(n, occupancy), p);
}

SpNeRFParams BigTableParams() {
  SpNeRFParams p;
  p.subgrid_count = 8;
  p.table_size = 1u << 22;  // big enough that collisions are ~impossible
  return p;
}

TEST(SpNeRFCodec, DecodeMatchesVqrfWhenNoCollisions) {
  const VqrfModel vqrf = MakeModel();
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, BigTableParams());
  ASSERT_EQ(sp.AggregateBuildStats().collisions, 0u);
  for (const VoxelRecord& rec : vqrf.Records()) {
    const VoxelData want = vqrf.DecodeRecord(rec);
    const VoxelData got = sp.Decode(vqrf.Dims().Unflatten(rec.index));
    EXPECT_EQ(got.density, want.density);
    for (int c = 0; c < kColorFeatureDim; ++c) {
      EXPECT_EQ(got.features[c], want.features[c]);
    }
  }
  EXPECT_EQ(sp.NonZeroAliasRate(), 0.0);
}

TEST(SpNeRFCodec, ZeroVoxelsDecodeToZeroWithMasking) {
  const VqrfModel vqrf = MakeModel();
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, BigTableParams());
  const GridDims& dims = vqrf.Dims();
  for (VoxelIndex i = 0; i < dims.VoxelCount(); ++i) {
    if (vqrf.OccupancyBitmap().Test(i)) continue;
    const VoxelData d = sp.Decode(dims.Unflatten(i));
    EXPECT_EQ(d.density, 0.0f);
    for (int c = 0; c < kColorFeatureDim; ++c) EXPECT_EQ(d.features[c], 0.0f);
  }
}

TEST(SpNeRFCodec, WithoutMaskingZeroVoxelsCanAlias) {
  // Tiny table forces occupied slots; unmasked zero-voxel queries then
  // return garbage — the exact error bitmap masking exists to fix.
  const VqrfModel vqrf = MakeModel();
  SpNeRFParams params;
  params.subgrid_count = 4;
  params.table_size = 32;  // heavily loaded
  params.bitmap_masking = false;
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, params);
  const GridDims& dims = vqrf.Dims();
  u64 garbage = 0, zero_queries = 0;
  DecodeCounters counters;
  for (VoxelIndex i = 0; i < dims.VoxelCount(); ++i) {
    if (vqrf.OccupancyBitmap().Test(i)) continue;
    ++zero_queries;
    const VoxelData d = sp.Decode(dims.Unflatten(i), &counters);
    bool nonzero = d.density != 0.0f;
    for (int c = 0; c < kColorFeatureDim; ++c) nonzero |= (d.features[c] != 0.0f);
    garbage += nonzero;
  }
  EXPECT_GT(garbage, zero_queries / 2);  // nearly all slots are occupied

  // Same queries with masking: all zero.
  SpNeRFParams masked = params;
  masked.bitmap_masking = true;
  const SpNeRFModel sp_masked = SpNeRFModel::Preprocess(vqrf, masked);
  for (VoxelIndex i = 0; i < dims.VoxelCount(); ++i) {
    if (vqrf.OccupancyBitmap().Test(i)) continue;
    EXPECT_EQ(sp_masked.Decode(dims.Unflatten(i)).density, 0.0f);
  }
}

TEST(SpNeRFCodec, MaskingOverrideOnDecode) {
  const VqrfModel vqrf = MakeModel();
  SpNeRFParams params;
  params.subgrid_count = 4;
  params.table_size = 64;
  params.bitmap_masking = true;
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, params);
  // Find a zero voxel whose slot is occupied: masked decode = 0, unmasked != 0.
  const GridDims& dims = vqrf.Dims();
  bool found = false;
  for (VoxelIndex i = 0; i < dims.VoxelCount() && !found; ++i) {
    if (vqrf.OccupancyBitmap().Test(i)) continue;
    const Vec3i p = dims.Unflatten(i);
    const VoxelData unmasked = sp.Decode(p, /*bitmap_masking=*/false, nullptr);
    if (unmasked.density != 0.0f) {
      const VoxelData masked = sp.Decode(p, /*bitmap_masking=*/true, nullptr);
      EXPECT_EQ(masked.density, 0.0f);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SpNeRFCodec, CountersClassifyQueries) {
  const VqrfModel vqrf = MakeModel();
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, BigTableParams());
  DecodeCounters c;
  const GridDims& dims = vqrf.Dims();
  for (VoxelIndex i = 0; i < dims.VoxelCount(); ++i) {
    (void)sp.Decode(dims.Unflatten(i), &c);
  }
  EXPECT_EQ(c.queries, dims.VoxelCount());
  EXPECT_EQ(c.bitmap_zero, dims.VoxelCount() - vqrf.NonZeroCount());
  EXPECT_EQ(c.codebook_hits + c.true_grid_hits, vqrf.NonZeroCount());
  EXPECT_EQ(c.true_grid_hits, vqrf.KeptCount());
  EXPECT_EQ(c.empty_slot, 0u);
}

TEST(SpNeRFCodec, OutOfRangeDecodesToZero) {
  const VqrfModel vqrf = MakeModel();
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, BigTableParams());
  EXPECT_EQ(sp.Decode({-1, 0, 0}).density, 0.0f);
  EXPECT_EQ(sp.Decode({1000, 0, 0}).density, 0.0f);
}

TEST(SpNeRFCodec, MemoryAccountingFormulas) {
  const VqrfModel vqrf = MakeModel();
  SpNeRFParams params;
  params.subgrid_count = 16;
  params.table_size = 4096;
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, params);
  // K tables x T entries x 26 bits.
  EXPECT_EQ(sp.HashTableBytes(), (16u * 4096 * 26 + 7) / 8);
  EXPECT_EQ(sp.BitmapBytes(), (vqrf.Dims().VoxelCount() + 7) / 8);
  EXPECT_EQ(sp.CodebookBytes(), vqrf.CodebookInt8().size());
  EXPECT_EQ(sp.TrueGridBytes(), vqrf.KeptFeatures().size());
  EXPECT_EQ(sp.TotalBytes(),
            sp.HashTableBytes() + sp.BitmapBytes() + sp.CodebookBytes() +
                sp.TrueGridBytes() + 8);
}

TEST(SpNeRFCodec, MemoryMuchSmallerThanRestored) {
  const VqrfModel vqrf = MakeModel(32, 0.04);
  SpNeRFParams params;
  params.subgrid_count = 8;
  params.table_size = 2048;
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, params);
  EXPECT_GT(static_cast<double>(vqrf.RestoredBytes()) /
                static_cast<double>(sp.TotalBytes()),
            5.0);
}

TEST(SpNeRFCodec, AliasRateGrowsAsTableShrinks) {
  const VqrfModel vqrf = MakeModel();
  auto alias_at = [&](u32 table) {
    SpNeRFParams p;
    p.subgrid_count = 8;
    p.table_size = table;
    return SpNeRFModel::Preprocess(vqrf, p).NonZeroAliasRate();
  };
  const double big = alias_at(16384);
  const double mid = alias_at(1024);
  const double tiny = alias_at(128);
  EXPECT_LE(big, mid);
  EXPECT_LT(mid, tiny);
  EXPECT_GT(tiny, 0.2);
}

TEST(SpNeRFCodec, BuildStatsMatchAliasBehaviour) {
  const VqrfModel vqrf = MakeModel();
  SpNeRFParams p;
  p.subgrid_count = 8;
  p.table_size = 512;
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, p);
  const HashBuildStats stats = sp.AggregateBuildStats();
  EXPECT_EQ(stats.inserted + stats.collisions, vqrf.NonZeroCount());
  // With keep-first, every aliased record is a collision loser. (A loser
  // whose payload happens to match the winner's is not observable as an
  // alias, so the alias rate can be slightly below the collision rate.)
  EXPECT_LE(sp.NonZeroAliasRate(), stats.CollisionRate() + 1e-9);
  EXPECT_GE(sp.NonZeroAliasRate(), stats.CollisionRate() * 0.5);
}

TEST(SpNeRFCodec, SubgridIsolation) {
  // Points in different subgrids can never collide: build with K tables and
  // check inserted counts per table sum correctly.
  const VqrfModel vqrf = MakeModel();
  SpNeRFParams p;
  p.subgrid_count = 4;
  p.table_size = 32768;
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, p);
  u64 total = 0;
  for (const auto& t : sp.Tables()) {
    total += t.BuildStats().inserted + t.BuildStats().collisions;
  }
  EXPECT_EQ(total, vqrf.NonZeroCount());
}

TEST(SpNeRFCodec, InvalidParamsThrow) {
  const VqrfModel vqrf = MakeModel();
  SpNeRFParams p;
  p.subgrid_count = 0;
  EXPECT_THROW(SpNeRFModel::Preprocess(vqrf, p), SpnerfError);
  p.subgrid_count = 4;
  p.table_size = 0;
  EXPECT_THROW(SpNeRFModel::Preprocess(vqrf, p), SpnerfError);
}

TEST(SpNeRFCodec, DecodeOnEmptyModelThrows) {
  const SpNeRFModel sp;
  EXPECT_THROW((void)sp.Decode({0, 0, 0}), SpnerfError);
}

class CodecTableSweep : public ::testing::TestWithParam<u32> {};

TEST_P(CodecTableSweep, OccupiedDecodeNeverExceedsQuantRange) {
  const VqrfModel vqrf = MakeModel();
  SpNeRFParams p;
  p.subgrid_count = 8;
  p.table_size = GetParam();
  const SpNeRFModel sp = SpNeRFModel::Preprocess(vqrf, p);
  const float fmax = vqrf.FeatureQuantizer().Scale() * 127.0f;
  const float dmax = vqrf.DensityQuantizer().Scale() * 127.0f;
  for (const VoxelRecord& rec : vqrf.Records()) {
    const VoxelData d = sp.Decode(vqrf.Dims().Unflatten(rec.index));
    EXPECT_LE(std::fabs(d.density), dmax * 1.0001f);
    for (int c = 0; c < kColorFeatureDim; ++c) {
      EXPECT_LE(std::fabs(d.features[c]), fmax * 1.0001f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tables, CodecTableSweep,
                         ::testing::Values(128u, 1024u, 8192u, 65536u));

}  // namespace
}  // namespace spnerf
