// Asset layer tests: versioned serialization round trips, cache-key
// sensitivity, corrupt-artifact rejection, and the content-addressed
// cache + pipeline repository behaviour (cold build -> disk load ->
// memory hit).
#include "assets/asset_cache.hpp"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "assets/asset_io.hpp"
#include "assets/asset_key.hpp"
#include "common/error.hpp"
#include "core/pipeline_repository.hpp"

namespace spnerf {
namespace {

DatasetParams SmallParams() {
  DatasetParams p;
  p.resolution_override = 40;
  p.vqrf.codebook_size = 64;
  p.vqrf.kmeans_iterations = 2;
  p.vqrf.max_vq_train_samples = 2000;
  return p;
}

SpNeRFParams SmallCodecParams() {
  SpNeRFParams p;
  p.subgrid_count = 8;
  p.table_size = 4096;
  return p;
}

const SceneDataset& SmallDataset() {
  static const SceneDataset ds = BuildDataset(SceneId::kMic, SmallParams());
  return ds;
}

std::string SaveDatasetBytes(const SceneDataset& ds) {
  std::ostringstream out(std::ios::binary);
  SaveSceneDataset(ds, out);
  return out.str();
}

// ------------------------------------------------------ codec pinning ---

TEST(CodecAsset, PinsOnlyTheVqrfModelNotTheDataset) {
  // A codec's payload stores live in the dataset's VQRF model, which sits
  // behind its own shared_ptr: holding the codec must keep that model
  // alive, but never the dataset (whose full-resolution grid dominates
  // memory at paper scale).
  auto ds = std::make_shared<const SceneDataset>(
      BuildDataset(SceneId::kMic, SmallParams()));
  std::weak_ptr<const SceneDataset> dataset_watch = ds;
  std::weak_ptr<const VqrfModel> vqrf_watch = ds->vqrf;

  const std::shared_ptr<const SpNeRFModel> codec =
      MakeCodecAsset(ds, SmallCodecParams());
  ds.reset();

  EXPECT_TRUE(dataset_watch.expired())
      << "codec asset still pins the whole dataset (full grid included)";
  EXPECT_FALSE(vqrf_watch.expired())
      << "codec asset must keep its VQRF payload source alive";
  // The codec still decodes against the pinned model.
  const std::shared_ptr<const VqrfModel> vqrf = vqrf_watch.lock();
  ASSERT_NE(vqrf, nullptr);
  ASSERT_FALSE(vqrf->Records().empty());
  const Vec3i p = vqrf->Dims().Unflatten(vqrf->Records().front().index);
  (void)codec->Decode(p);
}

// ---------------------------------------------------------- round trips --

TEST(AssetIo, DatasetRoundTripIsByteIdentical) {
  const std::string first = SaveDatasetBytes(SmallDataset());
  std::istringstream in(first, std::ios::binary);
  const SceneDataset loaded = LoadSceneDataset(in);

  EXPECT_EQ(loaded.id, SmallDataset().id);
  EXPECT_EQ(loaded.full_grid.Dims(), SmallDataset().full_grid.Dims());
  EXPECT_EQ(loaded.full_grid.DensityRaw(),
            SmallDataset().full_grid.DensityRaw());
  EXPECT_EQ(loaded.vqrf->Records().size(), SmallDataset().vqrf->Records().size());

  // save -> load -> save reproduces the exact artifact bytes.
  EXPECT_EQ(SaveDatasetBytes(loaded), first);
}

TEST(AssetIo, CodecRoundTripIsByteIdenticalAndDecodesEqually) {
  const SceneDataset& ds = SmallDataset();
  const SpNeRFModel original =
      SpNeRFModel::Preprocess(*ds.vqrf, SmallCodecParams());

  std::ostringstream out(std::ios::binary);
  SaveSpNeRFModel(original, out);
  const std::string first = out.str();

  std::istringstream in(first, std::ios::binary);
  const SpNeRFModel loaded = LoadSpNeRFModel(in, *ds.vqrf);

  std::ostringstream again(std::ios::binary);
  SaveSpNeRFModel(loaded, again);
  EXPECT_EQ(again.str(), first);

  // Every record decodes identically through the reloaded tables.
  for (const VoxelRecord& rec : ds.vqrf->Records()) {
    const Vec3i p = ds.vqrf->Dims().Unflatten(rec.index);
    const VoxelData a = original.Decode(p);
    const VoxelData b = loaded.Decode(p);
    ASSERT_EQ(a.density, b.density);
    ASSERT_EQ(a.features, b.features);
  }
  EXPECT_EQ(loaded.AggregateBuildStats().collisions,
            original.AggregateBuildStats().collisions);
}

TEST(AssetIo, CoarseRoundTripIsByteIdentical) {
  const CoarseOccupancy original =
      CoarseOccupancy::Build(BitGrid::FromGrid(SmallDataset().full_grid), 4);
  std::ostringstream out(std::ios::binary);
  SaveCoarseOccupancy(original, out);

  std::istringstream in(out.str(), std::ios::binary);
  const CoarseOccupancy loaded = LoadCoarseOccupancy(in);
  EXPECT_EQ(loaded.Factor(), original.Factor());
  EXPECT_EQ(loaded.CoarseDims(), original.CoarseDims());
  EXPECT_EQ(loaded.Bits().Words(), original.Bits().Words());

  std::ostringstream again(std::ios::binary);
  SaveCoarseOccupancy(loaded, again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(AssetIo, OctreeRoundTripIsByteIdentical) {
  const CoarseOccupancy coarse =
      CoarseOccupancy::Build(BitGrid::FromGrid(SmallDataset().full_grid), 4);
  const OccupancyOctree original = OccupancyOctree::Build(coarse);
  std::ostringstream out(std::ios::binary);
  SaveOccupancyOctree(original, out);

  std::istringstream in(out.str(), std::ios::binary);
  const OccupancyOctree loaded = LoadOccupancyOctree(in);
  EXPECT_EQ(loaded.Factor(), original.Factor());
  ASSERT_EQ(loaded.Levels(), original.Levels());
  for (int l = 0; l < loaded.Levels(); ++l) {
    EXPECT_EQ(loaded.Level(l).Dims(), original.Level(l).Dims()) << l;
    EXPECT_EQ(loaded.Level(l).Words(), original.Level(l).Words()) << l;
  }

  std::ostringstream again(std::ios::binary);
  SaveOccupancyOctree(loaded, again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(AssetIo, OctreeLoadRejectsInconsistentPyramid) {
  // A flipped bit anywhere above the leaf level breaks the OR-reduction
  // invariant; the load path must reject it, never traverse it.
  const CoarseOccupancy coarse =
      CoarseOccupancy::Build(BitGrid::FromGrid(SmallDataset().full_grid), 4);
  const OccupancyOctree tree = OccupancyOctree::Build(coarse);
  ASSERT_GE(tree.Levels(), 2);
  std::ostringstream out(std::ios::binary);
  SaveOccupancyOctree(tree, out);
  std::string bytes = out.str();

  // The root level is serialized first: header (12) + factor (4) +
  // level count (4) + root dims (12) + word-count (8) puts its single
  // occupancy word at offset 40. The mic scene is non-empty, so the root
  // bit is set; clearing it contradicts every occupied leaf below.
  ASSERT_GT(bytes.size(), 48u);
  ASSERT_NE(bytes[40], 0);
  bytes[40] = 0;
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW((void)LoadOccupancyOctree(in), SpnerfError);
}

TEST(AssetIo, CodecLoadRejectsMismatchedSource) {
  const SceneDataset& ds = SmallDataset();
  const SpNeRFModel codec = SpNeRFModel::Preprocess(*ds.vqrf, SmallCodecParams());
  std::ostringstream out(std::ios::binary);
  SaveSpNeRFModel(codec, out);

  // A dataset with different dims is not the codec's source.
  DatasetParams other = SmallParams();
  other.resolution_override = 32;
  const SceneDataset wrong = BuildDataset(SceneId::kMic, other);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_THROW((void)LoadSpNeRFModel(in, *wrong.vqrf), SpnerfError);
}

// ----------------------------------------------------- corrupt artifacts --

TEST(AssetIo, RejectsBadMagic) {
  std::string bytes = SaveDatasetBytes(SmallDataset());
  bytes[0] = 'X';
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW((void)LoadSceneDataset(in), SpnerfError);
}

TEST(AssetIo, RejectsOtherFormatVersion) {
  std::string bytes = SaveDatasetBytes(SmallDataset());
  bytes[4] = static_cast<char>(kAssetFormatVersion + 1);  // version word
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW((void)LoadSceneDataset(in), SpnerfError);
}

TEST(AssetIo, RejectsWrongPayloadKind) {
  const CoarseOccupancy coarse =
      CoarseOccupancy::Build(BitGrid::FromGrid(SmallDataset().full_grid), 4);
  std::ostringstream out(std::ios::binary);
  SaveCoarseOccupancy(coarse, out);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_THROW((void)LoadSceneDataset(in), SpnerfError);
}

TEST(AssetIo, RejectsTruncatedStream) {
  const std::string bytes = SaveDatasetBytes(SmallDataset());
  for (const std::size_t keep :
       {bytes.size() / 4, bytes.size() / 2, bytes.size() - 3}) {
    std::istringstream in(bytes.substr(0, keep), std::ios::binary);
    EXPECT_THROW((void)LoadSceneDataset(in), SpnerfError) << keep;
  }
}

// ------------------------------------------------------------ cache keys --

TEST(AssetKey, SensitiveToEveryContentField) {
  const DatasetParams base = SmallParams();
  const std::string base_key = DatasetAssetKey(SceneId::kMic, base).hash;

  EXPECT_NE(DatasetAssetKey(SceneId::kLego, base).hash, base_key);

  DatasetParams p = base;
  p.resolution_override = 41;
  EXPECT_NE(DatasetAssetKey(SceneId::kMic, p).hash, base_key);
  p = base;
  p.vqrf.prune_fraction += 0.01;
  EXPECT_NE(DatasetAssetKey(SceneId::kMic, p).hash, base_key);
  p = base;
  p.vqrf.keep_fraction += 0.01;
  EXPECT_NE(DatasetAssetKey(SceneId::kMic, p).hash, base_key);
  p = base;
  p.vqrf.codebook_size += 1;
  EXPECT_NE(DatasetAssetKey(SceneId::kMic, p).hash, base_key);
  p = base;
  p.vqrf.kmeans_iterations += 1;
  EXPECT_NE(DatasetAssetKey(SceneId::kMic, p).hash, base_key);
  p = base;
  p.vqrf.max_vq_train_samples += 1;
  EXPECT_NE(DatasetAssetKey(SceneId::kMic, p).hash, base_key);
  p = base;
  p.vqrf.seed += 1;
  EXPECT_NE(DatasetAssetKey(SceneId::kMic, p).hash, base_key);

  const AssetKey dk = DatasetAssetKey(SceneId::kMic, base);
  const SpNeRFParams sp = SmallCodecParams();
  const std::string codec_key = CodecAssetKey(dk, sp).hash;
  SpNeRFParams s = sp;
  s.subgrid_count += 1;
  EXPECT_NE(CodecAssetKey(dk, s).hash, codec_key);
  s = sp;
  s.table_size += 1;
  EXPECT_NE(CodecAssetKey(dk, s).hash, codec_key);
  s = sp;
  s.bitmap_masking = !s.bitmap_masking;
  EXPECT_NE(CodecAssetKey(dk, s).hash, codec_key);
  s = sp;
  s.collision_policy = CollisionPolicy::kOverwrite;
  EXPECT_NE(CodecAssetKey(dk, s).hash, codec_key);

  EXPECT_NE(CoarseAssetKey(dk, 4).hash, CoarseAssetKey(dk, 8).hash);
  EXPECT_NE(OctreeAssetKey(dk, 4).hash, OctreeAssetKey(dk, 8).hash);
  // Same fields, distinct kind: octree and coarse artifacts never collide
  // in the on-disk store (the kind prefixes the file name).
  EXPECT_NE(OctreeAssetKey(dk, 4).FileName(), CoarseAssetKey(dk, 4).FileName());
}

TEST(AssetKey, OctreeKeyVersionsWithTheFormat) {
  // kAssetFormatVersion is hashed into every key; the octree kind rode in
  // with v2, so pin the canonical prefix the hash is derived from. If the
  // version bumps again, every octree artifact must become unreachable.
  AssetKeyBuilder b;
  b.Field("format", static_cast<u64>(kAssetFormatVersion));
  EXPECT_EQ(b.Canonical(), "format=u2;");
}

TEST(AssetKey, InsensitiveToExecutionPolicy) {
  // Worker caps never change the built bytes, so a warm cache must survive
  // thread-count changes.
  DatasetParams a = SmallParams();
  DatasetParams b = SmallParams();
  a.max_threads = 1;
  b.max_threads = 8;
  b.vqrf.max_threads = 4;
  EXPECT_EQ(DatasetAssetKey(SceneId::kMic, a).hash,
            DatasetAssetKey(SceneId::kMic, b).hash);
}

TEST(AssetKey, StableAcrossProcessesByConstruction) {
  // FNV-1a over the canonical string: pin one key so accidental canonical
  // format changes (which would orphan every on-disk artifact) are loud.
  AssetKeyBuilder b;
  b.Field("answer", static_cast<i64>(42));
  EXPECT_EQ(b.Canonical(), "answer=42;");
  EXPECT_EQ(b.Finish(), "63d96c511bd2b875");
}

// ------------------------------------------------------------ AssetCache --

class AssetCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(::testing::TempDir()) /
            ("spnerf_assets_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  AssetCacheOptions Options() const {
    AssetCacheOptions opts;
    opts.disk_root = root_.string();
    return opts;
  }

  std::filesystem::path root_;
};

TEST_F(AssetCacheTest, ColdBuildPersistsAndWarmLoadsFromDisk) {
  const DatasetParams dp = SmallParams();
  const SpNeRFParams sp = SmallCodecParams();

  AssetCache cold(Options());
  const PipelineAssets built = cold.Acquire(SceneId::kMic, dp, sp, 4);
  ASSERT_TRUE(built.dataset && built.codec && built.coarse && built.octree);
  EXPECT_EQ(cold.GetStats().builds, 4u);
  EXPECT_EQ(cold.GetStats().disk_hits, 0u);

  // All four artifacts landed on disk.
  const AssetKey dk = DatasetAssetKey(SceneId::kMic, dp);
  EXPECT_TRUE(std::filesystem::exists(root_ / dk.FileName()));
  EXPECT_TRUE(
      std::filesystem::exists(root_ / CodecAssetKey(dk, sp).FileName()));
  EXPECT_TRUE(std::filesystem::exists(root_ / CoarseAssetKey(dk, 4).FileName()));
  EXPECT_TRUE(std::filesystem::exists(root_ / OctreeAssetKey(dk, 4).FileName()));

  // A fresh cache over the same root deserializes instead of rebuilding.
  AssetCache warm(Options());
  const PipelineAssets loaded = warm.Acquire(SceneId::kMic, dp, sp, 4);
  EXPECT_EQ(warm.GetStats().builds, 0u);
  EXPECT_EQ(warm.GetStats().disk_hits, 4u);
  EXPECT_EQ(loaded.dataset->full_grid.DensityRaw(),
            built.dataset->full_grid.DensityRaw());
  EXPECT_EQ(loaded.coarse->Bits().Words(), built.coarse->Bits().Words());
  ASSERT_EQ(loaded.octree->Levels(), built.octree->Levels());
  for (int l = 0; l < loaded.octree->Levels(); ++l) {
    EXPECT_EQ(loaded.octree->Level(l).Words(), built.octree->Level(l).Words());
  }

  // Same cache again: everything is a live memory hit, same instances.
  const PipelineAssets again = warm.Acquire(SceneId::kMic, dp, sp, 4);
  EXPECT_EQ(warm.GetStats().memory_hits, 4u);
  EXPECT_EQ(again.dataset.get(), loaded.dataset.get());
  EXPECT_EQ(again.codec.get(), loaded.codec.get());
}

TEST_F(AssetCacheTest, CorruptArtifactIsRebuiltNotFatal) {
  const DatasetParams dp = SmallParams();
  AssetCache first(Options());
  (void)first.AcquireDataset(SceneId::kMic, dp);

  // Truncate the artifact on disk.
  const std::filesystem::path path =
      root_ / DatasetAssetKey(SceneId::kMic, dp).FileName();
  ASSERT_TRUE(std::filesystem::exists(path));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);

  AssetCache second(Options());
  const auto ds = second.AcquireDataset(SceneId::kMic, dp);
  ASSERT_TRUE(ds != nullptr);
  EXPECT_EQ(second.GetStats().builds, 1u);  // rebuilt, no disk hit
  EXPECT_EQ(second.GetStats().disk_hits, 0u);
  // ...and the rebuilt artifact replaced the corrupt one.
  AssetCache third(Options());
  (void)third.AcquireDataset(SceneId::kMic, dp);
  EXPECT_EQ(third.GetStats().disk_hits, 1u);
}

TEST_F(AssetCacheTest, DisabledDiskStoreStillServesMemoryHits) {
  AssetCacheOptions opts;
  opts.disk_root.clear();
  AssetCache cache(opts);
  const auto a = cache.AcquireDataset(SceneId::kMic, SmallParams());
  const auto b = cache.AcquireDataset(SceneId::kMic, SmallParams());
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.GetStats().builds, 1u);
  EXPECT_EQ(cache.GetStats().memory_hits, 1u);
}

// ---------------------------------------------------- PipelineRepository --

TEST_F(AssetCacheTest, RepositorySharesPipelinesAndAssets) {
  AssetCache cache(Options());
  PipelineRepository repo(&cache);

  PipelineConfig config;
  config.scene_id = SceneId::kMic;
  config.dataset = SmallParams();
  config.spnerf = SmallCodecParams();

  const auto p1 = repo.Acquire(config);
  const auto p2 = repo.Acquire(config);
  EXPECT_EQ(p1.get(), p2.get());  // live-pipeline LRU hit

  // A render-option change makes a new pipeline over the same assets.
  PipelineConfig other = config;
  other.render.step_size *= 0.5f;
  const auto p3 = repo.Acquire(other);
  EXPECT_NE(p3.get(), p1.get());
  EXPECT_EQ(&p3->Dataset(), &p1->Dataset());
  EXPECT_EQ(&p3->Codec(), &p1->Codec());

  // A build-parameter change misses every level.
  PipelineConfig rebuilt = config;
  rebuilt.spnerf.table_size *= 2;
  const auto p4 = repo.Acquire(rebuilt);
  EXPECT_EQ(&p4->Dataset(), &p1->Dataset());  // dataset key unchanged
  EXPECT_NE(&p4->Codec(), &p1->Codec());
}

TEST_F(AssetCacheTest, RepositoryPipelineRendersIdenticallyToDirectBuild) {
  AssetCache cache(Options());

  PipelineConfig config;
  config.scene_id = SceneId::kMic;
  config.dataset = SmallParams();
  config.spnerf = SmallCodecParams();

  const ScenePipeline direct = ScenePipeline::Build(config);
  const Image want = direct.RenderSpnerf(direct.MakeCamera(24, 24), true);

  // Warm-from-disk pipeline (fresh cache, artifacts written by a throwaway
  // repository first) must march the exact same rays to the same pixels.
  { PipelineRepository warmup(&cache); (void)warmup.Acquire(config); }
  AssetCache reloaded(Options());
  PipelineRepository repo(&reloaded);
  const auto p = repo.Acquire(config);
  EXPECT_EQ(reloaded.GetStats().disk_hits, 4u);
  const Image got = p->RenderSpnerf(p->MakeCamera(24, 24), true);
  ASSERT_EQ(want.Width(), got.Width());
  EXPECT_EQ(Mse(want, got), 0.0);
}

}  // namespace
}  // namespace spnerf
