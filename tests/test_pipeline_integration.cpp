// End-to-end pipeline tests at reduced scale: scene -> grid -> VQRF ->
// SpNeRF preprocessing -> rendering through all three paths.
#include "core/pipeline.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace spnerf {
namespace {

PipelineConfig SmallConfig(SceneId id = SceneId::kMaterials) {
  PipelineConfig pc;
  pc.scene_id = id;
  pc.dataset.resolution_override = 56;
  pc.dataset.vqrf.codebook_size = 256;
  pc.dataset.vqrf.kmeans_iterations = 4;
  pc.spnerf.subgrid_count = 16;
  pc.spnerf.table_size = 8192;
  return pc;
}

class PipelineIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new ScenePipeline(ScenePipeline::Build(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static ScenePipeline* pipeline_;
};

ScenePipeline* PipelineIntegration::pipeline_ = nullptr;

TEST_F(PipelineIntegration, BuildWiresEverything) {
  EXPECT_EQ(pipeline_->Dataset().id, SceneId::kMaterials);
  EXPECT_EQ(pipeline_->Codec().Dims(), pipeline_->Dataset().full_grid.Dims());
  EXPECT_EQ(pipeline_->Codec().Params().subgrid_count, 16);
  EXPECT_GT(pipeline_->Skip().Bits().CountSet(), 0u);
}

TEST_F(PipelineIntegration, VqrfRenderCloseToGroundTruth) {
  const Camera cam = pipeline_->MakeCamera(48, 48);
  const Image gt = pipeline_->RenderGroundTruth(cam);
  const Image vqrf = pipeline_->RenderVqrf(cam);
  const double psnr = Psnr(gt, vqrf);
  EXPECT_GT(psnr, 22.0);  // lossy but recognisable
  EXPECT_LT(psnr, 60.0);  // and genuinely lossy
}

TEST_F(PipelineIntegration, MaskedSpnerfTracksVqrf) {
  // The paper's central accuracy claim at small scale: SpNeRF with bitmap
  // masking is close to VQRF; without it, quality collapses.
  const Camera cam = pipeline_->MakeCamera(48, 48);
  const Image gt = pipeline_->RenderGroundTruth(cam);
  const Image vqrf = pipeline_->RenderVqrf(cam);
  const Image post = pipeline_->RenderSpnerf(cam, true);
  const Image pre = pipeline_->RenderSpnerf(cam, false);

  const double vqrf_psnr = Psnr(gt, vqrf);
  const double post_psnr = Psnr(gt, post);
  const double pre_psnr = Psnr(gt, pre);

  EXPECT_GT(post_psnr, vqrf_psnr - 3.0);  // comparable to VQRF
  EXPECT_LT(pre_psnr, post_psnr - 5.0);   // masking is load-bearing
}

TEST_F(PipelineIntegration, RendersAreDeterministic) {
  const Camera cam = pipeline_->MakeCamera(24, 24);
  const Image a = pipeline_->RenderSpnerf(cam, true);
  const Image b = pipeline_->RenderSpnerf(cam, true);
  EXPECT_EQ(Mse(a, b), 0.0);
}

TEST_F(PipelineIntegration, WorkloadMeasurementConsistent) {
  const FrameWorkload w = pipeline_->MeasureWorkload(24, 400, 400);
  EXPECT_EQ(w.rays, 160000u);
  EXPECT_GT(w.samples, w.mlp_evals);
  EXPECT_EQ(w.scene, "materials");
  // The decode mix reflects masked traversal: most vertex lookups are
  // resolved by the bitmap (empty space around objects).
  EXPECT_GT(w.bitmap_zero_frac, 0.2);
}

TEST_F(PipelineIntegration, DifferentViewsDiffer) {
  const Camera v0 = pipeline_->MakeCamera(24, 24, 0);
  const Camera v3 = pipeline_->MakeCamera(24, 24, 3);
  const Image a = pipeline_->RenderSpnerf(v0, true);
  const Image b = pipeline_->RenderSpnerf(v3, true);
  EXPECT_GT(Mse(a, b), 1e-5);
}

TEST_F(PipelineIntegration, CountersReturnedToCaller) {
  const Camera cam = pipeline_->MakeCamera(16, 16);
  RenderStats stats;
  DecodeCounters counters;
  (void)pipeline_->RenderSpnerf(cam, true, &stats, &counters);
  EXPECT_GT(stats.rays, 0u);
  EXPECT_GT(counters.queries, 0u);
  // 8 vertex decodes per fine sample at most.
  EXPECT_LE(counters.queries, stats.steps * 8);
}

TEST(PipelineSmoke, FicusSmallResolution) {
  // A second scene end-to-end, exercising non-cubic-resolution defaults.
  PipelineConfig pc = SmallConfig(SceneId::kFicus);
  pc.dataset.resolution_override = 48;
  const ScenePipeline p = ScenePipeline::Build(pc);
  const Camera cam = p.MakeCamera(32, 32);
  const Image img = p.RenderSpnerf(cam, true);
  // The render must contain both object and background pixels.
  int bg = 0, fg = 0;
  for (const Vec3f& px : img.Pixels()) {
    if ((px - Vec3f{1.f, 1.f, 1.f}).Norm() < 1e-3f) {
      ++bg;
    } else {
      ++fg;
    }
  }
  EXPECT_GT(bg, 0);
  EXPECT_GT(fg, 0);
}

}  // namespace
}  // namespace spnerf
