#include "sim/sgpu.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spnerf {
namespace {

SgpuActivity SampleActivity() {
  SgpuActivity a;
  a.samples = 1000;
  a.coarse_skip_probes = 500;
  a.vertex_lookups = 8000;
  a.bitmap_zero = 3000;
  a.hash_lookups = 5000;
  a.codebook_fetches = 4000;
  a.true_grid_fetches = 1000;
  a.interpolated_samples = 400;
  return a;
}

TEST(Sgpu, CyclesAreWorkOverLanes) {
  const SgpuModel sgpu(16);
  const SgpuTiming t = sgpu.Time(SampleActivity());
  // (8000 lookups + 500 probes) / 16 lanes, rounded up.
  EXPECT_EQ(t.cycles, (8000u + 500u + 15u) / 16u);
  EXPECT_NEAR(t.lane_utilization, 1.0, 0.01);
}

TEST(Sgpu, MoreLanesFewerCycles) {
  const SgpuActivity a = SampleActivity();
  EXPECT_LT(SgpuModel(32).Time(a).cycles, SgpuModel(8).Time(a).cycles);
}

TEST(Sgpu, RoundUpPartialCycle) {
  SgpuActivity a;
  a.vertex_lookups = 17;
  const SgpuModel sgpu(16);
  EXPECT_EQ(sgpu.Time(a).cycles, 2u);
  EXPECT_NEAR(sgpu.Time(a).lane_utilization, 17.0 / 32.0, 1e-9);
}

TEST(Sgpu, EmptyActivityZeroCycles) {
  const SgpuModel sgpu(16);
  const SgpuActivity empty;
  EXPECT_EQ(sgpu.Time(empty).cycles, 0u);
}

TEST(Sgpu, EnergyComponentsAdd) {
  const Tech28& tech = DefaultTech28();
  const SgpuModel sgpu(16);
  const SgpuActivity a = SampleActivity();
  const double e = sgpu.LogicEnergyJ(a, tech);
  // Manual reconstruction.
  double pj = 0.0;
  pj += 1000.0 * 6.0 * tech.fp16_mul_pj;                      // GID weights
  pj += 1000.0 * 8.0 * tech.fp16_mac_pj;                      // density interp
  pj += (8000.0 + 500.0) * tech.bit_probe_pj;                 // BLU
  pj += 5000.0 * tech.hash_unit_pj;                           // HMU
  pj += 400.0 * 8.0 * (13.0 * tech.fp16_mac_pj + 13.0 * tech.int8_op_pj);
  EXPECT_NEAR(e, pj * 1e-12, 1e-18);
}

TEST(Sgpu, EnergyScalesWithActivity) {
  const SgpuModel sgpu(16);
  SgpuActivity a = SampleActivity();
  const double base = sgpu.LogicEnergyJ(a, DefaultTech28());
  a.samples *= 2;
  a.vertex_lookups *= 2;
  a.hash_lookups *= 2;
  a.interpolated_samples *= 2;
  const double doubled = sgpu.LogicEnergyJ(a, DefaultTech28());
  EXPECT_GT(doubled, base * 1.8);
  EXPECT_LT(doubled, base * 2.2);
}

TEST(Sgpu, MaskedLookupsSkipHashEnergy) {
  // Bitmap-masked lookups never reach the HMU: with everything masked the
  // hash energy term vanishes.
  const SgpuModel sgpu(16);
  SgpuActivity all_masked;
  all_masked.vertex_lookups = 8000;
  all_masked.bitmap_zero = 8000;
  all_masked.hash_lookups = 0;
  SgpuActivity none_masked = all_masked;
  none_masked.bitmap_zero = 0;
  none_masked.hash_lookups = 8000;
  EXPECT_LT(sgpu.LogicEnergyJ(all_masked, DefaultTech28()),
            sgpu.LogicEnergyJ(none_masked, DefaultTech28()));
}

TEST(Sgpu, ZeroLanesThrows) { EXPECT_THROW(SgpuModel(0), SpnerfError); }

}  // namespace
}  // namespace spnerf
