#include "common/half.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace spnerf {
namespace {

TEST(Half, ZeroRoundTrips) {
  EXPECT_EQ(Half(0.0f).bits(), 0u);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000u);
  EXPECT_TRUE(Half(0.0f).IsZero());
  EXPECT_TRUE(Half(-0.0f).IsZero());
  EXPECT_EQ(Half(0.0f), Half(-0.0f));  // +0 == -0
}

TEST(Half, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(Half(f).ToFloat(), f) << "integer " << i;
  }
}

TEST(Half, ExactPowersOfTwo) {
  for (int e = -14; e <= 15; ++e) {
    const float f = std::ldexp(1.0f, e);
    EXPECT_EQ(Half(f).ToFloat(), f) << "2^" << e;
  }
}

TEST(Half, MaxFiniteValue) {
  EXPECT_EQ(Half::Max().ToFloat(), 65504.0f);
  EXPECT_EQ(Half(65504.0f).bits(), Half::Max().bits());
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_TRUE(Half(65536.0f).IsInf());
  EXPECT_TRUE(Half(1e10f).IsInf());
  EXPECT_TRUE(Half(-1e10f).IsInf());
  EXPECT_TRUE(Half(-1e10f).SignBit());
}

TEST(Half, RoundToNearestEvenAtOverflowBoundary) {
  // 65519.99 rounds down to 65504; 65520 rounds to infinity (ties to even
  // would give 2^16 which is out of range).
  EXPECT_EQ(Half(65519.0f).ToFloat(), 65504.0f);
  EXPECT_TRUE(Half(65520.0f).IsInf());
}

TEST(Half, SubnormalsRepresentable) {
  const float min_subnormal = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(min_subnormal).ToFloat(), min_subnormal);
  const float below_half_min = std::ldexp(1.0f, -26);
  EXPECT_TRUE(Half(below_half_min).IsZero());
}

TEST(Half, SubnormalRoundTripAll) {
  // Every subnormal bit pattern converts to float and back unchanged.
  for (std::uint16_t bits = 1; bits < 0x0400u; ++bits) {
    const Half h = Half::FromBits(bits);
    EXPECT_EQ(Half(h.ToFloat()).bits(), bits) << "bits " << bits;
  }
}

TEST(Half, AllFiniteBitPatternsRoundTrip) {
  for (std::uint32_t b = 0; b < 0x10000u; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const Half h = Half::FromBits(bits);
    if (h.IsNaN()) continue;
    const Half back(h.ToFloat());
    if (h.IsZero()) {
      EXPECT_TRUE(back.IsZero());
    } else {
      EXPECT_EQ(back.bits(), bits) << "bits " << bits;
    }
  }
}

TEST(Half, NaNPropagates) {
  const Half nan = Half::QuietNaN();
  EXPECT_TRUE(nan.IsNaN());
  EXPECT_TRUE(std::isnan(nan.ToFloat()));
  EXPECT_TRUE(Half(std::nanf("")).IsNaN());
  EXPECT_FALSE(nan == nan);  // IEEE: NaN != NaN
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half; it must
  // round to even mantissa (1.0).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(Half(halfway).ToFloat(), 1.0f);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even is 1+2^-9.
  const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(Half(halfway2).ToFloat(), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Half, ArithmeticMatchesRoundedFloat) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const Half a(rng.Uniform(-100.f, 100.f));
    const Half b(rng.Uniform(-100.f, 100.f));
    EXPECT_EQ((a + b).bits(), Half(a.ToFloat() + b.ToFloat()).bits());
    EXPECT_EQ((a * b).bits(), Half(a.ToFloat() * b.ToFloat()).bits());
    EXPECT_EQ((a - b).bits(), Half(a.ToFloat() - b.ToFloat()).bits());
  }
}

TEST(Half, FmaSingleRounding) {
  // Choose operands where separate rounding differs from fused: a*b is not
  // representable, and adding c pushes across a rounding boundary.
  const Half a(1.0009765625f);  // 1 + 2^-10
  const Half b(1.0009765625f);
  const Half c(-1.0f);
  const Half fused = Half::Fma(a, b, c);
  const double exact = static_cast<double>(a.ToFloat()) * b.ToFloat() + c.ToFloat();
  EXPECT_NEAR(fused.ToFloat(), exact, 1e-6);
}

TEST(Half, ComparisonOperators) {
  EXPECT_LT(Half(1.0f), Half(2.0f));
  EXPECT_GT(Half(-1.0f), Half(-2.0f));
  EXPECT_LE(Half(1.0f), Half(1.0f));
  EXPECT_GE(Half(3.5f), Half(3.5f));
  EXPECT_NE(Half(1.0f), Half(1.5f));
}

TEST(Half, NegationFlipsSignBitOnly) {
  const Half h(3.14f);
  EXPECT_EQ((-h).bits(), h.bits() ^ 0x8000u);
  EXPECT_EQ((-(-h)).bits(), h.bits());
}

TEST(Half, EpsilonIsCorrect) {
  // eps = 2^-10: 1 + eps must be the next representable value after 1.
  EXPECT_EQ((Half(1.0f) + Half::Epsilon()).bits(), Half::FromBits(0x3c01).bits());
}

TEST(Half, QuantizeToHalfIdempotent) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.Uniform(-1000.f, 1000.f);
    const float q = QuantizeToHalf(f);
    EXPECT_EQ(QuantizeToHalf(q), q);
  }
}

/// Property sweep: quantisation error is bounded by eps/2 relative.
class HalfErrorBound : public ::testing::TestWithParam<float> {};

TEST_P(HalfErrorBound, RelativeErrorWithinHalfUlp) {
  const float f = GetParam();
  const float q = Half(f).ToFloat();
  const float rel = std::fabs(q - f) / std::fabs(f);
  EXPECT_LE(rel, std::ldexp(1.0f, -11) * 1.0001f) << f;
}

INSTANTIATE_TEST_SUITE_P(Values, HalfErrorBound,
                         ::testing::Values(1.1f, -2.7f, 3.14159f, 999.5f,
                                           -0.0001234f, 0.06251f, 64000.f,
                                           1e-4f, -6.1e-5f, 0.333333f));

}  // namespace
}  // namespace spnerf
