#include "render/field_source.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "scene/dataset.hpp"

namespace spnerf {
namespace {

class FieldSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetParams p;
    p.resolution_override = 48;
    p.vqrf.codebook_size = 128;
    p.vqrf.kmeans_iterations = 3;
    dataset_ = BuildDataset(SceneId::kMaterials, p);
    SpNeRFParams sp;
    sp.subgrid_count = 8;
    sp.table_size = 32768;  // collision-free at this scale
    codec_ = SpNeRFModel::Preprocess(*dataset_.vqrf, sp);
    restored_ = dataset_.vqrf->Restore();
  }

  SceneDataset dataset_;
  SpNeRFModel codec_;
  DenseGrid restored_;
};

TEST_F(FieldSourceTest, AnalyticMatchesScene) {
  const AnalyticFieldSource src(dataset_.scene);
  const Vec3f p{0.41f, 0.40f, 0.52f};
  const FieldSample s = src.Sample(p);
  EXPECT_EQ(s.density, dataset_.scene.Density(p));
}

TEST_F(FieldSourceTest, GridSourceExactAtVertices) {
  const GridFieldSource src(dataset_.full_grid);
  const GridDims& dims = dataset_.full_grid.Dims();
  // At exact vertex positions, trilinear interpolation returns the vertex.
  for (VoxelIndex i = 0; i < dims.VoxelCount(); i += 1117) {
    const Vec3i v = dims.Unflatten(i);
    if (v.x + 1 >= dims.nx || v.y + 1 >= dims.ny || v.z + 1 >= dims.nz)
      continue;
    const Vec3f p = VoxelVertexPosition(dims, v);
    const FieldSample s = src.Sample(p);
    EXPECT_NEAR(s.density, dataset_.full_grid.Density(i), 1e-4f);
  }
}

TEST_F(FieldSourceTest, GridSourceInterpolatesLinearly) {
  // Build a 2-vertex gradient grid and check the midpoint.
  DenseGrid g({2, 2, 2});
  for (int corner = 0; corner < 8; ++corner) {
    VoxelData v;
    v.density = (corner & 1) ? 10.f : 0.f;  // varies along x only
    v.features[0] = v.density;
    g.SetVoxel({corner & 1, (corner >> 1) & 1, (corner >> 2) & 1}, v);
  }
  const GridFieldSource src(g);
  EXPECT_NEAR(src.Sample({0.5f, 0.5f, 0.5f}).density, 5.f, 1e-5f);
  EXPECT_NEAR(src.Sample({0.25f, 0.1f, 0.9f}).density, 2.5f, 1e-5f);
  EXPECT_NEAR(src.Sample({0.25f, 0.5f, 0.5f}).features[0], 2.5f, 1e-5f);
}

TEST_F(FieldSourceTest, OutOfRangeSamplesAreZero) {
  const GridFieldSource grid_src(restored_);
  const SpNeRFFieldSource sp_src(codec_);
  for (const Vec3f p : {Vec3f{-0.1f, 0.5f, 0.5f}, Vec3f{0.5f, 1.2f, 0.5f}}) {
    EXPECT_EQ(grid_src.Sample(p).density, 0.f);
    EXPECT_EQ(sp_src.Sample(p).density, 0.f);
  }
}

TEST_F(FieldSourceTest, SpnerfMatchesRestoredGridWhenCollisionFree) {
  // With a collision-free table, the online-decode source and the restored
  // grid source are the same function.
  ASSERT_EQ(codec_.AggregateBuildStats().collisions, 0u);
  const GridFieldSource grid_src(restored_);
  const SpNeRFFieldSource sp_src(codec_);
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    const Vec3f p{rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
    const FieldSample a = grid_src.Sample(p);
    const FieldSample b = sp_src.Sample(p);
    ASSERT_NEAR(a.density, b.density, 1e-4f) << p;
    for (int c = 0; c < kColorFeatureDim; ++c) {
      ASSERT_NEAR(a.features[c], b.features[c], 1e-4f) << p;
    }
  }
}

TEST_F(FieldSourceTest, CountersTrackVertexDecodes) {
  SpNeRFFieldSource src(codec_);
  src.ResetCounters();
  Rng rng(6);
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    (void)src.Sample({rng.NextFloat(), rng.NextFloat(), rng.NextFloat()});
  }
  // Up to 8 vertex decodes per in-range sample (corners with zero weight
  // are skipped).
  EXPECT_GT(src.Counters().queries, 0u);
  EXPECT_LE(src.Counters().queries, static_cast<u64>(n) * 8);
}

TEST_F(FieldSourceTest, CounterCollectionCanBeDisabled) {
  SpNeRFFieldSource src(codec_, false, /*collect_counters=*/false);
  (void)src.Sample({0.5f, 0.5f, 0.5f});
  EXPECT_EQ(src.Counters().queries, 0u);
}

TEST_F(FieldSourceTest, MaskingToggleChangesZeroRegions) {
  // Rebuild with a crowded table so unmasked reads alias.
  SpNeRFParams sp;
  sp.subgrid_count = 4;
  sp.table_size = 64;
  const SpNeRFModel crowded = SpNeRFModel::Preprocess(*dataset_.vqrf, sp);
  SpNeRFFieldSource masked(crowded);
  masked.SetMasking(true);
  SpNeRFFieldSource unmasked(crowded);
  unmasked.SetMasking(false);
  // Find an empty-space point: masked density 0, unmasked likely garbage.
  u64 diffs = 0;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Vec3f p{rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
    const float dm = masked.Sample(p).density;
    const float du = unmasked.Sample(p).density;
    if (dm != du) ++diffs;
  }
  EXPECT_GT(diffs, 100u);
}

TEST_F(FieldSourceTest, Fp16TiuCloseToFp32) {
  const SpNeRFFieldSource fp32(codec_, /*fp16_tiu=*/false, false);
  const SpNeRFFieldSource fp16(codec_, /*fp16_tiu=*/true, false);
  Rng rng(8);
  double max_rel = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const Vec3f p{rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
    const FieldSample a = fp32.Sample(p);
    const FieldSample b = fp16.Sample(p);
    if (std::fabs(a.density) > 1.0f) {
      max_rel = std::max(max_rel, static_cast<double>(std::fabs(a.density - b.density) /
                                                      std::fabs(a.density)));
    }
  }
  EXPECT_LT(max_rel, 0.01);  // 8-term FP16 accumulation: ~2^-11 x 8
}

TEST_F(FieldSourceTest, TrilinearWeightsSumToOne) {
  // Constant grid: interpolation must return the constant everywhere
  // strictly inside (Eq. 2 weights sum to 1).
  DenseGrid g({4, 4, 4});
  for (VoxelIndex i = 0; i < g.VoxelCount(); ++i) g.SetDensity(i, 3.5f);
  const GridFieldSource src(g);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const Vec3f p{rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
    EXPECT_NEAR(src.Sample(p).density, 3.5f, 1e-4f);
  }
}

}  // namespace
}  // namespace spnerf
