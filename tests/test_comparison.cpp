#include "model/comparison.hpp"

#include <gtest/gtest.h>

namespace spnerf {
namespace {

TEST(Baselines, RtNerfEdgePublishedNumbers) {
  const AcceleratorOperatingPoint p = RtNerfEdge();
  EXPECT_DOUBLE_EQ(p.sram_mb, 3.5);
  EXPECT_DOUBLE_EQ(p.area_mm2, 18.85);
  EXPECT_EQ(p.tech_nm, 28);
  EXPECT_DOUBLE_EQ(p.power_w, 8.0);
  EXPECT_DOUBLE_EQ(p.fps, 45.0);
  EXPECT_DOUBLE_EQ(p.energy_eff_fps_per_w, 5.63);
  EXPECT_DOUBLE_EQ(p.area_eff_fps_per_mm2, 2.38);
  EXPECT_EQ(p.dram, "LPDDR4-1600");
  EXPECT_FALSE(p.fps_inferred);
}

TEST(Baselines, NeurexEdgePublishedNumbers) {
  const AcceleratorOperatingPoint p = NeurexEdge();
  EXPECT_DOUBLE_EQ(p.sram_mb, 0.86);
  EXPECT_DOUBLE_EQ(p.area_mm2, 1.31);
  EXPECT_DOUBLE_EQ(p.power_w, 1.31);
  EXPECT_DOUBLE_EQ(p.fps, 6.57);
  EXPECT_TRUE(p.fps_inferred);  // Table II footnote
  EXPECT_EQ(p.dram, "LPDDR4-3200");
}

TEST(TableII, RowFromBaselineCopiesFields) {
  const TableIIRow r = RowFromBaseline(RtNerfEdge());
  EXPECT_EQ(r.name, "RT-NeRF.Edge");
  EXPECT_DOUBLE_EQ(r.fps, 45.0);
  EXPECT_DOUBLE_EQ(r.dram_bw_gbps, 17.0);
}

TEST(TableII, SpnerfRowComputesEfficiencies) {
  const HardwareInventory inv = DefaultInventory();
  const AreaBreakdown area = EstimateArea(inv);
  EnergyLedger ledger;
  ledger.systolic_j = 30e-3;
  const PowerBreakdown power = EstimatePower(ledger, 67.56, area);
  const TableIIRow r =
      SpnerfRow(inv, area, power, 67.56, "LPDDR4-3200", 59.7);
  EXPECT_EQ(r.name, "SpNeRF (Ours)");
  EXPECT_NEAR(r.sram_mb, 0.61, 0.01);
  EXPECT_NEAR(r.energy_eff_fps_per_w, 67.56 / power.total_w, 1e-9);
  EXPECT_NEAR(r.area_eff_fps_per_mm2, 67.56 / area.total_mm2, 1e-9);
  EXPECT_EQ(r.tech_nm, 28);
}

TEST(TableII, AssemblesThreeRowsInOrder) {
  TableIIRow sp;
  sp.name = "SpNeRF (Ours)";
  const auto rows = AssembleTableII(sp);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "RT-NeRF.Edge");
  EXPECT_EQ(rows[1].name, "NeuRex.Edge");
  EXPECT_EQ(rows[2].name, "SpNeRF (Ours)");
}

TEST(TableII, PaperEfficiencyGapsReproduce) {
  // The paper claims 4x-4.37x energy-efficiency and 2.67x-3.04x
  // area-efficiency gains; with the paper's own SpNeRF row (22.52 FPS/W,
  // 6.36 FPS/mm^2) those ratios follow from the baseline table we store.
  const double spnerf_ee = 22.52, spnerf_ae = 6.36;
  EXPECT_NEAR(spnerf_ee / RtNerfEdge().energy_eff_fps_per_w, 4.0, 0.05);
  EXPECT_NEAR(spnerf_ee / NeurexEdge().energy_eff_fps_per_w, 4.37, 0.05);
  EXPECT_NEAR(spnerf_ae / RtNerfEdge().area_eff_fps_per_mm2, 2.67, 0.05);
  EXPECT_NEAR(spnerf_ae / NeurexEdge().area_eff_fps_per_mm2, 3.04, 0.05);
}

}  // namespace
}  // namespace spnerf
