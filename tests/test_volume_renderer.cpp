#include "render/volume_renderer.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "render/embedding.hpp"
#include "scene/dataset.hpp"

namespace spnerf {
namespace {

/// A source that is empty everywhere.
class EmptySource final : public FieldSource {
 public:
  [[nodiscard]] FieldSample Sample(Vec3f) const override { return {}; }
  [[nodiscard]] const char* Name() const override { return "empty"; }
};

/// A constant-density slab between two x planes.
class SlabSource final : public FieldSource {
 public:
  SlabSource(float x0, float x1, float sigma, float feature)
      : x0_(x0), x1_(x1), sigma_(sigma), feature_(feature) {}
  [[nodiscard]] FieldSample Sample(Vec3f p) const override {
    FieldSample s;
    if (p.x >= x0_ && p.x <= x1_) {
      s.density = sigma_;
      s.features.fill(feature_);
    }
    return s;
  }
  [[nodiscard]] const char* Name() const override { return "slab"; }

 private:
  float x0_, x1_, sigma_, feature_;
};

Camera FrontCamera(int size = 9) {
  return Camera({-1.5f, 0.5f, 0.5f}, {0.5f, 0.5f, 0.5f}, {0.f, 1.f, 0.f},
                30.f, size, size);
}

TEST(VolumeRenderer, EmptySceneRendersBackground) {
  const EmptySource src;
  const Mlp mlp = Mlp::Random(1);
  RenderOptions opt;
  opt.background = {0.2f, 0.4f, 0.6f};
  RenderStats stats;
  const Image img =
      VolumeRenderer(opt).Render(src, mlp, FrontCamera(), &stats);
  for (const Vec3f& p : img.Pixels()) {
    EXPECT_EQ(p, (Vec3f{0.2f, 0.4f, 0.6f}));
  }
  EXPECT_EQ(stats.mlp_evals, 0u);
  EXPECT_GT(stats.steps, 0u);  // it did march
}

TEST(VolumeRenderer, MissedRaysCountAndStayBackground) {
  const EmptySource src;
  const Mlp mlp = Mlp::Random(1);
  // Camera looking away from the scene box.
  const Camera cam({-1.5f, 0.5f, 0.5f}, {-3.f, 0.5f, 0.5f}, {0.f, 1.f, 0.f},
                   30.f, 4, 4);
  RenderStats stats;
  const Image img = VolumeRenderer(RenderOptions{}).Render(src, mlp, cam, &stats);
  EXPECT_EQ(stats.missed_rays, 16u);
  for (const Vec3f& p : img.Pixels()) EXPECT_EQ(p, (Vec3f{1.f, 1.f, 1.f}));
}

TEST(VolumeRenderer, OpaqueSlabHidesBackground) {
  const SlabSource src(0.4f, 0.6f, 1e4f, 0.3f);
  const Mlp mlp = Mlp::Random(2);
  RenderOptions opt;
  opt.background = {1.f, 1.f, 1.f};
  RenderStats stats;
  const Image img =
      VolumeRenderer(opt).Render(src, mlp, FrontCamera(), &stats);
  // Center ray passes through the slab: the color must be the MLP's output,
  // not the background (transmittance ~ 0).
  const Vec3f center = img.At(4, 4);
  const ViewEmbedding view = EmbedViewDirection({1.f, 0.f, 0.f});
  std::array<float, kColorFeatureDim> feat{};
  feat.fill(0.3f);
  const Vec3f mlp_color = mlp.Forward(AssembleMlpInput(feat, view));
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(center[c], mlp_color[c], 0.02f);
  EXPECT_GT(stats.terminated_rays, 0u);
}

TEST(VolumeRenderer, ThinSlabBlendsWithBackground) {
  // Low optical depth: color = w * mlp + (1-w) * background with 0 < w < 1.
  const SlabSource src(0.45f, 0.55f, 8.f, 0.1f);
  const Mlp mlp = Mlp::Random(3);
  RenderOptions opt;
  opt.background = {1.f, 1.f, 1.f};
  const Image img = VolumeRenderer(opt).Render(src, mlp, FrontCamera());
  const Vec3f center = img.At(4, 4);
  // Optical depth = 8 * 0.1 = 0.8 -> transmittance ~ e^-0.8 ~ 0.45.
  for (int c = 0; c < 3; ++c) {
    EXPECT_GT(center[c], 0.2f);
    EXPECT_LT(center[c], 1.0f);
  }
}

TEST(VolumeRenderer, TransmittanceMatchesBeerLambert) {
  // Pure-absorption check using a black MLP-independent measurement: render
  // with background=1 and compare the slab's attenuation against e^-sigma*L.
  const float sigma = 20.f;
  const SlabSource src(0.3f, 0.7f, sigma, 0.0f);
  const Mlp mlp = Mlp::Random(4);
  RenderOptions opt;
  opt.background = {1.f, 1.f, 1.f};
  opt.step_size = 0.001f;
  opt.alpha_threshold = 0.0f;
  opt.termination_transmittance = 0.0f;
  const Image img = VolumeRenderer(opt).Render(src, mlp, FrontCamera());
  const Vec3f center = img.At(4, 4);
  const float expected_T = std::exp(-sigma * 0.4f);
  // Measured color = sum(w_i * mlp) + T * 1. The mlp part is some constant
  // c0 in [0,1]; we can bound: center >= T and center <= (1-T) + T.
  for (int c = 0; c < 3; ++c) {
    EXPECT_GE(center[c], expected_T * 0.9f);
  }
}

TEST(VolumeRenderer, AlphaThresholdSkipsMlp) {
  const SlabSource src(0.4f, 0.6f, 0.5f, 0.2f);  // very faint
  const Mlp mlp = Mlp::Random(5);
  RenderOptions opt;
  opt.alpha_threshold = 0.9f;  // nothing passes
  RenderStats stats;
  (void)VolumeRenderer(opt).Render(src, mlp, FrontCamera(), &stats);
  EXPECT_EQ(stats.mlp_evals, 0u);
}

TEST(VolumeRenderer, EarlyTerminationReducesSteps) {
  const SlabSource src(0.2f, 0.9f, 1e4f, 0.1f);
  const Mlp mlp = Mlp::Random(6);
  RenderOptions keep_going;
  keep_going.termination_transmittance = 0.f;
  RenderOptions stop_early;
  stop_early.termination_transmittance = 0.1f;
  RenderStats a, b;
  (void)VolumeRenderer(keep_going).Render(src, mlp, FrontCamera(), &a);
  (void)VolumeRenderer(stop_early).Render(src, mlp, FrontCamera(), &b);
  EXPECT_LT(b.mlp_evals, a.mlp_evals);
  EXPECT_GT(b.terminated_rays, 0u);
}

TEST(VolumeRenderer, CoarseSkipPreservesImage) {
  // Render a real scene with and without empty-space skipping; images must
  // match (the skip is conservative) while steps drop substantially.
  DatasetParams dp;
  dp.resolution_override = 48;
  dp.vqrf.codebook_size = 64;
  dp.vqrf.kmeans_iterations = 2;
  const SceneDataset ds = BuildDataset(SceneId::kMic, dp);
  const GridFieldSource src(ds.full_grid);
  const Mlp mlp = Mlp::Random(7);
  const CoarseOccupancy occ =
      CoarseOccupancy::Build(BitGrid::FromGrid(ds.full_grid), 4);

  const Camera cam({-0.8f, 0.6f, 0.5f}, {0.5f, 0.4f, 0.5f}, {0.f, 1.f, 0.f},
                   40.f, 24, 24);
  RenderOptions no_skip;
  RenderOptions with_skip;
  with_skip.coarse_skip = &occ;
  RenderStats a, b;
  const Image img_a = VolumeRenderer(no_skip).Render(src, mlp, cam, &a);
  const Image img_b = VolumeRenderer(with_skip).Render(src, mlp, cam, &b);
  EXPECT_LT(b.steps, a.steps / 2);
  EXPECT_GT(b.coarse_skips, 0u);
  // The skipped render must be visually identical (PSNR very high).
  EXPECT_GT(Psnr(img_a, img_b), 45.0);
  // MLP evals nearly identical: skipping only removes zero-density samples,
  // though the jump re-phases sample positions slightly.
  EXPECT_NEAR(static_cast<double>(a.mlp_evals),
              static_cast<double>(b.mlp_evals),
              0.02 * static_cast<double>(a.mlp_evals));
}

TEST(VolumeRenderer, StatsPerRayDistributions) {
  const SlabSource src(0.4f, 0.6f, 100.f, 0.2f);
  const Mlp mlp = Mlp::Random(8);
  RenderStats stats;
  (void)VolumeRenderer(RenderOptions{}).Render(src, mlp, FrontCamera(5), &stats);
  EXPECT_EQ(stats.rays, 25u);
  EXPECT_EQ(stats.steps_per_ray.Count(), 25u);
  EXPECT_NEAR(stats.steps_per_ray.Mean() * 25.0,
              static_cast<double>(stats.steps), 25.0);
}

TEST(VolumeRenderer, ParallelStatlessMatchesSequential) {
  const SlabSource src(0.3f, 0.7f, 50.f, 0.4f);
  const Mlp mlp = Mlp::Random(9);
  const Camera cam = FrontCamera(16);
  RenderStats stats;
  const Image seq = VolumeRenderer(RenderOptions{}).Render(src, mlp, cam, &stats);
  const Image par = VolumeRenderer(RenderOptions{}).Render(src, mlp, cam, nullptr);
  ASSERT_EQ(seq.Pixels().size(), par.Pixels().size());
  for (std::size_t i = 0; i < seq.Pixels().size(); ++i) {
    EXPECT_EQ(seq.Pixels()[i], par.Pixels()[i]);
  }
}

TEST(CellExitT, DegenerateCellStillAdvances) {
  // A zero-area skip cell used to return `t` unchanged, which could stall
  // the empty-space-skipping march. The guard forces strict progress.
  const Ray ray{{0.25f, 0.5f, 0.5f}, {1.f, 0.f, 0.f}};
  const Aabb degenerate{{0.25f, 0.5f, 0.5f}, {0.25f, 0.5f, 0.5f}};
  const float t = 0.0f;
  const float exit_t = render_detail::CellExitT(ray, degenerate, t);
  EXPECT_GT(exit_t, t);
}

TEST(CellExitT, RayOnFaceOfFlatCellAdvances) {
  // Flat (zero-thickness) cell, ray travelling inside its plane: no axis
  // yields a boundary strictly ahead, so only the guard makes progress.
  const Ray ray{{0.5f, 0.25f, 0.5f}, {0.f, 1.f, 0.f}};
  const Aabb flat{{0.4f, 0.25f, 0.4f}, {0.6f, 0.25f, 0.6f}};
  const float t = 0.125f;
  const float exit_t = render_detail::CellExitT(ray, flat, t);
  EXPECT_GT(exit_t, t);
  // Large t: the nextafter step must still strictly advance.
  const float t_big = 1024.0f;
  EXPECT_GT(render_detail::CellExitT(ray, flat, t_big), t_big);
}

TEST(CellExitT, NormalCellReturnsExitBoundary)
{
  const Ray ray{{-1.0f, 0.5f, 0.5f}, {1.f, 0.f, 0.f}};
  const Aabb cell{{0.0f, 0.0f, 0.0f}, {0.25f, 1.f, 1.f}};
  const float exit_t = render_detail::CellExitT(ray, cell, 1.0f);
  EXPECT_NEAR(exit_t, 1.25f, 1e-5f);
}

TEST(CellExitT, GrazingRayAlongCellFaceAdvances) {
  // Regression for the documented skip epsilons: a ray travelling exactly
  // in the plane of a cell face has a direction component at or below
  // kDegenerateDirectionEpsilon on that axis with the origin exactly on
  // the boundary. The degenerate axis must be ignored (no 0/0 or huge
  // negative boundary t), the remaining axes must still yield the exit,
  // and the flat CellExitT and the division-free CellExitTDda used by the
  // octree marcher must agree bitwise.
  const GridDims dims{10, 10, 10};
  const Vec3i cell{3, 4, 5};
  const Aabb bounds{
      {float(cell.x) / 10.f, float(cell.y) / 10.f, float(cell.z) / 10.f},
      {float(cell.x + 1) / 10.f, float(cell.y + 1) / 10.f,
       float(cell.z + 1) / 10.f}};
  Ray ray;
  // Origin y sits EXACTLY on the cell's low y face; x starts inside.
  ray.origin = Vec3f{0.31f, float(cell.y) / 10.f, 0.53f};
  // Sub-epsilon components count as degenerate, exactly like zero.
  for (const float dy : {0.f, 1e-13f, -1e-13f}) {
    ray.direction = Vec3f{1.f, dy, 0.f};
    for (const float t : {0.f, 0.005f, 0.08f}) {
      const float flat = render_detail::CellExitT(ray, bounds, t);
      const float dda = render_detail::CellExitTDda(ray, cell, dims, t);
      EXPECT_GT(flat, t) << "dy=" << dy << " t=" << t;
      EXPECT_EQ(flat, dda) << "dy=" << dy << " t=" << t;  // bitwise
      // The x exit is at world x = 0.4, i.e. t = 0.4 - 0.31 = 0.09.
      EXPECT_NEAR(flat, 0.09f, 1e-5f);
    }
  }
  // Fully degenerate direction (all axes grazing): only the nextafter
  // guard advances, and both variants must still agree bitwise.
  ray.direction = Vec3f{0.f, 0.f, 0.f};
  const float t = 0.25f;
  const float flat = render_detail::CellExitT(ray, bounds, t);
  EXPECT_GT(flat, t);
  EXPECT_EQ(flat, render_detail::CellExitTDda(ray, cell, dims, t));
}

TEST(VolumeRenderer, Fp16MlpOptionChangesOutputSlightly) {
  const SlabSource src(0.4f, 0.6f, 100.f, 0.3f);
  const Mlp mlp = Mlp::Random(10);
  RenderOptions fp32_opt;
  RenderOptions fp16_opt;
  fp16_opt.fp16_mlp = true;
  const Image a = VolumeRenderer(fp32_opt).Render(src, mlp, FrontCamera());
  const Image b = VolumeRenderer(fp16_opt).Render(src, mlp, FrontCamera());
  EXPECT_GT(Psnr(a, b), 35.0);          // close
  EXPECT_FALSE(std::isinf(Psnr(a, b)));  // but not identical
}

}  // namespace
}  // namespace spnerf
