// Stress and contract tests for the lock-free dispatch primitives
// (common/mpmc_queue.hpp, common/spsc_queue.hpp, common/object_pool.hpp)
// and the SPNF_DISPATCH mode plumbing (common/dispatch.hpp). The
// multi-threaded cases are the ones the CI TSan job leans on: every
// acquire/release handshake in the queues is exercised under real
// contention, including ring wraparound, full/empty boundaries and pool
// exhaustion.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <set>
#include <thread>
#include <vector>

#include "common/dispatch.hpp"
#include "common/mpmc_queue.hpp"
#include "common/object_pool.hpp"
#include "common/spsc_queue.hpp"

namespace spnerf {
namespace {

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q(8);
  EXPECT_TRUE(q.Empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));  // full
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(q.TryPop(v));
    EXPECT_EQ(v, i);
  }
  int v = -1;
  EXPECT_FALSE(q.TryPop(v));  // empty
  EXPECT_TRUE(q.Empty());
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  MpmcQueue<int> q(5);
  EXPECT_EQ(q.Capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(8));
}

TEST(MpmcQueue, WraparoundManyLaps) {
  // A tiny ring forced through many laps: the per-cell sequence handshake
  // must keep FIFO order across every wrap.
  MpmcQueue<int> q(4);
  int next_push = 0;
  int next_pop = 0;
  for (int lap = 0; lap < 1000; ++lap) {
    while (q.TryPush(next_push)) ++next_push;
    int v = -1;
    while (q.TryPop(v)) {
      ASSERT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_GE(next_push, 4000);
}

TEST(MpmcQueue, MultiProducerMultiConsumerStress) {
  // N producers push tagged sequences through a small ring while N
  // consumers drain it: nothing lost, nothing duplicated, and each
  // producer's values arrive in its own order (tickets are claimed in
  // push order).
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20000;
  MpmcQueue<int> q(64);
  std::atomic<int> consumed{0};
  std::vector<std::vector<int>> seen(kConsumers);

  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      int v = -1;
      while (consumed.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (q.TryPop(v)) {
          seen[static_cast<std::size_t>(c)].push_back(v);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int tagged = p * kPerProducer + i;
        while (!q.TryPush(tagged)) std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Exactly every tagged value, once.
  std::vector<int> all;
  for (const std::vector<int>& s : seen) {
    all.insert(all.end(), s.begin(), s.end());
  }
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
  }
  // Per-producer order within each consumer's stream.
  for (const std::vector<int>& s : seen) {
    std::vector<int> last(kProducers, -1);
    for (int v : s) {
      const int p = v / kPerProducer;
      ASSERT_GT(v, last[static_cast<std::size_t>(p)]);
      last[static_cast<std::size_t>(p)] = v;
    }
  }
}

TEST(SpscQueue, FifoAndBoundaries) {
  SpscQueue<int> q(4);
  EXPECT_GE(q.Capacity(), 4u);
  const std::size_t cap = q.Capacity();
  for (std::size_t i = 0; i < cap; ++i) {
    EXPECT_TRUE(q.TryPush(static_cast<int>(i)));
  }
  EXPECT_FALSE(q.TryPush(-1));  // full
  for (std::size_t i = 0; i < cap; ++i) {
    int v = -1;
    ASSERT_TRUE(q.TryPop(v));
    EXPECT_EQ(v, static_cast<int>(i));
  }
  int v = -1;
  EXPECT_FALSE(q.TryPop(v));  // empty
}

TEST(SpscQueue, ProducerConsumerStressWrapsInOrder) {
  constexpr int kItems = 200000;
  SpscQueue<int> q(8);  // tiny: forces constant wraparound
  std::thread consumer([&] {
    int expect = 0;
    int v = -1;
    while (expect < kItems) {
      if (q.TryPop(v)) {
        ASSERT_EQ(v, expect);
        ++expect;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    while (!q.TryPush(i)) std::this_thread::yield();
  }
  consumer.join();
}

TEST(ObjectPool, RecyclesSlabSlots) {
  ObjectPool<std::vector<int>> pool(2);
  std::vector<int>* a = pool.TryAcquire();
  std::vector<int>* b = pool.TryAcquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(pool.Owns(a));
  EXPECT_TRUE(pool.Owns(b));
  EXPECT_EQ(pool.TryAcquire(), nullptr);  // exhausted

  // Recycling, not destruction: the grown capacity survives the
  // release/acquire round trip (the pool's entire reason to exist).
  a->reserve(1024);
  const std::size_t grown = a->capacity();
  pool.Release(a);
  std::vector<int>* again = pool.TryAcquire();
  ASSERT_EQ(again, a);
  EXPECT_GE(again->capacity(), grown);
  pool.Release(again);
  pool.Release(b);
}

TEST(ObjectPool, ExhaustionFallsBackToHeapGracefully) {
  ObjectPool<int> pool(2);
  int* a = pool.Acquire();
  int* b = pool.Acquire();
  EXPECT_EQ(pool.HeapFallbacks(), 0u);
  int* c = pool.Acquire();  // slab exhausted -> heap, never nullptr
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(pool.Owns(c));
  EXPECT_EQ(pool.HeapFallbacks(), 1u);
  // Release routes by address: the heap stray is deleted, slab slots go
  // back to the freelist and can be acquired again.
  pool.Release(c);
  pool.Release(a);
  pool.Release(b);
  int* again = pool.Acquire();
  EXPECT_TRUE(pool.Owns(again));
  EXPECT_EQ(pool.HeapFallbacks(), 1u);
  pool.Release(again);
}

TEST(ObjectPool, ConcurrentAcquireReleaseStress) {
  // Churn a small pool from many threads at once: every handed-out pointer
  // is exclusively owned between acquire and release (write/verify a tag),
  // and the slab never double-vends a slot.
  struct Slot {
    std::atomic<int> owner{-1};
  };
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  ObjectPool<Slot> pool(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        Slot* s = pool.Acquire();
        const int prev = s->owner.exchange(t, std::memory_order_relaxed);
        ASSERT_EQ(prev, -1) << "slot vended to two threads at once";
        s->owner.store(-1, std::memory_order_relaxed);
        pool.Release(s);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // All slots are back: the slab can be fully drained again.
  std::vector<Slot*> drained;
  for (Slot* s = nullptr; (s = pool.TryAcquire()) != nullptr;) {
    drained.push_back(s);
  }
  EXPECT_EQ(drained.size(), pool.Capacity());
  std::set<Slot*> unique(drained.begin(), drained.end());
  EXPECT_EQ(unique.size(), drained.size());
  for (Slot* s : drained) pool.Release(s);
}

TEST(Dispatch, ModeNamesRoundTrip) {
  EXPECT_STREQ(dispatch::ModeName(dispatch::Mode::kLocked), "locked");
  EXPECT_STREQ(dispatch::ModeName(dispatch::Mode::kLockFree), "lockfree");
  dispatch::Mode mode = dispatch::Mode::kLocked;
  EXPECT_TRUE(dispatch::ParseModeName("lockfree", mode));
  EXPECT_EQ(mode, dispatch::Mode::kLockFree);
  EXPECT_TRUE(dispatch::ParseModeName("locked", mode));
  EXPECT_EQ(mode, dispatch::Mode::kLocked);
  EXPECT_FALSE(dispatch::ParseModeName("mutex", mode));
  EXPECT_FALSE(dispatch::ParseModeName("", mode));
  EXPECT_EQ(mode, dispatch::Mode::kLocked);  // unchanged on failure
}

TEST(Dispatch, SetActiveModeSwitchesAndRestores) {
  const dispatch::Mode before = dispatch::ActiveMode();
  const dispatch::Mode prev = dispatch::SetActiveMode(dispatch::Mode::kLocked);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(dispatch::ActiveMode(), dispatch::Mode::kLocked);
  dispatch::SetActiveMode(dispatch::Mode::kLockFree);
  EXPECT_EQ(dispatch::ActiveMode(), dispatch::Mode::kLockFree);
  dispatch::SetActiveMode(before);
  EXPECT_EQ(dispatch::ActiveMode(), before);
}

}  // namespace
}  // namespace spnerf
