#include "render/render_engine.hpp"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "grid/occupancy.hpp"
#include "grid/occupancy_octree.hpp"
#include "scene/dataset.hpp"

namespace spnerf {
namespace {

/// Shared small SpNeRF model: the only source type with decode counters, so
/// it exercises every shard/merge path of the engine.
class RenderEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetParams dp;
    dp.resolution_override = 48;
    dp.vqrf.codebook_size = 64;
    dp.vqrf.kmeans_iterations = 2;
    dataset_ = new SceneDataset(BuildDataset(SceneId::kMaterials, dp));
    SpNeRFParams sp;
    sp.subgrid_count = 8;
    sp.table_size = 8192;
    codec_ = new SpNeRFModel(SpNeRFModel::Preprocess(*dataset_->vqrf, sp));
    mlp_ = new Mlp(Mlp::Random(11));
    occupancy_ = new CoarseOccupancy(
        CoarseOccupancy::Build(BitGrid::FromGrid(dataset_->full_grid), 4));
    octree_ = new OccupancyOctree(OccupancyOctree::Build(*occupancy_));
  }

  static void TearDownTestSuite() {
    delete octree_;
    delete occupancy_;
    delete mlp_;
    delete codec_;
    delete dataset_;
    octree_ = nullptr;
    occupancy_ = nullptr;
    mlp_ = nullptr;
    codec_ = nullptr;
    dataset_ = nullptr;
  }

  static RenderJob MakeJob(const SpNeRFFieldSource& source, int size,
                           int view = 0) {
    RenderJob job;
    job.source = &source;
    job.mlp = mlp_;
    job.camera = OrbitCameras(4, Vec3f{0.5f, 0.45f, 0.5f}, 1.35f, 25.f, 35.f,
                              size, size)[static_cast<std::size_t>(view)];
    job.options.coarse_skip = occupancy_;
    job.options.octree_skip = octree_;
    job.collect_stats = true;
    return job;
  }

  static SceneDataset* dataset_;
  static SpNeRFModel* codec_;
  static Mlp* mlp_;
  static CoarseOccupancy* occupancy_;
  static OccupancyOctree* octree_;
};

SceneDataset* RenderEngineTest::dataset_ = nullptr;
SpNeRFModel* RenderEngineTest::codec_ = nullptr;
Mlp* RenderEngineTest::mlp_ = nullptr;
CoarseOccupancy* RenderEngineTest::occupancy_ = nullptr;
OccupancyOctree* RenderEngineTest::octree_ = nullptr;

void ExpectSameImage(const Image& a, const Image& b) {
  ASSERT_EQ(a.Width(), b.Width());
  ASSERT_EQ(a.Height(), b.Height());
  for (std::size_t i = 0; i < a.Pixels().size(); ++i) {
    ASSERT_EQ(a.Pixels()[i], b.Pixels()[i]) << "pixel " << i;
  }
}

void ExpectSameCounters(const DecodeCounters& a, const DecodeCounters& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.bitmap_zero, b.bitmap_zero);
  EXPECT_EQ(a.empty_slot, b.empty_slot);
  EXPECT_EQ(a.codebook_hits, b.codebook_hits);
  EXPECT_EQ(a.true_grid_hits, b.true_grid_hits);
}

void ExpectSameStats(const RenderStats& a, const RenderStats& b) {
  EXPECT_EQ(a.rays, b.rays);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.coarse_skips, b.coarse_skips);
  EXPECT_EQ(a.mlp_evals, b.mlp_evals);
  EXPECT_EQ(a.terminated_rays, b.terminated_rays);
  EXPECT_EQ(a.missed_rays, b.missed_rays);
  EXPECT_EQ(a.steps_per_ray.Count(), b.steps_per_ray.Count());
  // Bit-identical distributions: same shard decomposition, same ordered
  // reduction, regardless of the worker count.
  EXPECT_EQ(a.steps_per_ray.Mean(), b.steps_per_ray.Mean());
  EXPECT_EQ(a.steps_per_ray.Variance(), b.steps_per_ray.Variance());
  EXPECT_EQ(a.evals_per_ray.Mean(), b.evals_per_ray.Mean());
  EXPECT_EQ(a.evals_per_ray.Variance(), b.evals_per_ray.Variance());
}

TEST_F(RenderEngineTest, ParallelImageAndCountersMatchSequentialReference) {
  const SpNeRFFieldSource source(*codec_, false, false);
  const RenderJob job = MakeJob(source, 40);

  // Hand-rolled fully sequential reference: one stats object, one counter
  // sink, pixels in scanline order.
  const VolumeRenderer renderer(job.options);
  Image ref(job.camera.Width(), job.camera.Height());
  RenderStats ref_stats;
  DecodeCounters ref_counters;
  for (int y = 0; y < job.camera.Height(); ++y) {
    for (int x = 0; x < job.camera.Width(); ++x) {
      ref.At(x, y) = renderer.RenderRay(source, *mlp_,
                                        job.camera.PixelRay(x, y), &ref_stats,
                                        &ref_counters);
    }
  }

  ThreadPool pool(8);
  RenderEngineOptions opts;
  opts.pool = &pool;
  const RenderResult result = RenderEngine(opts).Render(job);

  ExpectSameImage(result.image, ref);
  ExpectSameCounters(result.counters, ref_counters);
  // Integer stats are exact under any merge order.
  EXPECT_EQ(result.stats.rays, ref_stats.rays);
  EXPECT_EQ(result.stats.steps, ref_stats.steps);
  EXPECT_EQ(result.stats.mlp_evals, ref_stats.mlp_evals);
  EXPECT_EQ(result.stats.coarse_skips, ref_stats.coarse_skips);
  EXPECT_EQ(result.stats.steps_per_ray.Count(),
            ref_stats.steps_per_ray.Count());
  // The distribution means agree to rounding (tile-merged Welford vs pure
  // sequential accumulation).
  EXPECT_NEAR(result.stats.steps_per_ray.Mean(),
              ref_stats.steps_per_ray.Mean(), 1e-9);
  EXPECT_NEAR(result.stats.evals_per_ray.Mean(),
              ref_stats.evals_per_ray.Mean(), 1e-9);
  EXPECT_GE(result.wall_ms, 0.0);
}

TEST_F(RenderEngineTest, BitDeterministicAcrossWorkerCounts) {
  const SpNeRFFieldSource source(*codec_, false, false);
  const RenderJob job = MakeJob(source, 48);

  std::vector<RenderResult> results;
  for (unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    RenderEngineOptions opts;
    opts.pool = &pool;
    results.push_back(RenderEngine(opts).Render(job));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ExpectSameImage(results[i].image, results[0].image);
    ExpectSameCounters(results[i].counters, results[0].counters);
    ExpectSameStats(results[i].stats, results[0].stats);
  }
}

TEST_F(RenderEngineTest, MaxThreadsOptionIsDeterministicToo) {
  const SpNeRFFieldSource source(*codec_, false, false);
  const RenderJob job = MakeJob(source, 33);  // odd size: ragged edge tiles
  ThreadPool pool(8);
  RenderResult first;
  for (unsigned cap : {1u, 2u, 8u}) {
    RenderEngineOptions opts;
    opts.pool = &pool;
    opts.max_threads = cap;
    RenderResult r = RenderEngine(opts).Render(job);
    if (cap == 1u) {
      first = std::move(r);
      continue;
    }
    ExpectSameImage(r.image, first.image);
    ExpectSameCounters(r.counters, first.counters);
    ExpectSameStats(r.stats, first.stats);
  }
}

TEST_F(RenderEngineTest, TileSizeChangesImageNeverCounters) {
  const SpNeRFFieldSource source(*codec_, false, false);
  const RenderJob job = MakeJob(source, 40);
  ThreadPool pool(4);
  RenderEngineOptions a_opts, b_opts;
  a_opts.pool = b_opts.pool = &pool;
  a_opts.tile_size = 32;
  b_opts.tile_size = 7;
  const RenderResult a = RenderEngine(a_opts).Render(job);
  const RenderResult b = RenderEngine(b_opts).Render(job);
  // Pixels are independent of the tile decomposition.
  ExpectSameImage(a.image, b.image);
  // Integer counters too; only the float distribution rounding may differ.
  ExpectSameCounters(a.counters, b.counters);
  EXPECT_EQ(a.stats.steps, b.stats.steps);
  EXPECT_EQ(a.stats.mlp_evals, b.stats.mlp_evals);
}

TEST_F(RenderEngineTest, BatchMatchesIndividualRenders) {
  const SpNeRFFieldSource source(*codec_, false, false);
  ThreadPool pool(4);
  RenderEngineOptions opts;
  opts.pool = &pool;
  const RenderEngine engine(opts);

  std::vector<RenderJob> jobs;
  for (int v = 0; v < 3; ++v) jobs.push_back(MakeJob(source, 32, v));
  const std::vector<RenderResult> batch = engine.RenderBatch(jobs);
  ASSERT_EQ(batch.size(), 3u);
  for (int v = 0; v < 3; ++v) {
    const RenderResult single = engine.Render(jobs[static_cast<std::size_t>(v)]);
    ExpectSameImage(batch[static_cast<std::size_t>(v)].image, single.image);
    ExpectSameCounters(batch[static_cast<std::size_t>(v)].counters,
                       single.counters);
    ExpectSameStats(batch[static_cast<std::size_t>(v)].stats, single.stats);
  }
}

TEST_F(RenderEngineTest, OversubscribedMaxThreadsStaysDeterministic) {
  // max_threads beyond the global pool size builds a dedicated pool; the
  // result must still match the 1-worker render bit for bit.
  const SpNeRFFieldSource source(*codec_, false, false);
  const RenderJob job = MakeJob(source, 40);
  RenderEngineOptions seq_opts;
  seq_opts.max_threads = 1;
  RenderEngineOptions over_opts;
  over_opts.max_threads = ThreadPool::Global().WorkerCount() + 7;
  const RenderResult seq = RenderEngine(seq_opts).Render(job);
  const RenderResult over = RenderEngine(over_opts).Render(job);
  ExpectSameImage(over.image, seq.image);
  ExpectSameCounters(over.counters, seq.counters);
  ExpectSameStats(over.stats, seq.stats);
}

TEST_F(RenderEngineTest, EmptyBatchReturnsNoResults) {
  EXPECT_TRUE(RenderEngine().RenderBatch({}).empty());
  EXPECT_TRUE(RenderEngine().SubmitBatch({}).empty());
}

TEST_F(RenderEngineTest, SubmitBatchFuturesMatchBlockingRenderBatch) {
  // The async path and its blocking wrapper are the same machinery: per-job
  // futures must deliver bit-identical images, counters and stats.
  const SpNeRFFieldSource source(*codec_, false, false);
  ThreadPool pool(4);
  RenderEngineOptions opts;
  opts.pool = &pool;
  const RenderEngine engine(opts);

  std::vector<RenderJob> jobs;
  for (int v = 0; v < 3; ++v) jobs.push_back(MakeJob(source, 32, v));
  const std::vector<RenderResult> blocking = engine.RenderBatch(jobs);

  std::vector<std::future<RenderResult>> futures = engine.SubmitBatch(jobs);
  ASSERT_EQ(futures.size(), 3u);
  for (std::size_t v = 0; v < futures.size(); ++v) {
    RenderResult r = futures[v].get();
    ExpectSameImage(r.image, blocking[v].image);
    ExpectSameCounters(r.counters, blocking[v].counters);
    ExpectSameStats(r.stats, blocking[v].stats);
    EXPECT_GE(r.wall_ms, 0.0);
  }
}

TEST_F(RenderEngineTest, ConcurrentSubmittedBatchesStayBitIdentical) {
  // Two batches in flight on one pool at once: interleaving their tiles
  // across the shared workers must not leak into pixels or stats.
  const SpNeRFFieldSource source(*codec_, false, false);
  ThreadPool pool(4);
  RenderEngineOptions opts;
  opts.pool = &pool;
  const RenderEngine engine(opts);

  std::vector<RenderJob> batch_a, batch_b;
  for (int v = 0; v < 2; ++v) batch_a.push_back(MakeJob(source, 40, v));
  for (int v = 2; v < 4; ++v) batch_b.push_back(MakeJob(source, 40, v));

  std::vector<std::future<RenderResult>> fa = engine.SubmitBatch(batch_a);
  std::vector<std::future<RenderResult>> fb = engine.SubmitBatch(batch_b);
  for (std::size_t v = 0; v < 2; ++v) {
    const RenderResult solo_a = engine.Render(batch_a[v]);
    const RenderResult solo_b = engine.Render(batch_b[v]);
    RenderResult ra = fa[v].get();
    RenderResult rb = fb[v].get();
    ExpectSameImage(ra.image, solo_a.image);
    ExpectSameStats(ra.stats, solo_a.stats);
    ExpectSameImage(rb.image, solo_b.image);
    ExpectSameStats(rb.stats, solo_b.stats);
  }
}

TEST_F(RenderEngineTest, SubmitBatchCallbackDeliversResultsInJobOrder) {
  const SpNeRFFieldSource source(*codec_, false, false);
  ThreadPool pool(4);
  RenderEngineOptions opts;
  opts.pool = &pool;
  const RenderEngine engine(opts);

  std::vector<RenderJob> jobs;
  for (int v = 0; v < 3; ++v) jobs.push_back(MakeJob(source, 32, v));
  std::promise<std::vector<RenderResult>> delivered;
  engine.SubmitBatch(
      jobs, [&](std::vector<std::future<RenderResult>> ready) {
        // Every delivered future is ready; get() never blocks here.
        std::vector<RenderResult> results;
        for (std::future<RenderResult>& f : ready) results.push_back(f.get());
        delivered.set_value(std::move(results));
      });
  std::vector<RenderResult> results = delivered.get_future().get();
  ASSERT_EQ(results.size(), 3u);
  for (int v = 0; v < 3; ++v) {
    const RenderResult solo = engine.Render(jobs[static_cast<std::size_t>(v)]);
    ExpectSameImage(results[static_cast<std::size_t>(v)].image, solo.image);
  }
}

TEST_F(RenderEngineTest, StatsOffLeavesZeroStats) {
  const SpNeRFFieldSource source(*codec_, false, false);
  RenderJob job = MakeJob(source, 24);
  job.collect_stats = false;
  const RenderResult r = RenderEngine().Render(job);
  EXPECT_EQ(r.stats.rays, 0u);
  EXPECT_EQ(r.counters.queries, 0u);
  EXPECT_FALSE(r.image.Empty());
}

/// Always throws from Sample: forces a render-time error on whatever pool
/// worker claims the tile.
class ThrowingFieldSource final : public FieldSource {
 public:
  [[nodiscard]] FieldSample Sample(Vec3f) const override {
    throw SpnerfError("injected render failure");
  }
  [[nodiscard]] const char* Name() const override { return "throwing"; }
};

TEST_F(RenderEngineTest, RenderErrorFailsTheJobFutureNotTheProcess) {
  // A throw inside a tile on a detached pool worker must surface through
  // the job's future (get() rethrows), never escape the worker thread.
  const ThrowingFieldSource source;
  RenderJob job;
  job.source = &source;
  job.mlp = mlp_;
  job.camera = OrbitCameras(1, Vec3f{0.5f, 0.45f, 0.5f}, 1.35f, 25.f, 35.f,
                            24, 24)[0];
  ThreadPool pool(4);
  RenderEngineOptions opts;
  opts.pool = &pool;
  const RenderEngine engine(opts);
  std::vector<std::future<RenderResult>> futures = engine.SubmitBatch({job});
  ASSERT_EQ(futures.size(), 1u);
  EXPECT_THROW(futures[0].get(), SpnerfError);
  // The blocking wrapper propagates the same error to its caller.
  EXPECT_THROW((void)engine.RenderBatch({job}), SpnerfError);
}

TEST_F(RenderEngineTest, VolumeRendererStatsPathMatchesEngine) {
  // The legacy VolumeRenderer::Render API must produce the engine's
  // results exactly — it is a thin wrapper over a one-job batch.
  const SpNeRFFieldSource source(*codec_, false, false);
  const RenderJob job = MakeJob(source, 36);
  const RenderResult engine_result = RenderEngine().Render(job);

  RenderStats stats;
  const Image img =
      VolumeRenderer(job.options).Render(source, *mlp_, job.camera, &stats);
  ExpectSameImage(img, engine_result.image);
  ExpectSameStats(stats, engine_result.stats);
}

}  // namespace
}  // namespace spnerf
