// Occupancy-octree tests: build/reduction invariants (parent bit == OR of
// children at every level, leaf level bit-identical to CoarseOccupancy,
// dilation preserved through the pyramid), the shallowest-empty-ancestor
// query, and the DDA skip chain's bit-exactness against a brute-force
// replay of the flat reference chain on random, axis-aligned, diagonal and
// boundary-origin rays.
#include "grid/occupancy_octree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "render/camera.hpp"
#include "render/volume_renderer.hpp"

namespace spnerf {
namespace {

BitGrid RandomFine(GridDims dims, int set_bits, u64 seed) {
  BitGrid b(dims);
  Rng rng(seed);
  for (int i = 0; i < set_bits; ++i) {
    b.Set(Vec3i{rng.UniformInt(0, dims.nx - 1), rng.UniformInt(0, dims.ny - 1),
                rng.UniformInt(0, dims.nz - 1)},
          true);
  }
  return b;
}

CoarseOccupancy RandomCoarse(int set_bits = 40, u64 seed = 7) {
  return CoarseOccupancy::Build(RandomFine({40, 40, 40}, set_bits, seed), 4);
}

// ------------------------------------------------------ build invariants --

TEST(OccupancyOctree, LeafLevelIsBitIdenticalToCoarse) {
  const CoarseOccupancy coarse = RandomCoarse();
  const OccupancyOctree tree = OccupancyOctree::Build(coarse);
  EXPECT_EQ(tree.Factor(), coarse.Factor());
  EXPECT_EQ(tree.LeafDims(), coarse.CoarseDims());
  EXPECT_EQ(tree.LeafBits().Words(), coarse.Bits().Words());
}

TEST(OccupancyOctree, BoundaryTablesMatchCellBoundsBitwise) {
  // The marcher replaces the CellBounds divisions with these table loads;
  // bit-exactness of the whole render hinges on every entry being the
  // exact division result.
  const OccupancyOctree tree = OccupancyOctree::Build(RandomCoarse());
  const GridDims& d = tree.LeafDims();
  for (int i = 0; i <= d.nx; ++i) {
    ASSERT_EQ(tree.BoundaryX()[i],
              static_cast<float>(i) / static_cast<float>(d.nx));
  }
  for (int i = 0; i <= d.ny; ++i) {
    ASSERT_EQ(tree.BoundaryY()[i],
              static_cast<float>(i) / static_cast<float>(d.ny));
  }
  for (int i = 0; i <= d.nz; ++i) {
    ASSERT_EQ(tree.BoundaryZ()[i],
              static_cast<float>(i) / static_cast<float>(d.nz));
  }
}

TEST(OccupancyOctree, ParentBitIsOrOfChildrenAtEveryLevel) {
  const OccupancyOctree tree = OccupancyOctree::Build(RandomCoarse());
  ASSERT_GE(tree.Levels(), 2);
  for (int l = 0; l + 1 < tree.Levels(); ++l) {
    const BitGrid& parent = tree.Level(l);
    const BitGrid& child = tree.Level(l + 1);
    const GridDims& pd = parent.Dims();
    const GridDims& cd = child.Dims();
    for (int x = 0; x < pd.nx; ++x) {
      for (int y = 0; y < pd.ny; ++y) {
        for (int z = 0; z < pd.nz; ++z) {
          bool any = false;
          for (int dx = 0; dx < 2 && !any; ++dx) {
            for (int dy = 0; dy < 2 && !any; ++dy) {
              for (int dz = 0; dz < 2 && !any; ++dz) {
                const Vec3i q{2 * x + dx, 2 * y + dy, 2 * z + dz};
                if (cd.Contains(q) && child.Test(q)) any = true;
              }
            }
          }
          EXPECT_EQ(parent.Test(Vec3i{x, y, z}), any)
              << "level " << l << " cell " << x << "," << y << "," << z;
        }
      }
    }
  }
}

TEST(OccupancyOctree, RootIsSingleCellAndDimsHalve) {
  const OccupancyOctree tree = OccupancyOctree::Build(RandomCoarse());
  EXPECT_EQ(tree.Level(0).Dims(), (GridDims{1, 1, 1}));
  for (int l = 0; l + 1 < tree.Levels(); ++l) {
    const GridDims& p = tree.Level(l).Dims();
    const GridDims& c = tree.Level(l + 1).Dims();
    EXPECT_EQ(p.nx, (c.nx + 1) / 2);
    EXPECT_EQ(p.ny, (c.ny + 1) / 2);
    EXPECT_EQ(p.nz, (c.nz + 1) / 2);
  }
  // 10^3 leaf cells: 10 -> 5 -> 3 -> 2 -> 1.
  EXPECT_EQ(tree.Levels(), 5);
}

TEST(OccupancyOctree, DilationSurvivesTheReduction) {
  // One fine point dilates to a 3x3x3 coarse neighbourhood; every dilated
  // leaf must be occupied in the tree, and so must every ancestor above it.
  BitGrid fine(GridDims{40, 40, 40});
  fine.Set(Vec3i{20, 20, 20}, true);
  const CoarseOccupancy coarse = CoarseOccupancy::Build(fine, 4);
  const OccupancyOctree tree = OccupancyOctree::Build(coarse);
  const int leaf = tree.Levels() - 1;
  for (int x = 4; x <= 6; ++x) {
    for (int y = 4; y <= 6; ++y) {
      for (int z = 4; z <= 6; ++z) {
        EXPECT_TRUE(tree.LeafBits().Test(Vec3i{x, y, z}));
        for (int l = 0; l < leaf; ++l) {
          const int shift = leaf - l;
          EXPECT_TRUE(tree.Level(l).Test(Vec3i{x >> shift, y >> shift, z >> shift}));
        }
      }
    }
  }
}

TEST(OccupancyOctree, EmptySceneReducesToEmptyRoot) {
  const CoarseOccupancy coarse =
      CoarseOccupancy::Build(BitGrid(GridDims{40, 40, 40}), 4);
  const OccupancyOctree tree = OccupancyOctree::Build(coarse);
  EXPECT_FALSE(tree.Level(0).Test(Vec3i{0, 0, 0}));
  OctreeRayCache cache;
  ASSERT_TRUE(tree.FindEmptyNode(Vec3i{3, 7, 9}, cache));
  // The root is the shallowest empty node and covers the whole grid.
  EXPECT_EQ(cache.level, 0);
  EXPECT_EQ(cache.lo, (Vec3i{0, 0, 0}));
  EXPECT_EQ(cache.hi, (Vec3i{10, 10, 10}));
}

TEST(OccupancyOctree, FromLevelsRejectsBrokenReduction) {
  const OccupancyOctree tree = OccupancyOctree::Build(RandomCoarse());
  std::vector<BitGrid> levels;
  for (int l = 0; l < tree.Levels(); ++l) levels.push_back(tree.Level(l));
  // A valid pyramid round-trips.
  (void)OccupancyOctree::FromLevels(levels, tree.Factor());
  // Clearing the root bit contradicts the occupied leaves below it.
  levels[0] = BitGrid(GridDims{1, 1, 1});
  EXPECT_THROW((void)OccupancyOctree::FromLevels(levels, tree.Factor()),
               SpnerfError);
}

// --------------------------------------------- empty-node query semantics --

TEST(OccupancyOctree, FindsShallowestEmptyAncestor) {
  const CoarseOccupancy coarse = RandomCoarse();
  const OccupancyOctree tree = OccupancyOctree::Build(coarse);
  const GridDims& ld = tree.LeafDims();
  const int leaf = tree.Levels() - 1;
  for (int x = 0; x < ld.nx; ++x) {
    for (int y = 0; y < ld.ny; ++y) {
      for (int z = 0; z < ld.nz; ++z) {
        const Vec3i c{x, y, z};
        OctreeRayCache cache;
        const bool empty = tree.FindEmptyNode(c, cache);
        ASSERT_EQ(empty, !coarse.Bits().Test(c));
        if (!empty) continue;
        ASSERT_TRUE(cache.Covers(c));
        // The node's whole leaf range is empty...
        for (int i = cache.lo.x; i < cache.hi.x; ++i) {
          for (int j = cache.lo.y; j < cache.hi.y; ++j) {
            for (int k = cache.lo.z; k < cache.hi.z; ++k) {
              ASSERT_FALSE(coarse.Bits().Test(Vec3i{i, j, k}));
            }
          }
        }
        // ...and it is the shallowest: the parent node (if any) is occupied.
        if (cache.level > 0) {
          const int shift = leaf - (cache.level - 1);
          EXPECT_TRUE(tree.Level(cache.level - 1)
                          .Test(Vec3i{x >> shift, y >> shift, z >> shift}));
        }
      }
    }
  }
}

TEST(OccupancyOctree, OccupiedAtAgreesWithLeafBitsEverywhere) {
  const CoarseOccupancy coarse = RandomCoarse(60, 21);
  const OccupancyOctree tree = OccupancyOctree::Build(coarse);
  const GridDims& ld = tree.LeafDims();
  OctreeRayCache cache;  // deliberately reused across cells, like a ray does
  for (int x = 0; x < ld.nx; ++x) {
    for (int y = 0; y < ld.ny; ++y) {
      for (int z = 0; z < ld.nz; ++z) {
        const Vec3i c{x, y, z};
        ASSERT_EQ(tree.OccupiedAt(c, cache), coarse.Bits().Test(c))
            << x << "," << y << "," << z;
      }
    }
  }
}

// ------------------------------------------------- DDA chain bit-exactness --

/// One step of the flat reference chain (volume_renderer's oracle path).
float FlatStep(const CoarseOccupancy& coarse, const Ray& ray, float t,
               float step, bool& occupied) {
  const Vec3f p = ray.At(t);
  if (coarse.OccupiedAtWorld(p)) {
    occupied = true;
    return t;
  }
  occupied = false;
  const Aabb cell = coarse.CellBounds(coarse.CellOfWorld(p));
  const float exit_t = render_detail::CellExitT(ray, cell, t);
  return std::max(exit_t + render_detail::kSkipForwardEpsilon, t + step);
}

/// One step of the octree DDA chain (cache + CellExitTDda).
float OctreeStep(const CoarseOccupancy& coarse, const OccupancyOctree& tree,
                 const Ray& ray, float t, float step, OctreeRayCache& cache,
                 bool& occupied) {
  const Vec3f p = ray.At(t);
  const bool inside = !(p.x < 0.f || p.x > 1.f || p.y < 0.f || p.y > 1.f ||
                        p.z < 0.f || p.z > 1.f);
  const Vec3i cell = coarse.CellOfWorld(p);
  if (inside && tree.OccupiedAt(cell, cache)) {
    occupied = true;
    return t;
  }
  occupied = false;
  const float exit_t =
      render_detail::CellExitTDda(ray, cell, tree.LeafDims(), t);
  return std::max(exit_t + render_detail::kSkipForwardEpsilon, t + step);
}

/// Marches `ray` through both chains in lockstep across the whole box and
/// demands bitwise-equal t values, identical cell walks and identical
/// occupancy verdicts at every step.
void ExpectChainsIdentical(const CoarseOccupancy& coarse,
                           const OccupancyOctree& tree, const Ray& ray,
                           float step = 0.003f) {
  const Aabb box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  float t_near = 0.f, t_far = 0.f;
  if (!IntersectAabb(ray, box, t_near, t_far)) return;
  float t_flat = t_near;
  float t_tree = t_near;
  OctreeRayCache cache;
  int steps = 0;
  while (t_flat < t_far) {
    ASSERT_EQ(t_flat, t_tree) << "chains diverged after " << steps << " steps";
    ASSERT_EQ(coarse.CellOfWorld(ray.At(t_flat)),
              coarse.CellOfWorld(ray.At(t_tree)));
    bool occ_flat = false, occ_tree = false;
    t_flat = FlatStep(coarse, ray, t_flat, step, occ_flat);
    t_tree = OctreeStep(coarse, tree, ray, t_tree, step, cache, occ_tree);
    ASSERT_EQ(occ_flat, occ_tree) << "occupancy verdicts diverged at t=" << t_flat;
    if (occ_flat) {
      // Both chains sample here; advance past it the way the marcher does.
      t_flat += step;
      t_tree += step;
    }
    ASSERT_LT(++steps, 100000) << "skip chain failed to progress";
  }
  EXPECT_GE(t_tree, t_far);
}

TEST(OctreeDda, CellExitTDdaMatchesCellExitTBitwise) {
  const CoarseOccupancy coarse = RandomCoarse();
  const GridDims& ld = coarse.CoarseDims();
  Rng rng(33);
  for (int i = 0; i < 2000; ++i) {
    Ray ray;
    ray.origin = Vec3f{rng.Uniform(-0.3f, 1.3f), rng.Uniform(-0.3f, 1.3f),
                       rng.Uniform(-0.3f, 1.3f)};
    ray.direction = Vec3f{rng.Uniform(-1.f, 1.f), rng.Uniform(-1.f, 1.f),
                          rng.Uniform(-1.f, 1.f)};
    if (i % 5 == 0) ray.direction.x = 0.f;   // axis-degenerate components
    if (i % 7 == 0) ray.direction.y = 0.f;
    const Vec3i cell{rng.UniformInt(0, ld.nx - 1), rng.UniformInt(0, ld.ny - 1),
                     rng.UniformInt(0, ld.nz - 1)};
    const float t = rng.Uniform(0.f, 2.f);
    const float expect =
        render_detail::CellExitT(ray, coarse.CellBounds(cell), t);
    const float got = render_detail::CellExitTDda(ray, cell, ld, t);
    ASSERT_EQ(expect, got) << "ray " << i;
  }
}

TEST(OctreeDda, RandomRaysWalkIdenticallyToFlat) {
  const CoarseOccupancy coarse = RandomCoarse(30, 91);
  const OccupancyOctree tree = OccupancyOctree::Build(coarse);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Ray ray;
    ray.origin = Vec3f{rng.Uniform(-0.5f, 1.5f), rng.Uniform(-0.5f, 1.5f),
                       rng.Uniform(-0.5f, 1.5f)};
    ray.direction =
        (Vec3f{rng.Uniform(-1.f, 1.f), rng.Uniform(-1.f, 1.f),
                        rng.Uniform(-1.f, 1.f)});
    ExpectChainsIdentical(coarse, tree, ray);
  }
}

TEST(OctreeDda, AxisAlignedRaysWalkIdenticallyToFlat) {
  const CoarseOccupancy coarse = RandomCoarse(50, 13);
  const OccupancyOctree tree = OccupancyOctree::Build(coarse);
  for (int axis = 0; axis < 3; ++axis) {
    for (int sign = -1; sign <= 1; sign += 2) {
      Vec3f dir{0.f, 0.f, 0.f};
      dir[axis] = static_cast<float>(sign);
      Rng rng(static_cast<u64>(100 + axis * 2 + sign));
      for (int i = 0; i < 30; ++i) {
        Ray ray;
        ray.origin = Vec3f{rng.Uniform(0.f, 1.f), rng.Uniform(0.f, 1.f),
                           rng.Uniform(0.f, 1.f)};
        ray.origin[axis] = sign > 0 ? -0.2f : 1.2f;
        ray.direction = dir;
        ExpectChainsIdentical(coarse, tree, ray);
      }
    }
  }
}

TEST(OctreeDda, DiagonalAndBoundaryOriginRaysWalkIdenticallyToFlat) {
  const CoarseOccupancy coarse = RandomCoarse(45, 77);
  const OccupancyOctree tree = OccupancyOctree::Build(coarse);
  // Exact corner-to-corner diagonals.
  for (const Vec3f d : {Vec3f{1.f, 1.f, 1.f}, Vec3f{1.f, -1.f, 1.f},
                        Vec3f{-1.f, 1.f, 1.f}, Vec3f{1.f, 1.f, -1.f}}) {
    Ray ray;
    ray.origin = Vec3f{d.x > 0 ? -0.1f : 1.1f, d.y > 0 ? -0.1f : 1.1f,
                       d.z > 0 ? -0.1f : 1.1f};
    ray.direction = d.Normalized();
    ExpectChainsIdentical(coarse, tree, ray);
  }
  // Origins exactly on cell boundaries (t_near = 0 lands on a face).
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    Ray ray;
    const GridDims& ld = coarse.CoarseDims();
    ray.origin = Vec3f{
        static_cast<float>(rng.UniformInt(0, ld.nx)) / static_cast<float>(ld.nx),
        static_cast<float>(rng.UniformInt(0, ld.ny)) / static_cast<float>(ld.ny),
        static_cast<float>(rng.UniformInt(0, ld.nz)) / static_cast<float>(ld.nz)};
    ray.direction =
        (Vec3f{rng.Uniform(-1.f, 1.f), rng.Uniform(-1.f, 1.f),
                        rng.Uniform(-1.f, 1.f)});
    ExpectChainsIdentical(coarse, tree, ray);
  }
}

}  // namespace
}  // namespace spnerf
