#include "model/area_model.hpp"
#include "model/power_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spnerf {
namespace {

TEST(AreaModel, DefaultInventoryMatchesPaperSram) {
  const HardwareInventory inv = DefaultInventory();
  EXPECT_EQ(inv.SgpuSramBytes(), 571u * 1024);  // paper V-C
  EXPECT_EQ(inv.MlpSramBytes(), 58u * 1024);    // paper V-C
  EXPECT_EQ(inv.TotalSramBytes(), 629u * 1024);  // 0.61 MB in Table II
  EXPECT_EQ(inv.SystolicMacs(), 64 * 64);
  EXPECT_EQ(inv.sgpu_lanes, 16);
}

TEST(AreaModel, DoubleBufferedMacrosCountTwice) {
  SramMacroSpec single{"a", 1024, false};
  SramMacroSpec dbl{"b", 1024, true};
  EXPECT_EQ(single.TotalBytes(), 1024u);
  EXPECT_EQ(dbl.TotalBytes(), 2048u);
}

TEST(AreaModel, TotalNearPaperDesignPoint) {
  const AreaBreakdown a = EstimateArea(DefaultInventory());
  EXPECT_NEAR(a.total_mm2, 7.7, 0.8);  // Table II: 7.7 mm^2
  EXPECT_NEAR(a.total_mm2,
              a.systolic_mm2 + a.sgpu_logic_mm2 + a.sram_mm2 +
                  a.dram_phy_mm2 + a.controller_misc_mm2,
              1e-9);
}

TEST(AreaModel, SystolicIsLargestLogicBlock) {
  const AreaBreakdown a = EstimateArea(DefaultInventory());
  EXPECT_GT(a.systolic_mm2, a.sgpu_logic_mm2);
  EXPECT_GT(a.systolic_mm2, a.sram_mm2);
}

TEST(AreaModel, SramIsSmallShare) {
  // Fig 9(a): on-chip SRAM occupies only a small fraction — the paper's
  // contrast with prior SRAM-dominated designs.
  const AreaBreakdown a = EstimateArea(DefaultInventory());
  EXPECT_LT(a.SramShare(), 0.10);
  EXPECT_GT(a.SramShare(), 0.01);
}

TEST(AreaModel, MoreMacsMoreArea) {
  HardwareInventory big = DefaultInventory();
  big.systolic_rows = 128;
  const AreaBreakdown a = EstimateArea(DefaultInventory());
  const AreaBreakdown b = EstimateArea(big);
  EXPECT_GT(b.systolic_mm2, a.systolic_mm2 * 1.8);
}

TEST(PowerModel, LedgerAccumulates) {
  EnergyLedger a;
  a.systolic_j = 1.0;
  a.sram_j = 0.5;
  EnergyLedger b;
  b.systolic_j = 2.0;
  b.dram_dynamic_j = 0.25;
  a += b;
  EXPECT_DOUBLE_EQ(a.systolic_j, 3.0);
  EXPECT_DOUBLE_EQ(a.sram_j, 0.5);
  EXPECT_DOUBLE_EQ(a.dram_dynamic_j, 0.25);
  EXPECT_DOUBLE_EQ(a.TotalJ(), 3.75);
}

TEST(PowerModel, PowerIsEnergyTimesFps) {
  EnergyLedger ledger;
  ledger.systolic_j = 30e-3;  // 30 mJ per frame
  ledger.sram_j = 2e-3;
  const AreaBreakdown area = EstimateArea(DefaultInventory());
  const PowerBreakdown p = EstimatePower(ledger, 60.0, area);
  EXPECT_NEAR(p.systolic_w, 1.8, 1e-9);
  EXPECT_NEAR(p.sram_w, 0.12, 1e-9);
  EXPECT_GT(p.leakage_w, 0.0);
  EXPECT_NEAR(p.total_w,
              p.systolic_w + p.sram_w + p.sgpu_logic_w + p.dram_w +
                  p.other_w + p.leakage_w,
              1e-12);
}

TEST(PowerModel, LeakageIndependentOfFps) {
  EnergyLedger ledger;
  ledger.systolic_j = 1e-3;
  const AreaBreakdown area = EstimateArea(DefaultInventory());
  const PowerBreakdown slow = EstimatePower(ledger, 10.0, area);
  const PowerBreakdown fast = EstimatePower(ledger, 100.0, area);
  EXPECT_DOUBLE_EQ(slow.leakage_w, fast.leakage_w);
  EXPECT_GT(fast.systolic_w, slow.systolic_w);
}

TEST(PowerModel, ZeroFpsThrows) {
  const AreaBreakdown area = EstimateArea(DefaultInventory());
  EXPECT_THROW(EstimatePower(EnergyLedger{}, 0.0, area), SpnerfError);
}

TEST(Dvfs, NominalRatioIsIdentity) {
  EnergyLedger ledger;
  ledger.systolic_j = 30e-3;
  const AreaBreakdown area = EstimateArea(DefaultInventory());
  const PowerBreakdown nominal = EstimatePower(ledger, 60.0, area);
  const DvfsPoint pt = ScaleWithDvfs(nominal, 60.0, 1.0);
  EXPECT_NEAR(pt.fps, 60.0, 1e-9);
  EXPECT_NEAR(pt.power.total_w, nominal.total_w, 1e-9);
}

TEST(Dvfs, LowerClockImprovesEfficiency) {
  EnergyLedger ledger;
  ledger.systolic_j = 30e-3;
  const AreaBreakdown area = EstimateArea(DefaultInventory());
  const PowerBreakdown nominal = EstimatePower(ledger, 60.0, area);
  const DvfsPoint slow = ScaleWithDvfs(nominal, 60.0, 0.6);
  const DvfsPoint fast = ScaleWithDvfs(nominal, 60.0, 1.4);
  EXPECT_LT(slow.fps, fast.fps);
  EXPECT_LT(slow.power.total_w, fast.power.total_w);
  EXPECT_GT(slow.FpsPerWatt(), fast.FpsPerWatt());  // voltage-squared win
}

TEST(Dvfs, PowerSuperlinearInFrequency) {
  EnergyLedger ledger;
  ledger.systolic_j = 30e-3;
  const AreaBreakdown area = EstimateArea(DefaultInventory());
  const PowerBreakdown nominal = EstimatePower(ledger, 60.0, area);
  const DvfsPoint doubled = ScaleWithDvfs(nominal, 60.0, 2.0);
  EXPECT_GT(doubled.power.systolic_w, nominal.systolic_w * 2.0);
}

TEST(Dvfs, InvalidRatioThrows) {
  const PowerBreakdown nominal{};
  EXPECT_THROW(ScaleWithDvfs(nominal, 60.0, 0.0), SpnerfError);
}

TEST(PowerModel, SharesComputed) {
  EnergyLedger ledger;
  ledger.systolic_j = 40e-3;
  ledger.sram_j = 4e-3;
  const AreaBreakdown area = EstimateArea(DefaultInventory());
  const PowerBreakdown p = EstimatePower(ledger, 50.0, area);
  EXPECT_GT(p.SystolicShare(), 0.5);
  EXPECT_LT(p.SramShare(), 0.2);
}

}  // namespace
}  // namespace spnerf
