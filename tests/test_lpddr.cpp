#include "dram/lpddr.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {
namespace {

TEST(DramConfig, PresetsMatchPaperBandwidths) {
  EXPECT_DOUBLE_EQ(Lpddr4_3200().peak_bandwidth_gbps, 59.7);  // Table I XNX
  EXPECT_DOUBLE_EQ(Lpddr4_1600().peak_bandwidth_gbps, 17.0);  // RT-NeRF.Edge
  EXPECT_DOUBLE_EQ(Lpddr5_102().peak_bandwidth_gbps, 102.4);  // Table I ONX
  EXPECT_DOUBLE_EQ(Hbm2_A100().peak_bandwidth_gbps, 1555.0);  // Table I A100
}

TEST(LpddrModel, FirstAccessIsRowMiss) {
  LpddrModel dram(Lpddr4_3200());
  const DramAccessResult r = dram.Access(0, 64, false, 0);
  EXPECT_FALSE(r.row_hit);
  EXPECT_EQ(dram.Stats().row_misses, 1u);
  // Latency includes precharge + activate + CAS.
  const auto& t = dram.Config().timings;
  EXPECT_GE(r.complete_cycle,
            static_cast<Cycle>(t.t_rp_ns + t.t_rcd_ns + t.t_cl_ns));
}

TEST(LpddrModel, SecondAccessSameRowHits) {
  LpddrModel dram(Lpddr4_3200());
  (void)dram.Access(0, 64, false, 0);
  const DramAccessResult r2 = dram.Access(64, 64, false, 1000);
  EXPECT_TRUE(r2.row_hit);
  EXPECT_EQ(dram.Stats().row_hits, 1u);
}

TEST(LpddrModel, DifferentRowSameBankMisses) {
  const DramConfig cfg = Lpddr4_3200();
  LpddrModel dram(cfg);
  const u64 bank_stride = static_cast<u64>(cfg.row_bytes) * cfg.channels *
                          cfg.banks_per_channel;
  (void)dram.Access(0, 64, false, 0);
  (void)dram.Access(bank_stride, 64, false, 1000);  // same bank, next row
  EXPECT_EQ(dram.Stats().row_misses, 2u);
}

TEST(LpddrModel, SequentialStreamApproachesPeakBandwidth) {
  const DramConfig cfg = Lpddr4_3200();
  LpddrModel dram(cfg);
  const u64 total = 8ull * 1024 * 1024;
  for (u64 off = 0; off < total; off += 256) {
    (void)dram.Access(off, 256, false, 0);
  }
  const double ns = static_cast<double>(dram.DrainCycle());
  const double achieved = static_cast<double>(total) / ns;  // B/ns = GB/s
  EXPECT_GT(achieved, cfg.peak_bandwidth_gbps * 0.5);
  EXPECT_LE(achieved, cfg.peak_bandwidth_gbps * 1.001);
}

TEST(LpddrModel, RandomAccessesSlowerThanSequential) {
  const DramConfig cfg = Lpddr4_3200();
  LpddrModel seq(cfg), rnd(cfg);
  const int n = 4096;
  for (int i = 0; i < n; ++i) {
    (void)seq.Access(static_cast<u64>(i) * 64, 64, false, 0);
  }
  Rng rng(1);
  for (int i = 0; i < n; ++i) {
    (void)rnd.Access(rng.NextBelow(1ull << 30) & ~63ull, 64, false, 0);
  }
  EXPECT_GT(rnd.DrainCycle(), seq.DrainCycle());
  EXPECT_GT(rnd.Stats().row_misses, seq.Stats().row_misses);
}

TEST(LpddrModel, StatsCountBytesAndOps) {
  LpddrModel dram(Lpddr4_3200());
  (void)dram.Access(0, 128, false, 0);
  (void)dram.Access(4096, 256, true, 0);
  EXPECT_EQ(dram.Stats().reads, 1u);
  EXPECT_EQ(dram.Stats().writes, 1u);
  EXPECT_EQ(dram.Stats().bytes_read, 128u);
  EXPECT_EQ(dram.Stats().bytes_written, 256u);
  EXPECT_EQ(dram.Stats().TotalBytes(), 384u);
}

TEST(LpddrModel, EnergyLedgerTracksTraffic) {
  const DramConfig cfg = Lpddr4_3200();
  LpddrModel dram(cfg);
  (void)dram.Access(0, 256, false, 0);
  const DramStats& s = dram.Stats();
  // rd/wr + IO energy per bit.
  const double bits = 256.0 * 8.0;
  EXPECT_NEAR(s.rdwr_energy_j, bits * cfg.energy.rdwr_pj_per_bit * 1e-12,
              1e-18);
  EXPECT_NEAR(s.io_energy_j, bits * cfg.energy.io_pj_per_bit * 1e-12, 1e-18);
  EXPECT_NEAR(s.activate_energy_j, cfg.energy.activate_nj * 1e-9, 1e-15);
  EXPECT_GT(s.DynamicEnergyJ(), 0.0);
}

TEST(LpddrModel, BackgroundEnergyScalesWithTime) {
  LpddrModel dram(Lpddr4_3200());
  EXPECT_NEAR(dram.BackgroundEnergyJ(1.0), 60e-3, 1e-9);
  EXPECT_NEAR(dram.BackgroundEnergyJ(0.5), 30e-3, 1e-9);
}

TEST(LpddrModel, ChannelsWorkInParallel) {
  // The same traffic through a 1-channel device takes ~4x longer than
  // through a 4-channel one (bandwidth is per-device).
  DramConfig one = Lpddr4_3200();
  one.channels = 1;
  one.peak_bandwidth_gbps = 59.7 / 4.0;
  LpddrModel narrow(one), wide(Lpddr4_3200());
  for (u64 off = 0; off < 1024 * 1024; off += 256) {
    (void)narrow.Access(off, 256, false, 0);
    (void)wide.Access(off, 256, false, 0);
  }
  EXPECT_GT(narrow.DrainCycle(), wide.DrainCycle() * 3);
}

TEST(LpddrModel, RequestsQueueBehindBusyBank) {
  LpddrModel dram(Lpddr4_3200());
  const DramAccessResult r1 = dram.Access(0, 256, false, 0);
  // Immediately issue to the same address: the bank is occupied by r1's
  // activate + transfer, so r2 starts strictly later (CAS latency itself is
  // pipelined and does not serialize).
  const DramAccessResult r2 = dram.Access(0, 256, false, 0);
  EXPECT_GT(r2.issue_cycle, r1.issue_cycle);
  EXPECT_TRUE(r2.row_hit);  // the row stayed open
  EXPECT_GE(r2.complete_cycle, r1.complete_cycle);
}

TEST(LpddrModel, MinTransferCyclesIsRooflineFloor) {
  LpddrModel dram(Lpddr4_3200());
  // 59.7 GB/s = 59.7 B/ns; 5970 bytes -> 100 ns.
  EXPECT_NEAR(dram.MinTransferCycles(5970), 100.0, 1e-9);
}

TEST(LpddrModel, ZeroByteAccessThrows) {
  LpddrModel dram(Lpddr4_3200());
  EXPECT_THROW(dram.Access(0, 0, false, 0), SpnerfError);
}

TEST(LpddrModel, ResetStatsClears) {
  LpddrModel dram(Lpddr4_3200());
  (void)dram.Access(0, 64, false, 0);
  dram.ResetStats();
  EXPECT_EQ(dram.Stats().reads, 0u);
  EXPECT_EQ(dram.Stats().TotalBytes(), 0u);
  EXPECT_EQ(dram.Stats().DynamicEnergyJ(), 0.0);
}

TEST(LpddrModel, Lpddr4_1600SlowerThan3200) {
  LpddrModel slow(Lpddr4_1600()), fast(Lpddr4_3200());
  for (u64 off = 0; off < 512 * 1024; off += 256) {
    (void)slow.Access(off, 256, false, 0);
    (void)fast.Access(off, 256, false, 0);
  }
  EXPECT_GT(slow.DrainCycle(), fast.DrainCycle() * 2);
}

}  // namespace
}  // namespace spnerf
