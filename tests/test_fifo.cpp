#include "sim/fifo.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include <string>

namespace spnerf {
namespace {

TEST(BoundedFifo, PushPopFifoOrder) {
  BoundedFifo<int> f(4);
  EXPECT_TRUE(f.TryPush(1));
  EXPECT_TRUE(f.TryPush(2));
  EXPECT_TRUE(f.TryPush(3));
  int v = 0;
  EXPECT_TRUE(f.TryPop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(f.TryPop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(f.TryPop(v));
  EXPECT_EQ(v, 3);
  EXPECT_TRUE(f.Empty());
}

TEST(BoundedFifo, FullRejectsAndCountsStall) {
  BoundedFifo<int> f(2);
  EXPECT_TRUE(f.TryPush(1));
  EXPECT_TRUE(f.TryPush(2));
  EXPECT_TRUE(f.Full());
  EXPECT_FALSE(f.TryPush(3));
  EXPECT_EQ(f.PushStalls(), 1u);
  EXPECT_EQ(f.Size(), 2u);
}

TEST(BoundedFifo, EmptyPopCountsStall) {
  BoundedFifo<int> f(2);
  int v = 0;
  EXPECT_FALSE(f.TryPop(v));
  EXPECT_EQ(f.PopStalls(), 1u);
}

TEST(BoundedFifo, MaxOccupancyTracked) {
  BoundedFifo<int> f(8);
  for (int i = 0; i < 5; ++i) f.TryPush(i);
  int v;
  f.TryPop(v);
  f.TryPop(v);
  for (int i = 0; i < 3; ++i) f.TryPush(i);
  EXPECT_EQ(f.MaxOccupancy(), 6u);
  EXPECT_EQ(f.Pushes(), 8u);
}

TEST(BoundedFifo, FrontPeeksWithoutRemoving) {
  BoundedFifo<std::string> f(2);
  f.TryPush("a");
  f.TryPush("b");
  EXPECT_EQ(f.Front(), "a");
  EXPECT_EQ(f.Size(), 2u);
}

TEST(BoundedFifo, FrontOnEmptyThrows) {
  BoundedFifo<int> f(1);
  EXPECT_THROW((void)f.Front(), SpnerfError);
}

TEST(BoundedFifo, ZeroCapacityThrows) {
  EXPECT_THROW(BoundedFifo<int>(0), SpnerfError);
}

TEST(BoundedFifo, MoveOnlyTypesWork) {
  BoundedFifo<std::unique_ptr<int>> f(2);
  EXPECT_TRUE(f.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(f.TryPop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

}  // namespace
}  // namespace spnerf
