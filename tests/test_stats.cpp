#include "common/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.Sum(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(4);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal() * 3.0 + 1.0;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_EQ(a.Min(), all.Min());
  EXPECT_EQ(a.Max(), all.Max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.Count(), 2u);
  b.Merge(a);  // adopt
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);   // bucket 0
  h.Add(9.5);   // bucket 9
  h.Add(-5.0);  // clamps to 0
  h.Add(50.0);  // clamps to 9
  EXPECT_EQ(h.BucketValue(0), 2u);
  EXPECT_EQ(h.BucketValue(9), 2u);
  EXPECT_EQ(h.Total(), 4u);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(5), 5.0);
}

TEST(Histogram, QuantileOnUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextDouble());
  EXPECT_NEAR(h.Quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.Quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.Quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), SpnerfError);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), SpnerfError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), SpnerfError);
}

TEST(CounterSet, IncrementAndQuery) {
  CounterSet c;
  EXPECT_EQ(c.Get("missing"), 0u);
  c.Inc("a");
  c.Inc("a", 4);
  c.Inc("b");
  EXPECT_EQ(c.Get("a"), 5u);
  EXPECT_EQ(c.Get("b"), 1u);
  EXPECT_EQ(c.All().size(), 2u);
}

TEST(CounterSet, MergeAdds) {
  CounterSet a, b;
  a.Inc("x", 3);
  b.Inc("x", 2);
  b.Inc("y", 7);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 5u);
  EXPECT_EQ(a.Get("y"), 7u);
}

TEST(CounterSet, ClearRemovesAll) {
  CounterSet c;
  c.Inc("k");
  c.Clear();
  EXPECT_TRUE(c.All().empty());
}

}  // namespace
}  // namespace spnerf
