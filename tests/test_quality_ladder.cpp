// Quality-ladder suite: the rung specs and ApplyRung contract
// (render/quality.hpp), the deterministic bilinear upsample, the capped
// octree skip probe, the QualityGovernor policy (load floors, pressure
// window, deadline fit, cost-model fallbacks) and the service-level
// determinism contracts — a staged backlog replays the identical rung
// sequence across dispatch modes and worker counts, and an unloaded
// ladder-on service is bit-identical to the ladder-off one.
#include "serve/quality_governor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "common/clock.hpp"
#include "common/dispatch.hpp"
#include "common/image.hpp"
#include "core/pipeline.hpp"
#include "render/field_source.hpp"
#include "render/quality.hpp"
#include "render/volume_renderer.hpp"
#include "serve/load_generator.hpp"
#include "serve/render_service.hpp"

namespace spnerf {
namespace {

class ScopedDispatchMode {
 public:
  explicit ScopedDispatchMode(dispatch::Mode mode)
      : previous_(dispatch::SetActiveMode(mode)) {}
  ~ScopedDispatchMode() { dispatch::SetActiveMode(previous_); }
  ScopedDispatchMode(const ScopedDispatchMode&) = delete;
  ScopedDispatchMode& operator=(const ScopedDispatchMode&) = delete;

 private:
  dispatch::Mode previous_;
};

/// Same tiny build parameters as test_serve.cpp, same isolation rules.
RenderRequest SmallRequest(SceneId id = SceneId::kMic, int view = 0) {
  RenderRequest r;
  r.config.scene_id = id;
  r.config.dataset.resolution_override = 32;
  r.config.dataset.vqrf.codebook_size = 64;
  r.config.dataset.vqrf.kmeans_iterations = 2;
  r.config.dataset.vqrf.max_vq_train_samples = 2000;
  r.config.spnerf.subgrid_count = 8;
  r.config.spnerf.table_size = 4096;
  r.image_width = r.image_height = 24;
  r.view = view;
  return r;
}

class QualityLadderTest : public ::testing::Test {
 protected:
  QualityLadderTest()
      : cache_(AssetCacheOptions{/*disk_root=*/"", /*memory_capacity=*/16}),
        repository_(&cache_, /*capacity=*/8) {}

  RenderServiceOptions PausedOptions(std::size_t capacity,
                                     std::size_t max_batch = 8) {
    RenderServiceOptions opts;
    opts.queue_capacity = capacity;
    opts.max_batch = max_batch;
    opts.repository = &repository_;
    opts.start_paused = true;
    return opts;
  }

  AssetCache cache_;
  PipelineRepository repository_;
};

// ------------------------------------------------------- rung specs ----

TEST(QualityRungs, RungZeroLeavesEveryKnobUntouched) {
  RenderOptions base;
  base.step_size = 0.0123f;
  base.termination_transmittance = 0.004f;
  base.octree_level_cap = 0;
  const RenderOptions applied = ApplyRung(base, QualityRung::kFull);
  EXPECT_EQ(applied.step_size, base.step_size);
  EXPECT_EQ(applied.termination_transmittance,
            base.termination_transmittance);
  EXPECT_EQ(applied.octree_level_cap, 0);
  EXPECT_EQ(RungResolutionDivisor(QualityRung::kFull), 1);
}

TEST(QualityRungs, HigherRungsOnlyEverCheapenTheRender) {
  RenderOptions base;
  base.step_size = 0.01f;
  base.termination_transmittance = 1e-3f;
  float prev_step = base.step_size;
  double prev_cost = 1.0;
  for (std::size_t q = 1; q < kQualityRungCount; ++q) {
    const auto rung = static_cast<QualityRung>(q);
    const RenderOptions o = ApplyRung(base, rung);
    // Every knob moves in the cheaper direction, monotonically up the
    // ladder: never a finer march, never a later termination, never a
    // larger raster.
    EXPECT_GE(o.step_size, prev_step) << "rung " << q;
    EXPECT_GE(o.termination_transmittance, base.termination_transmittance)
        << "rung " << q;
    EXPECT_GE(o.octree_level_cap, 0) << "rung " << q;
    EXPECT_GE(RungResolutionDivisor(rung), 1) << "rung " << q;
    EXPECT_LT(RungCostScale(rung), prev_cost) << "rung " << q;
    prev_step = o.step_size;
    prev_cost = RungCostScale(rung);
  }
  // The preview rung engages all three mechanisms.
  const RungSpec& preview = RungSpecFor(QualityRung::kPreview);
  EXPECT_EQ(preview.resolution_divisor, 4);
  EXPECT_GT(preview.octree_level_cap, 0);
}

TEST(QualityRungs, TerminationFloorNeverExtendsAMarch) {
  RenderOptions base;
  base.termination_transmittance = 0.5f;  // already terminates earlier
  const RenderOptions o = ApplyRung(base, QualityRung::kCoarse);
  EXPECT_EQ(o.termination_transmittance, 0.5f);
}

TEST(QualityRungs, ReducedDimNeverDropsBelowOnePixel) {
  EXPECT_EQ(ReducedDim(100, 2), 50);
  EXPECT_EQ(ReducedDim(100, 4), 25);
  EXPECT_EQ(ReducedDim(3, 4), 1);
  EXPECT_EQ(ReducedDim(1, 4), 1);
  EXPECT_EQ(ReducedDim(7, 0), 7);  // divisor floor
}

// --------------------------------------------------------- upsample ----

TEST(UpsampleBilinear, MatchingDimsReturnTheImageBitIdentical) {
  Image src(5, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 5; ++x) {
      src.At(x, y) = Vec3f{static_cast<float>(x), static_cast<float>(y),
                           static_cast<float>(x * y)};
    }
  }
  const Image up = UpsampleBilinear(src, 5, 4);
  EXPECT_EQ(up.Pixels(), src.Pixels());
}

TEST(UpsampleBilinear, ConstantImageStaysConstantAtAnyScale) {
  Image src(3, 3);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) src.At(x, y) = Vec3f{0.25f, 0.5f, 0.75f};
  }
  const Image up = UpsampleBilinear(src, 11, 7);
  ASSERT_EQ(up.Width(), 11);
  ASSERT_EQ(up.Height(), 7);
  for (int y = 0; y < 7; ++y) {
    for (int x = 0; x < 11; ++x) {
      EXPECT_EQ(up.At(x, y).x, 0.25f);
      EXPECT_EQ(up.At(x, y).y, 0.5f);
      EXPECT_EQ(up.At(x, y).z, 0.75f);
    }
  }
}

TEST(UpsampleBilinear, IsDeterministic) {
  Image src(6, 6);
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 6; ++x) {
      src.At(x, y) = Vec3f{static_cast<float>(x) * 0.13f,
                           static_cast<float>(y) * 0.07f,
                           static_cast<float>(x + y) * 0.01f};
    }
  }
  const Image a = UpsampleBilinear(src, 24, 24);
  const Image b = UpsampleBilinear(src, 24, 24);
  EXPECT_EQ(a.Pixels(), b.Pixels());
}

// -------------------------------------------------- governor policy ----

QualityLadderOptions FrozenLadder() {
  QualityLadderOptions opts;
  opts.enabled = true;
  opts.freeze_costs = true;
  return opts;
}

TEST(QualityGovernorPolicy, DisabledAlwaysAnswersFull) {
  QualityGovernor gov(QualityLadderOptions{}, /*queue_capacity=*/4);
  gov.NotePressure();
  EXPECT_EQ(gov.Decide(/*priority_class=*/2, /*has_deadline=*/true,
                       /*remaining_ms=*/0.001, /*queue_depth=*/4, "k"),
            QualityRung::kFull);
}

TEST(QualityGovernorPolicy, LoadFloorsDegradeByQueueOccupancy) {
  QualityGovernor gov(FrozenLadder(), /*queue_capacity=*/100);
  const auto decide = [&](std::size_t depth) {
    return gov.Decide(/*priority_class=*/1, /*has_deadline=*/false, 0.0,
                      depth, "k");
  };
  EXPECT_EQ(decide(0), QualityRung::kFull);
  EXPECT_EQ(decide(49), QualityRung::kFull);
  EXPECT_EQ(decide(50), QualityRung::kCoarse);
  EXPECT_EQ(decide(75), QualityRung::kHalf);
  EXPECT_EQ(decide(90), QualityRung::kPreview);
  EXPECT_EQ(decide(100), QualityRung::kPreview);
}

TEST(QualityGovernorPolicy, BatchClassIgnoresLoadFloors) {
  QualityGovernor gov(FrozenLadder(), /*queue_capacity=*/100);
  EXPECT_EQ(gov.Decide(/*priority_class=*/0, /*has_deadline=*/false, 0.0,
                       /*queue_depth=*/100, "k"),
            QualityRung::kFull);
}

TEST(QualityGovernorPolicy, PressureWindowFloorsEveryClassUntilLowWater) {
  QualityGovernor gov(FrozenLadder(), /*queue_capacity=*/4);
  EXPECT_FALSE(gov.UnderPressure());
  gov.NotePressure();
  EXPECT_TRUE(gov.UnderPressure());
  // The batch class, exempt from load floors, is floored under pressure:
  // degrade-over-reject applies to everyone.
  EXPECT_EQ(gov.Decide(0, false, 0.0, /*queue_depth=*/1, "k"),
            QualityRung::kHalf);
  gov.NoteDepth(3);  // above low water (0.5 * 4): stays open
  EXPECT_TRUE(gov.UnderPressure());
  gov.NoteDepth(2);  // at low water: closes
  EXPECT_FALSE(gov.UnderPressure());
  EXPECT_EQ(gov.Decide(0, false, 0.0, 1, "k"), QualityRung::kFull);
}

TEST(QualityGovernorPolicy, DeadlineEscalatesToTheCheapestFittingRung) {
  QualityGovernor gov(FrozenLadder(), /*queue_capacity=*/100);
  gov.SeedCost("scene", /*rung0_ms=*/100.0);
  const auto decide = [&](double remaining_ms) {
    return gov.Decide(/*priority_class=*/2, /*has_deadline=*/true,
                      remaining_ms, /*queue_depth=*/0, "scene");
  };
  // Budget = remaining * 0.8 against the seeded ladder 100/55/20/8 ms.
  EXPECT_EQ(decide(200.0), QualityRung::kFull);    // 160 >= 100
  EXPECT_EQ(decide(100.0), QualityRung::kCoarse);  // 80 < 100, 55 fits
  EXPECT_EQ(decide(30.0), QualityRung::kHalf);     // 24: only 20 fits
  EXPECT_EQ(decide(12.0), QualityRung::kPreview);  // 9.6: only 8 fits
  // Nothing fits: best effort at the ceiling, never a drop decision here.
  EXPECT_EQ(decide(1.0), QualityRung::kPreview);
}

TEST(QualityGovernorPolicy, MaxRungCapsEveryMechanism) {
  QualityLadderOptions opts = FrozenLadder();
  opts.max_rung = 1;
  QualityGovernor gov(opts, /*queue_capacity=*/4);
  gov.NotePressure();
  EXPECT_EQ(gov.Decide(2, true, 0.001, /*queue_depth=*/4, "k"),
            QualityRung::kCoarse);
}

TEST(QualityGovernorPolicy, CostModelFallsBackThroughPriorsToDefault) {
  QualityLadderOptions opts = FrozenLadder();
  opts.default_cost_ms = 40.0;
  QualityGovernor gov(opts, 4);
  // Nothing observed: static priors over the default.
  EXPECT_DOUBLE_EQ(gov.PredictMs("unseen", QualityRung::kFull), 40.0);
  EXPECT_DOUBLE_EQ(gov.PredictMs("unseen", QualityRung::kHalf), 40.0 * 0.2);
  // A seeded key scales its own rung-0 cost through the priors.
  gov.SeedCost("seen", 200.0);
  EXPECT_DOUBLE_EQ(gov.PredictMs("seen", QualityRung::kFull), 200.0);
  EXPECT_DOUBLE_EQ(gov.PredictMs("seen", QualityRung::kPreview),
                   200.0 * 0.08);
  // Other keys keep falling back to the default, not to "seen"'s ladder
  // (SeedCost writes the key slot, not the global one).
  EXPECT_DOUBLE_EQ(gov.PredictMs("unseen", QualityRung::kFull), 40.0);
}

TEST(QualityGovernorPolicy, ObserveRefinesWithEwmaUnlessFrozen) {
  QualityLadderOptions opts;
  opts.enabled = true;
  QualityGovernor gov(opts, 4);
  gov.Observe("k", QualityRung::kFull, 100.0);
  EXPECT_DOUBLE_EQ(gov.PredictMs("k", QualityRung::kFull), 100.0);
  gov.Observe("k", QualityRung::kFull, 50.0);
  EXPECT_DOUBLE_EQ(gov.PredictMs("k", QualityRung::kFull),
                   0.8 * 100.0 + 0.2 * 50.0);
  // An unseen key now inherits the global cross-key EWMA.
  EXPECT_DOUBLE_EQ(gov.PredictMs("other", QualityRung::kFull), 90.0);

  QualityGovernor frozen(FrozenLadder(), 4);
  frozen.SeedCost("k", 10.0);
  frozen.Observe("k", QualityRung::kFull, 500.0);  // must be a no-op
  EXPECT_DOUBLE_EQ(frozen.PredictMs("k", QualityRung::kFull), 10.0);
}

// ---------------------------------------- capped octree skip probe ----

TEST_F(QualityLadderTest, CappedOctreeProbeRendersDeterministicallyClose) {
  // The preview rung's level-capped skip probe is conservative (a parent
  // bit ORs its children, so occupied content is never skipped): the
  // capped render must stay deterministic and close to the exact-leaf
  // render — degraded sampling positions, not missing geometry.
  const RenderRequest req = SmallRequest();
  const std::shared_ptr<const ScenePipeline> pipeline =
      repository_.Acquire(req.config);
  SpNeRFFieldSource source(pipeline->Codec(), req.config.render.fp16_mlp);
  const auto render = [&](int level_cap) {
    RenderJob job;
    job.source = &source;
    job.mlp = &pipeline->GetMlp();
    job.camera = pipeline->MakeCamera(24, 24, 0, req.n_views);
    job.options = pipeline->RenderOptionsWithSkip();
    job.options.octree_level_cap = level_cap;
    return RenderEngine(RenderEngineOptions{}).RenderBatch({job})
        .front()
        .image;
  };
  const Image exact = render(0);
  const Image capped = render(2);
  const Image capped_again = render(2);
  ASSERT_EQ(capped.Pixels().size(), exact.Pixels().size());
  EXPECT_EQ(capped.Pixels(), capped_again.Pixels());  // deterministic
  // Close, not bit-identical: the capped chain samples at different t
  // positions. 20 dB on a 24x24 frame is far above what missing geometry
  // would leave and far below bit-identity.
  EXPECT_GT(Psnr(exact, capped), 20.0);
}

// ------------------------------------------- service-level ladder ----

TEST_F(QualityLadderTest, UnloadedLadderIsBitIdenticalToLadderOff) {
  // The rung-0 contract end-to-end: a ladder-on service that never comes
  // under pressure (closed loop, no deadlines) serves everything at rung 0
  // with pixels bit-identical to the ladder-off service.
  std::vector<std::vector<Image>> by_config;
  for (const bool enabled : {false, true}) {
    RenderServiceOptions opts = PausedOptions(/*capacity=*/8);
    opts.start_paused = false;
    opts.ladder.enabled = enabled;
    RenderService service(opts);
    std::vector<Image> run;
    for (int v = 0; v < 3; ++v) {
      RenderResponse r = service.Submit(SmallRequest(SceneId::kMic, v)).get();
      ASSERT_EQ(r.status, RequestStatus::kCompleted);
      EXPECT_EQ(r.rung, QualityRung::kFull);
      run.push_back(std::move(r.image));
    }
    by_config.push_back(std::move(run));
  }
  for (std::size_t i = 0; i < by_config[0].size(); ++i) {
    EXPECT_EQ(by_config[1][i].Pixels(), by_config[0][i].Pixels())
        << "request " << i;
  }
}

TEST_F(QualityLadderTest, StagedBacklogDegradesThroughTheLoadFloors) {
  // Four same-key requests staged on a paused 4-seat service, max_batch=1:
  // the dispatcher issues them one by one at occupancy 1.0, 0.75, 0.5,
  // 0.25 — the exact rung sequence 3, 2, 1, 0 (the degrade curve), FIFO
  // within the class, on the frozen cost model. Identical across dispatch
  // modes and worker counts: the governor decision is pure scheduling
  // state, and a staged backlog's scheduling is already deterministic.
  const std::vector<QualityRung> expected = {
      QualityRung::kPreview, QualityRung::kHalf, QualityRung::kCoarse,
      QualityRung::kFull};
  for (const dispatch::Mode mode :
       {dispatch::Mode::kLocked, dispatch::Mode::kLockFree}) {
    for (const unsigned workers : {1u, 2u, 8u}) {
      ScopedDispatchMode scoped(mode);
      ThreadPool pool(workers);
      RenderServiceOptions opts =
          PausedOptions(/*capacity=*/4, /*max_batch=*/1);
      opts.engine.pool = &pool;
      opts.ladder.enabled = true;
      opts.ladder.freeze_costs = true;
      RenderService service(opts);
      std::vector<std::future<RenderResponse>> futures;
      for (int v = 0; v < 4; ++v) {
        futures.push_back(service.Submit(SmallRequest(SceneId::kMic, v)));
      }
      service.Drain();
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const RenderResponse r = futures[i].get();
        ASSERT_EQ(r.status, RequestStatus::kCompleted);
        EXPECT_EQ(r.rung, expected[i])
            << "request " << i << " under " << dispatch::ModeName(mode)
            << " with " << workers << " workers";
        EXPECT_EQ(r.image.Width(), 24);  // upsampled back to requested size
        EXPECT_EQ(r.image.Height(), 24);
      }
      const ServiceStatsSnapshot stats = service.Stats();
      for (std::size_t q = 0; q < kQualityRungCount; ++q) {
        EXPECT_EQ(stats.by_rung[q], 1u) << "rung " << q;
      }
    }
  }
}

TEST_F(QualityLadderTest, FullQueueAdmissionOpensThePressureWindow) {
  // Degrade-over-reject: overflowing the queue floors subsequent rung
  // decisions at the pressure floor — for every class, including batch —
  // until the dispatcher sees the backlog below low water. Staged: 4
  // batch-class requests fill the 4-seat queue, a 5th is rejected (and
  // opens the window). Batch class ignores load floors, so the first two
  // issues (depth 4 and 3, window open) serve at the pressure floor and
  // the last two (window closed at depth 2 = low water) at full quality.
  RenderServiceOptions opts = PausedOptions(/*capacity=*/4, /*max_batch=*/1);
  opts.ladder.enabled = true;
  opts.ladder.freeze_costs = true;
  RenderService service(opts);
  std::vector<std::future<RenderResponse>> futures;
  for (int v = 0; v < 5; ++v) {
    RenderRequest r = SmallRequest(SceneId::kMic, v);
    r.priority = RequestPriority::kBatch;
    futures.push_back(service.Submit(r));
  }
  ASSERT_EQ(futures[4].wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(futures[4].get().status, RequestStatus::kRejected);
  EXPECT_TRUE(service.Governor().UnderPressure());
  service.Drain();
  const std::vector<QualityRung> expected = {
      QualityRung::kHalf, QualityRung::kHalf, QualityRung::kFull,
      QualityRung::kFull};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const RenderResponse r = futures[i].get();
    ASSERT_EQ(r.status, RequestStatus::kCompleted);
    EXPECT_EQ(r.rung, expected[i]) << "request " << i;
  }
  EXPECT_FALSE(service.Governor().UnderPressure());
}

TEST_F(QualityLadderTest, InteractiveHeavyTraceHasTightSeededDeadlines) {
  const LoadGeneratorOptions opts = InteractiveHeavyTrace(/*frame_ms=*/10.0);
  const std::vector<TimedRequest> trace =
      LoadGenerator(opts).GenerateTrace();
  const std::vector<TimedRequest> again =
      LoadGenerator(opts).GenerateTrace();
  ASSERT_EQ(trace.size(), again.size());
  std::size_t interactive = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const RenderRequest& r = trace[i].request;
    // Seeded determinism: the same options replay byte-identically.
    EXPECT_EQ(again[i].request.deadline_ms, r.deadline_ms);
    EXPECT_EQ(again[i].request.priority, r.priority);
    switch (r.priority) {
      case RequestPriority::kInteractive:
        ++interactive;
        EXPECT_GE(r.deadline_ms, 15.0);  // 1.5x frame
        EXPECT_LE(r.deadline_ms, 30.0);  // 3x frame
        break;
      case RequestPriority::kNormal:
        if (r.deadline_ms > 0.0) {
          EXPECT_GE(r.deadline_ms, 40.0);
          EXPECT_LE(r.deadline_ms, 80.0);
        }
        break;
      case RequestPriority::kBatch:
        EXPECT_EQ(r.deadline_ms, 0.0);
        break;
    }
  }
  // Interactive-heavy: the 0.6 class fraction, within tolerance.
  EXPECT_GT(interactive, trace.size() / 2);
}

}  // namespace
}  // namespace spnerf
