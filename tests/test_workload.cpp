#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/pipeline.hpp"

namespace spnerf {
namespace {

PipelineConfig SmallConfig() {
  PipelineConfig pc;
  pc.scene_id = SceneId::kMaterials;
  pc.dataset.resolution_override = 48;
  pc.dataset.vqrf.codebook_size = 128;
  pc.dataset.vqrf.kmeans_iterations = 3;
  pc.spnerf.subgrid_count = 16;
  pc.spnerf.table_size = 4096;
  return pc;
}

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new ScenePipeline(ScenePipeline::Build(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static ScenePipeline* pipeline_;
};

ScenePipeline* WorkloadTest::pipeline_ = nullptr;

TEST_F(WorkloadTest, ScalesTileToFrame) {
  const FrameWorkload w = pipeline_->MeasureWorkload(32, 800, 800);
  EXPECT_EQ(w.rays, 640000u);
  EXPECT_GT(w.samples, 0u);
  EXPECT_GT(w.mlp_evals, 0u);
  EXPECT_LE(w.mlp_evals, w.samples);
  // Scaling is per-ray: the frame has 625x the rays of a 32x32 tile.
  const FrameWorkload tile = pipeline_->MeasureWorkload(32, 32, 32);
  const double ratio =
      static_cast<double>(w.samples) / static_cast<double>(tile.samples);
  EXPECT_NEAR(ratio, 625.0, 1.0);
}

TEST_F(WorkloadTest, ModelSizesComeFromCodec) {
  const FrameWorkload w = pipeline_->MeasureWorkload(32, 800, 800);
  const SpNeRFModel& codec = pipeline_->Codec();
  EXPECT_EQ(w.table_bytes, codec.HashTableBytes());
  EXPECT_EQ(w.bitmap_bytes, codec.BitmapBytes());
  EXPECT_EQ(w.codebook_bytes, codec.CodebookBytes());
  EXPECT_EQ(w.true_grid_bytes, codec.TrueGridBytes());
  EXPECT_EQ(w.subgrid_count, 16);
  EXPECT_EQ(w.weight_bytes, Mlp::WeightBytesFp16() / 2);  // INT8 on chip
}

TEST_F(WorkloadTest, DecodeMixSumsBelowOne) {
  const FrameWorkload w = pipeline_->MeasureWorkload(32, 800, 800);
  EXPECT_GT(w.bitmap_zero_frac, 0.0);
  EXPECT_GT(w.codebook_frac, 0.0);
  EXPECT_GE(w.true_grid_frac, 0.0);
  EXPECT_LE(w.bitmap_zero_frac + w.codebook_frac + w.true_grid_frac, 1.0001);
}

TEST_F(WorkloadTest, VertexLookupsAre8PerSample) {
  const FrameWorkload w = pipeline_->MeasureWorkload(32, 800, 800);
  EXPECT_EQ(w.VertexLookups(), w.samples * 8);
  EXPECT_EQ(w.OutputBytes(), w.rays * 3);
}

TEST_F(WorkloadTest, GpuWorkloadMirrorsVqrf) {
  const GpuFrameWorkload g = pipeline_->MeasureGpuWorkload(32, 800, 800);
  EXPECT_EQ(g.rays, 640000u);
  EXPECT_EQ(g.restored_grid_bytes, pipeline_->Dataset().vqrf->RestoredBytes());
  EXPECT_EQ(g.compressed_bytes, pipeline_->Dataset().vqrf->CompressedBytes());
  EXPECT_GT(g.samples, 0u);
}

TEST(Workload, EmptyStatsThrow) {
  const RenderStats empty;
  const DecodeCounters counters;
  const SpNeRFModel model;
  EXPECT_THROW(BuildFrameWorkload(model, empty, counters, "x", 8, 8),
               SpnerfError);
}

}  // namespace
}  // namespace spnerf
