#include "common/parallel.hpp"

#include <atomic>
#include <gtest/gtest.h>
#include <numeric>
#include <vector>

namespace spnerf {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<int> hits(n, 0);
  ParallelFor(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleElement) {
  int value = 0;
  ParallelFor(1, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ParallelFor, ResultMatchesSequential) {
  const std::size_t n = 50000;
  std::vector<double> out_par(n), out_seq(n);
  const auto f = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 2.0;
  };
  ParallelFor(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out_par[i] = f(i);
  });
  for (std::size_t i = 0; i < n; ++i) out_seq[i] = f(i);
  EXPECT_EQ(out_par, out_seq);
}

TEST(ParallelFor, RespectsMaxThreads) {
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  ParallelFor(
      64,
      [&](std::size_t, std::size_t) {
        const int now = ++concurrent;
        int old = peak.load();
        while (now > old && !peak.compare_exchange_weak(old, now)) {
        }
        --concurrent;
      },
      /*max_threads=*/2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ParallelFor, SmallNFewerWorkersThanThreads) {
  // n=3 must not spawn workers with empty ranges that overlap.
  std::vector<int> hits(3, 0);
  ParallelFor(3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, ExplicitPoolCoversEveryIndex) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<int> hits(n, 0);
  ParallelFor(
      n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      /*max_threads=*/0, &pool);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, RunsEverySlotExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.WorkerCount(), 8u);
  std::vector<std::atomic<int>> slot_hits(8);
  for (auto& s : slot_hits) s = 0;
  pool.RunOnWorkers(8, [&](unsigned slot) {
    ASSERT_LT(slot, 8u);
    ++slot_hits[slot];
  });
  for (const auto& s : slot_hits) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, SlotsClampedToWorkerCount) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.RunOnWorkers(64, [&](unsigned slot) {
    EXPECT_LT(slot, 2u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPool, SequentialReuseAcrossRegions) {
  // The pool must survive many fork-joins back to back (the persistent-pool
  // property the per-call-spawn version lacked).
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.RunOnWorkers(4, [&](unsigned) { ++total; });
  }
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPool, NestedDispatchRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.RunOnWorkers(4, [&](unsigned) {
    // A nested region from inside a running region must not re-enter the
    // pool's fork-join machinery.
    pool.RunOnWorkers(4, [&](unsigned) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 16);
}

TEST(ThreadPool, NestedParallelForCoversIndices) {
  ThreadPool pool(4);
  const std::size_t n = 64;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  ParallelFor(
      4,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t outer = b; outer < e; ++outer) {
          ParallelFor(
              n / 4,
              [&](std::size_t ib, std::size_t ie) {
                for (std::size_t i = ib; i < ie; ++i)
                  ++hits[outer * (n / 4) + i];
              },
              0, &pool);
        }
      },
      0, &pool);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

}  // namespace
}  // namespace spnerf
