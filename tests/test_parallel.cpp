#include "common/parallel.hpp"

#include <atomic>
#include <future>
#include <gtest/gtest.h>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/dispatch.hpp"

namespace spnerf {
namespace {

/// Flips the process-global dispatch mode for one scope; pools constructed
/// inside pick it up, everything after sees the previous mode again.
class ScopedDispatchMode {
 public:
  explicit ScopedDispatchMode(dispatch::Mode mode)
      : previous_(dispatch::SetActiveMode(mode)) {}
  ~ScopedDispatchMode() { dispatch::SetActiveMode(previous_); }
  ScopedDispatchMode(const ScopedDispatchMode&) = delete;
  ScopedDispatchMode& operator=(const ScopedDispatchMode&) = delete;

 private:
  dispatch::Mode previous_;
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 100000;
  std::vector<int> hits(n, 0);
  ParallelFor(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleElement) {
  int value = 0;
  ParallelFor(1, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ParallelFor, ResultMatchesSequential) {
  const std::size_t n = 50000;
  std::vector<double> out_par(n), out_seq(n);
  const auto f = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 2.0;
  };
  ParallelFor(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out_par[i] = f(i);
  });
  for (std::size_t i = 0; i < n; ++i) out_seq[i] = f(i);
  EXPECT_EQ(out_par, out_seq);
}

TEST(ParallelFor, RespectsMaxThreads) {
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  ParallelFor(
      64,
      [&](std::size_t, std::size_t) {
        const int now = ++concurrent;
        int old = peak.load();
        while (now > old && !peak.compare_exchange_weak(old, now)) {
        }
        --concurrent;
      },
      /*max_threads=*/2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ParallelFor, SmallNFewerWorkersThanThreads) {
  // n=3 must not spawn workers with empty ranges that overlap.
  std::vector<int> hits(3, 0);
  ParallelFor(3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, ExplicitPoolCoversEveryIndex) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<int> hits(n, 0);
  ParallelFor(
      n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      /*max_threads=*/0, &pool);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, RunsEverySlotExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.WorkerCount(), 8u);
  std::vector<std::atomic<int>> slot_hits(8);
  for (auto& s : slot_hits) s = 0;
  pool.RunOnWorkers(8, [&](unsigned slot) {
    ASSERT_LT(slot, 8u);
    ++slot_hits[slot];
  });
  for (const auto& s : slot_hits) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, SlotsClampedToWorkerCount) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.RunOnWorkers(64, [&](unsigned slot) {
    EXPECT_LT(slot, 2u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPool, SequentialReuseAcrossRegions) {
  // The pool must survive many fork-joins back to back (the persistent-pool
  // property the per-call-spawn version lacked).
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.RunOnWorkers(4, [&](unsigned) { ++total; });
  }
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPool, NestedDispatchRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.RunOnWorkers(4, [&](unsigned) {
    // A nested region from inside a running region must not re-enter the
    // pool's fork-join machinery.
    pool.RunOnWorkers(4, [&](unsigned) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 16);
}

TEST(ParallelFor, ConcurrentRegionsFromIndependentThreads) {
  // The task-scheduler property: N threads each dispatching their own
  // ParallelFor onto one shared pool must all make progress (no deadlock,
  // no serialisation hazard), every index of every region visited exactly
  // once, and every output bit-identical to a sequential run.
  ThreadPool pool(4);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 25;
  constexpr std::size_t kN = 20000;
  const auto f = [](std::size_t t, std::size_t i) {
    return static_cast<double>(i) * 1.25 + static_cast<double>(t);
  };

  std::vector<std::vector<double>> outputs(kThreads,
                                           std::vector<double>(kN, 0.0));
  std::vector<std::vector<int>> hits(kThreads, std::vector<int>(kN, 0));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        ParallelFor(
            kN,
            [&](std::size_t b, std::size_t e) {
              for (std::size_t i = b; i < e; ++i) {
                outputs[t][i] = f(t, i);
                if (round == 0) ++hits[t][i];
              }
            },
            /*max_threads=*/0, &pool);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    std::vector<double> expected(kN);
    for (std::size_t i = 0; i < kN; ++i) expected[i] = f(t, i);
    EXPECT_EQ(outputs[t], expected) << "thread " << t;
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[t][i], 1) << "thread " << t << " index " << i;
    }
  }
}

TEST(ThreadPool, ConcurrentRunOnWorkersCoversEverySlot) {
  // Several independent dispatchers on one pool: each region's slots run
  // exactly once even while other regions are live.
  ThreadPool pool(4);
  constexpr std::size_t kThreads = 3;
  constexpr int kRounds = 50;
  std::vector<std::atomic<int>> totals(kThreads);
  for (auto& t : totals) t = 0;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        pool.RunOnWorkers(4, [&](unsigned slot) {
          ASSERT_LT(slot, 4u);
          ++totals[t];
        });
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (const auto& t : totals) EXPECT_EQ(t.load(), kRounds * 4);
}

TEST(ThreadPool, DetachedSubmitRunsEverySlotThenCompletion) {
  ThreadPool pool(4);
  std::atomic<int> slots_run{0};
  std::atomic<int> at_completion{-1};
  std::promise<void> done;
  pool.Submit(
      4, [&](unsigned) { ++slots_run; },
      [&] {
        at_completion = slots_run.load();  // every slot finished before this
        done.set_value();
      });
  done.get_future().wait();
  EXPECT_EQ(slots_run.load(), 4);
  EXPECT_EQ(at_completion.load(), 4);
}

TEST(ThreadPool, DetachedSubmitOnSingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  int slots_run = 0;
  bool completed = false;
  pool.Submit(
      8, [&](unsigned) { ++slots_run; }, [&] { completed = true; });
  // No worker threads: the region and its completion ran before Submit
  // returned.
  EXPECT_EQ(slots_run, 1);  // slots clamp to WorkerCount()
  EXPECT_TRUE(completed);
}

TEST(ThreadPool, ThrowingRegionBodyPropagatesWithoutWedgingThePool) {
  // A throw from any slot (worker or dispatcher) must reach the dispatching
  // caller after the region completes — never kill a worker thread or leak
  // the region's completion latch.
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.RunOnWorkers(4,
                        [](unsigned) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The scheduler survives: the same pool keeps running regions.
  std::atomic<int> total{0};
  pool.RunOnWorkers(4, [&](unsigned) { ++total; });
  EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPool, BothDispatchModesCoverEverySlotAndIndex) {
  // The differential contract in miniature: a pool constructed under each
  // SPNF_DISPATCH mode runs the same blocking, detached and ParallelFor
  // workloads to the same effects. (CI additionally runs the whole suite
  // under each mode via the environment override.)
  for (dispatch::Mode mode :
       {dispatch::Mode::kLocked, dispatch::Mode::kLockFree}) {
    ScopedDispatchMode scoped(mode);
    ThreadPool pool(4);
    EXPECT_EQ(pool.Mode(), mode);

    std::atomic<int> slot_total{0};
    for (int round = 0; round < 20; ++round) {
      pool.RunOnWorkers(4, [&](unsigned) { ++slot_total; });
    }
    EXPECT_EQ(slot_total.load(), 80) << dispatch::ModeName(mode);

    std::atomic<int> detached_total{0};
    std::promise<void> done;
    pool.Submit(
        4, [&](unsigned) { ++detached_total; },
        [&] { done.set_value(); });
    done.get_future().wait();
    EXPECT_EQ(detached_total.load(), 4) << dispatch::ModeName(mode);

    const std::size_t n = 20000;
    std::vector<int> hits(n, 0);
    ParallelFor(
        n,
        [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) ++hits[i];
        },
        /*max_threads=*/0, &pool);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i], 1) << dispatch::ModeName(mode) << " index " << i;
    }
  }
}

TEST(ThreadPool, TinyTokenRingSpillsToOverflowCorrectly) {
  // A deliberately undersized token ring forces the overflow path (tokens
  // beyond the ring spill to the mutex-guarded list): many concurrent
  // regions must still all complete with every slot run exactly once.
  ScopedDispatchMode scoped(dispatch::Mode::kLockFree);
  ThreadPool pool(4, /*token_capacity=*/2);
  constexpr std::size_t kThreads = 3;
  constexpr int kRounds = 40;
  std::vector<std::atomic<int>> totals(kThreads);
  for (auto& t : totals) t = 0;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        pool.RunOnWorkers(4, [&](unsigned slot) {
          ASSERT_LT(slot, 4u);
          ++totals[t];
        });
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (const auto& t : totals) EXPECT_EQ(t.load(), kRounds * 4);
}

TEST(ThreadPool, NestedParallelForCoversIndices) {
  ThreadPool pool(4);
  const std::size_t n = 64;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h = 0;
  ParallelFor(
      4,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t outer = b; outer < e; ++outer) {
          ParallelFor(
              n / 4,
              [&](std::size_t ib, std::size_t ie) {
                for (std::size_t i = ib; i < ie; ++i)
                  ++hits[outer * (n / 4) + i];
              },
              0, &pool);
        }
      },
      0, &pool);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

}  // namespace
}  // namespace spnerf
