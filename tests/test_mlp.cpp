#include "render/mlp.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {
namespace {

std::array<float, kMlpInputDim> RandomInput(Rng& rng) {
  std::array<float, kMlpInputDim> in{};
  for (auto& v : in) v = rng.Uniform(-1.f, 1.f);
  return in;
}

TEST(Mlp, GeometryConstantsMatchPaper) {
  // 3 layers with channel sizes 128, 128, 3 (paper IV-C).
  EXPECT_EQ(kMlpHiddenDim, 128);
  EXPECT_EQ(kMlpOutputDim, 3);
  EXPECT_EQ(kMlpBatch, 64);
  EXPECT_EQ(Mlp::MacsPerSample(), 39u * 128 + 128u * 128 + 128u * 3);
  EXPECT_EQ(Mlp::ParameterCount(),
            39u * 128 + 128 + 128u * 128 + 128 + 128u * 3 + 3);
  EXPECT_EQ(Mlp::WeightBytesFp16(), Mlp::ParameterCount() * 2);
}

TEST(Mlp, DeterministicFromSeed) {
  const Mlp a = Mlp::Random(7);
  const Mlp b = Mlp::Random(7);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto in = RandomInput(rng);
    EXPECT_EQ(a.Forward(in), b.Forward(in));
  }
}

TEST(Mlp, DifferentSeedsDiffer) {
  const Mlp a = Mlp::Random(1);
  const Mlp b = Mlp::Random(2);
  Rng rng(3);
  const auto in = RandomInput(rng);
  EXPECT_NE(a.Forward(in), b.Forward(in));
}

TEST(Mlp, OutputIsSigmoidBounded) {
  const Mlp mlp = Mlp::Random(42);
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const Vec3f rgb = mlp.Forward(RandomInput(rng));
    for (int c = 0; c < 3; ++c) {
      EXPECT_GT(rgb[c], 0.0f);
      EXPECT_LT(rgb[c], 1.0f);
    }
  }
}

TEST(Mlp, OutputVariesWithInput) {
  const Mlp mlp = Mlp::Random(42);
  Rng rng(5);
  const Vec3f a = mlp.Forward(RandomInput(rng));
  const Vec3f b = mlp.Forward(RandomInput(rng));
  EXPECT_NE(a, b);
}

TEST(Mlp, Fp16PathCloseToFp32) {
  const Mlp mlp = Mlp::Random(42);
  Rng rng(6);
  double max_err = 0.0;
  for (int i = 0; i < 200; ++i) {
    const auto in = RandomInput(rng);
    const Vec3f full = mlp.Forward(in);
    const Vec3f half = mlp.ForwardFp16(in);
    for (int c = 0; c < 3; ++c) {
      max_err = std::max(max_err,
                         static_cast<double>(std::fabs(full[c] - half[c])));
    }
  }
  EXPECT_LT(max_err, 0.03);  // FP16 accumulation error through 2 x 128 dims
  EXPECT_GT(max_err, 0.0);   // and it is genuinely a different datapath
}

TEST(Mlp, Fp16Deterministic) {
  const Mlp mlp = Mlp::Random(9);
  Rng rng(7);
  const auto in = RandomInput(rng);
  EXPECT_EQ(mlp.ForwardFp16(in), mlp.ForwardFp16(in));
}

TEST(Mlp, UninitializedThrows) {
  const Mlp mlp;
  std::array<float, kMlpInputDim> in{};
  EXPECT_THROW((void)mlp.Forward(in), SpnerfError);
  EXPECT_THROW((void)mlp.ForwardFp16(in), SpnerfError);
}

TEST(Mlp, WeightAccessorShapes) {
  const Mlp mlp = Mlp::Random(1);
  EXPECT_EQ(mlp.W(0).size(), static_cast<std::size_t>(kMlpHiddenDim) * kMlpInputDim);
  EXPECT_EQ(mlp.W(1).size(), static_cast<std::size_t>(kMlpHiddenDim) * kMlpHiddenDim);
  EXPECT_EQ(mlp.W(2).size(), static_cast<std::size_t>(kMlpOutputDim) * kMlpHiddenDim);
  EXPECT_EQ(mlp.B(0).size(), static_cast<std::size_t>(kMlpHiddenDim));
  EXPECT_EQ(mlp.B(2).size(), static_cast<std::size_t>(kMlpOutputDim));
  EXPECT_THROW((void)mlp.W(3), SpnerfError);
  EXPECT_THROW((void)mlp.B(-1), SpnerfError);
}

TEST(Mlp, XavierBoundRespected) {
  const Mlp mlp = Mlp::Random(11);
  const float bound0 = std::sqrt(6.0f / (kMlpInputDim + kMlpHiddenDim));
  for (float w : mlp.W(0)) EXPECT_LE(std::fabs(w), bound0);
  const float bound2 = std::sqrt(6.0f / (kMlpHiddenDim + kMlpOutputDim));
  for (float w : mlp.W(2)) EXPECT_LE(std::fabs(w), bound2);
}

TEST(Mlp, FeatureChangePropagatesToColor) {
  // An error in one feature channel (what a hash collision produces) must
  // change the RGB output — the mechanism behind the Fig 6(b) PSNR loss.
  const Mlp mlp = Mlp::Random(42);
  Rng rng(8);
  auto in = RandomInput(rng);
  const Vec3f base = mlp.Forward(in);
  in[4] += 0.5f;
  const Vec3f shifted = mlp.Forward(in);
  EXPECT_GT((base - shifted).Norm(), 1e-4f);
}

}  // namespace
}  // namespace spnerf
