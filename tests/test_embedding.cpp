#include "render/embedding.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace spnerf {
namespace {

TEST(Embedding, DimensionsMatchPaper) {
  // 12 features + 27 view embedding = the paper's 39-element MLP input.
  EXPECT_EQ(kViewEmbedDim, 27);
  EXPECT_EQ(kColorFeatureDim + kViewEmbedDim, 39);
  EXPECT_EQ(kMlpInputDim, 39);
}

TEST(Embedding, FirstThreeAreRawDirection) {
  const Vec3f d = Vec3f{0.3f, -0.5f, 0.81f}.Normalized();
  const ViewEmbedding e = EmbedViewDirection(d);
  EXPECT_EQ(e[0], d.x);
  EXPECT_EQ(e[1], d.y);
  EXPECT_EQ(e[2], d.z);
}

TEST(Embedding, SinCosOctaves) {
  const Vec3f d{0.1f, 0.2f, 0.3f};
  const ViewEmbedding e = EmbedViewDirection(d);
  int at = 3;
  for (int k = 0; k < kViewEmbedFreqs; ++k) {
    const float s = static_cast<float>(1 << k);
    for (int c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(e[static_cast<std::size_t>(at++)], std::sin(s * d[c]));
    }
    for (int c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(e[static_cast<std::size_t>(at++)], std::cos(s * d[c]));
    }
  }
  EXPECT_EQ(at, kViewEmbedDim);
}

TEST(Embedding, BoundedByOne) {
  for (float ang = 0.f; ang < 6.28f; ang += 0.1f) {
    const Vec3f d{std::cos(ang), std::sin(ang), 0.5f};
    for (float v : EmbedViewDirection(d.Normalized())) {
      EXPECT_LE(std::fabs(v), 1.0f);
    }
  }
}

TEST(Embedding, DistinctDirectionsDistinctEmbeddings) {
  const ViewEmbedding a = EmbedViewDirection({1.f, 0.f, 0.f});
  const ViewEmbedding b = EmbedViewDirection({0.f, 1.f, 0.f});
  float diff = 0.f;
  for (int i = 0; i < kViewEmbedDim; ++i)
    diff += std::fabs(a[static_cast<std::size_t>(i)] - b[static_cast<std::size_t>(i)]);
  EXPECT_GT(diff, 1.0f);
}

TEST(Embedding, AssembleConcatenatesInOrder) {
  std::array<float, kColorFeatureDim> feat{};
  for (int c = 0; c < kColorFeatureDim; ++c) feat[static_cast<std::size_t>(c)] = 0.1f * static_cast<float>(c);
  const ViewEmbedding view = EmbedViewDirection({0.f, 0.f, 1.f});
  const auto in = AssembleMlpInput(feat, view);
  for (int c = 0; c < kColorFeatureDim; ++c) {
    EXPECT_EQ(in[static_cast<std::size_t>(c)], feat[static_cast<std::size_t>(c)]);
  }
  for (int c = 0; c < kViewEmbedDim; ++c) {
    EXPECT_EQ(in[static_cast<std::size_t>(kColorFeatureDim + c)],
              view[static_cast<std::size_t>(c)]);
  }
}

}  // namespace
}  // namespace spnerf
