#include "grid/vqrf_io.hpp"

#include <gtest/gtest.h>
#include <sstream>

#include "common/binary_io.hpp"

#include "common/rng.hpp"
#include "encoding/spnerf_codec.hpp"

namespace spnerf {
namespace {

DenseGrid MakeGrid(int n = 20, double occupancy = 0.08, u64 seed = 3) {
  DenseGrid g({n, n, n});
  Rng rng(seed);
  const auto want = static_cast<u64>(occupancy * static_cast<double>(g.VoxelCount()));
  u64 placed = 0;
  while (placed < want) {
    const Vec3i p{rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1),
                  rng.UniformInt(0, n - 1)};
    if (g.IsNonZero(g.Dims().Flatten(p))) continue;
    VoxelData v;
    v.density = rng.Uniform(1.f, 90.f);
    for (int c = 0; c < kColorFeatureDim; ++c) v.features[c] = rng.Uniform(-1.f, 1.f);
    g.SetVoxel(p, v);
    ++placed;
  }
  return g;
}

VqrfModel MakeModel() {
  VqrfBuildParams p;
  p.codebook_size = 64;
  p.kmeans_iterations = 3;
  return VqrfModel::Build(MakeGrid(), p);
}

TEST(VqrfIo, RoundTripExact) {
  const VqrfModel original = MakeModel();
  std::stringstream buffer;
  SaveVqrfModel(original, buffer);
  const VqrfModel loaded = LoadVqrfModel(buffer);

  EXPECT_EQ(loaded.Dims(), original.Dims());
  EXPECT_EQ(loaded.NonZeroCount(), original.NonZeroCount());
  EXPECT_EQ(loaded.KeptCount(), original.KeptCount());
  EXPECT_EQ(loaded.GetCodebook().Size(), original.GetCodebook().Size());
  EXPECT_EQ(loaded.FeatureQuantizer().Scale(),
            original.FeatureQuantizer().Scale());
  EXPECT_EQ(loaded.DensityQuantizer().Scale(),
            original.DensityQuantizer().Scale());
  EXPECT_EQ(loaded.KeptFeatures(), original.KeptFeatures());
  EXPECT_EQ(loaded.CodebookInt8(), original.CodebookInt8());

  ASSERT_EQ(loaded.Records().size(), original.Records().size());
  for (std::size_t i = 0; i < loaded.Records().size(); ++i) {
    EXPECT_EQ(loaded.Records()[i].index, original.Records()[i].index);
    EXPECT_EQ(loaded.Records()[i].kept, original.Records()[i].kept);
    EXPECT_EQ(loaded.Records()[i].payload_id,
              original.Records()[i].payload_id);
    EXPECT_EQ(loaded.Records()[i].density_q, original.Records()[i].density_q);
  }
  EXPECT_EQ(loaded.OccupancyBitmap().Words(),
            original.OccupancyBitmap().Words());
}

TEST(VqrfIo, LoadedModelDecodesIdentically) {
  const VqrfModel original = MakeModel();
  std::stringstream buffer;
  SaveVqrfModel(original, buffer);
  const VqrfModel loaded = LoadVqrfModel(buffer);
  for (const VoxelRecord& rec : original.Records()) {
    const VoxelData a = original.DecodeRecord(rec);
    const VoxelData b = loaded.DecodeRecord(rec);
    EXPECT_EQ(a.density, b.density);
    for (int c = 0; c < kColorFeatureDim; ++c) {
      EXPECT_EQ(a.features[c], b.features[c]);
    }
  }
}

TEST(VqrfIo, LoadedModelPreprocessesIdentically) {
  // The deployable flow: save on host, load on device, preprocess there.
  const VqrfModel original = MakeModel();
  std::stringstream buffer;
  SaveVqrfModel(original, buffer);
  const VqrfModel loaded = LoadVqrfModel(buffer);

  SpNeRFParams params;
  params.subgrid_count = 8;
  params.table_size = 4096;
  const SpNeRFModel a = SpNeRFModel::Preprocess(original, params);
  const SpNeRFModel b = SpNeRFModel::Preprocess(loaded, params);
  const GridDims& dims = original.Dims();
  for (VoxelIndex i = 0; i < dims.VoxelCount(); i += 17) {
    const VoxelData da = a.Decode(dims.Unflatten(i));
    const VoxelData db = b.Decode(dims.Unflatten(i));
    EXPECT_EQ(da.density, db.density);
  }
}

TEST(VqrfIo, FileRoundTrip) {
  const VqrfModel original = MakeModel();
  const std::string path = ::testing::TempDir() + "/model.spnf";
  SaveVqrfModel(original, path);
  const VqrfModel loaded = LoadVqrfModel(path);
  EXPECT_EQ(loaded.NonZeroCount(), original.NonZeroCount());
  std::remove(path.c_str());
}

TEST(VqrfIo, BadMagicThrows) {
  std::stringstream buffer;
  WritePod<u32>(buffer, 0xdeadbeefu);
  WritePod<u32>(buffer, kVqrfVersion);
  EXPECT_THROW(LoadVqrfModel(buffer), SpnerfError);
}

TEST(VqrfIo, WrongVersionThrows) {
  std::stringstream buffer;
  WritePod<u32>(buffer, kVqrfMagic);
  WritePod<u32>(buffer, kVqrfVersion + 1);
  EXPECT_THROW(LoadVqrfModel(buffer), SpnerfError);
}

TEST(VqrfIo, TruncatedStreamThrows) {
  const VqrfModel original = MakeModel();
  std::stringstream buffer;
  SaveVqrfModel(original, buffer);
  const std::string full = buffer.str();
  for (std::size_t cut : {8ul, 64ul, full.size() / 2, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW(LoadVqrfModel(truncated), SpnerfError) << "cut " << cut;
  }
}

TEST(VqrfIo, CorruptRecordIndexThrows) {
  const VqrfModel original = MakeModel();
  std::stringstream buffer;
  SaveVqrfModel(original, buffer);
  std::string bytes = buffer.str();
  // Locate the first record index (after header + codebook + scales +
  // indices-length). Easier: flip an index to be out-of-grid by scanning for
  // the known first record index value.
  const u64 first_index = original.Records().front().index;
  u64 huge = original.Dims().VoxelCount() + 1000;
  const auto pos = bytes.find(
      std::string(reinterpret_cast<const char*>(&first_index), 8));
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, 8, reinterpret_cast<const char*>(&huge), 8);
  std::stringstream corrupt(bytes);
  EXPECT_THROW(LoadVqrfModel(corrupt), SpnerfError);
}

TEST(VqrfIo, MissingFileThrows) {
  EXPECT_THROW(LoadVqrfModel(std::string("/nonexistent/model.spnf")),
               SpnerfError);
}

TEST(BinaryIo, PodRoundTrip) {
  std::stringstream s;
  WritePod<u32>(s, 42);
  WritePod<float>(s, 3.25f);
  WritePod<i8>(s, -7);
  EXPECT_EQ(ReadPod<u32>(s), 42u);
  EXPECT_EQ(ReadPod<float>(s), 3.25f);
  EXPECT_EQ(ReadPod<i8>(s), -7);
}

TEST(BinaryIo, VectorRoundTrip) {
  std::stringstream s;
  const std::vector<u16> v{1, 2, 3, 65535};
  WriteVector(s, v);
  EXPECT_EQ(ReadVector<u16>(s), v);
}

TEST(BinaryIo, VectorLengthLimitEnforced) {
  std::stringstream s;
  WritePod<u64>(s, 1ull << 40);  // absurd length
  EXPECT_THROW(ReadVector<u8>(s), SpnerfError);
}

TEST(BinaryIo, StringRoundTrip) {
  std::stringstream s;
  WriteString(s, "spnerf");
  EXPECT_EQ(ReadString(s), "spnerf");
}

}  // namespace
}  // namespace spnerf
