// Differential suite for the wavefront (batched) sampling path: images,
// RenderStats and DecodeCounters must be BIT-identical to the scalar
// per-ray reference for every field source, fp16 mode and worker count —
// the wavefront refactor is execution policy, never semantics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "grid/occupancy.hpp"
#include "grid/occupancy_octree.hpp"
#include "render/field_source.hpp"
#include "render/render_engine.hpp"
#include "render/skip_mode.hpp"
#include "scene/dataset.hpp"

namespace spnerf {
namespace {

/// Forces the SIMD dispatch path for one scope, restoring on exit.
class ScopedSimdPath {
 public:
  explicit ScopedSimdPath(simd::Path p) : saved_(simd::ActivePath()) {
    simd::SetActivePath(p);
  }
  ~ScopedSimdPath() { simd::SetActivePath(saved_); }
  ScopedSimdPath(const ScopedSimdPath&) = delete;
  ScopedSimdPath& operator=(const ScopedSimdPath&) = delete;

 private:
  simd::Path saved_;
};

/// Forces the SPNF_SKIP empty-space-skipping mode for one scope, restoring
/// the previous mode on exit. Renderers capture the mode at construction,
/// so the scope must cover the Render call, not just job setup.
class ScopedSkipMode {
 public:
  explicit ScopedSkipMode(skip::Mode m) : saved_(skip::SetActiveMode(m)) {}
  ~ScopedSkipMode() { skip::SetActiveMode(saved_); }
  ScopedSkipMode(const ScopedSkipMode&) = delete;
  ScopedSkipMode& operator=(const ScopedSkipMode&) = delete;

 private:
  skip::Mode saved_;
};

/// Batch sizes the per-kernel differential suites sweep: empty, single
/// lane, width-1 / width / width+1 for both 4- and 8-lane ISAs, one and
/// two MLP blocks (kBlock = 32) and a non-multiple-of-kBlock tail.
constexpr std::size_t kTailSizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 31, 32, 33, 67};

void ExpectSameRunningStats(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_EQ(a.Mean(), b.Mean());
  EXPECT_EQ(a.Variance(), b.Variance());
  EXPECT_EQ(a.Min(), b.Min());
  EXPECT_EQ(a.Max(), b.Max());
  EXPECT_EQ(a.Sum(), b.Sum());
}

void ExpectSameStats(const RenderStats& a, const RenderStats& b) {
  EXPECT_EQ(a.rays, b.rays);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.coarse_skips, b.coarse_skips);
  EXPECT_EQ(a.mlp_evals, b.mlp_evals);
  EXPECT_EQ(a.terminated_rays, b.terminated_rays);
  EXPECT_EQ(a.missed_rays, b.missed_rays);
  ExpectSameRunningStats(a.steps_per_ray, b.steps_per_ray);
  ExpectSameRunningStats(a.evals_per_ray, b.evals_per_ray);
}

void ExpectSameCounters(const DecodeCounters& a, const DecodeCounters& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.bitmap_zero, b.bitmap_zero);
  EXPECT_EQ(a.empty_slot, b.empty_slot);
  EXPECT_EQ(a.codebook_hits, b.codebook_hits);
  EXPECT_EQ(a.true_grid_hits, b.true_grid_hits);
}

void ExpectSameImage(const Image& a, const Image& b) {
  ASSERT_EQ(a.Pixels().size(), b.Pixels().size());
  for (std::size_t i = 0; i < a.Pixels().size(); ++i) {
    ASSERT_EQ(a.Pixels()[i], b.Pixels()[i]) << "pixel " << i;
  }
}

class WavefrontTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetParams p;
    p.resolution_override = 40;
    p.vqrf.codebook_size = 64;
    p.vqrf.kmeans_iterations = 2;
    dataset_ = new SceneDataset(BuildDataset(SceneId::kMic, p));
    SpNeRFParams sp;
    sp.subgrid_count = 8;
    sp.table_size = 8192;
    codec_ = new SpNeRFModel(SpNeRFModel::Preprocess(*dataset_->vqrf, sp));
    occupancy_ = new CoarseOccupancy(
        CoarseOccupancy::Build(BitGrid::FromGrid(dataset_->full_grid), 4));
    octree_ = new OccupancyOctree(OccupancyOctree::Build(*occupancy_));
    mlp_ = new Mlp(Mlp::Random(11));
  }

  static void TearDownTestSuite() {
    delete mlp_;
    delete octree_;
    delete occupancy_;
    delete codec_;
    delete dataset_;
    mlp_ = nullptr;
    octree_ = nullptr;
    occupancy_ = nullptr;
    codec_ = nullptr;
    dataset_ = nullptr;
  }

  /// Renders one stats-on view of `source` through the tile engine.
  static RenderResult RenderWith(const FieldSource& source, bool wavefront,
                                 bool fp16_mlp, unsigned workers,
                                 bool with_skip = true) {
    // Camera partially off-box so missed rays exercise the miss path, with
    // a 48x48 image over 32px tiles so tiles of both partial and full size
    // reduce.
    RenderJob job;
    job.source = &source;
    job.mlp = mlp_;
    job.camera = Camera({-1.2f, 0.9f, 0.4f}, {0.5f, 0.45f, 0.5f},
                        {0.f, 1.f, 0.f}, 55.f, 48, 48);
    job.options.wavefront = wavefront;
    job.options.fp16_mlp = fp16_mlp;
    if (with_skip) {
      job.options.coarse_skip = occupancy_;
      job.options.octree_skip = octree_;
    }
    job.collect_stats = true;
    RenderEngineOptions opts;
    opts.max_threads = workers;
    return RenderEngine(opts).Render(job);
  }

  /// The differential matrix for one source: scalar reference at 1 worker
  /// vs wavefront at 1/2/8 workers, fp16_mlp off and on.
  static void RunDifferential(const FieldSource& source) {
    for (const bool fp16 : {false, true}) {
      const RenderResult scalar = RenderWith(source, false, fp16, 1);
      EXPECT_GT(scalar.stats.mlp_evals, 0u);  // non-trivial view
      for (const unsigned workers : {1u, 2u, 8u}) {
        const RenderResult wave = RenderWith(source, true, fp16, workers);
        SCOPED_TRACE(std::string("fp16=") + (fp16 ? "1" : "0") +
                     " workers=" + std::to_string(workers));
        ExpectSameImage(scalar.image, wave.image);
        ExpectSameStats(scalar.stats, wave.stats);
        ExpectSameCounters(scalar.counters, wave.counters);
      }
    }
  }

  /// Octree-vs-flat differential for one source: the octree marcher must
  /// replay the flat skip chain bit-for-bit, so images, RenderStats
  /// (including coarse_skips/steps) and DecodeCounters match EXACTLY
  /// against the flat scalar reference for every execution policy.
  static void RunSkipDifferential(const FieldSource& source) {
    for (const bool fp16 : {false, true}) {
      RenderResult flat;
      {
        const ScopedSkipMode g(skip::Mode::kFlat);
        flat = RenderWith(source, /*wavefront=*/false, fp16, 1);
      }
      EXPECT_GT(flat.stats.coarse_skips, 0u);  // skipping actually engaged
      const ScopedSkipMode g(skip::Mode::kOctree);
      for (const bool wavefront : {false, true}) {
        for (const unsigned workers : {1u, 2u, 8u}) {
          const RenderResult tree = RenderWith(source, wavefront, fp16, workers);
          SCOPED_TRACE(std::string("fp16=") + (fp16 ? "1" : "0") +
                       " wavefront=" + (wavefront ? "1" : "0") +
                       " workers=" + std::to_string(workers));
          ExpectSameImage(flat.image, tree.image);
          ExpectSameStats(flat.stats, tree.stats);
          ExpectSameCounters(flat.counters, tree.counters);
        }
      }
    }
  }

  static SceneDataset* dataset_;
  static SpNeRFModel* codec_;
  static CoarseOccupancy* occupancy_;
  static OccupancyOctree* octree_;
  static Mlp* mlp_;
};

SceneDataset* WavefrontTest::dataset_ = nullptr;
SpNeRFModel* WavefrontTest::codec_ = nullptr;
CoarseOccupancy* WavefrontTest::occupancy_ = nullptr;
OccupancyOctree* WavefrontTest::octree_ = nullptr;
Mlp* WavefrontTest::mlp_ = nullptr;

TEST_F(WavefrontTest, AnalyticSourceBitIdentical) {
  const AnalyticFieldSource source(dataset_->scene);
  RunDifferential(source);
}

TEST_F(WavefrontTest, GridSourceBitIdentical) {
  const GridFieldSource source(dataset_->full_grid);
  RunDifferential(source);
}

TEST_F(WavefrontTest, SpNeRFSourceBitIdentical) {
  const SpNeRFFieldSource source(*codec_, /*fp16_tiu=*/false,
                                 /*collect_counters=*/false);
  RunDifferential(source);
}

TEST_F(WavefrontTest, SpNeRFFp16TiuBitIdentical) {
  // The TIU path rounds interpolation weights to binary16, including its
  // own weight-flush skip test; the batched dedup must replicate it.
  const SpNeRFFieldSource source(*codec_, /*fp16_tiu=*/true,
                                 /*collect_counters=*/false);
  RunDifferential(source);
}

TEST_F(WavefrontTest, OctreeSkipAnalyticBitIdentical) {
  const AnalyticFieldSource source(dataset_->scene);
  RunSkipDifferential(source);
}

TEST_F(WavefrontTest, OctreeSkipGridBitIdentical) {
  const GridFieldSource source(dataset_->full_grid);
  RunSkipDifferential(source);
}

TEST_F(WavefrontTest, OctreeSkipSpNeRFBitIdentical) {
  const SpNeRFFieldSource source(*codec_, /*fp16_tiu=*/false,
                                 /*collect_counters=*/false);
  RunSkipDifferential(source);
}

TEST_F(WavefrontTest, OctreeSkipSimdPathsBitIdentical) {
  // The skip mode is orthogonal to the SIMD dispatch path: forcing either
  // SIMD path must leave the octree-vs-flat differential bit-identical.
  const SpNeRFFieldSource source(*codec_, /*fp16_tiu=*/true,
                                 /*collect_counters=*/false);
  for (const simd::Path path :
       {simd::Path::kScalar, simd::BestSupportedPath()}) {
    const ScopedSimdPath sp(path);
    RenderResult flat, tree;
    {
      const ScopedSkipMode g(skip::Mode::kFlat);
      flat = RenderWith(source, /*wavefront=*/true, /*fp16_mlp=*/true, 2);
    }
    {
      const ScopedSkipMode g(skip::Mode::kOctree);
      tree = RenderWith(source, /*wavefront=*/true, /*fp16_mlp=*/true, 2);
    }
    SCOPED_TRACE(std::string("simd=") + simd::PathName(path));
    ExpectSameImage(flat.image, tree.image);
    ExpectSameStats(flat.stats, tree.stats);
    ExpectSameCounters(flat.counters, tree.counters);
  }
}

TEST_F(WavefrontTest, OctreeModeWithoutOctreeFallsBackToFlat) {
  // octree mode active but no octree attached: the renderer must degrade
  // to the flat chain rather than dropping skipping entirely.
  const SpNeRFFieldSource source(*codec_, false, false);
  RenderResult flat, degraded;
  {
    const ScopedSkipMode g(skip::Mode::kFlat);
    flat = RenderWith(source, false, false, 1);
  }
  {
    const ScopedSkipMode g(skip::Mode::kOctree);
    RenderJob job;
    job.source = &source;
    job.mlp = mlp_;
    job.camera = Camera({-1.2f, 0.9f, 0.4f}, {0.5f, 0.45f, 0.5f},
                        {0.f, 1.f, 0.f}, 55.f, 48, 48);
    job.options.wavefront = false;
    job.options.coarse_skip = occupancy_;  // octree_skip left null
    job.collect_stats = true;
    RenderEngineOptions opts;
    opts.max_threads = 1;
    degraded = RenderEngine(opts).Render(job);
  }
  ExpectSameImage(flat.image, degraded.image);
  ExpectSameStats(flat.stats, degraded.stats);
}

TEST_F(WavefrontTest, NoSkipStructureBitIdentical) {
  const SpNeRFFieldSource source(*codec_, false, false);
  const RenderResult scalar = RenderWith(source, false, false, 1,
                                         /*with_skip=*/false);
  const RenderResult wave = RenderWith(source, true, false, 2,
                                       /*with_skip=*/false);
  ExpectSameImage(scalar.image, wave.image);
  ExpectSameStats(scalar.stats, wave.stats);
  ExpectSameCounters(scalar.counters, wave.counters);
}

TEST_F(WavefrontTest, DedupOffMatchesDedupOn) {
  SpNeRFFieldSource dedup(*codec_, false, false);
  SpNeRFFieldSource no_dedup(*codec_, false, false);
  no_dedup.SetBatchDedup(false);
  const RenderResult a = RenderWith(dedup, true, false, 2);
  const RenderResult b = RenderWith(no_dedup, true, false, 2);
  ExpectSameImage(a.image, b.image);
  ExpectSameStats(a.stats, b.stats);
  ExpectSameCounters(a.counters, b.counters);
}

TEST_F(WavefrontTest, SampleBatchMatchesScalarSamples) {
  // Unit-level contract: SampleBatch == a Sample loop, values and counters,
  // for random (partly out-of-box) positions.
  const SpNeRFFieldSource source(*codec_, false, false);
  Rng rng(3);
  std::vector<Vec3f> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back({rng.Uniform(-0.1f, 1.1f), rng.Uniform(-0.1f, 1.1f),
                      rng.Uniform(-0.1f, 1.1f)});
  }
  DecodeCounters scalar_counters, batch_counters;
  std::vector<FieldSample> expected;
  expected.reserve(points.size());
  for (const Vec3f& p : points)
    expected.push_back(source.Sample(p, &scalar_counters));
  std::vector<FieldSample> got(points.size());
  source.SampleBatch(points, got, &batch_counters);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(expected[i].density, got[i].density);
    for (int c = 0; c < kColorFeatureDim; ++c)
      EXPECT_EQ(expected[i].features[c], got[i].features[c]);
  }
  ExpectSameCounters(scalar_counters, batch_counters);
}

TEST_F(WavefrontTest, ForwardBatchMatchesForward) {
  Rng rng(4);
  std::vector<std::array<float, kMlpInputDim>> in(67);  // non-multiple of 32
  for (auto& sample : in)
    for (auto& v : sample) v = rng.Uniform(-1.f, 1.f);
  std::vector<Vec3f> out(in.size());
  mlp_->ForwardBatch(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(mlp_->Forward(in[i]), out[i]);
  }
  mlp_->ForwardFp16Batch(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(mlp_->ForwardFp16(in[i]), out[i]);
  }
}

// ---------------------------------------------------------------------------
// Per-kernel SIMD differential suites: every batch kernel forced to the
// scalar reference vs forced to the best host vector path must agree
// bit-for-bit at every tail size. On a scalar-only host BestSupportedPath()
// is kScalar and the comparisons are trivially (but still) exercised, so
// the suite passes everywhere.
// ---------------------------------------------------------------------------

/// Runs `batch(n)` under forced-scalar and forced-vector dispatch and
/// bit-compares the outputs (and decode counters, when produced).
void ExpectSampleBatchPathsAgree(const FieldSource& source, std::size_t n,
                                 u64 seed, bool with_counters) {
  Rng rng(seed);
  std::vector<Vec3f> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(-0.1f, 1.1f), rng.Uniform(-0.1f, 1.1f),
                      rng.Uniform(-0.1f, 1.1f)});
  }
  std::vector<FieldSample> scalar_out(n), simd_out(n);
  DecodeCounters scalar_counters, simd_counters;
  {
    const ScopedSimdPath g(simd::Path::kScalar);
    source.SampleBatch(points, scalar_out,
                       with_counters ? &scalar_counters : nullptr);
  }
  {
    const ScopedSimdPath g(simd::BestSupportedPath());
    source.SampleBatch(points, simd_out,
                       with_counters ? &simd_counters : nullptr);
  }
  for (std::size_t i = 0; i < n; ++i) {
    SCOPED_TRACE("sample " + std::to_string(i) + " of " + std::to_string(n));
    EXPECT_EQ(scalar_out[i].density, simd_out[i].density);
    for (int c = 0; c < kColorFeatureDim; ++c)
      EXPECT_EQ(scalar_out[i].features[c], simd_out[i].features[c]);
  }
  if (with_counters) ExpectSameCounters(scalar_counters, simd_counters);
}

TEST_F(WavefrontTest, SimdSpnerfBlendBitIdentical) {
  for (const bool fp16_tiu : {false, true}) {
    for (const bool dedup : {true, false}) {
      SpNeRFFieldSource source(*codec_, fp16_tiu, /*collect_counters=*/false);
      source.SetBatchDedup(dedup);
      for (const std::size_t n : kTailSizes) {
        SCOPED_TRACE(std::string("fp16_tiu=") + (fp16_tiu ? "1" : "0") +
                     " dedup=" + (dedup ? "1" : "0") +
                     " n=" + std::to_string(n));
        ExpectSampleBatchPathsAgree(source, n, 17 + n, /*with_counters=*/true);
      }
    }
  }
}

TEST_F(WavefrontTest, SimdGridTrilinearBitIdentical) {
  const GridFieldSource source(dataset_->full_grid);
  for (const std::size_t n : kTailSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    ExpectSampleBatchPathsAgree(source, n, 23 + n, /*with_counters=*/false);
  }
}

TEST_F(WavefrontTest, SimdForwardBatchBitIdentical) {
  Rng rng(29);
  for (const std::size_t n : kTailSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<std::array<float, kMlpInputDim>> in(n);
    for (auto& sample : in)
      for (auto& v : sample) v = rng.Uniform(-1.f, 1.f);
    std::vector<Vec3f> scalar_out(n), simd_out(n);
    {
      const ScopedSimdPath g(simd::Path::kScalar);
      mlp_->ForwardBatch(in, scalar_out);
    }
    {
      const ScopedSimdPath g(simd::BestSupportedPath());
      mlp_->ForwardBatch(in, simd_out);
    }
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(scalar_out[i], simd_out[i]);
    {
      const ScopedSimdPath g(simd::Path::kScalar);
      mlp_->ForwardFp16Batch(in, scalar_out);
    }
    {
      const ScopedSimdPath g(simd::BestSupportedPath());
      mlp_->ForwardFp16Batch(in, simd_out);
    }
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(scalar_out[i], simd_out[i]);
  }
}

TEST_F(WavefrontTest, SimdForcedPathRenderBitIdentical) {
  // End-to-end: a full wavefront render dispatched on the vector path must
  // produce the same image/stats/counters as one forced to scalar.
  const SpNeRFFieldSource source(*codec_, /*fp16_tiu=*/true,
                                 /*collect_counters=*/false);
  RenderResult scalar_r, simd_r;
  {
    const ScopedSimdPath g(simd::Path::kScalar);
    scalar_r = RenderWith(source, /*wavefront=*/true, /*fp16_mlp=*/true, 2);
  }
  {
    const ScopedSimdPath g(simd::BestSupportedPath());
    simd_r = RenderWith(source, /*wavefront=*/true, /*fp16_mlp=*/true, 2);
  }
  ExpectSameImage(scalar_r.image, simd_r.image);
  ExpectSameStats(scalar_r.stats, simd_r.stats);
  ExpectSameCounters(scalar_r.counters, simd_r.counters);
}

TEST(SkipModeTest, ResolveOverrideRules) {
  // The SPNF_SKIP resolution rule is pure and exposed exactly so this
  // test can pin it without spawning subprocesses: absent/garbage ->
  // octree (the default fast path); a parseable name -> that mode.
  EXPECT_EQ(skip::ResolveOverride(nullptr), skip::Mode::kOctree);
  EXPECT_EQ(skip::ResolveOverride(""), skip::Mode::kOctree);
  EXPECT_EQ(skip::ResolveOverride("definitely-not-a-mode"),
            skip::Mode::kOctree);
  EXPECT_EQ(skip::ResolveOverride("flat"), skip::Mode::kFlat);
  EXPECT_EQ(skip::ResolveOverride("octree"), skip::Mode::kOctree);
  EXPECT_STREQ(skip::ModeName(skip::Mode::kFlat), "flat");
  EXPECT_STREQ(skip::ModeName(skip::Mode::kOctree), "octree");
  skip::Mode parsed = skip::Mode::kOctree;
  EXPECT_TRUE(skip::ParseModeName("flat", parsed));
  EXPECT_EQ(parsed, skip::Mode::kFlat);
  EXPECT_FALSE(skip::ParseModeName("FLAT", parsed));  // contract: lower-case
  EXPECT_EQ(parsed, skip::Mode::kFlat);               // untouched on failure
}

TEST(SkipModeTest, SetActiveModeRoundTrips) {
  const skip::Mode before = skip::ActiveMode();
  const skip::Mode prev = skip::SetActiveMode(skip::Mode::kFlat);
  EXPECT_EQ(prev, before);  // returns the displaced mode for scoped saves
  EXPECT_EQ(skip::ActiveMode(), skip::Mode::kFlat);
  skip::SetActiveMode(before);
  EXPECT_EQ(skip::ActiveMode(), before);
}

TEST(SimdDispatchTest, ResolveOverrideRules) {
  // The SPNF_SIMD resolution rule is pure and exposed exactly so this test
  // can pin it without spawning subprocesses: absent/garbage -> detected
  // best; a supported name -> that path; an unsupported name -> scalar
  // (graceful degradation, never a different vector ISA).
  const simd::Path best = simd::BestSupportedPath();
  EXPECT_EQ(simd::ResolveOverride(nullptr), best);
  EXPECT_EQ(simd::ResolveOverride(""), best);
  EXPECT_EQ(simd::ResolveOverride("definitely-not-an-isa"), best);
  EXPECT_EQ(simd::ResolveOverride("scalar"), simd::Path::kScalar);
  EXPECT_EQ(simd::ResolveOverride("avx2"),
            simd::PathSupported(simd::Path::kAvx2) ? simd::Path::kAvx2
                                                   : simd::Path::kScalar);
  EXPECT_EQ(simd::ResolveOverride("neon"),
            simd::PathSupported(simd::Path::kNeon) ? simd::Path::kNeon
                                                   : simd::Path::kScalar);
  EXPECT_STREQ(simd::PathName(simd::Path::kScalar), "scalar");
  simd::Path parsed = simd::Path::kScalar;
  EXPECT_TRUE(simd::ParsePathName("avx2", parsed));
  EXPECT_EQ(parsed, simd::Path::kAvx2);
  EXPECT_FALSE(simd::ParsePathName("AVX2", parsed));  // contract: lower-case
}

TEST(SimdDispatchTest, SetActivePathDegradesGracefully) {
  const simd::Path saved = simd::ActivePath();
  // Forcing every nominal path must land on a host-runnable one; an
  // unsupported request degrades to scalar, and ActivePath reflects what
  // was actually applied.
  for (const simd::Path p :
       {simd::Path::kScalar, simd::Path::kAvx2, simd::Path::kNeon}) {
    const simd::Path applied = simd::SetActivePath(p);
    EXPECT_TRUE(simd::PathSupported(applied));
    EXPECT_EQ(applied, simd::PathSupported(p) ? p : simd::Path::kScalar);
    EXPECT_EQ(simd::ActivePath(), applied);
  }
  simd::SetActivePath(saved);
}

}  // namespace
}  // namespace spnerf
