// Differential suite for the wavefront (batched) sampling path: images,
// RenderStats and DecodeCounters must be BIT-identical to the scalar
// per-ray reference for every field source, fp16 mode and worker count —
// the wavefront refactor is execution policy, never semantics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "grid/occupancy.hpp"
#include "render/field_source.hpp"
#include "render/render_engine.hpp"
#include "scene/dataset.hpp"

namespace spnerf {
namespace {

void ExpectSameRunningStats(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_EQ(a.Mean(), b.Mean());
  EXPECT_EQ(a.Variance(), b.Variance());
  EXPECT_EQ(a.Min(), b.Min());
  EXPECT_EQ(a.Max(), b.Max());
  EXPECT_EQ(a.Sum(), b.Sum());
}

void ExpectSameStats(const RenderStats& a, const RenderStats& b) {
  EXPECT_EQ(a.rays, b.rays);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.coarse_skips, b.coarse_skips);
  EXPECT_EQ(a.mlp_evals, b.mlp_evals);
  EXPECT_EQ(a.terminated_rays, b.terminated_rays);
  EXPECT_EQ(a.missed_rays, b.missed_rays);
  ExpectSameRunningStats(a.steps_per_ray, b.steps_per_ray);
  ExpectSameRunningStats(a.evals_per_ray, b.evals_per_ray);
}

void ExpectSameCounters(const DecodeCounters& a, const DecodeCounters& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.bitmap_zero, b.bitmap_zero);
  EXPECT_EQ(a.empty_slot, b.empty_slot);
  EXPECT_EQ(a.codebook_hits, b.codebook_hits);
  EXPECT_EQ(a.true_grid_hits, b.true_grid_hits);
}

void ExpectSameImage(const Image& a, const Image& b) {
  ASSERT_EQ(a.Pixels().size(), b.Pixels().size());
  for (std::size_t i = 0; i < a.Pixels().size(); ++i) {
    ASSERT_EQ(a.Pixels()[i], b.Pixels()[i]) << "pixel " << i;
  }
}

class WavefrontTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetParams p;
    p.resolution_override = 40;
    p.vqrf.codebook_size = 64;
    p.vqrf.kmeans_iterations = 2;
    dataset_ = new SceneDataset(BuildDataset(SceneId::kMic, p));
    SpNeRFParams sp;
    sp.subgrid_count = 8;
    sp.table_size = 8192;
    codec_ = new SpNeRFModel(SpNeRFModel::Preprocess(*dataset_->vqrf, sp));
    occupancy_ = new CoarseOccupancy(
        CoarseOccupancy::Build(BitGrid::FromGrid(dataset_->full_grid), 4));
    mlp_ = new Mlp(Mlp::Random(11));
  }

  static void TearDownTestSuite() {
    delete mlp_;
    delete occupancy_;
    delete codec_;
    delete dataset_;
    mlp_ = nullptr;
    occupancy_ = nullptr;
    codec_ = nullptr;
    dataset_ = nullptr;
  }

  /// Renders one stats-on view of `source` through the tile engine.
  static RenderResult RenderWith(const FieldSource& source, bool wavefront,
                                 bool fp16_mlp, unsigned workers,
                                 bool with_skip = true) {
    // Camera partially off-box so missed rays exercise the miss path, with
    // a 48x48 image over 32px tiles so tiles of both partial and full size
    // reduce.
    RenderJob job;
    job.source = &source;
    job.mlp = mlp_;
    job.camera = Camera({-1.2f, 0.9f, 0.4f}, {0.5f, 0.45f, 0.5f},
                        {0.f, 1.f, 0.f}, 55.f, 48, 48);
    job.options.wavefront = wavefront;
    job.options.fp16_mlp = fp16_mlp;
    if (with_skip) job.options.coarse_skip = occupancy_;
    job.collect_stats = true;
    RenderEngineOptions opts;
    opts.max_threads = workers;
    return RenderEngine(opts).Render(job);
  }

  /// The differential matrix for one source: scalar reference at 1 worker
  /// vs wavefront at 1/2/8 workers, fp16_mlp off and on.
  static void RunDifferential(const FieldSource& source) {
    for (const bool fp16 : {false, true}) {
      const RenderResult scalar = RenderWith(source, false, fp16, 1);
      EXPECT_GT(scalar.stats.mlp_evals, 0u);  // non-trivial view
      for (const unsigned workers : {1u, 2u, 8u}) {
        const RenderResult wave = RenderWith(source, true, fp16, workers);
        SCOPED_TRACE(std::string("fp16=") + (fp16 ? "1" : "0") +
                     " workers=" + std::to_string(workers));
        ExpectSameImage(scalar.image, wave.image);
        ExpectSameStats(scalar.stats, wave.stats);
        ExpectSameCounters(scalar.counters, wave.counters);
      }
    }
  }

  static SceneDataset* dataset_;
  static SpNeRFModel* codec_;
  static CoarseOccupancy* occupancy_;
  static Mlp* mlp_;
};

SceneDataset* WavefrontTest::dataset_ = nullptr;
SpNeRFModel* WavefrontTest::codec_ = nullptr;
CoarseOccupancy* WavefrontTest::occupancy_ = nullptr;
Mlp* WavefrontTest::mlp_ = nullptr;

TEST_F(WavefrontTest, AnalyticSourceBitIdentical) {
  const AnalyticFieldSource source(dataset_->scene);
  RunDifferential(source);
}

TEST_F(WavefrontTest, GridSourceBitIdentical) {
  const GridFieldSource source(dataset_->full_grid);
  RunDifferential(source);
}

TEST_F(WavefrontTest, SpNeRFSourceBitIdentical) {
  const SpNeRFFieldSource source(*codec_, /*fp16_tiu=*/false,
                                 /*collect_counters=*/false);
  RunDifferential(source);
}

TEST_F(WavefrontTest, SpNeRFFp16TiuBitIdentical) {
  // The TIU path rounds interpolation weights to binary16, including its
  // own weight-flush skip test; the batched dedup must replicate it.
  const SpNeRFFieldSource source(*codec_, /*fp16_tiu=*/true,
                                 /*collect_counters=*/false);
  RunDifferential(source);
}

TEST_F(WavefrontTest, NoSkipStructureBitIdentical) {
  const SpNeRFFieldSource source(*codec_, false, false);
  const RenderResult scalar = RenderWith(source, false, false, 1,
                                         /*with_skip=*/false);
  const RenderResult wave = RenderWith(source, true, false, 2,
                                       /*with_skip=*/false);
  ExpectSameImage(scalar.image, wave.image);
  ExpectSameStats(scalar.stats, wave.stats);
  ExpectSameCounters(scalar.counters, wave.counters);
}

TEST_F(WavefrontTest, DedupOffMatchesDedupOn) {
  SpNeRFFieldSource dedup(*codec_, false, false);
  SpNeRFFieldSource no_dedup(*codec_, false, false);
  no_dedup.SetBatchDedup(false);
  const RenderResult a = RenderWith(dedup, true, false, 2);
  const RenderResult b = RenderWith(no_dedup, true, false, 2);
  ExpectSameImage(a.image, b.image);
  ExpectSameStats(a.stats, b.stats);
  ExpectSameCounters(a.counters, b.counters);
}

TEST_F(WavefrontTest, SampleBatchMatchesScalarSamples) {
  // Unit-level contract: SampleBatch == a Sample loop, values and counters,
  // for random (partly out-of-box) positions.
  const SpNeRFFieldSource source(*codec_, false, false);
  Rng rng(3);
  std::vector<Vec3f> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back({rng.Uniform(-0.1f, 1.1f), rng.Uniform(-0.1f, 1.1f),
                      rng.Uniform(-0.1f, 1.1f)});
  }
  DecodeCounters scalar_counters, batch_counters;
  std::vector<FieldSample> expected;
  expected.reserve(points.size());
  for (const Vec3f& p : points)
    expected.push_back(source.Sample(p, &scalar_counters));
  std::vector<FieldSample> got(points.size());
  source.SampleBatch(points, got, &batch_counters);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(expected[i].density, got[i].density);
    for (int c = 0; c < kColorFeatureDim; ++c)
      EXPECT_EQ(expected[i].features[c], got[i].features[c]);
  }
  ExpectSameCounters(scalar_counters, batch_counters);
}

TEST_F(WavefrontTest, ForwardBatchMatchesForward) {
  Rng rng(4);
  std::vector<std::array<float, kMlpInputDim>> in(67);  // non-multiple of 32
  for (auto& sample : in)
    for (auto& v : sample) v = rng.Uniform(-1.f, 1.f);
  std::vector<Vec3f> out(in.size());
  mlp_->ForwardBatch(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(mlp_->Forward(in[i]), out[i]);
  }
  mlp_->ForwardFp16Batch(in, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(mlp_->ForwardFp16(in[i]), out[i]);
  }
}

}  // namespace
}  // namespace spnerf
