#include "encoding/hash.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace spnerf {
namespace {

TEST(SpatialHash, MatchesEquationOne) {
  // h(p) = (x*1 XOR y*pi2 XOR z*pi3) mod T, computed by hand.
  const Vec3i p{3, 5, 7};
  const u32 expect =
      ((3u * 1u) ^ (5u * 2654435761u) ^ (7u * 805459861u)) % 1024u;
  EXPECT_EQ(SpatialHash(p, 1024), expect);
}

TEST(SpatialHash, PrimesAreThePaperConstants) {
  EXPECT_EQ(kHashPi1, 1u);
  EXPECT_EQ(kHashPi2, 2654435761u);
  EXPECT_EQ(kHashPi3, 805459861u);
}

TEST(SpatialHash, WithinTableSize) {
  Rng rng(1);
  for (u32 t : {1u, 7u, 256u, 32768u, 100000u}) {
    for (int i = 0; i < 1000; ++i) {
      const Vec3i p{rng.UniformInt(0, 1000), rng.UniformInt(0, 1000),
                    rng.UniformInt(0, 1000)};
      EXPECT_LT(SpatialHash(p, t), t);
    }
  }
}

TEST(SpatialHash, Deterministic) {
  const Vec3i p{11, 22, 33};
  EXPECT_EQ(SpatialHash(p, 4096), SpatialHash(p, 4096));
}

TEST(SpatialHash, XAxisIsIdentityXor) {
  // pi1 = 1, so along the x axis (y=z=0) the hash is x mod T.
  for (int x = 0; x < 100; ++x) {
    EXPECT_EQ(SpatialHash({x, 0, 0}, 64), static_cast<u32>(x) % 64u);
  }
}

TEST(SpatialHash, DistributionIsRoughlyUniform) {
  // Chi-square-ish sanity: bucket counts of a dense coordinate block should
  // be within 3x of the mean for a 256-entry table.
  const u32 table = 256;
  std::vector<int> counts(table, 0);
  for (int x = 0; x < 32; ++x) {
    for (int y = 0; y < 32; ++y) {
      for (int z = 0; z < 16; ++z) {
        ++counts[SpatialHash({x, y, z}, table)];
      }
    }
  }
  const double mean = 32.0 * 32 * 16 / table;  // 64
  for (u32 b = 0; b < table; ++b) {
    EXPECT_GT(counts[b], mean / 3) << "bucket " << b;
    EXPECT_LT(counts[b], mean * 3) << "bucket " << b;
  }
}

TEST(SpatialHash, CollisionRateNearBirthdayBound) {
  // Inserting n random points into T slots should collide at roughly
  // 1 - T/n*(1-exp(-n/T)) — just check we are within 2x of the ideal.
  const u32 table = 32768;
  const int n = 8192;
  Rng rng(2);
  std::set<u32> used;
  int collisions = 0;
  std::set<u64> seen_points;
  for (int i = 0; i < n; ++i) {
    Vec3i p{rng.UniformInt(0, 255), rng.UniformInt(0, 255),
            rng.UniformInt(0, 255)};
    const u64 key = (static_cast<u64>(p.x) << 32) ^
                    (static_cast<u64>(p.y) << 16) ^ static_cast<u64>(p.z);
    if (!seen_points.insert(key).second) continue;
    if (!used.insert(SpatialHash(p, table)).second) ++collisions;
  }
  const double load = static_cast<double>(n) / table;  // 0.25
  const double ideal =
      1.0 - (1.0 / load) * (1.0 - std::exp(-load));  // ~0.115
  const double measured = static_cast<double>(collisions) / n;
  EXPECT_GT(measured, ideal * 0.5);
  EXPECT_LT(measured, ideal * 2.0);
}

TEST(SpatialHashRaw, ModuloConsistency) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Vec3i p{rng.UniformInt(0, 500), rng.UniformInt(0, 500),
                  rng.UniformInt(0, 500)};
    EXPECT_EQ(SpatialHash(p, 999), SpatialHashRaw(p) % 999u);
  }
}

}  // namespace
}  // namespace spnerf
