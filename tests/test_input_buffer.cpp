#include "sim/input_buffer.hpp"

#include <algorithm>
#include <gtest/gtest.h>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {
namespace {

std::array<float, kMlpInputDim> MakeVector(int seed) {
  std::array<float, kMlpInputDim> v{};
  for (int i = 0; i < kMlpInputDim; ++i) {
    v[static_cast<std::size_t>(i)] =
        static_cast<float>(seed) * 100.f + static_cast<float>(i);
  }
  return v;
}

TEST(BlockCirculant, RoundTripSingleVector) {
  BlockCirculantBuffer buf(64);
  const auto in = MakeVector(3);
  buf.WriteVector(0, in);
  EXPECT_EQ(buf.ReadVector(0), in);
}

TEST(BlockCirculant, RoundTripFullBatch) {
  BlockCirculantBuffer buf(64);
  for (int v = 0; v < 64; ++v) buf.WriteVector(v, MakeVector(v));
  for (int v = 0; v < 64; ++v) {
    EXPECT_EQ(buf.ReadVector(v), MakeVector(v)) << "vector " << v;
  }
}

TEST(BlockCirculant, WriteTouchesEveryBankOnce) {
  // The defining property of the Fig 5 layout: one vector's ten blocks land
  // in ten distinct banks — a conflict-free single-cycle access.
  BlockCirculantBuffer buf(64);
  for (int v = 0; v < 64; ++v) {
    const std::vector<int> banks = buf.WriteBanksOf(v);
    EXPECT_EQ(banks.size(), static_cast<std::size_t>(kInputBufBanks));
    const std::set<int> unique(banks.begin(), banks.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(kInputBufBanks))
        << "vector " << v;
  }
}

TEST(BlockCirculant, AdjacentVectorsRotateBanks) {
  // Fig 5: vector v's block 0 goes to bank v % 10.
  BlockCirculantBuffer buf(64);
  for (int v = 0; v < 20; ++v) {
    EXPECT_EQ(buf.WriteBanksOf(v)[0], v % kInputBufBanks);
  }
}

TEST(BlockCirculant, PaddingIsZero) {
  // Element 39 is padded with zero (paper: "we pad the last element with 0");
  // verify by writing then reading a vector whose tail would expose stale
  // data if padding were skipped.
  BlockCirculantBuffer buf(4);
  buf.WriteVector(0, MakeVector(1));
  const auto out = buf.ReadVector(0);
  // Only kMlpInputDim elements come back; the pad slot is internal. Verify
  // the read is exact (the pad never leaks into real elements).
  EXPECT_EQ(out, MakeVector(1));
}

TEST(BlockCirculant, TimingBlockCirculantIsOneCycle) {
  const BlockCirculantBuffer buf(64, InputLayout::kBlockCirculant);
  EXPECT_EQ(buf.ReadCyclesPerVector(), 1);
  EXPECT_EQ(buf.FeedCycles(64), 64u);
  EXPECT_EQ(buf.BytesPerVector(), 80u);  // 40 elements x FP16
}

TEST(BlockCirculant, TimingNaiveIsTwoCyclesAndBigger) {
  const BlockCirculantBuffer naive(64, InputLayout::kPaddedNaive);
  EXPECT_EQ(naive.ReadCyclesPerVector(), 2);
  EXPECT_EQ(naive.FeedCycles(64), 128u);
  EXPECT_EQ(naive.BytesPerVector(), 128u);  // padded to 64 elements
  // The paper's claim: block-circulant reduces memory overhead and read time.
  const BlockCirculantBuffer bc(64, InputLayout::kBlockCirculant);
  EXPECT_LT(bc.BytesPerVector(), naive.BytesPerVector());
  EXPECT_LT(bc.FeedCycles(64), naive.FeedCycles(64));
}

TEST(BlockCirculant, NaiveLayoutStillRoundTrips) {
  BlockCirculantBuffer buf(16, InputLayout::kPaddedNaive);
  for (int v = 0; v < 16; ++v) buf.WriteVector(v, MakeVector(v));
  for (int v = 0; v < 16; ++v) {
    EXPECT_EQ(buf.ReadVector(v), MakeVector(v));
  }
}

TEST(BlockCirculant, OverwriteVectorSlot) {
  BlockCirculantBuffer buf(8);
  buf.WriteVector(3, MakeVector(1));
  buf.WriteVector(3, MakeVector(2));
  EXPECT_EQ(buf.ReadVector(3), MakeVector(2));
}

TEST(BlockCirculant, OutOfRangeThrows) {
  BlockCirculantBuffer buf(4);
  EXPECT_THROW(buf.WriteVector(4, MakeVector(0)), SpnerfError);
  EXPECT_THROW(buf.WriteVector(-1, MakeVector(0)), SpnerfError);
  EXPECT_THROW((void)buf.ReadVector(4), SpnerfError);
}

TEST(BlockCirculant, ReadingUnwrittenSlotThrows) {
  BlockCirculantBuffer buf(4);
  EXPECT_THROW((void)buf.ReadVector(0), SpnerfError);
}

TEST(BlockCirculant, ZeroCapacityThrows) {
  EXPECT_THROW(BlockCirculantBuffer(0), SpnerfError);
}

TEST(BlockCirculant, ConstantsMatchPaperFigure) {
  // Fig 5: 10 banks, 4 elements per block, 39 padded to 40.
  EXPECT_EQ(kInputBufBanks, 10);
  EXPECT_EQ(kInputBufBlock, 4);
  EXPECT_EQ(kInputVectorPadded, 40);
  EXPECT_EQ(kMlpInputDim, 39);
}

}  // namespace
}  // namespace spnerf
