#include "serve/render_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/dispatch.hpp"
#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "serve/load_generator.hpp"

namespace spnerf {
namespace {

/// Flips the process-global dispatch mode for one scope; services and pools
/// constructed inside pick it up, everything after sees the previous mode.
class ScopedDispatchMode {
 public:
  explicit ScopedDispatchMode(dispatch::Mode mode)
      : previous_(dispatch::SetActiveMode(mode)) {}
  ~ScopedDispatchMode() { dispatch::SetActiveMode(previous_); }
  ScopedDispatchMode(const ScopedDispatchMode&) = delete;
  ScopedDispatchMode& operator=(const ScopedDispatchMode&) = delete;

 private:
  dispatch::Mode previous_;
};

/// Tiny build parameters so service tests stay fast; every test isolates
/// itself behind a memory-only AssetCache (no disk store) and its own
/// repository, so nothing leaks across tests or into the global cache.
RenderRequest SmallRequest(SceneId id = SceneId::kMic, int view = 0) {
  RenderRequest r;
  r.config.scene_id = id;
  r.config.dataset.resolution_override = 32;
  r.config.dataset.vqrf.codebook_size = 64;
  r.config.dataset.vqrf.kmeans_iterations = 2;
  r.config.dataset.vqrf.max_vq_train_samples = 2000;
  r.config.spnerf.subgrid_count = 8;
  r.config.spnerf.table_size = 4096;
  r.image_width = r.image_height = 24;
  r.view = view;
  return r;
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : cache_(AssetCacheOptions{/*disk_root=*/"", /*memory_capacity=*/16}),
        repository_(&cache_, /*capacity=*/8) {}

  RenderServiceOptions PausedOptions(std::size_t capacity,
                                     std::size_t max_batch = 8) {
    RenderServiceOptions opts;
    opts.queue_capacity = capacity;
    opts.max_batch = max_batch;
    opts.repository = &repository_;
    opts.start_paused = true;
    return opts;
  }

  AssetCache cache_;
  PipelineRepository repository_;
};

TEST_F(ServeTest, CompletesARequestEndToEnd) {
  RenderService service(PausedOptions(8));
  std::future<RenderResponse> f = service.Submit(SmallRequest());
  service.Drain();
  const RenderResponse r = f.get();
  EXPECT_EQ(r.status, RequestStatus::kCompleted);
  EXPECT_EQ(r.image.Width(), 24);
  EXPECT_EQ(r.image.Height(), 24);
  EXPECT_EQ(r.batch_size, 1u);
  EXPECT_GE(r.total_ms, r.queue_ms);
}

TEST_F(ServeTest, BoundedQueueRejectsOverflowExplicitly) {
  // Paused service: nothing dispatches, so the queue fills exactly to
  // capacity and every overflow submission resolves immediately.
  RenderService service(PausedOptions(/*capacity=*/3));
  std::vector<std::future<RenderResponse>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(service.Submit(SmallRequest(SceneId::kMic, i % 8)));
  }
  EXPECT_EQ(service.QueueDepth(), 3u);
  // The two overflow futures are already resolved as rejected.
  for (int i = 3; i < 5; ++i) {
    auto& f = futures[static_cast<std::size_t>(i)];
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get().status, RequestStatus::kRejected);
  }
  service.Drain();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get().status,
              RequestStatus::kCompleted);
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_LE(stats.queue_peak, 3u);
}

TEST_F(ServeTest, HigherPriorityEvictsLowestWhenFull) {
  RenderService service(PausedOptions(/*capacity=*/2));
  RenderRequest batch = SmallRequest();
  batch.priority = RequestPriority::kBatch;
  std::future<RenderResponse> b0 = service.Submit(batch);
  std::future<RenderResponse> b1 = service.Submit(batch);

  RenderRequest interactive = SmallRequest();
  interactive.priority = RequestPriority::kInteractive;
  std::future<RenderResponse> hi = service.Submit(interactive);

  // The interactive request displaced the worst-ranked queued batch
  // request (the later of the two, FIFO tie-break).
  ASSERT_EQ(b1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(b1.get().status, RequestStatus::kRejected);
  service.Drain();
  EXPECT_EQ(hi.get().status, RequestStatus::kCompleted);
  EXPECT_EQ(b0.get().status, RequestStatus::kCompleted);
}

TEST_F(ServeTest, LowPriorityNeverEvictsEqualRank) {
  RenderService service(PausedOptions(/*capacity=*/2));
  std::future<RenderResponse> a = service.Submit(SmallRequest());
  std::future<RenderResponse> b = service.Submit(SmallRequest());
  // Same priority as everything queued: the incoming request is the one
  // shed, never an already-admitted equal.
  std::future<RenderResponse> c = service.Submit(SmallRequest());
  ASSERT_EQ(c.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(c.get().status, RequestStatus::kRejected);
  service.Drain();
  EXPECT_EQ(a.get().status, RequestStatus::kCompleted);
  EXPECT_EQ(b.get().status, RequestStatus::kCompleted);
}

TEST_F(ServeTest, ExpiredDeadlineIsShedWithoutRendering) {
  // Deadlines run on the injected scheduling clock: advance virtual time
  // past the deadline instead of sleeping real wall time.
  ManualClock clock;
  RenderServiceOptions opts = PausedOptions(8);
  opts.clock = &clock;
  RenderService service(opts);
  RenderRequest doomed = SmallRequest();
  doomed.deadline_ms = 1.0;
  RenderRequest fine = SmallRequest(SceneId::kMic, 1);
  std::future<RenderResponse> f_doomed = service.Submit(doomed);
  std::future<RenderResponse> f_fine = service.Submit(fine);
  clock.AdvanceMs(20.0);
  service.Drain();

  const RenderResponse r = f_doomed.get();
  EXPECT_EQ(r.status, RequestStatus::kExpired);
  EXPECT_TRUE(r.image.Empty());
  EXPECT_EQ(f_fine.get().status, RequestStatus::kCompleted);
  EXPECT_EQ(service.Stats().expired, 1u);
}

TEST_F(ServeTest, PriorityOrdersDispatchUnderBacklog) {
  // A paused service is a saturated one: the backlog is staged in full
  // before the dispatcher runs, so dispatch order must be pure scheduling
  // policy — interactive before normal before batch, FIFO within a class.
  // max_batch=1 keeps every request its own dispatch.
  RenderService service(PausedOptions(/*capacity=*/16, /*max_batch=*/1));
  const std::vector<RequestPriority> submit_order = {
      RequestPriority::kBatch,       RequestPriority::kNormal,
      RequestPriority::kInteractive, RequestPriority::kBatch,
      RequestPriority::kInteractive, RequestPriority::kNormal,
  };
  std::vector<std::future<RenderResponse>> futures;
  for (std::size_t i = 0; i < submit_order.size(); ++i) {
    RenderRequest r = SmallRequest(SceneId::kMic, static_cast<int>(i) % 8);
    r.priority = submit_order[i];
    futures.push_back(service.Submit(r));
  }
  service.Drain();

  std::vector<u64> dispatch(submit_order.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const RenderResponse r = futures[i].get();
    ASSERT_EQ(r.status, RequestStatus::kCompleted);
    dispatch[i] = r.dispatch_index;
  }
  // Interactive submissions (2, 4) dispatch first, then normal (1, 5),
  // then batch (0, 3); FIFO inside each class.
  const std::vector<std::size_t> expected_order = {2, 4, 1, 5, 0, 3};
  for (std::size_t rank = 0; rank < expected_order.size(); ++rank) {
    EXPECT_EQ(dispatch[expected_order[rank]], rank)
        << "submission " << expected_order[rank];
  }
}

TEST_F(ServeTest, EarlierDeadlineDispatchesFirstWithinPriority) {
  RenderService service(PausedOptions(/*capacity=*/8, /*max_batch=*/1));
  RenderRequest relaxed = SmallRequest(SceneId::kMic, 0);
  relaxed.deadline_ms = 60000.0;
  RenderRequest urgent = SmallRequest(SceneId::kMic, 1);
  urgent.deadline_ms = 30000.0;
  std::future<RenderResponse> f_relaxed = service.Submit(relaxed);
  std::future<RenderResponse> f_urgent = service.Submit(urgent);
  service.Drain();
  const RenderResponse r_relaxed = f_relaxed.get();
  const RenderResponse r_urgent = f_urgent.get();
  ASSERT_EQ(r_relaxed.status, RequestStatus::kCompleted);
  ASSERT_EQ(r_urgent.status, RequestStatus::kCompleted);
  EXPECT_LT(r_urgent.dispatch_index, r_relaxed.dispatch_index);
}

TEST_F(ServeTest, SameSceneRequestsCoalesceIntoOneBatch) {
  RenderService service(PausedOptions(/*capacity=*/16, /*max_batch=*/8));
  std::vector<std::future<RenderResponse>> futures;
  for (int v = 0; v < 4; ++v) {
    futures.push_back(service.Submit(SmallRequest(SceneId::kMic, v)));
  }
  service.Drain();
  u64 dispatch = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const RenderResponse r = futures[i].get();
    ASSERT_EQ(r.status, RequestStatus::kCompleted);
    EXPECT_EQ(r.batch_size, 4u);
    if (i == 0) {
      dispatch = r.dispatch_index;
    } else {
      EXPECT_EQ(r.dispatch_index, dispatch);  // one engine call served all
    }
  }
  EXPECT_EQ(service.Stats().batches, 1u);
}

TEST_F(ServeTest, MaskingSplitsTheBatchKey) {
  RenderRequest masked = SmallRequest();
  RenderRequest unmasked = SmallRequest();
  unmasked.bitmap_masking = false;
  EXPECT_NE(RenderService::BatchKey(masked),
            RenderService::BatchKey(unmasked));
  EXPECT_EQ(RenderService::BatchKey(masked),
            RenderService::BatchKey(SmallRequest(SceneId::kMic, 3)));
}

TEST_F(ServeTest, ExpiredEntriesYieldTheirSeatsAtAdmission) {
  // A full queue of already-dead work must not reject live arrivals: the
  // admission path sweeps expired entries before deciding to shed.
  ManualClock clock;
  RenderServiceOptions opts = PausedOptions(/*capacity=*/2);
  opts.clock = &clock;
  RenderService service(opts);
  RenderRequest doomed = SmallRequest();
  doomed.deadline_ms = 1.0;
  std::future<RenderResponse> d0 = service.Submit(doomed);
  std::future<RenderResponse> d1 = service.Submit(doomed);
  clock.AdvanceMs(20.0);

  std::future<RenderResponse> live = service.Submit(SmallRequest());
  // The dead entries were shed to make room; the live request is queued.
  ASSERT_EQ(d0.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ASSERT_EQ(d1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(d0.get().status, RequestStatus::kExpired);
  EXPECT_EQ(d1.get().status, RequestStatus::kExpired);
  EXPECT_EQ(service.QueueDepth(), 1u);
  service.Drain();
  EXPECT_EQ(live.get().status, RequestStatus::kCompleted);
}

TEST_F(ServeTest, BindingBatchCapSeatsHigherPriorityMatesFirst) {
  // max_batch=2 with three same-key requests: the two interactive ones
  // share the first dispatch; the batch-class request rides the next one.
  RenderService service(PausedOptions(/*capacity=*/8, /*max_batch=*/2));
  RenderRequest low = SmallRequest(SceneId::kMic, 0);
  low.priority = RequestPriority::kBatch;
  RenderRequest hi1 = SmallRequest(SceneId::kMic, 1);
  hi1.priority = RequestPriority::kInteractive;
  RenderRequest hi2 = SmallRequest(SceneId::kMic, 2);
  hi2.priority = RequestPriority::kInteractive;
  std::future<RenderResponse> f_low = service.Submit(low);
  std::future<RenderResponse> f_hi1 = service.Submit(hi1);
  std::future<RenderResponse> f_hi2 = service.Submit(hi2);
  service.Drain();

  const RenderResponse r_low = f_low.get();
  const RenderResponse r_hi1 = f_hi1.get();
  const RenderResponse r_hi2 = f_hi2.get();
  ASSERT_EQ(r_low.status, RequestStatus::kCompleted);
  EXPECT_EQ(r_hi1.batch_size, 2u);
  EXPECT_EQ(r_hi2.batch_size, 2u);
  EXPECT_EQ(r_hi1.dispatch_index, r_hi2.dispatch_index);
  EXPECT_EQ(r_low.batch_size, 1u);
  EXPECT_GT(r_low.dispatch_index, r_hi1.dispatch_index);
}

TEST_F(ServeTest, DistinctPipelineBatchesOverlap) {
  // The concurrent-region scheduler end-to-end: two batches with distinct
  // batch keys (different scenes) issued back-to-back must genuinely
  // overlap — the second is issued before the first completes — instead of
  // serialising behind one dispatcher. Both pipelines are pre-built so the
  // issue half is cheap; an explicit 4-worker pool keeps the engine truly
  // asynchronous even on single-core machines.
  ThreadPool pool(4);
  {
    // Warm both pipelines into the shared repository first.
    RenderServiceOptions warm_opts = PausedOptions(8);
    warm_opts.engine.pool = &pool;
    RenderService warm(warm_opts);
    std::future<RenderResponse> a = warm.Submit(SmallRequest(SceneId::kMic));
    std::future<RenderResponse> b = warm.Submit(SmallRequest(SceneId::kLego));
    warm.Drain();
    ASSERT_EQ(a.get().status, RequestStatus::kCompleted);
    ASSERT_EQ(b.get().status, RequestStatus::kCompleted);
  }

  RenderServiceOptions opts = PausedOptions(8);
  opts.engine.pool = &pool;
  opts.max_inflight_batches = 2;
  RenderService service(opts);
  // Larger images than the usual test request: each render takes tens of
  // milliseconds, so the microsecond-scale issue path between the two
  // batches cannot plausibly lose the overlap to scheduler preemption.
  RenderRequest req_a = SmallRequest(SceneId::kMic);
  RenderRequest req_b = SmallRequest(SceneId::kLego);
  req_a.image_width = req_a.image_height = 48;
  req_b.image_width = req_b.image_height = 48;
  std::future<RenderResponse> fa = service.Submit(req_a);
  std::future<RenderResponse> fb = service.Submit(req_b);
  EXPECT_NE(RenderService::BatchKey(req_a), RenderService::BatchKey(req_b));
  service.Drain();

  const RenderResponse ra = fa.get();
  const RenderResponse rb = fb.get();
  ASSERT_EQ(ra.status, RequestStatus::kCompleted);
  ASSERT_EQ(rb.status, RequestStatus::kCompleted);
  // Two distinct keys, two batches, issued in scheduling order.
  EXPECT_EQ(ra.batch_size, 1u);
  EXPECT_EQ(rb.batch_size, 1u);
  EXPECT_EQ(ra.dispatch_index, 0u);
  EXPECT_EQ(rb.dispatch_index, 1u);
  // Overlap is observable in the timings: each batch was issued (queue_ms
  // after a ~simultaneous submit) before the other completed (total_ms).
  EXPECT_LT(rb.queue_ms, ra.total_ms);
  EXPECT_LT(ra.queue_ms, rb.total_ms);
}

TEST_F(ServeTest, SingleInflightSeatSerialisesDistinctKeys) {
  // max_inflight_batches=1 restores the serial dispatcher: the second
  // batch may not issue until the first completed.
  ThreadPool pool(4);
  RenderServiceOptions opts = PausedOptions(8);
  opts.engine.pool = &pool;
  opts.max_inflight_batches = 1;
  RenderService service(opts);
  std::future<RenderResponse> fa = service.Submit(SmallRequest(SceneId::kMic));
  std::future<RenderResponse> fb = service.Submit(SmallRequest(SceneId::kLego));
  service.Drain();
  const RenderResponse ra = fa.get();
  const RenderResponse rb = fb.get();
  ASSERT_EQ(ra.status, RequestStatus::kCompleted);
  ASSERT_EQ(rb.status, RequestStatus::kCompleted);
  // The first-issued batch fully precedes the second's issue.
  EXPECT_LT(ra.dispatch_index, rb.dispatch_index);
  EXPECT_GE(rb.queue_ms, ra.total_ms - ra.queue_ms);
}

TEST_F(ServeTest, EngineFieldsNeverSplitTheBatchKey) {
  // Execution policy is service-owned: two clients asking for the same
  // scene with different (ignored) engine settings must share one batch
  // key and one repository entry.
  RenderRequest a = SmallRequest();
  RenderRequest b = SmallRequest();
  b.config.engine.tile_size = 7;
  b.config.engine.max_threads = 4;
  EXPECT_EQ(RenderService::BatchKey(a), RenderService::BatchKey(b));
}

// ------------------------------------------------------------ tracing ---

TEST_F(ServeTest, FullTracingReconstructsRequestTimelines) {
  // End-to-end contract for the observability layer: under SPNF_TRACE=full
  // every request's lifetime is reconstructible from the drained trace via
  // its flow id — an admit instant, a queue span nested inside the request
  // envelope span, and the envelope tagged with priority class, pipeline
  // key, dispatch mode and outcome.
  obs::DrainTrace();  // discard events any earlier test left behind
  const obs::TraceLevel prev_level =
      obs::SetActiveTraceLevel(obs::TraceLevel::kFull);
  {
    RenderService service(PausedOptions(/*capacity=*/8, /*max_batch=*/8));
    std::future<RenderResponse> f0 =
        service.Submit(SmallRequest(SceneId::kMic, 0));
    std::future<RenderResponse> f1 =
        service.Submit(SmallRequest(SceneId::kMic, 1));
    service.Drain();
    ASSERT_EQ(f0.get().status, RequestStatus::kCompleted);
    ASSERT_EQ(f1.get().status, RequestStatus::kCompleted);
  }  // service destruction joins every emitting thread before the drain
  obs::SetActiveTraceLevel(prev_level);

  const obs::TraceSnapshot snap = obs::DrainTrace();
  for (const u64 flow : {u64{1}, u64{2}}) {  // per-service ids start at 1
    const std::vector<obs::TraceEvent> events = snap.EventsForFlow(flow);
    const obs::TraceEvent* admit = nullptr;
    const obs::TraceEvent* queue = nullptr;
    const obs::TraceEvent* request = nullptr;
    for (const obs::TraceEvent& e : events) {
      const std::string_view name = e.name;
      if (name == "admit") admit = &e;
      if (name == "queue") queue = &e;
      if (name == "request") request = &e;
    }
    ASSERT_NE(admit, nullptr) << "flow " << flow;
    ASSERT_NE(queue, nullptr) << "flow " << flow;
    ASSERT_NE(request, nullptr) << "flow " << flow;
    EXPECT_TRUE(admit->IsInstant());
    // The queue wait nests inside the request envelope.
    EXPECT_GE(queue->start_ns, request->start_ns);
    EXPECT_LE(queue->end_ns, request->end_ns);
    // The envelope carries every tag the timeline viewer filters on.
    const auto tag = [&](const char* key) {
      return std::string_view(obs::InternedString(
          static_cast<u32>(request->ArgValue(key))));
    };
    EXPECT_EQ(tag("priority"), "normal");
    EXPECT_NE(tag("key"), "?");  // the interned pipeline key
    EXPECT_TRUE(tag("mode") == "locked" || tag("mode") == "lockfree");
    EXPECT_EQ(tag("outcome"), "completed");
  }
  // Same key, one coalesced batch: the issue and complete spans ride the
  // batch leader's flow (the first submission).
  bool has_issue = false, has_complete = false;
  for (const obs::TraceEvent& e : snap.EventsForFlow(1)) {
    const std::string_view name = e.name;
    has_issue |= name == "issue";
    has_complete |= name == "complete";
  }
  EXPECT_TRUE(has_issue);
  EXPECT_TRUE(has_complete);
}

// ----------------------------------------------------- load generation --

TEST(LoadGenerator, SameSeedSameTrace) {
  LoadGeneratorOptions opts;
  opts.request_count = 64;
  opts.deadline_fraction = 0.4;
  const std::vector<TimedRequest> a = LoadGenerator(opts).GenerateTrace();
  const std::vector<TimedRequest> b = LoadGenerator(opts).GenerateTrace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms) << i;
    EXPECT_EQ(a[i].request.config.scene_id, b[i].request.config.scene_id);
    EXPECT_EQ(a[i].request.view, b[i].request.view);
    EXPECT_EQ(a[i].request.priority, b[i].request.priority);
    EXPECT_EQ(a[i].request.deadline_ms, b[i].request.deadline_ms);
  }
}

TEST(LoadGenerator, DifferentSeedDifferentTrace) {
  LoadGeneratorOptions opts;
  opts.request_count = 64;
  const std::vector<TimedRequest> a = LoadGenerator(opts).GenerateTrace();
  opts.seed += 1;
  const std::vector<TimedRequest> b = LoadGenerator(opts).GenerateTrace();
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].arrival_ms != b[i].arrival_ms ||
              a[i].request.config.scene_id != b[i].request.config.scene_id ||
              a[i].request.view != b[i].request.view;
  }
  EXPECT_TRUE(differs);
}

TEST(LoadGenerator, HotScenesDominateTheMix) {
  LoadGeneratorOptions opts;
  opts.request_count = 400;
  opts.scenes = {SceneId::kLego, SceneId::kChair, SceneId::kMic,
                 SceneId::kShip};
  opts.hot_scene_count = 1;
  opts.hot_fraction = 0.8;
  std::size_t hot_hits = 0;
  for (const TimedRequest& t : LoadGenerator(opts).GenerateTrace()) {
    if (t.request.config.scene_id == SceneId::kLego) ++hot_hits;
  }
  // 80% +- a wide tolerance for 400 draws.
  EXPECT_GT(hot_hits, 400 * 0.7);
  EXPECT_LT(hot_hits, 400 * 0.9);
}

TEST_F(ServeTest, TraceRendersIdenticallyAcrossWorkerCounts) {
  // The serving determinism guarantee end-to-end: the same generated trace
  // produces bit-identical response images whether the service renders on
  // 1, 2 or 8 workers (the engine's tile scheduling never leaks into
  // pixels, and the trace itself is worker-independent by construction).
  LoadGeneratorOptions load;
  load.request_count = 6;
  load.arrival_rate_rps = 10000.0;  // effectively a burst
  load.scenes = {SceneId::kMic};
  load.hot_scene_count = 1;
  load.base = SmallRequest();
  const std::vector<TimedRequest> trace = LoadGenerator(load).GenerateTrace();

  std::vector<std::vector<Image>> images;
  for (unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    RenderServiceOptions opts = PausedOptions(/*capacity=*/16);
    opts.engine.pool = &pool;
    opts.start_paused = false;
    RenderService service(opts);
    ReplayResult replay = ReplayTrace(service, trace);
    service.Drain();
    std::vector<Image> run;
    for (RenderResponse& r : replay.responses) {
      ASSERT_EQ(r.status, RequestStatus::kCompleted);
      run.push_back(std::move(r.image));
    }
    images.push_back(std::move(run));
  }
  for (std::size_t w = 1; w < images.size(); ++w) {
    ASSERT_EQ(images[w].size(), images[0].size());
    for (std::size_t i = 0; i < images[w].size(); ++i) {
      ASSERT_EQ(images[w][i].Pixels(), images[0][i].Pixels())
          << "request " << i << " differs at worker set " << w;
    }
  }
}

// -------------------------------------------------- dispatch modes ------

TEST_F(ServeTest, DispatchModesRenderIdenticallyAcrossWorkerCounts) {
  // The lock-free path's differential oracle, end-to-end: the same trace
  // replayed under SPNF_DISPATCH=locked and =lockfree must produce
  // bit-identical images and identical outcome counters at every worker
  // count. Batch composition under live replay is timing-dependent (and
  // covered deterministically below); pixels and outcomes are not allowed
  // to be.
  LoadGeneratorOptions load;
  load.request_count = 6;
  load.arrival_rate_rps = 10000.0;  // effectively a burst
  load.scenes = {SceneId::kMic};
  load.hot_scene_count = 1;
  load.base = SmallRequest();
  const std::vector<TimedRequest> trace = LoadGenerator(load).GenerateTrace();

  for (unsigned workers : {1u, 2u, 8u}) {
    std::vector<std::vector<Image>> by_mode;
    std::vector<ServiceStatsSnapshot> stats_by_mode;
    for (dispatch::Mode mode :
         {dispatch::Mode::kLocked, dispatch::Mode::kLockFree}) {
      ScopedDispatchMode scoped(mode);
      ThreadPool pool(workers);
      RenderServiceOptions opts = PausedOptions(/*capacity=*/16);
      opts.engine.pool = &pool;
      opts.start_paused = false;
      RenderService service(opts);
      ReplayResult replay = ReplayTrace(service, trace);
      service.Drain();
      std::vector<Image> run;
      for (RenderResponse& r : replay.responses) {
        ASSERT_EQ(r.status, RequestStatus::kCompleted)
            << dispatch::ModeName(mode) << " workers " << workers;
        run.push_back(std::move(r.image));
      }
      by_mode.push_back(std::move(run));
      stats_by_mode.push_back(service.Stats());
    }
    ASSERT_EQ(by_mode[0].size(), by_mode[1].size());
    for (std::size_t i = 0; i < by_mode[0].size(); ++i) {
      ASSERT_EQ(by_mode[1][i].Pixels(), by_mode[0][i].Pixels())
          << "request " << i << " differs between modes at " << workers
          << " workers";
    }
    EXPECT_EQ(stats_by_mode[1].submitted, stats_by_mode[0].submitted);
    EXPECT_EQ(stats_by_mode[1].completed, stats_by_mode[0].completed);
    EXPECT_EQ(stats_by_mode[1].rejected, stats_by_mode[0].rejected);
    EXPECT_EQ(stats_by_mode[1].expired, stats_by_mode[0].expired);
  }
}

TEST_F(ServeTest, DispatchModesAgreeOnSchedulingOfAStagedBacklog) {
  // Deterministic half of the differential contract: a fully staged backlog
  // (paused service) drains through identical scheduling decisions in both
  // modes — per-request status, batch membership, dispatch order and every
  // outcome counter, including admission-control eviction and rejection.
  struct Outcome {
    RequestStatus status;
    std::size_t batch_size;
    u64 dispatch_index;
  };
  std::vector<std::vector<Outcome>> outcomes_by_mode;
  std::vector<ServiceStatsSnapshot> stats_by_mode;
  for (dispatch::Mode mode :
       {dispatch::Mode::kLocked, dispatch::Mode::kLockFree}) {
    ScopedDispatchMode scoped(mode);
    RenderService service(PausedOptions(/*capacity=*/4, /*max_batch=*/2));
    const std::vector<RequestPriority> priorities = {
        RequestPriority::kNormal,      RequestPriority::kBatch,
        RequestPriority::kInteractive, RequestPriority::kNormal,
        RequestPriority::kInteractive,  // full queue: evicts the batch entry
        RequestPriority::kBatch,        // full queue, lowest rank: rejected
    };
    std::vector<std::future<RenderResponse>> futures;
    for (std::size_t i = 0; i < priorities.size(); ++i) {
      RenderRequest r = SmallRequest(SceneId::kMic, static_cast<int>(i));
      r.priority = priorities[i];
      futures.push_back(service.Submit(r));
    }
    service.Drain();
    std::vector<Outcome> outcomes;
    for (auto& f : futures) {
      const RenderResponse r = f.get();
      outcomes.push_back({r.status, r.batch_size, r.dispatch_index});
    }
    outcomes_by_mode.push_back(std::move(outcomes));
    stats_by_mode.push_back(service.Stats());
  }
  ASSERT_EQ(outcomes_by_mode[0].size(), outcomes_by_mode[1].size());
  for (std::size_t i = 0; i < outcomes_by_mode[0].size(); ++i) {
    EXPECT_EQ(outcomes_by_mode[1][i].status, outcomes_by_mode[0][i].status)
        << "request " << i;
    EXPECT_EQ(outcomes_by_mode[1][i].batch_size,
              outcomes_by_mode[0][i].batch_size)
        << "request " << i;
    EXPECT_EQ(outcomes_by_mode[1][i].dispatch_index,
              outcomes_by_mode[0][i].dispatch_index)
        << "request " << i;
  }
  EXPECT_EQ(stats_by_mode[1].submitted, stats_by_mode[0].submitted);
  EXPECT_EQ(stats_by_mode[1].completed, stats_by_mode[0].completed);
  EXPECT_EQ(stats_by_mode[1].rejected, stats_by_mode[0].rejected);
  EXPECT_EQ(stats_by_mode[1].expired, stats_by_mode[0].expired);
  EXPECT_EQ(stats_by_mode[1].batches, stats_by_mode[0].batches);
  EXPECT_EQ(stats_by_mode[1].queue_peak, stats_by_mode[0].queue_peak);
  // Sanity on the scenario itself (not just cross-mode agreement): the two
  // interactive requests share the first batch, the eviction and rejection
  // landed on the batch-class entries.
  const std::vector<Outcome>& o = outcomes_by_mode[0];
  EXPECT_EQ(o[1].status, RequestStatus::kRejected);  // evicted by request 4
  EXPECT_EQ(o[5].status, RequestStatus::kRejected);  // shed at admission
  EXPECT_EQ(o[2].status, RequestStatus::kCompleted);
  EXPECT_EQ(o[4].status, RequestStatus::kCompleted);
  EXPECT_EQ(o[2].dispatch_index, o[4].dispatch_index);
  EXPECT_EQ(o[2].batch_size, 2u);
}

TEST_F(ServeTest, DeepExpiredBacklogDoesNotStallAdmission) {
  // The incremental expiry sweep: admission into a queue full of dead work
  // frees a bounded chunk (enough for a seat), never walks the entire
  // backlog with the lock held. The rest of the corpses are reaped by the
  // dispatcher's own pass.
  constexpr std::size_t kCapacity = 256;
  ManualClock clock;
  RenderServiceOptions manual_opts = PausedOptions(kCapacity);
  manual_opts.clock = &clock;
  RenderService service(manual_opts);
  RenderRequest doomed = SmallRequest();
  doomed.deadline_ms = 0.0001;
  std::vector<std::future<RenderResponse>> dead;
  for (std::size_t i = 0; i < kCapacity; ++i) {
    dead.push_back(service.Submit(doomed));
  }
  clock.AdvanceMs(5.0);

  std::future<RenderResponse> live =
      service.Submit(SmallRequest(SceneId::kMic, 1));
  // Seated, not shed: the future is still pending on the paused service.
  EXPECT_NE(live.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  // The sweep was incremental: at least one seat freed, but nowhere near
  // the whole backlog examined.
  const std::size_t depth = service.QueueDepth();
  EXPECT_LE(depth, kCapacity);
  EXPECT_GE(depth, kCapacity - 64);

  service.Drain();
  EXPECT_EQ(live.get().status, RequestStatus::kCompleted);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.expired, kCapacity);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected, 0u);
  for (auto& f : dead) {
    EXPECT_EQ(f.get().status, RequestStatus::kExpired);
  }
}

// ------------------------------------------------------------- stats ----

TEST(LatencySample, NearestRankPercentilesAreExact) {
  LatencySample s;
  for (int v = 1; v <= 100; ++v) s.Record(static_cast<double>(v));
  EXPECT_EQ(s.Percentile(50), 50.0);
  EXPECT_EQ(s.Percentile(95), 95.0);
  EXPECT_EQ(s.Percentile(99), 99.0);
  EXPECT_EQ(s.Percentile(100), 100.0);
  EXPECT_EQ(s.Percentile(0), 1.0);
  EXPECT_EQ(s.MaxMs(), 100.0);
  EXPECT_EQ(s.MeanMs(), 50.5);
}

TEST(LatencySample, MergeEqualsUnionExactly) {
  LatencySample a, b, all;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.NextDouble() * 100.0;
    (i % 2 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  ASSERT_EQ(a.Count(), all.Count());
  for (double p : {1.0, 50.0, 95.0, 99.0, 99.9}) {
    EXPECT_EQ(a.Percentile(p), all.Percentile(p)) << "p" << p;
  }
}

TEST(LatencySample, RetainedIsBoundedPastCap) {
  LatencySample s(/*cap=*/128);
  Rng rng(11);
  double max_recorded = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextDouble() * 100.0;
    max_recorded = std::max(max_recorded, v);
    s.Record(v);
  }
  EXPECT_EQ(s.Count(), 5000u);
  EXPECT_EQ(s.Retained(), 128u);
  EXPECT_EQ(s.Cap(), 128u);
  // Percentiles come from the retained subset: plausible, bounded values.
  EXPECT_GE(s.Percentile(50), 0.0);
  EXPECT_LE(s.Percentile(50), s.Percentile(99));
  EXPECT_LE(s.MaxMs(), max_recorded);
}

TEST(LatencySample, MergeAtCapMatchesSingleReservoir) {
  // The KMV merge-stability property past the cap: two sharded reservoirs
  // merged retain exactly the samples one reservoir fed the concatenated
  // stream would — sharding a latency stream across collectors loses
  // nothing.
  LatencySample a(/*cap=*/128), b(/*cap=*/128), all(/*cap=*/128);
  Rng rng(13);
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.NextDouble() * 50.0;
    (i % 3 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_EQ(a.Retained(), all.Retained());
  for (double p : {5.0, 50.0, 95.0, 99.0}) {
    EXPECT_EQ(a.Percentile(p), all.Percentile(p)) << "p" << p;
  }
  EXPECT_EQ(a.MaxMs(), all.MaxMs());
}

TEST(LatencySample, EmptySampleIsZero) {
  const LatencySample s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Percentile(99), 0.0);
  EXPECT_EQ(s.MeanMs(), 0.0);
}

}  // namespace
}  // namespace spnerf
