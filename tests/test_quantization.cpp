#include "grid/quantization.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {
namespace {

TEST(Int8Quantizer, RoundTripWithinHalfScale) {
  const Int8Quantizer q(0.1f);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const float x = rng.Uniform(-12.7f, 12.7f);
    const float back = q.Dequantize(q.Quantize(x));
    EXPECT_LE(std::fabs(back - x), q.MaxRoundingError() * 1.0001f) << x;
  }
}

TEST(Int8Quantizer, SaturatesAtRange) {
  const Int8Quantizer q(1.0f);
  EXPECT_EQ(q.Quantize(1000.f), 127);
  EXPECT_EQ(q.Quantize(-1000.f), -127);
  EXPECT_EQ(q.Quantize(127.4f), 127);
}

TEST(Int8Quantizer, ZeroMapsToZero) {
  const Int8Quantizer q(0.5f);
  EXPECT_EQ(q.Quantize(0.0f), 0);
  EXPECT_EQ(q.Dequantize(0), 0.0f);
}

TEST(Int8Quantizer, SymmetricAroundZero) {
  const Int8Quantizer q(0.25f);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const float x = rng.Uniform(0.f, 30.f);
    EXPECT_EQ(q.Quantize(-x), -q.Quantize(x)) << x;
  }
}

TEST(Int8Quantizer, FitAbsMaxCoversExtremes) {
  const std::vector<float> vals{-4.5f, 1.0f, 3.2f, 0.0f};
  const Int8Quantizer q = Int8Quantizer::FitAbsMax(vals);
  EXPECT_FLOAT_EQ(q.Scale(), 4.5f / 127.0f);
  // The extreme value must quantize without saturating away from +-127.
  EXPECT_EQ(q.Quantize(-4.5f), -127);
}

TEST(Int8Quantizer, FitAbsMaxAllZerosUsesUnitScale) {
  const std::vector<float> zeros(10, 0.0f);
  const Int8Quantizer q = Int8Quantizer::FitAbsMax(zeros);
  EXPECT_GT(q.Scale(), 0.0f);
  EXPECT_EQ(q.Quantize(0.0f), 0);
}

TEST(Int8Quantizer, InvalidScaleThrows) {
  EXPECT_THROW(Int8Quantizer(0.0f), SpnerfError);
  EXPECT_THROW(Int8Quantizer(-1.0f), SpnerfError);
  EXPECT_THROW(Int8Quantizer(std::numeric_limits<float>::infinity()),
               SpnerfError);
}

TEST(Int8Quantizer, SpanRoundTrip) {
  const Int8Quantizer q(0.05f);
  Rng rng(3);
  std::vector<float> in(256);
  for (auto& v : in) v = rng.Uniform(-6.f, 6.f);
  std::vector<i8> enc(in.size());
  std::vector<float> dec(in.size());
  q.QuantizeSpan(in, enc);
  q.DequantizeSpan(enc, dec);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_LE(std::fabs(dec[i] - in[i]), q.MaxRoundingError() * 1.0001f);
  }
}

TEST(Int8Quantizer, SpanSizeMismatchThrows) {
  const Int8Quantizer q(1.0f);
  std::vector<float> in(4);
  std::vector<i8> out(3);
  EXPECT_THROW(q.QuantizeSpan(in, out), SpnerfError);
}

TEST(Int8Quantizer, RoundsToNearest) {
  const Int8Quantizer q(1.0f);
  EXPECT_EQ(q.Quantize(1.4f), 1);
  EXPECT_EQ(q.Quantize(1.6f), 2);
  EXPECT_EQ(q.Quantize(-1.6f), -2);
  // Ties round to even (nearbyint with default rounding mode).
  EXPECT_EQ(q.Quantize(2.5f), 2);
  EXPECT_EQ(q.Quantize(3.5f), 4);
}

/// Property: quantisation error is monotone in scale.
class QuantScaleSweep : public ::testing::TestWithParam<float> {};

TEST_P(QuantScaleSweep, ErrorBoundedByHalfScale) {
  const float scale = GetParam();
  const Int8Quantizer q(scale);
  Rng rng(4);
  double max_err = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.Uniform(-scale * 120.f, scale * 120.f);
    max_err = std::max(max_err,
                       static_cast<double>(std::fabs(q.Dequantize(q.Quantize(x)) - x)));
  }
  EXPECT_LE(max_err, scale * 0.5 * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Scales, QuantScaleSweep,
                         ::testing::Values(0.01f, 0.1f, 0.5f, 1.0f, 3.0f));

}  // namespace
}  // namespace spnerf
