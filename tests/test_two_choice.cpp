#include "encoding/two_choice.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "encoding/spnerf_codec.hpp"
#include "render/field_source.hpp"

namespace spnerf {
namespace {

DenseGrid MakeGrid(int n = 24, double occupancy = 0.06, u64 seed = 1) {
  DenseGrid g({n, n, n});
  Rng rng(seed);
  const auto want = static_cast<u64>(occupancy * static_cast<double>(g.VoxelCount()));
  u64 placed = 0;
  while (placed < want) {
    const Vec3i p{rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1),
                  rng.UniformInt(0, n - 1)};
    if (g.IsNonZero(g.Dims().Flatten(p))) continue;
    VoxelData v;
    v.density = rng.Uniform(1.f, 80.f);
    for (int c = 0; c < kColorFeatureDim; ++c) v.features[c] = rng.Uniform(-1.f, 1.f);
    g.SetVoxel(p, v);
    ++placed;
  }
  return g;
}

VqrfModel MakeModel() {
  VqrfBuildParams p;
  p.codebook_size = 64;
  p.kmeans_iterations = 3;
  return VqrfModel::Build(MakeGrid(), p);
}

TEST(TwoChoiceTable, InsertAndTagCheckedLookup) {
  TwoChoiceTable t(1024);
  EXPECT_TRUE(t.Insert({3, 4, 5}, 77, -9));
  const TwoChoiceEntry* e = t.Lookup({3, 4, 5});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->payload, 77u);
  EXPECT_EQ(e->density_q, -9);
  EXPECT_EQ(e->tag, PointTag({3, 4, 5}));
}

TEST(TwoChoiceTable, AbsentPointUsuallyReturnsNull) {
  TwoChoiceTable t(1024);
  t.Insert({3, 4, 5}, 77, -9);
  // A different point sharing neither tag+slot pair returns null. Scan many
  // points and require a large null majority (tag collisions are ~1/64).
  Rng rng(2);
  int nulls = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const Vec3i p{rng.UniformInt(0, 63), rng.UniformInt(0, 63),
                  rng.UniformInt(0, 63)};
    if (p == Vec3i{3, 4, 5}) continue;
    nulls += (t.Lookup(p) == nullptr);
  }
  EXPECT_GT(nulls, n * 9 / 10);
}

TEST(TwoChoiceTable, SecondChoiceRescuesCollision) {
  // Find two points with the same h1 but different h2 and insert both:
  // both must remain retrievable.
  const u32 size = 64;
  TwoChoiceTable t(size);
  const Vec3i a{1, 2, 3};
  Vec3i b{0, 0, 0};
  bool found = false;
  for (int x = 0; x < 64 && !found; ++x) {
    for (int y = 0; y < 64 && !found; ++y) {
      for (int z = 0; z < 64 && !found; ++z) {
        const Vec3i q{x, y, z};
        if (q == a) continue;
        if (SpatialHash(q, size) == SpatialHash(a, size) &&
            SpatialHash2(q, size) != SpatialHash2(a, size) &&
            PointTag(q) != PointTag(a)) {
          b = q;
          found = true;
        }
      }
    }
  }
  ASSERT_TRUE(found);
  EXPECT_TRUE(t.Insert(a, 1, 0));
  EXPECT_TRUE(t.Insert(b, 2, 0));  // displaced to its h2 slot
  ASSERT_NE(t.Lookup(a), nullptr);
  ASSERT_NE(t.Lookup(b), nullptr);
  EXPECT_EQ(t.Lookup(a)->payload, 1u);
  EXPECT_EQ(t.Lookup(b)->payload, 2u);
  EXPECT_EQ(t.BuildStats().placed_second, 1u);
}

TEST(TwoChoiceTable, SizeBitsIncludesTag) {
  const TwoChoiceTable t(1000);
  EXPECT_EQ(t.SizeBits(), 1000u * 32);  // 18 + 8 + 6
}

TEST(TwoChoiceCodec, ExactAtLowLoad) {
  const VqrfModel vqrf = MakeModel();
  const TwoChoiceCodec codec = TwoChoiceCodec::Preprocess(vqrf, 8, 1u << 20);
  EXPECT_EQ(codec.AggregateBuildStats().dropped, 0u);
  // Tag collisions with an empty-slot partner cannot happen at this load;
  // every record decodes exactly.
  for (const VoxelRecord& rec : vqrf.Records()) {
    const VoxelData want = vqrf.DecodeRecord(rec);
    const VoxelData got = codec.Decode(vqrf.Dims().Unflatten(rec.index));
    EXPECT_EQ(got.density, want.density);
  }
  EXPECT_EQ(codec.ErrorRate(), 0.0);
}

TEST(TwoChoiceCodec, ZeroVoxelsMasked) {
  const VqrfModel vqrf = MakeModel();
  const TwoChoiceCodec codec = TwoChoiceCodec::Preprocess(vqrf, 8, 4096);
  const GridDims& dims = vqrf.Dims();
  for (VoxelIndex i = 0; i < dims.VoxelCount(); i += 13) {
    if (vqrf.OccupancyBitmap().Test(i)) continue;
    EXPECT_EQ(codec.Decode(dims.Unflatten(i)).density, 0.0f);
  }
}

TEST(TwoChoiceCodec, FewerErrorsThanSingleProbeAtEqualMemory) {
  // The headline property of the extension: at equal table memory (entries
  // scaled by 26/32), two-choice yields fewer wrong decodes than the
  // baseline's silent aliases under heavy load.
  const VqrfModel vqrf = MakeModel();
  const u32 baseline_entries = 1024;
  const u32 two_choice_entries = baseline_entries * 26 / 32;

  SpNeRFParams sp;
  sp.subgrid_count = 8;
  sp.table_size = baseline_entries;
  const SpNeRFModel baseline = SpNeRFModel::Preprocess(vqrf, sp);
  const TwoChoiceCodec ext =
      TwoChoiceCodec::Preprocess(vqrf, 8, two_choice_entries);

  EXPECT_LT(ext.ErrorRate(), baseline.NonZeroAliasRate());
  // And the memory accounting confirms parity (within rounding).
  EXPECT_NEAR(static_cast<double>(ext.HashTableBytes()),
              static_cast<double>(baseline.HashTableBytes()), 512.0);
}

TEST(TwoChoiceCodec, DropsAreExplicitNotSilent) {
  // Under extreme load, errors manifest as zero decodes (drops), not wrong
  // payloads: the decode of a dropped record is exactly zero.
  const VqrfModel vqrf = MakeModel();
  const TwoChoiceCodec codec = TwoChoiceCodec::Preprocess(vqrf, 4, 64);
  EXPECT_GT(codec.DropRate(), 0.1);
  u64 zero_decodes = 0, wrong_payloads = 0;
  for (const VoxelRecord& rec : vqrf.Records()) {
    const VoxelData got = codec.Decode(vqrf.Dims().Unflatten(rec.index));
    const VoxelData want = vqrf.DecodeRecord(rec);
    if (got.density == 0.0f && got.features[0] == 0.0f) {
      ++zero_decodes;
    } else if (got.features[0] != want.features[0]) {
      ++wrong_payloads;
    }
  }
  EXPECT_GT(zero_decodes, wrong_payloads);  // error mass is explicit
}

TEST(TwoChoiceCodec, RendersThroughGenericFieldSource) {
  const VqrfModel vqrf = MakeModel();
  const TwoChoiceCodec codec = TwoChoiceCodec::Preprocess(vqrf, 8, 1u << 18);
  const CodecFieldSource<TwoChoiceCodec> src(codec);
  const FieldSample s = src.Sample({0.5f, 0.5f, 0.5f});
  EXPECT_GE(s.density, 0.0f);  // smoke: plugs into the renderer interface
}

TEST(TwoChoiceCodec, TotalBytesAccounting) {
  const VqrfModel vqrf = MakeModel();
  const TwoChoiceCodec codec = TwoChoiceCodec::Preprocess(vqrf, 8, 4096);
  EXPECT_EQ(codec.HashTableBytes(), (8ull * 4096 * 32 + 7) / 8);
  EXPECT_EQ(codec.TotalBytes(),
            codec.HashTableBytes() + vqrf.OccupancyBitmap().SizeBytes() +
                vqrf.CodebookInt8().size() + vqrf.KeptFeatures().size() + 8);
}

}  // namespace
}  // namespace spnerf
