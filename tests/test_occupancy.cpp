#include "grid/occupancy.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace spnerf {
namespace {

BitGrid MakeFineWithPoint(GridDims dims, Vec3i p) {
  BitGrid b(dims);
  b.Set(p, true);
  return b;
}

TEST(CoarseOccupancy, ReducesDims) {
  const BitGrid fine(GridDims{32, 32, 32});
  const CoarseOccupancy c = CoarseOccupancy::Build(fine, 8);
  EXPECT_EQ(c.CoarseDims(), (GridDims{4, 4, 4}));
  EXPECT_EQ(c.Factor(), 8);
}

TEST(CoarseOccupancy, NonDivisibleDimsRoundUp) {
  const BitGrid fine(GridDims{33, 30, 17});
  const CoarseOccupancy c = CoarseOccupancy::Build(fine, 8);
  EXPECT_EQ(c.CoarseDims(), (GridDims{5, 4, 3}));
}

TEST(CoarseOccupancy, EmptyFineGivesEmptyCoarse) {
  const BitGrid fine(GridDims{16, 16, 16});
  const CoarseOccupancy c = CoarseOccupancy::Build(fine, 4);
  EXPECT_EQ(c.Bits().CountSet(), 0u);
}

TEST(CoarseOccupancy, SinglePointDilatesToNeighborhood) {
  // One fine bit in the middle: its coarse cell plus all 26 neighbours are
  // set (3x3x3 = 27).
  const CoarseOccupancy c = CoarseOccupancy::Build(
      MakeFineWithPoint({32, 32, 32}, {17, 17, 17}), 8);
  EXPECT_EQ(c.Bits().CountSet(), 27u);
  EXPECT_TRUE(c.Bits().Test(Vec3i{2, 2, 2}));
  EXPECT_TRUE(c.Bits().Test(Vec3i{1, 1, 1}));
  EXPECT_TRUE(c.Bits().Test(Vec3i{3, 3, 3}));
  EXPECT_FALSE(c.Bits().Test(Vec3i{0, 0, 0}));
}

TEST(CoarseOccupancy, CornerPointClampsDilation) {
  const CoarseOccupancy c =
      CoarseOccupancy::Build(MakeFineWithPoint({32, 32, 32}, {0, 0, 0}), 8);
  EXPECT_EQ(c.Bits().CountSet(), 8u);  // 2x2x2 corner neighbourhood
}

TEST(CoarseOccupancy, ConservativeOverFineBits) {
  // Safety property: every set fine bit must have its coarse cell set.
  BitGrid fine(GridDims{24, 24, 24});
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    fine.Set(Vec3i{rng.UniformInt(0, 23), rng.UniformInt(0, 23),
                   rng.UniformInt(0, 23)},
             true);
  }
  const CoarseOccupancy c = CoarseOccupancy::Build(fine, 4);
  const GridDims fd = fine.Dims();
  for (VoxelIndex i = 0; i < fd.VoxelCount(); ++i) {
    if (!fine.Test(i)) continue;
    const Vec3i p = fd.Unflatten(i);
    EXPECT_TRUE(c.Bits().Test(Vec3i{p.x / 4, p.y / 4, p.z / 4}));
  }
}

TEST(CoarseOccupancy, WorldQueries) {
  const CoarseOccupancy c = CoarseOccupancy::Build(
      MakeFineWithPoint({32, 32, 32}, {16, 16, 16}), 8);
  EXPECT_TRUE(c.OccupiedAtWorld({0.5f, 0.5f, 0.5f}));
  EXPECT_FALSE(c.OccupiedAtWorld({0.05f, 0.05f, 0.05f}));
  EXPECT_FALSE(c.OccupiedAtWorld({1.5f, 0.5f, 0.5f}));  // out of range
  EXPECT_FALSE(c.OccupiedAtWorld({-0.1f, 0.5f, 0.5f}));
}

TEST(CoarseOccupancy, CellBoundsPartitionUnitCube) {
  const BitGrid fine(GridDims{16, 16, 16});
  const CoarseOccupancy c = CoarseOccupancy::Build(fine, 4);  // 4^3 cells
  const Aabb first = c.CellBounds({0, 0, 0});
  const Aabb last = c.CellBounds({3, 3, 3});
  EXPECT_EQ(first.lo, (Vec3f{0.f, 0.f, 0.f}));
  EXPECT_FLOAT_EQ(first.hi.x, 0.25f);
  EXPECT_FLOAT_EQ(last.lo.x, 0.75f);
  EXPECT_EQ(last.hi, (Vec3f{1.f, 1.f, 1.f}));
}

TEST(CoarseOccupancy, CellOfWorldClampsToGrid) {
  const BitGrid fine(GridDims{16, 16, 16});
  const CoarseOccupancy c = CoarseOccupancy::Build(fine, 4);
  EXPECT_EQ(c.CellOfWorld({0.999f, 0.999f, 0.999f}), (Vec3i{3, 3, 3}));
  EXPECT_EQ(c.CellOfWorld({1.0f, 1.0f, 1.0f}), (Vec3i{3, 3, 3}));
  EXPECT_EQ(c.CellOfWorld({0.0f, 0.0f, 0.0f}), (Vec3i{0, 0, 0}));
}

TEST(CoarseOccupancy, FactorOneStillDilates) {
  const CoarseOccupancy c =
      CoarseOccupancy::Build(MakeFineWithPoint({8, 8, 8}, {4, 4, 4}), 1);
  EXPECT_EQ(c.CoarseDims(), (GridDims{8, 8, 8}));
  EXPECT_EQ(c.Bits().CountSet(), 27u);
}

}  // namespace
}  // namespace spnerf
