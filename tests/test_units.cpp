#include "common/units.hpp"

#include <gtest/gtest.h>

namespace spnerf {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(1024), "1.00 KB");
  EXPECT_EQ(FormatBytes(1536), "1.50 KB");
  EXPECT_EQ(FormatBytes(1024ull * 1024), "1.00 MB");
  EXPECT_EQ(FormatBytes(21ull * 1024 * 1024 * 1024), "21.00 GB");
}

TEST(Units, FormatCount) {
  EXPECT_EQ(FormatCount(999), "999.00 ");
  EXPECT_EQ(FormatCount(1500), "1.50 K");
  EXPECT_EQ(FormatCount(2.5e6), "2.50 M");
  EXPECT_EQ(FormatCount(1e9), "1.00 G");
}

TEST(Units, FormatWatts) {
  EXPECT_EQ(FormatWatts(3.0), "3.00 W");
  EXPECT_EQ(FormatWatts(0.25), "250.00 mW");
  EXPECT_EQ(FormatWatts(25e-6), "25.00 uW");
}

TEST(Units, FormatJoules) {
  EXPECT_EQ(FormatJoules(2.0), "2.00 J");
  EXPECT_EQ(FormatJoules(1e-3), "1.00 mJ");
  EXPECT_EQ(FormatJoules(5e-7), "500.00 nJ");
  EXPECT_EQ(FormatJoules(2e-12), "2.00 pJ");
}

TEST(Units, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.1234), "12.34%");
  EXPECT_EQ(FormatPercent(1.0), "100.00%");
  EXPECT_EQ(FormatPercent(0.0201), "2.01%");
}

TEST(Units, Constants) {
  EXPECT_DOUBLE_EQ(kKiB, 1024.0);
  EXPECT_DOUBLE_EQ(kMiB, 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(kGiB, 1024.0 * kMiB);
}

}  // namespace
}  // namespace spnerf
