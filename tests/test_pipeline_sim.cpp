#include "sim/pipeline_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/accelerator.hpp"

namespace spnerf {
namespace {

FrameWorkload TypicalWorkload() {
  FrameWorkload w;
  w.scene = "synthetic";
  w.rays = 640000;
  w.samples = 12'000'000;
  w.coarse_skips = 9'000'000;
  w.mlp_evals = 2'000'000;
  w.table_bytes = 64ull * 32768 * 26 / 8;
  w.bitmap_bytes = 512000;
  w.codebook_bytes = 4096 * 12;
  w.true_grid_bytes = 300000;
  w.weight_bytes = 43779;
  w.subgrid_count = 64;
  w.bitmap_zero_frac = 0.55;
  w.codebook_frac = 0.36;
  w.true_grid_frac = 0.09;
  return w;
}

TEST(PipelineSim, RunsTypicalFrame) {
  const PipelineSim sim;
  const PipelineSimResult r = sim.Run(TypicalWorkload());
  EXPECT_GT(r.frame_cycles, 0u);
  EXPECT_GT(r.sgpu.tokens, 0u);
  EXPECT_GT(r.mlp.tokens, 0u);
  EXPECT_GT(r.dma_bytes, 0u);
}

TEST(PipelineSim, TokenCountsMatchWorkload) {
  const PipelineSim sim;
  const FrameWorkload w = TypicalWorkload();
  const PipelineSimResult r = sim.Run(w);
  // One token per 64 samples; one MLP batch per 64 evals (+- rounding).
  EXPECT_EQ(r.sgpu.tokens, (w.samples + 63) / 64);
  EXPECT_NEAR(static_cast<double>(r.mlp.tokens),
              static_cast<double>(w.mlp_evals) / 64.0,
              2.0);
}

TEST(PipelineSim, AgreesWithAnalyticModel) {
  // The dataflow simulation and the steady-state composition must land on
  // the same frame time within a pipelining tolerance — the repo's analogue
  // of the paper's "simulator verified against RTL".
  const FrameWorkload w = TypicalWorkload();
  const PipelineSimResult fine = PipelineSim().Run(w);
  const SimResult coarse = AcceleratorSim().SimulateFrame(w);
  const double ratio = static_cast<double>(fine.frame_cycles) /
                       static_cast<double>(coarse.frame_cycles);
  EXPECT_GT(ratio, 0.80) << fine.frame_cycles << " vs " << coarse.frame_cycles;
  EXPECT_LT(ratio, 1.20) << fine.frame_cycles << " vs " << coarse.frame_cycles;
}

TEST(PipelineSim, MlpBusyWhenEvalHeavy) {
  FrameWorkload w = TypicalWorkload();
  w.mlp_evals = 4'000'000;
  const PipelineSimResult r = PipelineSim().Run(w);
  // The MLP is the bottleneck: it is busy most of the frame.
  EXPECT_GT(r.mlp.BusyFraction(r.frame_cycles), 0.85);
  EXPECT_LT(r.sgpu.BusyFraction(r.frame_cycles), 0.7);
}

TEST(PipelineSim, SgpuBusyWhenSampleHeavy) {
  FrameWorkload w = TypicalWorkload();
  w.samples = 60'000'000;
  w.mlp_evals = 200'000;
  const PipelineSimResult r = PipelineSim().Run(w);
  EXPECT_GT(r.sgpu.BusyFraction(r.frame_cycles), 0.85);
}

TEST(PipelineSim, TableStreamingOverlapsCompute) {
  // The last subgrid's table arrives long before the frame ends: DMA is
  // hidden behind compute at the design point.
  const PipelineSimResult r = PipelineSim().Run(TypicalWorkload());
  EXPECT_LT(r.last_table_ready, r.frame_cycles / 2);
}

TEST(PipelineSim, FirstTokenWaitsForFirstTable) {
  const PipelineSimResult r = PipelineSim().Run(TypicalWorkload());
  EXPECT_GT(r.sgpu.first_start, 0u);  // cannot start before the DMA lands
}

TEST(PipelineSim, SlowDramDelaysStart) {
  PipelineSimConfig slow;
  slow.dram = Lpddr4_1600();
  const PipelineSimResult a = PipelineSim().Run(TypicalWorkload());
  const PipelineSimResult b = PipelineSim(slow).Run(TypicalWorkload());
  EXPECT_GT(b.sgpu.first_start, a.sgpu.first_start);
  EXPECT_GT(b.last_table_ready, a.last_table_ready);
}

TEST(PipelineSim, MoreLanesShiftBottleneckToMlp) {
  FrameWorkload w = TypicalWorkload();
  w.samples = 40'000'000;  // SGPU-leaning
  PipelineSimConfig narrow;
  narrow.sgpu_lanes = 8;
  PipelineSimConfig wide;
  wide.sgpu_lanes = 64;
  const PipelineSimResult rn = PipelineSim(narrow).Run(w);
  const PipelineSimResult rw = PipelineSim(wide).Run(w);
  EXPECT_LT(rw.frame_cycles, rn.frame_cycles);
}

TEST(PipelineSim, DeterministicAcrossRuns) {
  const PipelineSim sim;
  const FrameWorkload w = TypicalWorkload();
  EXPECT_EQ(sim.Run(w).frame_cycles, sim.Run(w).frame_cycles);
}

TEST(PipelineSim, BusyNeverExceedsFrame) {
  const PipelineSimResult r = PipelineSim().Run(TypicalWorkload());
  EXPECT_LE(r.sgpu.busy_cycles, r.frame_cycles);
  EXPECT_LE(r.mlp.busy_cycles, r.frame_cycles);
  EXPECT_LE(r.sgpu.BusyFraction(r.frame_cycles), 1.0);
}

TEST(PipelineSim, EmptyWorkloadThrows) {
  const FrameWorkload empty;
  EXPECT_THROW((void)PipelineSim().Run(empty), SpnerfError);
}

TEST(PipelineSim, InvalidConfigThrows) {
  PipelineSimConfig bad;
  bad.sgpu_lanes = 0;
  EXPECT_THROW(PipelineSim{bad}, SpnerfError);
  bad = PipelineSimConfig{};
  bad.fifo_depth = 0;
  EXPECT_THROW(PipelineSim{bad}, SpnerfError);
}

class FifoDepthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FifoDepthSweep, DeeperFifosNeverSlower) {
  PipelineSimConfig shallow;
  shallow.fifo_depth = GetParam();
  PipelineSimConfig deep;
  deep.fifo_depth = GetParam() * 4;
  const FrameWorkload w = TypicalWorkload();
  EXPECT_GE(PipelineSim(shallow).Run(w).frame_cycles,
            PipelineSim(deep).Run(w).frame_cycles);
}

INSTANTIATE_TEST_SUITE_P(Depths, FifoDepthSweep, ::testing::Values(1u, 2u, 8u));

}  // namespace
}  // namespace spnerf
