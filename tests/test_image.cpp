#include "common/image.hpp"

#include <cmath>
#include <cstdio>
#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spnerf {
namespace {

TEST(Image, ConstructionAndFill) {
  Image img(4, 3, {0.5f, 0.25f, 1.0f});
  EXPECT_EQ(img.Width(), 4);
  EXPECT_EQ(img.Height(), 3);
  EXPECT_EQ(img.At(0, 0), (Vec3f{0.5f, 0.25f, 1.0f}));
  EXPECT_EQ(img.At(3, 2), (Vec3f{0.5f, 0.25f, 1.0f}));
}

TEST(Image, AtBoundsChecked) {
  Image img(2, 2);
  EXPECT_THROW((void)img.At(2, 0), SpnerfError);
  EXPECT_THROW((void)img.At(0, -1), SpnerfError);
}

TEST(Image, InvalidDimensionsThrow) {
  EXPECT_THROW(Image(0, 5), SpnerfError);
  EXPECT_THROW(Image(5, -1), SpnerfError);
}

TEST(Image, MseIdenticalIsZero) {
  Image a(8, 8, {0.3f, 0.6f, 0.9f});
  EXPECT_DOUBLE_EQ(Mse(a, a), 0.0);
  EXPECT_TRUE(std::isinf(Psnr(a, a)));
}

TEST(Image, MseKnownValue) {
  Image a(2, 1, {0.f, 0.f, 0.f});
  Image b(2, 1, {1.f, 1.f, 1.f});
  EXPECT_DOUBLE_EQ(Mse(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Psnr(a, b), 0.0);  // 10*log10(1/1)
}

TEST(Image, PsnrKnownValue) {
  Image a(10, 10, {0.5f, 0.5f, 0.5f});
  Image b(10, 10, {0.6f, 0.5f, 0.5f});
  // MSE = (0.1^2)/3; PSNR = 10*log10(3/0.01).
  EXPECT_NEAR(Psnr(a, b), 10.0 * std::log10(3.0 / 0.01), 1e-3);
}

TEST(Image, SizeMismatchThrows) {
  Image a(2, 2), b(3, 2);
  EXPECT_THROW(Mse(a, b), SpnerfError);
}

TEST(Image, PsnrMonotoneInError) {
  Image ref(8, 8, {0.5f, 0.5f, 0.5f});
  Image small_err(8, 8, {0.52f, 0.5f, 0.5f});
  Image big_err(8, 8, {0.7f, 0.5f, 0.5f});
  EXPECT_GT(Psnr(ref, small_err), Psnr(ref, big_err));
}

TEST(Image, WritePpmProducesValidFile) {
  Image img(3, 2);
  img.At(0, 0) = {1.f, 0.f, 0.f};
  img.At(2, 1) = {0.f, 0.f, 2.f};  // clamps to 1
  const std::string path = ::testing::TempDir() + "/spnerf_test.ppm";
  img.WritePpm(path);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  int w = 0, h = 0, maxv = 0;
  ASSERT_EQ(std::fscanf(f, "%2s %d %d %d", magic, &w, &h, &maxv), 4);
  EXPECT_STREQ(magic, "P6");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxv, 255);
  std::fgetc(f);  // single whitespace after header
  unsigned char pix[18];
  ASSERT_EQ(std::fread(pix, 1, 18, f), 18u);
  EXPECT_EQ(pix[0], 255);  // red pixel
  EXPECT_EQ(pix[1], 0);
  EXPECT_EQ(pix[17], 255);  // clamped blue
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spnerf
