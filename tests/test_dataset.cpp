#include "scene/dataset.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spnerf {
namespace {

DatasetParams SmallParams() {
  DatasetParams p;
  p.resolution_override = 48;
  p.vqrf.codebook_size = 128;
  p.vqrf.kmeans_iterations = 3;
  p.vqrf.max_vq_train_samples = 3000;
  return p;
}

TEST(Voxelize, VertexPositionsCornerAligned) {
  const GridDims dims{9, 9, 9};
  EXPECT_EQ(VoxelVertexPosition(dims, {0, 0, 0}), (Vec3f{0.f, 0.f, 0.f}));
  EXPECT_EQ(VoxelVertexPosition(dims, {8, 8, 8}), (Vec3f{1.f, 1.f, 1.f}));
  EXPECT_EQ(VoxelVertexPosition(dims, {4, 4, 4}), (Vec3f{0.5f, 0.5f, 0.5f}));
}

TEST(Voxelize, GridMatchesAnalyticFieldAtVertices) {
  const Scene scene = BuildScene(SceneId::kMaterials);
  const DenseGrid grid = VoxelizeScene(scene, {64});
  const GridDims& dims = grid.Dims();
  // Every voxel must equal the field sampled at its vertex position.
  for (VoxelIndex i = 0; i < dims.VoxelCount(); i += 97) {
    const Vec3i v = dims.Unflatten(i);
    const Vec3f p = VoxelVertexPosition(dims, v);
    EXPECT_EQ(grid.Density(i), scene.Density(p)) << v;
    const FeatureVec want =
        scene.Density(p) > 0.f ? scene.ColorFeature(p) : FeatureVec{};
    const float* f = grid.Features(i);
    for (int c = 0; c < kColorFeatureDim; ++c) {
      EXPECT_EQ(f[c], want[static_cast<std::size_t>(c)]);
    }
  }
}

TEST(Voxelize, HigherResolutionKeepsFractionStable) {
  const Scene scene = BuildScene(SceneId::kChair);
  const double f48 = VoxelizeScene(scene, {48}).NonZeroFraction();
  const double f96 = VoxelizeScene(scene, {96}).NonZeroFraction();
  // Occupied fraction measures volume: refinement changes it only mildly.
  EXPECT_NEAR(f48, f96, 0.35 * f96);
}

TEST(Voxelize, InvalidResolutionThrows) {
  const Scene scene = BuildScene(SceneId::kMic);
  EXPECT_THROW(VoxelizeScene(scene, {1}), SpnerfError);
}

TEST(BuildDataset, ProducesConsistentBundle) {
  const SceneDataset ds = BuildDataset(SceneId::kDrums, SmallParams());
  EXPECT_EQ(ds.id, SceneId::kDrums);
  EXPECT_EQ(ds.full_grid.Dims(), (GridDims{48, 48, 48}));
  EXPECT_EQ(ds.vqrf->Dims(), ds.full_grid.Dims());
  EXPECT_GT(ds.vqrf->NonZeroCount(), 0u);
  EXPECT_LE(ds.vqrf->NonZeroCount(), ds.full_grid.CountNonZero());
}

TEST(BuildDataset, DefaultResolutionUsedWhenNoOverride) {
  DatasetParams p = SmallParams();
  p.resolution_override = 0;
  p.vqrf.codebook_size = 64;
  // Use the smallest-resolution scene to keep this quick.
  const SceneDataset ds = BuildDataset(SceneId::kFicus, p);
  const int expect = SceneDefaultResolution(SceneId::kFicus);
  EXPECT_EQ(ds.full_grid.Dims().nx, expect);
}

TEST(BuildDataset, DeterministicAcrossCalls) {
  const SceneDataset a = BuildDataset(SceneId::kMic, SmallParams());
  const SceneDataset b = BuildDataset(SceneId::kMic, SmallParams());
  EXPECT_EQ(a.full_grid.CountNonZero(), b.full_grid.CountNonZero());
  ASSERT_EQ(a.vqrf->Records().size(), b.vqrf->Records().size());
  for (std::size_t i = 0; i < a.vqrf->Records().size(); i += 53) {
    EXPECT_EQ(a.vqrf->Records()[i].index, b.vqrf->Records()[i].index);
    EXPECT_EQ(a.vqrf->Records()[i].payload_id, b.vqrf->Records()[i].payload_id);
  }
}

TEST(Voxelize, DeterministicAcrossWorkerCounts) {
  // The parallel scan must produce identical grid bytes at any worker
  // count: slabs write disjoint index ranges, so no count can reorder or
  // tear a write (mirrors the render-engine determinism guarantee).
  const Scene scene = BuildScene(SceneId::kLego);
  VoxelizeParams vp;
  vp.resolution = 56;
  vp.max_threads = 1;
  const DenseGrid reference = VoxelizeScene(scene, vp);
  for (unsigned workers : {2u, 8u}) {
    vp.max_threads = workers;
    const DenseGrid grid = VoxelizeScene(scene, vp);
    ASSERT_EQ(grid.Dims(), reference.Dims()) << workers << " workers";
    EXPECT_EQ(grid.DensityRaw(), reference.DensityRaw())
        << workers << " workers";
    EXPECT_EQ(grid.FeaturesRaw(), reference.FeaturesRaw())
        << workers << " workers";
  }
}

TEST(BuildDataset, DeterministicAcrossWorkerCounts) {
  DatasetParams p = SmallParams();
  p.max_threads = 1;
  const SceneDataset reference = BuildDataset(SceneId::kMic, p);
  for (unsigned workers : {2u, 8u}) {
    p.max_threads = workers;
    const SceneDataset ds = BuildDataset(SceneId::kMic, p);
    EXPECT_EQ(ds.full_grid.DensityRaw(), reference.full_grid.DensityRaw())
        << workers << " workers";
    EXPECT_EQ(ds.full_grid.FeaturesRaw(), reference.full_grid.FeaturesRaw())
        << workers << " workers";
    // The VQRF compression consumes the identical grid deterministically.
    ASSERT_EQ(ds.vqrf->Records().size(), reference.vqrf->Records().size());
    EXPECT_EQ(ds.vqrf->KeptCount(), reference.vqrf->KeptCount());
  }
}

TEST(BuildDataset, KeptCountWithin18BitBudget) {
  for (SceneId id : AllScenes()) {
    const SceneDataset ds = BuildDataset(id, SmallParams());
    EXPECT_LE(ds.vqrf->KeptCount(),
              kUnifiedIndexSpace - static_cast<u64>(ds.vqrf->GetCodebook().Size()))
        << SceneName(id);
  }
}

}  // namespace
}  // namespace spnerf
