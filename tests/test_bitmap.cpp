#include "grid/bitmap.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {
namespace {

TEST(BitGrid, StartsClear) {
  BitGrid b({8, 8, 8});
  EXPECT_EQ(b.CountSet(), 0u);
  for (VoxelIndex i = 0; i < 512; ++i) EXPECT_FALSE(b.Test(i));
}

TEST(BitGrid, SetAndClear) {
  BitGrid b({4, 4, 4});
  b.Set(Vec3i{1, 2, 3}, true);
  EXPECT_TRUE(b.Test(Vec3i{1, 2, 3}));
  EXPECT_EQ(b.CountSet(), 1u);
  b.Set(Vec3i{1, 2, 3}, false);
  EXPECT_FALSE(b.Test(Vec3i{1, 2, 3}));
  EXPECT_EQ(b.CountSet(), 0u);
}

TEST(BitGrid, TestOutOfBoundsIsFalse) {
  BitGrid b({4, 4, 4});
  EXPECT_FALSE(b.Test(Vec3i{4, 0, 0}));
  EXPECT_FALSE(b.Test(Vec3i{-1, 0, 0}));
}

TEST(BitGrid, SetOutOfRangeIndexThrows) {
  BitGrid b({2, 2, 2});
  EXPECT_THROW(b.Set(VoxelIndex{8}, true), SpnerfError);
}

TEST(BitGrid, WordBoundaryBits) {
  // Bits 63 and 64 live in adjacent words; both must behave.
  BitGrid b({2, 8, 8});  // 128 voxels
  b.Set(VoxelIndex{63}, true);
  b.Set(VoxelIndex{64}, true);
  EXPECT_TRUE(b.Test(VoxelIndex{63}));
  EXPECT_TRUE(b.Test(VoxelIndex{64}));
  EXPECT_FALSE(b.Test(VoxelIndex{62}));
  EXPECT_FALSE(b.Test(VoxelIndex{65}));
  EXPECT_EQ(b.CountSet(), 2u);
}

TEST(BitGrid, SizeBytesIsOneBitPerVoxel) {
  EXPECT_EQ(BitGrid({8, 8, 8}).SizeBytes(), 64u);          // 512 bits
  EXPECT_EQ(BitGrid({160, 160, 160}).SizeBytes(), 512000u);  // paper scale
  EXPECT_EQ(BitGrid({3, 3, 3}).SizeBytes(), 4u);  // 27 bits -> 4 bytes
}

TEST(BitGrid, FromGridMatchesNonZeroSet) {
  DenseGrid g({6, 6, 6});
  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    VoxelData v;
    v.density = rng.NextFloat() + 0.1f;
    g.SetVoxel({rng.UniformInt(0, 5), rng.UniformInt(0, 5), rng.UniformInt(0, 5)},
               v);
  }
  const BitGrid b = BitGrid::FromGrid(g);
  EXPECT_EQ(b.CountSet(), g.CountNonZero());
  const u64 total = g.VoxelCount();
  for (VoxelIndex i = 0; i < total; ++i) {
    EXPECT_EQ(b.Test(i), g.IsNonZero(i)) << "voxel " << i;
  }
}

TEST(BitGrid, RandomSetMatchesReference) {
  const GridDims d{10, 10, 10};
  BitGrid b(d);
  std::vector<bool> ref(d.VoxelCount(), false);
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    const auto idx = rng.NextBelow(d.VoxelCount());
    const bool v = rng.NextFloat() < 0.5f;
    b.Set(idx, v);
    ref[idx] = v;
  }
  u64 count = 0;
  for (VoxelIndex i = 0; i < d.VoxelCount(); ++i) {
    EXPECT_EQ(b.Test(i), ref[i]);
    count += ref[i];
  }
  EXPECT_EQ(b.CountSet(), count);
}

}  // namespace
}  // namespace spnerf
