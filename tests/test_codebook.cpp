#include "grid/codebook.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace spnerf {
namespace {

FeatureVec MakeVec(float base) {
  FeatureVec f{};
  for (int c = 0; c < kColorFeatureDim; ++c)
    f[c] = base + 0.01f * static_cast<float>(c);
  return f;
}

TEST(Codebook, EmptyThrows) {
  EXPECT_THROW(Codebook(std::vector<FeatureVec>{}), SpnerfError);
}

TEST(Codebook, NearestFindsExactMatch) {
  std::vector<FeatureVec> rows{MakeVec(0.f), MakeVec(1.f), MakeVec(2.f)};
  const Codebook book(rows);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(book.Nearest(rows[static_cast<std::size_t>(k)]), k);
    EXPECT_FLOAT_EQ(
        book.QuantizationError(rows[static_cast<std::size_t>(k)]), 0.0f);
  }
}

TEST(Codebook, NearestPicksClosest) {
  const Codebook book({MakeVec(0.f), MakeVec(10.f)});
  EXPECT_EQ(book.Nearest(MakeVec(1.f)), 0);
  EXPECT_EQ(book.Nearest(MakeVec(9.f)), 1);
  EXPECT_EQ(book.Nearest(MakeVec(4.9f)), 0);
  EXPECT_EQ(book.Nearest(MakeVec(5.1f)), 1);
}

TEST(Codebook, RowOutOfRangeThrows) {
  const Codebook book({MakeVec(0.f)});
  EXPECT_THROW((void)book.Row(-1), SpnerfError);
  EXPECT_THROW((void)book.Row(1), SpnerfError);
}

TEST(Codebook, SizeBytesIsInt8PerChannel) {
  const Codebook book({MakeVec(0.f), MakeVec(1.f)});
  EXPECT_EQ(book.SizeBytes(), 2u * kColorFeatureDim);
}

TEST(CodebookTrain, RecoverWellSeparatedClusters) {
  // Three tight clusters; k-means with k=3 must place one centroid in each.
  Rng rng(5);
  std::vector<FeatureVec> samples;
  const float centers[3] = {0.f, 5.f, 10.f};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 200; ++i) {
      FeatureVec f = MakeVec(centers[c]);
      for (int d = 0; d < kColorFeatureDim; ++d) f[d] += rng.Uniform(-0.05f, 0.05f);
      samples.push_back(f);
    }
  }
  const Codebook book = Codebook::Train(samples, 3, 20, rng);
  // Every sample must be within cluster noise of its centroid.
  for (const auto& s : samples) {
    EXPECT_LT(book.QuantizationError(s), 0.1f);
  }
  // And the three centroids must be distinct clusters.
  std::set<int> assigned;
  assigned.insert(book.Nearest(MakeVec(0.f)));
  assigned.insert(book.Nearest(MakeVec(5.f)));
  assigned.insert(book.Nearest(MakeVec(10.f)));
  EXPECT_EQ(assigned.size(), 3u);
}

TEST(CodebookTrain, Deterministic) {
  Rng rng1(9), rng2(9);
  std::vector<FeatureVec> samples;
  Rng gen(1);
  for (int i = 0; i < 300; ++i) samples.push_back(MakeVec(gen.Uniform(0.f, 10.f)));
  const Codebook a = Codebook::Train(samples, 16, 8, rng1);
  const Codebook b = Codebook::Train(samples, 16, 8, rng2);
  ASSERT_EQ(a.Size(), b.Size());
  for (int k = 0; k < a.Size(); ++k) {
    for (int c = 0; c < kColorFeatureDim; ++c) {
      EXPECT_EQ(a.Row(k)[static_cast<std::size_t>(c)],
                b.Row(k)[static_cast<std::size_t>(c)]);
    }
  }
}

TEST(CodebookTrain, MoreCentroidsNeverWorse) {
  Rng gen(2);
  std::vector<FeatureVec> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(MakeVec(gen.Uniform(0.f, 20.f)));
  auto total_err = [&](int k) {
    Rng rng(3);
    const Codebook book = Codebook::Train(samples, k, 15, rng);
    double err = 0.0;
    for (const auto& s : samples) err += book.QuantizationError(s);
    return err;
  };
  const double e4 = total_err(4);
  const double e32 = total_err(32);
  EXPECT_LT(e32, e4);
}

TEST(CodebookTrain, HandlesFewerSamplesThanCentroids) {
  Rng rng(4);
  std::vector<FeatureVec> samples{MakeVec(0.f), MakeVec(1.f)};
  const Codebook book = Codebook::Train(samples, 8, 5, rng);
  EXPECT_EQ(book.Size(), 8);
  EXPECT_LT(book.QuantizationError(MakeVec(0.f)), 1e-6f);
  EXPECT_LT(book.QuantizationError(MakeVec(1.f)), 1e-6f);
}

TEST(CodebookTrain, IdenticalSamplesConverge) {
  Rng rng(6);
  std::vector<FeatureVec> samples(50, MakeVec(3.f));
  const Codebook book = Codebook::Train(samples, 4, 5, rng);
  EXPECT_LT(book.QuantizationError(MakeVec(3.f)), 1e-10f);
}

TEST(CodebookTrain, ZeroSamplesThrows) {
  Rng rng(7);
  EXPECT_THROW(Codebook::Train({}, 4, 5, rng), SpnerfError);
}

TEST(CodebookTrain, InvalidSizeThrows) {
  Rng rng(8);
  std::vector<FeatureVec> samples{MakeVec(0.f)};
  EXPECT_THROW(Codebook::Train(samples, 0, 5, rng), SpnerfError);
}

}  // namespace
}  // namespace spnerf
