#include "encoding/subgrid.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spnerf {
namespace {

TEST(SubgridPartition, WidthIsCeilDivision) {
  EXPECT_EQ(SubgridPartition({160, 160, 160}, 64).Width(), 3);  // ceil(160/64)
  EXPECT_EQ(SubgridPartition({160, 160, 160}, 32).Width(), 5);
  EXPECT_EQ(SubgridPartition({64, 64, 64}, 64).Width(), 1);
  EXPECT_EQ(SubgridPartition({100, 64, 64}, 7).Width(), 15);
}

TEST(SubgridPartition, PaperFormula) {
  // S_k = { p | floor(x/w) = k }
  const SubgridPartition part({160, 160, 160}, 64);
  const int w = part.Width();
  for (int x = 0; x < 160; ++x) {
    const int expected = std::min(x / w, 63);
    EXPECT_EQ(part.SubgridOfX(x), expected) << "x=" << x;
  }
}

TEST(SubgridPartition, AllXValuesCovered) {
  // Every x maps to a valid subgrid id for awkward dims.
  for (int nx : {7, 33, 100, 159, 161}) {
    const SubgridPartition part({nx, 8, 8}, 16);
    for (int x = 0; x < nx; ++x) {
      const int k = part.SubgridOfX(x);
      EXPECT_GE(k, 0);
      EXPECT_LT(k, 16);
    }
  }
}

TEST(SubgridPartition, XRangesTileTheAxis) {
  const SubgridPartition part({160, 4, 4}, 64);
  int expected_first = 0;
  for (int k = 0; k < 64; ++k) {
    const auto [first, last] = part.XRange(k);
    if (first > 159) break;  // trailing empty subgrids
    EXPECT_EQ(first, expected_first);
    EXPECT_GE(last, first - 1);
    expected_first = last + 1;
  }
}

TEST(SubgridPartition, SubgridOfUsesXOnly) {
  const SubgridPartition part({64, 64, 64}, 8);
  EXPECT_EQ(part.SubgridOf({10, 0, 0}), part.SubgridOf({10, 63, 63}));
  EXPECT_NE(part.SubgridOf({0, 0, 0}), part.SubgridOf({63, 0, 0}));
}

TEST(SubgridPartition, BucketPreservesAllIndices) {
  const GridDims dims{32, 16, 16};
  const SubgridPartition part(dims, 8);
  std::vector<VoxelIndex> indices;
  for (VoxelIndex i = 0; i < dims.VoxelCount(); i += 7) indices.push_back(i);
  const auto buckets = part.Bucket(indices);
  EXPECT_EQ(buckets.size(), 8u);
  u64 total = 0;
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    for (VoxelIndex idx : buckets[k]) {
      EXPECT_EQ(part.SubgridOf(dims.Unflatten(idx)), static_cast<int>(k));
      ++total;
    }
  }
  EXPECT_EQ(total, indices.size());
}

TEST(SubgridPartition, BucketOrderPreserving) {
  const GridDims dims{16, 4, 4};
  const SubgridPartition part(dims, 4);
  std::vector<VoxelIndex> indices;
  for (VoxelIndex i = 0; i < dims.VoxelCount(); ++i) indices.push_back(i);
  const auto buckets = part.Bucket(indices);
  for (const auto& bucket : buckets) {
    for (std::size_t i = 1; i < bucket.size(); ++i) {
      EXPECT_LT(bucket[i - 1], bucket[i]);
    }
  }
}

TEST(SubgridPartition, MoreSubgridsThanXCells) {
  // K > nx: trailing subgrids stay empty, leading map 1:1.
  const SubgridPartition part({4, 4, 4}, 16);
  EXPECT_EQ(part.Width(), 1);
  for (int x = 0; x < 4; ++x) EXPECT_EQ(part.SubgridOfX(x), x);
}

TEST(SubgridPartition, InvalidArgsThrow) {
  EXPECT_THROW(SubgridPartition({16, 16, 16}, 0), SpnerfError);
  const SubgridPartition part({16, 16, 16}, 4);
  EXPECT_THROW((void)part.SubgridOfX(-1), SpnerfError);
  EXPECT_THROW((void)part.SubgridOfX(16), SpnerfError);
  EXPECT_THROW((void)part.XRange(4), SpnerfError);
}

class SubgridCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubgridCountSweep, EveryVoxelInExactlyOneSubgrid) {
  const int k = GetParam();
  const GridDims dims{160, 8, 8};
  const SubgridPartition part(dims, k);
  std::vector<u64> counts(static_cast<std::size_t>(k), 0);
  for (int x = 0; x < dims.nx; ++x) {
    ++counts[static_cast<std::size_t>(part.SubgridOfX(x))];
  }
  u64 total = 0;
  for (u64 c : counts) total += c;
  EXPECT_EQ(total, static_cast<u64>(dims.nx));
}

INSTANTIATE_TEST_SUITE_P(PaperRange, SubgridCountSweep,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace spnerf
