#include "scene/sdf.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace spnerf {
namespace {

constexpr float kPi = 3.14159265358979f;

TEST(Sdf, SphereDistances) {
  const SdfShape s = SphereSdf{{0.5f, 0.5f, 0.5f}, 0.2f};
  EXPECT_FLOAT_EQ(SdfEval(s, {0.5f, 0.5f, 0.5f}), -0.2f);  // center
  EXPECT_NEAR(SdfEval(s, {0.7f, 0.5f, 0.5f}), 0.0f, 1e-6f);  // surface
  EXPECT_NEAR(SdfEval(s, {0.9f, 0.5f, 0.5f}), 0.2f, 1e-6f);  // outside
}

TEST(Sdf, BoxDistances) {
  const SdfShape b = BoxSdf{{0.f, 0.f, 0.f}, {1.f, 2.f, 3.f}, 0.f};
  EXPECT_FLOAT_EQ(SdfEval(b, {0.f, 0.f, 0.f}), -1.f);  // nearest face is x
  EXPECT_NEAR(SdfEval(b, {2.f, 0.f, 0.f}), 1.f, 1e-6f);
  EXPECT_NEAR(SdfEval(b, {1.f, 2.f, 3.f}), 0.f, 1e-6f);  // corner
  // Diagonal outside distance is Euclidean.
  EXPECT_NEAR(SdfEval(b, {2.f, 3.f, 3.f}), std::sqrt(2.f), 1e-5f);
}

TEST(Sdf, RoundedBoxShrinksDistance) {
  const SdfShape sharp = BoxSdf{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}, 0.0f};
  const SdfShape round = BoxSdf{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}, 0.1f};
  EXPECT_FLOAT_EQ(SdfEval(round, {3.f, 0.f, 0.f}),
                  SdfEval(sharp, {3.f, 0.f, 0.f}) - 0.1f);
}

TEST(Sdf, CapsuleDistances) {
  const SdfShape c = CapsuleSdf{{0.f, 0.f, 0.f}, {1.f, 0.f, 0.f}, 0.25f};
  EXPECT_FLOAT_EQ(SdfEval(c, {0.5f, 0.f, 0.f}), -0.25f);  // on the axis
  EXPECT_NEAR(SdfEval(c, {0.5f, 0.25f, 0.f}), 0.f, 1e-6f);
  EXPECT_NEAR(SdfEval(c, {1.5f, 0.f, 0.f}), 0.25f, 1e-6f);  // beyond endpoint
  // Degenerate capsule (a == b) behaves like a sphere.
  const SdfShape pt = CapsuleSdf{{0.f, 0.f, 0.f}, {0.f, 0.f, 0.f}, 0.5f};
  EXPECT_NEAR(SdfEval(pt, {1.f, 0.f, 0.f}), 0.5f, 1e-6f);
}

TEST(Sdf, CylinderDistances) {
  const SdfShape c = CylinderSdf{{0.f, 0.f, 0.f}, 1.f, 0.5f};
  EXPECT_FLOAT_EQ(SdfEval(c, {0.f, 0.f, 0.f}), -0.5f);  // cap is nearest
  EXPECT_NEAR(SdfEval(c, {2.f, 0.f, 0.f}), 1.f, 1e-6f);  // radial
  EXPECT_NEAR(SdfEval(c, {0.f, 1.5f, 0.f}), 1.f, 1e-6f);  // axial
  // Corner region: Euclidean to the rim.
  EXPECT_NEAR(SdfEval(c, {2.f, 1.5f, 0.f}), std::sqrt(2.f), 1e-5f);
}

TEST(Sdf, TorusDistances) {
  const SdfShape t = TorusSdf{{0.f, 0.f, 0.f}, 1.f, 0.2f};
  EXPECT_NEAR(SdfEval(t, {1.f, 0.f, 0.f}), -0.2f, 1e-6f);  // tube center
  EXPECT_NEAR(SdfEval(t, {1.2f, 0.f, 0.f}), 0.f, 1e-6f);
  EXPECT_NEAR(SdfEval(t, {0.f, 0.f, 0.f}), 0.8f, 1e-6f);  // hole center
}

TEST(Sdf, EllipsoidSignCorrect) {
  const SdfShape e = EllipsoidSdf{{0.f, 0.f, 0.f}, {2.f, 1.f, 0.5f}};
  EXPECT_LT(SdfEval(e, {0.f, 0.f, 0.f}), 0.f);
  EXPECT_LT(SdfEval(e, {1.9f, 0.f, 0.f}), 0.f);
  EXPECT_GT(SdfEval(e, {2.1f, 0.f, 0.f}), 0.f);
  EXPECT_NEAR(SdfEval(e, {2.f, 0.f, 0.f}), 0.f, 1e-5f);
  EXPECT_NEAR(SdfEval(e, {0.f, 1.f, 0.f}), 0.f, 1e-5f);
}

TEST(Sdf, BoundsContainSurface) {
  Rng rng(1);
  const std::vector<SdfShape> shapes{
      SphereSdf{{0.3f, 0.4f, 0.5f}, 0.2f},
      BoxSdf{{0.5f, 0.5f, 0.5f}, {0.1f, 0.2f, 0.3f}, 0.02f},
      CapsuleSdf{{0.2f, 0.2f, 0.2f}, {0.8f, 0.7f, 0.6f}, 0.1f},
      CylinderSdf{{0.5f, 0.5f, 0.5f}, 0.3f, 0.2f},
      TorusSdf{{0.5f, 0.5f, 0.5f}, 0.3f, 0.05f},
      EllipsoidSdf{{0.5f, 0.5f, 0.5f}, {0.3f, 0.1f, 0.2f}},
  };
  for (const auto& shape : shapes) {
    const Aabb box = SdfBounds(shape);
    // Any point with negative distance must lie inside the bounds.
    for (int i = 0; i < 3000; ++i) {
      const Vec3f p{rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
      if (SdfEval(shape, p) < 0.f) {
        EXPECT_TRUE(box.Contains(p)) << p;
      }
    }
  }
}

TEST(Sdf, VolumeMatchesMonteCarlo) {
  // Volume formulas vs Monte-Carlo integration over the bounding box.
  Rng rng(2);
  const std::vector<SdfShape> shapes{
      SphereSdf{{0.5f, 0.5f, 0.5f}, 0.25f},
      BoxSdf{{0.5f, 0.5f, 0.5f}, {0.2f, 0.1f, 0.15f}, 0.0f},
      CapsuleSdf{{0.3f, 0.5f, 0.5f}, {0.7f, 0.5f, 0.5f}, 0.1f},
      CylinderSdf{{0.5f, 0.5f, 0.5f}, 0.2f, 0.15f},
      TorusSdf{{0.5f, 0.5f, 0.5f}, 0.25f, 0.08f},
      EllipsoidSdf{{0.5f, 0.5f, 0.5f}, {0.25f, 0.15f, 0.1f}},
  };
  for (const auto& shape : shapes) {
    const Aabb box = SdfBounds(shape);
    const Vec3f ext = box.Extent();
    const double box_vol =
        static_cast<double>(ext.x) * ext.y * ext.z;
    const int n = 200000;
    int inside = 0;
    for (int i = 0; i < n; ++i) {
      const Vec3f p{box.lo.x + ext.x * rng.NextFloat(),
                    box.lo.y + ext.y * rng.NextFloat(),
                    box.lo.z + ext.z * rng.NextFloat()};
      inside += (SdfEval(shape, p) < 0.f);
    }
    const double mc = box_vol * inside / n;
    EXPECT_NEAR(SdfVolume(shape), mc, std::max(0.15 * mc, 2e-4))
        << "shape index " << (&shape - shapes.data());
  }
}

TEST(Sdf, TorusVolumeFormula) {
  const SdfShape t = TorusSdf{{0.f, 0.f, 0.f}, 0.3f, 0.1f};
  EXPECT_NEAR(SdfVolume(t), 2.0 * kPi * kPi * 0.3 * 0.01, 1e-6);
}

TEST(Sdf, LipschitzProperty) {
  // |d(p) - d(q)| <= |p - q| for true SDFs (ellipsoid is approximate, so it
  // is excluded).
  Rng rng(3);
  const std::vector<SdfShape> shapes{
      SphereSdf{{0.5f, 0.5f, 0.5f}, 0.2f},
      BoxSdf{{0.5f, 0.5f, 0.5f}, {0.2f, 0.1f, 0.3f}, 0.0f},
      CapsuleSdf{{0.2f, 0.3f, 0.4f}, {0.8f, 0.6f, 0.5f}, 0.15f},
      CylinderSdf{{0.5f, 0.5f, 0.5f}, 0.25f, 0.2f},
      TorusSdf{{0.5f, 0.5f, 0.5f}, 0.3f, 0.08f},
  };
  for (const auto& shape : shapes) {
    for (int i = 0; i < 2000; ++i) {
      const Vec3f p{rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
      const Vec3f q{rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
      const float dd = std::fabs(SdfEval(shape, p) - SdfEval(shape, q));
      EXPECT_LE(dd, (p - q).Norm() * 1.0001f);
    }
  }
}

}  // namespace
}  // namespace spnerf
