// Scene field semantics: density/feature behaviour near surfaces, the
// properties the sparsity and rendering experiments rest on.
#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "scene/scene_zoo.hpp"

namespace spnerf {
namespace {

TEST(SceneFields, DensityRampsOverTheBand) {
  // Density is 0 at/outside the surface, peak at band depth, constant inside.
  std::vector<ScenePrimitive> prims{
      {SphereSdf{{0.5f, 0.5f, 0.5f}, 0.2f}, {0.5f, 0.5f, 0.5f}, 0.f}};
  SceneFieldParams params;
  params.density_peak = 100.0f;
  params.density_band = 0.02f;
  const Scene scene("test", prims, params);

  EXPECT_EQ(scene.Density({0.5f, 0.5f, 0.71f}), 0.0f);  // just outside
  EXPECT_NEAR(scene.Density({0.5f, 0.5f, 0.69f}), 100.0f * 0.5f, 1.0f);
  EXPECT_FLOAT_EQ(scene.Density({0.5f, 0.5f, 0.5f}), 100.0f);  // deep inside
  // Monotone through the band.
  float prev = -1.0f;
  for (float depth = 0.0f; depth < 0.03f; depth += 0.005f) {
    const float d = scene.Density({0.5f, 0.5f, 0.7f - depth});
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(SceneFields, SignedDistanceReportsNearestPrimitive) {
  std::vector<ScenePrimitive> prims{
      {SphereSdf{{0.3f, 0.5f, 0.5f}, 0.1f}, {1.f, 0.f, 0.f}, 0.f},
      {SphereSdf{{0.7f, 0.5f, 0.5f}, 0.1f}, {0.f, 1.f, 0.f}, 1.f}};
  const Scene scene("test", prims);
  int nearest = -1;
  (void)scene.SignedDistance({0.31f, 0.5f, 0.5f}, &nearest);
  EXPECT_EQ(nearest, 0);
  (void)scene.SignedDistance({0.69f, 0.5f, 0.5f}, &nearest);
  EXPECT_EQ(nearest, 1);
}

TEST(SceneFields, ColorTakesNearestPrimitiveBase) {
  std::vector<ScenePrimitive> prims{
      {SphereSdf{{0.3f, 0.5f, 0.5f}, 0.1f}, {0.9f, 0.1f, 0.1f}, 0.f},
      {SphereSdf{{0.7f, 0.5f, 0.5f}, 0.1f}, {0.1f, 0.9f, 0.1f}, 1.f}};
  const Scene scene("test", prims);
  const FeatureVec red = scene.ColorFeature({0.3f, 0.5f, 0.5f});
  const FeatureVec green = scene.ColorFeature({0.7f, 0.5f, 0.5f});
  EXPECT_GT(red[0], red[1]);    // red channel dominates
  EXPECT_GT(green[1], green[0]);  // green channel dominates
}

TEST(SceneFields, FeaturesAreDeterministic) {
  const Scene a = BuildScene(SceneId::kDrums);
  const Scene b = BuildScene(SceneId::kDrums);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Vec3f p{rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
    const FeatureVec fa = a.ColorFeature(p);
    const FeatureVec fb = b.ColorFeature(p);
    for (int c = 0; c < kColorFeatureDim; ++c) {
      ASSERT_EQ(fa[static_cast<std::size_t>(c)], fb[static_cast<std::size_t>(c)]);
    }
  }
}

TEST(SceneFields, FeaturesAreSpatiallySmoothInsideObjects) {
  // Adjacent samples inside one primitive differ by a bounded amount — the
  // property that makes vector quantisation effective.
  const Scene scene = BuildScene(SceneId::kHotdog);
  const Aabb b = SdfBounds(scene.Primitives()[1].shape);  // the bun
  const Vec3f c = b.Center();
  const float eps = 0.004f;
  const FeatureVec f0 = scene.ColorFeature(c);
  const FeatureVec f1 = scene.ColorFeature(c + Vec3f{eps, 0.f, 0.f});
  for (int ch = 0; ch < kColorFeatureDim; ++ch) {
    EXPECT_LT(std::fabs(f0[static_cast<std::size_t>(ch)] -
                        f1[static_cast<std::size_t>(ch)]),
              0.2f);
  }
}

TEST(SceneFields, EmptySceneThrows) {
  EXPECT_THROW(Scene("empty", {}), SpnerfError);
}

TEST(SceneFields, PrimitiveVolumeAdds) {
  std::vector<ScenePrimitive> prims{
      {SphereSdf{{0.3f, 0.5f, 0.5f}, 0.1f}, {1.f, 1.f, 1.f}, 0.f},
      {SphereSdf{{0.7f, 0.5f, 0.5f}, 0.1f}, {1.f, 1.f, 1.f}, 0.f}};
  const Scene scene("test", prims);
  const double single = SdfVolume(prims[0].shape);
  EXPECT_NEAR(scene.PrimitiveVolume(), 2.0 * single, 1e-9);
}

TEST(SceneFields, BoundsCoverAllPrimitives) {
  for (SceneId id : AllScenes()) {
    const Scene scene = BuildScene(id);
    const Aabb bounds = scene.Bounds();
    for (const ScenePrimitive& prim : scene.Primitives()) {
      const Aabb pb = SdfBounds(prim.shape);
      EXPECT_LE(bounds.lo.x, pb.lo.x + 1e-6f) << SceneName(id);
      EXPECT_GE(bounds.hi.y, pb.hi.y - 1e-6f) << SceneName(id);
    }
  }
}

}  // namespace
}  // namespace spnerf
