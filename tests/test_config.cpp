#include "common/config.hpp"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spnerf {
namespace {

TEST(Config, FromArgsParsesPairs) {
  const char* argv[] = {"prog", "alpha=1", "name=spnerf", "ratio=2.5",
                        "flag=true", "not-a-pair"};
  const Config c = Config::FromArgs(6, argv);
  EXPECT_EQ(c.GetInt("alpha", 0), 1);
  EXPECT_EQ(c.GetString("name", ""), "spnerf");
  EXPECT_DOUBLE_EQ(c.GetDouble("ratio", 0.0), 2.5);
  EXPECT_TRUE(c.GetBool("flag", false));
  EXPECT_FALSE(c.Has("not-a-pair"));
}

TEST(Config, FallbacksWhenMissing) {
  const Config c;
  EXPECT_EQ(c.GetInt("x", 7), 7);
  EXPECT_EQ(c.GetString("y", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(c.GetDouble("z", 1.5), 1.5);
  EXPECT_TRUE(c.GetBool("w", true));
}

TEST(Config, BoolSpellings) {
  Config c;
  for (const char* t : {"1", "true", "yes", "on", "TRUE", "Yes"}) {
    c.Set("k", t);
    EXPECT_TRUE(c.GetBool("k", false)) << t;
  }
  for (const char* f : {"0", "false", "no", "off", "False"}) {
    c.Set("k", f);
    EXPECT_FALSE(c.GetBool("k", true)) << f;
  }
  c.Set("k", "maybe");
  EXPECT_THROW((void)c.GetBool("k", false), SpnerfError);
}

TEST(Config, TypeErrorsThrow) {
  Config c;
  c.Set("k", "abc");
  EXPECT_THROW((void)c.GetInt("k", 0), SpnerfError);
  EXPECT_THROW((void)c.GetDouble("k", 0.0), SpnerfError);
}

TEST(Config, SetOverwrites) {
  Config c;
  c.Set("k", "1");
  c.Set("k", "2");
  EXPECT_EQ(c.GetInt("k", 0), 2);
  EXPECT_EQ(c.Keys().size(), 1u);
}

TEST(Config, FromFileParsesAndIgnoresComments) {
  const std::string path = ::testing::TempDir() + "/spnerf_cfg.txt";
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "alpha = 3\n"
        << "  beta=4.5  # trailing comment\n"
        << "\n"
        << "name = hello world\n";
  }
  const Config c = Config::FromFile(path);
  EXPECT_EQ(c.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(c.GetDouble("beta", 0.0), 4.5);
  EXPECT_EQ(c.GetString("name", ""), "hello world");
  std::remove(path.c_str());
}

TEST(Config, FromFileMalformedThrows) {
  const std::string path = ::testing::TempDir() + "/spnerf_bad.txt";
  {
    std::ofstream out(path);
    out << "this line has no equals\n";
  }
  EXPECT_THROW(Config::FromFile(path), SpnerfError);
  std::remove(path.c_str());
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(Config::FromFile("/nonexistent/path/cfg"), SpnerfError);
}

}  // namespace
}  // namespace spnerf
