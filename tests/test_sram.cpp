#include "sim/sram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spnerf {
namespace {

TEST(SramModel, CountsAccesses) {
  SramModel s("buf", 64 * 1024);
  s.Read(4, 10);
  s.Write(16, 2);
  EXPECT_EQ(s.Reads(), 10u);
  EXPECT_EQ(s.Writes(), 2u);
  EXPECT_EQ(s.BytesRead(), 40u);
  EXPECT_EQ(s.BytesWritten(), 32u);
}

TEST(SramModel, EnergyUsesTechModel) {
  const Tech28& tech = DefaultTech28();
  SramModel s("buf", 32 * 1024);
  s.Read(100);
  const double expect = 100.0 * tech.SramReadPjPerByte(32 * 1024) * 1e-12;
  EXPECT_NEAR(s.EnergyJ(tech), expect, 1e-18);
}

TEST(SramModel, WriteEnergyHigherThanRead) {
  const Tech28& tech = DefaultTech28();
  SramModel rd("a", 64 * 1024), wr("b", 64 * 1024);
  rd.Read(1000);
  wr.Write(1000);
  EXPECT_GT(wr.EnergyJ(tech), rd.EnergyJ(tech));
}

TEST(SramModel, LargerMacroCostsMorePerByte) {
  const Tech28& tech = DefaultTech28();
  EXPECT_GT(tech.SramReadPjPerByte(512 * 1024),
            tech.SramReadPjPerByte(32 * 1024));
  // And it's monotone across the macro sizes used in the design.
  double prev = 0.0;
  for (u64 kb : {8ull, 32ull, 104ull, 192ull, 512ull}) {
    const double e = tech.SramReadPjPerByte(kb * 1024);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(SramModel, ResetCountersClears) {
  SramModel s("buf", 1024);
  s.Read(10);
  s.Write(10);
  s.ResetCounters();
  EXPECT_EQ(s.Reads(), 0u);
  EXPECT_EQ(s.EnergyJ(DefaultTech28()), 0.0);
}

TEST(SramModel, ZeroCapacityThrows) {
  EXPECT_THROW(SramModel("bad", 0), SpnerfError);
}

TEST(SramModel, NamePreserved) {
  SramModel s("index+density", 104 * 1024);
  EXPECT_EQ(s.Name(), "index+density");
  EXPECT_EQ(s.CapacityBytes(), 104u * 1024);
}

}  // namespace
}  // namespace spnerf
