#include "encoding/hash_table.hpp"

#include <gtest/gtest.h>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {
namespace {

TEST(SubgridHashTable, EmptyLookupReturnsEmptyEntry) {
  const SubgridHashTable t(256);
  EXPECT_FALSE(t.Lookup({1, 2, 3}).Occupied());
}

TEST(SubgridHashTable, InsertThenLookupSamePoint) {
  SubgridHashTable t(1024);
  EXPECT_TRUE(t.Insert({5, 6, 7}, 4242, -12, CollisionPolicy::kKeepFirst));
  const HashEntry& e = t.Lookup({5, 6, 7});
  EXPECT_TRUE(e.Occupied());
  EXPECT_EQ(e.payload, 4242u);
  EXPECT_EQ(e.density_q, -12);
}

TEST(SubgridHashTable, KeepFirstPolicy) {
  SubgridHashTable t(1);  // every insert collides on slot 0
  EXPECT_TRUE(t.Insert({0, 0, 0}, 1, 10, CollisionPolicy::kKeepFirst));
  EXPECT_FALSE(t.Insert({9, 9, 9}, 2, 20, CollisionPolicy::kKeepFirst));
  EXPECT_EQ(t.Lookup({0, 0, 0}).payload, 1u);
  EXPECT_EQ(t.BuildStats().collisions, 1u);
  EXPECT_EQ(t.BuildStats().inserted, 1u);
  EXPECT_EQ(t.BuildStats().occupied_slots, 1u);
}

TEST(SubgridHashTable, OverwritePolicy) {
  SubgridHashTable t(1);
  t.Insert({0, 0, 0}, 1, 10, CollisionPolicy::kOverwrite);
  t.Insert({9, 9, 9}, 2, 20, CollisionPolicy::kOverwrite);
  EXPECT_EQ(t.Lookup({0, 0, 0}).payload, 2u);  // last writer won
  EXPECT_EQ(t.BuildStats().collisions, 1u);
}

TEST(SubgridHashTable, CollisionAliasIsVisible) {
  // The defining behaviour: after a collision, the losing point's lookup
  // silently returns the winner's payload.
  SubgridHashTable t(1);
  t.Insert({0, 0, 0}, 111, 1, CollisionPolicy::kKeepFirst);
  t.Insert({5, 5, 5}, 222, 2, CollisionPolicy::kKeepFirst);
  EXPECT_EQ(t.Lookup({5, 5, 5}).payload, 111u);  // aliased!
}

TEST(SubgridHashTable, SizeAccounting) {
  const SubgridHashTable t(32 * 1024);
  // 26 bits per entry (18-bit payload + 8-bit density).
  EXPECT_EQ(t.SizeBits(), 32u * 1024 * 26);
  EXPECT_EQ(t.SizeBytes(), (32u * 1024 * 26 + 7) / 8);
}

TEST(SubgridHashTable, PayloadCollidingWithEmptyMarkerThrows) {
  SubgridHashTable t(16);
  EXPECT_THROW(
      t.Insert({0, 0, 0}, HashEntry::kEmptyPayload, 0,
               CollisionPolicy::kKeepFirst),
      SpnerfError);
}

TEST(SubgridHashTable, MaxValidPayloadAccepted) {
  SubgridHashTable t(16);
  EXPECT_TRUE(t.Insert({0, 0, 0}, HashEntry::kEmptyPayload - 1, 0,
                       CollisionPolicy::kKeepFirst));
}

TEST(SubgridHashTable, ZeroSizeThrows) {
  EXPECT_THROW(SubgridHashTable(0), SpnerfError);
}

TEST(SubgridHashTable, StatsAccumulateOverManyInserts) {
  SubgridHashTable t(512);
  Rng rng(3);
  std::set<u32> slots;
  int expected_collisions = 0;
  for (int i = 0; i < 400; ++i) {
    const Vec3i p{rng.UniformInt(0, 63), rng.UniformInt(0, 63),
                  rng.UniformInt(0, 63)};
    const u32 slot = SpatialHash(p, 512);
    if (!slots.insert(slot).second) ++expected_collisions;
    t.Insert(p, static_cast<u32>(i), 0, CollisionPolicy::kKeepFirst);
  }
  EXPECT_EQ(t.BuildStats().collisions,
            static_cast<u64>(expected_collisions));
  EXPECT_EQ(t.BuildStats().occupied_slots, slots.size());
  EXPECT_EQ(t.BuildStats().inserted + t.BuildStats().collisions, 400u);
}

TEST(SubgridHashTable, CollisionRateHelper) {
  SubgridHashTable t(1);
  EXPECT_EQ(t.BuildStats().CollisionRate(), 0.0);
  t.Insert({0, 0, 0}, 1, 0, CollisionPolicy::kKeepFirst);
  t.Insert({1, 1, 1}, 2, 0, CollisionPolicy::kKeepFirst);
  t.Insert({2, 2, 2}, 3, 0, CollisionPolicy::kKeepFirst);
  EXPECT_NEAR(t.BuildStats().CollisionRate(), 2.0 / 3.0, 1e-12);
}

class TableLoadSweep : public ::testing::TestWithParam<u32> {};

TEST_P(TableLoadSweep, LargerTablesCollideLess) {
  const u32 size = GetParam();
  SubgridHashTable small(size), big(size * 4);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Vec3i p{rng.UniformInt(0, 127), rng.UniformInt(0, 127),
                  rng.UniformInt(0, 127)};
    small.Insert(p, 1, 0, CollisionPolicy::kKeepFirst);
    big.Insert(p, 1, 0, CollisionPolicy::kKeepFirst);
  }
  EXPECT_LE(big.BuildStats().collisions, small.BuildStats().collisions);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TableLoadSweep,
                         ::testing::Values(256u, 1024u, 4096u));

}  // namespace
}  // namespace spnerf
