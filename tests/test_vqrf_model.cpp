#include "grid/vqrf_model.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {
namespace {

/// A small random grid with clustered occupancy, VQ-friendly features.
DenseGrid MakeTestGrid(int n = 24, double occupancy = 0.08, u64 seed = 1) {
  DenseGrid g({n, n, n});
  Rng rng(seed);
  const auto want = static_cast<u64>(occupancy * static_cast<double>(g.VoxelCount()));
  u64 placed = 0;
  while (placed < want) {
    const Vec3i p{rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1),
                  rng.UniformInt(0, n - 1)};
    if (g.IsNonZero(g.Dims().Flatten(p))) continue;
    VoxelData v;
    v.density = rng.Uniform(0.5f, 100.f);
    for (int c = 0; c < kColorFeatureDim; ++c)
      v.features[c] = std::sin(0.3f * static_cast<float>(p.x + c)) * 0.8f;
    g.SetVoxel(p, v);
    ++placed;
  }
  return g;
}

VqrfBuildParams FastParams() {
  VqrfBuildParams p;
  p.codebook_size = 64;
  p.kmeans_iterations = 4;
  p.max_vq_train_samples = 2000;
  return p;
}

TEST(VqrfModel, BuildPreservesCounts) {
  const DenseGrid g = MakeTestGrid();
  const u64 nonzero = g.CountNonZero();
  const VqrfModel m = VqrfModel::Build(g, FastParams());
  // 8% pruned by default.
  const auto expected =
      nonzero - static_cast<u64>(0.08 * static_cast<double>(nonzero));
  EXPECT_EQ(m.NonZeroCount(), expected);
  EXPECT_EQ(m.KeptCount() + m.VqCount(), m.NonZeroCount());
  // 20% of survivors kept.
  EXPECT_EQ(m.KeptCount(),
            static_cast<u64>(0.2 * static_cast<double>(m.NonZeroCount())));
}

TEST(VqrfModel, RecordsAscendingAndUnique) {
  const VqrfModel m = VqrfModel::Build(MakeTestGrid(), FastParams());
  const auto& recs = m.Records();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1].index, recs[i].index);
  }
}

TEST(VqrfModel, PruningDropsLowestImportance) {
  VqrfBuildParams p = FastParams();
  p.prune_fraction = 0.5;
  const DenseGrid g = MakeTestGrid();
  const VqrfModel m = VqrfModel::Build(g, p);
  // Every pruned voxel must have importance <= every surviving voxel.
  // Check via densities: compute min surviving density*featnorm proxy and
  // max pruned.
  double min_survivor = 1e30;
  std::vector<bool> survives(g.VoxelCount(), false);
  for (const auto& r : m.Records()) survives[r.index] = true;
  auto importance = [&](VoxelIndex i) {
    const float* f = g.Features(i);
    double n2 = 0;
    for (int c = 0; c < kColorFeatureDim; ++c) n2 += static_cast<double>(f[c]) * f[c];
    return std::fabs(g.Density(i)) * (1.0 + std::sqrt(n2));
  };
  double max_pruned = 0.0;
  for (VoxelIndex i = 0; i < g.VoxelCount(); ++i) {
    if (!g.IsNonZero(i)) continue;
    if (survives[i]) {
      min_survivor = std::min(min_survivor, importance(i));
    } else {
      max_pruned = std::max(max_pruned, importance(i));
    }
  }
  EXPECT_LE(max_pruned, min_survivor * 1.0000001);
}

TEST(VqrfModel, KeptVoxelsAreHighestImportance) {
  const DenseGrid g = MakeTestGrid();
  const VqrfModel m = VqrfModel::Build(g, FastParams());
  // Kept slots index into kept features contiguously.
  u64 kept_seen = 0;
  for (const auto& r : m.Records()) {
    if (r.kept) {
      EXPECT_LT(r.payload_id, m.KeptCount());
      ++kept_seen;
    } else {
      EXPECT_LT(r.payload_id,
                static_cast<u32>(m.GetCodebook().Size()));
    }
  }
  EXPECT_EQ(kept_seen, m.KeptCount());
  EXPECT_EQ(m.KeptFeatures().size(), m.KeptCount() * kColorFeatureDim);
}

TEST(VqrfModel, DecodeKeptRecordWithinQuantError) {
  const DenseGrid g = MakeTestGrid();
  const VqrfModel m = VqrfModel::Build(g, FastParams());
  const float ferr = m.FeatureQuantizer().MaxRoundingError();
  const float derr = m.DensityQuantizer().MaxRoundingError();
  for (const auto& r : m.Records()) {
    if (!r.kept) continue;
    const VoxelData d = m.DecodeRecord(r);
    const float* f = g.Features(r.index);
    EXPECT_NEAR(d.density, g.Density(r.index), derr * 1.001f);
    for (int c = 0; c < kColorFeatureDim; ++c) {
      EXPECT_NEAR(d.features[c], f[c], ferr * 1.001f);
    }
  }
}

TEST(VqrfModel, FindRecordMatchesBitmap) {
  const DenseGrid g = MakeTestGrid();
  const VqrfModel m = VqrfModel::Build(g, FastParams());
  const BitGrid& bm = m.OccupancyBitmap();
  for (VoxelIndex i = 0; i < g.VoxelCount(); ++i) {
    const auto rec = m.FindRecord(i);
    EXPECT_EQ(rec.has_value(), bm.Test(i)) << "voxel " << i;
    if (rec) {
      EXPECT_EQ(rec->index, i);
    }
  }
}

TEST(VqrfModel, RestoreMatchesDecodedRecords) {
  const DenseGrid g = MakeTestGrid();
  const VqrfModel m = VqrfModel::Build(g, FastParams());
  const DenseGrid restored = m.Restore();
  EXPECT_EQ(restored.Dims(), g.Dims());
  // Restored non-zero set == record set; values == record decodes.
  for (const auto& r : m.Records()) {
    const VoxelData d = m.DecodeRecord(r);
    EXPECT_EQ(restored.Density(r.index), d.density);
    const float* f = restored.Features(r.index);
    for (int c = 0; c < kColorFeatureDim; ++c) EXPECT_EQ(f[c], d.features[c]);
  }
  // Pruned voxels restore to zero.
  EXPECT_EQ(restored.CountNonZero(), m.NonZeroCount());
}

TEST(VqrfModel, RestoredBytesMatchesFullGrid) {
  const DenseGrid g = MakeTestGrid();
  const VqrfModel m = VqrfModel::Build(g, FastParams());
  EXPECT_EQ(m.RestoredBytes(), g.RestoredBytes());
}

TEST(VqrfModel, CompressedMuchSmallerThanRestored) {
  const VqrfModel m = VqrfModel::Build(MakeTestGrid(32, 0.05), FastParams());
  EXPECT_LT(m.CompressedBytes() * 10, m.RestoredBytes());
}

TEST(VqrfModel, EmptyGridThrows) {
  const DenseGrid g({8, 8, 8});
  EXPECT_THROW(VqrfModel::Build(g, FastParams()), SpnerfError);
}

TEST(VqrfModel, InvalidParamsThrow) {
  const DenseGrid g = MakeTestGrid();
  VqrfBuildParams p = FastParams();
  p.prune_fraction = 1.0;
  EXPECT_THROW(VqrfModel::Build(g, p), SpnerfError);
  p = FastParams();
  p.keep_fraction = 1.5;
  EXPECT_THROW(VqrfModel::Build(g, p), SpnerfError);
  p = FastParams();
  p.codebook_size = 0;
  EXPECT_THROW(VqrfModel::Build(g, p), SpnerfError);
}

TEST(VqrfModel, KeepFractionZeroMeansAllVq) {
  VqrfBuildParams p = FastParams();
  p.keep_fraction = 0.0;
  const VqrfModel m = VqrfModel::Build(MakeTestGrid(), p);
  EXPECT_EQ(m.KeptCount(), 0u);
  EXPECT_TRUE(m.KeptFeatures().empty());
}

TEST(VqrfModel, DeterministicAcrossBuilds) {
  const DenseGrid g = MakeTestGrid();
  const VqrfModel a = VqrfModel::Build(g, FastParams());
  const VqrfModel b = VqrfModel::Build(g, FastParams());
  ASSERT_EQ(a.Records().size(), b.Records().size());
  for (std::size_t i = 0; i < a.Records().size(); ++i) {
    EXPECT_EQ(a.Records()[i].index, b.Records()[i].index);
    EXPECT_EQ(a.Records()[i].kept, b.Records()[i].kept);
    EXPECT_EQ(a.Records()[i].payload_id, b.Records()[i].payload_id);
    EXPECT_EQ(a.Records()[i].density_q, b.Records()[i].density_q);
  }
}

TEST(VqrfModel, VqDecodeUsesCodebookRow) {
  const DenseGrid g = MakeTestGrid();
  const VqrfModel m = VqrfModel::Build(g, FastParams());
  for (const auto& r : m.Records()) {
    if (r.kept) continue;
    const VoxelData d = m.DecodeRecord(r);
    const auto base = static_cast<std::size_t>(r.payload_id) * kColorFeatureDim;
    for (int c = 0; c < kColorFeatureDim; ++c) {
      EXPECT_EQ(d.features[c], m.FeatureQuantizer().Dequantize(
                                   m.CodebookInt8()[base + c]));
    }
    break;  // one record suffices for the wiring check
  }
}

}  // namespace
}  // namespace spnerf
