#include "scene/scene_zoo.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "scene/dataset.hpp"

namespace spnerf {
namespace {

TEST(SceneZoo, AllScenesBuild) {
  for (SceneId id : AllScenes()) {
    const Scene scene = BuildScene(id);
    EXPECT_FALSE(scene.Primitives().empty()) << SceneName(id);
    EXPECT_EQ(scene.Name(), SceneName(id));
  }
}

TEST(SceneZoo, NamesRoundTrip) {
  for (SceneId id : AllScenes()) {
    EXPECT_EQ(SceneFromName(SceneName(id)), id);
  }
  EXPECT_THROW(SceneFromName("unknown"), SpnerfError);
}

TEST(SceneZoo, EightScenesInDatasetOrder) {
  const auto scenes = AllScenes();
  EXPECT_EQ(scenes.size(), static_cast<std::size_t>(kSceneCount));
  EXPECT_STREQ(SceneName(scenes[0]), "chair");
  EXPECT_STREQ(SceneName(scenes[7]), "ship");
}

TEST(SceneZoo, DefaultResolutionsAreDvgoScale) {
  for (SceneId id : AllScenes()) {
    const int r = SceneDefaultResolution(id);
    EXPECT_GE(r, 128) << SceneName(id);
    EXPECT_LE(r, 200) << SceneName(id);
  }
}

TEST(SceneZoo, GeometryInsideUnitCube) {
  for (SceneId id : AllScenes()) {
    const Aabb b = BuildScene(id).Bounds();
    EXPECT_GE(b.lo.x, 0.f) << SceneName(id);
    EXPECT_GE(b.lo.y, 0.f) << SceneName(id);
    EXPECT_GE(b.lo.z, 0.f) << SceneName(id);
    EXPECT_LE(b.hi.x, 1.f) << SceneName(id);
    EXPECT_LE(b.hi.y, 1.f) << SceneName(id);
    EXPECT_LE(b.hi.z, 1.f) << SceneName(id);
  }
}

TEST(SceneZoo, PrimitiveVolumeInSparsityBallpark) {
  // Scene solids occupy a few percent of the unit cube — the precondition
  // for landing in the paper's 2.01%..6.48% non-zero band after voxelising.
  for (SceneId id : AllScenes()) {
    const double v = BuildScene(id).PrimitiveVolume();
    EXPECT_GT(v, 0.01) << SceneName(id);
    EXPECT_LT(v, 0.10) << SceneName(id);
  }
}

TEST(SceneZoo, DensityZeroOutsideObjects) {
  for (SceneId id : AllScenes()) {
    const Scene scene = BuildScene(id);
    EXPECT_EQ(scene.Density({0.01f, 0.99f, 0.01f}), 0.0f) << SceneName(id);
  }
}

TEST(SceneZoo, DensityPositiveInsideObjects) {
  // Sample the center of the first primitive's bounds.
  for (SceneId id : AllScenes()) {
    const Scene scene = BuildScene(id);
    const Aabb b = SdfBounds(scene.Primitives().front().shape);
    EXPECT_GT(scene.Density(b.Center()), 0.0f) << SceneName(id);
  }
}

TEST(SceneZoo, FeaturesZeroOutsideNonZeroInside) {
  for (SceneId id : AllScenes()) {
    const Scene scene = BuildScene(id);
    const FeatureVec outside = scene.ColorFeature({0.01f, 0.99f, 0.01f});
    for (float f : outside) EXPECT_EQ(f, 0.0f);
    const Aabb b = SdfBounds(scene.Primitives().front().shape);
    const FeatureVec inside = scene.ColorFeature(b.Center());
    float mag = 0.f;
    for (float f : inside) mag += std::fabs(f);
    EXPECT_GT(mag, 0.f) << SceneName(id);
  }
}

TEST(SceneZoo, FeatureChannelsBounded) {
  // Albedo channels stay in [0, 1]; harmonics within their amplitude.
  const Scene scene = BuildScene(SceneId::kLego);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const Vec3f p{rng.NextFloat(), rng.NextFloat(), rng.NextFloat()};
    const FeatureVec f = scene.ColorFeature(p);
    for (int c = 0; c < 3; ++c) {
      EXPECT_GE(f[c], 0.0f);
      EXPECT_LE(f[c], 1.0f);
    }
    for (int c = 3; c < kColorFeatureDim; ++c) {
      EXPECT_LE(std::fabs(f[c]),
                scene.FieldParams().harmonic_amplitude * 1.0001f);
    }
  }
}

TEST(SceneZoo, VoxelizedSparsityInPaperBand) {
  // The headline property (Fig 2(b)): non-zero fraction between ~2% and
  // ~6.5% at a representative resolution. 96^3 keeps this test fast; the
  // fraction is resolution-stable because it measures volume.
  for (SceneId id : AllScenes()) {
    const Scene scene = BuildScene(id);
    const DenseGrid grid = VoxelizeScene(scene, {96});
    const double frac = grid.NonZeroFraction();
    EXPECT_GT(frac, 0.015) << SceneName(id);
    EXPECT_LT(frac, 0.080) << SceneName(id);
  }
}

TEST(SceneZoo, ShipIsDensestFicusMicAmongSparsest) {
  auto frac = [](SceneId id) {
    return VoxelizeScene(BuildScene(id), {80}).NonZeroFraction();
  };
  const double ship = frac(SceneId::kShip);
  for (SceneId id : AllScenes()) {
    if (id == SceneId::kShip) continue;
    EXPECT_GT(ship, frac(id)) << SceneName(id);
  }
}

}  // namespace
}  // namespace spnerf
