#include "common/rng.hpp"

#include <algorithm>
#include <gtest/gtest.h>
#include <set>
#include <vector>

namespace spnerf {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.Uniform(-3.f, 5.f);
    EXPECT_GE(v, -3.f);
    EXPECT_LT(v, 5.f);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(13);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000007ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit
}

TEST(Rng, MeanOfUniformIsHalf) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalHasUnitVariance) {
  Rng rng(23);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, BitsAreRoughlyBalanced) {
  Rng rng(31);
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ones += __builtin_popcountll(rng.NextU64());
  const double frac = static_cast<double>(ones) / (64.0 * n);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  Rng rng(77);
  std::shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // And the shuffle actually moved things.
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += (v[static_cast<std::size_t>(i)] != i);
  EXPECT_GT(moved, 50);
}

}  // namespace
}  // namespace spnerf
