#include "render/camera.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spnerf {
namespace {

TEST(Camera, CenterRayPointsForward) {
  const Camera cam({0.f, 0.f, -2.f}, {0.f, 0.f, 0.f}, {0.f, 1.f, 0.f}, 45.f,
                   101, 101);
  const Ray r = cam.PixelRay(50, 50);
  EXPECT_NEAR(r.direction.z, 1.f, 1e-3f);
  EXPECT_NEAR(r.direction.x, 0.f, 2e-2f);  // half-pixel offset
  EXPECT_NEAR(r.direction.y, 0.f, 2e-2f);
  EXPECT_EQ(r.origin, (Vec3f{0.f, 0.f, -2.f}));
}

TEST(Camera, RaysAreUnitLength) {
  const Camera cam({1.f, 2.f, 3.f}, {0.5f, 0.5f, 0.5f}, {0.f, 1.f, 0.f}, 60.f,
                   32, 24);
  for (int y = 0; y < 24; y += 5) {
    for (int x = 0; x < 32; x += 5) {
      EXPECT_NEAR(cam.PixelRay(x, y).direction.Norm(), 1.f, 1e-5f);
    }
  }
}

TEST(Camera, ImageYGrowsDownward) {
  const Camera cam({0.f, 0.f, -2.f}, {0.f, 0.f, 0.f}, {0.f, 1.f, 0.f}, 45.f,
                   64, 64);
  EXPECT_GT(cam.PixelRay(32, 0).direction.y, cam.PixelRay(32, 63).direction.y);
  EXPECT_LT(cam.PixelRay(0, 32).direction.x, cam.PixelRay(63, 32).direction.x);
}

TEST(Camera, FovControlsSpread) {
  const Camera narrow({0.f, 0.f, -2.f}, {0.f, 0.f, 0.f}, {0.f, 1.f, 0.f}, 20.f,
                      64, 64);
  const Camera wide({0.f, 0.f, -2.f}, {0.f, 0.f, 0.f}, {0.f, 1.f, 0.f}, 90.f,
                    64, 64);
  const float n = narrow.PixelRay(63, 32).direction.x;
  const float w = wide.PixelRay(63, 32).direction.x;
  EXPECT_GT(w, n);
}

TEST(Camera, InvalidConstructionThrows) {
  EXPECT_THROW(Camera({0.f, 0.f, 0.f}, {0.f, 0.f, 0.f}, {0.f, 1.f, 0.f}, 45.f,
                      8, 8),
               SpnerfError);  // position == look_at
  EXPECT_THROW(Camera({0.f, 0.f, -1.f}, {0.f, 0.f, 0.f}, {0.f, 0.f, 1.f}, 45.f,
                      8, 8),
               SpnerfError);  // up parallel to view
  EXPECT_THROW(Camera({0.f, 0.f, -1.f}, {0.f, 0.f, 0.f}, {0.f, 1.f, 0.f}, 0.f,
                      8, 8),
               SpnerfError);
  EXPECT_THROW(Camera({0.f, 0.f, -1.f}, {0.f, 0.f, 0.f}, {0.f, 1.f, 0.f}, 45.f,
                      0, 8),
               SpnerfError);
}

TEST(Camera, PixelOutOfRangeThrows) {
  const Camera cam({0.f, 0.f, -2.f}, {0.f, 0.f, 0.f}, {0.f, 1.f, 0.f}, 45.f, 8,
                   8);
  EXPECT_THROW((void)cam.PixelRay(8, 0), SpnerfError);
  EXPECT_THROW((void)cam.PixelRay(0, -1), SpnerfError);
}

TEST(OrbitCameras, AllLookAtCenter) {
  const Vec3f center{0.5f, 0.45f, 0.5f};
  const auto cams = OrbitCameras(8, center, 1.5f, 30.f, 40.f, 16, 16);
  ASSERT_EQ(cams.size(), 8u);
  for (const Camera& cam : cams) {
    EXPECT_NEAR((cam.Position() - center).Norm(), 1.5f, 1e-4f);
    const Vec3f to_center = (center - cam.Position()).Normalized();
    EXPECT_NEAR(to_center.Dot(cam.Forward()), 1.f, 1e-5f);
  }
}

TEST(OrbitCameras, DistinctPositions) {
  const auto cams = OrbitCameras(4, {0.5f, 0.5f, 0.5f}, 1.f, 0.f, 40.f, 8, 8);
  for (std::size_t i = 0; i < cams.size(); ++i) {
    for (std::size_t j = i + 1; j < cams.size(); ++j) {
      EXPECT_GT((cams[i].Position() - cams[j].Position()).Norm(), 0.5f);
    }
  }
}

TEST(IntersectAabb, HitFromOutside) {
  const Aabb box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  Ray r;
  r.origin = {-1.f, 0.5f, 0.5f};
  r.direction = {1.f, 0.f, 0.f};
  float t0 = 0.f, t1 = 0.f;
  ASSERT_TRUE(IntersectAabb(r, box, t0, t1));
  EXPECT_FLOAT_EQ(t0, 1.f);
  EXPECT_FLOAT_EQ(t1, 2.f);
}

TEST(IntersectAabb, MissReturnsFalse) {
  const Aabb box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  Ray r;
  r.origin = {-1.f, 2.f, 0.5f};
  r.direction = {1.f, 0.f, 0.f};
  float t0 = 0.f, t1 = 0.f;
  EXPECT_FALSE(IntersectAabb(r, box, t0, t1));
}

TEST(IntersectAabb, OriginInsideClampsNearToZero) {
  const Aabb box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  Ray r;
  r.origin = {0.5f, 0.5f, 0.5f};
  r.direction = {0.f, 1.f, 0.f};
  float t0 = -1.f, t1 = 0.f;
  ASSERT_TRUE(IntersectAabb(r, box, t0, t1));
  EXPECT_FLOAT_EQ(t0, 0.f);
  EXPECT_FLOAT_EQ(t1, 0.5f);
}

TEST(IntersectAabb, AxisParallelRayInsideSlab) {
  const Aabb box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  Ray r;
  r.origin = {0.5f, 0.5f, -3.f};
  r.direction = {0.f, 0.f, 1.f};
  float t0 = 0.f, t1 = 0.f;
  ASSERT_TRUE(IntersectAabb(r, box, t0, t1));
  EXPECT_FLOAT_EQ(t0, 3.f);
  EXPECT_FLOAT_EQ(t1, 4.f);
  // Parallel but outside the slab:
  r.origin = {1.5f, 0.5f, -3.f};
  EXPECT_FALSE(IntersectAabb(r, box, t0, t1));
}

TEST(IntersectAabb, BehindOriginMisses) {
  const Aabb box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  Ray r;
  r.origin = {2.f, 0.5f, 0.5f};
  r.direction = {1.f, 0.f, 0.f};  // box is behind
  float t0 = 0.f, t1 = 0.f;
  EXPECT_FALSE(IntersectAabb(r, box, t0, t1));
}

TEST(Ray, AtEvaluatesParametrically) {
  Ray r;
  r.origin = {1.f, 2.f, 3.f};
  r.direction = {0.f, 1.f, 0.f};
  EXPECT_EQ(r.At(0.f), r.origin);
  EXPECT_EQ(r.At(2.5f), (Vec3f{1.f, 4.5f, 3.f}));
}

}  // namespace
}  // namespace spnerf
