// Cross-scene property suite: renderer and codec invariants that must hold
// for every zoo scene (parameterized; reduced resolution for speed).
#include <gtest/gtest.h>

#include "common/ssim.hpp"
#include "core/pipeline.hpp"

namespace spnerf {
namespace {

class ScenePropertyTest : public ::testing::TestWithParam<SceneId> {
 protected:
  static PipelineConfig Config(SceneId id) {
    PipelineConfig pc;
    pc.scene_id = id;
    pc.dataset.resolution_override = 48;
    pc.dataset.vqrf.codebook_size = 128;
    pc.dataset.vqrf.kmeans_iterations = 3;
    pc.spnerf.subgrid_count = 16;
    pc.spnerf.table_size = 8192;
    return pc;
  }
};

TEST_P(ScenePropertyTest, EndToEndInvariants) {
  const ScenePipeline p = ScenePipeline::Build(Config(GetParam()));
  const Camera cam = p.MakeCamera(32, 32);

  const Image gt = p.RenderGroundTruth(cam);
  const Image vqrf = p.RenderVqrf(cam);
  const Image pre = p.RenderSpnerf(cam, false);
  const Image post = p.RenderSpnerf(cam, true);
  p.ReleaseRestored();

  // 1. All pixel values are finite and inside [0, 1] (sigmoid colors
  //    composited over a [0,1] background with weights summing <= 1).
  for (const Image* img : {&gt, &vqrf, &pre, &post}) {
    for (const Vec3f& px : img->Pixels()) {
      for (int c = 0; c < 3; ++c) {
        ASSERT_TRUE(std::isfinite(px[c]));
        ASSERT_GE(px[c], -1e-4f);
        ASSERT_LE(px[c], 1.0001f);
      }
    }
  }

  // 2. Quality ordering: masked decode is at least as good as unmasked
  //    (strictly better whenever any slot collides), and VQRF is the
  //    upper envelope of the hash pipeline's accuracy.
  const double psnr_vqrf = Psnr(gt, vqrf);
  const double psnr_pre = Psnr(gt, pre);
  const double psnr_post = Psnr(gt, post);
  EXPECT_GE(psnr_post, psnr_pre - 1e-9) << SceneName(GetParam());
  EXPECT_GE(psnr_vqrf, psnr_post - 2.0) << SceneName(GetParam());

  // 3. SSIM agrees with the PSNR ordering on the masked-vs-unmasked gap.
  EXPECT_GE(Ssim(gt, post), Ssim(gt, pre) - 1e-9);

  // 4. The scene must actually appear in frame (not all background).
  int fg = 0;
  for (const Vec3f& px : gt.Pixels()) {
    if ((px - Vec3f{1.f, 1.f, 1.f}).Norm() > 0.05f) ++fg;
  }
  EXPECT_GT(fg, 16) << SceneName(GetParam());
}

TEST_P(ScenePropertyTest, WorkloadSanity) {
  const ScenePipeline p = ScenePipeline::Build(Config(GetParam()));
  const FrameWorkload w = p.MeasureWorkload(24, 800, 800);
  // Empty-space skipping keeps the per-ray sample count far below the
  // unskipped march length (the box diagonal over the step size ~ 570).
  const double steps_per_ray =
      static_cast<double>(w.samples) / static_cast<double>(w.rays);
  EXPECT_LT(steps_per_ray, 200.0) << SceneName(GetParam());
  // Every scene produces MLP work and hits both payload stores.
  EXPECT_GT(w.mlp_evals, 0u);
  EXPECT_GT(w.codebook_frac, 0.0);
  EXPECT_GT(w.true_grid_frac, 0.0);
  // 18-bit budget holds at paper scale for every scene (checked in the
  // codec, re-asserted here for the default keep fraction).
  EXPECT_LE(p.Dataset().vqrf->KeptCount(),
            kUnifiedIndexSpace - 4096ull);
}

INSTANTIATE_TEST_SUITE_P(AllScenes, ScenePropertyTest,
                         ::testing::ValuesIn(AllScenes()),
                         [](const ::testing::TestParamInfo<SceneId>& info) {
                           return std::string(SceneName(info.param));
                         });

}  // namespace
}  // namespace spnerf
