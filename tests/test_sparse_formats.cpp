#include "encoding/sparse_formats.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace spnerf {
namespace {

DenseGrid MakeGrid(int n, double occupancy, u64 seed = 1) {
  DenseGrid g({n, n, n});
  Rng rng(seed);
  const auto want = static_cast<u64>(occupancy * static_cast<double>(g.VoxelCount()));
  u64 placed = 0;
  while (placed < want) {
    const Vec3i p{rng.UniformInt(0, n - 1), rng.UniformInt(0, n - 1),
                  rng.UniformInt(0, n - 1)};
    if (g.IsNonZero(g.Dims().Flatten(p))) continue;
    VoxelData v;
    v.density = rng.Uniform(1.f, 50.f);
    v.features[0] = rng.NextFloat();
    g.SetVoxel(p, v);
    ++placed;
  }
  return g;
}

VqrfModel MakeModel(int n = 20, double occupancy = 0.1) {
  VqrfBuildParams p;
  p.codebook_size = 32;
  p.kmeans_iterations = 3;
  p.prune_fraction = 0.0;  // keep the full non-zero set for exact checks
  return VqrfModel::Build(MakeGrid(n, occupancy), p);
}

class SparseFormatsTest : public ::testing::Test {
 protected:
  void SetUp() override { model_ = MakeModel(); }
  VqrfModel model_;
};

TEST_F(SparseFormatsTest, ElementCountsMatchModel) {
  EXPECT_EQ(CooGrid::Build(model_).ElementCount(), model_.NonZeroCount());
  EXPECT_EQ(CsrGrid::Build(model_).ElementCount(), model_.NonZeroCount());
  EXPECT_EQ(CscGrid::Build(model_).ElementCount(), model_.NonZeroCount());
}

TEST_F(SparseFormatsTest, AllFormatsAgreeOnEveryVoxel) {
  const CooGrid coo = CooGrid::Build(model_);
  const CsrGrid csr = CsrGrid::Build(model_);
  const CscGrid csc = CscGrid::Build(model_);
  const GridDims& dims = model_.Dims();
  for (VoxelIndex i = 0; i < dims.VoxelCount(); ++i) {
    const Vec3i p = dims.Unflatten(i);
    const auto a = coo.Lookup(p);
    const auto b = csr.Lookup(p);
    const auto c = csc.Lookup(p);
    const auto rec = model_.FindRecord(i);
    ASSERT_EQ(a.value.has_value(), rec.has_value()) << i;
    ASSERT_EQ(b.value.has_value(), rec.has_value()) << i;
    ASSERT_EQ(c.value.has_value(), rec.has_value()) << i;
    if (rec) {
      const u32 unified =
          rec->kept
              ? static_cast<u32>(model_.GetCodebook().Size()) + rec->payload_id
              : rec->payload_id;
      EXPECT_EQ(a.value->payload, unified);
      EXPECT_EQ(b.value->payload, unified);
      EXPECT_EQ(c.value->payload, unified);
      EXPECT_EQ(a.value->density_q, rec->density_q);
    }
  }
}

TEST_F(SparseFormatsTest, LookupsReportProbes) {
  const CooGrid coo = CooGrid::Build(model_);
  const CsrGrid csr = CsrGrid::Build(model_);
  const GridDims& dims = model_.Dims();
  // COO binary search over N elements needs up to log2(N)+1 probes; CSR
  // only searches within one row.
  const double log_n = std::log2(static_cast<double>(coo.ElementCount()));
  u32 coo_max = 0, csr_max = 0;
  for (VoxelIndex i = 0; i < dims.VoxelCount(); i += 11) {
    const Vec3i p = dims.Unflatten(i);
    coo_max = std::max(coo_max, coo.Lookup(p).probes);
    csr_max = std::max(csr_max, csr.Lookup(p).probes);
  }
  EXPECT_LE(coo_max, static_cast<u32>(log_n) + 3);
  EXPECT_GT(coo_max, 3u);
  EXPECT_LT(csr_max, coo_max);  // the paper's row-access advantage
}

TEST_F(SparseFormatsTest, CooCoordinateOverheadIsSixBytesPerElement) {
  const CooGrid coo = CooGrid::Build(model_);
  EXPECT_EQ(coo.CoordinateBytes(), coo.ElementCount() * 6);
  // The paper's "extra 630 KB" is coordinate storage at ~105k elements.
  EXPECT_EQ(CooGrid::Build(model_).CoordinateBytes() * 105000 /
                coo.ElementCount(),
            630000u);
}

TEST_F(SparseFormatsTest, MemoryAccountingSums) {
  const CooGrid coo = CooGrid::Build(model_);
  EXPECT_EQ(coo.TotalBytes(), coo.CoordinateBytes() + coo.PayloadBytes());
  const CsrGrid csr = CsrGrid::Build(model_);
  EXPECT_EQ(csr.TotalBytes(),
            csr.RowPtrBytes() + csr.ColIndexBytes() + csr.PayloadBytes());
  const CscGrid csc = CscGrid::Build(model_);
  EXPECT_EQ(csc.TotalBytes(),
            csc.ColPtrBytes() + csc.RowIndexBytes() + csc.PayloadBytes());
}

TEST_F(SparseFormatsTest, OutOfBoundsLookupIsEmpty) {
  const CooGrid coo = CooGrid::Build(model_);
  EXPECT_FALSE(coo.Lookup({-1, 0, 0}).value.has_value());
  EXPECT_FALSE(coo.Lookup({100, 0, 0}).value.has_value());
  const CsrGrid csr = CsrGrid::Build(model_);
  EXPECT_FALSE(csr.Lookup({0, 0, 100}).value.has_value());
  const CscGrid csc = CscGrid::Build(model_);
  EXPECT_FALSE(csc.Lookup({0, 100, 0}).value.has_value());
}

TEST(SparseFormatsDense, FullGridAllHits) {
  // occupancy 1.0: every lookup hits.
  VqrfBuildParams p;
  p.codebook_size = 16;
  p.kmeans_iterations = 2;
  p.prune_fraction = 0.0;
  DenseGrid g({6, 6, 6});
  for (VoxelIndex i = 0; i < g.VoxelCount(); ++i) {
    g.SetDensity(i, 1.0f + static_cast<float>(i % 7));
  }
  const VqrfModel m = VqrfModel::Build(g, p);
  const CsrGrid csr = CsrGrid::Build(m);
  for (VoxelIndex i = 0; i < g.VoxelCount(); ++i) {
    EXPECT_TRUE(csr.Lookup(g.Dims().Unflatten(i)).value.has_value());
  }
}

TEST(SparseFormatsEmptyRows, CsrHandlesEmptyRows) {
  // One voxel only: all other rows are empty ranges.
  VqrfBuildParams p;
  p.codebook_size = 4;
  p.kmeans_iterations = 2;
  p.prune_fraction = 0.0;
  DenseGrid g({8, 8, 8});
  VoxelData v;
  v.density = 5.f;
  g.SetVoxel({3, 4, 5}, v);
  const VqrfModel m = VqrfModel::Build(g, p);
  const CsrGrid csr = CsrGrid::Build(m);
  EXPECT_TRUE(csr.Lookup({3, 4, 5}).value.has_value());
  EXPECT_FALSE(csr.Lookup({3, 4, 6}).value.has_value());
  EXPECT_FALSE(csr.Lookup({0, 0, 0}).value.has_value());
}

}  // namespace
}  // namespace spnerf
