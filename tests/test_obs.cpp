// Contract tests for the observability layer (src/obs/): histogram bucket
// geometry and order-independent merge, exporter goldens (Chrome trace_event
// JSON and Prometheus text exposition are byte-deterministic for a given
// snapshot), the lossy-but-honest trace-ring overflow accounting, the
// SPNF_TRACE level plumbing, string interning, per-flow span assembly, and
// the virtualizable ManualClock the serving deadline tests run on.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spnerf {
namespace {

using obs::Histogram;
using obs::HistogramSnapshot;
using obs::TraceLevel;

/// Restores the process trace level on scope exit — tests flip it freely.
class ScopedTraceLevel {
 public:
  explicit ScopedTraceLevel(TraceLevel level)
      : previous_(obs::SetActiveTraceLevel(level)) {}
  ~ScopedTraceLevel() { obs::SetActiveTraceLevel(previous_); }

 private:
  TraceLevel previous_;
};

// ---------------------------------------------------------------------------
// Histogram bucket geometry
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesAreExactBuckets) {
  for (u64 v = 0; v < 4; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<std::size_t>(v));
    EXPECT_EQ(Histogram::BucketUpperBound(static_cast<std::size_t>(v)), v);
  }
}

TEST(Histogram, BucketBoundsAreContiguousAndContainTheirValues) {
  // Every probed value must land in a bucket whose range [prev_ub+1, ub]
  // contains it, and for values past the exact range the bucket width must
  // stay within the 25% relative-error contract (4 sub-buckets per octave).
  std::vector<u64> probes;
  for (u64 v = 0; v < 300; ++v) probes.push_back(v);
  for (int shift = 8; shift < 64; ++shift) {
    const u64 base = 1ull << shift;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
    probes.push_back(base + (base >> 1));
  }
  probes.push_back(~0ull);
  for (const u64 v : probes) {
    const std::size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, obs::kHistogramBucketCount) << "value " << v;
    const u64 ub = Histogram::BucketUpperBound(idx);
    EXPECT_LE(v, ub) << "value " << v;
    if (idx > 0) {
      const u64 lb = Histogram::BucketUpperBound(idx - 1) + 1;
      EXPECT_GE(v, lb) << "value " << v;
      if (v >= 4) {
        // Bucket width (ub - lb + 1) is at most a quarter of its lower
        // bound: the bounded relative error the layout promises.
        EXPECT_LE(4 * (ub - lb + 1), lb) << "value " << v;
      }
    }
  }
}

TEST(Histogram, TopBucketCoversU64Max) {
  const std::size_t idx = Histogram::BucketIndex(~0ull);
  EXPECT_LT(idx, obs::kHistogramBucketCount);
  EXPECT_EQ(Histogram::BucketUpperBound(idx), ~0ull);
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  Histogram h;
  h.Record(3);
  h.Record(100);
  h.Record(7);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 110u);
  EXPECT_EQ(snap.min, 3u);
  EXPECT_EQ(snap.max, 100u);
}

TEST(Histogram, PercentileNearestRankWithMaxClamp) {
  EXPECT_EQ(HistogramSnapshot{}.Percentile(50.0), 0u);  // empty -> 0

  Histogram h;
  for (u64 v = 0; v < 4; ++v) h.Record(v);  // values 0..3: exact buckets
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Percentile(0.0), 0u);    // rank floor is 1
  EXPECT_EQ(snap.Percentile(50.0), 1u);   // rank ceil(0.5 * 4) = 2
  EXPECT_EQ(snap.Percentile(100.0), 3u);

  // In the lossy range the bucket ceiling is clamped to the observed max:
  // 100 lands in a bucket whose upper bound is 111.
  Histogram lossy;
  lossy.Record(100);
  EXPECT_EQ(lossy.Snapshot().Percentile(100.0), 100u);
}

// ---------------------------------------------------------------------------
// Cross-shard merge determinism
// ---------------------------------------------------------------------------

/// The recorded multiset, partitioned across any number of shards and
/// merged in any order, must produce bit-identical snapshots — the same
/// property the latency reservoirs and the repo's render determinism pin.
TEST(Histogram, MergeIsShardAndOrderIndependent) {
  // A deterministic value stream spanning several octaves.
  std::vector<u64> values;
  u64 x = 88172645463325252ull;
  for (int i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x % 100000);
  }

  const auto shard_and_merge = [&](std::size_t shards,
                                   bool reverse) -> HistogramSnapshot {
    std::vector<Histogram> hs(shards);
    // Shards record concurrently — the snapshot/merge path must not care.
    std::vector<std::thread> threads;
    for (std::size_t s = 0; s < shards; ++s) {
      threads.emplace_back([&, s] {
        for (std::size_t i = s; i < values.size(); i += shards) {
          hs[s].Record(values[i]);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    HistogramSnapshot merged;
    if (reverse) {
      for (std::size_t s = shards; s-- > 0;) merged.Merge(hs[s].Snapshot());
    } else {
      for (std::size_t s = 0; s < shards; ++s) merged.Merge(hs[s].Snapshot());
    }
    return merged;
  };

  const HistogramSnapshot one = shard_and_merge(1, false);
  const HistogramSnapshot two = shard_and_merge(2, false);
  const HistogramSnapshot eight = shard_and_merge(8, false);
  const HistogramSnapshot eight_rev = shard_and_merge(8, true);

  const auto same = [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
    return std::memcmp(a.counts.data(), b.counts.data(),
                       sizeof(u64) * a.counts.size()) == 0 &&
           a.count == b.count && a.sum == b.sum && a.min == b.min &&
           a.max == b.max;
  };
  EXPECT_TRUE(same(one, two));
  EXPECT_TRUE(same(one, eight));
  EXPECT_TRUE(same(one, eight_rev));
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStablePerName) {
  obs::Counter& a = obs::MetricsRegistry::Global().GetCounter("test/stable");
  obs::Counter& b = obs::MetricsRegistry::Global().GetCounter("test/stable");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = obs::MetricsRegistry::Global().GetGauge("test/stable-g");
  obs::Gauge& g2 = obs::MetricsRegistry::Global().GetGauge("test/stable-g");
  EXPECT_EQ(&g1, &g2);
}

TEST(MetricsRegistry, SnapshotIsSortedAndCarriesTraceDropped) {
  obs::MetricsRegistry::Global().GetCounter("test/zz-last").Add(5);
  obs::MetricsRegistry::Global().GetCounter("test/aa-first").Add(7);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  ASSERT_GE(snap.counters.size(), 3u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  EXPECT_EQ(snap.CounterValue("test/aa-first"), 7u);
  EXPECT_EQ(snap.CounterValue("test/zz-last"), 5u);
  // The synthetic overflow counter is in every snapshot (lossy-but-honest).
  bool found = false;
  for (const auto& c : snap.counters) found |= c.name == "obs/trace-dropped";
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Exporter goldens
// ---------------------------------------------------------------------------

TEST(Exporters, PrometheusNameSanitizes) {
  EXPECT_EQ(obs::PrometheusName("serve/queue-us"), "spnerf_serve_queue_us");
  EXPECT_EQ(obs::PrometheusName("ok_name:x9"), "spnerf_ok_name:x9");
}

TEST(Exporters, PrometheusGoldenRoundTrip) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"serve/submitted", 12});
  snap.gauges.push_back({"pool/tokens", -3});
  Histogram hist;
  hist.Record(1);
  hist.Record(1);
  hist.Record(9);
  snap.histograms.push_back({"serve/queue-us", hist.Snapshot()});

  std::ostringstream out;
  obs::WritePrometheus(out, snap);
  const std::string expected =
      "# TYPE spnerf_serve_submitted_total counter\n"
      "spnerf_serve_submitted_total 12\n"
      "# TYPE spnerf_pool_tokens gauge\n"
      "spnerf_pool_tokens -3\n"
      "# TYPE spnerf_serve_queue_us histogram\n"
      "spnerf_serve_queue_us_bucket{le=\"1\"} 2\n"
      "spnerf_serve_queue_us_bucket{le=\"9\"} 3\n"
      "spnerf_serve_queue_us_bucket{le=\"+Inf\"} 3\n"
      "spnerf_serve_queue_us_sum 11\n"
      "spnerf_serve_queue_us_count 3\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Exporters, ChromeTraceGoldenRoundTrip) {
  obs::TraceSnapshot snap;
  obs::ThreadTrace thread;
  thread.tid = 7;

  obs::TraceEvent span;
  span.category = "serve";
  span.name = "issue";
  span.start_ns = 1500;
  span.end_ns = 4750;
  span.flow = 42;
  span.AddArg("batch", 3);
  span.AddStrArg("key", obs::InternString("lego"));
  thread.events.push_back(span);

  obs::TraceEvent instant;
  instant.category = "serve";
  instant.name = "admit";
  instant.start_ns = instant.end_ns = 2000;
  instant.flow = 42;
  thread.events.push_back(instant);

  thread.dropped = 2;
  snap.threads.push_back(thread);
  snap.dropped_total = 2;

  std::ostringstream out;
  obs::WriteChromeTrace(out, snap);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"issue\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":1.500,"
      "\"dur\":3.250,\"pid\":1,\"tid\":7,"
      "\"args\":{\"request\":42,\"batch\":3,\"key\":\"lego\"}},\n"
      "{\"name\":\"admit\",\"cat\":\"serve\",\"ph\":\"i\",\"s\":\"t\","
      "\"ts\":2.000,\"pid\":1,\"tid\":7,\"args\":{\"request\":42}},\n"
      "{\"name\":\"trace_dropped\",\"cat\":\"obs\",\"ph\":\"C\",\"ts\":0,"
      "\"pid\":1,\"tid\":7,\"args\":{\"dropped\":2}}"
      "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_total\":2}}\n";
  EXPECT_EQ(out.str(), expected);
}

// ---------------------------------------------------------------------------
// Trace level plumbing
// ---------------------------------------------------------------------------

TEST(TraceLevelTest, ResolveOverride) {
  TraceLevel level;
  EXPECT_TRUE(obs::ParseTraceLevelName("off", level));
  EXPECT_EQ(level, TraceLevel::kOff);
  EXPECT_TRUE(obs::ParseTraceLevelName("counters", level));
  EXPECT_EQ(level, TraceLevel::kCounters);
  EXPECT_TRUE(obs::ParseTraceLevelName("full", level));
  EXPECT_EQ(level, TraceLevel::kFull);
  EXPECT_FALSE(obs::ParseTraceLevelName("FULL", level));  // case-sensitive

  EXPECT_EQ(obs::ResolveTraceOverride(nullptr), TraceLevel::kCounters);
  EXPECT_EQ(obs::ResolveTraceOverride(""), TraceLevel::kCounters);
  EXPECT_EQ(obs::ResolveTraceOverride("off"), TraceLevel::kOff);
  EXPECT_EQ(obs::ResolveTraceOverride("full"), TraceLevel::kFull);
  EXPECT_EQ(obs::ResolveTraceOverride("garbage"), TraceLevel::kCounters);
}

TEST(TraceLevelTest, GatesFollowTheLevel) {
  {
    ScopedTraceLevel scope(TraceLevel::kOff);
    EXPECT_FALSE(obs::CountersEnabled());
    EXPECT_FALSE(obs::FullTracingEnabled());
  }
  {
    ScopedTraceLevel scope(TraceLevel::kCounters);
    EXPECT_TRUE(obs::CountersEnabled());
    EXPECT_FALSE(obs::FullTracingEnabled());
  }
  {
    ScopedTraceLevel scope(TraceLevel::kFull);
    EXPECT_TRUE(obs::CountersEnabled());
    EXPECT_TRUE(obs::FullTracingEnabled());
  }
}

TEST(TraceLevelTest, SetReturnsPrevious) {
  const TraceLevel original = obs::ActiveTraceLevel();
  const TraceLevel prev = obs::SetActiveTraceLevel(TraceLevel::kOff);
  EXPECT_EQ(prev, original);
  EXPECT_EQ(obs::SetActiveTraceLevel(original), TraceLevel::kOff);
}

// ---------------------------------------------------------------------------
// Interning
// ---------------------------------------------------------------------------

TEST(Intern, RoundTripsAndIsStable) {
  const u32 a = obs::InternString("intern-test-alpha");
  const u32 b = obs::InternString("intern-test-beta");
  EXPECT_NE(a, obs::kInternOverflowId);
  EXPECT_NE(b, obs::kInternOverflowId);
  EXPECT_NE(a, b);
  EXPECT_EQ(obs::InternString("intern-test-alpha"), a);  // stable id
  EXPECT_STREQ(obs::InternedString(a), "intern-test-alpha");
  EXPECT_STREQ(obs::InternedString(b), "intern-test-beta");
  EXPECT_EQ(obs::InternString(""), obs::kInternOverflowId);
  EXPECT_STREQ(obs::InternedString(obs::kInternOverflowId), "?");
  EXPECT_STREQ(obs::InternedString(999999), "?");
}

// ---------------------------------------------------------------------------
// Recording, flows and the drain side
// ---------------------------------------------------------------------------

TEST(Trace, EmitIsNoOpBelowFull) {
  obs::DrainTrace();  // clear anything previous tests left behind
  {
    ScopedTraceLevel scope(TraceLevel::kCounters);
    obs::EmitInstant("test", "suppressed");
    obs::TraceSpan span("test", "suppressed-span");
    EXPECT_FALSE(span.Active());
  }
  const obs::TraceSnapshot snap = obs::DrainTrace();
  for (const obs::ThreadTrace& t : snap.threads) {
    EXPECT_TRUE(t.events.empty());
  }
}

TEST(Trace, EventsAssemblePerFlow) {
  obs::DrainTrace();  // clear
  {
    ScopedTraceLevel scope(TraceLevel::kFull);
    obs::EmitInstant("test", "admit", 77);
    {
      obs::TraceSpan span("test", "queue", 77);
      EXPECT_TRUE(span.Active());
      span.AddArg("batch", 3);
      span.AddStrArg("key", obs::InternString("flow-test-key"));
    }
    obs::EmitInstant("test", "other-flow", 78);
  }
  const obs::TraceSnapshot snap = obs::DrainTrace();
  const std::vector<obs::TraceEvent> flow = snap.EventsForFlow(77);
  ASSERT_EQ(flow.size(), 2u);
  // Flatten order: ascending start time — the instant was emitted first.
  EXPECT_STREQ(flow[0].name, "admit");
  EXPECT_TRUE(flow[0].IsInstant());
  EXPECT_STREQ(flow[1].name, "queue");
  EXPECT_FALSE(flow[1].IsInstant());
  EXPECT_GE(flow[1].end_ns, flow[1].start_ns);
  EXPECT_EQ(flow[1].ArgValue("batch"), 3);
  EXPECT_TRUE(flow[1].HasArg("key"));
  EXPECT_STREQ(
      obs::InternedString(static_cast<u32>(flow[1].ArgValue("key"))),
      "flow-test-key");
  EXPECT_FALSE(flow[1].HasArg("absent"));
}

TEST(Trace, RingOverflowDropsAreCountedNeverBlocking) {
  // Shrink the default ring so a fresh thread's ring holds only a handful
  // of events (capacity 4 rounds to an 8-slot ring, 7 usable), then emit
  // far more than fit. The surplus must be dropped and counted — recording
  // never blocks.
  const std::size_t prev_cap = obs::SetDefaultTraceRingCapacity(4);
  constexpr int kEmitted = 100;
  {
    ScopedTraceLevel scope(TraceLevel::kFull);
    std::thread emitter([] {
      for (int i = 0; i < kEmitted; ++i) {
        obs::EmitInstant("test", "overflow-tick");
      }
    });
    emitter.join();
  }
  obs::SetDefaultTraceRingCapacity(prev_cap);

  const obs::TraceSnapshot snap = obs::DrainTrace();
  const obs::ThreadTrace* emitter_trace = nullptr;
  for (const obs::ThreadTrace& t : snap.threads) {
    for (const obs::TraceEvent& e : t.events) {
      if (e.name != nullptr && std::string_view(e.name) == "overflow-tick") {
        emitter_trace = &t;
        break;
      }
    }
  }
  ASSERT_NE(emitter_trace, nullptr);
  EXPECT_LE(emitter_trace->events.size(), 7u);
  EXPECT_GE(emitter_trace->dropped, 93u);
  EXPECT_EQ(emitter_trace->events.size() + emitter_trace->dropped,
            static_cast<std::size_t>(kEmitted));
  EXPECT_GE(snap.dropped_total, emitter_trace->dropped);

  // Honesty surfaces everywhere: the cumulative drop counter, the metrics
  // snapshot's synthetic counter, and the Chrome export's counter track.
  EXPECT_GE(obs::TotalTraceDropped(), emitter_trace->dropped);
  const obs::MetricsSnapshot metrics = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(metrics.CounterValue("obs/trace-dropped"),
            emitter_trace->dropped);
  std::ostringstream out;
  obs::WriteChromeTrace(out, snap);
  EXPECT_NE(out.str().find("trace_dropped"), std::string::npos);
}

TEST(Trace, FlattenOrdersEnclosingSpansFirst) {
  obs::TraceSnapshot snap;
  obs::ThreadTrace thread;
  thread.tid = 1;
  obs::TraceEvent inner;
  inner.category = "test";
  inner.name = "inner";
  inner.start_ns = 100;
  inner.end_ns = 200;
  obs::TraceEvent outer;
  outer.category = "test";
  outer.name = "outer";
  outer.start_ns = 100;
  outer.end_ns = 500;
  thread.events.push_back(inner);  // pushed inner-first on purpose
  thread.events.push_back(outer);
  snap.threads.push_back(thread);
  const std::vector<obs::TraceEvent> flat = snap.Flatten();
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_STREQ(flat[0].name, "outer");  // same start: longer span first
  EXPECT_STREQ(flat[1].name, "inner");
}

// ---------------------------------------------------------------------------
// ManualClock
// ---------------------------------------------------------------------------

TEST(ManualClockTest, AdvancesOnlyWhenTold) {
  ManualClock clock;
  const ClockSource::time_point t0 = clock.Now();
  EXPECT_EQ(clock.Now(), t0);  // no wall time leaks in
  clock.AdvanceMs(5.0);
  EXPECT_EQ(clock.Now() - t0, std::chrono::milliseconds(5));
  clock.Advance(std::chrono::milliseconds(10));
  EXPECT_EQ(clock.Now() - t0, std::chrono::milliseconds(15));
}

TEST(ManualClockTest, SleepUntilJumpsForwardNeverBack) {
  ManualClock clock;
  const ClockSource::time_point t0 = clock.Now();
  clock.SleepUntil(t0 + std::chrono::milliseconds(20));
  EXPECT_EQ(clock.Now() - t0, std::chrono::milliseconds(20));
  clock.SleepUntil(t0 + std::chrono::milliseconds(5));  // in the past: no-op
  EXPECT_EQ(clock.Now() - t0, std::chrono::milliseconds(20));
}

}  // namespace
}  // namespace spnerf
