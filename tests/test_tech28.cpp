#include "model/tech28.hpp"

#include <gtest/gtest.h>

namespace spnerf {
namespace {

TEST(Tech28, EnergyOrdering) {
  const Tech28& t = DefaultTech28();
  // FMA costs more than mul costs more than add costs more than INT8 op.
  EXPECT_GT(t.fp16_mac_pj, t.fp16_mul_pj);
  EXPECT_GT(t.fp16_mul_pj, t.fp16_add_pj);
  EXPECT_GT(t.fp16_add_pj, t.int8_op_pj);
  // A hash unit (two 32-bit multipliers) beats a single FP16 FMA.
  EXPECT_GT(t.hash_unit_pj, t.fp16_mac_pj);
  // A bitmap probe is the cheapest operation in the design.
  EXPECT_LT(t.bit_probe_pj, t.int8_op_pj);
}

TEST(Tech28, SramEnergyMonotoneInSize) {
  const Tech28& t = DefaultTech28();
  double prev = 0.0;
  for (u64 kb = 8; kb <= 1024; kb *= 2) {
    const double e = t.SramReadPjPerByte(kb * 1024);
    EXPECT_GT(e, 0.0);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(Tech28, SramWriteCostsMoreThanRead) {
  const Tech28& t = DefaultTech28();
  for (u64 size : {8192ull, 65536ull, 524288ull}) {
    EXPECT_GT(t.SramWritePjPerByte(size), t.SramReadPjPerByte(size));
  }
}

TEST(Tech28, SramAreaScalesWithCapacity) {
  const Tech28& t = DefaultTech28();
  const double one_mb = t.SramAreaMm2(1024 * 1024);
  const double two_mb = t.SramAreaMm2(2 * 1024 * 1024);
  EXPECT_NEAR(two_mb - one_mb, 0.45, 1e-6);  // 0.45 mm^2/MB marginal
  // 0.61 MB (the whole design's SRAM) is a fraction of a mm^2.
  EXPECT_LT(t.SramAreaMm2(625664), 0.5);
}

TEST(Tech28, TinyMacroDominatedByPeriphery) {
  const Tech28& t = DefaultTech28();
  EXPECT_GT(t.SramAreaMm2(1024), 0.003);  // fixed periphery floor
}

TEST(Tech28, LeakageIsPlausible) {
  const Tech28& t = DefaultTech28();
  // 7.7 mm^2 at 28nm should leak a few hundred mW, not watts.
  const double leak_w = 7.7 * t.leakage_mw_per_mm2 * 1e-3;
  EXPECT_GT(leak_w, 0.05);
  EXPECT_LT(leak_w, 0.5);
}

TEST(Tech28, DefaultIsSingleton) {
  EXPECT_EQ(&DefaultTech28(), &DefaultTech28());
}

}  // namespace
}  // namespace spnerf
