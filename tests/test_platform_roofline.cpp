#include "model/gpu_roofline.hpp"
#include "model/platform.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spnerf {
namespace {

GpuFrameWorkload TypicalVqrfFrame() {
  GpuFrameWorkload w;
  w.rays = 640000;
  w.samples = 12'000'000;
  w.mlp_evals = 2'000'000;
  w.restored_grid_bytes = 213ull * 1024 * 1024;
  w.compressed_bytes = 1500000;
  return w;
}

TEST(PlatformDb, TableIValues) {
  const PlatformSpec a100 = NvidiaA100();
  EXPECT_EQ(a100.tech_nm, 7);
  EXPECT_DOUBLE_EQ(a100.power_w, 400.0);
  EXPECT_DOUBLE_EQ(a100.dram_bw_gbps, 1555.0);
  EXPECT_DOUBLE_EQ(a100.fp32_tflops, 19.5);
  EXPECT_DOUBLE_EQ(a100.fp16_tflops, 78.0);
  EXPECT_EQ(a100.l2_bytes, 40ull * 1024 * 1024);

  const PlatformSpec onx = JetsonOnx();
  EXPECT_EQ(onx.tech_nm, 8);
  EXPECT_DOUBLE_EQ(onx.power_w, 25.0);
  EXPECT_DOUBLE_EQ(onx.dram_bw_gbps, 102.4);
  EXPECT_EQ(onx.l2_bytes, 4ull * 1024 * 1024);

  const PlatformSpec xnx = JetsonXnx();
  EXPECT_EQ(xnx.tech_nm, 16);
  EXPECT_DOUBLE_EQ(xnx.power_w, 20.0);
  EXPECT_DOUBLE_EQ(xnx.dram_bw_gbps, 59.7);
  EXPECT_EQ(xnx.l2_bytes, 512ull * 1024);
  EXPECT_DOUBLE_EQ(xnx.fp16_tflops, 1.69);

  EXPECT_EQ(TableIPlatforms().size(), 3u);
}

TEST(Roofline, TimesArePositiveAndSum) {
  const GpuRooflineResult r =
      EvaluateVqrfOnGpu(JetsonXnx(), TypicalVqrfFrame());
  EXPECT_GT(r.memory_time_s, 0.0);
  EXPECT_GT(r.compute_time_s, 0.0);
  EXPECT_NEAR(r.total_time_s,
              r.memory_time_s + r.compute_time_s + r.overhead_time_s, 1e-12);
  EXPECT_NEAR(r.fps, 1.0 / r.total_time_s, 1e-9);
  EXPECT_NEAR(r.memory_share, r.memory_time_s / r.total_time_s, 1e-12);
}

TEST(Roofline, EdgeIsMemoryBoundA100IsNot) {
  // The paper's Fig 2(a) observation.
  const GpuFrameWorkload w = TypicalVqrfFrame();
  const GpuRooflineResult xnx = EvaluateVqrfOnGpu(JetsonXnx(), w);
  const GpuRooflineResult onx = EvaluateVqrfOnGpu(JetsonOnx(), w);
  const GpuRooflineResult a100 = EvaluateVqrfOnGpu(NvidiaA100(), w);
  EXPECT_GT(xnx.memory_share, 0.55);
  EXPECT_GT(onx.memory_share, 0.55);
  EXPECT_LT(a100.memory_share, 0.30);
  // Edge memory-time share is several times the A100's (paper: 4.79-5.14x).
  EXPECT_GT(xnx.memory_share / a100.memory_share, 3.0);
  EXPECT_LT(xnx.memory_share / a100.memory_share, 7.0);
}

TEST(Roofline, A100OrdersOfMagnitudeFasterThanEdge) {
  const GpuFrameWorkload w = TypicalVqrfFrame();
  const double a100 = EvaluateVqrfOnGpu(NvidiaA100(), w).fps;
  const double onx = EvaluateVqrfOnGpu(JetsonOnx(), w).fps;
  const double xnx = EvaluateVqrfOnGpu(JetsonXnx(), w).fps;
  EXPECT_GT(a100, 10.0 * onx);
  EXPECT_GT(onx, xnx);  // ONX is the faster edge board
  EXPECT_LT(xnx, 2.0);  // VQRF on XNX renders at around one FPS
}

TEST(Roofline, MoreSamplesMoreTime) {
  GpuFrameWorkload w = TypicalVqrfFrame();
  const double base = EvaluateVqrfOnGpu(JetsonXnx(), w).total_time_s;
  w.samples *= 2;
  EXPECT_GT(EvaluateVqrfOnGpu(JetsonXnx(), w).total_time_s, base);
}

TEST(Roofline, BiggerWorkingSetMoreRestoreTime) {
  GpuFrameWorkload w = TypicalVqrfFrame();
  const double base = EvaluateVqrfOnGpu(JetsonXnx(), w).memory_time_s;
  w.restored_grid_bytes *= 2;
  EXPECT_GT(EvaluateVqrfOnGpu(JetsonXnx(), w).memory_time_s, base);
}

TEST(Roofline, CacheDiscountHelpsTensorTraffic) {
  PlatformSpec p = JetsonXnx();
  const GpuFrameWorkload w = TypicalVqrfFrame();
  const double base = EvaluateVqrfOnGpu(p, w).memory_time_s;
  p.tensor_cache_discount = 0.9;
  EXPECT_LT(EvaluateVqrfOnGpu(p, w).memory_time_s, base);
}

TEST(Roofline, EnergyUsesModulePower) {
  const GpuRooflineResult r =
      EvaluateVqrfOnGpu(JetsonXnx(), TypicalVqrfFrame());
  EXPECT_NEAR(r.energy_per_frame_j, 20.0 * r.total_time_s, 1e-9);
  EXPECT_NEAR(r.fps_per_watt, r.fps / 20.0, 1e-9);
}

TEST(Roofline, EmptyWorkloadThrows) {
  const GpuFrameWorkload empty;
  EXPECT_THROW(EvaluateVqrfOnGpu(JetsonXnx(), empty), SpnerfError);
}

TEST(Roofline, GatherEfficiencyMatters) {
  PlatformSpec p = JetsonXnx();
  const GpuFrameWorkload w = TypicalVqrfFrame();
  const double slow = EvaluateVqrfOnGpu(p, w).total_time_s;
  p.gather_efficiency *= 3.0;
  EXPECT_LT(EvaluateVqrfOnGpu(p, w).total_time_s, slow);
}

}  // namespace
}  // namespace spnerf
