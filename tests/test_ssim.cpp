#include "common/ssim.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/image_diff.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace spnerf {
namespace {

Image NoiseImage(int w, int h, u64 seed, float amplitude = 1.0f) {
  Image img(w, h);
  Rng rng(seed);
  for (auto& p : img.Pixels()) {
    p = {amplitude * rng.NextFloat(), amplitude * rng.NextFloat(),
         amplitude * rng.NextFloat()};
  }
  return img;
}

TEST(Ssim, IdenticalImagesScoreOne) {
  const Image img = NoiseImage(32, 32, 1);
  EXPECT_NEAR(Ssim(img, img), 1.0, 1e-12);
}

TEST(Ssim, SymmetricInArguments) {
  const Image a = NoiseImage(32, 32, 1);
  const Image b = NoiseImage(32, 32, 2);
  EXPECT_NEAR(Ssim(a, b), Ssim(b, a), 1e-12);
}

TEST(Ssim, BoundedByOne) {
  const Image a = NoiseImage(40, 24, 3);
  const Image b = NoiseImage(40, 24, 4);
  const double s = Ssim(a, b);
  EXPECT_LE(s, 1.0);
  EXPECT_GE(s, -1.0);
}

TEST(Ssim, MonotoneInNoiseLevel) {
  const Image ref = NoiseImage(32, 32, 5);
  auto perturbed = [&](float eps, u64 seed) {
    Image img = ref;
    Rng rng(seed);
    for (auto& p : img.Pixels()) {
      p.x = Clamp(p.x + rng.Uniform(-eps, eps), 0.f, 1.f);
      p.y = Clamp(p.y + rng.Uniform(-eps, eps), 0.f, 1.f);
      p.z = Clamp(p.z + rng.Uniform(-eps, eps), 0.f, 1.f);
    }
    return img;
  };
  const double small = Ssim(ref, perturbed(0.02f, 6));
  const double large = Ssim(ref, perturbed(0.3f, 6));
  EXPECT_GT(small, large);
  EXPECT_GT(small, 0.9);
}

TEST(Ssim, ConstantVsConstantDiffers) {
  const Image a(16, 16, {0.2f, 0.2f, 0.2f});
  const Image b(16, 16, {0.8f, 0.8f, 0.8f});
  EXPECT_LT(Ssim(a, b), 0.5);
  const Image c(16, 16, {0.2f, 0.2f, 0.2f});
  EXPECT_NEAR(Ssim(a, c), 1.0, 1e-12);
}

TEST(Ssim, StructureMattersBeyondMse) {
  // A globally brightened image keeps structure (high SSIM); shuffling the
  // same pixel values destroys it (low SSIM), even at similar MSE.
  const Image ref = NoiseImage(32, 32, 7, 0.5f);
  Image bright = ref;
  for (auto& p : bright.Pixels()) p += Vec3f{0.15f, 0.15f, 0.15f};
  Image shuffled = ref;
  Rng rng(8);
  std::shuffle(shuffled.Pixels().begin(), shuffled.Pixels().end(), rng);
  EXPECT_GT(Ssim(ref, bright), Ssim(ref, shuffled) + 0.2);
}

TEST(Ssim, ErrorsOnBadInput) {
  const Image a(16, 16), b(8, 16);
  EXPECT_THROW(Ssim(a, b), SpnerfError);
  const Image tiny(4, 4);
  EXPECT_THROW(Ssim(tiny, tiny), SpnerfError);  // smaller than window
  SsimParams p;
  p.window = 1;
  EXPECT_THROW(Ssim(a, a, p), SpnerfError);
}

TEST(ErrorHeatmap, ZeroErrorIsBlack) {
  const Image img = NoiseImage(8, 8, 9);
  const Image heat = ErrorHeatmap(img, img);
  for (const auto& p : heat.Pixels()) {
    EXPECT_EQ(p, (Vec3f{0.f, 0.f, 0.f}));
  }
}

TEST(ErrorHeatmap, LargeErrorIsBright) {
  const Image black(8, 8, {0.f, 0.f, 0.f});
  const Image white(8, 8, {1.f, 1.f, 1.f});
  const Image heat = ErrorHeatmap(black, white, 4.0f);
  for (const auto& p : heat.Pixels()) {
    EXPECT_EQ(p, (Vec3f{1.f, 1.f, 1.f}));  // saturated
  }
}

TEST(ErrorPixelFraction, CountsThresholdedPixels) {
  Image a(4, 4, {0.f, 0.f, 0.f});
  Image b = a;
  b.At(0, 0) = {1.f, 1.f, 1.f};
  b.At(1, 1) = {0.5f, 0.5f, 0.5f};
  EXPECT_NEAR(ErrorPixelFraction(a, b, 0.25f), 2.0 / 16.0, 1e-12);
  EXPECT_NEAR(ErrorPixelFraction(a, b, 0.75f), 1.0 / 16.0, 1e-12);
  EXPECT_EQ(ErrorPixelFraction(a, a, 0.01f), 0.0);
}

}  // namespace
}  // namespace spnerf
