#include "common/vec.hpp"

#include <gtest/gtest.h>

namespace spnerf {
namespace {

TEST(Vec3, BasicArithmetic) {
  const Vec3f a{1.f, 2.f, 3.f};
  const Vec3f b{4.f, 5.f, 6.f};
  EXPECT_EQ(a + b, (Vec3f{5.f, 7.f, 9.f}));
  EXPECT_EQ(b - a, (Vec3f{3.f, 3.f, 3.f}));
  EXPECT_EQ(a * 2.f, (Vec3f{2.f, 4.f, 6.f}));
  EXPECT_EQ(2.f * a, a * 2.f);
  EXPECT_EQ(a * b, (Vec3f{4.f, 10.f, 18.f}));
  EXPECT_EQ(b / 2.f, (Vec3f{2.f, 2.5f, 3.f}));
  EXPECT_EQ(-a, (Vec3f{-1.f, -2.f, -3.f}));
}

TEST(Vec3, DotAndCross) {
  const Vec3f x{1.f, 0.f, 0.f};
  const Vec3f y{0.f, 1.f, 0.f};
  const Vec3f z{0.f, 0.f, 1.f};
  EXPECT_EQ(x.Dot(y), 0.f);
  EXPECT_EQ(x.Cross(y), z);
  EXPECT_EQ(y.Cross(z), x);
  EXPECT_EQ(z.Cross(x), y);
  EXPECT_EQ(x.Cross(x), (Vec3f{0.f, 0.f, 0.f}));
  const Vec3f a{1.f, 2.f, 3.f};
  EXPECT_FLOAT_EQ(a.Dot(a), a.Norm2());
}

TEST(Vec3, NormAndNormalize) {
  const Vec3f v{3.f, 4.f, 0.f};
  EXPECT_FLOAT_EQ(v.Norm(), 5.f);
  const Vec3f n = v.Normalized();
  EXPECT_NEAR(n.Norm(), 1.f, 1e-6f);
  EXPECT_EQ((Vec3f{0.f, 0.f, 0.f}).Normalized(), (Vec3f{0.f, 0.f, 0.f}));
}

TEST(Vec3, IndexingMatchesMembers) {
  Vec3f v{7.f, 8.f, 9.f};
  EXPECT_EQ(v[0], 7.f);
  EXPECT_EQ(v[1], 8.f);
  EXPECT_EQ(v[2], 9.f);
  v[1] = 42.f;
  EXPECT_EQ(v.y, 42.f);
}

TEST(Vec3, MinMaxClampLerp) {
  const Vec3f a{1.f, 5.f, 3.f};
  const Vec3f b{2.f, 4.f, 3.f};
  EXPECT_EQ(Min(a, b), (Vec3f{1.f, 4.f, 3.f}));
  EXPECT_EQ(Max(a, b), (Vec3f{2.f, 5.f, 3.f}));
  EXPECT_EQ(Clamp(5.f, 0.f, 3.f), 3.f);
  EXPECT_EQ(Clamp(-1.f, 0.f, 3.f), 0.f);
  EXPECT_FLOAT_EQ(Lerp(0.f, 10.f, 0.25f), 2.5f);
  EXPECT_EQ(Clamp(Vec3f{-1.f, 9.f, 2.f}, Vec3f{0.f, 0.f, 0.f},
                  Vec3f{1.f, 1.f, 5.f}),
            (Vec3f{0.f, 1.f, 2.f}));
}

TEST(Vec3, MinMaxComponent) {
  const Vec3f v{3.f, -1.f, 2.f};
  EXPECT_EQ(v.MaxComponent(), 3.f);
  EXPECT_EQ(v.MinComponent(), -1.f);
  EXPECT_EQ(v.Abs(), (Vec3f{3.f, 1.f, 2.f}));
}

TEST(Vec3, FloorAndToFloat) {
  EXPECT_EQ(Floor(Vec3f{1.7f, -0.3f, 2.0f}), (Vec3i{1, -1, 2}));
  EXPECT_EQ(ToFloat(Vec3i{1, 2, 3}), (Vec3f{1.f, 2.f, 3.f}));
}

TEST(Aabb, ContainsAndExtent) {
  const Aabb box{{0.f, 0.f, 0.f}, {2.f, 4.f, 6.f}};
  EXPECT_TRUE(box.Contains({1.f, 1.f, 1.f}));
  EXPECT_TRUE(box.Contains({0.f, 0.f, 0.f}));  // boundary inclusive
  EXPECT_FALSE(box.Contains({-0.1f, 1.f, 1.f}));
  EXPECT_FALSE(box.Contains({1.f, 5.f, 1.f}));
  EXPECT_EQ(box.Extent(), (Vec3f{2.f, 4.f, 6.f}));
  EXPECT_EQ(box.Center(), (Vec3f{1.f, 2.f, 3.f}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3f v{1.f, 1.f, 1.f};
  v += Vec3f{1.f, 2.f, 3.f};
  EXPECT_EQ(v, (Vec3f{2.f, 3.f, 4.f}));
  v -= Vec3f{1.f, 1.f, 1.f};
  EXPECT_EQ(v, (Vec3f{1.f, 2.f, 3.f}));
  v *= 3.f;
  EXPECT_EQ(v, (Vec3f{3.f, 6.f, 9.f}));
}

TEST(Vec3i, IntegerOps) {
  const Vec3i a{1, 2, 3};
  const Vec3i b{3, 2, 1};
  EXPECT_EQ(a + b, (Vec3i{4, 4, 4}));
  EXPECT_EQ(a.Dot(b), 10);
}

}  // namespace
}  // namespace spnerf
