// Portable SIMD layer: runtime ISA detection and dispatch-path selection
// for the vectorised wavefront kernels (see render/wavefront_kernels.hpp).
//
// Design:
//   * Every kernel ships a scalar reference first — the in-tree loops in
//     mlp.cpp / field_source.cpp — and the SIMD paths are required to be
//     BIT-identical to it. Vectorisation is across the sample (lane)
//     dimension, so each sample's accumulation chain keeps the exact
//     scalar op order: no FMA contraction, no reassociation.
//   * The dispatch path is process-global, resolved once from the
//     SPNF_SIMD environment variable ("scalar" | "avx2" | "neon"); absent
//     or unparseable values resolve to the best host-supported path. A
//     forced path the host cannot run degrades to scalar (never silently
//     to a different vector ISA), so a forced run is always deterministic.
//   * Tests and benches flip the path programmatically via SetActivePath;
//     render workers only ever read it (one relaxed atomic load), so
//     flipping between renders is race-free.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace spnerf::simd {

/// Dispatchable instruction-set paths. kScalar is always available and is
/// the correctness oracle the vector paths are differentially tested
/// against.
enum class Path : u8 {
  kScalar = 0,
  kAvx2,  // x86-64 AVX2 + F16C (every AVX2 core ships F16C)
  kNeon,  // AArch64 Advanced SIMD (baseline on every ARMv8-A core)
};

/// Lower-case path name ("scalar", "avx2", "neon") — used in bench entry
/// names and the SPNF_SIMD override.
[[nodiscard]] const char* PathName(Path path);

/// Parses a path name; returns false (and leaves `out` untouched) for
/// unknown strings. Case-sensitive: the override contract is lower-case.
bool ParsePathName(std::string_view name, Path& out);

/// True when the *host CPU* can execute `path` (kScalar always can).
/// Whether kernels for it were compiled into this binary is the kernel
/// table's concern — a supported path with no compiled table simply runs
/// scalar.
[[nodiscard]] bool PathSupported(Path path);

/// The widest host-supported path (what auto-detection resolves to).
[[nodiscard]] Path BestSupportedPath();

/// The path the wavefront kernels currently dispatch on. First call
/// resolves the SPNF_SIMD override / auto-detection; later calls are one
/// relaxed atomic load.
[[nodiscard]] Path ActivePath();

/// Forces the dispatch path (tests, benches, operational override).
/// Requesting a path the host cannot run degrades to kScalar. Returns the
/// path actually activated.
Path SetActivePath(Path requested);

/// Pure resolution rule for an override string, exposed for tests:
/// nullptr/empty -> BestSupportedPath(); a parseable supported name -> that
/// path; a parseable unsupported name -> kScalar (graceful degradation);
/// garbage -> BestSupportedPath().
[[nodiscard]] Path ResolveOverride(const char* value);

/// Compiler tag for bench host metadata, e.g. "gcc-13.2" / "clang-17.0".
[[nodiscard]] const char* CompilerName();

}  // namespace spnerf::simd
