// Human-readable formatting of bytes / cycles / energy and the fixed unit
// constants used by the hardware models.
#pragma once

#include <cstdint>
#include <string>

namespace spnerf {

/// "1.5 KB", "21.3 MB", ... (binary prefixes, KB = 1024 B as in the paper's
/// SRAM sizing).
std::string FormatBytes(std::uint64_t bytes);

/// "123.4 K", "5.6 M" for plain counts.
std::string FormatCount(double count);

/// "3.21 mW", "1.2 W".
std::string FormatWatts(double watts);

/// "12.3 pJ", "4.5 uJ", "7.8 mJ".
std::string FormatJoules(double joules);

/// Fixed-point percentage "12.34%".
std::string FormatPercent(double fraction);

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

}  // namespace spnerf
