#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace spnerf {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace detail {
void LogLine(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[spnerf %-5s] %s\n", LevelName(level), msg.c_str());
}
}  // namespace detail

}  // namespace spnerf
