// Dispatch-path selection for the scheduling layers (ThreadPool work
// distribution, RenderService admission): lock-free bounded queues + pooled
// state, or the original mutex+condvar path kept in-tree as the
// differential oracle — the same scalar-reference-first rule the SIMD layer
// follows (common/simd.hpp).
//
//   * The mode is process-global, resolved once from the SPNF_DISPATCH
//     environment variable ("lockfree" | "locked"); absent or unparseable
//     values resolve to lock-free (the default fast path).
//   * Pools and services capture the mode AT CONSTRUCTION, so a running
//     scheduler never changes its internals mid-flight; tests and benches
//     flip the mode programmatically via SetActiveMode and construct fresh
//     instances per mode.
//   * Both modes are required to produce bit-identical results: images,
//     RenderStats, ServiceStats outcomes and dispatch ranking — the
//     serialization points (region completion order per dispatcher, the
//     service dispatcher's ranked pop) are mode-independent by design, and
//     the differential CI legs run the serve/parallel suites under both.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace spnerf::dispatch {

/// Scheduler implementations. kLocked is the original mutex+condvar path —
/// always available, and the correctness oracle kLockFree is differentially
/// tested against.
enum class Mode : u8 {
  kLocked = 0,
  kLockFree,
};

/// Lower-case mode name ("locked", "lockfree") — used in bench entry names
/// and the SPNF_DISPATCH override.
[[nodiscard]] const char* ModeName(Mode mode);

/// Parses a mode name; returns false (and leaves `out` untouched) for
/// unknown strings. Case-sensitive: the override contract is lower-case.
bool ParseModeName(std::string_view name, Mode& out);

/// The mode newly constructed schedulers adopt. First call resolves the
/// SPNF_DISPATCH override; later calls are one relaxed atomic load.
[[nodiscard]] Mode ActiveMode();

/// Forces the mode for schedulers constructed from now on (tests, benches,
/// operational override). Returns the previously active mode, so callers
/// can save/restore around a scoped override.
Mode SetActiveMode(Mode mode);

/// Pure resolution rule for an override string, exposed for tests:
/// nullptr/empty -> kLockFree (default); a parseable name -> that mode;
/// garbage -> kLockFree with a warning.
[[nodiscard]] Mode ResolveOverride(const char* value);

}  // namespace spnerf::dispatch
