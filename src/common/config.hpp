// Tiny key=value configuration store. Examples and benches accept overrides
// as `key=value` command-line tokens or config files with one pair per line
// ('#' starts a comment).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace spnerf {

class Config {
 public:
  Config() = default;

  /// Parses `key=value` tokens; ignores tokens without '='.
  static Config FromArgs(int argc, const char* const* argv);
  /// Parses a config file; throws SpnerfError on malformed lines.
  static Config FromFile(const std::string& path);

  void Set(const std::string& key, const std::string& value);
  [[nodiscard]] bool Has(const std::string& key) const;

  [[nodiscard]] std::string GetString(const std::string& key,
                                      const std::string& fallback) const;
  [[nodiscard]] int GetInt(const std::string& key, int fallback) const;
  [[nodiscard]] double GetDouble(const std::string& key, double fallback) const;
  [[nodiscard]] bool GetBool(const std::string& key, bool fallback) const;

  [[nodiscard]] std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace spnerf
