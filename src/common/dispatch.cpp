#include "common/dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace spnerf::dispatch {
namespace {

std::atomic<Mode>& ActiveSlot() {
  // First touch resolves the SPNF_DISPATCH override; the function-local
  // static makes the resolution thread-safe without an explicit once_flag.
  static std::atomic<Mode> active{
      ResolveOverride(std::getenv("SPNF_DISPATCH"))};
  return active;
}

}  // namespace

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kLocked: return "locked";
    case Mode::kLockFree: return "lockfree";
  }
  return "lockfree";
}

bool ParseModeName(std::string_view name, Mode& out) {
  if (name == "locked") {
    out = Mode::kLocked;
    return true;
  }
  if (name == "lockfree") {
    out = Mode::kLockFree;
    return true;
  }
  return false;
}

Mode ResolveOverride(const char* value) {
  if (value == nullptr || value[0] == '\0') return Mode::kLockFree;
  Mode requested;
  if (!ParseModeName(value, requested)) {
    std::fprintf(
        stderr,
        "[dispatch] unknown SPNF_DISPATCH value '%s'; using 'lockfree'\n",
        value);
    return Mode::kLockFree;
  }
  return requested;
}

Mode ActiveMode() { return ActiveSlot().load(std::memory_order_relaxed); }

Mode SetActiveMode(Mode mode) {
  return ActiveSlot().exchange(mode, std::memory_order_relaxed);
}

}  // namespace spnerf::dispatch
