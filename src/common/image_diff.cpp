#include "common/image_diff.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace spnerf {
namespace {

float PixelError(const Vec3f& a, const Vec3f& b) {
  return (std::fabs(a.x - b.x) + std::fabs(a.y - b.y) + std::fabs(a.z - b.z)) /
         3.0f;
}

/// Black -> red -> yellow -> white ramp.
Vec3f HeatColor(float t) {
  t = Clamp(t, 0.0f, 1.0f);
  if (t < 1.0f / 3.0f) return {3.0f * t, 0.0f, 0.0f};
  if (t < 2.0f / 3.0f) return {1.0f, 3.0f * t - 1.0f, 0.0f};
  return {1.0f, 1.0f, 3.0f * t - 2.0f};
}

}  // namespace

Image ErrorHeatmap(const Image& a, const Image& b, float gain) {
  SPNERF_CHECK_MSG(a.Width() == b.Width() && a.Height() == b.Height(),
                   "image size mismatch");
  Image out(a.Width(), a.Height());
  for (int y = 0; y < a.Height(); ++y) {
    for (int x = 0; x < a.Width(); ++x) {
      out.At(x, y) = HeatColor(gain * PixelError(a.At(x, y), b.At(x, y)));
    }
  }
  return out;
}

double ErrorPixelFraction(const Image& a, const Image& b, float threshold) {
  SPNERF_CHECK_MSG(a.Width() == b.Width() && a.Height() == b.Height(),
                   "image size mismatch");
  SPNERF_CHECK_MSG(!a.Empty(), "empty images");
  u64 bad = 0;
  for (int y = 0; y < a.Height(); ++y) {
    for (int x = 0; x < a.Width(); ++x) {
      if (PixelError(a.At(x, y), b.At(x, y)) > threshold) ++bad;
    }
  }
  return static_cast<double>(bad) /
         static_cast<double>(a.Pixels().size());
}

}  // namespace spnerf
