#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>

#include "common/error.hpp"

namespace spnerf {
namespace {

std::string Trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Config Config::FromArgs(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    cfg.Set(token.substr(0, eq), token.substr(eq + 1));
  }
  return cfg;
}

Config Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  SPNERF_CHECK_MSG(in.good(), "cannot open config file " << path);
  Config cfg;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    SPNERF_CHECK_MSG(eq != std::string::npos && eq > 0,
                     "malformed config line " << lineno << " in " << path);
    cfg.Set(Trim(line.substr(0, eq)), Trim(line.substr(eq + 1)));
  }
  return cfg;
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Config::GetInt(const std::string& key, int fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoi(it->second);
  } catch (const std::exception&) {
    throw SpnerfError("config key '" + key + "' is not an int: " + it->second);
  }
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw SpnerfError("config key '" + key + "' is not a double: " + it->second);
  }
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = Lower(it->second);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw SpnerfError("config key '" + key + "' is not a bool: " + it->second);
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [k, _] : values_) keys.push_back(k);
  return keys;
}

}  // namespace spnerf
