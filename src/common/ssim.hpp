// Structural similarity (SSIM) between two RGB images — the second quality
// metric customarily reported alongside PSNR in NeRF evaluations. Computed
// on the luma channel with the standard 8x8 sliding window and K1=0.01,
// K2=0.03 constants (Wang et al., 2004).
#pragma once

#include "common/image.hpp"

namespace spnerf {

struct SsimParams {
  int window = 8;        // square window side
  double k1 = 0.01;
  double k2 = 0.03;
  double dynamic_range = 1.0;  // images in [0,1]
};

/// Mean SSIM over all full windows. Images must match in size and be at
/// least one window large. Returns a value in [-1, 1]; 1 means identical.
double Ssim(const Image& a, const Image& b, const SsimParams& params = {});

}  // namespace spnerf
