// AArch64 NEON instance of the lane-ops concept (4 lanes). Advanced SIMD
// is architectural baseline on ARMv8-A, so no extra compile flags are
// needed; the TU still builds with -ffp-contract=off (project-wide for
// spnerf_core) so an intrinsic mul feeding an intrinsic add is never fused.
//
// NEON has no gather instruction: GatherMasked is per-lane scalar loads,
// which keeps the op's semantics (masked lanes read nothing) at the cost
// of serialising the loads — still a win because the surrounding weight
// arithmetic and accumulation chains run 4 lanes wide.
#pragma once

#if defined(__aarch64__)

#include <arm_neon.h>

#include "common/types.hpp"

namespace spnerf::simd {

struct LanesNeon {
  static constexpr int kWidth = 4;
  using F32 = float32x4_t;
  using I32 = int32x4_t;

  static F32 Zero() { return vdupq_n_f32(0.0f); }
  static F32 Set1(float v) { return vdupq_n_f32(v); }
  static F32 Load(const float* p) { return vld1q_f32(p); }
  static void Store(float* p, F32 v) { vst1q_f32(p, v); }
  static F32 LoadU(const float* p) { return vld1q_f32(p); }
  static void StoreU(float* p, F32 v) { vst1q_f32(p, v); }

  static F32 Add(F32 a, F32 b) { return vaddq_f32(a, b); }
  static F32 Sub(F32 a, F32 b) { return vsubq_f32(a, b); }
  static F32 Mul(F32 a, F32 b) { return vmulq_f32(a, b); }

  static F32 CmpEq(F32 a, F32 b) {
    return vreinterpretq_f32_u32(vceqq_f32(a, b));
  }
  static F32 CmpGt(F32 a, F32 b) {
    return vreinterpretq_f32_u32(vcgtq_f32(a, b));
  }
  static F32 Select(F32 mask, F32 a, F32 b) {
    return vbslq_f32(vreinterpretq_u32_f32(mask), a, b);
  }
  static F32 And(F32 a, F32 b) {
    return vreinterpretq_f32_u32(
        vandq_u32(vreinterpretq_u32_f32(a), vreinterpretq_u32_f32(b)));
  }
  static F32 AndNot(F32 mask, F32 v) {
    return vreinterpretq_f32_u32(
        vbicq_u32(vreinterpretq_u32_f32(v), vreinterpretq_u32_f32(mask)));
  }

  static I32 LoadI(const i32* p) { return vld1q_s32(p); }
  static F32 GatherMasked(const float* base, I32 idx, F32 mask) {
    const uint32x4_t m = vreinterpretq_u32_f32(mask);
    alignas(16) i32 ix[4];
    alignas(16) u32 mm[4];
    vst1q_s32(ix, idx);
    vst1q_u32(mm, m);
    alignas(16) float out[4];
    for (int lane = 0; lane < 4; ++lane) {
      out[lane] = mm[lane] ? base[ix[lane]] : 0.0f;
    }
    return vld1q_f32(out);
  }

  /// binary16 lane IO; AArch64 half<->float converts are IEEE RNE under the
  /// default FPCR, matching the software Half conversions on finite values.
  static F32 FromHalf(const u16* p) {
    return vcvt_f32_f16(vreinterpret_f16_u16(vld1_u16(p)));
  }
  static void ToHalf(u16* p, F32 v) {
    vst1_u16(p, vreinterpret_u16_f16(vcvt_f16_f32(v)));
  }
  static F32 RoundHalfValues(F32 v) {
    return vcvt_f32_f16(vcvt_f16_f32(v));
  }

  /// float(double(a)*double(b) + double(c)) per lane; see the AVX2 twin for
  /// why this reproduces Half::Fma's pre-round chain exactly.
  static F32 DoubleMulAdd(F32 a, F32 b, F32 c) {
    const float64x2_t alo = vcvt_f64_f32(vget_low_f32(a));
    const float64x2_t ahi = vcvt_high_f64_f32(a);
    const float64x2_t blo = vcvt_f64_f32(vget_low_f32(b));
    const float64x2_t bhi = vcvt_high_f64_f32(b);
    const float64x2_t clo = vcvt_f64_f32(vget_low_f32(c));
    const float64x2_t chi = vcvt_high_f64_f32(c);
    const float32x2_t rlo = vcvt_f32_f64(vaddq_f64(vmulq_f64(alo, blo), clo));
    const float32x2_t rhi = vcvt_f32_f64(vaddq_f64(vmulq_f64(ahi, bhi), chi));
    return vcombine_f32(rlo, rhi);
  }
};

}  // namespace spnerf::simd

#endif  // __aarch64__
