// Visual error analysis: per-pixel absolute-error heatmap between a render
// and its reference, for eyeballing where hash-collision artifacts land
// (surfaces for post-mask renders, empty space for pre-mask ones).
#pragma once

#include "common/image.hpp"

namespace spnerf {

/// Per-pixel mean |a-b| over RGB, color-mapped (black -> red -> yellow ->
/// white) with `gain` scaling before clamping to [0,1].
Image ErrorHeatmap(const Image& a, const Image& b, float gain = 4.0f);

/// Fraction of pixels whose mean absolute error exceeds `threshold`.
double ErrorPixelFraction(const Image& a, const Image& b, float threshold);

}  // namespace spnerf
