#include "common/ssim.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace spnerf {
namespace {

double Luma(const Vec3f& rgb) {
  return 0.2126 * rgb.x + 0.7152 * rgb.y + 0.0722 * rgb.z;
}

}  // namespace

double Ssim(const Image& a, const Image& b, const SsimParams& params) {
  SPNERF_CHECK_MSG(a.Width() == b.Width() && a.Height() == b.Height(),
                   "image size mismatch");
  SPNERF_CHECK_MSG(params.window > 1, "window must be > 1");
  SPNERF_CHECK_MSG(a.Width() >= params.window && a.Height() >= params.window,
                   "image smaller than the SSIM window");

  const int w = a.Width(), h = a.Height(), win = params.window;
  std::vector<double> la(static_cast<std::size_t>(w) * h);
  std::vector<double> lb(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      la[static_cast<std::size_t>(y) * w + x] = Luma(a.At(x, y));
      lb[static_cast<std::size_t>(y) * w + x] = Luma(b.At(x, y));
    }
  }

  const double c1 = (params.k1 * params.dynamic_range) *
                    (params.k1 * params.dynamic_range);
  const double c2 = (params.k2 * params.dynamic_range) *
                    (params.k2 * params.dynamic_range);
  const double n = static_cast<double>(win) * win;

  double total = 0.0;
  u64 windows = 0;
  for (int y0 = 0; y0 + win <= h; y0 += win) {
    for (int x0 = 0; x0 + win <= w; x0 += win) {
      double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
      for (int y = y0; y < y0 + win; ++y) {
        for (int x = x0; x < x0 + win; ++x) {
          const double va = la[static_cast<std::size_t>(y) * w + x];
          const double vb = lb[static_cast<std::size_t>(y) * w + x];
          sum_a += va;
          sum_b += vb;
          sum_aa += va * va;
          sum_bb += vb * vb;
          sum_ab += va * vb;
        }
      }
      const double mu_a = sum_a / n;
      const double mu_b = sum_b / n;
      const double var_a = sum_aa / n - mu_a * mu_a;
      const double var_b = sum_bb / n - mu_b * mu_b;
      const double cov = sum_ab / n - mu_a * mu_b;
      const double num = (2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2);
      const double den =
          (mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2);
      total += num / den;
      ++windows;
    }
  }
  return windows ? total / static_cast<double>(windows) : 1.0;
}

}  // namespace spnerf
