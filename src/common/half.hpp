// Software IEEE-754 binary16 ("half") implementation.
//
// The SpNeRF accelerator computes on-chip in FP16 (paper section IV-A), while
// the true voxel grid lives off-chip in INT8. Simulating the datapath with a
// faithful binary16 type lets the PSNR experiments account for on-chip
// quantisation exactly as the hardware would.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace spnerf {

/// IEEE-754 binary16 value. Conversions use round-to-nearest-even; arithmetic
/// is performed by converting to float, operating, and rounding back — the
/// same result a fused convert-compute-convert FP16 ALU produces for single
/// operations.
class Half {
 public:
  constexpr Half() = default;

  /// Converts from float with round-to-nearest-even.
  explicit Half(float f) : bits_(FromFloat(f)) {}

  /// Reinterprets raw binary16 bits.
  static constexpr Half FromBits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }
  [[nodiscard]] float ToFloat() const { return ToFloatImpl(bits_); }
  explicit operator float() const { return ToFloat(); }

  [[nodiscard]] constexpr bool IsNaN() const {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  [[nodiscard]] constexpr bool IsInf() const {
    return (bits_ & 0x7fffu) == 0x7c00u;
  }
  [[nodiscard]] constexpr bool IsZero() const {
    return (bits_ & 0x7fffu) == 0;
  }
  [[nodiscard]] constexpr bool SignBit() const { return (bits_ & 0x8000u) != 0; }

  friend Half operator+(Half a, Half b) {
    return Half(a.ToFloat() + b.ToFloat());
  }
  friend Half operator-(Half a, Half b) {
    return Half(a.ToFloat() - b.ToFloat());
  }
  friend Half operator*(Half a, Half b) {
    return Half(a.ToFloat() * b.ToFloat());
  }
  friend Half operator/(Half a, Half b) {
    return Half(a.ToFloat() / b.ToFloat());
  }
  friend Half operator-(Half a) { return FromBits(a.bits_ ^ 0x8000u); }

  Half& operator+=(Half o) { return *this = *this + o; }
  Half& operator-=(Half o) { return *this = *this - o; }
  Half& operator*=(Half o) { return *this = *this * o; }
  Half& operator/=(Half o) { return *this = *this / o; }

  friend bool operator==(Half a, Half b) {
    if (a.IsNaN() || b.IsNaN()) return false;
    if (a.IsZero() && b.IsZero()) return true;  // +0 == -0
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Half a, Half b) { return !(a == b); }
  friend bool operator<(Half a, Half b) { return a.ToFloat() < b.ToFloat(); }
  friend bool operator<=(Half a, Half b) { return a.ToFloat() <= b.ToFloat(); }
  friend bool operator>(Half a, Half b) { return a.ToFloat() > b.ToFloat(); }
  friend bool operator>=(Half a, Half b) { return a.ToFloat() >= b.ToFloat(); }

  /// Fused multiply-add with a single final rounding, matching an FP16 FMA
  /// unit (the TIU accumulates weighted color features this way).
  static Half Fma(Half a, Half b, Half c);

  /// Largest finite half: 65504.
  static constexpr Half Max() { return FromBits(0x7bffu); }
  /// Smallest positive normal: 2^-14.
  static constexpr Half MinNormal() { return FromBits(0x0400u); }
  /// Machine epsilon for binary16: 2^-10.
  static constexpr Half Epsilon() { return FromBits(0x1400u); }
  static constexpr Half Infinity() { return FromBits(0x7c00u); }
  static constexpr Half QuietNaN() { return FromBits(0x7e00u); }

 private:
  static std::uint16_t FromFloat(float f);
  static float ToFloatImpl(std::uint16_t bits);

  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, Half h);

/// Round-trips a float through binary16 precision.
inline float QuantizeToHalf(float f) { return Half(f).ToFloat(); }

}  // namespace spnerf
