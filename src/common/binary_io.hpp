// Minimal binary (de)serialization helpers: little-endian, fixed-width,
// explicit sizes. Used by the model save/load paths.
#pragma once

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace spnerf {

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host");

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  SPNERF_CHECK_MSG(out.good(), "binary write failed");
}

template <typename T>
T ReadPod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  SPNERF_CHECK_MSG(in.good(), "binary read failed (truncated stream?)");
  return value;
}

template <typename T>
void WriteVector(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<u64>(out, v.size());
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
  SPNERF_CHECK_MSG(out.good(), "binary vector write failed");
}

template <typename T>
std::vector<T> ReadVector(std::istream& in, u64 max_elements = (1ull << 32)) {
  static_assert(std::is_trivially_copyable_v<T>);
  const u64 n = ReadPod<u64>(in);
  SPNERF_CHECK_MSG(n <= max_elements, "vector length " << n
                                                       << " exceeds limit");
  std::vector<T> v(n);
  if (n) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
  }
  SPNERF_CHECK_MSG(in.good(), "binary vector read failed");
  return v;
}

/// Reads and validates a format magic word; `what` names the artifact in
/// the error message.
inline void ExpectMagic(std::istream& in, u32 magic, const char* what) {
  const u32 got = ReadPod<u32>(in);
  SPNERF_CHECK_MSG(got == magic, "not a " << what << " stream (bad magic 0x"
                                          << std::hex << got << ")");
}

/// Reads a format version and rejects anything but `expected` — older or
/// newer files fail cleanly instead of being misparsed.
inline u32 ExpectVersion(std::istream& in, u32 expected, const char* what) {
  const u32 version = ReadPod<u32>(in);
  SPNERF_CHECK_MSG(version == expected, "unsupported " << what << " version "
                                                       << version
                                                       << " (expected "
                                                       << expected << ")");
  return version;
}

inline void WriteString(std::ostream& out, const std::string& s) {
  WritePod<u64>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
  SPNERF_CHECK_MSG(out.good(), "binary string write failed");
}

inline std::string ReadString(std::istream& in, u64 max_len = 1u << 20) {
  const u64 n = ReadPod<u64>(in);
  SPNERF_CHECK_MSG(n <= max_len, "string length exceeds limit");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  SPNERF_CHECK_MSG(in.good(), "binary string read failed");
  return s;
}

}  // namespace spnerf
