// 64-byte-aligned allocation helpers for the SIMD hot paths. Wavefront
// scratch buffers (SoA sample fronts, lane-major MLP activations) are
// allocated through these so vector loads are always naturally aligned —
// never faulting on aligned-load instructions and never taking the
// split-cache-line penalty of an unaligned access.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/error.hpp"

namespace spnerf {

/// Cache-line / AVX-512-safe alignment for all SIMD scratch storage. One
/// constant everywhere so a future wider ISA only changes this line.
inline constexpr std::size_t kSimdAlignment = 64;

/// Minimal std::allocator replacement returning `Alignment`-aligned blocks.
/// Usable with any container; `AlignedVector` below is the common case.
template <typename T, std::size_t Alignment = kSimdAlignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment must not be weaker than the type's own");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    // Round the byte size up to a multiple of the alignment: both
    // std::aligned_alloc and the underlying OS interfaces require it, and
    // it guarantees whole trailing vector lanes are addressable.
    std::size_t bytes = n * sizeof(T);
    bytes = (bytes + Alignment - 1) & ~(Alignment - 1);
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned — the drop-in type for the
/// thread_local wavefront scratch buffers.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Bump arena over one 64-byte-aligned block: Reserve() once per batch,
/// then carve per-kernel scratch (lane-major activation planes, transposed
/// inputs) with zero per-allocation cost. Reset() recycles the block, so a
/// thread_local arena warms up to the largest batch a worker has seen and
/// never allocates again. Pointers are invalidated by Reserve(), not by
/// Reset(), so the pattern is: Reserve(total); Reset(); Alloc(); Alloc()...
class AlignedArena {
 public:
  AlignedArena() = default;

  /// Ensures capacity for `bytes` total (plus per-allocation alignment
  /// padding already being accounted by callers sizing in aligned chunks).
  void Reserve(std::size_t bytes) {
    if (bytes <= storage_.size()) return;
    storage_.clear();  // old block's contents are scratch; don't copy them
    storage_.resize(bytes);
    offset_ = 0;
  }

  /// Recycles the arena: previously carved spans become invalid scratch.
  void Reset() { offset_ = 0; }

  /// Carves `count` elements of T, 64-byte aligned. The arena must have
  /// been Reserve()d large enough; this never grows (growth would silently
  /// invalidate sibling spans carved from the same batch).
  template <typename T>
  [[nodiscard]] T* Alloc(std::size_t count) {
    static_assert(alignof(T) <= kSimdAlignment);
    const std::size_t bytes =
        (count * sizeof(T) + kSimdAlignment - 1) & ~(kSimdAlignment - 1);
    SPNERF_CHECK_MSG(offset_ + bytes <= storage_.size(),
                     "AlignedArena::Alloc past reserved capacity");
    T* p = reinterpret_cast<T*>(storage_.data() + offset_);
    offset_ += bytes;
    return p;
  }

  [[nodiscard]] std::size_t CapacityBytes() const { return storage_.size(); }

 private:
  AlignedVector<unsigned char> storage_;
  std::size_t offset_ = 0;
};

}  // namespace spnerf
