// Common fixed-width aliases and small helper types used across SpNeRF.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spnerf {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/// Linear index into a flattened voxel grid. 64-bit: grids up to 1024^3.
using VoxelIndex = u64;

/// Cycle count in the hardware simulator (1 GHz clock => 1 cycle = 1 ns).
using Cycle = u64;

/// Number of color-feature channels in the VQRF/DVGO voxel grid.
inline constexpr int kColorFeatureDim = 12;

/// Codebook rows (paper: "color codebook size of 4096 x 12").
inline constexpr int kCodebookSize = 4096;

/// Unified addressing width for codebook + true voxel grid (paper: 18-bit).
inline constexpr int kUnifiedIndexBits = 18;
inline constexpr u32 kUnifiedIndexSpace = 1u << kUnifiedIndexBits;  // 262144

/// MLP geometry (paper: 3 layers with channel sizes 128, 128, 3; input is the
/// 12-d interpolated color feature concatenated with the 27-d view-direction
/// frequency embedding => 39).
inline constexpr int kMlpInputDim = 39;
inline constexpr int kMlpHiddenDim = 128;
inline constexpr int kMlpOutputDim = 3;
inline constexpr int kMlpBatch = 64;  // paper: batch processing, batch size 64

}  // namespace spnerf
