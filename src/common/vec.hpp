// Small fixed-size vector types for geometry (positions, directions, colors).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace spnerf {

template <typename T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3() = default;
  constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}
  static constexpr Vec3 Splat(T v) { return {v, v, v}; }

  constexpr T& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const T& operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator*(Vec3 a, T s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend constexpr Vec3 operator*(T s, Vec3 a) { return a * s; }
  friend constexpr Vec3 operator*(Vec3 a, Vec3 b) {
    return {a.x * b.x, a.y * b.y, a.z * b.z};
  }
  friend constexpr Vec3 operator/(Vec3 a, T s) {
    return {a.x / s, a.y / s, a.z / s};
  }
  friend constexpr Vec3 operator-(Vec3 a) { return {-a.x, -a.y, -a.z}; }

  Vec3& operator+=(Vec3 o) { return *this = *this + o; }
  Vec3& operator-=(Vec3 o) { return *this = *this - o; }
  Vec3& operator*=(T s) { return *this = *this * s; }

  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  [[nodiscard]] constexpr T Dot(Vec3 o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 Cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] T Norm() const { return std::sqrt(Dot(*this)); }
  [[nodiscard]] constexpr T Norm2() const { return Dot(*this); }
  [[nodiscard]] Vec3 Normalized() const {
    const T n = Norm();
    return n > T(0) ? *this / n : Vec3{};
  }
  [[nodiscard]] constexpr Vec3 Abs() const {
    return {x < T(0) ? -x : x, y < T(0) ? -y : y, z < T(0) ? -z : z};
  }
  [[nodiscard]] constexpr T MaxComponent() const {
    return x > y ? (x > z ? x : z) : (y > z ? y : z);
  }
  [[nodiscard]] constexpr T MinComponent() const {
    return x < y ? (x < z ? x : z) : (y < z ? y : z);
  }

  friend std::ostream& operator<<(std::ostream& os, Vec3 v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

using Vec3f = Vec3<float>;
using Vec3d = Vec3<double>;
using Vec3i = Vec3<std::int32_t>;

template <typename T>
constexpr Vec3<T> Min(Vec3<T> a, Vec3<T> b) {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}
template <typename T>
constexpr Vec3<T> Max(Vec3<T> a, Vec3<T> b) {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}
template <typename T>
constexpr T Clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}
template <typename T>
constexpr Vec3<T> Clamp(Vec3<T> v, Vec3<T> lo, Vec3<T> hi) {
  return {Clamp(v.x, lo.x, hi.x), Clamp(v.y, lo.y, hi.y),
          Clamp(v.z, lo.z, hi.z)};
}
template <typename T>
constexpr T Lerp(T a, T b, T t) {
  return a + (b - a) * t;
}

inline Vec3i Floor(Vec3f v) {
  return {static_cast<std::int32_t>(std::floor(v.x)),
          static_cast<std::int32_t>(std::floor(v.y)),
          static_cast<std::int32_t>(std::floor(v.z))};
}

inline Vec3f ToFloat(Vec3i v) {
  return {static_cast<float>(v.x), static_cast<float>(v.y),
          static_cast<float>(v.z)};
}

/// Axis-aligned bounding box in world space.
struct Aabb {
  Vec3f lo{0.f, 0.f, 0.f};
  Vec3f hi{1.f, 1.f, 1.f};

  [[nodiscard]] Vec3f Extent() const { return hi - lo; }
  [[nodiscard]] Vec3f Center() const { return (lo + hi) * 0.5f; }
  [[nodiscard]] bool Contains(Vec3f p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }
};

}  // namespace spnerf
