#include "common/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace spnerf::simd {
namespace {

std::atomic<Path>& ActiveSlot() {
  // First touch resolves the SPNF_SIMD override; the function-local static
  // makes the resolution thread-safe without an explicit once_flag.
  static std::atomic<Path> active{ResolveOverride(std::getenv("SPNF_SIMD"))};
  return active;
}

}  // namespace

const char* PathName(Path path) {
  switch (path) {
    case Path::kScalar: return "scalar";
    case Path::kAvx2: return "avx2";
    case Path::kNeon: return "neon";
  }
  return "scalar";
}

bool ParsePathName(std::string_view name, Path& out) {
  if (name == "scalar") {
    out = Path::kScalar;
    return true;
  }
  if (name == "avx2") {
    out = Path::kAvx2;
    return true;
  }
  if (name == "neon") {
    out = Path::kNeon;
    return true;
  }
  return false;
}

bool PathSupported(Path path) {
  switch (path) {
    case Path::kScalar:
      return true;
    case Path::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      // F16C rides along: the fp16 kernels need the hardware half<->float
      // converts, and every AVX2-capable core has shipped them.
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
#else
      return false;
#endif
    case Path::kNeon:
#if defined(__aarch64__)
      return true;  // Advanced SIMD is architectural baseline on AArch64
#else
      return false;
#endif
  }
  return false;
}

Path BestSupportedPath() {
  if (PathSupported(Path::kAvx2)) return Path::kAvx2;
  if (PathSupported(Path::kNeon)) return Path::kNeon;
  return Path::kScalar;
}

Path ResolveOverride(const char* value) {
  if (value == nullptr || value[0] == '\0') return BestSupportedPath();
  Path requested;
  if (!ParsePathName(value, requested)) {
    std::fprintf(stderr,
                 "[simd] unknown SPNF_SIMD value '%s'; using detected '%s'\n",
                 value, PathName(BestSupportedPath()));
    return BestSupportedPath();
  }
  if (!PathSupported(requested)) {
    // A forced path the host cannot run degrades to the scalar oracle, not
    // to a different vector ISA — forced runs stay deterministic.
    std::fprintf(stderr,
                 "[simd] SPNF_SIMD=%s unsupported on this host; using scalar\n",
                 PathName(requested));
    return Path::kScalar;
  }
  return requested;
}

Path ActivePath() { return ActiveSlot().load(std::memory_order_relaxed); }

Path SetActivePath(Path requested) {
  const Path applied = PathSupported(requested) ? requested : Path::kScalar;
  ActiveSlot().store(applied, std::memory_order_relaxed);
  return applied;
}

const char* CompilerName() {
#define SPNF_STR2(x) #x
#define SPNF_STR(x) SPNF_STR2(x)
#if defined(__clang__)
  return "clang-" SPNF_STR(__clang_major__) "." SPNF_STR(__clang_minor__);
#elif defined(__GNUC__)
  return "gcc-" SPNF_STR(__GNUC__) "." SPNF_STR(__GNUC_MINOR__);
#else
  return "unknown";
#endif
#undef SPNF_STR
#undef SPNF_STR2
}

}  // namespace spnerf::simd
