// Bounded multi-producer multi-consumer ring queue (Vyukov sequence-number
// design). The dispatch-path workhorse: ThreadPool workers pull work tokens
// from one of these instead of scanning a region list under a mutex, and the
// RenderService admission fast path pushes requests through one instead of
// taking the service lock (see ARCHITECTURE.md, "Dispatch path").
//
// Properties:
//   * Fixed capacity (rounded up to a power of two), allocated once — the
//     queue never allocates after construction, so Try* calls are safe on
//     latency-critical paths and inside pool workers.
//   * Lock-free: TryPush/TryPop are a bounded CAS loop each; a full or empty
//     queue fails fast instead of blocking. No operation ever waits on
//     another thread being scheduled (obstruction-free progress per call;
//     lock-free across the queue: some thread always completes).
//   * Per-slot FIFO: elements leave in ticket order. Producers that race
//     still serialize through the enqueue ticket counter, so a
//     single-threaded producer observes strict FIFO.
//
// Memory-order contract (the whole correctness argument — every operation
// annotated):
//   * `sequence` (per cell) is the handshake. A cell's sequence == its slot
//     ticket means "free for the producer with that ticket"; ticket + 1
//     means "holds the value of that ticket, free for the consumer";
//     consumers then republish ticket + capacity for the next lap.
//   * Producers/consumers load `sequence` with acquire: it synchronizes with
//     the release store of the previous owner, making the cell's value (or
//     vacancy) visible before it is reused.
//   * The ticket counters advance by relaxed CAS — they only partition slots
//     between contenders; all value publication rides the sequence.
//   * After writing the value, the producer stores sequence with release
//     (publishes the value); after moving the value out, the consumer stores
//     sequence with release (publishes the vacancy).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace spnerf {

/// Cache-line stride used to keep the producer and consumer tickets off each
/// other's line (the classic false-sharing hazard of ring queues).
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class MpmcQueue {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2). The ring
  /// is allocated here and never again.
  explicit MpmcQueue(std::size_t capacity) {
    SPNERF_CHECK_MSG(capacity > 0, "mpmc queue capacity must be positive");
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      // relaxed: the constructor is single-threaded; publication to other
      // threads happens through whatever hands them the queue reference.
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Non-blocking push. Returns false when the queue is full at the observed
  /// ticket (the value is left untouched and can be retried or re-routed to
  /// a slow path).
  bool TryPush(T value) {
    Cell* cell;
    // relaxed: the ticket only stakes a claim; the cell handshake below
    // carries all ordering.
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      // acquire: pairs with the consumer's release of the vacancy — after
      // this read observes `seq == pos`, the cell's storage is ours.
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        // Free for this ticket: claim it. relaxed: see above.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        // The cell still holds a value a full lap behind: the queue is full.
        return false;
      } else {
        // Another producer claimed this ticket; chase the counter.
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    // release: publishes the value to the consumer whose acquire load of
    // `sequence` observes pos + 1.
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking pop. Returns false when the queue is empty at the observed
  /// ticket.
  bool TryPop(T& out) {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      // acquire: pairs with the producer's release — after this read
      // observes `seq == pos + 1`, the value write is visible.
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty: the producer of this ticket has not landed
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    // release: publishes the vacancy (and the moved-from storage) to the
    // producer that will reuse this cell one lap later.
    cell->sequence.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  /// Approximate emptiness: exact when no producer is mid-push. Used only
  /// for sleep/wake decisions (a waker may see a just-claimed-but-unwritten
  /// cell as empty; the push side's wake protocol covers that window).
  [[nodiscard]] bool Empty() const {
    const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    const Cell& cell = cells_[pos & mask_];
    return cell.sequence.load(std::memory_order_acquire) != pos + 1;
  }

  [[nodiscard]] std::size_t Capacity() const { return capacity_; }

  /// Approximate occupancy (racy by nature; for stats and tests only).
  [[nodiscard]] std::size_t ApproxSize() const {
    const std::size_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    const std::size_t head = dequeue_pos_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  // The two tickets live on their own cache lines: producers hammer one,
  // consumers the other, and neither invalidates the ring metadata above.
  alignas(kCacheLineSize) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace spnerf
