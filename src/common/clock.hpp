// Virtualizable monotonic clock for the serving layer. RenderService,
// ServiceStats and LoadGenerator take time through a ClockSource instead of
// calling std::chrono::steady_clock directly, so deadline-expiry and
// queue-timing tests can drive a ManualClock — advance virtual time past a
// deadline instead of sleeping real wall time (faster, and deflaked on
// loaded CI runners).
//
// Scope note: this is the SCHEDULING clock (deadlines, queue ages, arrival
// pacing). The tracing layer (obs/trace.hpp) deliberately keeps its own
// real monotonic clock, so spans still measure wall time when a test runs
// the service on manual time.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>

#include "common/types.hpp"

namespace spnerf {

/// Injectable monotonic time source. Implementations must be thread-safe:
/// the service reads the clock from submit threads, the dispatcher and
/// completion callbacks concurrently.
class ClockSource {
 public:
  using time_point = std::chrono::steady_clock::time_point;
  using duration = std::chrono::steady_clock::duration;

  virtual ~ClockSource() = default;

  [[nodiscard]] virtual time_point Now() const = 0;

  /// Returns no earlier than `tp` (in this clock's timeline). The system
  /// clock blocks; a manual clock jumps its own time forward instead.
  virtual void SleepUntil(time_point tp) = 0;
};

/// The real steady clock.
class SystemClockSource final : public ClockSource {
 public:
  [[nodiscard]] time_point Now() const override {
    return std::chrono::steady_clock::now();
  }
  void SleepUntil(time_point tp) override {
    std::this_thread::sleep_until(tp);
  }
};

/// The process-wide system clock — the default when no clock is injected.
inline ClockSource& SystemClock() {
  static SystemClockSource clock;
  return clock;
}

/// Test clock: time moves only when told to. Starts one hour past the
/// steady-clock epoch so deadline arithmetic (now - queue_age, now +
/// deadline) never underflows the time_point range.
class ManualClock final : public ClockSource {
 public:
  ManualClock()
      : now_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::hours(1))
                    .count()) {}

  [[nodiscard]] time_point Now() const override {
    return time_point(std::chrono::duration_cast<duration>(
        std::chrono::nanoseconds(now_ns_.load(std::memory_order_acquire))));
  }

  /// Jumps time forward to `tp`; never moves backward (monotonicity), so a
  /// SleepUntil racing an Advance keeps the later of the two times.
  void SleepUntil(time_point tp) override {
    const i64 target = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           tp.time_since_epoch())
                           .count();
    i64 seen = now_ns_.load(std::memory_order_relaxed);
    while (seen < target &&
           !now_ns_.compare_exchange_weak(seen, target,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
    }
  }

  void Advance(duration d) {
    now_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count(),
        std::memory_order_release);
  }

  void AdvanceMs(double ms) {
    now_ns_.fetch_add(static_cast<i64>(ms * 1e6), std::memory_order_release);
  }

 private:
  std::atomic<i64> now_ns_;
};

}  // namespace spnerf
