// Deterministic PRNG (xoshiro256**) used everywhere randomness is needed so
// every experiment in the repo is exactly reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace spnerf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Uniform in [lo, hi).
  float Uniform(float lo, float hi) { return lo + (hi - lo) * NextFloat(); }

  /// Uniform integer in [0, n).
  std::uint64_t NextBelow(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    if (n == 0) return 0;
    const std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  int UniformInt(int lo, int hi_inclusive) {
    return lo + static_cast<int>(
                    NextBelow(static_cast<std::uint64_t>(hi_inclusive - lo) + 1));
  }

  /// Standard normal via Box–Muller (no cached second value; cheap enough).
  float Normal() {
    float u1 = NextFloat();
    while (u1 <= 1e-12f) u1 = NextFloat();
    const float u2 = NextFloat();
    return std::sqrt(-2.0f * std::log(u1)) *
           std::cos(6.28318530717958647692f * u2);
  }

  // UniformRandomBitGenerator interface for <algorithm> shuffles.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return NextU64(); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace spnerf
