#include "common/parallel.hpp"

namespace spnerf {
namespace {

// The pool whose region this thread is currently executing (or whose worker
// it permanently is). Dispatching onto the same pool from such a thread runs
// inline instead of re-entering the busy fork-join machinery; dispatching
// onto a different, idle pool still fans out.
thread_local ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  worker_count_ = workers;
  threads_.reserve(workers - 1);
  for (unsigned i = 0; i + 1 < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop(unsigned pool_index) {
  tls_current_pool = this;
  std::uint64_t seen_generation = 0;
  for (;;) {
    Region region;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      region = region_;
    }
    // Slot 0 belongs to the dispatching thread. Threads beyond the region's
    // parallelism neither run nor count towards completion, so a small
    // region on a big pool is not gated on every thread waking up.
    const unsigned slot = pool_index + 1;
    if (slot < region.slots) {
      region.invoke(region.ctx, slot);
      std::lock_guard<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::Dispatch(void (*invoke)(void*, unsigned), void* ctx,
                          unsigned slots) {
  slots = std::min(std::max(slots, 1u), worker_count_);
  if (slots == 1 || threads_.empty() || tls_current_pool == this) {
    // Sequential fallback; nested regions on the same pool also land here
    // so they cannot clobber an in-flight fork-join. A different pool's
    // worker dispatching here still fans out.
    for (unsigned s = 0; s < slots; ++s) invoke(ctx, s);
    return;
  }
  // One region at a time: concurrent dispatchers queue up here.
  std::lock_guard<std::mutex> dispatch_lock(dispatch_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    region_ = Region{invoke, ctx, slots};
    ++generation_;
    outstanding_ = slots - 1;  // participating pool threads
  }
  work_ready_.notify_all();
  // Slot 0 runs on the dispatching thread, which may itself belong to
  // another pool; mark it as ours for the duration so same-pool nesting
  // stays inline, then restore.
  ThreadPool* const previous = tls_current_pool;
  tls_current_pool = this;
  invoke(ctx, 0);
  tls_current_pool = previous;
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [&] { return outstanding_ == 0; });
}

}  // namespace spnerf
