#include "common/parallel.hpp"

namespace spnerf {
namespace {

// The pool whose region this thread is currently executing (or whose worker
// it permanently is). Dispatching onto the same pool from such a thread runs
// inline instead of re-entering the busy scheduler; dispatching onto a
// different, idle pool still fans out.
thread_local ThreadPool* tls_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  worker_count_ = workers;
  threads_.reserve(workers - 1);
  for (unsigned i = 0; i + 1 < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopping_ = true;
  work_ready_.notify_all();
  // Drain every live region — blocking dispatchers finish on their own, and
  // detached completions must run before the workers join.
  region_done_.wait(lock, [this] { return live_regions_ == 0; });
  lock.unlock();
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::CloseLocked(Region* region) {
  for (auto it = open_.begin(); it != open_.end(); ++it) {
    if (*it == region) {
      open_.erase(it);
      return;
    }
  }
}

void ThreadPool::FinishSlot(Region* region, std::unique_lock<std::mutex>& lock) {
  if (--region->remaining != 0) return;
  --live_regions_;
  if (!region->detached) {
    region->done = true;
    region_done_.notify_all();
    return;
  }
  std::function<void()> completion = std::move(region->on_complete);
  region_done_.notify_all();  // the destructor waits on live_regions_
  lock.unlock();
  if (completion) {
    // Same contract as detached slot bodies: an escaped exception is
    // dropped, never propagated into the worker loop (where it would
    // std::terminate the process). Submitters guard their own callbacks.
    try {
      completion();
    } catch (...) {
    }
  }
  delete region;
  lock.lock();
}

void ThreadPool::WorkerLoop() {
  tls_current_pool = this;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stopping_ || !open_.empty(); });
    if (open_.empty()) {
      if (stopping_) return;  // queued regions drain even during shutdown
      continue;
    }
    // FIFO by region: the front region always has unclaimed slots (fully
    // claimed regions leave the queue immediately), so claiming is O(1).
    Region* region = open_.front();
    const unsigned slot = region->next_slot++;
    if (region->next_slot == region->slots) open_.pop_front();
    lock.unlock();
    // A throwing body must not unwind the region protocol (the published
    // Region would be freed mid-use) or escape the worker (terminate):
    // capture the first exception for the region's dispatcher to rethrow.
    std::exception_ptr error;
    try {
      region->Run(slot);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !region->error) region->error = error;
    FinishSlot(region, lock);
  }
}

void ThreadPool::Dispatch(void (*invoke)(void*, unsigned), void* ctx,
                          unsigned slots) {
  slots = std::min(std::max(slots, 1u), worker_count_);
  if (slots == 1 || threads_.empty() || tls_current_pool == this) {
    // Sequential fallback; nested regions on the same pool also land here
    // so they cannot re-enter the scheduler from inside a slot. A different
    // pool's worker dispatching here still fans out.
    for (unsigned s = 0; s < slots; ++s) invoke(ctx, s);
    return;
  }
  Region region;
  region.invoke = invoke;
  region.ctx = ctx;
  region.slots = slots;
  region.remaining = slots;

  std::unique_lock<std::mutex> lock(mutex_);
  open_.push_back(&region);
  ++live_regions_;
  work_ready_.notify_all();
  // The dispatching thread claims slots of its own region alongside the
  // workers: progress never depends on a free pool thread, and a second
  // dispatcher arriving while the pool is busy still drives its own region.
  // It may itself belong to another pool; mark it as ours for the duration
  // so same-pool nesting stays inline, then restore.
  ThreadPool* const previous = tls_current_pool;
  tls_current_pool = this;
  while (region.next_slot < region.slots) {
    const unsigned slot = region.next_slot++;
    if (region.next_slot == region.slots) CloseLocked(&region);
    lock.unlock();
    std::exception_ptr error;
    try {
      invoke(ctx, slot);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !region.error) region.error = error;
    FinishSlot(&region, lock);
  }
  tls_current_pool = previous;
  region_done_.wait(lock, [&region] { return region.done; });
  // Rethrow only after every slot finished: the Region leaves the scheduler
  // intact whichever thread threw.
  if (region.error) {
    std::exception_ptr error = region.error;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::Submit(unsigned slots, std::function<void(unsigned)> fn,
                        std::function<void()> on_complete) {
  slots = std::min(std::max(slots, 1u), worker_count_);
  std::unique_lock<std::mutex> lock(mutex_);
  if (threads_.empty() || stopping_) {
    // No workers to hand the region to (single-threaded pool, or shutdown
    // already draining): run it inline, completion included.
    lock.unlock();
    for (unsigned s = 0; s < slots; ++s) fn(s);
    if (on_complete) on_complete();
    return;
  }
  auto* region = new Region;
  region->body = std::move(fn);
  region->on_complete = std::move(on_complete);
  region->slots = slots;
  region->remaining = slots;
  region->detached = true;
  open_.push_back(region);
  ++live_regions_;
  work_ready_.notify_all();
}

}  // namespace spnerf
