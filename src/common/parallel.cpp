#include "common/parallel.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spnerf {
namespace {

// The pool whose region this thread is currently executing (or whose worker
// it permanently is). Dispatching onto the same pool from such a thread runs
// inline instead of re-entering the busy scheduler; dispatching onto a
// different, idle pool still fans out.
thread_local ThreadPool* tls_current_pool = nullptr;

// Idle iterations (each a yield) a worker burns before parking, and a
// blocking dispatcher burns before parking on region completion. Short: the
// point is to absorb the common "work arrives immediately" window, not to
// busy-wait through real gaps.
constexpr int kWorkerSpinIters = 64;
constexpr int kDispatchSpinIters = 128;

/// Pool-layer metric handles, resolved once per process. Every record site
/// is gated on obs::CountersEnabled() — the off level costs one relaxed
/// load per site.
struct PoolMetrics {
  obs::Counter& regions = obs::MetricsRegistry::Global().GetCounter(
      "pool/regions");
  obs::Counter& parks = obs::MetricsRegistry::Global().GetCounter(
      "pool/parks");
  obs::Counter& wakes = obs::MetricsRegistry::Global().GetCounter(
      "pool/wakes");
  obs::Counter& token_overflow = obs::MetricsRegistry::Global().GetCounter(
      "pool/token-overflow");
  obs::Gauge& tokens = obs::MetricsRegistry::Global().GetGauge(
      "pool/tokens");
};

PoolMetrics& Metrics() {
  static PoolMetrics metrics;
  return metrics;
}

}  // namespace

void ThreadPool::Region::ResetForDetached(std::function<void(unsigned)> fn,
                                          std::function<void()> completion,
                                          unsigned n) {
  invoke = nullptr;
  ctx = nullptr;
  body = std::move(fn);
  on_complete = std::move(completion);
  slots = n;
  next_slot.store(0, std::memory_order_relaxed);
  remaining.store(n, std::memory_order_relaxed);
  token_refs.store(0, std::memory_order_relaxed);
  detached = true;
  done = false;
  trace_start_ns = obs::FullTracingEnabled() ? obs::TraceNowNs() : 0;
  error_claimed.store(false, std::memory_order_relaxed);
  error = nullptr;
}

ThreadPool::ThreadPool(unsigned workers, std::size_t token_capacity)
    : mode_(dispatch::ActiveMode()), tokens_(token_capacity) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  worker_count_ = workers;
  threads_.reserve(workers - 1);
  for (unsigned i = 0; i + 1 < workers; ++i) {
    if (mode_ == dispatch::Mode::kLockFree) {
      threads_.emplace_back([this] { WorkerLoopLockFree(); });
    } else {
      threads_.emplace_back([this] { WorkerLoopLocked(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  if (mode_ == dispatch::Mode::kLockFree) {
    // seq_cst store: the Dekker partner of SubmitLockFree's live_regions_
    // increment — every later Submit observes it and runs inline, every
    // earlier Submit's region is covered by the live-region wait below.
    stopping_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      work_ready_.notify_all();
    }
    // Drain every live region — blocking dispatchers finish on their own,
    // and detached completions must run before the workers join. Workers
    // keep pulling tokens until the live count hits zero (their exit
    // condition), so queued regions drain even during shutdown.
    region_waiters_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      region_done_.wait(lock, [this] {
        return live_regions_.load(std::memory_order_seq_cst) == 0;
      });
    }
    region_waiters_.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      work_ready_.notify_all();  // parked workers wake to observe stopping_
    }
    for (std::thread& t : threads_) t.join();
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  stopping_.store(true, std::memory_order_relaxed);
  work_ready_.notify_all();
  // Drain every live region — blocking dispatchers finish on their own, and
  // detached completions must run before the workers join.
  region_done_.wait(lock, [this] {
    return live_regions_.load(std::memory_order_relaxed) == 0;
  });
  lock.unlock();
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::Dispatch(void (*invoke)(void*, unsigned), void* ctx,
                          unsigned slots) {
  slots = std::min(std::max(slots, 1u), worker_count_);
  if (slots == 1 || threads_.empty() || tls_current_pool == this) {
    // Sequential fallback; nested regions on the same pool also land here
    // so they cannot re-enter the scheduler from inside a slot. A different
    // pool's worker dispatching here still fans out.
    for (unsigned s = 0; s < slots; ++s) invoke(ctx, s);
    return;
  }
  if (mode_ == dispatch::Mode::kLockFree) {
    DispatchLockFree(invoke, ctx, slots);
  } else {
    DispatchLocked(invoke, ctx, slots);
  }
}

void ThreadPool::Submit(unsigned slots, std::function<void(unsigned)> fn,
                        std::function<void()> on_complete) {
  slots = std::min(std::max(slots, 1u), worker_count_);
  if (obs::CountersEnabled()) Metrics().regions.Add();
  if (mode_ == dispatch::Mode::kLockFree) {
    if (threads_.empty()) {
      // No workers to hand the region to: run it inline, completion
      // included — the sequential fallback.
      for (unsigned s = 0; s < slots; ++s) fn(s);
      if (on_complete) on_complete();
      return;
    }
    Region* region = region_pool_.Acquire();
    region->ResetForDetached(std::move(fn), std::move(on_complete), slots);
    SubmitLockFree(region);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (threads_.empty() || stopping_.load(std::memory_order_relaxed)) {
    // No workers to hand the region to (single-threaded pool, or shutdown
    // already draining): run it inline, completion included.
    lock.unlock();
    for (unsigned s = 0; s < slots; ++s) fn(s);
    if (on_complete) on_complete();
    return;
  }
  // The region pool is lock-free, so the mutex stays held: the stopping
  // check and the region's publication remain one atomic step, exactly as
  // in the original scheduler.
  Region* region = region_pool_.Acquire();
  region->ResetForDetached(std::move(fn), std::move(on_complete), slots);
  SubmitLocked(region);
}

// ---------------------------------------------------------------------------
// Locked mode: the original mutex+condvar scheduler, kept as the differential
// oracle for the lock-free path (SPNF_DISPATCH=locked). Region fields are
// atomics shared with the lock-free mode but every access here happens under
// mutex_, so relaxed loads/stores suffice — the mutex carries the ordering.
// ---------------------------------------------------------------------------

void ThreadPool::CloseLocked(Region* region) {
  for (auto it = open_.begin(); it != open_.end(); ++it) {
    if (*it == region) {
      open_.erase(it);
      return;
    }
  }
}

void ThreadPool::FinishSlotLocked(Region* region,
                                  std::unique_lock<std::mutex>& lock) {
  if (region->remaining.fetch_sub(1, std::memory_order_relaxed) != 1) return;
  live_regions_.fetch_sub(1, std::memory_order_relaxed);
  if (!region->detached) {
    region->done = true;
    region_done_.notify_all();
    return;
  }
  if (region->trace_start_ns != 0 && obs::FullTracingEnabled()) {
    obs::TraceEvent ev;
    ev.category = "pool";
    ev.name = "region-detached";
    ev.start_ns = region->trace_start_ns;
    ev.end_ns = obs::TraceNowNs();
    ev.AddArg("slots", static_cast<i64>(region->slots));
    obs::Emit(ev);
  }
  std::function<void()> completion = std::move(region->on_complete);
  region->body = nullptr;  // drop captured state before the record is pooled
  region_done_.notify_all();  // the destructor waits on live_regions_
  lock.unlock();
  if (completion) {
    // Same contract as detached slot bodies: an escaped exception is
    // dropped, never propagated into the worker loop (where it would
    // std::terminate the process). Submitters guard their own callbacks.
    try {
      completion();
    } catch (...) {
    }
  }
  region_pool_.Release(region);
  lock.lock();
}

void ThreadPool::WorkerLoopLocked() {
  tls_current_pool = this;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] {
      return stopping_.load(std::memory_order_relaxed) || !open_.empty();
    });
    if (open_.empty()) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;  // queued regions drain even during shutdown
    }
    // FIFO by region: the front region always has unclaimed slots (fully
    // claimed regions leave the queue immediately), so claiming is O(1).
    Region* region = open_.front();
    const unsigned slot =
        region->next_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot + 1 == region->slots) open_.pop_front();
    lock.unlock();
    // A throwing body must not unwind the region protocol (the published
    // Region would be freed mid-use) or escape the worker (terminate):
    // capture the first exception for the region's dispatcher to rethrow.
    std::exception_ptr error;
    try {
      region->Run(slot);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !region->error) region->error = error;
    FinishSlotLocked(region, lock);
  }
}

void ThreadPool::DispatchLocked(void (*invoke)(void*, unsigned), void* ctx,
                                unsigned slots) {
  if (obs::CountersEnabled()) Metrics().regions.Add();
  obs::TraceSpan region_span("pool", "region");
  region_span.AddArg("slots", static_cast<i64>(slots));
  Region region;
  region.invoke = invoke;
  region.ctx = ctx;
  region.slots = slots;
  region.remaining.store(slots, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock(mutex_);
  open_.push_back(&region);
  live_regions_.fetch_add(1, std::memory_order_relaxed);
  work_ready_.notify_all();
  // The dispatching thread claims slots of its own region alongside the
  // workers: progress never depends on a free pool thread, and a second
  // dispatcher arriving while the pool is busy still drives its own region.
  // It may itself belong to another pool; mark it as ours for the duration
  // so same-pool nesting stays inline, then restore.
  ThreadPool* const previous = tls_current_pool;
  tls_current_pool = this;
  while (region.next_slot.load(std::memory_order_relaxed) < region.slots) {
    const unsigned slot =
        region.next_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot >= region.slots) break;  // a worker claimed the last slot first
    if (slot + 1 == region.slots) CloseLocked(&region);
    lock.unlock();
    std::exception_ptr error;
    try {
      invoke(ctx, slot);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !region.error) region.error = error;
    FinishSlotLocked(&region, lock);
  }
  tls_current_pool = previous;
  region_done_.wait(lock, [&region] { return region.done; });
  // Rethrow only after every slot finished: the Region leaves the scheduler
  // intact whichever thread threw.
  if (region.error) {
    std::exception_ptr error = region.error;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::SubmitLocked(Region* region) {
  // Called with mutex_ held.
  open_.push_back(region);
  live_regions_.fetch_add(1, std::memory_order_relaxed);
  work_ready_.notify_all();
}

// ---------------------------------------------------------------------------
// Lock-free mode. Work distribution is a bounded Vyukov MPMC ring of region
// tokens plus per-region atomic claim cursors; the pool mutex survives only
// as the condvar guard of the two park/wake slow paths (idle workers on
// work_ready_, blocking dispatchers and the destructor on region_done_).
// Both slow paths use the eventcount discipline: the would-be sleeper
// announces itself with a seq_cst RMW, re-checks the condition, then parks
// under the mutex; the producer publishes its event, runs a seq_cst fence,
// and takes the lock to notify only when the announce counter is non-zero.
// Whichever side's seq_cst step comes first in the total order, the other
// side observes it — a lost wakeup would need the sleeper to miss the event
// AND the producer to miss the announcement, which seq_cst forbids.
// ---------------------------------------------------------------------------

void ThreadPool::PushTokens(Region* region, unsigned count) {
  if (count == 0) return;
  // relaxed: the refs travel to consumers through the ring's release/acquire
  // handshake; RMW coherence on token_refs rules out underflow.
  region->token_refs.fetch_add(count, std::memory_order_relaxed);
  if (obs::CountersEnabled()) Metrics().tokens.Add(static_cast<i64>(count));
  unsigned spilled = 0;
  for (unsigned i = 0; i < count; ++i) {
    if (!tokens_.TryPush(region)) ++spilled;
  }
  if (spilled > 0) {
    if (obs::CountersEnabled()) Metrics().token_overflow.Add(spilled);
    // Ring full: spill to the mutex-guarded overflow list. Notifying under
    // the same mutex the workers' wait predicate runs under makes this leg
    // lost-wakeup-free by construction (no eventcount subtlety needed).
    std::lock_guard<std::mutex> lock(mutex_);
    for (unsigned i = 0; i < spilled; ++i) overflow_.push_back(region);
    overflow_count_.fetch_add(spilled, std::memory_order_relaxed);
    work_ready_.notify_all();
  }
  // Eventcount producer side: publish (the pushes above), fence, then check
  // for sleepers. Locking to notify only when someone is parked is what
  // makes dispatch onto an awake pool lock-free.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    if (obs::CountersEnabled()) Metrics().wakes.Add();
    std::lock_guard<std::mutex> lock(mutex_);
    work_ready_.notify_all();
  }
}

bool ThreadPool::PopToken(Region*& region) {
  if (tokens_.TryPop(region)) return true;
  if (overflow_count_.load(std::memory_order_relaxed) != 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!overflow_.empty()) {
      region = overflow_.front();
      overflow_.pop_front();
      overflow_count_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::DropTokenRef(Region* region) {
  if (obs::CountersEnabled()) Metrics().tokens.Add(-1);
  // acq_rel: a blocking dispatcher's acquire load of token_refs == 0 must
  // order after every token consumer's accesses to the region.
  if (region->token_refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // This drop may be the last event the region's owner is waiting on
    // (all slots already finished, this token was stale).
    WakeRegionWaiters();
  }
}

void ThreadPool::ProcessToken(Region* region) {
  // relaxed: the cursor only partitions slots between claimants; every
  // cross-thread data handoff rides the completion latch below.
  const unsigned slot =
      region->next_slot.fetch_add(1, std::memory_order_relaxed);
  if (slot >= region->slots) {
    // Stale token: the dispatcher (and/or other workers) drained the cursor
    // before this token was popped. Only blocking regions produce stale
    // tokens — detached regions get exactly one token per slot.
    DropTokenRef(region);
    return;
  }
  // The claimed slot keeps `remaining` above zero, which keeps the region
  // alive past this point; the token ref itself can be returned already.
  DropTokenRef(region);
  std::exception_ptr error;
  try {
    region->Run(slot);
  } catch (...) {
    error = std::current_exception();
  }
  if (error &&
      !region->error_claimed.exchange(true, std::memory_order_relaxed)) {
    // Publication to the dispatcher rides the release decrement below.
    region->error = error;
  }
  FinishSlotLockFree(region);
}

void ThreadPool::FinishSlotLockFree(Region* region) {
  const bool detached = region->detached;  // read before the frame can die
  // acq_rel release-side: publishes this slot's body effects (and any error
  // store) to whoever observes the latch hit zero; acquire side: the last
  // decrementer inherits every other slot's effects before running the
  // completion. All decrements form one release sequence, so the observer
  // synchronizes with every slot, not just the last.
  if (region->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (!detached) {
    // Blocking region: the dispatcher owns the frame and may free it the
    // instant it observes the zero — no region access past the decrement.
    WakeRegionWaiters();
    return;
  }
  // Last slot of a detached region: every body has returned. Recycle the
  // record before the completion runs so a completion that re-submits can
  // reuse it.
  if (region->trace_start_ns != 0 && obs::FullTracingEnabled()) {
    // Submission-to-last-slot lifetime of the detached region; read fields
    // before Release hands the record to the next submitter.
    obs::TraceEvent ev;
    ev.category = "pool";
    ev.name = "region-detached";
    ev.start_ns = region->trace_start_ns;
    ev.end_ns = obs::TraceNowNs();
    ev.AddArg("slots", static_cast<i64>(region->slots));
    obs::Emit(ev);
  }
  std::function<void()> completion = std::move(region->on_complete);
  region->body = nullptr;  // drop captured state before the record is pooled
  region->on_complete = nullptr;
  region_pool_.Release(region);
  if (completion) {
    // Same contract as detached slot bodies: an escaped exception is
    // dropped, never propagated into the worker loop.
    try {
      completion();
    } catch (...) {
    }
  }
  DropLiveRegion();
}

void ThreadPool::DropLiveRegion() {
  // seq_cst: partners with the stopping_/live_regions_ handshakes in
  // SubmitLockFree, the destructor and the worker exit condition.
  if (live_regions_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    WakeRegionWaiters();
  }
}

void ThreadPool::WakeRegionWaiters() {
  // Eventcount producer side (see the mode banner above). The caller's
  // event — latch zero, refs zero or live-count zero — is already
  // published; a parked waiter re-checks its predicate under the mutex.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (region_waiters_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    region_done_.notify_all();
  }
}

void ThreadPool::WorkerLoopLockFree() {
  tls_current_pool = this;
  int idle = 0;
  Region* region = nullptr;
  for (;;) {
    if (PopToken(region)) {
      idle = 0;
      ProcessToken(region);
      continue;
    }
    if (++idle < kWorkerSpinIters) {
      std::this_thread::yield();
      continue;
    }
    idle = 0;
    // Eventcount consumer side: announce, fence, re-check, then park.
    if (obs::CountersEnabled()) Metrics().parks.Add();
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (PopToken(region)) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      ProcessToken(region);
      continue;
    }
    // Exit order matters: observe stopping_ first, then the live count —
    // any Submit that slipped past the shutdown Dekker has its live
    // increment seq_cst-before the stopping_ store, so a worker that reads
    // stopping_ == true and then live == 0 knows that region completed.
    if (stopping_.load(std::memory_order_seq_cst) &&
        live_regions_.load(std::memory_order_seq_cst) == 0) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) ||
               !tokens_.Empty() ||
               overflow_count_.load(std::memory_order_relaxed) != 0;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::DispatchLockFree(void (*invoke)(void*, unsigned), void* ctx,
                                  unsigned slots) {
  if (obs::CountersEnabled()) Metrics().regions.Add();
  obs::TraceSpan region_span("pool", "region");
  region_span.AddArg("slots", static_cast<i64>(slots));
  Region region;  // lives on the dispatcher's stack — see token_refs
  region.invoke = invoke;
  region.ctx = ctx;
  region.slots = slots;
  region.remaining.store(slots, std::memory_order_relaxed);
  live_regions_.fetch_add(1, std::memory_order_seq_cst);

  // One token per slot the workers may help with; the dispatcher drives its
  // own cursor directly, so tokens it races past simply go stale.
  PushTokens(&region, slots - 1);

  ThreadPool* const previous = tls_current_pool;
  tls_current_pool = this;
  for (;;) {
    const unsigned slot =
        region.next_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot >= slots) break;
    std::exception_ptr error;
    try {
      invoke(ctx, slot);
    } catch (...) {
      error = std::current_exception();
    }
    if (error &&
        !region.error_claimed.exchange(true, std::memory_order_relaxed)) {
      region.error = error;
    }
    // No wake needed: the only thread that ever waits on this region is
    // this one, and it is not waiting yet.
    region.remaining.fetch_sub(1, std::memory_order_acq_rel);
  }
  tls_current_pool = previous;

  // The frame may not leave this scope until every slot finished AND every
  // ring token naming it was consumed (stale tokens still dereference the
  // region when dropped).
  const auto quiescent = [&region] {
    return region.remaining.load(std::memory_order_acquire) == 0 &&
           region.token_refs.load(std::memory_order_acquire) == 0;
  };
  for (int spin = 0; spin < kDispatchSpinIters && !quiescent(); ++spin) {
    std::this_thread::yield();
  }
  if (!quiescent()) {
    // Eventcount consumer side, mirroring the worker park.
    region_waiters_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      region_done_.wait(lock, quiescent);
    }
    region_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
  DropLiveRegion();
  // Rethrow only after every slot finished: the Region leaves the scheduler
  // intact whichever thread threw.
  if (region.error) std::rethrow_exception(region.error);
}

void ThreadPool::SubmitLockFree(Region* region) {
  // Shutdown Dekker: expose the region in the live count with a seq_cst RMW
  // *before* checking stopping_. Either this increment is seq_cst-before
  // the destructor's stopping_ store — then the destructor's live-region
  // wait covers the region — or the store came first and the load below
  // observes it, and the region runs inline instead.
  live_regions_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    DropLiveRegion();
    std::function<void(unsigned)> body = std::move(region->body);
    std::function<void()> completion = std::move(region->on_complete);
    const unsigned slots = region->slots;
    region->body = nullptr;
    region->on_complete = nullptr;
    region_pool_.Release(region);
    for (unsigned s = 0; s < slots; ++s) body(s);
    if (completion) completion();
    return;
  }
  // Exactly one token per slot: detached regions have no dispatcher racing
  // the cursor, so no token ever goes stale and the last finisher can
  // recycle the record with nothing else referencing it.
  PushTokens(region, region->slots);
}

}  // namespace spnerf
