#include "common/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"

namespace spnerf {

namespace {
std::size_t ValidatedPixelCount(int width, int height) {
  SPNERF_CHECK_MSG(width > 0 && height > 0, "image dimensions must be positive");
  return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
}
}  // namespace

Image::Image(int width, int height, Vec3f fill)
    : width_(width),
      height_(height),
      pixels_(ValidatedPixelCount(width, height), fill) {}

Vec3f& Image::At(int x, int y) {
  SPNERF_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

const Vec3f& Image::At(int x, int y) const {
  SPNERF_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

void Image::WritePpm(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  SPNERF_CHECK_MSG(f != nullptr, "cannot open " << path << " for writing");
  std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
  std::vector<unsigned char> row(static_cast<std::size_t>(width_) * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Vec3f& p = pixels_[static_cast<std::size_t>(y) * width_ + x];
      for (int c = 0; c < 3; ++c) {
        const float v = Clamp(p[c], 0.0f, 1.0f);
        row[static_cast<std::size_t>(x) * 3 + c] =
            static_cast<unsigned char>(std::lround(v * 255.0f));
      }
    }
    std::fwrite(row.data(), 1, row.size(), f);
  }
  std::fclose(f);
}

double Mse(const Image& a, const Image& b) {
  SPNERF_CHECK_MSG(a.Width() == b.Width() && a.Height() == b.Height(),
                   "image size mismatch");
  SPNERF_CHECK_MSG(!a.Empty(), "MSE of empty images");
  double acc = 0.0;
  const auto& pa = a.Pixels();
  const auto& pb = b.Pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (int c = 0; c < 3; ++c) {
      const double d = static_cast<double>(pa[i][c]) - pb[i][c];
      acc += d * d;
    }
  }
  return acc / (static_cast<double>(pa.size()) * 3.0);
}

double Psnr(const Image& a, const Image& b) {
  const double mse = Mse(a, b);
  if (mse <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / mse);
}

Image UpsampleBilinear(const Image& src, int width, int height) {
  SPNERF_CHECK_MSG(!src.Empty(), "upsample of an empty image");
  if (src.Width() == width && src.Height() == height) return src;
  Image out(width, height);
  const float sx =
      static_cast<float>(src.Width()) / static_cast<float>(width);
  const float sy =
      static_cast<float>(src.Height()) / static_cast<float>(height);
  for (int y = 0; y < height; ++y) {
    // Half-pixel centers: destination center y+0.5 maps to source
    // coordinate (y+0.5)*sy, whose surrounding sample centers are at
    // integer+0.5. Edge-clamped so boundary pixels interpolate with
    // themselves.
    const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
    const float floor_y = std::floor(fy);
    const float wy = fy - floor_y;
    const int y0 = std::clamp(static_cast<int>(floor_y), 0, src.Height() - 1);
    const int y1 = std::clamp(static_cast<int>(floor_y) + 1, 0,
                              src.Height() - 1);
    for (int x = 0; x < width; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
      const float floor_x = std::floor(fx);
      const float wx = fx - floor_x;
      const int x0 =
          std::clamp(static_cast<int>(floor_x), 0, src.Width() - 1);
      const int x1 =
          std::clamp(static_cast<int>(floor_x) + 1, 0, src.Width() - 1);
      const Vec3f top =
          src.At(x0, y0) * (1.0f - wx) + src.At(x1, y0) * wx;
      const Vec3f bottom =
          src.At(x0, y1) * (1.0f - wx) + src.At(x1, y1) * wx;
      out.At(x, y) = top * (1.0f - wy) + bottom * wy;
    }
  }
  return out;
}

}  // namespace spnerf
