#include "common/image.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"

namespace spnerf {

namespace {
std::size_t ValidatedPixelCount(int width, int height) {
  SPNERF_CHECK_MSG(width > 0 && height > 0, "image dimensions must be positive");
  return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
}
}  // namespace

Image::Image(int width, int height, Vec3f fill)
    : width_(width),
      height_(height),
      pixels_(ValidatedPixelCount(width, height), fill) {}

Vec3f& Image::At(int x, int y) {
  SPNERF_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

const Vec3f& Image::At(int x, int y) const {
  SPNERF_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

void Image::WritePpm(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  SPNERF_CHECK_MSG(f != nullptr, "cannot open " << path << " for writing");
  std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
  std::vector<unsigned char> row(static_cast<std::size_t>(width_) * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Vec3f& p = pixels_[static_cast<std::size_t>(y) * width_ + x];
      for (int c = 0; c < 3; ++c) {
        const float v = Clamp(p[c], 0.0f, 1.0f);
        row[static_cast<std::size_t>(x) * 3 + c] =
            static_cast<unsigned char>(std::lround(v * 255.0f));
      }
    }
    std::fwrite(row.data(), 1, row.size(), f);
  }
  std::fclose(f);
}

double Mse(const Image& a, const Image& b) {
  SPNERF_CHECK_MSG(a.Width() == b.Width() && a.Height() == b.Height(),
                   "image size mismatch");
  SPNERF_CHECK_MSG(!a.Empty(), "MSE of empty images");
  double acc = 0.0;
  const auto& pa = a.Pixels();
  const auto& pb = b.Pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (int c = 0; c < 3; ++c) {
      const double d = static_cast<double>(pa[i][c]) - pb[i][c];
      acc += d * d;
    }
  }
  return acc / (static_cast<double>(pa.size()) * 3.0);
}

double Psnr(const Image& a, const Image& b) {
  const double mse = Mse(a, b);
  if (mse <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / mse);
}

}  // namespace spnerf
