#include "common/half.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <ostream>

namespace spnerf {
namespace {

std::uint32_t FloatBits(float f) { return std::bit_cast<std::uint32_t>(f); }
float BitsToFloat(std::uint32_t b) { return std::bit_cast<float>(b); }

}  // namespace

std::uint16_t Half::FromFloat(float f) {
  const std::uint32_t x = FloatBits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  // NaN / Inf.
  if (abs >= 0x7f800000u) {
    if (abs > 0x7f800000u) {
      // NaN: keep top mantissa bits, force quiet bit so payload is non-zero.
      std::uint32_t mant = (abs >> 13) & 0x03ffu;
      return static_cast<std::uint16_t>(sign | 0x7c00u | mant | 0x0200u);
    }
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  // Overflow to infinity: anything >= 2^16 - 2^4 (half max is 65504).
  if (abs >= 0x477ff000u + 0x1000u) {
    // >= 65520 rounds to inf; below handled by general path.
  }
  if (abs >= 0x47800000u) {  // >= 65536
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  // Normalised half range: exponent >= -14  <=>  abs >= 2^-14.
  if (abs >= 0x38800000u) {
    // Rebias exponent from 127 to 15 and round mantissa 23 -> 10 bits (RNE).
    const std::uint32_t rebased = abs - 0x38000000u;  // subtract (127-15)<<23
    std::uint32_t h = rebased >> 13;
    const std::uint32_t rem = rebased & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
    if (h >= 0x7c00u) return static_cast<std::uint16_t>(sign | 0x7c00u);
    return static_cast<std::uint16_t>(sign | h);
  }

  // Subnormal half range: 2^-24 <= |f| < 2^-14.
  if (abs >= 0x33000000u) {  // >= 2^-25 (half of smallest subnormal)
    const int exp = static_cast<int>(abs >> 23);
    const std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
    const int shift = 126 - exp;  // bits to drop (h = m * 2^(exp-126))
    std::uint32_t h = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (h & 1u))) ++h;
    return static_cast<std::uint16_t>(sign | h);
  }

  // Underflow to zero.
  return static_cast<std::uint16_t>(sign);
}

float Half::ToFloatImpl(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1fu;
  const std::uint32_t mant = bits & 0x03ffu;

  if (exp == 0) {
    if (mant == 0) return BitsToFloat(sign);  // +-0
    // Subnormal: normalise.
    int e = -1;
    std::uint32_t m = mant;
    while ((m & 0x0400u) == 0) {
      m <<= 1;
      ++e;
    }
    m &= 0x03ffu;
    const std::uint32_t fexp = static_cast<std::uint32_t>(127 - 15 - e);
    return BitsToFloat(sign | (fexp << 23) | (m << 13));
  }
  if (exp == 0x1fu) {
    return BitsToFloat(sign | 0x7f800000u | (mant << 13));  // Inf / NaN
  }
  return BitsToFloat(sign | ((exp + 112u) << 23) | (mant << 13));
}

Half Half::Fma(Half a, Half b, Half c) {
  // float has enough precision to represent any half*half product exactly
  // (11-bit mantissas multiply into <=22 bits), and the sum of that with a
  // half is exact in double; round once at the end.
  const double r = static_cast<double>(a.ToFloat()) * b.ToFloat() + c.ToFloat();
  return Half(static_cast<float>(r));
}

std::ostream& operator<<(std::ostream& os, Half h) {
  return os << h.ToFloat();
}

}  // namespace spnerf
