// Streaming statistics helpers used by the profiler, the cycle simulator and
// the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace spnerf {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x);

  [[nodiscard]] std::size_t Count() const { return n_; }
  [[nodiscard]] double Mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double Variance() const;  // population variance
  [[nodiscard]] double StdDev() const;
  [[nodiscard]] double Min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double Max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double Sum() const { return sum_; }

  void Merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  [[nodiscard]] std::size_t BucketCount() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t BucketValue(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] double BucketLow(std::size_t i) const;
  [[nodiscard]] std::uint64_t Total() const { return total_; }
  /// Linear-interpolated quantile in [0,1].
  [[nodiscard]] double Quantile(double q) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Named monotonically increasing counters, e.g. simulator event counts.
class CounterSet {
 public:
  void Inc(const std::string& name, std::uint64_t by = 1) {
    counters_[name] += by;
  }
  [[nodiscard]] std::uint64_t Get(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& All() const {
    return counters_;
  }
  void Clear() { counters_.clear(); }
  void Merge(const CounterSet& other);

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace spnerf
