// Fixed-slab recycling object pool with a lock-free freelist. The dispatch
// path's answer to per-request heap allocation: job/batch/request state is
// acquired from a slab that was allocated once, and released back without
// ever touching the allocator on the hot path.
//
// Design:
//   * One contiguous slab of `capacity` default-constructed objects,
//     allocated at pool construction and freed at destruction. Objects are
//     RECYCLED, not destroyed: Acquire hands out a T* in whatever state the
//     previous user left it (callers reset the fields they use — which is
//     what lets a pooled std::vector member keep its grown capacity across
//     uses, the actual allocation win).
//   * The freelist is a Vyukov MPMC ring of slot pointers (common/
//     mpmc_queue.hpp), so Acquire/Release are lock-free from any thread and
//     ABA-safe by construction (a pointer re-enters the ring only after its
//     slot was released, and ring cells handshake per lap).
//   * Exhaustion degrades gracefully: Acquire() falls back to `new T()` and
//     Release() routes by address — slab pointers return to the freelist,
//     heap pointers are deleted. A saturated pool gets slower, never wrong.
//     TryAcquire() exposes the no-fallback flavor for callers that want to
//     shed instead of allocate.
//
// Lifetime contract: the pool must outlive every object it handed out.
// Destroying the pool destroys the slab (all slab objects, acquired or
// not); outstanding heap-fallback objects still route through Release.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <typeinfo>

#include "common/error.hpp"
#include "common/mpmc_queue.hpp"

namespace spnerf {

template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(std::size_t capacity)
      : slab_(std::make_unique<T[]>(capacity)),
        capacity_(capacity),
        free_(capacity) {
    SPNERF_CHECK_MSG(capacity > 0, "object pool capacity must be positive");
    for (std::size_t i = 0; i < capacity; ++i) {
      const bool pushed = free_.TryPush(&slab_[i]);
      SPNERF_CHECK_MSG(pushed, "object pool freelist must hold the slab");
    }
  }

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Lock-free; nullptr when the slab is exhausted. The object is in the
  /// state its previous user left it — reset what you use.
  [[nodiscard]] T* TryAcquire() {
    T* p = nullptr;
    return free_.TryPop(p) ? p : nullptr;
  }

  /// Like TryAcquire, but falls back to the heap when the slab is exhausted
  /// (graceful degradation — never nullptr). Release() routes either kind.
  [[nodiscard]] T* Acquire() {
    if (T* p = TryAcquire()) return p;
    heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return new T();
  }

  /// Returns `p` to the freelist (slab pointers) or deletes it (heap
  /// fallbacks). Lock-free for slab pointers; safe from any thread.
  void Release(T* p) {
    if (p == nullptr) return;
    if (!Owns(p)) {
      delete p;
      return;
    }
    const bool pushed = free_.TryPush(p);
    // The freelist ring holds exactly `capacity_` slots and only slab
    // pointers enter it, at most once each (they are owned in between), so
    // a push can only fail on a double release.
    SPNERF_CHECK_MSG(pushed,
                     "object pool double release: " << typeid(T).name());
  }

  /// True when `p` points into the slab (as opposed to a heap fallback).
  [[nodiscard]] bool Owns(const T* p) const {
    return p >= slab_.get() && p < slab_.get() + capacity_;
  }

  [[nodiscard]] std::size_t Capacity() const { return capacity_; }

  /// Number of Acquire() calls that fell back to the heap (observability
  /// for tests and benches: a hot pool sized right reports 0).
  [[nodiscard]] std::size_t HeapFallbacks() const {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<T[]> slab_;
  std::size_t capacity_ = 0;
  MpmcQueue<T*> free_;
  std::atomic<std::size_t> heap_fallbacks_{0};
};

}  // namespace spnerf
