// Minimal move-to-front LRU list shared by the asset cache and the pipeline
// repository. Not thread-safe: callers hold their own lock around every
// call (both users already serialise access through a member mutex).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace spnerf {

/// Bounded key -> value store with least-recently-used eviction. A linear
/// scan is deliberate: capacities are small (tens of live assets), and the
/// values are shared_ptrs whose copies are cheap.
template <typename V>
class LruList {
 public:
  explicit LruList(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Returns the value for `key` (moving the entry to the front), or
  /// nullptr if absent. The pointer is invalidated by the next mutation.
  V* Find(const std::string& key) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].first != key) continue;
      std::pair<std::string, V> hit = std::move(entries_[i]);
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      entries_.insert(entries_.begin(), std::move(hit));
      return &entries_.front().second;
    }
    return nullptr;
  }

  /// Inserts at the front, evicting the least-recently-used entry past
  /// capacity. A duplicate key keeps the incumbent (the racing builder
  /// that inserted first wins; both values are identical by key).
  void Insert(const std::string& key, V value) {
    for (const auto& e : entries_) {
      if (e.first == key) return;
    }
    entries_.insert(entries_.begin(), {key, std::move(value)});
    if (entries_.size() > capacity_) entries_.pop_back();
  }

  void Clear() { entries_.clear(); }

  [[nodiscard]] std::size_t Size() const { return entries_.size(); }

 private:
  std::size_t capacity_;
  std::vector<std::pair<std::string, V>> entries_;
};

}  // namespace spnerf
