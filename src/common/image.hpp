// RGB float image with PSNR/MSE metrics and PPM export (the repo has no
// external image dependencies; PPM is enough to eyeball renders).
#pragma once

#include <string>
#include <vector>

#include "common/vec.hpp"

namespace spnerf {

class Image {
 public:
  Image() = default;
  Image(int width, int height, Vec3f fill = {0.f, 0.f, 0.f});

  [[nodiscard]] int Width() const { return width_; }
  [[nodiscard]] int Height() const { return height_; }
  [[nodiscard]] bool Empty() const { return pixels_.empty(); }

  [[nodiscard]] Vec3f& At(int x, int y);
  [[nodiscard]] const Vec3f& At(int x, int y) const;

  [[nodiscard]] const std::vector<Vec3f>& Pixels() const { return pixels_; }
  [[nodiscard]] std::vector<Vec3f>& Pixels() { return pixels_; }

  /// Writes an 8-bit binary PPM (P6). Values are clamped to [0,1].
  void WritePpm(const std::string& path) const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Vec3f> pixels_;
};

/// Mean squared error over all channels. Images must match in size.
double Mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB for images in [0,1].
/// Returns +inf (represented as 99.0 dB cap optionally by callers) when MSE=0.
double Psnr(const Image& a, const Image& b);

/// Bilinear upsample (or general resample) of `src` to `width` x `height`,
/// half-pixel-center mapping with edge clamping. Deterministic by
/// construction — fixed-order pure float arithmetic, no threading — so the
/// quality ladder's reduced-resolution rungs produce byte-identical output
/// on every worker count, SIMD path and dispatch mode. Matching dims return
/// a plain copy (pixels byte-identical to `src`).
Image UpsampleBilinear(const Image& src, int width, int height);

}  // namespace spnerf
