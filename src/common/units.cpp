#include "common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace spnerf {
namespace {

std::string FormatScaled(double value, const char* const* suffixes,
                         std::size_t n_suffixes, double base) {
  std::size_t i = 0;
  double v = value;
  while (std::fabs(v) >= base && i + 1 < n_suffixes) {
    v /= base;
    ++i;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffixes[i]);
  return buf;
}

}  // namespace

std::string FormatBytes(std::uint64_t bytes) {
  static const char* kSuffix[] = {"B", "KB", "MB", "GB", "TB"};
  return FormatScaled(static_cast<double>(bytes), kSuffix, 5, 1024.0);
}

std::string FormatCount(double count) {
  static const char* kSuffix[] = {"", "K", "M", "G", "T"};
  return FormatScaled(count, kSuffix, 5, 1000.0);
}

std::string FormatWatts(double watts) {
  char buf[64];
  if (std::fabs(watts) < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f uW", watts * 1e6);
  } else if (std::fabs(watts) < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f mW", watts * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f W", watts);
  }
  return buf;
}

std::string FormatJoules(double joules) {
  char buf[64];
  const double a = std::fabs(joules);
  if (a < 1e-9) {
    std::snprintf(buf, sizeof(buf), "%.2f pJ", joules * 1e12);
  } else if (a < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.2f nJ", joules * 1e9);
  } else if (a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f uJ", joules * 1e6);
  } else if (a < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f mJ", joules * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f J", joules);
  }
  return buf;
}

std::string FormatPercent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

}  // namespace spnerf
