#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace spnerf {

void RunningStats::Add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::Variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  SPNERF_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  SPNERF_CHECK_MSG(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::Add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::BucketLow(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return BucketLow(i) + frac * width;
    }
    cum = next;
  }
  return hi_;
}

std::uint64_t CounterSet::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterSet::Merge(const CounterSet& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
}

}  // namespace spnerf
