// Minimal leveled logger writing to stderr. Benches/examples keep stdout for
// result tables.
#pragma once

#include <sstream>
#include <string>

namespace spnerf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {
void LogLine(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace spnerf

#define SPNERF_LOG(level)                                      \
  if (static_cast<int>(::spnerf::LogLevel::level) <            \
      static_cast<int>(::spnerf::GetLogLevel())) {             \
  } else                                                       \
    ::spnerf::detail::LogMessage(::spnerf::LogLevel::level)

#define SPNERF_LOG_DEBUG SPNERF_LOG(kDebug)
#define SPNERF_LOG_INFO SPNERF_LOG(kInfo)
#define SPNERF_LOG_WARN SPNERF_LOG(kWarn)
#define SPNERF_LOG_ERROR SPNERF_LOG(kError)
