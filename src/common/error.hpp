// Lightweight runtime check macros. Library invariants throw; they never
// abort the process, so callers (tests, tools) can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spnerf {

/// Thrown when a library precondition or invariant is violated.
class SpnerfError : public std::runtime_error {
 public:
  explicit SpnerfError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void ThrowCheckFailure(const char* cond, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "SPNERF_CHECK failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw SpnerfError(os.str());
}
}  // namespace detail

}  // namespace spnerf

#define SPNERF_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::spnerf::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__, "");   \
    }                                                                       \
  } while (false)

#define SPNERF_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream spnerf_os_;                                        \
      spnerf_os_ << msg;                                                    \
      ::spnerf::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__,        \
                                          spnerf_os_.str());                \
    }                                                                       \
  } while (false)
