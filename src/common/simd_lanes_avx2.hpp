// AVX2 + F16C instance of the lane-ops concept the generic wavefront
// kernels (render/wavefront_kernels_impl.inl) are written against. Only
// include from a translation unit compiled with -mavx2 -mf16c
// -ffp-contract=off; the contract-off flag is part of the correctness
// contract (an intrinsic mul feeding an intrinsic add must never be fused
// into an FMA, or lanes would diverge from the scalar reference bits).
//
// Every op is a single IEEE-754 operation per lane in the same precision
// the scalar reference uses, so a lane-major kernel built from these ops
// reproduces the scalar per-sample chain bit-for-bit.
#pragma once

#include <immintrin.h>

#include "common/types.hpp"

namespace spnerf::simd {

struct LanesAvx2 {
  static constexpr int kWidth = 8;
  using F32 = __m256;
  using I32 = __m256i;

  static F32 Zero() { return _mm256_setzero_ps(); }
  static F32 Set1(float v) { return _mm256_set1_ps(v); }
  /// Aligned load/store: the kernels only touch 64-byte-aligned scratch
  /// (AlignedVector / AlignedArena / alignas stack arrays) at lane-multiple
  /// offsets, so the aligned forms are safe and never split a cache line.
  static F32 Load(const float* p) { return _mm256_load_ps(p); }
  static void Store(float* p, F32 v) { _mm256_store_ps(p, v); }
  static F32 LoadU(const float* p) { return _mm256_loadu_ps(p); }
  static void StoreU(float* p, F32 v) { _mm256_storeu_ps(p, v); }

  static F32 Add(F32 a, F32 b) { return _mm256_add_ps(a, b); }
  static F32 Sub(F32 a, F32 b) { return _mm256_sub_ps(a, b); }
  static F32 Mul(F32 a, F32 b) { return _mm256_mul_ps(a, b); }

  /// Ordered compares producing all-ones/all-zero float masks.
  static F32 CmpEq(F32 a, F32 b) { return _mm256_cmp_ps(a, b, _CMP_EQ_OQ); }
  static F32 CmpGt(F32 a, F32 b) { return _mm256_cmp_ps(a, b, _CMP_GT_OQ); }
  /// mask ? a : b, bit-selecting whole lanes (mask lanes are all-ones/0).
  static F32 Select(F32 mask, F32 a, F32 b) {
    return _mm256_blendv_ps(b, a, mask);
  }
  static F32 And(F32 a, F32 b) { return _mm256_and_ps(a, b); }
  /// v with the lanes selected by `mask` cleared to +0.
  static F32 AndNot(F32 mask, F32 v) { return _mm256_andnot_ps(mask, v); }

  static I32 LoadI(const i32* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  /// Gather of base[idx[lane]] where mask is set; masked-off lanes read
  /// nothing (no fault even on wild indices) and produce +0.
  static F32 GatherMasked(const float* base, I32 idx, F32 mask) {
    return _mm256_mask_i32gather_ps(_mm256_setzero_ps(), base, idx, mask, 4);
  }

  /// binary16 lane IO. Hardware F16C converts are IEEE round-to-nearest-
  /// even in both directions (and ignore MXCSR FTZ/DAZ), matching the
  /// software Half conversions bit-for-bit on all finite values and zeros.
  static F32 FromHalf(const u16* p) {
    return _mm256_cvtph_ps(_mm_load_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static void ToHalf(u16* p, F32 v) {
    _mm_store_si128(reinterpret_cast<__m128i*>(p),
                    _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT |
                                           _MM_FROUND_NO_EXC));
  }
  /// Quantizes float lanes through binary16 (value of Half(x).ToFloat()).
  static F32 RoundHalfValues(F32 v) {
    return _mm256_cvtph_ps(
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }

  /// float(double(a)*double(b) + double(c)) per lane — the exact op chain
  /// of Half::Fma before its final round-to-half (float->double converts
  /// are exact; the double multiply, double add and double->float round
  /// each match the scalar code's single IEEE operations).
  static F32 DoubleMulAdd(F32 a, F32 b, F32 c) {
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(a));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(a, 1));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(b));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(b, 1));
    const __m256d clo = _mm256_cvtps_pd(_mm256_castps256_ps128(c));
    const __m256d chi = _mm256_cvtps_pd(_mm256_extractf128_ps(c, 1));
    const __m128 rlo =
        _mm256_cvtpd_ps(_mm256_add_pd(_mm256_mul_pd(alo, blo), clo));
    const __m128 rhi =
        _mm256_cvtpd_ps(_mm256_add_pd(_mm256_mul_pd(ahi, bhi), chi));
    return _mm256_set_m128(rhi, rlo);
  }
};

}  // namespace spnerf::simd
