// Bounded single-producer single-consumer ring queue. The cheapest possible
// handoff between exactly two threads: one plain index per side, one
// acquire/release pair per transfer, no CAS at all. Use it when the
// topology is a fixed pipe (one producer thread, one consumer thread); use
// MpmcQueue when either side can be entered concurrently.
//
// Memory-order contract (every operation annotated):
//   * `tail_` is written only by the producer, `head_` only by the
//     consumer. Each side reads its own index relaxed (it is the only
//     writer) and the other side's index with acquire, pairing with that
//     side's release store — which is what publishes the pushed value
//     (producer releases tail_) or the vacated slot (consumer releases
//     head_).
//   * Each side caches its last view of the other index and refreshes it
//     only when the cached view says full/empty, so the steady-state cost
//     is one shared-variable release store per operation.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/mpmc_queue.hpp"  // kCacheLineSize

namespace spnerf {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` usable slots; rounded up to a power of two (minimum 2). One
  /// slot of the ring is sacrificed to distinguish full from empty.
  explicit SpscQueue(std::size_t capacity) {
    SPNERF_CHECK_MSG(capacity > 0, "spsc queue capacity must be positive");
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side only. Returns false when the ring is full.
  bool TryPush(T value) {
    // relaxed: tail_ has a single writer — this thread.
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      // acquire: pairs with the consumer's release of head_ — the slot we
      // are about to overwrite must have been vacated.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;  // genuinely full
    }
    slots_[tail] = std::move(value);
    // release: publishes the slot write to the consumer's acquire of tail_.
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side only. Returns false when the ring is empty.
  bool TryPop(T& out) {
    // relaxed: head_ has a single writer — this thread.
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      // acquire: pairs with the producer's release of tail_ — makes the
      // pushed value visible before we read the slot.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;  // genuinely empty
    }
    out = std::move(slots_[head]);
    // release: publishes the vacancy to the producer's acquire of head_.
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness check (exact for the consumer thread).
  [[nodiscard]] bool Empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t Capacity() const { return mask_; }

 private:
  std::unique_ptr<T[]> slots_;
  std::size_t mask_ = 0;
  // Producer line: its own index plus its cached view of the consumer's.
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
  // Consumer line, symmetric.
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
};

}  // namespace spnerf
