// Persistent fork-join thread pool and the parallel-for primitives built on
// it. The pool keeps its workers alive across calls (no per-call thread
// spawn); parallel regions hand out contiguous index chunks from an atomic
// cursor, so load balances dynamically while every index is visited exactly
// once. Results must be written to disjoint, pre-sized outputs so runs are
// bit-reproducible regardless of the worker count or schedule.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace spnerf {

/// A fixed set of worker threads executing fork-join parallel regions. The
/// calling thread always participates as slot 0, so a pool constructed with
/// `workers = W` runs regions at parallelism W using W-1 pool threads.
///
/// Use the process-wide lazy singleton via Global() for rendering and
/// preprocessing; construct explicit instances in tests or when isolating
/// workloads. Regions dispatched from inside a pool worker run inline on
/// that worker (no nested fan-out, no deadlock).
class ThreadPool {
 public:
  /// `workers = 0` sizes the pool to std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallel slots available to a region (pool threads + calling thread).
  [[nodiscard]] unsigned WorkerCount() const { return worker_count_; }

  /// Parallelism a worker cap resolves to: 0 means every worker, anything
  /// else clamps to WorkerCount(). The one rule shared by ParallelFor, the
  /// render engine and the bench reporting.
  [[nodiscard]] unsigned ResolveWorkers(unsigned cap) const {
    return cap ? std::min(cap, worker_count_) : worker_count_;
  }

  /// Process-wide pool, created on first use.
  static ThreadPool& Global();

  /// Invokes fn(slot) for every slot in [0, slots), slot 0 on the calling
  /// thread, the rest on pool threads; returns when all slots finish.
  /// `slots` is clamped to WorkerCount(). Regions dispatched from inside a
  /// running region (any slot) execute inline on that thread; concurrent
  /// dispatches from independent threads serialise.
  template <typename Fn>
  void RunOnWorkers(unsigned slots, Fn&& fn) {
    using Callable = std::remove_reference_t<Fn>;
    Dispatch(
        [](void* ctx, unsigned slot) { (*static_cast<Callable*>(ctx))(slot); },
        const_cast<std::remove_const_t<Callable>*>(&fn), slots);
  }

 private:
  void Dispatch(void (*invoke)(void*, unsigned), void* ctx, unsigned slots);
  void WorkerLoop(unsigned pool_index);

  struct Region {
    void (*invoke)(void*, unsigned) = nullptr;
    void* ctx = nullptr;
    unsigned slots = 0;
  };

  unsigned worker_count_ = 1;
  std::vector<std::thread> threads_;  // worker_count_ - 1 entries

  std::mutex dispatch_mutex_;  // serialises whole regions
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  Region region_;
  std::uint64_t generation_ = 0;  // bumped per dispatched region
  unsigned outstanding_ = 0;      // participating pool threads still running
  bool stopping_ = false;
};

/// Invokes fn(begin, end) on contiguous chunks of [0, n) across the pool's
/// workers (ThreadPool::Global() unless `pool` is given). fn must only touch
/// state disjoint per index. `max_threads` caps the parallelism; 0 uses
/// every worker.
template <typename Fn>
void ParallelFor(std::size_t n, Fn&& fn, unsigned max_threads = 0,
                 ThreadPool* pool = nullptr) {
  if (n == 0) return;
  ThreadPool& tp = pool ? *pool : ThreadPool::Global();
  unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(tp.ResolveWorkers(max_threads), n));
  if (workers <= 1) {
    fn(std::size_t{0}, n);
    return;
  }
  // ~4 chunks per worker: coarse enough to amortise the atomic cursor, fine
  // enough to balance uneven per-index cost.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(workers) * 4));
  std::atomic<std::size_t> cursor{0};
  tp.RunOnWorkers(workers, [&](unsigned) {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(chunk);
      if (begin >= n) break;
      fn(begin, std::min(n, begin + chunk));
    }
  });
}

}  // namespace spnerf
