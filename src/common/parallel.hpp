// Deterministic fork-join parallel-for over an index range. Work is split
// into contiguous chunks, one per worker; results must be written to
// disjoint, pre-sized outputs so runs are bit-reproducible regardless of the
// thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace spnerf {

/// Invokes fn(begin, end) on contiguous chunks of [0, n) across worker
/// threads. fn must only touch state disjoint per index.
inline void ParallelFor(std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>& fn,
                        unsigned max_threads = 0) {
  if (n == 0) return;
  unsigned workers = max_threads ? max_threads
                                 : std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, n));
  if (workers <= 1) {
    fn(0, n);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (unsigned t = 0; t < workers; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    threads.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& th : threads) th.join();
}

}  // namespace spnerf
