// Persistent task-scheduler thread pool and the parallel-for primitives
// built on it. The pool keeps its workers alive across calls (no per-call
// thread spawn) and schedules *regions* — fork-join parallel sections — so
// independent threads can have several regions in flight at once: each
// region keeps its own claim cursor and completion latch, and a region
// finishing never blocks another from starting. Parallel regions hand out
// contiguous index chunks from an atomic cursor, so load balances
// dynamically while every index is visited exactly once. Results must be
// written to disjoint, pre-sized outputs so runs are bit-reproducible
// regardless of the worker count, the schedule, or what other regions the
// pool is running concurrently.
//
// Work distribution runs in one of two modes, captured at pool construction
// from the process-global SPNF_DISPATCH override (common/dispatch.hpp):
//   * kLockFree (default): workers pull region tokens from a bounded
//     Vyukov MPMC ring (common/mpmc_queue.hpp) and claim slots through
//     per-region atomic cursors; detached region records come from a
//     fixed-slab pool instead of the heap. The pool mutex+condvar survive
//     only as the sleep/wake slow path (eventcount-style spin-then-park),
//     so dispatching onto an already-awake pool takes zero lock
//     acquisitions. See ARCHITECTURE.md, "Dispatch path", for the full
//     memory-order and liveness argument.
//   * kLocked: the original mutex+condvar scheduler, kept in-tree as the
//     differential oracle (the scalar-reference-first rule the SIMD layer
//     established). Both modes produce bit-identical results.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/dispatch.hpp"
#include "common/mpmc_queue.hpp"
#include "common/object_pool.hpp"

namespace spnerf {

/// A fixed set of worker threads executing parallel regions. Blocking
/// regions (RunOnWorkers) are driven jointly by the pool threads and the
/// dispatching thread, which claims slots of its own region alongside the
/// workers; detached regions (Submit) run entirely on pool threads and
/// report completion through a callback. Regions from independent threads
/// interleave on the shared workers instead of serialising — the pool is
/// work-conserving across concurrent dispatchers.
///
/// Use the process-wide lazy singleton via Global() for rendering and
/// preprocessing; construct explicit instances in tests or when isolating
/// workloads. Regions dispatched from inside a pool worker run inline on
/// that worker (no nested fan-out, no deadlock).
class ThreadPool {
 public:
  /// `workers = 0` sizes the pool to std::thread::hardware_concurrency().
  /// `token_capacity` bounds the lock-free work-token ring; tokens beyond
  /// it spill to a mutex-guarded overflow list (correct, slower — tests
  /// shrink the ring to force that path). The dispatch mode is captured
  /// here from dispatch::ActiveMode() and never changes for this pool.
  explicit ThreadPool(unsigned workers = 0,
                      std::size_t token_capacity = kDefaultTokenCapacity);
  /// Waits for every live region (blocking and detached) to finish, then
  /// joins the workers. Detached completions always run before destruction
  /// returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallel slots available to a region (pool threads + calling thread).
  [[nodiscard]] unsigned WorkerCount() const { return worker_count_; }

  /// The work-distribution mode this pool was constructed with.
  [[nodiscard]] dispatch::Mode Mode() const { return mode_; }

  /// Parallelism a worker cap resolves to: 0 means every worker, anything
  /// else clamps to WorkerCount(). The one rule shared by ParallelFor, the
  /// render engine and the bench reporting.
  [[nodiscard]] unsigned ResolveWorkers(unsigned cap) const {
    return cap ? std::min(cap, worker_count_) : worker_count_;
  }

  /// Process-wide pool, created on first use.
  static ThreadPool& Global();

  /// Invokes fn(slot) for every slot in [0, slots), each exactly once, and
  /// returns when all slots finish. `slots` is clamped to WorkerCount().
  /// The calling thread participates by claiming slots of its own region
  /// alongside the pool workers (so progress never depends on a free pool
  /// thread); which thread runs which slot is unspecified. Regions
  /// dispatched from inside a running region (any slot) execute inline on
  /// that thread; concurrent dispatches from independent threads interleave
  /// on the shared workers. If any slot body throws, every slot still runs
  /// and the first exception is rethrown here once the region completes —
  /// a throw never unwinds the scheduler or kills a pool worker.
  template <typename Fn>
  void RunOnWorkers(unsigned slots, Fn&& fn) {
    using Callable = std::remove_reference_t<Fn>;
    Dispatch(
        [](void* ctx, unsigned slot) { (*static_cast<Callable*>(ctx))(slot); },
        const_cast<std::remove_const_t<Callable>*>(&fn), slots);
  }

  /// Detached region: enqueues fn(slot) for every slot in [0, slots) on the
  /// pool threads and returns immediately; `on_complete` (if any) runs on
  /// the worker that finishes the last slot, after every slot has returned.
  /// `slots` is clamped to WorkerCount(), exactly like RunOnWorkers — slots
  /// are parallelism seats, not work items; hand out work inside fn via a
  /// shared cursor. The region record itself comes from a fixed slab pool
  /// (heap only past kRegionPoolCapacity concurrent detached regions).
  /// When the pool has no worker threads (WorkerCount() == 1) the region —
  /// completion included — runs inline on the calling thread before Submit
  /// returns: the sequential fallback, same results, no asynchrony.
  void Submit(unsigned slots, std::function<void(unsigned)> fn,
              std::function<void()> on_complete = {});

  static constexpr std::size_t kDefaultTokenCapacity = 1024;
  static constexpr std::size_t kRegionPoolCapacity = 64;

 private:
  /// One live parallel region. In lock-free mode the claim cursor, the
  /// completion latch and the token refcount are raced on directly; in
  /// locked mode the same fields are only ever touched under the pool
  /// mutex (relaxed atomic ops — the mutex carries the ordering).
  struct Region {
    void (*invoke)(void*, unsigned) = nullptr;  // blocking regions
    void* ctx = nullptr;
    std::function<void(unsigned)> body;    // detached regions own their fn
    std::function<void()> on_complete;     // detached only
    unsigned slots = 0;
    std::atomic<unsigned> next_slot{0};    // claim cursor
    std::atomic<unsigned> remaining{0};    // completion latch
    /// Lock-free mode: work tokens in flight that still name this region.
    /// A blocking region's stack frame may not be abandoned until every
    /// token was consumed (tokens the dispatcher raced past go stale and
    /// are dropped on pop, but the pop itself dereferences the region).
    std::atomic<unsigned> token_refs{0};
    bool detached = false;
    bool done = false;  // locked mode, blocking regions: completion flag
    /// Trace-clock stamp of the detached region's submission; 0 = tracing
    /// off. The last finisher emits the region-lifetime span from it.
    u64 trace_start_ns = 0;
    /// First exception a slot body threw (claimed via `error_claimed`).
    /// Blocking dispatchers rethrow it after the region completes; detached
    /// regions drop it (their submitters guard their own bodies).
    std::atomic<bool> error_claimed{false};
    std::exception_ptr error;

    void Run(unsigned slot) { invoke ? invoke(ctx, slot) : body(slot); }
    /// Recycles a pooled record for a new detached region.
    void ResetForDetached(std::function<void(unsigned)> fn,
                          std::function<void()> completion, unsigned n);
  };

  void Dispatch(void (*invoke)(void*, unsigned), void* ctx, unsigned slots);

  // --- locked mode (the differential oracle; see parallel.cpp) ---
  void DispatchLocked(void (*invoke)(void*, unsigned), void* ctx,
                      unsigned slots);
  void SubmitLocked(Region* region);
  void CloseLocked(Region* region);
  void FinishSlotLocked(Region* region, std::unique_lock<std::mutex>& lock);
  void WorkerLoopLocked();

  // --- lock-free mode ---
  void DispatchLockFree(void (*invoke)(void*, unsigned), void* ctx,
                        unsigned slots);
  void SubmitLockFree(Region* region);
  void WorkerLoopLockFree();
  /// Pushes `count` work tokens naming `region` (ring first, mutex-guarded
  /// overflow when full) and wakes sleeping workers.
  void PushTokens(Region* region, unsigned count);
  /// Pops one token (ring first, then overflow). False when no work.
  bool PopToken(Region*& region);
  /// Claims and runs one slot of `region` (drops the token if the cursor
  /// is already exhausted), then finishes the slot.
  void ProcessToken(Region* region);
  void FinishSlotLockFree(Region* region);
  void DropTokenRef(Region* region);
  /// Decrements the live-region count; wakes region waiters on zero.
  void DropLiveRegion();
  /// Wakes threads parked on region_done_ (blocking dispatchers and the
  /// destructor) if any are parked. Callers must not touch the region that
  /// triggered the wake afterwards — its owner may already be freeing it.
  void WakeRegionWaiters();

  unsigned worker_count_ = 1;
  dispatch::Mode mode_ = dispatch::Mode::kLockFree;
  std::vector<std::thread> threads_;  // worker_count_ - 1 entries

  std::mutex mutex_;
  std::condition_variable work_ready_;   // workers: work exists
  std::condition_variable region_done_;  // dispatchers + destructor
  std::deque<Region*> open_;  // locked mode: regions with unclaimed slots
  std::atomic<std::size_t> live_regions_{0};  // enqueued, not fully finished
  std::atomic<bool> stopping_{false};

  // Lock-free mode state. The token ring carries all steady-state work
  // distribution; `overflow_` (guarded by mutex_) absorbs pushes when the
  // ring is full; the two counters below drive the eventcount sleep/wake
  // protocol (see parallel.cpp for the fence argument).
  MpmcQueue<Region*> tokens_;
  std::deque<Region*> overflow_;               // guarded by mutex_
  std::atomic<std::size_t> overflow_count_{0};
  std::atomic<int> sleepers_{0};          // workers parked / about to park
  std::atomic<int> region_waiters_{0};    // parked on region_done_
  ObjectPool<Region> region_pool_{kRegionPoolCapacity};
};

/// Invokes fn(begin, end) on contiguous chunks of [0, n) across the pool's
/// workers (ThreadPool::Global() unless `pool` is given). fn must only touch
/// state disjoint per index. `max_threads` caps the parallelism; 0 uses
/// every worker. Safe to call from any number of threads concurrently: each
/// call is its own region with its own cursor, and the chunk decomposition
/// depends only on (n, workers) — never on what else the pool is running —
/// so outputs stay bit-identical to a sequential run.
template <typename Fn>
void ParallelFor(std::size_t n, Fn&& fn, unsigned max_threads = 0,
                 ThreadPool* pool = nullptr) {
  if (n == 0) return;
  ThreadPool& tp = pool ? *pool : ThreadPool::Global();
  unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(tp.ResolveWorkers(max_threads), n));
  if (workers <= 1) {
    fn(std::size_t{0}, n);
    return;
  }
  // ~4 chunks per worker: coarse enough to amortise the atomic cursor, fine
  // enough to balance uneven per-index cost.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(workers) * 4));
  std::atomic<std::size_t> cursor{0};
  tp.RunOnWorkers(workers, [&](unsigned) {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(chunk);
      if (begin >= n) break;
      fn(begin, std::min(n, begin + chunk));
    }
  });
}

}  // namespace spnerf
