// Persistent task-scheduler thread pool and the parallel-for primitives
// built on it. The pool keeps its workers alive across calls (no per-call
// thread spawn) and schedules *regions* — fork-join parallel sections — from
// a queue of live regions, so independent threads can have several regions
// in flight at once: workers pull (region, slot) work items FIFO by region,
// each region keeps its own claim cursor and completion latch, and a region
// finishing never blocks another from starting. Parallel regions hand out
// contiguous index chunks from an atomic cursor, so load balances
// dynamically while every index is visited exactly once. Results must be
// written to disjoint, pre-sized outputs so runs are bit-reproducible
// regardless of the worker count, the schedule, or what other regions the
// pool is running concurrently.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace spnerf {

/// A fixed set of worker threads executing parallel regions from a shared
/// region queue. Blocking regions (RunOnWorkers) are driven jointly by the
/// pool threads and the dispatching thread, which claims slots of its own
/// region alongside the workers; detached regions (Submit) run entirely on
/// pool threads and report completion through a callback. Regions from
/// independent threads interleave on the shared workers instead of
/// serialising — the pool is work-conserving across concurrent dispatchers.
///
/// Use the process-wide lazy singleton via Global() for rendering and
/// preprocessing; construct explicit instances in tests or when isolating
/// workloads. Regions dispatched from inside a pool worker run inline on
/// that worker (no nested fan-out, no deadlock).
class ThreadPool {
 public:
  /// `workers = 0` sizes the pool to std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned workers = 0);
  /// Waits for every live region (blocking and detached) to finish, then
  /// joins the workers. Detached completions always run before destruction
  /// returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallel slots available to a region (pool threads + calling thread).
  [[nodiscard]] unsigned WorkerCount() const { return worker_count_; }

  /// Parallelism a worker cap resolves to: 0 means every worker, anything
  /// else clamps to WorkerCount(). The one rule shared by ParallelFor, the
  /// render engine and the bench reporting.
  [[nodiscard]] unsigned ResolveWorkers(unsigned cap) const {
    return cap ? std::min(cap, worker_count_) : worker_count_;
  }

  /// Process-wide pool, created on first use.
  static ThreadPool& Global();

  /// Invokes fn(slot) for every slot in [0, slots), each exactly once, and
  /// returns when all slots finish. `slots` is clamped to WorkerCount().
  /// The calling thread participates by claiming slots of its own region
  /// alongside the pool workers (so progress never depends on a free pool
  /// thread); which thread runs which slot is unspecified. Regions
  /// dispatched from inside a running region (any slot) execute inline on
  /// that thread; concurrent dispatches from independent threads interleave
  /// on the shared workers. If any slot body throws, every slot still runs
  /// and the first exception is rethrown here once the region completes —
  /// a throw never unwinds the scheduler or kills a pool worker.
  template <typename Fn>
  void RunOnWorkers(unsigned slots, Fn&& fn) {
    using Callable = std::remove_reference_t<Fn>;
    Dispatch(
        [](void* ctx, unsigned slot) { (*static_cast<Callable*>(ctx))(slot); },
        const_cast<std::remove_const_t<Callable>*>(&fn), slots);
  }

  /// Detached region: enqueues fn(slot) for every slot in [0, slots) on the
  /// pool threads and returns immediately; `on_complete` (if any) runs on
  /// the worker that finishes the last slot, after every slot has returned.
  /// `slots` is clamped to WorkerCount(), exactly like RunOnWorkers — slots
  /// are parallelism seats, not work items; hand out work inside fn via a
  /// shared cursor.
  /// When the pool has no worker threads (WorkerCount() == 1) the region —
  /// completion included — runs inline on the calling thread before Submit
  /// returns: the sequential fallback, same results, no asynchrony.
  void Submit(unsigned slots, std::function<void(unsigned)> fn,
              std::function<void()> on_complete = {});

 private:
  /// One live parallel region. `next_slot`/`remaining`/`error` are guarded
  /// by the pool mutex; the claim cursor and the completion latch are
  /// per-region, which is what lets independent regions proceed
  /// concurrently.
  struct Region {
    void (*invoke)(void*, unsigned) = nullptr;  // blocking regions
    void* ctx = nullptr;
    std::function<void(unsigned)> body;    // detached regions own their fn
    std::function<void()> on_complete;     // detached only
    unsigned slots = 0;
    unsigned next_slot = 0;   // claim cursor
    unsigned remaining = 0;   // completion latch
    bool detached = false;
    bool done = false;        // blocking regions: completion flag
    // First exception a slot body threw. A throw must never unwind past the
    // region protocol (the Region would be freed while still published);
    // blocking dispatchers rethrow it after the region completes, detached
    // regions drop it (their submitters guard their own bodies).
    std::exception_ptr error;

    void Run(unsigned slot) { invoke ? invoke(ctx, slot) : body(slot); }
  };

  void Dispatch(void (*invoke)(void*, unsigned), void* ctx, unsigned slots);
  /// Removes `region` from the open queue (claim cursor exhausted).
  void CloseLocked(Region* region);
  /// Decrements the completion latch; on zero completes the region —
  /// detached regions run their completion (lock dropped) and are deleted.
  void FinishSlot(Region* region, std::unique_lock<std::mutex>& lock);
  void WorkerLoop();

  unsigned worker_count_ = 1;
  std::vector<std::thread> threads_;  // worker_count_ - 1 entries

  std::mutex mutex_;
  std::condition_variable work_ready_;   // workers: open regions exist
  std::condition_variable region_done_;  // dispatchers + destructor
  std::deque<Region*> open_;       // regions with unclaimed slots, FIFO
  std::size_t live_regions_ = 0;   // enqueued and not yet fully finished
  bool stopping_ = false;
};

/// Invokes fn(begin, end) on contiguous chunks of [0, n) across the pool's
/// workers (ThreadPool::Global() unless `pool` is given). fn must only touch
/// state disjoint per index. `max_threads` caps the parallelism; 0 uses
/// every worker. Safe to call from any number of threads concurrently: each
/// call is its own region with its own cursor, and the chunk decomposition
/// depends only on (n, workers) — never on what else the pool is running —
/// so outputs stay bit-identical to a sequential run.
template <typename Fn>
void ParallelFor(std::size_t n, Fn&& fn, unsigned max_threads = 0,
                 ThreadPool* pool = nullptr) {
  if (n == 0) return;
  ThreadPool& tp = pool ? *pool : ThreadPool::Global();
  unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(tp.ResolveWorkers(max_threads), n));
  if (workers <= 1) {
    fn(std::size_t{0}, n);
    return;
  }
  // ~4 chunks per worker: coarse enough to amortise the atomic cursor, fine
  // enough to balance uneven per-index cost.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(workers) * 4));
  std::atomic<std::size_t> cursor{0};
  tp.RunOnWorkers(workers, [&](unsigned) {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(chunk);
      if (begin >= n) break;
      fn(begin, std::min(n, begin + chunk));
    }
  });
}

}  // namespace spnerf
