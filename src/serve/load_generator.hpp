// Deterministic open-loop load generation for the RenderService. A trace is
// a pure function of the options (seeded xoshiro PRNG): arrival times follow
// a Poisson process at the configured rate, scenes are drawn from a
// hot/cold-skewed zoo mix, and priorities/deadlines follow fixed fractions.
// The same options always yield the identical trace, independent of how
// many workers later serve it — the replay half is where wall time enters.
#pragma once

#include <array>
#include <vector>

#include "serve/render_service.hpp"

namespace spnerf {

/// Per-priority-class deadline distribution: with probability `fraction` a
/// request of the class carries a relative deadline drawn uniformly from
/// [min_ms, max_ms]. Disabled (fraction == 0) classes fall back to the
/// trace-wide deadline_fraction/deadline_ms pair, which also keeps the PRNG
/// draw sequence — and therefore every pre-existing trace — unchanged.
struct DeadlineBand {
  double min_ms = 0.0;
  double max_ms = 0.0;
  double fraction = 0.0;

  [[nodiscard]] bool Enabled() const { return fraction > 0.0; }
};

struct LoadGeneratorOptions {
  u64 seed = 2025;
  std::size_t request_count = 256;
  /// Open-loop arrival rate (requests/s); arrivals never wait for
  /// completions, which is what exposes tail latency under overload.
  double arrival_rate_rps = 200.0;
  /// Scene mix; the first `hot_scene_count` entries are the hot set.
  std::vector<SceneId> scenes{SceneId::kLego, SceneId::kChair,
                              SceneId::kMic, SceneId::kFicus};
  std::size_t hot_scene_count = 2;
  /// Probability a request targets the hot set (uniform within each set).
  double hot_fraction = 0.8;
  /// Fractions of kInteractive / kBatch requests (the rest are kNormal).
  double interactive_fraction = 0.25;
  double batch_fraction = 0.25;
  /// Fraction of requests carrying a deadline, and that relative deadline.
  double deadline_fraction = 0.0;
  double deadline_ms = 250.0;
  /// Optional per-class deadline bands, indexed by
  /// static_cast<std::size_t>(RequestPriority). An enabled band overrides
  /// the flat deadline pair for its class.
  std::array<DeadlineBand, 3> deadline_bands{};
  /// Template request: scene_id and view are overwritten per draw, the
  /// rest (build params, render options, image size) is taken as-is.
  RenderRequest base;
};

/// One trace entry: when to submit (ms from replay start) and what.
struct TimedRequest {
  double arrival_ms = 0.0;
  RenderRequest request;
};

/// Trace preset for deadline/ladder experiments: interactive-heavy class mix
/// (60% interactive, 10% batch) with tight per-class deadline bands scaled
/// from the measured per-frame service time — every interactive request
/// deadlines at [1.5, 3]x frame time, 80% of normal requests at [4, 8]x,
/// batch stays deadline-free. Seeded and pure like every trace, so the same
/// frame_ms yields the identical trace on any worker count.
LoadGeneratorOptions InteractiveHeavyTrace(double frame_ms);

class LoadGenerator {
 public:
  explicit LoadGenerator(LoadGeneratorOptions options = {});

  /// Generates the full trace. Pure and deterministic: same options (seed
  /// included) -> byte-identical trace, no matter who replays it on how
  /// many workers.
  [[nodiscard]] std::vector<TimedRequest> GenerateTrace() const;

  [[nodiscard]] const LoadGeneratorOptions& Options() const { return options_; }

 private:
  LoadGeneratorOptions options_;
};

struct ReplayResult {
  /// Per-trace-index responses (futures resolved, same order as the trace).
  std::vector<RenderResponse> responses;
  /// First submission to last resolved response.
  double wall_ms = 0.0;
};

/// Replays a trace open-loop: sleeps to each arrival time, submits, then
/// waits for every future. Implies service.Start(). Arrival pacing runs on
/// `clock` (the system clock when null) — pass the service's ManualClock to
/// replay on virtual time: SleepUntil then jumps straight to each arrival
/// instead of sleeping wall time.
ReplayResult ReplayTrace(RenderService& service,
                         const std::vector<TimedRequest>& trace,
                         ClockSource* clock = nullptr);

}  // namespace spnerf
