#include "serve/service_stats.hpp"

#include <algorithm>
#include <cmath>

namespace spnerf {
namespace {

std::size_t ClampClass(std::size_t priority_class) {
  return std::min(priority_class, kPriorityClassCount - 1);
}

}  // namespace

double LatencySample::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p% of samples <= it.
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(std::ceil(
      clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double LatencySample::MeanMs() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double LatencySample::MaxMs() const {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

void ServiceStats::RecordSubmitted(std::size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.submitted;
  if (!has_submit_) {
    first_submit_ = std::chrono::steady_clock::now();
    has_submit_ = true;
  }
  data_.queue_depth = queue_depth_after;
  data_.queue_peak = std::max(data_.queue_peak, queue_depth_after);
}

void ServiceStats::RecordRejected(std::size_t priority_class) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.rejected;
  ++data_.by_class[ClampClass(priority_class)].rejected;
}

void ServiceStats::RecordExpired(std::size_t priority_class) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.expired;
  ++data_.by_class[ClampClass(priority_class)].expired;
}

void ServiceStats::RecordBatch(std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (size > 0) ++data_.batches;
}

void ServiceStats::RecordCompleted(double queue_ms, double total_ms,
                                   std::size_t priority_class) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++data_.completed;
  data_.queue_latency.Record(queue_ms);
  data_.total_latency.Record(total_ms);
  PriorityClassStats& cls = data_.by_class[ClampClass(priority_class)];
  ++cls.completed;
  cls.total_latency.Record(total_ms);
  last_complete_ = std::chrono::steady_clock::now();
  has_complete_ = true;
}

void ServiceStats::RecordQueueDepth(std::size_t depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.queue_depth = depth;
  data_.queue_peak = std::max(data_.queue_peak, depth);
}

ServiceStatsSnapshot ServiceStats::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStatsSnapshot snap = data_;
  if (has_submit_ && has_complete_) {
    snap.span_ms = std::chrono::duration<double, std::milli>(last_complete_ -
                                                             first_submit_)
                       .count();
  }
  return snap;
}

}  // namespace spnerf
