#include "serve/service_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace spnerf {
namespace {

std::size_t ClampClass(std::size_t priority_class) {
  return std::min(priority_class, kPriorityClassCount - 1);
}

}  // namespace

u64 LatencySample::KeyFor(double ms) const {
  // SplitMix64 finalizer over (seed ^ value bits): a deterministic,
  // order-free hash — every occurrence of the same value gets the same key,
  // which is exactly what makes the bottom-K retained set a function of the
  // recorded multiset alone (KMV sketch property).
  u64 x;
  static_assert(sizeof(x) == sizeof(ms), "double must be 64-bit");
  std::memcpy(&x, &ms, sizeof(x));
  x ^= seed_;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void LatencySample::Record(double ms) {
  ++total_;
  const Entry entry{KeyFor(ms), ms};
  if (entries_.size() < cap_) {
    entries_.push_back(entry);
    // Becoming full re-organizes the store into a max-heap once; from here
    // on every eviction is O(log cap).
    if (entries_.size() == cap_) {
      std::make_heap(entries_.begin(), entries_.end(), EntryLess);
    }
    return;
  }
  // Full: keep the entry only if it displaces the current largest key.
  if (!EntryLess(entry, entries_.front())) return;
  std::pop_heap(entries_.begin(), entries_.end(), EntryLess);
  entries_.back() = entry;
  std::push_heap(entries_.begin(), entries_.end(), EntryLess);
}

void LatencySample::Merge(const LatencySample& other) {
  total_ += other.total_;
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
  if (entries_.size() >= cap_) {
    // Bottom-K of the union: sort ascending, truncate, restore the heap.
    // The k smallest of a multiset union equal the k smallest of the union
    // of each side's k smallest — so this retains exactly what one
    // reservoir fed both streams would have.
    std::sort(entries_.begin(), entries_.end(), EntryLess);
    if (entries_.size() > cap_) entries_.resize(cap_);
    if (entries_.size() == cap_) {
      std::make_heap(entries_.begin(), entries_.end(), EntryLess);
    }
  }
}

double LatencySample::Percentile(double p) const {
  if (entries_.empty()) return 0.0;
  std::vector<double> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(e.value);
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least p% of samples <= it.
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(std::ceil(
      clamped / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double LatencySample::MeanMs() const {
  if (entries_.empty()) return 0.0;
  double sum = 0.0;
  for (const Entry& e : entries_) sum += e.value;
  return sum / static_cast<double>(entries_.size());
}

double LatencySample::MaxMs() const {
  if (entries_.empty()) return 0.0;
  double max = entries_.front().value;
  for (const Entry& e : entries_) max = std::max(max, e.value);
  return max;
}

void ServiceStats::BumpQueuePeak(std::size_t depth) {
  std::size_t peak = queue_peak_.load(std::memory_order_relaxed);
  while (depth > peak && !queue_peak_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
}

void ServiceStats::RecordSubmitted(std::size_t queue_depth_after) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // One-time span start: only the very first request ever takes the lock.
  if (!has_submit_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!has_submit_.load(std::memory_order_relaxed)) {
      first_submit_ = clock_->Now();
      has_submit_.store(true, std::memory_order_release);
    }
  }
  queue_depth_.store(queue_depth_after, std::memory_order_relaxed);
  BumpQueuePeak(queue_depth_after);
}

void ServiceStats::RecordRejected(std::size_t priority_class) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  class_counters_[ClampClass(priority_class)].rejected.fetch_add(
      1, std::memory_order_relaxed);
}

void ServiceStats::RecordExpired(std::size_t priority_class) {
  expired_.fetch_add(1, std::memory_order_relaxed);
  class_counters_[ClampClass(priority_class)].expired.fetch_add(
      1, std::memory_order_relaxed);
}

void ServiceStats::RecordBatch(std::size_t size) {
  if (size > 0) batches_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceStats::RecordCompleted(double queue_ms, double total_ms,
                                   std::size_t priority_class,
                                   std::size_t rung) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t cls = ClampClass(priority_class);
  class_counters_[cls].completed.fetch_add(1, std::memory_order_relaxed);
  rung_completed_[std::min(rung, kQualityRungCount - 1)].fetch_add(
      1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  queue_latency_.Record(queue_ms);
  total_latency_.Record(total_ms);
  class_latency_[cls].Record(total_ms);
  last_complete_ = clock_->Now();
  has_complete_.store(true, std::memory_order_release);
}

void ServiceStats::RecordQueueDepth(std::size_t depth) {
  queue_depth_.store(depth, std::memory_order_relaxed);
  BumpQueuePeak(depth);
}

ServiceStatsSnapshot ServiceStats::Snapshot() const {
  ServiceStatsSnapshot snap;
  snap.submitted = submitted_.load(std::memory_order_relaxed);
  snap.completed = completed_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.expired = expired_.load(std::memory_order_relaxed);
  snap.batches = batches_.load(std::memory_order_relaxed);
  snap.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  snap.queue_peak = queue_peak_.load(std::memory_order_relaxed);
  for (std::size_t c = 0; c < kPriorityClassCount; ++c) {
    snap.by_class[c].completed =
        class_counters_[c].completed.load(std::memory_order_relaxed);
    snap.by_class[c].rejected =
        class_counters_[c].rejected.load(std::memory_order_relaxed);
    snap.by_class[c].expired =
        class_counters_[c].expired.load(std::memory_order_relaxed);
  }
  for (std::size_t r = 0; r < kQualityRungCount; ++r) {
    snap.by_rung[r] = rung_completed_[r].load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  snap.queue_latency = queue_latency_;
  snap.total_latency = total_latency_;
  for (std::size_t c = 0; c < kPriorityClassCount; ++c) {
    snap.by_class[c].total_latency = class_latency_[c];
  }
  if (has_submit_.load(std::memory_order_acquire) &&
      has_complete_.load(std::memory_order_acquire)) {
    snap.span_ms = std::chrono::duration<double, std::milli>(last_complete_ -
                                                             first_submit_)
                       .count();
  }
  return snap;
}

}  // namespace spnerf
