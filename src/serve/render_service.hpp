// RenderService: the multi-tenant request-serving layer above core/.
//
// Callers Submit() asynchronous RenderRequests (scene + build params +
// camera view + priority + optional deadline) and get a future. A
// dispatcher thread runs the scheduling decisions of the *issue half*
// (pop, coalesce, claim the in-flight seat), while the heavy part of the
// issue — pipeline acquisition (possibly a cold build) and job setup —
// runs as a detached task on the engine's pool; the *completion half* runs
// on the engine's pool workers as batches finish. So up to
// `max_inflight_batches` engine batches with distinct batch keys overlap
// on the shared ThreadPool instead of serialising, and many tiny batches
// cannot bottleneck on one thread doing their setup:
//
//   * Admission. The queue holds at most `queue_capacity` requests. When it
//     is full, the lowest-ranked queued request is shed (explicit kRejected
//     status) if the incoming one outranks it; otherwise the incoming
//     request is rejected immediately. The service never grows an unbounded
//     backlog — overload turns into rejections, not latency collapse.
//     Under the default lock-free dispatch mode (SPNF_DISPATCH, captured at
//     construction), admission with a free seat is lock-free: the entry —
//     recycled from a fixed slab pool, never a fresh allocation — claims a
//     seat by CAS on the queued count and rides a bounded MPMC inbox ring
//     to the dispatcher, which folds the inbox into the ranked queue at its
//     own serialization point. Only a full queue (shed/evict decisions) or
//     the locked oracle mode takes the service mutex, so overflow futures
//     still resolve before Submit returns in every mode.
//   * Scheduling order. Highest priority first; within a priority class,
//     earliest absolute deadline first (requests without a deadline sort
//     last); FIFO as the tie-break. Deterministic for a fixed submit order.
//   * Deadline shedding. A request whose deadline passes while it waits is
//     completed with kExpired at dispatch time without rendering — queue
//     time is never spent on work nobody can use. Once rendering starts a
//     request always completes (the result is already paid for); a deadline
//     that lapses mid-render is reported via RenderResponse::missed_deadline.
//   * Batching. The issue half pops the best-ranked request whose batch key
//     — pipeline key (scene, build params, render options, camera
//     intrinsics, MLP seed) plus masking flag — has no batch already in
//     flight, then coalesces every queued same-key request (in scheduling
//     order, up to `max_batch` jobs) into one RenderEngine batch, so tiles
//     of concurrent same-scene requests interleave across the shared
//     ThreadPool instead of serialising per request.
//   * Concurrency. Batches are issued through RenderEngine::SubmitBatch and
//     complete via callback; while one batch renders, the dispatcher issues
//     the next one as long as fewer than `max_inflight_batches` are in
//     flight. At most one batch per key is in flight at a time — same-key
//     requests coalesce into the *next* batch rather than racing the
//     current one, which keeps per-key dispatch order intact.
//   * Quality ladder (opt-in, options.ladder.enabled). At issue time the
//     QualityGovernor maps (remaining deadline, queue depth, per-rung EWMA
//     cost model, priority class) to a quality rung (render/quality.hpp);
//     the whole batch renders at that rung — coalescing is keyed on
//     (pipeline key, rung), so a mate only joins when its own decision
//     matches the leader's — reduced-resolution rungs upsample back to the
//     requested size in the completion half, and the chosen rung is
//     recorded in the response and the per-rung stats/obs counters. A
//     full-queue admission opens the governor's pressure window (degrade
//     over reject). Rung 0 output is bit-identical to the ladder-off
//     service; rung decisions are pure functions of scheduling state, so
//     they replay deterministically under a ManualClock.
//
// Rendering itself inherits the engine's determinism: response images are
// bit-identical for any worker count, batch composition or number of
// concurrently in-flight batches.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/dispatch.hpp"
#include "common/mpmc_queue.hpp"
#include "common/object_pool.hpp"
#include "core/pipeline_repository.hpp"
#include "serve/quality_governor.hpp"
#include "serve/service_stats.hpp"

namespace spnerf {

/// Scheduling classes, ascending urgency. kInteractive models a live viewer
/// waiting on the frame; kBatch models offline re-renders that should only
/// soak up spare capacity.
enum class RequestPriority : int {
  kBatch = 0,
  kNormal = 1,
  kInteractive = 2,
};

const char* RequestPriorityName(RequestPriority priority);

// The per-class ServiceStats counters index by the priority value; a new
// scheduling class must widen them, not silently alias an existing bucket.
static_assert(static_cast<std::size_t>(RequestPriority::kInteractive) + 1 ==
                  kPriorityClassCount,
              "kPriorityClassCount must cover every RequestPriority value");

/// One frame request. `config` names the pipeline (resolved through the
/// PipelineRepository, so same-config requests share built assets); the
/// view fields pick the orbit camera.
struct RenderRequest {
  PipelineConfig config;
  int image_width = 64;
  int image_height = 64;
  int view = 0;
  int n_views = 8;
  /// Render the SpNeRF path with (paper default) or without bitmap masking.
  bool bitmap_masking = true;
  RequestPriority priority = RequestPriority::kNormal;
  /// Relative deadline from submission, in ms; <= 0 means none. A request
  /// still queued past its deadline is shed with kExpired.
  double deadline_ms = 0.0;
};

enum class RequestStatus {
  kCompleted,  // image rendered
  kRejected,   // shed by admission control (queue full) or shutdown
  kExpired,    // deadline passed while queued; not rendered
};

const char* RequestStatusName(RequestStatus status);

struct RenderResponse {
  RequestStatus status = RequestStatus::kRejected;
  Image image;  // empty unless kCompleted
  /// Submit -> issue (the batch handed to the engine); for shed requests,
  /// submit -> shed (their whole queued lifetime, ~0 when dropped straight
  /// at admission).
  double queue_ms = 0.0;
  /// Submit -> response ready.
  double total_ms = 0.0;
  /// Number of requests coalesced into the engine batch that served this
  /// one (>= 1 for completed requests).
  std::size_t batch_size = 0;
  /// Monotonically increasing per-batch issue counter; requests of one
  /// batch share it. Exposes the issue order to tests and benches — under
  /// concurrent batches, completion order may differ from issue order.
  u64 dispatch_index = 0;
  /// Completed, but after the request's deadline lapsed mid-render.
  bool missed_deadline = false;
  /// Quality rung the request was served at (render/quality.hpp). kFull
  /// unless the ladder is enabled and the governor degraded under pressure;
  /// kFull responses are bit-identical to the ladder-off service's.
  QualityRung rung = QualityRung::kFull;
};

struct RenderServiceOptions {
  /// Bound on queued (admitted, not yet dispatched) requests.
  std::size_t queue_capacity = 256;
  /// Cap on requests coalesced into one engine batch.
  std::size_t max_batch = 8;
  /// Cap on engine batches in flight at once. 1 reproduces the serial
  /// dispatcher (each batch finishes before the next issues); higher values
  /// let distinct-key batches overlap on the shared pool. Same-key requests
  /// never overlap regardless (one in-flight batch per key).
  std::size_t max_inflight_batches = 4;
  /// Tile scheduler configuration for every render the service issues (the
  /// request's own PipelineConfig::engine is ignored: execution policy is
  /// service-owned, and it never changes the rendered bytes).
  RenderEngineOptions engine;
  /// Pipeline source; nullptr uses PipelineRepository::Global().
  PipelineRepository* repository = nullptr;
  /// Scheduling clock (submit stamps, deadlines, queue ages); nullptr uses
  /// the real steady clock. Tests inject a ManualClock and advance virtual
  /// time past deadlines instead of sleeping wall time (common/clock.hpp).
  ClockSource* clock = nullptr;
  /// Start with dispatching paused; Start() (or Drain()) begins it. Lets
  /// tests and benches stage a backlog deterministically.
  bool start_paused = false;
  /// Adaptive quality ladder (degrade-before-drop). Disabled by default:
  /// every request renders at full quality, bit-identical to the
  /// pre-ladder service.
  QualityLadderOptions ladder;
};

class RenderService {
 public:
  explicit RenderService(RenderServiceOptions options = {});
  /// Drains nothing: queued requests are completed as kRejected, in-flight
  /// batches finish, then the dispatcher joins. Call Drain() first for a
  /// graceful stop.
  ~RenderService();

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  /// Non-blocking admission. The returned future always becomes ready:
  /// kCompleted with the image, or kRejected/kExpired when shed. A request
  /// shed at admission resolves immediately.
  std::future<RenderResponse> Submit(RenderRequest request);

  /// Begins dispatching (no-op unless constructed start_paused).
  void Start();

  /// Blocks until the queue is empty and no batch is in flight. Implies
  /// Start(). New submissions during a drain extend it.
  void Drain();

  [[nodiscard]] ServiceStatsSnapshot Stats() const { return stats_.Snapshot(); }
  /// The ladder's governor — benches/tests seed or inspect the cost model
  /// through it (SeedCost is how determinism tests inject a frozen model).
  [[nodiscard]] QualityGovernor& Governor() { return governor_; }
  [[nodiscard]] const QualityGovernor& Governor() const { return governor_; }
  [[nodiscard]] std::size_t QueueDepth() const;
  [[nodiscard]] std::size_t InflightBatches() const;
  [[nodiscard]] const RenderServiceOptions& Options() const { return options_; }

  /// Batch-coalescing identity of a request: the pipeline key plus every
  /// request field that changes decoding (masking). Exposed for tests.
  [[nodiscard]] static std::string BatchKey(const RenderRequest& request);

 private:
  struct Pending;
  struct InflightBatch;

  /// Routes recycled entries back to the slab pool (pure heap strays are
  /// deleted there). Co-owns the pool: the last handles of a batch die on a
  /// pool worker when the InflightBatch's final reference drops, which can
  /// happen after the service destructor was already unblocked — the
  /// captured shared_ptr keeps the slab alive until then (same contract as
  /// the engine's batch pool). Out-of-line call operator: Pending is
  /// complete only in the .cpp.
  struct PendingDeleter {
    std::shared_ptr<ObjectPool<Pending>> pool;
    void operator()(Pending* entry) const;
  };
  /// Owning handle over a pooled Pending. Destruction recycles the entry —
  /// its grown string/config storage included — instead of freeing it.
  using PendingHandle = std::unique_ptr<Pending, PendingDeleter>;

  /// Pops a recycled entry from pending_pool_ (heap fallback past the cap)
  /// and re-arms its promise.
  [[nodiscard]] PendingHandle AcquirePending();
  /// Admission slow path (and the whole locked-mode path): folds the inbox
  /// into the ranked queue under mutex_, then seats, evicts or rejects the
  /// entry exactly like the pre-lock-free service did. Every shed future is
  /// resolved before this returns.
  std::future<RenderResponse> SubmitLocked(PendingHandle entry,
                                           std::future<RenderResponse> future);
  /// Producer half of the dispatcher eventcount: publish (the inbox push),
  /// seq_cst fence, then lock + notify only when the dispatcher announced
  /// itself parked.
  void WakeDispatcher();
  void DispatcherLoop();
  /// Issue half, heavy part: acquires the pipeline, builds the jobs and
  /// hands the batch to RenderEngine::SubmitBatch. Runs as a detached task
  /// on the engine's pool (inline on the dispatcher when the pool has no
  /// worker threads), outside the service lock — the batch's seat and key
  /// were already claimed by the dispatcher.
  void IssueBatch(std::shared_ptr<InflightBatch> batch);
  /// Completion half: fulfills the batch's response futures (per-entry
  /// render errors become per-entry future exceptions) and releases its
  /// key/in-flight seat. Runs on an engine pool worker (or inline on the
  /// dispatcher when the pool has no worker threads).
  void CompleteBatch(const std::shared_ptr<InflightBatch>& batch,
                     std::vector<std::future<RenderResult>> results);
  /// Marks `batch` no longer in flight and wakes the dispatcher + drains.
  void ReleaseBatch(const InflightBatch& batch);
  /// Completes `entry` as shed with `status` and records stats.
  void Shed(Pending& entry, RequestStatus status);
  /// Moves every inbox entry into the ranked queue (assigning its sequence
  /// — inbox FIFO order is submission order for each producer) and its key
  /// count. Caller must hold mutex_. queued_count_ is unchanged: inbox
  /// entries were counted when their seat was claimed at admission.
  void DrainInboxLocked();
  /// Incremental expiry sweep for a full-queue admission: scans bounded
  /// chunks from a rotating cursor and stops as soon as one seat frees, so
  /// an admit over a deep backlog of expired entries does O(chunk) work,
  /// not O(queue). Falls through to a full cycle only when nothing is
  /// expired — the cost the old full sweep always paid. Swept entries land
  /// in `out`; caller must hold mutex_ and Shed() them after releasing it.
  /// Returns whether any entry was freed.
  bool SweepSomeExpiredLocked(std::chrono::steady_clock::time_point now,
                              std::vector<PendingHandle>& out);
  /// Drops one queued-count reference for `key` in key_counts_. Caller must
  /// hold mutex_.
  void DecKeyCountLocked(const std::string& key);
  /// True when some queued request's batch key has no batch in flight.
  /// Caller must hold mutex_.
  [[nodiscard]] bool HasDispatchableLocked() const;

  RenderServiceOptions options_;
  PipelineRepository& repository_;
  /// Injected scheduling clock (options.clock or the system clock). The
  /// tracing layer keeps its own real clock — see common/clock.hpp.
  ClockSource& clock_;
  RenderEngine engine_;
  ServiceStats stats_;
  /// Quality-ladder policy (options_.ladder); a disabled governor always
  /// answers kFull.
  QualityGovernor governor_;
  /// Dispatch mode, captured once at construction (common/dispatch.hpp).
  /// kLocked routes every Submit through SubmitLocked — the pre-lock-free
  /// mutex path, kept as the differential oracle.
  dispatch::Mode mode_;

  /// Recycled request entries: admission acquires, the handle's deleter
  /// releases. Sized for the queue plus every coalesced in-flight batch, so
  /// the steady-state serving path never allocates per request. Held by
  /// shared_ptr because every handle's deleter co-owns it (see
  /// PendingDeleter).
  std::shared_ptr<ObjectPool<Pending>> pending_pool_;
  /// Lock-free admission inbox (bounded MPMC ring). Fast-path Submit pushes
  /// raw entry pointers here; only the dispatcher (or a slow-path Submit)
  /// pops, folding them into queue_ under mutex_.
  MpmcQueue<Pending*> inbox_;
  /// Entries admitted and not yet dispatched or shed == inbox occupancy +
  /// queue_.size(). The admission capacity gate in both modes: a seat is
  /// claimed by CAS below queue_capacity, so the lock-free fast path and
  /// the locked slow path share one source of truth.
  std::atomic<std::size_t> queued_count_{0};
  /// Dispatcher parked-announcement flag for WakeDispatcher's eventcount.
  std::atomic<bool> dispatcher_parked_{false};
  /// Request correlation ids for the tracing layer: every admitted request
  /// gets one (relaxed fetch_add — stays on the lock-free fast path), and
  /// every span/instant of its lifetime carries it as the trace flow id.
  std::atomic<u64> next_request_id_{1};
  /// Atomic so the lock-free fast path can check shutdown without the lock;
  /// stragglers that race the flag are shed by the destructor's final inbox
  /// drain.
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // dispatcher wakeups
  std::condition_variable idle_cv_;   // Drain() wakeups
  std::vector<PendingHandle> queue_;  // guarded by mutex_
  /// Queued entries per batch key (inbox excluded until drained). Lets the
  /// dispatcher skip the coalescing mate-scan entirely when the chosen
  /// request is the only one of its key — the batch-size-1 fast path.
  std::unordered_map<std::string, std::size_t> key_counts_;  // guarded by mutex_
  std::unordered_set<std::string> inflight_keys_;  // guarded by mutex_
  std::size_t inflight_batches_ = 0;  // guarded by mutex_
  std::size_t sweep_pos_ = 0;         // guarded by mutex_; expiry sweep cursor
  u64 next_sequence_ = 0;             // guarded by mutex_
  u64 next_dispatch_ = 0;             // guarded by mutex_
  bool paused_ = false;               // guarded by mutex_
  std::thread dispatcher_;
};

}  // namespace spnerf
