// RenderService: the multi-tenant request-serving layer above core/.
//
// Callers Submit() asynchronous RenderRequests (scene + build params +
// camera view + priority + optional deadline) and get a future. A single
// dispatcher thread schedules the bounded queue:
//
//   * Admission. The queue holds at most `queue_capacity` requests. When it
//     is full, the lowest-ranked queued request is shed (explicit kRejected
//     status) if the incoming one outranks it; otherwise the incoming
//     request is rejected immediately. The service never grows an unbounded
//     backlog — overload turns into rejections, not latency collapse.
//   * Scheduling order. Highest priority first; within a priority class,
//     earliest absolute deadline first (requests without a deadline sort
//     last); FIFO as the tie-break. Deterministic for a fixed submit order.
//   * Deadline shedding. A request whose deadline passes while it waits is
//     completed with kExpired at dispatch time without rendering — queue
//     time is never spent on work nobody can use. Once rendering starts a
//     request always completes (the result is already paid for); a deadline
//     that lapses mid-render is reported via RenderResponse::missed_deadline.
//   * Batching. The dispatcher pops the best-ranked request, then coalesces
//     every queued request with the same batch key — pipeline key (scene,
//     build params, render options, camera intrinsics, MLP seed) plus
//     masking flag — into one RenderEngine batch of up to `max_batch` jobs,
//     so tiles of concurrent same-scene requests interleave across the
//     shared ThreadPool instead of serialising per request.
//
// Rendering itself inherits the engine's determinism: response images are
// bit-identical for any worker count or batch composition.
#pragma once

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline_repository.hpp"
#include "serve/service_stats.hpp"

namespace spnerf {

/// Scheduling classes, ascending urgency. kInteractive models a live viewer
/// waiting on the frame; kBatch models offline re-renders that should only
/// soak up spare capacity.
enum class RequestPriority : int {
  kBatch = 0,
  kNormal = 1,
  kInteractive = 2,
};

const char* RequestPriorityName(RequestPriority priority);

/// One frame request. `config` names the pipeline (resolved through the
/// PipelineRepository, so same-config requests share built assets); the
/// view fields pick the orbit camera.
struct RenderRequest {
  PipelineConfig config;
  int image_width = 64;
  int image_height = 64;
  int view = 0;
  int n_views = 8;
  /// Render the SpNeRF path with (paper default) or without bitmap masking.
  bool bitmap_masking = true;
  RequestPriority priority = RequestPriority::kNormal;
  /// Relative deadline from submission, in ms; <= 0 means none. A request
  /// still queued past its deadline is shed with kExpired.
  double deadline_ms = 0.0;
};

enum class RequestStatus {
  kCompleted,  // image rendered
  kRejected,   // shed by admission control (queue full) or shutdown
  kExpired,    // deadline passed while queued; not rendered
};

const char* RequestStatusName(RequestStatus status);

struct RenderResponse {
  RequestStatus status = RequestStatus::kRejected;
  Image image;  // empty unless kCompleted
  /// Submit -> dispatch wait; for shed requests, submit -> shed (their
  /// whole queued lifetime, ~0 when dropped straight at admission).
  double queue_ms = 0.0;
  /// Submit -> response ready.
  double total_ms = 0.0;
  /// Number of requests coalesced into the engine batch that served this
  /// one (>= 1 for completed requests).
  std::size_t batch_size = 0;
  /// Monotonically increasing per-batch dispatch counter; requests of one
  /// batch share it. Exposes the scheduling order to tests and benches.
  u64 dispatch_index = 0;
  /// Completed, but after the request's deadline lapsed mid-render.
  bool missed_deadline = false;
};

struct RenderServiceOptions {
  /// Bound on queued (admitted, not yet dispatched) requests.
  std::size_t queue_capacity = 256;
  /// Cap on requests coalesced into one engine batch.
  std::size_t max_batch = 8;
  /// Tile scheduler configuration for every render the service issues (the
  /// request's own PipelineConfig::engine is ignored: execution policy is
  /// service-owned, and it never changes the rendered bytes).
  RenderEngineOptions engine;
  /// Pipeline source; nullptr uses PipelineRepository::Global().
  PipelineRepository* repository = nullptr;
  /// Start with dispatching paused; Start() (or Drain()) begins it. Lets
  /// tests and benches stage a backlog deterministically.
  bool start_paused = false;
};

class RenderService {
 public:
  explicit RenderService(RenderServiceOptions options = {});
  /// Drains nothing: queued requests are completed as kRejected, the
  /// in-flight batch finishes, then the dispatcher joins. Call Drain()
  /// first for a graceful stop.
  ~RenderService();

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  /// Non-blocking admission. The returned future always becomes ready:
  /// kCompleted with the image, or kRejected/kExpired when shed. A request
  /// shed at admission resolves immediately.
  std::future<RenderResponse> Submit(RenderRequest request);

  /// Begins dispatching (no-op unless constructed start_paused).
  void Start();

  /// Blocks until the queue is empty and no batch is in flight. Implies
  /// Start(). New submissions during a drain extend it.
  void Drain();

  [[nodiscard]] ServiceStatsSnapshot Stats() const { return stats_.Snapshot(); }
  [[nodiscard]] std::size_t QueueDepth() const;
  [[nodiscard]] const RenderServiceOptions& Options() const { return options_; }

  /// Batch-coalescing identity of a request: the pipeline key plus every
  /// request field that changes decoding (masking). Exposed for tests.
  [[nodiscard]] static std::string BatchKey(const RenderRequest& request);

 private:
  struct Pending;

  void DispatcherLoop();
  /// Completes `entry` as shed with `status` and records stats.
  void Shed(Pending& entry, RequestStatus status);

  RenderServiceOptions options_;
  PipelineRepository& repository_;
  RenderEngine engine_;
  ServiceStats stats_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // dispatcher wakeups
  std::condition_variable idle_cv_;   // Drain() wakeups
  std::vector<std::unique_ptr<Pending>> queue_;  // guarded by mutex_
  u64 next_sequence_ = 0;             // guarded by mutex_
  u64 next_dispatch_ = 0;             // guarded by mutex_
  bool paused_ = false;               // guarded by mutex_
  bool stopping_ = false;             // guarded by mutex_
  bool in_flight_ = false;            // guarded by mutex_
  std::thread dispatcher_;
};

}  // namespace spnerf
