#include "serve/render_service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "render/field_source.hpp"

namespace spnerf {

using Clock = std::chrono::steady_clock;

namespace {

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::size_t PriorityClass(RequestPriority priority) {
  return static_cast<std::size_t>(priority);
}

}  // namespace

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kBatch: return "batch";
    case RequestPriority::kNormal: return "normal";
    case RequestPriority::kInteractive: return "interactive";
  }
  return "?";
}

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kCompleted: return "completed";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kExpired: return "expired";
  }
  return "?";
}

/// One admitted request waiting in the queue.
struct RenderService::Pending {
  RenderRequest request;
  std::promise<RenderResponse> promise;
  std::string batch_key;
  Clock::time_point submitted{};
  /// Absolute deadline; Clock::time_point::max() when none.
  Clock::time_point deadline = Clock::time_point::max();
  u64 sequence = 0;

  [[nodiscard]] bool ExpiredAt(Clock::time_point now) const {
    return deadline != Clock::time_point::max() && now >= deadline;
  }

  /// True when this entry outranks `other` in scheduling order: priority
  /// first, then earliest deadline, then FIFO. Total and deterministic for
  /// a fixed submission order (sequences are unique).
  [[nodiscard]] bool Outranks(const Pending& other) const {
    if (request.priority != other.request.priority) {
      return static_cast<int>(request.priority) >
             static_cast<int>(other.request.priority);
    }
    if (deadline != other.deadline) return deadline < other.deadline;
    return sequence < other.sequence;
  }
};

/// One issued engine batch. Owns everything the render references until the
/// completion half runs: the coalesced requests, the acquired pipeline and
/// the stateless field source backing every job.
struct RenderService::InflightBatch {
  std::vector<std::unique_ptr<Pending>> entries;
  std::string key;
  u64 dispatch_index = 0;
  Clock::time_point issued{};
  std::shared_ptr<const ScenePipeline> pipeline;
  std::unique_ptr<SpNeRFFieldSource> source;
};

std::string RenderService::BatchKey(const RenderRequest& request) {
  // Engine fields are execution policy (service-owned, never change the
  // rendered bytes): exclude them so requests differing only there still
  // coalesce.
  PipelineConfig config = request.config;
  config.engine = RenderEngineOptions{};
  return PipelineRepository::PipelineKey(config) +
         (request.bitmap_masking ? "+mask" : "-mask");
}

RenderService::RenderService(RenderServiceOptions options)
    : options_(options),
      repository_(options.repository ? *options.repository
                                     : PipelineRepository::Global()),
      engine_(options.engine),
      paused_(options.start_paused) {
  SPNERF_CHECK_MSG(options_.queue_capacity > 0,
                   "serve: queue capacity must be positive");
  SPNERF_CHECK_MSG(options_.max_batch > 0,
                   "serve: max batch must be positive");
  SPNERF_CHECK_MSG(options_.max_inflight_batches > 0,
                   "serve: max inflight batches must be positive");
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

RenderService::~RenderService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    paused_ = false;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void RenderService::Shed(Pending& entry, RequestStatus status) {
  RenderResponse response;
  response.status = status;
  response.total_ms = MsBetween(entry.submitted, Clock::now());
  // A shed request spent its whole life queued (~0 when dropped straight
  // at admission); report that wait.
  response.queue_ms = response.total_ms;
  if (status == RequestStatus::kExpired) {
    stats_.RecordExpired(PriorityClass(entry.request.priority));
  } else {
    stats_.RecordRejected(PriorityClass(entry.request.priority));
  }
  entry.promise.set_value(std::move(response));
}

void RenderService::SweepExpiredLocked(
    std::chrono::steady_clock::time_point now,
    std::vector<std::unique_ptr<Pending>>& out) {
  auto alive = queue_.begin();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->ExpiredAt(now)) {
      out.push_back(std::move(*it));
    } else {
      if (alive != it) *alive = std::move(*it);
      ++alive;
    }
  }
  queue_.erase(alive, queue_.end());
}

std::future<RenderResponse> RenderService::Submit(RenderRequest request) {
  auto entry = std::make_unique<Pending>();
  entry->request = std::move(request);
  // Execution policy is service-owned: normalising the ignored engine
  // fields keeps requests differing only in them on one batch key and one
  // PipelineRepository entry (engine options never change rendered bytes).
  entry->request.config.engine = RenderEngineOptions{};
  entry->batch_key = BatchKey(entry->request);
  entry->submitted = Clock::now();
  if (entry->request.deadline_ms > 0.0) {
    entry->deadline =
        entry->submitted + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   entry->request.deadline_ms));
  }
  std::future<RenderResponse> future = entry->promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  entry->sequence = next_sequence_++;
  if (stopping_) {
    lock.unlock();
    stats_.RecordSubmitted(0);
    Shed(*entry, RequestStatus::kRejected);
    return future;
  }

  std::vector<std::unique_ptr<Pending>> dead;
  if (queue_.size() >= options_.queue_capacity) {
    // A full queue may be holding already-expired entries; shed those
    // first — dead work must neither consume capacity nor hold its
    // (earliest-deadline, hence highest) rank against live arrivals.
    SweepExpiredLocked(Clock::now(), dead);
  }
  if (queue_.size() < options_.queue_capacity) {
    queue_.push_back(std::move(entry));
    const std::size_t depth = queue_.size();
    lock.unlock();
    for (auto& e : dead) Shed(*e, RequestStatus::kExpired);
    stats_.RecordSubmitted(depth);
    work_cv_.notify_one();
    return future;
  }

  // Still full of live work. Load shedding: drop the lowest-ranked request
  // — the incoming one, unless it outranks something already queued (a
  // full queue of batch work must not lock out an interactive request).
  // Outranks() is a strict total order, so max_element under it is the
  // worst entry.
  auto worst = std::max_element(
      queue_.begin(), queue_.end(),
      [](const std::unique_ptr<Pending>& a,
         const std::unique_ptr<Pending>& b) { return a->Outranks(*b); });
  if (worst != queue_.end() && entry->Outranks(**worst)) {
    std::unique_ptr<Pending> evicted = std::move(*worst);
    queue_.erase(worst);
    queue_.push_back(std::move(entry));
    const std::size_t depth = queue_.size();
    lock.unlock();
    stats_.RecordSubmitted(depth);
    Shed(*evicted, RequestStatus::kRejected);
    work_cv_.notify_one();
    return future;
  }
  const std::size_t depth = queue_.size();
  lock.unlock();
  stats_.RecordSubmitted(depth);
  Shed(*entry, RequestStatus::kRejected);
  return future;
}

void RenderService::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void RenderService::Drain() {
  Start();
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && inflight_batches_ == 0) || stopping_;
  });
}

std::size_t RenderService::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t RenderService::InflightBatches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_batches_;
}

bool RenderService::HasDispatchableLocked() const {
  if (queue_.empty()) return false;
  if (inflight_keys_.empty()) return true;
  for (const std::unique_ptr<Pending>& e : queue_) {
    if (inflight_keys_.count(e->batch_key) == 0) return true;
  }
  return false;
}

void RenderService::ReleaseBatch(const InflightBatch& batch) {
  // The dispatcher may be waiting for a free in-flight seat or for this
  // batch's key; Drain() and the destructor wait for inflight to hit zero.
  // Notify while holding the lock: the moment a waiter observes
  // inflight_batches_ == 0 it may destroy the service, so the notify must
  // complete before that observation is possible.
  std::lock_guard<std::mutex> lock(mutex_);
  inflight_keys_.erase(batch.key);
  --inflight_batches_;
  work_cv_.notify_all();
  idle_cv_.notify_all();
}

void RenderService::CompleteBatch(
    const std::shared_ptr<InflightBatch>& batch,
    std::vector<std::future<RenderResult>> results) {
  const Clock::time_point done = Clock::now();
  stats_.RecordBatch(batch->entries.size());
  for (std::size_t i = 0; i < batch->entries.size(); ++i) {
    Pending& entry = *batch->entries[i];
    try {
      RenderResult result = results[i].get();  // ready; rethrows job errors
      RenderResponse response;
      response.status = RequestStatus::kCompleted;
      response.image = std::move(result.image);
      response.queue_ms = MsBetween(entry.submitted, batch->issued);
      response.total_ms = MsBetween(entry.submitted, done);
      response.batch_size = batch->entries.size();
      response.dispatch_index = batch->dispatch_index;
      response.missed_deadline = entry.ExpiredAt(done);
      stats_.RecordCompleted(response.queue_ms, response.total_ms,
                             PriorityClass(entry.request.priority));
      entry.promise.set_value(std::move(response));
    } catch (const std::exception& e) {
      // A render error must not wedge the service: fail this request's
      // future with the error and keep serving the rest of the batch.
      SPNERF_LOG_WARN << "serve: request failed mid-render (" << e.what()
                      << ")";
      entry.promise.set_exception(std::current_exception());
    } catch (...) {
      // Non-std exceptions too: the completion half runs on a pool worker
      // whose region drops escaped errors, so anything not caught here
      // would leave this future unfulfilled forever.
      SPNERF_LOG_WARN << "serve: request failed mid-render (non-std error)";
      entry.promise.set_exception(std::current_exception());
    }
  }
  ReleaseBatch(*batch);
}

void RenderService::IssueBatch(std::shared_ptr<InflightBatch> batch) {
  try {
    // One pipeline serves the whole batch (identical batch key ==
    // identical pipeline key); one stateless source backs every job. Both
    // live in the batch context until the completion half retires it.
    const RenderRequest& front = batch->entries.front()->request;
    batch->pipeline = repository_.Acquire(front.config);
    batch->source = std::make_unique<SpNeRFFieldSource>(
        batch->pipeline->Codec(), front.config.render.fp16_mlp,
        /*collect_counters=*/false);
    batch->source->SetMasking(front.bitmap_masking);

    std::vector<RenderJob> jobs;
    jobs.reserve(batch->entries.size());
    for (const std::unique_ptr<Pending>& entry : batch->entries) {
      const RenderRequest& r = entry->request;
      RenderJob job;
      job.source = batch->source.get();
      job.mlp = &batch->pipeline->GetMlp();
      job.camera = batch->pipeline->MakeCamera(r.image_width, r.image_height,
                                               r.view, r.n_views);
      job.options = batch->pipeline->RenderOptionsWithSkip();
      jobs.push_back(job);
    }
    engine_.SubmitBatch(
        std::move(jobs),
        [this, batch](std::vector<std::future<RenderResult>> results) {
          CompleteBatch(batch, std::move(results));
        });
  } catch (const std::exception& e) {
    // A failed pipeline build or job setup must not wedge the service:
    // fail the batch's futures with the error instead of fulfilling them,
    // and free the in-flight seat so the dispatcher keeps going. (Render
    // errors surface per entry in CompleteBatch, not here.) The catch must
    // be total: this runs inside a detached pool region, which drops
    // escaped exceptions — anything uncaught would leak the batch's seat
    // and key and wedge Drain()/teardown forever.
    SPNERF_LOG_WARN << "serve: batch failed (" << e.what() << ")";
    for (std::unique_ptr<Pending>& entry : batch->entries) {
      entry->promise.set_exception(std::current_exception());
    }
    ReleaseBatch(*batch);
  } catch (...) {
    SPNERF_LOG_WARN << "serve: batch failed (non-std error)";
    for (std::unique_ptr<Pending>& entry : batch->entries) {
      entry->promise.set_exception(std::current_exception());
    }
    ReleaseBatch(*batch);
  }
}

void RenderService::DispatcherLoop() {
  for (;;) {
    std::shared_ptr<InflightBatch> batch;
    std::vector<std::unique_ptr<Pending>> expired;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return stopping_ ||
               (!paused_ &&
                inflight_batches_ < options_.max_inflight_batches &&
                HasDispatchableLocked());
      });
      if (stopping_) {
        // Complete the backlog as rejected so no future dangles, then wait
        // out the in-flight batches — their completion halves touch the
        // service and must finish before it tears down.
        std::vector<std::unique_ptr<Pending>> drained;
        drained.swap(queue_);
        work_cv_.wait(lock, [this] { return inflight_batches_ == 0; });
        lock.unlock();
        for (std::unique_ptr<Pending>& entry : drained) {
          Shed(*entry, RequestStatus::kRejected);
        }
        idle_cv_.notify_all();
        return;
      }

      // Deadline sweep: anything already past its deadline is shed before
      // it can consume render capacity.
      SweepExpiredLocked(Clock::now(), expired);

      // Issue half: pop the best-ranked request whose key has no batch in
      // flight (same-key requests wait and coalesce into the next batch),
      // then coalesce same-key requests in scheduling order up to the cap.
      auto best = queue_.end();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (inflight_keys_.count((*it)->batch_key) != 0) continue;
        if (best == queue_.end() || (*it)->Outranks(**best)) best = it;
      }
      if (best != queue_.end()) {
        batch = std::make_shared<InflightBatch>();
        batch->key = (*best)->batch_key;
        batch->entries.push_back(std::move(*best));
        queue_.erase(best);
        // Mates join in scheduling order, not submission order: when
        // max_batch binds, the seats go to the highest-ranked same-key
        // requests (a batch-class mate must never displace an interactive
        // one into a later dispatch).
        while (batch->entries.size() < options_.max_batch) {
          auto mate = queue_.end();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if ((*it)->batch_key != batch->key) continue;
            if (mate == queue_.end() || (*it)->Outranks(**mate)) mate = it;
          }
          if (mate == queue_.end()) break;
          batch->entries.push_back(std::move(*mate));
          queue_.erase(mate);
        }
        inflight_keys_.insert(batch->key);
        ++inflight_batches_;
        batch->dispatch_index = next_dispatch_++;
        batch->issued = Clock::now();
      }
      stats_.RecordQueueDepth(queue_.size());
    }

    for (std::unique_ptr<Pending>& entry : expired) {
      Shed(*entry, RequestStatus::kExpired);
    }
    if (!batch) {
      idle_cv_.notify_all();
      continue;
    }
    // The issue half (pipeline acquisition — possibly a cold build — and
    // job setup) runs detached on the engine's pool, not on this thread:
    // many tiny batches with distinct keys no longer serialise behind one
    // dispatcher doing their setup, and the dispatcher loops straight back
    // to pop the next dispatchable key. The batch's in-flight seat and key
    // were claimed above under the lock, so per-key ordering and the
    // inflight cap are unaffected by issue tasks completing out of order.
    // On a pool with no worker threads Submit runs inline — the previous
    // serial behaviour. The task only borrows `this` until SubmitBatch
    // returns, which happens before the completion half can release the
    // seat that a tearing-down destructor waits on.
    engine_.Pool().Submit(1, [this, batch = std::move(batch)](unsigned) {
      IssueBatch(batch);
    });
  }
}

}  // namespace spnerf
