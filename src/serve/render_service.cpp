#include "serve/render_service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "render/field_source.hpp"
#include "render/quality.hpp"

namespace spnerf {

using Clock = std::chrono::steady_clock;

namespace {

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::size_t PriorityClass(RequestPriority priority) {
  return static_cast<std::size_t>(priority);
}

u64 ToMicros(double ms) {
  return ms <= 0.0 ? 0 : static_cast<u64>(ms * 1000.0);
}

/// Registry handles for the serving layer, resolved once (the registry map
/// lookup never sits on a request path). Recording through them is gated on
/// obs::CountersEnabled() at each site.
struct ServeMetrics {
  obs::Counter& submitted;
  obs::Counter& completed;
  obs::Counter& rejected;
  obs::Counter& expired;
  obs::Counter& batches;
  obs::Counter& coalesced;  // requests that shared another request's batch
  obs::Gauge& queue_depth;
  obs::Histogram& queue_us;
  obs::Histogram& total_us;
  obs::Histogram& batch_size;
  /// Quality-ladder instrumentation: completions per rung, plus the rung
  /// value distribution ("serve/rung") — its p50/p99 say how degraded the
  /// served traffic was at a glance.
  std::array<obs::Counter*, kQualityRungCount> rung_completed;
  obs::Histogram& rung_dist;
};

ServeMetrics& Metrics() {
  auto& reg = obs::MetricsRegistry::Global();
  static ServeMetrics m{reg.GetCounter("serve/submitted"),
                        reg.GetCounter("serve/completed"),
                        reg.GetCounter("serve/rejected"),
                        reg.GetCounter("serve/expired"),
                        reg.GetCounter("serve/batches"),
                        reg.GetCounter("serve/coalesced"),
                        reg.GetGauge("serve/queue-depth"),
                        reg.GetHistogram("serve/queue-us"),
                        reg.GetHistogram("serve/total-us"),
                        reg.GetHistogram("serve/batch-size"),
                        {&reg.GetCounter("serve/rung0"),
                         &reg.GetCounter("serve/rung1"),
                         &reg.GetCounter("serve/rung2"),
                         &reg.GetCounter("serve/rung3")},
                        reg.GetHistogram("serve/rung")};
  return m;
}

/// Interned tag ids for the request-span args, resolved once per process so
/// full-trace recording never re-probes the intern table for fixed names.
u32 PriorityTagId(RequestPriority priority) {
  static const u32 ids[kPriorityClassCount] = {
      obs::InternString("batch"), obs::InternString("normal"),
      obs::InternString("interactive")};
  return ids[PriorityClass(priority)];
}

u32 OutcomeTagId(RequestStatus status) {
  static const u32 ids[3] = {obs::InternString("completed"),
                             obs::InternString("rejected"),
                             obs::InternString("expired")};
  return ids[static_cast<std::size_t>(status)];
}

u32 ModeTagId(dispatch::Mode mode) {
  static const u32 ids[2] = {obs::InternString("locked"),
                             obs::InternString("lockfree")};
  return ids[static_cast<std::size_t>(mode)];
}

/// Chunk size of the incremental full-queue expiry sweep at admission: the
/// bounded work an admit pays per attempt to free a seat.
constexpr std::size_t kAdmitSweepChunk = 32;

constexpr std::size_t kNoBest = static_cast<std::size_t>(-1);

}  // namespace

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kBatch: return "batch";
    case RequestPriority::kNormal: return "normal";
    case RequestPriority::kInteractive: return "interactive";
  }
  return "?";
}

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kCompleted: return "completed";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kExpired: return "expired";
  }
  return "?";
}

/// One admitted request waiting in the queue. Pooled: entries recycle
/// through pending_pool_, keeping their grown request/key storage.
struct RenderService::Pending {
  RenderRequest request;
  std::promise<RenderResponse> promise;
  std::string batch_key;
  Clock::time_point submitted{};
  /// Absolute deadline; Clock::time_point::max() when none.
  Clock::time_point deadline = Clock::time_point::max();
  u64 sequence = 0;
  /// Trace correlation id (flow of every span this request emits). Assigned
  /// at every admission; 0 only on recycled entries not yet re-armed.
  u64 request_id = 0;
  /// Trace-clock submit stamp (obs::TraceNowNs — NOT the scheduling clock),
  /// recorded only under full tracing; 0 otherwise. Start of the request's
  /// "request" and "queue" spans.
  u64 trace_submit_ns = 0;
  /// Interned batch key for span tags (0 unless full tracing).
  u32 trace_key_id = 0;

  [[nodiscard]] bool ExpiredAt(Clock::time_point now) const {
    return deadline != Clock::time_point::max() && now >= deadline;
  }

  /// True when this entry outranks `other` in scheduling order: priority
  /// first, then earliest deadline, then FIFO. Total and deterministic for
  /// a fixed submission order (sequences are unique).
  [[nodiscard]] bool Outranks(const Pending& other) const {
    if (request.priority != other.request.priority) {
      return static_cast<int>(request.priority) >
             static_cast<int>(other.request.priority);
    }
    if (deadline != other.deadline) return deadline < other.deadline;
    return sequence < other.sequence;
  }
};

void RenderService::PendingDeleter::operator()(Pending* entry) const {
  if (entry != nullptr && pool != nullptr) pool->Release(entry);
}

/// One issued engine batch. Owns everything the render references until the
/// completion half runs: the coalesced requests, the acquired pipeline and
/// the stateless field source backing every job.
struct RenderService::InflightBatch {
  std::vector<PendingHandle> entries;
  std::string key;
  /// Quality rung the whole batch renders at — coalescing is keyed on
  /// (batch key, rung), so every entry shares these options.
  QualityRung rung = QualityRung::kFull;
  u64 dispatch_index = 0;
  Clock::time_point issued{};
  /// Trace-clock issue stamp (end of each entry's "queue" span, start of
  /// the batch's "issue" span); 0 unless full tracing.
  u64 trace_issue_ns = 0;
  std::shared_ptr<const ScenePipeline> pipeline;
  std::unique_ptr<SpNeRFFieldSource> source;
};

std::string RenderService::BatchKey(const RenderRequest& request) {
  // Engine fields are execution policy (service-owned, never change the
  // rendered bytes): exclude them so requests differing only there still
  // coalesce.
  PipelineConfig config = request.config;
  config.engine = RenderEngineOptions{};
  return PipelineRepository::PipelineKey(config) +
         (request.bitmap_masking ? "+mask" : "-mask");
}

RenderService::RenderService(RenderServiceOptions options)
    : options_(options),
      repository_(options.repository ? *options.repository
                                     : PipelineRepository::Global()),
      clock_(options.clock ? *options.clock : SystemClock()),
      engine_(options.engine),
      governor_(options.ladder, options.queue_capacity),
      mode_(dispatch::ActiveMode()),
      // Enough recycled entries for the full queue plus every coalesced
      // in-flight batch; past that Acquire degrades to the heap, never
      // fails.
      pending_pool_(std::make_shared<ObjectPool<Pending>>(
          options.queue_capacity +
          options.max_batch * options.max_inflight_batches + 8)),
      inbox_(std::max<std::size_t>(options.queue_capacity, 1)),
      paused_(options.start_paused) {
  SPNERF_CHECK_MSG(options_.queue_capacity > 0,
                   "serve: queue capacity must be positive");
  SPNERF_CHECK_MSG(options_.max_batch > 0,
                   "serve: max batch must be positive");
  SPNERF_CHECK_MSG(options_.max_inflight_batches > 0,
                   "serve: max inflight batches must be positive");
  stats_.SetClock(&clock_);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

RenderService::~RenderService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_.store(true, std::memory_order_seq_cst);
    paused_ = false;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Shed fast-path stragglers that raced the stopping flag into the inbox
  // after the dispatcher's final drain: their futures must still resolve.
  Pending* raw = nullptr;
  while (inbox_.TryPop(raw)) {
    PendingHandle entry(raw, PendingDeleter{pending_pool_});
    queued_count_.fetch_sub(1, std::memory_order_relaxed);
    Shed(*entry, RequestStatus::kRejected);
  }
}

RenderService::PendingHandle RenderService::AcquirePending() {
  Pending* entry = pending_pool_->Acquire();
  // Re-arm the recycled entry: the promise's previous shared state was
  // consumed by its last use; request/key fields are overwritten by the
  // caller (their string/vector storage keeps its capacity — the win).
  entry->promise = std::promise<RenderResponse>{};
  entry->deadline = Clock::time_point::max();
  entry->sequence = 0;
  entry->request_id = 0;
  entry->trace_submit_ns = 0;
  entry->trace_key_id = 0;
  return PendingHandle(entry, PendingDeleter{pending_pool_});
}

void RenderService::Shed(Pending& entry, RequestStatus status) {
  RenderResponse response;
  response.status = status;
  response.total_ms = MsBetween(entry.submitted, clock_.Now());
  // A shed request spent its whole life queued (~0 when dropped straight
  // at admission); report that wait.
  response.queue_ms = response.total_ms;
  if (status == RequestStatus::kExpired) {
    stats_.RecordExpired(PriorityClass(entry.request.priority));
  } else {
    stats_.RecordRejected(PriorityClass(entry.request.priority));
  }
  if (obs::CountersEnabled()) {
    (status == RequestStatus::kExpired ? Metrics().expired
                                       : Metrics().rejected)
        .Add();
  }
  if (entry.trace_submit_ns != 0) {
    // A shed request's whole timeline is its queue wait: one "request" span
    // submit -> shed, tagged with the terminal outcome.
    obs::TraceEvent ev;
    ev.start_ns = entry.trace_submit_ns;
    ev.end_ns = obs::TraceNowNs();
    ev.category = "serve";
    ev.name = "request";
    ev.flow = entry.request_id;
    ev.AddStrArg("priority", PriorityTagId(entry.request.priority));
    ev.AddStrArg("key", entry.trace_key_id);
    ev.AddStrArg("mode", ModeTagId(mode_));
    ev.AddStrArg("outcome", OutcomeTagId(status));
    obs::Emit(ev);
  }
  entry.promise.set_value(std::move(response));
}

void RenderService::DecKeyCountLocked(const std::string& key) {
  auto it = key_counts_.find(key);
  if (it != key_counts_.end() && --it->second == 0) key_counts_.erase(it);
}

void RenderService::DrainInboxLocked() {
  Pending* raw = nullptr;
  while (inbox_.TryPop(raw)) {
    PendingHandle entry(raw, PendingDeleter{pending_pool_});
    // Inbox FIFO order is submission order per producer, so assigning the
    // sequence here preserves the FIFO tie-break a locked-mode submit would
    // have gotten under the mutex.
    entry->sequence = next_sequence_++;
    ++key_counts_[entry->batch_key];
    queue_.push_back(std::move(entry));
  }
  // queued_count_ is unchanged: inbox entries were counted when their seat
  // was claimed at admission.
}

bool RenderService::SweepSomeExpiredLocked(
    std::chrono::steady_clock::time_point now,
    std::vector<PendingHandle>& out) {
  const std::size_t budget = queue_.size();  // at most one full cycle
  std::size_t inspected = 0;
  bool freed = false;
  while (inspected < budget && !queue_.empty()) {
    for (std::size_t c = 0;
         c < kAdmitSweepChunk && inspected < budget && !queue_.empty();
         ++c, ++inspected) {
      if (sweep_pos_ >= queue_.size()) sweep_pos_ = 0;
      if (queue_[sweep_pos_]->ExpiredAt(now)) {
        DecKeyCountLocked(queue_[sweep_pos_]->batch_key);
        out.push_back(std::move(queue_[sweep_pos_]));
        // Swap-with-back removal: O(1), and queue order is free — every
        // scheduling decision ranks by Outranks(), never by position.
        queue_[sweep_pos_] = std::move(queue_.back());
        queue_.pop_back();
        queued_count_.fetch_sub(1, std::memory_order_relaxed);
        freed = true;
      } else {
        ++sweep_pos_;
      }
    }
    // A seat is free: stop — the admit only needed one, and the
    // dispatcher's own integrated pass sheds the rest. Only a queue with
    // nothing expired pays the full cycle (the cost the old full sweep
    // always paid).
    if (freed) break;
  }
  return freed;
}

void RenderService::WakeDispatcher() {
  // Producer half of the dispatcher eventcount. The inbox push is already
  // done; the fence orders it against the parked-flag read (Dekker with the
  // dispatcher's seq_cst parked store + fence + inbox check): whichever
  // side's seq_cst step comes first in the total order, either the
  // dispatcher's predicate sees the push or this sees the announcement and
  // notifies under the lock.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (dispatcher_parked_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(mutex_);
    work_cv_.notify_all();
  }
}

std::future<RenderResponse> RenderService::Submit(RenderRequest request) {
  PendingHandle entry = AcquirePending();
  entry->request = std::move(request);
  // Execution policy is service-owned: normalising the ignored engine
  // fields keeps requests differing only in them on one batch key and one
  // PipelineRepository entry (engine options never change rendered bytes).
  entry->request.config.engine = RenderEngineOptions{};
  entry->batch_key = BatchKey(entry->request);
  entry->submitted = clock_.Now();
  if (entry->request.deadline_ms > 0.0) {
    entry->deadline =
        entry->submitted + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   entry->request.deadline_ms));
  }
  entry->request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  if (obs::CountersEnabled()) Metrics().submitted.Add();
  if (obs::FullTracingEnabled()) {
    // Stamp the span start on the trace clock and intern the batch key once
    // per request — every later event of this request reuses both. The
    // intern lookup is lock-free (allocation only on a key's first-ever
    // occurrence); recording stays lock-free end to end.
    entry->trace_submit_ns = obs::TraceNowNs();
    entry->trace_key_id = obs::InternString(entry->batch_key);
    obs::EmitInstant("serve", "admit", entry->request_id);
  }
  std::future<RenderResponse> future = entry->promise.get_future();

  if (stopping_.load(std::memory_order_acquire)) {
    stats_.RecordSubmitted(0);
    Shed(*entry, RequestStatus::kRejected);
    return future;
  }

  if (mode_ == dispatch::Mode::kLockFree) {
    // Admission fast path: claim a seat below capacity by CAS and ride the
    // inbox ring to the dispatcher — no mutex anywhere. The dispatcher
    // assigns the sequence when it folds the inbox in, which preserves
    // submission order per producer (inbox is FIFO).
    std::size_t n = queued_count_.load(std::memory_order_relaxed);
    while (n < options_.queue_capacity) {
      if (!queued_count_.compare_exchange_weak(n, n + 1,
                                               std::memory_order_relaxed)) {
        continue;
      }
      Pending* raw = entry.release();
      if (!inbox_.TryPush(raw)) {
        // Unreachable in steady state — the seat count bounds inbox
        // occupancy by its capacity — but tolerate it: return the seat and
        // take the locked path.
        entry = PendingHandle(raw, PendingDeleter{pending_pool_});
        queued_count_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      stats_.RecordSubmitted(n + 1);
      WakeDispatcher();
      return future;
    }
    // Queue full: shed/evict decisions need the ranked queue — fall
    // through to the locked slow path (which still resolves every shed
    // future before returning).
  }
  return SubmitLocked(std::move(entry), std::move(future));
}

std::future<RenderResponse> RenderService::SubmitLocked(
    PendingHandle entry, std::future<RenderResponse> future) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Fold any inbox backlog in first: the capacity and eviction decisions
  // below must rank against every admitted request, and this entry's
  // sequence must come after theirs (they were submitted earlier).
  DrainInboxLocked();
  entry->sequence = next_sequence_++;
  if (stopping_.load(std::memory_order_relaxed)) {
    lock.unlock();
    stats_.RecordSubmitted(0);
    Shed(*entry, RequestStatus::kRejected);
    return future;
  }

  // The atomic seat count — not queue_.size() — is the one capacity gate:
  // lock-free admitters race this CAS without the lock.
  auto claim_seat = [this] {
    std::size_t n = queued_count_.load(std::memory_order_relaxed);
    while (n < options_.queue_capacity) {
      if (queued_count_.compare_exchange_weak(n, n + 1,
                                              std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  };

  std::vector<PendingHandle> dead;
  bool seated = claim_seat();
  if (!seated) {
    // A full queue may be holding already-expired entries; shed those
    // first — dead work must neither consume capacity nor hold its
    // (earliest-deadline, hence highest) rank against live arrivals.
    if (SweepSomeExpiredLocked(clock_.Now(), dead)) seated = claim_seat();
  }
  if (seated) {
    ++key_counts_[entry->batch_key];
    queue_.push_back(std::move(entry));
    const std::size_t depth = queued_count_.load(std::memory_order_relaxed);
    lock.unlock();
    for (PendingHandle& e : dead) Shed(*e, RequestStatus::kExpired);
    stats_.RecordSubmitted(depth);
    work_cv_.notify_one();
    return future;
  }

  // Still full of live work: degrade over reject — open the governor's
  // pressure window before any shedding decision, so subsequent issues run
  // cheap rungs, the queue drains faster and the next admission finds a
  // seat instead of this dead end. (A disabled governor ignores it.)
  if (governor_.Enabled()) governor_.NotePressure();

  // Load shedding: drop the lowest-ranked request
  // — the incoming one, unless it outranks something already queued (a
  // full queue of batch work must not lock out an interactive request).
  // Outranks() is a strict total order, so max_element under it is the
  // worst entry.
  auto worst = std::max_element(
      queue_.begin(), queue_.end(),
      [](const PendingHandle& a, const PendingHandle& b) {
        return a->Outranks(*b);
      });
  if (worst != queue_.end() && entry->Outranks(**worst)) {
    PendingHandle evicted = std::move(*worst);
    queue_.erase(worst);
    DecKeyCountLocked(evicted->batch_key);
    ++key_counts_[entry->batch_key];
    queue_.push_back(std::move(entry));
    // The evicted entry's seat transfers to the incoming one:
    // queued_count_ is unchanged.
    const std::size_t depth = queued_count_.load(std::memory_order_relaxed);
    lock.unlock();
    for (PendingHandle& e : dead) Shed(*e, RequestStatus::kExpired);
    stats_.RecordSubmitted(depth);
    Shed(*evicted, RequestStatus::kRejected);
    work_cv_.notify_one();
    return future;
  }
  const std::size_t depth = queued_count_.load(std::memory_order_relaxed);
  lock.unlock();
  for (PendingHandle& e : dead) Shed(*e, RequestStatus::kExpired);
  stats_.RecordSubmitted(depth);
  Shed(*entry, RequestStatus::kRejected);
  return future;
}

void RenderService::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void RenderService::Drain() {
  Start();
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (queued_count_.load(std::memory_order_relaxed) == 0 &&
            inflight_batches_ == 0) ||
           stopping_.load(std::memory_order_relaxed);
  });
}

std::size_t RenderService::QueueDepth() const {
  // Admitted and not yet dispatched or shed, inbox included — maintained
  // atomically in both modes, so no lock.
  return queued_count_.load(std::memory_order_relaxed);
}

std::size_t RenderService::InflightBatches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_batches_;
}

bool RenderService::HasDispatchableLocked() const {
  if (queue_.empty()) return false;
  if (inflight_keys_.empty()) return true;
  for (const PendingHandle& e : queue_) {
    if (inflight_keys_.count(e->batch_key) == 0) return true;
  }
  return false;
}

void RenderService::ReleaseBatch(const InflightBatch& batch) {
  // The dispatcher may be waiting for a free in-flight seat or for this
  // batch's key; Drain() and the destructor wait for inflight to hit zero.
  // Notify while holding the lock: the moment a waiter observes
  // inflight_batches_ == 0 it may destroy the service, so the notify must
  // complete before that observation is possible.
  std::lock_guard<std::mutex> lock(mutex_);
  inflight_keys_.erase(batch.key);
  --inflight_batches_;
  work_cv_.notify_all();
  idle_cv_.notify_all();
}

void RenderService::CompleteBatch(
    const std::shared_ptr<InflightBatch>& batch,
    std::vector<std::future<RenderResult>> results) {
  const Clock::time_point done = clock_.Now();
  const u64 done_ns =
      obs::FullTracingEnabled() ? obs::TraceNowNs() : 0;
  // Explicitly reset (emitted) BEFORE ReleaseBatch: once the in-flight seat
  // frees (what Drain() and teardown wait on), every span of the batch is
  // already in its ring — a trace drain right after Drain() sees them all.
  std::optional<obs::TraceSpan> complete_span;
  complete_span.emplace("serve", "complete",
                        batch->entries.front()->request_id);
  complete_span->AddArg("batch",
                        static_cast<i64>(batch->dispatch_index));
  stats_.RecordBatch(batch->entries.size());
  // Online cost-model refinement: the batch's issue->complete span on the
  // service's scheduling clock (virtual under ManualClock — deterministic
  // tests never see measured wall time), amortised per request. Also how
  // warmup full-quality renders calibrate a scene's ladder.
  if (governor_.Enabled() && !batch->entries.empty()) {
    governor_.Observe(batch->key, batch->rung,
                      MsBetween(batch->issued, done) /
                          static_cast<double>(batch->entries.size()));
  }
  const std::size_t rung_index = static_cast<std::size_t>(batch->rung);
  const int divisor = RungResolutionDivisor(batch->rung);
  for (std::size_t i = 0; i < batch->entries.size(); ++i) {
    Pending& entry = *batch->entries[i];
    try {
      RenderResult result = results[i].get();  // ready; rethrows job errors
      RenderResponse response;
      response.status = RequestStatus::kCompleted;
      // Reduced-resolution rungs upsample back to the requested size here,
      // off the render hot path; rung 0 moves the full-quality image
      // through untouched.
      if (divisor > 1) {
        response.image = UpsampleBilinear(
            result.image, entry.request.image_width,
            entry.request.image_height);
      } else {
        response.image = std::move(result.image);
      }
      response.queue_ms = MsBetween(entry.submitted, batch->issued);
      response.total_ms = MsBetween(entry.submitted, done);
      response.batch_size = batch->entries.size();
      response.dispatch_index = batch->dispatch_index;
      response.missed_deadline = entry.ExpiredAt(done);
      response.rung = batch->rung;
      stats_.RecordCompleted(response.queue_ms, response.total_ms,
                             PriorityClass(entry.request.priority),
                             rung_index);
      if (obs::CountersEnabled()) {
        Metrics().completed.Add();
        Metrics().queue_us.Record(ToMicros(response.queue_ms));
        Metrics().total_us.Record(ToMicros(response.total_ms));
        Metrics().rung_completed[std::min(
            rung_index, kQualityRungCount - 1)]->Add();
        Metrics().rung_dist.Record(static_cast<u64>(rung_index));
      }
      if (entry.trace_submit_ns != 0 && done_ns != 0) {
        // The request's envelope span, submit -> response ready, carrying
        // every tag the timeline reconstruction needs.
        obs::TraceEvent ev;
        ev.start_ns = entry.trace_submit_ns;
        ev.end_ns = done_ns;
        ev.category = "serve";
        ev.name = "request";
        ev.flow = entry.request_id;
        ev.AddStrArg("priority", PriorityTagId(entry.request.priority));
        ev.AddStrArg("key", entry.trace_key_id);
        ev.AddStrArg("mode", ModeTagId(mode_));
        ev.AddStrArg("outcome", OutcomeTagId(RequestStatus::kCompleted));
        obs::Emit(ev);
      }
      entry.promise.set_value(std::move(response));
    } catch (const std::exception& e) {
      // A render error must not wedge the service: fail this request's
      // future with the error and keep serving the rest of the batch.
      SPNERF_LOG_WARN << "serve: request failed mid-render (" << e.what()
                      << ")";
      entry.promise.set_exception(std::current_exception());
    } catch (...) {
      // Non-std exceptions too: the completion half runs on a pool worker
      // whose region drops escaped errors, so anything not caught here
      // would leave this future unfulfilled forever.
      SPNERF_LOG_WARN << "serve: request failed mid-render (non-std error)";
      entry.promise.set_exception(std::current_exception());
    }
  }
  complete_span.reset();
  ReleaseBatch(*batch);
}

void RenderService::IssueBatch(std::shared_ptr<InflightBatch> batch) {
  if (batch->trace_issue_ns != 0) {
    // Retroactive "queue" span per coalesced request: submit -> issue, on
    // timestamps captured at those moments (spans carry explicit times, so
    // recording after the fact costs the hot path nothing).
    for (const PendingHandle& entry : batch->entries) {
      if (entry->trace_submit_ns == 0) continue;
      obs::TraceEvent ev;
      ev.start_ns = entry->trace_submit_ns;
      ev.end_ns = batch->trace_issue_ns;
      ev.category = "serve";
      ev.name = "queue";
      ev.flow = entry->request_id;
      ev.AddStrArg("priority", PriorityTagId(entry->request.priority));
      ev.AddArg("batch", static_cast<i64>(batch->dispatch_index));
      obs::Emit(ev);
    }
  }
  obs::TraceSpan issue_span("serve", "issue",
                            batch->entries.front()->request_id);
  issue_span.AddArg("batch", static_cast<i64>(batch->dispatch_index));
  issue_span.AddArg("jobs", static_cast<i64>(batch->entries.size()));
  issue_span.AddArg("rung", static_cast<i64>(batch->rung));
  issue_span.AddStrArg("key", batch->entries.front()->trace_key_id);
  try {
    // One pipeline serves the whole batch (identical batch key ==
    // identical pipeline key); one stateless source backs every job. Both
    // live in the batch context until the completion half retires it.
    const RenderRequest& front = batch->entries.front()->request;
    batch->pipeline = repository_.Acquire(front.config);
    batch->source = std::make_unique<SpNeRFFieldSource>(
        batch->pipeline->Codec(), front.config.render.fp16_mlp,
        /*collect_counters=*/false);
    batch->source->SetMasking(front.bitmap_masking);

    // One set of rung-applied options serves the whole batch — coalescing
    // guaranteed every entry the same rung. Rung 0 leaves the options (and
    // below, the camera dims) untouched, so the ladder-off render path is
    // replayed byte for byte. Reduced-resolution rungs render at (w/d, h/d)
    // and the completion half upsamples back to the requested size.
    const RenderOptions rung_options =
        ApplyRung(batch->pipeline->RenderOptionsWithSkip(), batch->rung);
    const int divisor = RungResolutionDivisor(batch->rung);

    std::vector<RenderJob> jobs;
    jobs.reserve(batch->entries.size());
    for (const PendingHandle& entry : batch->entries) {
      const RenderRequest& r = entry->request;
      RenderJob job;
      job.source = batch->source.get();
      job.mlp = &batch->pipeline->GetMlp();
      job.camera = batch->pipeline->MakeCamera(
          ReducedDim(r.image_width, divisor),
          ReducedDim(r.image_height, divisor), r.view, r.n_views);
      job.options = rung_options;
      // Links the engine's render/tile spans into this request's timeline.
      job.trace_flow = entry->request_id;
      jobs.push_back(job);
    }
    engine_.SubmitBatch(
        std::move(jobs),
        [this, batch](std::vector<std::future<RenderResult>> results) {
          CompleteBatch(batch, std::move(results));
        });
  } catch (const std::exception& e) {
    // A failed pipeline build or job setup must not wedge the service:
    // fail the batch's futures with the error instead of fulfilling them,
    // and free the in-flight seat so the dispatcher keeps going. (Render
    // errors surface per entry in CompleteBatch, not here.) The catch must
    // be total: this runs inside a detached pool region, which drops
    // escaped exceptions — anything uncaught would leak the batch's seat
    // and key and wedge Drain()/teardown forever.
    SPNERF_LOG_WARN << "serve: batch failed (" << e.what() << ")";
    for (PendingHandle& entry : batch->entries) {
      entry->promise.set_exception(std::current_exception());
    }
    ReleaseBatch(*batch);
  } catch (...) {
    SPNERF_LOG_WARN << "serve: batch failed (non-std error)";
    for (PendingHandle& entry : batch->entries) {
      entry->promise.set_exception(std::current_exception());
    }
    ReleaseBatch(*batch);
  }
}

void RenderService::DispatcherLoop() {
  for (;;) {
    std::shared_ptr<InflightBatch> batch;
    std::vector<PendingHandle> expired;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Park announcement (Dekker pair with WakeDispatcher): parked is set
      // seq_cst before the wait predicate reads the inbox, and a producer
      // pushes before its fence + parked read — whichever side's seq_cst
      // step comes first in the total order, either the predicate sees the
      // push or the producer sees the announcement and notifies under the
      // lock.
      dispatcher_parked_.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      work_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !inbox_.Empty() ||
               (!paused_ &&
                inflight_batches_ < options_.max_inflight_batches &&
                HasDispatchableLocked());
      });
      dispatcher_parked_.store(false, std::memory_order_relaxed);
      // Fold admissions in before any decision: sequences, key counts and
      // the ranked queue must cover every entry admitted so far.
      DrainInboxLocked();

      if (stopping_.load(std::memory_order_relaxed)) {
        // Complete the backlog as rejected so no future dangles, then wait
        // out the in-flight batches — their completion halves touch the
        // service and must finish before it tears down.
        std::vector<PendingHandle> drained;
        drained.swap(queue_);
        key_counts_.clear();
        if (!drained.empty()) {
          queued_count_.fetch_sub(drained.size(), std::memory_order_relaxed);
        }
        work_cv_.wait(lock, [this] { return inflight_batches_ == 0; });
        lock.unlock();
        for (PendingHandle& entry : drained) {
          Shed(*entry, RequestStatus::kRejected);
        }
        idle_cv_.notify_all();
        return;
      }

      if (!paused_ && inflight_batches_ < options_.max_inflight_batches) {
        // One integrated pass: shed anything already past its deadline
        // (the expiry sweep rides the selection scan the dispatcher pays
        // anyway — no separate full-queue sweep) while tracking the
        // best-ranked survivor whose key has no batch in flight (same-key
        // requests wait and coalesce into the next batch).
        const Clock::time_point now = clock_.Now();
        std::size_t write = 0;
        std::size_t best = kNoBest;
        for (std::size_t read = 0; read < queue_.size(); ++read) {
          if (queue_[read]->ExpiredAt(now)) {
            DecKeyCountLocked(queue_[read]->batch_key);
            expired.push_back(std::move(queue_[read]));
            continue;
          }
          if (write != read) queue_[write] = std::move(queue_[read]);
          if (inflight_keys_.count(queue_[write]->batch_key) == 0 &&
              (best == kNoBest || queue_[write]->Outranks(*queue_[best]))) {
            best = write;
          }
          ++write;
        }
        queue_.resize(write);
        if (!expired.empty()) {
          queued_count_.fetch_sub(expired.size(), std::memory_order_relaxed);
        }

        if (best != kNoBest) {
          batch = std::make_shared<InflightBatch>();
          batch->key = queue_[best]->batch_key;
          // Quality-ladder decision, made once per batch at issue time. A
          // pure function of (priority, remaining deadline on the service
          // clock, queue depth now, cost model), so a staged backlog
          // replays the identical rung sequence in any dispatch mode at
          // any worker count. A disabled governor always answers kFull.
          const std::size_t depth_at_issue =
              queued_count_.load(std::memory_order_relaxed);
          const auto decide_rung = [&](const Pending& e) {
            const bool has_deadline =
                e.deadline != Clock::time_point::max();
            const double remaining_ms =
                has_deadline ? MsBetween(now, e.deadline) : 0.0;
            return governor_.Decide(PriorityClass(e.request.priority),
                                    has_deadline, remaining_ms,
                                    depth_at_issue, e.batch_key);
          };
          batch->rung = decide_rung(*queue_[best]);
          const std::size_t same_key = key_counts_[batch->key];
          DecKeyCountLocked(batch->key);
          batch->entries.push_back(std::move(queue_[best]));
          queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
          std::size_t removed = 1;
          // Coalesce only when the key count says a mate exists — the
          // batch-size-1 fast path skips the scan entirely. Mates join in
          // scheduling order, not submission order: when max_batch binds,
          // the seats go to the highest-ranked same-key requests (a
          // batch-class mate must never displace an interactive one into a
          // later dispatch). Under the ladder, coalescing is keyed on
          // (batch key, rung): a mate only joins when its own governor
          // decision matches the leader's, so every entry of a batch
          // shares one set of render options; mismatched mates wait for
          // the next dispatch of their key.
          if (same_key > 1 && options_.max_batch > 1) {
            std::vector<std::size_t> mates;
            for (std::size_t i = 0; i < queue_.size(); ++i) {
              if (queue_[i]->batch_key == batch->key &&
                  decide_rung(*queue_[i]) == batch->rung) {
                mates.push_back(i);
              }
            }
            std::sort(mates.begin(), mates.end(),
                      [this](std::size_t a, std::size_t b) {
                        return queue_[a]->Outranks(*queue_[b]);
                      });
            if (mates.size() > options_.max_batch - 1) {
              mates.resize(options_.max_batch - 1);
            }
            for (std::size_t idx : mates) {
              DecKeyCountLocked(batch->key);
              batch->entries.push_back(std::move(queue_[idx]));
            }
            if (!mates.empty()) {
              queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                          [](const PendingHandle& e) {
                                            return e == nullptr;
                                          }),
                           queue_.end());
              removed += mates.size();
            }
          }
          queued_count_.fetch_sub(removed, std::memory_order_relaxed);
          inflight_keys_.insert(batch->key);
          ++inflight_batches_;
          batch->dispatch_index = next_dispatch_++;
          batch->issued = clock_.Now();
          if (obs::CountersEnabled()) {
            Metrics().batches.Add();
            Metrics().batch_size.Record(batch->entries.size());
            if (batch->entries.size() > 1) {
              Metrics().coalesced.Add(batch->entries.size() - 1);
            }
          }
          if (obs::FullTracingEnabled()) {
            batch->trace_issue_ns = obs::TraceNowNs();
          }
        }
      }
      const std::size_t depth = queued_count_.load(std::memory_order_relaxed);
      stats_.RecordQueueDepth(depth);
      // Close the pressure window once the backlog has drained below the
      // low-water mark (no-op while it isn't open).
      governor_.NoteDepth(depth);
      if (obs::CountersEnabled()) {
        Metrics().queue_depth.Set(static_cast<i64>(depth));
      }
    }

    for (PendingHandle& entry : expired) {
      Shed(*entry, RequestStatus::kExpired);
    }
    if (!batch) {
      idle_cv_.notify_all();
      continue;
    }
    // The issue half (pipeline acquisition — possibly a cold build — and
    // job setup) runs detached on the engine's pool, not on this thread:
    // many tiny batches with distinct keys no longer serialise behind one
    // dispatcher doing their setup, and the dispatcher loops straight back
    // to pop the next dispatchable key. The batch's in-flight seat and key
    // were claimed above under the lock, so per-key ordering and the
    // inflight cap are unaffected by issue tasks completing out of order.
    // On a pool with no worker threads Submit runs inline — the previous
    // serial behaviour. The task only borrows `this` until SubmitBatch
    // returns, which happens before the completion half can release the
    // seat that a tearing-down destructor waits on.
    engine_.Pool().Submit(1, [this, batch = std::move(batch)](unsigned) {
      IssueBatch(batch);
    });
  }
}

}  // namespace spnerf
