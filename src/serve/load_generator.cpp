#include "serve/load_generator.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spnerf {

LoadGenerator::LoadGenerator(LoadGeneratorOptions options)
    : options_(std::move(options)) {
  SPNERF_CHECK_MSG(!options_.scenes.empty(), "load generator needs scenes");
  SPNERF_CHECK_MSG(options_.arrival_rate_rps > 0.0,
                   "load generator needs a positive arrival rate");
}

LoadGeneratorOptions InteractiveHeavyTrace(double frame_ms) {
  SPNERF_CHECK_MSG(frame_ms > 0.0,
                   "interactive-heavy trace needs a positive frame time");
  LoadGeneratorOptions opts;
  opts.interactive_fraction = 0.6;
  opts.batch_fraction = 0.1;
  // kInteractive (2): every interactive request carries a deadline barely
  // above one frame — exactly the regime where degrade-over-drop pays.
  opts.deadline_bands[static_cast<std::size_t>(
      RequestPriority::kInteractive)] =
      DeadlineBand{1.5 * frame_ms, 3.0 * frame_ms, 1.0};
  // kNormal (1): looser but still bounded.
  opts.deadline_bands[static_cast<std::size_t>(RequestPriority::kNormal)] =
      DeadlineBand{4.0 * frame_ms, 8.0 * frame_ms, 0.8};
  // kBatch (0) stays deadline-free.
  return opts;
}

std::vector<TimedRequest> LoadGenerator::GenerateTrace() const {
  Rng rng(options_.seed);
  const std::size_t hot =
      std::min(options_.hot_scene_count, options_.scenes.size());
  const std::size_t cold = options_.scenes.size() - hot;

  std::vector<TimedRequest> trace;
  trace.reserve(options_.request_count);
  double clock_ms = 0.0;
  for (std::size_t i = 0; i < options_.request_count; ++i) {
    // Poisson arrivals: exponential inter-arrival gaps at the offered rate.
    const double u = std::max(rng.NextDouble(), 1e-12);
    clock_ms += -std::log(u) * 1000.0 / options_.arrival_rate_rps;

    TimedRequest t;
    t.arrival_ms = clock_ms;
    t.request = options_.base;

    // Hot/cold scene skew (uniform within the chosen set).
    std::size_t scene_index;
    if (cold == 0 || (hot > 0 && rng.NextDouble() < options_.hot_fraction)) {
      scene_index = static_cast<std::size_t>(rng.NextBelow(hot));
    } else {
      scene_index = hot + static_cast<std::size_t>(rng.NextBelow(cold));
    }
    t.request.config.scene_id = options_.scenes[scene_index];
    t.request.view = static_cast<int>(
        rng.NextBelow(static_cast<u64>(std::max(t.request.n_views, 1))));

    const double pclass = rng.NextDouble();
    if (pclass < options_.interactive_fraction) {
      t.request.priority = RequestPriority::kInteractive;
    } else if (pclass < options_.interactive_fraction +
                            options_.batch_fraction) {
      t.request.priority = RequestPriority::kBatch;
    } else {
      t.request.priority = RequestPriority::kNormal;
    }

    const std::size_t cls = static_cast<std::size_t>(t.request.priority);
    const DeadlineBand& band =
        options_.deadline_bands[std::min(cls, std::size_t{2})];
    if (band.Enabled()) {
      // Per-class band: an extra pair of draws, but only on traces that opt
      // in — legacy options consume the exact legacy draw sequence.
      if (rng.NextDouble() < band.fraction) {
        t.request.deadline_ms =
            band.min_ms + rng.NextDouble() * (band.max_ms - band.min_ms);
      } else {
        t.request.deadline_ms = 0.0;
      }
    } else {
      t.request.deadline_ms =
          rng.NextDouble() < options_.deadline_fraction ? options_.deadline_ms
                                                        : 0.0;
    }
    trace.push_back(std::move(t));
  }
  return trace;
}

ReplayResult ReplayTrace(RenderService& service,
                         const std::vector<TimedRequest>& trace,
                         ClockSource* clock) {
  ClockSource& clk = clock ? *clock : SystemClock();
  service.Start();

  std::vector<std::future<RenderResponse>> futures;
  futures.reserve(trace.size());
  const ClockSource::time_point start = clk.Now();
  for (const TimedRequest& t : trace) {
    // Open loop: submission times come from the trace alone, never from
    // service progress; a slow service accumulates backlog (and sheds).
    clk.SleepUntil(start +
                   std::chrono::duration_cast<ClockSource::duration>(
                       std::chrono::duration<double, std::milli>(t.arrival_ms)));
    futures.push_back(service.Submit(t.request));
  }

  ReplayResult result;
  result.responses.reserve(futures.size());
  for (std::future<RenderResponse>& f : futures) {
    result.responses.push_back(f.get());
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(clk.Now() - start).count();
  return result;
}

}  // namespace spnerf
