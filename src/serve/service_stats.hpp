// Serving-layer metrics: exact latency percentiles, queue-depth tracking
// and throughput over the service's lifetime, broken down by priority
// class so a priority inversion shows up as a regression in the tracked
// percentiles instead of hiding inside the aggregate. Latencies are kept as
// full sample sets, so percentiles are true order statistics and merging
// two collectors is exact (concatenation) — no sketch error enters the
// BENCH_serving.json trajectory.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/types.hpp"

namespace spnerf {

/// Exact latency sample set. Every recorded value is kept; Percentile()
/// returns the nearest-rank order statistic and Merge() concatenates, so
/// merged percentiles equal the percentiles of the union — exact, unlike
/// digest/histogram sketches.
class LatencySample {
 public:
  void Record(double ms) { samples_.push_back(ms); }
  void Merge(const LatencySample& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  [[nodiscard]] std::size_t Count() const { return samples_.size(); }
  /// Nearest-rank percentile, `p` in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double Percentile(double p) const;
  [[nodiscard]] double MeanMs() const;
  [[nodiscard]] double MaxMs() const;

 private:
  std::vector<double> samples_;
};

/// Number of scheduling classes (RequestPriority values); class counters
/// below index by static_cast<std::size_t>(priority).
inline constexpr std::size_t kPriorityClassCount = 3;

/// Per-priority-class slice of the collector: how many requests of the
/// class completed / were shed, and the completed requests' exact
/// submit-to-response latency samples.
struct PriorityClassStats {
  u64 completed = 0;
  u64 rejected = 0;
  u64 expired = 0;
  LatencySample total_latency;
};

/// One consistent view of the collector. Latency samples cover completed
/// requests only; shed requests (rejected/expired) are counted, not timed.
struct ServiceStatsSnapshot {
  u64 submitted = 0;
  u64 completed = 0;
  u64 rejected = 0;  // shed by admission control (queue full)
  u64 expired = 0;   // shed because the deadline passed while queued
  u64 batches = 0;   // engine calls dispatched
  std::size_t queue_depth = 0;  // at snapshot time
  std::size_t queue_peak = 0;   // high-water mark
  LatencySample queue_latency;  // submit -> dispatch
  LatencySample total_latency;  // submit -> response ready
  /// Indexed by static_cast<std::size_t>(RequestPriority).
  std::array<PriorityClassStats, kPriorityClassCount> by_class;
  /// First submission to last completion; 0 until both exist.
  double span_ms = 0.0;

  /// Completed requests per second over the measured span.
  [[nodiscard]] double ThroughputRps() const {
    return span_ms > 0.0 ? static_cast<double>(completed) * 1000.0 / span_ms
                         : 0.0;
  }
  /// Requests per dispatched engine call.
  [[nodiscard]] double MeanBatchSize() const {
    return batches ? static_cast<double>(completed) /
                         static_cast<double>(batches)
                   : 0.0;
  }
};

/// Thread-safe collector the RenderService reports into. All mutators take
/// one internal lock; Snapshot() copies a consistent view. The per-class
/// mutators take the request's priority class index
/// (static_cast<std::size_t>(RequestPriority)).
class ServiceStats {
 public:
  void RecordSubmitted(std::size_t queue_depth_after);
  void RecordRejected(std::size_t priority_class);
  void RecordExpired(std::size_t priority_class);
  void RecordBatch(std::size_t size);
  void RecordCompleted(double queue_ms, double total_ms,
                       std::size_t priority_class);
  void RecordQueueDepth(std::size_t depth);

  [[nodiscard]] ServiceStatsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  ServiceStatsSnapshot data_;
  std::chrono::steady_clock::time_point first_submit_{};
  std::chrono::steady_clock::time_point last_complete_{};
  bool has_submit_ = false;
  bool has_complete_ = false;
};

}  // namespace spnerf
