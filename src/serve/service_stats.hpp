// Serving-layer metrics: latency percentiles, queue-depth tracking and
// throughput over the service's lifetime, broken down by priority class so
// a priority inversion shows up as a regression in the tracked percentiles
// instead of hiding inside the aggregate.
//
// Latencies live in a bounded deterministic reservoir (LatencySample):
// below the cap every recorded value is kept and percentiles are true order
// statistics; past the cap the reservoir keeps the bottom-K entries of a
// seeded value-hash order — a KMV-style sketch whose retained set depends
// only on the recorded multiset of values, never on arrival order or on how
// recording was sharded across collectors. Merging is therefore exact in
// the sketch sense: Merge(R(A), R(B)) retains exactly the same samples as
// R(A ++ B), so distributed collectors lose nothing relative to a single
// one.
//
// The counter side of the collector is lock-free (relaxed atomics +
// CAS-max for the queue peak): RecordSubmitted sits on the RenderService
// admission fast path, which must not reintroduce a lock behind the
// service's own lock-free inbox. Only latency recording (completion path)
// and Snapshot() take the internal mutex.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "render/quality.hpp"

namespace spnerf {

/// Bounded deterministic latency reservoir. Exact below the cap (every
/// value kept, percentiles are nearest-rank order statistics); past the cap
/// it keeps the `cap` entries with the smallest seeded value-hash keys
/// (bottom-K), so memory is bounded while the retained set stays a
/// deterministic, order-independent, merge-stable function of the recorded
/// values. Count() always reports the number of values recorded, not
/// retained.
class LatencySample {
 public:
  static constexpr std::size_t kDefaultCap = 8192;

  explicit LatencySample(std::size_t cap = kDefaultCap,
                         u64 seed = 0x9e3779b97f4a7c15ull)
      : cap_(cap == 0 ? 1 : cap), seed_(seed) {}

  void Record(double ms);
  /// Folds another reservoir in. Both sides should share cap and seed (the
  /// defaults everywhere); the result keeps this side's. Retains exactly
  /// what a single reservoir fed the concatenated streams would retain.
  void Merge(const LatencySample& other);

  /// Values recorded over the reservoir's lifetime (not retained samples).
  [[nodiscard]] std::size_t Count() const { return total_; }
  /// Samples currently retained: == Count() until the cap is reached.
  [[nodiscard]] std::size_t Retained() const { return entries_.size(); }
  [[nodiscard]] std::size_t Cap() const { return cap_; }
  /// Nearest-rank percentile over the retained samples, `p` in [0, 100] —
  /// exact while Count() <= Cap(). Returns 0 when empty.
  [[nodiscard]] double Percentile(double p) const;
  [[nodiscard]] double MeanMs() const;  // over retained samples
  [[nodiscard]] double MaxMs() const;   // over retained samples

 private:
  struct Entry {
    u64 key = 0;
    double value = 0.0;
  };
  static bool EntryLess(const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.value < b.value;
  }
  [[nodiscard]] u64 KeyFor(double ms) const;

  std::size_t cap_;
  u64 seed_;
  std::size_t total_ = 0;
  // Plain vector below the cap; re-organized into a max-heap (EntryLess)
  // once full so eviction of the largest key is O(log cap).
  std::vector<Entry> entries_;
};

/// Number of scheduling classes (RequestPriority values); class counters
/// below index by static_cast<std::size_t>(priority).
inline constexpr std::size_t kPriorityClassCount = 3;

/// Per-priority-class slice of the collector: how many requests of the
/// class completed / were shed, and the completed requests'
/// submit-to-response latency samples.
struct PriorityClassStats {
  u64 completed = 0;
  u64 rejected = 0;
  u64 expired = 0;
  LatencySample total_latency;
};

/// One view of the collector. Latency samples cover completed requests
/// only; shed requests (rejected/expired) are counted, not timed.
struct ServiceStatsSnapshot {
  u64 submitted = 0;
  u64 completed = 0;
  u64 rejected = 0;  // shed by admission control (queue full)
  u64 expired = 0;   // shed because the deadline passed while queued
  u64 batches = 0;   // engine calls dispatched
  std::size_t queue_depth = 0;  // at snapshot time
  std::size_t queue_peak = 0;   // high-water mark
  LatencySample queue_latency;  // submit -> dispatch
  LatencySample total_latency;  // submit -> response ready
  /// Indexed by static_cast<std::size_t>(RequestPriority).
  std::array<PriorityClassStats, kPriorityClassCount> by_class;
  /// Completed requests per quality rung (render/quality.hpp). Without the
  /// ladder everything lands in rung 0; under it the distribution shows how
  /// much quality pressure the load applied.
  std::array<u64, kQualityRungCount> by_rung{};
  /// First submission to last completion; 0 until both exist.
  double span_ms = 0.0;

  /// Completed requests per second over the measured span.
  [[nodiscard]] double ThroughputRps() const {
    return span_ms > 0.0 ? static_cast<double>(completed) * 1000.0 / span_ms
                         : 0.0;
  }
  /// Requests per dispatched engine call.
  [[nodiscard]] double MeanBatchSize() const {
    return batches ? static_cast<double>(completed) /
                         static_cast<double>(batches)
                   : 0.0;
  }
};

/// Thread-safe collector the RenderService reports into. Counter mutators
/// (submitted/rejected/expired/batch/queue-depth) are lock-free — they sit
/// on the admission fast path; RecordCompleted and Snapshot() take the
/// internal mutex for the latency reservoirs. Snapshot() is consistent for
/// any quiesced service; while mutators race it, individual counters are
/// each correct but may be from moments a few operations apart. The
/// per-class mutators take the request's priority class index
/// (static_cast<std::size_t>(RequestPriority)).
class ServiceStats {
 public:
  /// Clock behind the span timestamps (first submit / last complete).
  /// Defaults to the system clock; the owning service injects its own
  /// before any recording, so virtual-time tests measure virtual spans.
  void SetClock(ClockSource* clock) { clock_ = clock; }

  void RecordSubmitted(std::size_t queue_depth_after);
  void RecordRejected(std::size_t priority_class);
  void RecordExpired(std::size_t priority_class);
  void RecordBatch(std::size_t size);
  /// `rung` is the quality rung the request was served at (0 when the
  /// ladder is off).
  void RecordCompleted(double queue_ms, double total_ms,
                       std::size_t priority_class, std::size_t rung = 0);
  void RecordQueueDepth(std::size_t depth);

  [[nodiscard]] ServiceStatsSnapshot Snapshot() const;

 private:
  void BumpQueuePeak(std::size_t depth);

  std::atomic<u64> submitted_{0};
  std::atomic<u64> completed_{0};
  std::atomic<u64> rejected_{0};
  std::atomic<u64> expired_{0};
  std::atomic<u64> batches_{0};
  std::atomic<std::size_t> queue_depth_{0};
  std::atomic<std::size_t> queue_peak_{0};
  struct ClassCounters {
    std::atomic<u64> completed{0};
    std::atomic<u64> rejected{0};
    std::atomic<u64> expired{0};
  };
  std::array<ClassCounters, kPriorityClassCount> class_counters_;
  std::array<std::atomic<u64>, kQualityRungCount> rung_completed_{};
  std::atomic<bool> has_submit_{false};
  std::atomic<bool> has_complete_{false};

  // Guards the latency reservoirs and the span timestamps (completion path
  // and the one-time first-submit stamp only — never the admission path
  // after the first request).
  mutable std::mutex mutex_;
  LatencySample queue_latency_;
  LatencySample total_latency_;
  std::array<LatencySample, kPriorityClassCount> class_latency_;
  ClockSource* clock_ = &SystemClock();
  std::chrono::steady_clock::time_point first_submit_{};
  std::chrono::steady_clock::time_point last_complete_{};
};

}  // namespace spnerf
