// QualityGovernor: the serving-side policy of the adaptive quality ladder
// (render/quality.hpp). At issue time the dispatcher asks it for a rung;
// the governor maps (remaining deadline, current queue depth, per-rung EWMA
// cost model, priority class) to the LEAST degraded rung predicted to meet
// the deadline — full quality when unloaded, degrading only under pressure,
// so overload turns into bounded PSNR loss instead of rejections/expiries.
//
// Policy, in order:
//   1. Load floor. Queue occupancy (depth / capacity) at or above
//      load_floors[r] floors the rung at r. Batch-class requests are exempt
//      — nobody is waiting on them, so they keep full quality until a
//      deadline or the pressure window forces otherwise.
//   2. Pressure window. A full-queue admission calls NotePressure(): until
//      the dispatcher observes the queue back below the low-water mark,
//      every class is floored at pressure_floor — "degrade over reject":
//      the response to a full queue is cheaper work (which drains the queue
//      and frees seats) rather than only dropping the overflow.
//   3. Deadline fit. A request with a deadline escalates from the floor to
//      the first rung whose predicted cost fits the remaining budget times
//      deadline_headroom; if even the cheapest rung does not fit, the
//      cheapest is used (best effort — the dispatcher already shed anything
//      whose deadline has actually passed).
//
// Cost model: per batch-key, per-rung EWMAs of observed per-request wall
// time (the service's issue->complete span on its scheduling clock, divided
// by batch size). A key's first full-quality observation — the warmup
// renders every bench/service run starts with — calibrates the whole ladder
// through the static RungSpec::cost_scale priors; later observations refine
// each rung independently. Keys never observed fall back to a global
// cross-key EWMA, then to default_cost_ms.
//
// Determinism: Decide() is a pure function of its arguments, the option
// constants and the cost-model state. Under a ManualClock the observed
// issue->complete spans are virtual (0 unless the test advances time), and
// tests that pin exact rung sequences set freeze_costs and inject the model
// through SeedCost() — so a staged backlog replays the identical rung
// sequence across SPNF_DISPATCH modes and worker counts, exactly like the
// scheduling order it rides on.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "render/quality.hpp"

namespace spnerf {

struct QualityLadderOptions {
  /// Off (the default) = every request renders at rung 0 and the service
  /// behaves bit-identically to the pre-ladder service.
  bool enabled = false;
  /// Highest rung the governor may choose (degradation ceiling).
  int max_rung = static_cast<int>(kQualityRungCount) - 1;
  /// A rung fits a deadline when predicted cost <= remaining * headroom.
  double deadline_headroom = 0.8;
  /// Queue-occupancy thresholds (depth / capacity) flooring the rung, index
  /// by rung; entry 0 is unused. Batch-class requests ignore these.
  std::array<double, kQualityRungCount> load_floors{0.0, 0.5, 0.75, 0.9};
  /// Rung floor while the pressure window is open (every class).
  int pressure_floor = 2;
  /// The pressure window closes when the dispatcher observes
  /// depth <= pressure_low_water * capacity.
  double pressure_low_water = 0.5;
  /// Rung-0 cost estimate before any observation, scaled per rung by
  /// RungSpec::cost_scale.
  double default_cost_ms = 50.0;
  /// EWMA smoothing factor for online cost refinement.
  double ewma_alpha = 0.2;
  /// Disables Observe() (SeedCost still writes): determinism-test mode —
  /// the cost model is exactly what the test injected, never perturbed by
  /// measured wall time.
  bool freeze_costs = false;
};

class QualityGovernor {
 public:
  QualityGovernor(QualityLadderOptions options, std::size_t queue_capacity)
      : options_(options), capacity_(queue_capacity) {}

  [[nodiscard]] bool Enabled() const { return options_.enabled; }
  [[nodiscard]] const QualityLadderOptions& Options() const {
    return options_;
  }

  /// Issue-time rung decision. `priority_class` is the request's
  /// RequestPriority as an index (0 = batch); `remaining_ms` is deadline
  /// minus now on the service's scheduling clock (ignored unless
  /// `has_deadline`); `queue_depth` is the admitted-not-dispatched count at
  /// decision time. Pure in its inputs + option constants + cost model.
  [[nodiscard]] QualityRung Decide(std::size_t priority_class,
                                   bool has_deadline, double remaining_ms,
                                   std::size_t queue_depth,
                                   const std::string& key) const;

  /// Predicted per-request cost of serving `key` at `rung` (ms).
  [[nodiscard]] double PredictMs(const std::string& key,
                                 QualityRung rung) const;

  /// Explicit calibration: pins `key`'s rung-0 cost (tests inject frozen
  /// models through this; the serving path calibrates via Observe).
  void SeedCost(const std::string& key, double rung0_ms);

  /// Online refinement from one observed per-request wall time. No-op when
  /// freeze_costs is set.
  void Observe(const std::string& key, QualityRung rung, double ms);

  /// Admission hit a full queue: opens the degrade-over-reject pressure
  /// window.
  void NotePressure();
  /// Dispatcher-observed queue depth; closes the pressure window at or
  /// below the low-water mark.
  void NoteDepth(std::size_t depth);
  [[nodiscard]] bool UnderPressure() const {
    return pressure_.load(std::memory_order_relaxed);
  }

 private:
  struct Ewma {
    double value = 0.0;
    bool seeded = false;
  };
  using Ladder = std::array<Ewma, kQualityRungCount>;

  /// Lookup order: the key's own rung EWMA, the key's rung-0 EWMA scaled by
  /// the static priors, the global cross-key rung EWMA, the default. Caller
  /// must hold mutex_.
  [[nodiscard]] double PredictLocked(const Ladder* ladder,
                                     QualityRung rung) const;

  QualityLadderOptions options_;
  std::size_t capacity_;
  std::atomic<bool> pressure_{false};

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Ladder> costs_;  // guarded by mutex_
  Ladder global_;                                  // guarded by mutex_
};

}  // namespace spnerf
