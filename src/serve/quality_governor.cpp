#include "serve/quality_governor.hpp"

#include <algorithm>

namespace spnerf {

namespace {

int ClampRung(int rung) {
  return std::clamp(rung, 0, static_cast<int>(kQualityRungCount) - 1);
}

}  // namespace

QualityRung QualityGovernor::Decide(std::size_t priority_class,
                                    bool has_deadline, double remaining_ms,
                                    std::size_t queue_depth,
                                    const std::string& key) const {
  if (!options_.enabled) return QualityRung::kFull;
  int rung = 0;

  // 1. Load floor — skipped for the batch class (index 0): offline work
  // keeps full quality until a deadline or the pressure window says
  // otherwise.
  if (priority_class != 0 && capacity_ > 0) {
    const double occupancy = static_cast<double>(queue_depth) /
                             static_cast<double>(capacity_);
    for (int r = static_cast<int>(kQualityRungCount) - 1; r >= 1; --r) {
      if (options_.load_floors[static_cast<std::size_t>(r)] > 0.0 &&
          occupancy >= options_.load_floors[static_cast<std::size_t>(r)]) {
        rung = r;
        break;
      }
    }
  }

  // 2. Pressure window: a full queue degrades every class.
  if (pressure_.load(std::memory_order_relaxed)) {
    rung = std::max(rung, ClampRung(options_.pressure_floor));
  }

  // 3. Deadline fit: escalate until the predicted cost fits the remaining
  // budget; past the last rung it's best effort.
  const int ceiling = ClampRung(options_.max_rung);
  rung = std::min(rung, ceiling);
  if (has_deadline) {
    const double budget = remaining_ms * options_.deadline_headroom;
    while (rung < ceiling &&
           PredictMs(key, static_cast<QualityRung>(rung)) > budget) {
      ++rung;
    }
  }
  return static_cast<QualityRung>(rung);
}

double QualityGovernor::PredictLocked(const Ladder* ladder,
                                      QualityRung rung) const {
  const auto r = static_cast<std::size_t>(rung);
  if (ladder != nullptr) {
    if ((*ladder)[r].seeded) return (*ladder)[r].value;
    // Calibrated-from-warmup path: the key's observed full-quality cost,
    // scaled by the static rung priors.
    if ((*ladder)[0].seeded) return (*ladder)[0].value * RungCostScale(rung);
  }
  if (global_[r].seeded) return global_[r].value;
  if (global_[0].seeded) return global_[0].value * RungCostScale(rung);
  return options_.default_cost_ms * RungCostScale(rung);
}

double QualityGovernor::PredictMs(const std::string& key,
                                  QualityRung rung) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = costs_.find(key);
  return PredictLocked(it != costs_.end() ? &it->second : nullptr, rung);
}

void QualityGovernor::SeedCost(const std::string& key, double rung0_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  Ewma& slot = costs_[key][0];
  slot.value = rung0_ms;
  slot.seeded = true;
}

void QualityGovernor::Observe(const std::string& key, QualityRung rung,
                              double ms) {
  if (options_.freeze_costs || ms < 0.0) return;
  const auto r = static_cast<std::size_t>(rung);
  std::lock_guard<std::mutex> lock(mutex_);
  const double a = options_.ewma_alpha;
  for (Ewma* slot : {&costs_[key][r], &global_[r]}) {
    if (slot->seeded) {
      slot->value = (1.0 - a) * slot->value + a * ms;
    } else {
      slot->value = ms;
      slot->seeded = true;
    }
  }
}

void QualityGovernor::NotePressure() {
  pressure_.store(true, std::memory_order_relaxed);
}

void QualityGovernor::NoteDepth(std::size_t depth) {
  if (!pressure_.load(std::memory_order_relaxed)) return;
  const double low_water =
      options_.pressure_low_water * static_cast<double>(capacity_);
  if (static_cast<double>(depth) <= low_water) {
    pressure_.store(false, std::memory_order_relaxed);
  }
}

}  // namespace spnerf
