// Hierarchical occupancy octree for multi-level empty-space skipping: a
// pointerless, level-ordered pyramid of occupancy bitmaps reduced bottom-up
// from the dilated coarse skip bitmap. Level L-1 (the leaf level) is
// bit-identical to CoarseOccupancy::Bits(); each coarser level ORs 2x2x2
// child blocks, so a parent is empty exactly when all its children are
// empty. Node addressing is implicit — the ancestor of leaf cell c at depth
// d above the leaves is simply c >> d — so the whole structure is a handful
// of BitGrids and traversal needs no pointer chasing.
//
// The ray marchers use it through a per-ray cache (OctreeRayCache): when a
// sample lands in an empty leaf, one root-down descent finds the SHALLOWEST
// empty ancestor and caches its leaf-cell range; every subsequent empty
// sample inside that range is answered by six integer compares, with no
// bitmap probe at all. Occupied leaves cost exactly one leaf-bit probe —
// the same as the flat path — so dense scenes pay no hierarchy tax.
#pragma once

#include <vector>

#include "grid/occupancy.hpp"

namespace spnerf {

/// Per-ray traversal state: the leaf-cell range [lo, hi) of the empty
/// octree node the ray is currently crossing, plus the level it was found
/// at (root = 0; -1 = no cached node yet). Reset per ray, never shared.
struct OctreeRayCache {
  Vec3i lo{0, 0, 0};
  Vec3i hi{0, 0, 0};
  i32 level = -1;

  [[nodiscard]] bool Covers(Vec3i c) const {
    return level >= 0 && c.x >= lo.x && c.x < hi.x && c.y >= lo.y &&
           c.y < hi.y && c.z >= lo.z && c.z < hi.z;
  }
};

class OccupancyOctree {
 public:
  OccupancyOctree() = default;

  /// Reduces `coarse` bottom-up: the leaf level copies its (already
  /// dilated) bits, each coarser level ORs 2x2x2 child blocks, down to a
  /// 1x1x1 root. Non-power-of-two dims round up (boundary parents OR the
  /// children that exist).
  static OccupancyOctree Build(const CoarseOccupancy& coarse);

  /// Reconstructs from already-reduced levels (the deserialization path).
  /// `levels` is root-first. Throws SpnerfError unless the level dims form
  /// the exact ceil-halving chain and every parent bit equals the OR of its
  /// children — a corrupt pyramid is rejected, never traversed.
  static OccupancyOctree FromLevels(std::vector<BitGrid> levels, int factor);

  /// Number of levels, root (index 0) through leaf (index Levels()-1).
  [[nodiscard]] int Levels() const { return static_cast<int>(levels_.size()); }
  [[nodiscard]] const BitGrid& Level(int l) const {
    return levels_[static_cast<std::size_t>(l)];
  }
  [[nodiscard]] const BitGrid& LeafBits() const { return levels_.back(); }
  [[nodiscard]] const GridDims& LeafDims() const {
    return levels_.back().Dims();
  }
  /// Fine voxels per leaf cell per axis (CoarseOccupancy::Factor()).
  [[nodiscard]] int Factor() const { return factor_; }

  /// Shallowest (largest) empty node containing leaf cell `c`. Returns
  /// false when the leaf is occupied; otherwise fills `cache` with the
  /// node's leaf-cell range [lo, hi) and its level. `c` must be in range.
  [[nodiscard]] bool FindEmptyNode(Vec3i c, OctreeRayCache& cache) const;

  /// Is leaf cell `c` occupied? The leaf bit is probed FIRST, so an
  /// occupied cell costs exactly one probe — the flat path's cost on the
  /// sample-step iterations that dominate a march. Empty cells refill
  /// `cache` with a root-down descent only when they leave the cached
  /// region. Agrees with CoarseOccupancy::Bits().Test(c) for every
  /// in-range cell.
  [[nodiscard]] bool OccupiedAt(Vec3i c, OctreeRayCache& cache) const {
    if (levels_.back().Test(c)) return true;
    if (!cache.Covers(c)) (void)FindEmptyNode(c, cache);
    return false;
  }

  /// Precomputed leaf-cell boundary planes: BoundaryX()[i] is bitwise
  /// identical to `float(i) / float(LeafDims().nx)` for i in [0, nx]
  /// (likewise per axis), so the DDA marcher replaces the CellBounds
  /// divisions with table loads without perturbing a single bit.
  [[nodiscard]] const float* BoundaryX() const { return bx_.data(); }
  [[nodiscard]] const float* BoundaryY() const { return by_.data(); }
  [[nodiscard]] const float* BoundaryZ() const { return bz_.data(); }

 private:
  void InitBoundaries();

  std::vector<BitGrid> levels_;  // root-first; back() is the leaf level
  std::vector<float> bx_, by_, bz_;  // leaf boundary planes, size n+1
  int factor_ = 1;
};

}  // namespace spnerf
