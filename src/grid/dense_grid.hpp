// Dense volumetric grid: per-voxel density plus a 12-channel color feature
// vector, matching the DVGO/VQRF voxel-grid representation the paper builds
// on (density grid + k0 color-feature grid).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "common/vec.hpp"

namespace spnerf {

/// Integer grid dimensions.
struct GridDims {
  int nx = 0, ny = 0, nz = 0;

  [[nodiscard]] u64 VoxelCount() const {
    return static_cast<u64>(nx) * static_cast<u64>(ny) * static_cast<u64>(nz);
  }
  [[nodiscard]] bool Contains(Vec3i p) const {
    return p.x >= 0 && p.x < nx && p.y >= 0 && p.y < ny && p.z >= 0 && p.z < nz;
  }
  /// x-major flattening (x slowest) so the paper's x-partitioned subgrids map
  /// to contiguous index ranges.
  [[nodiscard]] VoxelIndex Flatten(Vec3i p) const {
    return (static_cast<VoxelIndex>(p.x) * ny + p.y) * nz + p.z;
  }
  [[nodiscard]] Vec3i Unflatten(VoxelIndex idx) const {
    const auto z = static_cast<i32>(idx % nz);
    const auto y = static_cast<i32>((idx / nz) % ny);
    const auto x = static_cast<i32>(idx / (static_cast<u64>(ny) * nz));
    return {x, y, z};
  }
  friend bool operator==(const GridDims&, const GridDims&) = default;
};

/// Per-voxel payload: raw (pre-activation) density plus color features.
struct VoxelData {
  float density = 0.0f;
  std::array<float, kColorFeatureDim> features{};

  [[nodiscard]] bool IsZero() const {
    if (density != 0.0f) return false;
    for (float f : features)
      if (f != 0.0f) return false;
    return true;
  }
};

/// Dense float voxel grid (structure-of-arrays). This is both the
/// "ground-truth" full-precision field and VQRF's restored grid format.
class DenseGrid {
 public:
  DenseGrid() = default;
  explicit DenseGrid(GridDims dims);

  /// Reconstructs a grid from its raw channel arrays (deserialization).
  /// Sizes must match `dims` exactly.
  static DenseGrid FromRaw(GridDims dims, std::vector<float> density,
                           std::vector<float> features);

  [[nodiscard]] const GridDims& Dims() const { return dims_; }
  [[nodiscard]] u64 VoxelCount() const { return dims_.VoxelCount(); }

  [[nodiscard]] float Density(VoxelIndex i) const { return density_[i]; }
  void SetDensity(VoxelIndex i, float d) { density_[i] = d; }

  [[nodiscard]] const float* Features(VoxelIndex i) const {
    return &features_[i * kColorFeatureDim];
  }
  float* MutableFeatures(VoxelIndex i) {
    return &features_[i * kColorFeatureDim];
  }

  [[nodiscard]] VoxelData Voxel(Vec3i p) const;
  void SetVoxel(Vec3i p, const VoxelData& v);

  /// A voxel is "non-zero" when its density or any feature is non-zero.
  [[nodiscard]] bool IsNonZero(VoxelIndex i) const;

  /// Count of non-zero voxels (the paper's sparsity metric, Fig 2(b)).
  [[nodiscard]] u64 CountNonZero() const;
  [[nodiscard]] double NonZeroFraction() const;

  /// Linear indices of all non-zero voxels, ascending (so x-partition ranges
  /// are contiguous).
  [[nodiscard]] std::vector<VoxelIndex> NonZeroIndices() const;

  /// Memory footprint of this grid if materialised as VQRF restores it:
  /// FP32 density + FP32 x 12 features per voxel.
  [[nodiscard]] u64 RestoredBytes() const {
    return VoxelCount() * (sizeof(float) * (1 + kColorFeatureDim));
  }

  [[nodiscard]] const std::vector<float>& DensityRaw() const { return density_; }
  [[nodiscard]] const std::vector<float>& FeaturesRaw() const {
    return features_;
  }

 private:
  GridDims dims_;
  std::vector<float> density_;
  std::vector<float> features_;  // kColorFeatureDim per voxel
};

}  // namespace spnerf
