// Coarse occupancy grid for empty-space skipping: OR-reduction of the fine
// occupancy bitmap over `factor`-sized blocks, dilated by one coarse cell so
// trilinear stencils near block borders stay safe. DVGO/VQRF skip empty
// space the same way on GPU; the accelerator's BLU serves the equivalent
// role with the per-subgrid bitmap.
#pragma once

#include "grid/bitmap.hpp"

namespace spnerf {

class CoarseOccupancy {
 public:
  CoarseOccupancy() = default;

  /// Builds from a fine bitmap. `factor` fine cells per coarse cell per axis.
  static CoarseOccupancy Build(const BitGrid& fine, int factor);

  /// Reconstructs from an already-reduced (and dilated) coarse bitmap —
  /// the deserialization path; `Build` remains the only way to derive one.
  static CoarseOccupancy FromBits(BitGrid coarse, int factor);

  [[nodiscard]] int Factor() const { return factor_; }
  [[nodiscard]] const GridDims& CoarseDims() const { return coarse_.Dims(); }
  [[nodiscard]] const BitGrid& Bits() const { return coarse_; }

  /// Is the coarse cell containing world point `p` (in [0,1]^3) occupied?
  /// Out-of-range points report unoccupied.
  [[nodiscard]] bool OccupiedAtWorld(Vec3f p) const;

  /// Coarse cell containing a world point (clamped).
  [[nodiscard]] Vec3i CellOfWorld(Vec3f p) const;

  /// World-space bounds of a coarse cell.
  [[nodiscard]] Aabb CellBounds(Vec3i cell) const;

 private:
  BitGrid coarse_;
  int factor_ = 1;
};

}  // namespace spnerf
