// Vector-quantisation codebook for color features (VQRF's 4096 x 12
// codebook). Built with seeded k-means over the features of VQ-eligible
// voxels.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace spnerf {

using FeatureVec = std::array<float, kColorFeatureDim>;

class Codebook {
 public:
  Codebook() = default;
  explicit Codebook(std::vector<FeatureVec> rows);

  /// Trains `size` centroids on `samples` with k-means (k-means++ seeding,
  /// fixed iteration budget). If there are fewer distinct samples than
  /// centroids the surplus rows stay at sampled positions. `max_threads`
  /// caps the parallel seeding/assignment loops (0 = every pool worker);
  /// the result is identical for any value.
  static Codebook Train(std::span<const FeatureVec> samples, int size,
                        int iterations, Rng& rng, unsigned max_threads = 0);

  [[nodiscard]] int Size() const { return static_cast<int>(rows_.size()); }
  [[nodiscard]] const FeatureVec& Row(int id) const;

  /// Index of the nearest centroid (L2).
  [[nodiscard]] int Nearest(const FeatureVec& f) const;

  /// Squared L2 distance of `f` to its nearest centroid.
  [[nodiscard]] float QuantizationError(const FeatureVec& f) const;

  /// Storage: kColorFeatureDim INT8 values per row (codebook entries are
  /// kept on-chip in the Color Codebook buffer, INT8 like the true grid).
  [[nodiscard]] u64 SizeBytes() const {
    return rows_.size() * kColorFeatureDim;
  }

  [[nodiscard]] const std::vector<FeatureVec>& Rows() const { return rows_; }

 private:
  std::vector<FeatureVec> rows_;
};

}  // namespace spnerf
