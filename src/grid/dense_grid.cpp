#include "grid/dense_grid.hpp"

namespace spnerf {

DenseGrid::DenseGrid(GridDims dims) : dims_(dims) {
  SPNERF_CHECK_MSG(dims.nx > 0 && dims.ny > 0 && dims.nz > 0,
                   "grid dims must be positive");
  density_.assign(dims.VoxelCount(), 0.0f);
  features_.assign(dims.VoxelCount() * kColorFeatureDim, 0.0f);
}

DenseGrid DenseGrid::FromRaw(GridDims dims, std::vector<float> density,
                             std::vector<float> features) {
  SPNERF_CHECK_MSG(dims.nx > 0 && dims.ny > 0 && dims.nz > 0,
                   "grid dims must be positive");
  SPNERF_CHECK_MSG(density.size() == dims.VoxelCount(),
                   "density array size " << density.size()
                                         << " does not match dims");
  SPNERF_CHECK_MSG(features.size() == dims.VoxelCount() * kColorFeatureDim,
                   "feature array size " << features.size()
                                         << " does not match dims");
  DenseGrid grid;
  grid.dims_ = dims;
  grid.density_ = std::move(density);
  grid.features_ = std::move(features);
  return grid;
}

VoxelData DenseGrid::Voxel(Vec3i p) const {
  SPNERF_CHECK_MSG(dims_.Contains(p), "voxel out of bounds: " << p);
  const VoxelIndex i = dims_.Flatten(p);
  VoxelData v;
  v.density = density_[i];
  const float* f = Features(i);
  for (int c = 0; c < kColorFeatureDim; ++c) v.features[c] = f[c];
  return v;
}

void DenseGrid::SetVoxel(Vec3i p, const VoxelData& v) {
  SPNERF_CHECK_MSG(dims_.Contains(p), "voxel out of bounds: " << p);
  const VoxelIndex i = dims_.Flatten(p);
  density_[i] = v.density;
  float* f = MutableFeatures(i);
  for (int c = 0; c < kColorFeatureDim; ++c) f[c] = v.features[c];
}

bool DenseGrid::IsNonZero(VoxelIndex i) const {
  if (density_[i] != 0.0f) return true;
  const float* f = Features(i);
  for (int c = 0; c < kColorFeatureDim; ++c)
    if (f[c] != 0.0f) return true;
  return false;
}

u64 DenseGrid::CountNonZero() const {
  u64 n = 0;
  const u64 total = VoxelCount();
  for (VoxelIndex i = 0; i < total; ++i)
    if (IsNonZero(i)) ++n;
  return n;
}

double DenseGrid::NonZeroFraction() const {
  const u64 total = VoxelCount();
  return total ? static_cast<double>(CountNonZero()) / static_cast<double>(total)
               : 0.0;
}

std::vector<VoxelIndex> DenseGrid::NonZeroIndices() const {
  std::vector<VoxelIndex> out;
  const u64 total = VoxelCount();
  for (VoxelIndex i = 0; i < total; ++i)
    if (IsNonZero(i)) out.push_back(i);
  return out;
}

}  // namespace spnerf
