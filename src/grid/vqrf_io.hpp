// Binary serialization of VQRF models ("compressed model on disk") — this is
// the artifact the SpNeRF preprocessing consumes on device, so the package
// round-trips the full compressed representation exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "grid/vqrf_model.hpp"

namespace spnerf {

/// Format magic and version ("SPNF" + version byte).
inline constexpr u32 kVqrfMagic = 0x53504e46u;
inline constexpr u32 kVqrfVersion = 1;

void SaveVqrfModel(const VqrfModel& model, std::ostream& out);
void SaveVqrfModel(const VqrfModel& model, const std::string& path);

/// Loads a model saved by SaveVqrfModel. Throws SpnerfError on a bad magic,
/// version mismatch, truncation, or internally inconsistent contents.
VqrfModel LoadVqrfModel(std::istream& in);
VqrfModel LoadVqrfModel(const std::string& path);

}  // namespace spnerf
