#include "grid/vqrf_io.hpp"

#include <fstream>

#include "common/binary_io.hpp"

namespace spnerf {
namespace {

/// Record fields are serialized as parallel arrays so the on-disk format is
/// independent of the host struct layout/padding.
struct RecordArrays {
  std::vector<u64> indices;
  std::vector<u8> kept;
  std::vector<u32> payloads;
  std::vector<i8> densities;
};

RecordArrays SplitRecords(const std::vector<VoxelRecord>& records) {
  RecordArrays a;
  a.indices.reserve(records.size());
  a.kept.reserve(records.size());
  a.payloads.reserve(records.size());
  a.densities.reserve(records.size());
  for (const VoxelRecord& r : records) {
    a.indices.push_back(r.index);
    a.kept.push_back(r.kept ? 1 : 0);
    a.payloads.push_back(r.payload_id);
    a.densities.push_back(r.density_q);
  }
  return a;
}

}  // namespace

void SaveVqrfModel(const VqrfModel& model, std::ostream& out) {
  WritePod<u32>(out, kVqrfMagic);
  WritePod<u32>(out, kVqrfVersion);

  WritePod<i32>(out, model.dims_.nx);
  WritePod<i32>(out, model.dims_.ny);
  WritePod<i32>(out, model.dims_.nz);

  // Codebook: full-precision rows (the INT8 view is re-derivable but cheap
  // to store; both are written for bit-exact round trips).
  WritePod<i32>(out, model.codebook_.Size());
  for (const FeatureVec& row : model.codebook_.Rows()) {
    out.write(reinterpret_cast<const char*>(row.data()),
              sizeof(float) * kColorFeatureDim);
  }
  WriteVector(out, model.codebook_int8_);

  WritePod<float>(out, model.feature_quant_.Scale());
  WritePod<float>(out, model.density_quant_.Scale());

  const RecordArrays arrays = SplitRecords(model.records_);
  WriteVector(out, arrays.indices);
  WriteVector(out, arrays.kept);
  WriteVector(out, arrays.payloads);
  WriteVector(out, arrays.densities);

  WriteVector(out, model.kept_features_);
  WritePod<u64>(out, model.kept_count_);
  WriteVector(out, model.bitmap_.Words());
  SPNERF_CHECK_MSG(out.good(), "VQRF model write failed");
}

void SaveVqrfModel(const VqrfModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  SPNERF_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  SaveVqrfModel(model, out);
}

VqrfModel LoadVqrfModel(std::istream& in) {
  ExpectMagic(in, kVqrfMagic, "SpNeRF VQRF model");
  ExpectVersion(in, kVqrfVersion, "VQRF model");

  VqrfModel model;
  model.dims_.nx = ReadPod<i32>(in);
  model.dims_.ny = ReadPod<i32>(in);
  model.dims_.nz = ReadPod<i32>(in);
  SPNERF_CHECK_MSG(model.dims_.nx > 0 && model.dims_.ny > 0 &&
                       model.dims_.nz > 0,
                   "corrupt model: non-positive dims");

  const i32 book_size = ReadPod<i32>(in);
  SPNERF_CHECK_MSG(book_size > 0 && book_size <= (1 << 20),
                   "corrupt model: codebook size " << book_size);
  std::vector<FeatureVec> rows(static_cast<std::size_t>(book_size));
  for (FeatureVec& row : rows) {
    in.read(reinterpret_cast<char*>(row.data()),
            sizeof(float) * kColorFeatureDim);
  }
  SPNERF_CHECK_MSG(in.good(), "truncated codebook");
  model.codebook_ = Codebook(std::move(rows));
  model.codebook_int8_ = ReadVector<i8>(in);
  SPNERF_CHECK_MSG(model.codebook_int8_.size() ==
                       static_cast<std::size_t>(book_size) * kColorFeatureDim,
                   "corrupt model: INT8 codebook size mismatch");

  model.feature_quant_ = Int8Quantizer(ReadPod<float>(in));
  model.density_quant_ = Int8Quantizer(ReadPod<float>(in));

  const std::vector<u64> indices = ReadVector<u64>(in);
  const std::vector<u8> kept = ReadVector<u8>(in);
  const std::vector<u32> payloads = ReadVector<u32>(in);
  const std::vector<i8> densities = ReadVector<i8>(in);
  SPNERF_CHECK_MSG(kept.size() == indices.size() &&
                       payloads.size() == indices.size() &&
                       densities.size() == indices.size(),
                   "corrupt model: record array length mismatch");

  model.records_.reserve(indices.size());
  const u64 voxel_count = model.dims_.VoxelCount();
  u64 prev_plus_one = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    SPNERF_CHECK_MSG(indices[i] < voxel_count,
                     "corrupt model: record index out of grid");
    SPNERF_CHECK_MSG(indices[i] + 1 > prev_plus_one,
                     "corrupt model: records not ascending");
    prev_plus_one = indices[i] + 1;
    VoxelRecord rec;
    rec.index = indices[i];
    rec.kept = kept[i] != 0;
    rec.payload_id = payloads[i];
    rec.density_q = densities[i];
    model.record_by_index_[rec.index] = static_cast<u32>(i);
    model.records_.push_back(rec);
  }

  model.kept_features_ = ReadVector<i8>(in);
  model.kept_count_ = ReadPod<u64>(in);
  SPNERF_CHECK_MSG(model.kept_features_.size() ==
                       model.kept_count_ * kColorFeatureDim,
                   "corrupt model: kept-feature size mismatch");
  SPNERF_CHECK_MSG(model.kept_count_ <= model.records_.size(),
                   "corrupt model: kept count exceeds records");

  std::vector<u64> words = ReadVector<u64>(in);
  model.bitmap_ = BitGrid::FromWords(model.dims_, std::move(words));

  // Cross-check payload ranges against the loaded stores.
  for (const VoxelRecord& rec : model.records_) {
    if (rec.kept) {
      SPNERF_CHECK_MSG(rec.payload_id < model.kept_count_,
                       "corrupt model: kept slot out of range");
    } else {
      SPNERF_CHECK_MSG(rec.payload_id < static_cast<u32>(book_size),
                       "corrupt model: codebook row out of range");
    }
  }
  return model;
}

VqrfModel LoadVqrfModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SPNERF_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  return LoadVqrfModel(in);
}

}  // namespace spnerf
