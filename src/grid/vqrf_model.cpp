#include "grid/vqrf_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace spnerf {
namespace {

double Importance(const DenseGrid& grid, VoxelIndex i) {
  const float* f = grid.Features(i);
  double norm2 = 0.0;
  for (int c = 0; c < kColorFeatureDim; ++c)
    norm2 += static_cast<double>(f[c]) * f[c];
  return std::fabs(static_cast<double>(grid.Density(i))) *
         (1.0 + std::sqrt(norm2));
}

}  // namespace

VqrfModel VqrfModel::Build(const DenseGrid& full, const VqrfBuildParams& params) {
  SPNERF_CHECK_MSG(params.prune_fraction >= 0.0 && params.prune_fraction < 1.0,
                   "prune_fraction must be in [0,1)");
  SPNERF_CHECK_MSG(params.keep_fraction >= 0.0 && params.keep_fraction <= 1.0,
                   "keep_fraction must be in [0,1]");
  SPNERF_CHECK_MSG(params.codebook_size > 0, "codebook_size must be positive");

  VqrfModel model;
  model.dims_ = full.Dims();

  // ---- 1. Pruning: sort non-zero voxels by importance, drop the tail. ----
  std::vector<VoxelIndex> nz = full.NonZeroIndices();
  SPNERF_CHECK_MSG(!nz.empty(), "cannot build a VQRF model from an empty grid");

  std::vector<std::pair<double, VoxelIndex>> ranked;
  ranked.reserve(nz.size());
  for (VoxelIndex i : nz) ranked.emplace_back(Importance(full, i), i);
  std::sort(ranked.begin(), ranked.end());

  const auto pruned =
      static_cast<std::size_t>(params.prune_fraction * static_cast<double>(ranked.size()));
  std::vector<VoxelIndex> survivors;
  survivors.reserve(ranked.size() - pruned);
  for (std::size_t r = pruned; r < ranked.size(); ++r)
    survivors.push_back(ranked[r].second);
  std::sort(survivors.begin(), survivors.end());

  // ---- 2. Keep/VQ split by importance rank. ----
  const auto keep_count = static_cast<std::size_t>(
      params.keep_fraction * static_cast<double>(survivors.size()));
  const u64 max_kept = kUnifiedIndexSpace - static_cast<u64>(params.codebook_size);
  SPNERF_CHECK_MSG(keep_count <= max_kept,
                   "kept voxels (" << keep_count
                                   << ") exceed the 18-bit unified address space ("
                                   << max_kept << " true-grid slots)");
  // Highest-importance survivors are kept; recompute the cut via rank.
  std::vector<std::pair<double, VoxelIndex>> surv_ranked;
  surv_ranked.reserve(survivors.size());
  for (VoxelIndex i : survivors) surv_ranked.emplace_back(Importance(full, i), i);
  std::sort(surv_ranked.begin(), surv_ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<bool> is_kept_rank(survivors.size(), false);
  std::unordered_map<VoxelIndex, bool> kept_lookup;
  kept_lookup.reserve(survivors.size());
  for (std::size_t r = 0; r < surv_ranked.size(); ++r)
    kept_lookup[surv_ranked[r].second] = (r < keep_count);

  // ---- 3. Shared feature scale over all surviving features. ----
  std::vector<float> all_feats;
  all_feats.reserve(survivors.size() * kColorFeatureDim);
  std::vector<float> all_density;
  all_density.reserve(survivors.size());
  for (VoxelIndex i : survivors) {
    const float* f = full.Features(i);
    all_feats.insert(all_feats.end(), f, f + kColorFeatureDim);
    all_density.push_back(full.Density(i));
  }
  model.feature_quant_ = Int8Quantizer::FitAbsMax(all_feats);
  model.density_quant_ = Int8Quantizer::FitAbsMax(all_density);

  // ---- 4. Codebook training on a sample of VQ-eligible features. ----
  Rng rng(params.seed);
  std::vector<FeatureVec> train;
  train.reserve(static_cast<std::size_t>(params.max_vq_train_samples));
  {
    std::vector<VoxelIndex> vq_voxels;
    for (VoxelIndex i : survivors)
      if (!kept_lookup[i]) vq_voxels.push_back(i);
    if (vq_voxels.empty()) vq_voxels = survivors;  // degenerate: all kept
    const std::size_t want =
        std::min<std::size_t>(vq_voxels.size(),
                              static_cast<std::size_t>(params.max_vq_train_samples));
    for (std::size_t s = 0; s < want; ++s) {
      const VoxelIndex i = vq_voxels[vq_voxels.size() == want
                                         ? s
                                         : rng.NextBelow(vq_voxels.size())];
      FeatureVec fv{};
      const float* f = full.Features(i);
      for (int c = 0; c < kColorFeatureDim; ++c) fv[c] = f[c];
      train.push_back(fv);
    }
  }
  const int book_size =
      std::min<int>(params.codebook_size, static_cast<int>(train.size()));
  model.codebook_ = Codebook::Train(train, std::max(book_size, 1),
                                    params.kmeans_iterations, rng,
                                    params.max_threads);

  // Codebook rows quantised with the shared feature scale (on-chip format).
  model.codebook_int8_.resize(
      static_cast<std::size_t>(model.codebook_.Size()) * kColorFeatureDim);
  for (int k = 0; k < model.codebook_.Size(); ++k) {
    const FeatureVec& row = model.codebook_.Row(k);
    for (int c = 0; c < kColorFeatureDim; ++c) {
      model.codebook_int8_[static_cast<std::size_t>(k) * kColorFeatureDim + c] =
          model.feature_quant_.Quantize(row[c]);
    }
  }

  // ---- 5. Emit records in ascending index order. ----
  // Codebook assignment is the hot loop (N x codebook-size distance
  // computations); precompute it in parallel, then emit sequentially so the
  // record order stays deterministic.
  std::vector<u32> nearest_id(survivors.size(), 0);
  ParallelFor(
      survivors.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const VoxelIndex i = survivors[s];
          if (kept_lookup.at(i)) continue;
          FeatureVec fv{};
          const float* f = full.Features(i);
          for (int c = 0; c < kColorFeatureDim; ++c) fv[c] = f[c];
          nearest_id[s] = static_cast<u32>(model.codebook_.Nearest(fv));
        }
      },
      params.max_threads);

  model.records_.reserve(survivors.size());
  model.kept_features_.reserve(keep_count * kColorFeatureDim);
  u32 next_kept_slot = 0;
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    const VoxelIndex i = survivors[s];
    VoxelRecord rec;
    rec.index = i;
    rec.density_q = model.density_quant_.Quantize(full.Density(i));
    if (kept_lookup[i]) {
      rec.kept = true;
      rec.payload_id = next_kept_slot++;
      const float* f = full.Features(i);
      for (int c = 0; c < kColorFeatureDim; ++c)
        model.kept_features_.push_back(model.feature_quant_.Quantize(f[c]));
    } else {
      rec.kept = false;
      rec.payload_id = nearest_id[s];
    }
    model.record_by_index_[i] = static_cast<u32>(model.records_.size());
    model.records_.push_back(rec);
  }
  model.kept_count_ = next_kept_slot;

  // ---- 6. Occupancy bitmap over surviving voxels. ----
  model.bitmap_ = BitGrid(model.dims_);
  for (const VoxelRecord& rec : model.records_) model.bitmap_.Set(rec.index, true);

  SPNERF_LOG_DEBUG << "VQRF build: " << model.records_.size() << " survivors, "
                   << model.kept_count_ << " kept, codebook "
                   << model.codebook_.Size();
  (void)is_kept_rank;
  return model;
}

VoxelData VqrfModel::DecodeRecord(const VoxelRecord& rec) const {
  VoxelData v;
  v.density = density_quant_.Dequantize(rec.density_q);
  if (rec.kept) {
    const std::size_t base =
        static_cast<std::size_t>(rec.payload_id) * kColorFeatureDim;
    SPNERF_CHECK_MSG(base + kColorFeatureDim <= kept_features_.size(),
                     "kept slot out of range");
    for (int c = 0; c < kColorFeatureDim; ++c)
      v.features[c] = feature_quant_.Dequantize(kept_features_[base + c]);
  } else {
    const std::size_t base =
        static_cast<std::size_t>(rec.payload_id) * kColorFeatureDim;
    SPNERF_CHECK_MSG(base + kColorFeatureDim <= codebook_int8_.size(),
                     "codebook row out of range");
    for (int c = 0; c < kColorFeatureDim; ++c)
      v.features[c] = feature_quant_.Dequantize(codebook_int8_[base + c]);
  }
  return v;
}

std::optional<VoxelRecord> VqrfModel::FindRecord(VoxelIndex index) const {
  auto it = record_by_index_.find(index);
  if (it == record_by_index_.end()) return std::nullopt;
  return records_[it->second];
}

DenseGrid VqrfModel::Restore() const {
  DenseGrid grid(dims_);
  for (const VoxelRecord& rec : records_) {
    const VoxelData v = DecodeRecord(rec);
    grid.SetDensity(rec.index, v.density);
    float* f = grid.MutableFeatures(rec.index);
    for (int c = 0; c < kColorFeatureDim; ++c) f[c] = v.features[c];
  }
  return grid;
}

u64 VqrfModel::RestoredBytes() const {
  return dims_.VoxelCount() * sizeof(float) * (1 + kColorFeatureDim);
}

u64 VqrfModel::CompressedBytes() const {
  const u64 codebook = codebook_int8_.size();            // INT8 rows
  const u64 kept = kept_features_.size();                // INT8 features
  // Per record: INT8 density + 18-bit payload id, bit-packed.
  const u64 per_record_bits = 8 + kUnifiedIndexBits;
  const u64 records = (records_.size() * per_record_bits + 7) / 8;
  const u64 bitmap = bitmap_.SizeBytes();
  const u64 scales = 2 * sizeof(float);
  return codebook + kept + records + bitmap + scales;
}

}  // namespace spnerf
