// VQRF compressed volumetric model (Li et al., CVPR 2023), the representation
// SpNeRF operates on. A dense DVGO-style grid is compressed by:
//   1. voxel pruning       — drop low-importance voxels entirely;
//   2. vector quantisation — most surviving voxels store only a codebook id
//                            into a 4096 x 12 color-feature codebook;
//   3. kept ("true") voxels — the most important fraction keeps its full
//                            feature vector, stored INT8 with one scale.
// Densities of all surviving voxels are stored INT8.
//
// The original VQRF *restores* the full dense grid from this model before
// rendering (Fig. 1 top path). SpNeRF instead preprocesses this model into
// hash tables and decodes online (src/encoding).
#pragma once

#include <iosfwd>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "grid/bitmap.hpp"
#include "grid/codebook.hpp"
#include "grid/dense_grid.hpp"
#include "grid/quantization.hpp"

namespace spnerf {

struct VqrfBuildParams {
  /// Fraction of non-zero voxels pruned away (lowest importance first).
  double prune_fraction = 0.08;
  /// Fraction of surviving voxels kept as full "true" voxels (highest
  /// importance first); the rest are vector-quantised.
  double keep_fraction = 0.20;
  int codebook_size = kCodebookSize;
  int kmeans_iterations = 8;
  /// k-means trains on at most this many sampled feature vectors.
  int max_vq_train_samples = 20000;
  u64 seed = 1;
  /// Worker cap for the parallel build loops (k-means seeding/assignment,
  /// codebook assignment); 0 uses every pool worker. Pure execution
  /// policy: the built model is byte-identical at any value, so asset
  /// cache keys exclude it.
  unsigned max_threads = 0;
};

/// One surviving voxel: where it lives and where its payload is.
struct VoxelRecord {
  VoxelIndex index = 0;  // flattened grid position
  bool kept = false;     // true voxel (full features) vs vector-quantised
  u32 payload_id = 0;    // codebook row (if !kept) or kept-slot (if kept)
  i8 density_q = 0;      // INT8 density
};

class VqrfModel {
 public:
  VqrfModel() = default;

  /// Compresses a full-precision dense grid. Importance is
  /// |density| * ||features||_2, a proxy for VQRF's ray-weight importance.
  static VqrfModel Build(const DenseGrid& full, const VqrfBuildParams& params);

  [[nodiscard]] const GridDims& Dims() const { return dims_; }
  [[nodiscard]] const Codebook& GetCodebook() const { return codebook_; }
  [[nodiscard]] const Int8Quantizer& FeatureQuantizer() const {
    return feature_quant_;
  }
  [[nodiscard]] const Int8Quantizer& DensityQuantizer() const {
    return density_quant_;
  }
  [[nodiscard]] const std::vector<VoxelRecord>& Records() const {
    return records_;
  }
  [[nodiscard]] const BitGrid& OccupancyBitmap() const { return bitmap_; }

  [[nodiscard]] u64 NonZeroCount() const { return records_.size(); }
  [[nodiscard]] u64 KeptCount() const { return kept_count_; }
  [[nodiscard]] u64 VqCount() const { return records_.size() - kept_count_; }

  /// Kept ("true grid") INT8 features, kColorFeatureDim per kept slot.
  [[nodiscard]] const std::vector<i8>& KeptFeatures() const {
    return kept_features_;
  }
  /// Codebook rows quantised to INT8 with the shared feature scale (this is
  /// what the on-chip Color Codebook buffer holds).
  [[nodiscard]] const std::vector<i8>& CodebookInt8() const {
    return codebook_int8_;
  }

  /// Dequantised payload for one record (what a perfect lookup returns).
  [[nodiscard]] VoxelData DecodeRecord(const VoxelRecord& rec) const;

  /// Record lookup by voxel index; nullopt when the voxel was pruned/zero.
  [[nodiscard]] std::optional<VoxelRecord> FindRecord(VoxelIndex index) const;

  /// VQRF's rendering-time representation: the restored full dense grid
  /// (dequantised FP32, zeros where pruned). This is the memory the paper's
  /// Fig 6(a) charges to "original VQRF".
  [[nodiscard]] DenseGrid Restore() const;

  /// Bytes of the restored dense grid (FP32 density + 12 FP32 features).
  [[nodiscard]] u64 RestoredBytes() const;

  /// Bytes of the compressed model as stored on disk: codebook INT8 +
  /// kept features INT8 + per-record (density INT8 + 18-bit payload id)
  /// + occupancy bitmap + scales.
  [[nodiscard]] u64 CompressedBytes() const;

 private:
  friend void SaveVqrfModel(const VqrfModel&, std::ostream&);
  friend VqrfModel LoadVqrfModel(std::istream&);

  GridDims dims_;
  Codebook codebook_;
  std::vector<i8> codebook_int8_;
  Int8Quantizer feature_quant_;
  Int8Quantizer density_quant_;
  std::vector<VoxelRecord> records_;  // ascending by index
  std::vector<i8> kept_features_;
  u64 kept_count_ = 0;
  BitGrid bitmap_;
  std::unordered_map<VoxelIndex, u32> record_by_index_;
};

}  // namespace spnerf
