#include "grid/quantization.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace spnerf {

Int8Quantizer::Int8Quantizer(float scale) : scale_(scale) {
  SPNERF_CHECK_MSG(scale > 0.0f && std::isfinite(scale),
                   "quantizer scale must be positive and finite");
}

Int8Quantizer Int8Quantizer::FitAbsMax(std::span<const float> values) {
  float absmax = 0.0f;
  for (float v : values) absmax = std::max(absmax, std::fabs(v));
  if (absmax == 0.0f) absmax = 1.0f;  // all-zero tensor: any scale works
  return Int8Quantizer(absmax / 127.0f);
}

i8 Int8Quantizer::Quantize(float x) const {
  const float q = std::nearbyint(x / scale_);
  return static_cast<i8>(std::clamp(q, -127.0f, 127.0f));
}

void Int8Quantizer::QuantizeSpan(std::span<const float> in,
                                 std::span<i8> out) const {
  SPNERF_CHECK_MSG(in.size() == out.size(), "span size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = Quantize(in[i]);
}

void Int8Quantizer::DequantizeSpan(std::span<const i8> in,
                                   std::span<float> out) const {
  SPNERF_CHECK_MSG(in.size() == out.size(), "span size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = Dequantize(in[i]);
}

}  // namespace spnerf
