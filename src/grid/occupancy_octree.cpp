#include "grid/occupancy_octree.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spnerf {
namespace {

GridDims ParentDims(const GridDims& child) {
  return {(child.nx + 1) / 2, (child.ny + 1) / 2, (child.nz + 1) / 2};
}

/// OR-reduces one level: parent bit = OR of its (up to) 2x2x2 children.
BitGrid ReduceLevel(const BitGrid& child) {
  BitGrid parent(ParentDims(child.Dims()));
  const GridDims& cd = child.Dims();
  const u64 total = cd.VoxelCount();
  for (VoxelIndex i = 0; i < total; ++i) {
    if (!child.Test(i)) continue;
    const Vec3i p = cd.Unflatten(i);
    parent.Set(Vec3i{p.x / 2, p.y / 2, p.z / 2}, true);
  }
  return parent;
}

/// Root-first level stack reduced from `leaf` up to a 1x1x1 root.
std::vector<BitGrid> ReduceToRoot(BitGrid leaf) {
  std::vector<BitGrid> levels;
  levels.push_back(std::move(leaf));
  while (levels.back().Dims().nx > 1 || levels.back().Dims().ny > 1 ||
         levels.back().Dims().nz > 1) {
    levels.push_back(ReduceLevel(levels.back()));
  }
  std::reverse(levels.begin(), levels.end());
  return levels;
}

}  // namespace

OccupancyOctree OccupancyOctree::Build(const CoarseOccupancy& coarse) {
  OccupancyOctree tree;
  tree.factor_ = coarse.Factor();
  tree.levels_ = ReduceToRoot(coarse.Bits());
  tree.InitBoundaries();
  return tree;
}

OccupancyOctree OccupancyOctree::FromLevels(std::vector<BitGrid> levels,
                                            int factor) {
  SPNERF_CHECK_MSG(factor >= 1, "octree factor must be >= 1");
  SPNERF_CHECK_MSG(!levels.empty(), "octree needs at least one level");
  const GridDims& root = levels.front().Dims();
  SPNERF_CHECK_MSG(root.nx == 1 && root.ny == 1 && root.nz == 1,
                   "corrupt octree: root level is " << root.nx << "x"
                       << root.ny << "x" << root.nz << ", expected 1x1x1");
  // Recompute the whole reduction chain from the leaf level and demand a
  // bit-for-bit match: a corrupt pyramid (flipped parent bit, wrong level
  // dims) is rejected here, never traversed.
  for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
    const BitGrid& parent = levels[l];
    const BitGrid& child = levels[l + 1];
    SPNERF_CHECK_MSG(
        ParentDims(child.Dims()) == parent.Dims(),
        "corrupt octree: level " << l << " dims do not halve level " << l + 1);
    const BitGrid expected = ReduceLevel(child);
    SPNERF_CHECK_MSG(expected.Words() == parent.Words(),
                     "corrupt octree: level "
                         << l << " is not the OR-reduction of level " << l + 1);
  }
  OccupancyOctree tree;
  tree.factor_ = factor;
  tree.levels_ = std::move(levels);
  tree.InitBoundaries();
  return tree;
}

void OccupancyOctree::InitBoundaries() {
  const GridDims& d = levels_.back().Dims();
  const auto fill = [](std::vector<float>& out, int n) {
    out.resize(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i <= n; ++i) {
      // EXACTLY the CoarseOccupancy::CellBounds expression, so a marcher
      // reading the table sees bit-identical boundary planes.
      out[static_cast<std::size_t>(i)] =
          static_cast<float>(i) / static_cast<float>(n);
    }
  };
  fill(bx_, d.nx);
  fill(by_, d.ny);
  fill(bz_, d.nz);
}

bool OccupancyOctree::FindEmptyNode(Vec3i c, OctreeRayCache& cache) const {
  const int leaf = Levels() - 1;
  // Leaf probe first: an occupied cell answers in one probe, exactly the
  // flat path's cost, so dense regions pay nothing for the hierarchy.
  if (levels_.back().Test(c)) return false;
  // The leaf is empty, so some empty ancestor chain exists (parent empty
  // <=> all children empty). Descend root-first and stop at the shallowest
  // empty node — the largest region the per-ray cache can cover.
  for (int l = 0; l < leaf; ++l) {
    const int shift = leaf - l;
    const Vec3i a{c.x >> shift, c.y >> shift, c.z >> shift};
    if (!levels_[static_cast<std::size_t>(l)].Test(a)) {
      const GridDims& ld = levels_.back().Dims();
      cache.lo = Vec3i{a.x << shift, a.y << shift, a.z << shift};
      cache.hi = Vec3i{std::min((a.x + 1) << shift, ld.nx),
                       std::min((a.y + 1) << shift, ld.ny),
                       std::min((a.z + 1) << shift, ld.nz)};
      cache.level = l;
      return true;
    }
  }
  cache.lo = c;
  cache.hi = Vec3i{c.x + 1, c.y + 1, c.z + 1};
  cache.level = leaf;
  return true;
}

}  // namespace spnerf
