// Packed 3-D occupancy bitmap: one bit per voxel grid point indicating
// zero (0) / non-zero (1). This is the paper's bitmap-masking structure
// (section III-B) and the backing store of the hardware Bitmap Lookup Unit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "grid/dense_grid.hpp"

namespace spnerf {

class BitGrid {
 public:
  BitGrid() = default;
  explicit BitGrid(GridDims dims);

  /// Builds the occupancy bitmap of a dense grid.
  static BitGrid FromGrid(const DenseGrid& grid);

  /// Reconstructs a bitmap from its packed words (deserialization).
  static BitGrid FromWords(GridDims dims, std::vector<u64> words);

  [[nodiscard]] const GridDims& Dims() const { return dims_; }

  [[nodiscard]] bool Test(VoxelIndex i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }
  [[nodiscard]] bool Test(Vec3i p) const {
    return dims_.Contains(p) && Test(dims_.Flatten(p));
  }
  void Set(VoxelIndex i, bool value);
  void Set(Vec3i p, bool value) { Set(dims_.Flatten(p), value); }

  [[nodiscard]] u64 CountSet() const;

  /// Exact storage: 1 bit per voxel, rounded up to bytes (the paper counts
  /// "a single bit for each voxel grid point").
  [[nodiscard]] u64 SizeBytes() const { return (dims_.VoxelCount() + 7) / 8; }

  [[nodiscard]] const std::vector<u64>& Words() const { return words_; }

 private:
  GridDims dims_;
  std::vector<u64> words_;
};

}  // namespace spnerf
