#include "grid/codebook.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace spnerf {
namespace {

float Dist2(const FeatureVec& a, const FeatureVec& b) {
  float acc = 0.0f;
  for (int c = 0; c < kColorFeatureDim; ++c) {
    const float d = a[c] - b[c];
    acc += d * d;
  }
  return acc;
}

}  // namespace

Codebook::Codebook(std::vector<FeatureVec> rows) : rows_(std::move(rows)) {
  SPNERF_CHECK_MSG(!rows_.empty(), "codebook cannot be empty");
}

Codebook Codebook::Train(std::span<const FeatureVec> samples, int size,
                         int iterations, Rng& rng, unsigned max_threads) {
  SPNERF_CHECK_MSG(size > 0, "codebook size must be positive");
  SPNERF_CHECK_MSG(!samples.empty(), "cannot train a codebook on zero samples");

  std::vector<FeatureVec> centroids;
  centroids.reserve(static_cast<std::size_t>(size));

  // k-means++ seeding: first centroid uniform, then proportional to D^2.
  // The D^2 refresh against the newest centroid is the seeding hot loop
  // (codebook-size x samples distance computations); it updates each entry
  // independently, so the parallel version is bit-exact for any worker
  // count. The probability total is then summed sequentially in index
  // order, keeping the picked centroids deterministic too.
  centroids.push_back(samples[rng.NextBelow(samples.size())]);
  std::vector<float> d2(samples.size(), std::numeric_limits<float>::max());
  while (static_cast<int>(centroids.size()) < size) {
    const FeatureVec& latest = centroids.back();
    ParallelFor(
        samples.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            d2[i] = std::min(d2[i], Dist2(samples[i], latest));
          }
        },
        max_threads);
    double total = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) total += d2[i];
    if (total <= 0.0) {
      // All samples coincide with existing centroids: replicate a sample.
      centroids.push_back(samples[rng.NextBelow(samples.size())]);
      continue;
    }
    double r = rng.NextDouble() * total;
    std::size_t pick = samples.size() - 1;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      r -= d2[i];
      if (r <= 0.0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(samples[pick]);
  }

  // Lloyd iterations (assignment step parallelised; deterministic).
  std::vector<int> assign(samples.size(), 0);
  std::vector<int> next_assign(samples.size(), 0);
  std::vector<FeatureVec> sums(static_cast<std::size_t>(size));
  std::vector<u64> counts(static_cast<std::size_t>(size));
  Codebook book(std::move(centroids));
  for (int it = 0; it < iterations; ++it) {
    ParallelFor(
        samples.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            next_assign[i] = book.Nearest(samples[i]);
          }
        },
        max_threads);
    bool changed = false;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (next_assign[i] != assign[i]) {
        assign[i] = next_assign[i];
        changed = true;
      }
    }
    if (!changed && it > 0) break;
    for (auto& s : sums) s.fill(0.0f);
    std::fill(counts.begin(), counts.end(), 0ull);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      auto& s = sums[static_cast<std::size_t>(assign[i])];
      for (int c = 0; c < kColorFeatureDim; ++c) s[c] += samples[i][c];
      ++counts[static_cast<std::size_t>(assign[i])];
    }
    for (int k = 0; k < size; ++k) {
      if (counts[static_cast<std::size_t>(k)] == 0) continue;  // keep old row
      FeatureVec& row = book.rows_[static_cast<std::size_t>(k)];
      const float inv = 1.0f / static_cast<float>(counts[static_cast<std::size_t>(k)]);
      for (int c = 0; c < kColorFeatureDim; ++c)
        row[c] = sums[static_cast<std::size_t>(k)][c] * inv;
    }
  }
  return book;
}

const FeatureVec& Codebook::Row(int id) const {
  SPNERF_CHECK_MSG(id >= 0 && id < Size(), "codebook row out of range: " << id);
  return rows_[static_cast<std::size_t>(id)];
}

int Codebook::Nearest(const FeatureVec& f) const {
  int best = 0;
  float bestd = std::numeric_limits<float>::max();
  for (int k = 0; k < Size(); ++k) {
    const float d = Dist2(f, rows_[static_cast<std::size_t>(k)]);
    if (d < bestd) {
      bestd = d;
      best = k;
    }
  }
  return best;
}

float Codebook::QuantizationError(const FeatureVec& f) const {
  return Dist2(f, rows_[static_cast<std::size_t>(Nearest(f))]);
}

}  // namespace spnerf
