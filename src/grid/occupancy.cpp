#include "grid/occupancy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spnerf {

CoarseOccupancy CoarseOccupancy::Build(const BitGrid& fine, int factor) {
  SPNERF_CHECK_MSG(factor >= 1, "coarse factor must be >= 1");
  const GridDims fd = fine.Dims();
  const GridDims cd{(fd.nx + factor - 1) / factor, (fd.ny + factor - 1) / factor,
                    (fd.nz + factor - 1) / factor};

  CoarseOccupancy occ;
  occ.factor_ = factor;
  BitGrid reduced(cd);

  // OR-reduce fine bits into coarse cells.
  const u64 total = fd.VoxelCount();
  for (VoxelIndex i = 0; i < total; ++i) {
    if (!fine.Test(i)) continue;
    const Vec3i p = fd.Unflatten(i);
    reduced.Set(Vec3i{p.x / factor, p.y / factor, p.z / factor}, true);
  }

  // Dilate by one coarse cell so a skipped cell can never clip the trilinear
  // stencil of an occupied neighbour.
  BitGrid dilated(cd);
  for (int x = 0; x < cd.nx; ++x) {
    for (int y = 0; y < cd.ny; ++y) {
      for (int z = 0; z < cd.nz; ++z) {
        bool any = false;
        for (int dx = -1; dx <= 1 && !any; ++dx) {
          for (int dy = -1; dy <= 1 && !any; ++dy) {
            for (int dz = -1; dz <= 1 && !any; ++dz) {
              const Vec3i q{x + dx, y + dy, z + dz};
              if (cd.Contains(q) && reduced.Test(q)) any = true;
            }
          }
        }
        if (any) dilated.Set(Vec3i{x, y, z}, true);
      }
    }
  }
  occ.coarse_ = std::move(dilated);
  return occ;
}

CoarseOccupancy CoarseOccupancy::FromBits(BitGrid coarse, int factor) {
  SPNERF_CHECK_MSG(factor >= 1, "coarse factor must be >= 1");
  CoarseOccupancy occ;
  occ.factor_ = factor;
  occ.coarse_ = std::move(coarse);
  return occ;
}

Vec3i CoarseOccupancy::CellOfWorld(Vec3f p) const {
  const GridDims& cd = coarse_.Dims();
  const auto cell = [](float w, int n) {
    return std::clamp(static_cast<int>(w * static_cast<float>(n)), 0, n - 1);
  };
  return {cell(p.x, cd.nx), cell(p.y, cd.ny), cell(p.z, cd.nz)};
}

bool CoarseOccupancy::OccupiedAtWorld(Vec3f p) const {
  if (p.x < 0.f || p.x > 1.f || p.y < 0.f || p.y > 1.f || p.z < 0.f ||
      p.z > 1.f) {
    return false;
  }
  return coarse_.Test(CellOfWorld(p));
}

Aabb CoarseOccupancy::CellBounds(Vec3i cell) const {
  const GridDims& cd = coarse_.Dims();
  return {{static_cast<float>(cell.x) / static_cast<float>(cd.nx),
           static_cast<float>(cell.y) / static_cast<float>(cd.ny),
           static_cast<float>(cell.z) / static_cast<float>(cd.nz)},
          {static_cast<float>(cell.x + 1) / static_cast<float>(cd.nx),
           static_cast<float>(cell.y + 1) / static_cast<float>(cd.ny),
           static_cast<float>(cell.z + 1) / static_cast<float>(cd.nz)}};
}

}  // namespace spnerf
