// Symmetric INT8 quantisation with a single scale factor, as used for the
// off-chip "true voxel grid" (paper section IV-A: "the true voxel grid data
// is saved in INT8 format on off-chip memory"; the TIU de-quantises by
// multiplying lookup results with the scale factor).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace spnerf {

/// Symmetric per-tensor INT8 quantiser: q = clamp(round(x / scale), -127, 127).
class Int8Quantizer {
 public:
  Int8Quantizer() = default;
  explicit Int8Quantizer(float scale);

  /// Picks a scale covering the absolute maximum of `values`.
  static Int8Quantizer FitAbsMax(std::span<const float> values);

  [[nodiscard]] float Scale() const { return scale_; }

  [[nodiscard]] i8 Quantize(float x) const;
  [[nodiscard]] float Dequantize(i8 q) const {
    return static_cast<float>(q) * scale_;
  }

  void QuantizeSpan(std::span<const float> in, std::span<i8> out) const;
  void DequantizeSpan(std::span<const i8> in, std::span<float> out) const;

  /// Worst-case absolute rounding error (= scale / 2) for in-range values.
  [[nodiscard]] float MaxRoundingError() const { return scale_ * 0.5f; }

 private:
  float scale_ = 1.0f;
};

}  // namespace spnerf
