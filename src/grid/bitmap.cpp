#include "grid/bitmap.hpp"

#include <bit>

#include "common/error.hpp"

namespace spnerf {

BitGrid::BitGrid(GridDims dims) : dims_(dims) {
  SPNERF_CHECK_MSG(dims.nx > 0 && dims.ny > 0 && dims.nz > 0,
                   "bitmap dims must be positive");
  words_.assign((dims.VoxelCount() + 63) / 64, 0ull);
}

BitGrid BitGrid::FromGrid(const DenseGrid& grid) {
  BitGrid bg(grid.Dims());
  const u64 total = grid.VoxelCount();
  for (VoxelIndex i = 0; i < total; ++i) {
    if (grid.IsNonZero(i)) bg.Set(i, true);
  }
  return bg;
}

BitGrid BitGrid::FromWords(GridDims dims, std::vector<u64> words) {
  BitGrid bg(dims);
  SPNERF_CHECK_MSG(words.size() == bg.words_.size(),
                   "word count does not match bitmap dimensions");
  bg.words_ = std::move(words);
  return bg;
}

void BitGrid::Set(VoxelIndex i, bool value) {
  SPNERF_CHECK_MSG(i < dims_.VoxelCount(), "bitmap index out of range");
  if (value) {
    words_[i >> 6] |= (1ull << (i & 63));
  } else {
    words_[i >> 6] &= ~(1ull << (i & 63));
  }
}

u64 BitGrid::CountSet() const {
  u64 n = 0;
  for (u64 w : words_) n += static_cast<u64>(std::popcount(w));
  return n;
}

}  // namespace spnerf
