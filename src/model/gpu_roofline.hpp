// Roofline-style execution model of the *original VQRF flow* on GPUs
// (restore the full voxel grid, then sample it per ray). Reproduces the
// paper's profiling conclusions (Fig 2(a)): edge platforms are memory-bound,
// spending a 4.8-5.1x larger share of frame time on memory than the A100,
// and the absolute frame rates the speedup/energy comparisons (Fig 8) are
// normalised against.
//
// The model charges three traffic classes, reflecting how the PyTorch VQRF
// pipeline executes:
//   * restore   — streaming write (+readback) of the restored dense grid;
//   * gather    — irregular per-sample voxel fetches (8 vertices/sample),
//                 discounted by L2 reuse, paid at gather efficiency;
//   * tensors   — materialised intermediates between kernels (features,
//                 embeddings, MLP activations), paid at streaming rate.
#pragma once

#include "common/types.hpp"
#include "model/platform.hpp"

namespace spnerf {

/// Per-frame workload of the VQRF GPU flow for one scene.
struct GpuFrameWorkload {
  u64 rays = 0;
  u64 samples = 0;           // fine field samples (after empty-space skip)
  u64 mlp_evals = 0;         // samples reaching the MLP
  u64 restored_grid_bytes = 0;  // working set: the restored dense grid
  u64 compressed_bytes = 0;     // VQRF model read during restore
};

struct GpuRooflineParams {
  /// Raw bytes gathered per sample: 8 vertices x (density 4B + 12 feature
  /// channels x 4B FP32).
  double gather_bytes_per_sample = 8.0 * 52.0;
  /// Baseline L2/texture-cache reuse from ray-coherent access (vertices
  /// shared between adjacent samples), independent of cache size.
  double base_l2_reuse = 0.30;
  /// Additional reuse when the cache can hold a meaningful slice of the
  /// working set (scaled by l2_bytes / restored_grid_bytes, capped).
  double capacity_reuse_gain = 0.65;
  /// Materialised intermediate traffic per sample (gathered feature tensor
  /// write+read, position/weight tensors).
  double tensor_bytes_per_sample = 600.0;
  /// Materialised intermediate traffic per MLP eval (activations between
  /// unfused layers, FP16).
  double tensor_bytes_per_eval = 2048.0;
  /// FLOPs per MLP eval: 2 * MACs (matches render::Mlp::MacsPerSample()).
  double flops_per_eval = 2.0 * (39.0 * 128 + 128.0 * 128 + 128.0 * 3);
  /// Interpolation + compositing FLOPs per sample.
  double flops_per_sample = 400.0;
  /// The restored grid is written once and re-read over the frame; this
  /// charges the restore step itself (write + one streaming readback).
  double restore_traffic_factor = 6.0;
};

struct GpuRooflineResult {
  double memory_time_s = 0.0;
  double compute_time_s = 0.0;
  double overhead_time_s = 0.0;
  double total_time_s = 0.0;
  double fps = 0.0;
  /// Fraction of total time spent on memory (Fig 2(a)'s quantity).
  double memory_share = 0.0;
  double energy_per_frame_j = 0.0;  // at the platform's module power
  double fps_per_watt = 0.0;
};

/// Evaluates the VQRF flow on one platform. Memory and compute overlap
/// poorly in the unfused kernel-per-op execution, so times add.
GpuRooflineResult EvaluateVqrfOnGpu(const PlatformSpec& platform,
                                    const GpuFrameWorkload& workload,
                                    const GpuRooflineParams& params = {});

}  // namespace spnerf
