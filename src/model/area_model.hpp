// 28 nm area model of the SpNeRF accelerator (Fig 9(a), Table II). The
// component inventory mirrors the architecture of Fig 4; SRAM sizing follows
// the paper exactly: 571 KB in the SGPU and 58 KB of MLP buffers, 0.61 MB
// total.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "model/tech28.hpp"

namespace spnerf {

struct SramMacroSpec {
  std::string name;
  u64 bytes = 0;
  /// Double-buffered macros hold two copies (paper IV-A: "all buffers in
  /// the system are double-buffered").
  bool double_buffered = false;

  [[nodiscard]] u64 TotalBytes() const {
    return double_buffered ? 2 * bytes : bytes;
  }
};

/// The accelerator's physical inventory (design point of the paper).
struct HardwareInventory {
  int systolic_rows = 64;
  int systolic_cols = 64;
  /// Parallel vertex-lookup lanes in the SGPU (GID/BLU/HMU/TIU each).
  int sgpu_lanes = 16;
  std::vector<SramMacroSpec> sgpu_srams;
  std::vector<SramMacroSpec> mlp_srams;
  /// Fixed blocks.
  double dram_phy_mm2 = 1.95;
  double controller_misc_mm2 = 1.40;

  [[nodiscard]] u64 SgpuSramBytes() const;
  [[nodiscard]] u64 MlpSramBytes() const;
  [[nodiscard]] u64 TotalSramBytes() const;
  [[nodiscard]] int SystolicMacs() const {
    return systolic_rows * systolic_cols;
  }
};

/// The paper's design point: 64x64 FP16 output-stationary array, 16 SGPU
/// lanes, 571 KB SGPU SRAM + 58 KB MLP buffers.
HardwareInventory DefaultInventory();

struct AreaBreakdown {
  double systolic_mm2 = 0.0;
  double sgpu_logic_mm2 = 0.0;
  double sram_mm2 = 0.0;       // all on-chip SRAM macros
  double dram_phy_mm2 = 0.0;
  double controller_misc_mm2 = 0.0;
  double total_mm2 = 0.0;

  [[nodiscard]] double SramShare() const { return sram_mm2 / total_mm2; }
};

AreaBreakdown EstimateArea(const HardwareInventory& inv,
                           const Tech28& tech = DefaultTech28());

}  // namespace spnerf
