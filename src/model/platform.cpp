#include "model/platform.hpp"

namespace spnerf {

PlatformSpec NvidiaA100() {
  PlatformSpec p;
  p.name = "A100";
  p.tech_nm = 7;
  p.power_w = 400.0;
  p.dram_kind = "5120-bit 40 GB HBM2";
  p.dram_bw_gbps = 1555.0;
  p.l2_bytes = 40ull * 1024 * 1024;
  p.fp32_tflops = 19.5;
  p.fp16_tflops = 78.0;
  p.compute_utilization = 0.17;  // small per-kernel batches underfill A100
  p.streaming_efficiency = 0.85;
  p.gather_efficiency = 0.45;  // large L2 + many MCs soak up irregularity
  p.frame_overhead_s = 0.004;
  p.tensor_cache_discount = 0.85;  // 40 MB L2 holds the hot intermediates
  return p;
}

PlatformSpec JetsonOnx() {
  PlatformSpec p;
  p.name = "ONX";
  p.tech_nm = 8;
  p.power_w = 25.0;
  p.dram_kind = "128-bit 16 GB LPDDR5";
  p.dram_bw_gbps = 102.4;
  p.l2_bytes = 4ull * 1024 * 1024;
  p.fp16_tflops = 3.8;
  p.fp32_tflops = 1.9;
  p.compute_utilization = 0.28;
  p.streaming_efficiency = 0.45;
  p.gather_efficiency = 0.07;
  p.frame_overhead_s = 0.060;
  p.tensor_cache_discount = 0.05;
  return p;
}

PlatformSpec JetsonXnx() {
  PlatformSpec p;
  p.name = "XNX";
  p.tech_nm = 16;
  p.power_w = 20.0;
  p.dram_kind = "128-bit 16 GB LPDDR4";
  p.dram_bw_gbps = 59.7;
  p.l2_bytes = 512ull * 1024;
  p.fp16_tflops = 1.69;
  p.fp32_tflops = 0.885;
  p.compute_utilization = 0.25;
  p.streaming_efficiency = 0.45;
  p.gather_efficiency = 0.095;
  p.frame_overhead_s = 0.060;
  p.tensor_cache_discount = 0.0;
  return p;
}

std::vector<PlatformSpec> TableIPlatforms() {
  return {NvidiaA100(), JetsonOnx(), JetsonXnx()};
}

}  // namespace spnerf
