#include "model/power_model.hpp"

#include "common/error.hpp"

namespace spnerf {

EnergyLedger& EnergyLedger::operator+=(const EnergyLedger& o) {
  systolic_j += o.systolic_j;
  sram_j += o.sram_j;
  sgpu_logic_j += o.sgpu_logic_j;
  dram_dynamic_j += o.dram_dynamic_j;
  dram_background_j += o.dram_background_j;
  other_j += o.other_j;
  return *this;
}

PowerBreakdown EstimatePower(const EnergyLedger& per_frame, double fps,
                             const AreaBreakdown& area, const Tech28& tech) {
  SPNERF_CHECK_MSG(fps > 0.0, "fps must be positive");
  PowerBreakdown p;
  p.systolic_w = per_frame.systolic_j * fps;
  p.sram_w = per_frame.sram_j * fps;
  p.sgpu_logic_w = per_frame.sgpu_logic_j * fps;
  p.dram_w = (per_frame.dram_dynamic_j + per_frame.dram_background_j) * fps;
  p.other_w = per_frame.other_j * fps;
  p.leakage_w = area.total_mm2 * tech.leakage_mw_per_mm2 * 1e-3;
  p.total_w = p.systolic_w + p.sram_w + p.sgpu_logic_w + p.dram_w +
              p.other_w + p.leakage_w;
  return p;
}

DvfsPoint ScaleWithDvfs(const PowerBreakdown& nominal, double nominal_fps,
                        double freq_ratio) {
  SPNERF_CHECK_MSG(freq_ratio > 0.0, "frequency ratio must be positive");
  const double v = 0.7 + 0.3 * freq_ratio;  // V/V0
  const double dyn = freq_ratio * v * v;

  DvfsPoint p;
  p.freq_ratio = freq_ratio;
  p.fps = nominal_fps * freq_ratio;
  p.power.systolic_w = nominal.systolic_w * dyn;
  p.power.sram_w = nominal.sram_w * dyn;
  p.power.sgpu_logic_w = nominal.sgpu_logic_w * dyn;
  p.power.other_w = nominal.other_w * dyn;
  // DRAM runs on its own clock: device power is frequency-independent, but
  // per-frame DRAM energy at higher fps means proportionally more power.
  p.power.dram_w = nominal.dram_w * freq_ratio;
  p.power.leakage_w = nominal.leakage_w * v;
  p.power.total_w = p.power.systolic_w + p.power.sram_w +
                    p.power.sgpu_logic_w + p.power.other_w + p.power.dram_w +
                    p.power.leakage_w;
  return p;
}

}  // namespace spnerf
