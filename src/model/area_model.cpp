#include "model/area_model.hpp"

namespace spnerf {

u64 HardwareInventory::SgpuSramBytes() const {
  u64 total = 0;
  for (const auto& m : sgpu_srams) total += m.TotalBytes();
  return total;
}

u64 HardwareInventory::MlpSramBytes() const {
  u64 total = 0;
  for (const auto& m : mlp_srams) total += m.TotalBytes();
  return total;
}

u64 HardwareInventory::TotalSramBytes() const {
  return SgpuSramBytes() + MlpSramBytes();
}

HardwareInventory DefaultInventory() {
  HardwareInventory inv;
  inv.systolic_rows = 64;
  inv.systolic_cols = 64;
  inv.sgpu_lanes = 16;
  // SGPU SRAM: 571 KB total (paper V-C). One subgrid hash table is
  // 32k x 26 bits = 104 KB.
  inv.sgpu_srams = {
      {"index+density buffer", 104 * 1024, true},  // per-subgrid hash table
      {"bitmap buffer", 48 * 1024, true},          // per-subgrid bitmap slice
      {"color codebook", 48 * 1024, false},        // 4096 x 12 INT8
      {"true voxel grid cache", 192 * 1024, false},
      {"position buffer", 8 * 1024, true},
      {"interp output FIFO", 11 * 1024, false},
  };
  // MLP buffers: 58 KB total (paper V-C): INT8 weights + block-circulant
  // input buffer (double-buffered) + output buffer.
  inv.mlp_srams = {
      {"weight buffer", 44 * 1024, false},
      {"input buffer (block-circulant)", 5 * 1024, true},
      {"output buffer", 4 * 1024, false},
  };
  return inv;
}

AreaBreakdown EstimateArea(const HardwareInventory& inv, const Tech28& tech) {
  AreaBreakdown a;

  const double ctrl = 1.0 + tech.control_overhead_frac;
  a.systolic_mm2 =
      inv.SystolicMacs() * tech.fp16_mac_area_um2 * 1e-6 * ctrl;

  // Per lane: GID (6 FP16 mul/sub pairs for Eq. 2 weights + round/ceil),
  // HMU (one hash unit), TIU (13 FP16 FMAs: 12 feature channels + density),
  // BLU (negligible logic, bit probe).
  const double lane_um2 = 6.0 * tech.fp16_alu_area_um2 +
                          tech.hash_unit_area_um2 +
                          13.0 * tech.fp16_mac_area_um2;
  a.sgpu_logic_mm2 = inv.sgpu_lanes * lane_um2 * 1e-6 * ctrl;

  for (const auto& m : inv.sgpu_srams) a.sram_mm2 += tech.SramAreaMm2(m.TotalBytes());
  for (const auto& m : inv.mlp_srams) a.sram_mm2 += tech.SramAreaMm2(m.TotalBytes());

  a.dram_phy_mm2 = inv.dram_phy_mm2;
  a.controller_misc_mm2 = inv.controller_misc_mm2;

  a.total_mm2 = a.systolic_mm2 + a.sgpu_logic_mm2 + a.sram_mm2 +
                a.dram_phy_mm2 + a.controller_misc_mm2;
  return a;
}

}  // namespace spnerf
