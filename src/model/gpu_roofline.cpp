#include "model/gpu_roofline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spnerf {

GpuRooflineResult EvaluateVqrfOnGpu(const PlatformSpec& platform,
                                    const GpuFrameWorkload& workload,
                                    const GpuRooflineParams& params) {
  SPNERF_CHECK_MSG(platform.dram_bw_gbps > 0, "platform needs DRAM bandwidth");
  SPNERF_CHECK_MSG(workload.samples > 0, "empty GPU workload");

  const double bw = platform.dram_bw_gbps * 1e9;  // B/s

  // --- restore step: stream the compressed model in, the dense grid out ---
  const double restore_bytes =
      static_cast<double>(workload.compressed_bytes) +
      params.restore_traffic_factor *
          static_cast<double>(workload.restored_grid_bytes);
  const double restore_time =
      restore_bytes / (bw * platform.streaming_efficiency);

  // --- per-sample gather: L2 reuse discounts raw vertex traffic ---
  const double capacity_ratio = std::min(
      1.0, static_cast<double>(platform.l2_bytes) /
               std::max<double>(1.0, static_cast<double>(
                                         workload.restored_grid_bytes)));
  const double reuse = std::min(
      0.98, params.base_l2_reuse + params.capacity_reuse_gain * capacity_ratio);
  const double gather_bytes = static_cast<double>(workload.samples) *
                              params.gather_bytes_per_sample * (1.0 - reuse);
  const double gather_time = gather_bytes / (bw * platform.gather_efficiency);

  // --- materialised intermediates between kernels ---
  const double tensor_bytes =
      static_cast<double>(workload.samples) * params.tensor_bytes_per_sample +
      static_cast<double>(workload.mlp_evals) * params.tensor_bytes_per_eval;
  const double tensor_time =
      tensor_bytes * (1.0 - platform.tensor_cache_discount) /
      (bw * platform.streaming_efficiency);

  // --- compute ---
  const double flops =
      static_cast<double>(workload.mlp_evals) * params.flops_per_eval +
      static_cast<double>(workload.samples) * params.flops_per_sample;
  // The PyTorch VQRF flow computes in FP32 (no autocast in the reference
  // implementation).
  const double peak_flops = platform.fp32_tflops * 1e12;
  const double compute_time =
      flops / (peak_flops * platform.compute_utilization);

  GpuRooflineResult r;
  r.memory_time_s = restore_time + gather_time + tensor_time;
  r.compute_time_s = compute_time;
  r.overhead_time_s = platform.frame_overhead_s;
  r.total_time_s = r.memory_time_s + r.compute_time_s + r.overhead_time_s;
  r.fps = 1.0 / r.total_time_s;
  r.memory_share = r.memory_time_s / r.total_time_s;
  r.energy_per_frame_j = platform.power_w * r.total_time_s;
  r.fps_per_watt = r.fps / platform.power_w;
  return r;
}

}  // namespace spnerf
