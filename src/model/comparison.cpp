#include "model/comparison.hpp"

namespace spnerf {

TableIIRow RowFromBaseline(const AcceleratorOperatingPoint& p) {
  TableIIRow r;
  r.name = p.name;
  r.sram_mb = p.sram_mb;
  r.area_mm2 = p.area_mm2;
  r.tech_nm = p.tech_nm;
  r.power_w = p.power_w;
  r.dram = p.dram;
  r.dram_bw_gbps = p.dram_bw_gbps;
  r.fps = p.fps;
  r.energy_eff_fps_per_w = p.energy_eff_fps_per_w;
  r.area_eff_fps_per_mm2 = p.area_eff_fps_per_mm2;
  return r;
}

TableIIRow SpnerfRow(const HardwareInventory& inv, const AreaBreakdown& area,
                     const PowerBreakdown& power, double fps,
                     const std::string& dram_name, double dram_bw_gbps) {
  TableIIRow r;
  r.name = "SpNeRF (Ours)";
  r.sram_mb =
      static_cast<double>(inv.TotalSramBytes()) / (1024.0 * 1024.0);
  r.area_mm2 = area.total_mm2;
  r.tech_nm = 28;
  r.power_w = power.total_w;
  r.dram = dram_name;
  r.dram_bw_gbps = dram_bw_gbps;
  r.fps = fps;
  r.energy_eff_fps_per_w = fps / power.total_w;
  r.area_eff_fps_per_mm2 = fps / area.total_mm2;
  return r;
}

std::vector<TableIIRow> AssembleTableII(const TableIIRow& spnerf) {
  std::vector<TableIIRow> rows;
  for (const auto& b : TableIIBaselines()) rows.push_back(RowFromBaseline(b));
  rows.push_back(spnerf);
  return rows;
}

}  // namespace spnerf
