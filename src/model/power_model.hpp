// Power accounting (Fig 9(b), Table II). The cycle simulator fills an
// EnergyLedger per frame; this model converts it to average power at the
// achieved frame rate and adds area-dependent leakage.
#pragma once

#include "model/area_model.hpp"
#include "model/tech28.hpp"

namespace spnerf {

/// Dynamic energy per frame, in joules, by component.
struct EnergyLedger {
  double systolic_j = 0.0;    // MAC array switching
  double sram_j = 0.0;        // all on-chip buffer accesses
  double sgpu_logic_j = 0.0;  // GID + HMU + BLU + TIU datapaths
  double dram_dynamic_j = 0.0;
  double dram_background_j = 0.0;
  double other_j = 0.0;  // controller, NoC, activation unit

  [[nodiscard]] double TotalJ() const {
    return systolic_j + sram_j + sgpu_logic_j + dram_dynamic_j +
           dram_background_j + other_j;
  }
  EnergyLedger& operator+=(const EnergyLedger& o);
};

struct PowerBreakdown {
  double systolic_w = 0.0;
  double sram_w = 0.0;
  double sgpu_logic_w = 0.0;
  double dram_w = 0.0;  // device dynamic + background + controller share
  double leakage_w = 0.0;
  double other_w = 0.0;
  double total_w = 0.0;

  [[nodiscard]] double SystolicShare() const { return systolic_w / total_w; }
  [[nodiscard]] double SramShare() const { return sram_w / total_w; }
};

/// Converts a per-frame ledger at `fps` into average power; leakage comes
/// from the area model.
PowerBreakdown EstimatePower(const EnergyLedger& per_frame, double fps,
                             const AreaBreakdown& area,
                             const Tech28& tech = DefaultTech28());

/// DVFS projection from the 1 GHz design point: at frequency ratio r the
/// supply scales as V/V0 = 0.7 + 0.3 r (linear approximation around the
/// nominal corner), dynamic power as r * (V/V0)^2, and leakage as (V/V0).
/// Throughput of the compute-bound pipeline scales as r.
struct DvfsPoint {
  double freq_ratio = 1.0;
  double fps = 0.0;
  PowerBreakdown power;
  [[nodiscard]] double FpsPerWatt() const { return fps / power.total_w; }
};
DvfsPoint ScaleWithDvfs(const PowerBreakdown& nominal, double nominal_fps,
                        double freq_ratio);

}  // namespace spnerf
