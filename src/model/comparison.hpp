// Table II assembly: related-work operating points plus the SpNeRF row
// computed from the cycle simulator and the area/power models.
#pragma once

#include <string>
#include <vector>

#include "model/area_model.hpp"
#include "model/baseline_accel.hpp"
#include "model/power_model.hpp"

namespace spnerf {

struct TableIIRow {
  std::string name;
  double sram_mb = 0.0;
  double area_mm2 = 0.0;
  int tech_nm = 28;
  double power_w = 0.0;
  std::string dram;
  double dram_bw_gbps = 0.0;
  double fps = 0.0;
  double energy_eff_fps_per_w = 0.0;
  double area_eff_fps_per_mm2 = 0.0;
};

TableIIRow RowFromBaseline(const AcceleratorOperatingPoint& p);

/// SpNeRF row from measured quantities.
TableIIRow SpnerfRow(const HardwareInventory& inv, const AreaBreakdown& area,
                     const PowerBreakdown& power, double fps,
                     const std::string& dram_name, double dram_bw_gbps);

/// Full table: RT-NeRF.Edge, NeuRex.Edge, SpNeRF.
std::vector<TableIIRow> AssembleTableII(const TableIIRow& spnerf);

}  // namespace spnerf
