#include "model/baseline_accel.hpp"

namespace spnerf {

AcceleratorOperatingPoint RtNerfEdge() {
  AcceleratorOperatingPoint p;
  p.name = "RT-NeRF.Edge";
  p.sram_mb = 3.5;
  p.area_mm2 = 18.85;
  p.tech_nm = 28;
  p.power_w = 8.0;
  p.dram = "LPDDR4-1600";
  p.dram_bw_gbps = 17.0;
  p.fps = 45.0;
  p.energy_eff_fps_per_w = 5.63;
  p.area_eff_fps_per_mm2 = 2.38;
  return p;
}

AcceleratorOperatingPoint NeurexEdge() {
  AcceleratorOperatingPoint p;
  p.name = "NeuRex.Edge";
  p.sram_mb = 0.86;
  p.area_mm2 = 1.31;
  p.tech_nm = 28;
  p.power_w = 1.31;
  p.dram = "LPDDR4-3200";
  p.dram_bw_gbps = 59.7;
  p.fps = 6.57;
  p.energy_eff_fps_per_w = 5.15;
  p.area_eff_fps_per_mm2 = 2.09;
  p.fps_inferred = true;
  return p;
}

std::vector<AcceleratorOperatingPoint> TableIIBaselines() {
  return {RtNerfEdge(), NeurexEdge()};
}

}  // namespace spnerf
