#include "model/tech28.hpp"

#include <algorithm>
#include <cmath>

namespace spnerf {

double Tech28::SramReadPjPerByte(u64 macro_bytes) const {
  // 32 KB macro: ~0.35 pJ/B, growing ~0.10 pJ/B per doubling.
  const double kb = std::max(1.0, static_cast<double>(macro_bytes) / 1024.0);
  const double doublings = std::max(0.0, std::log2(kb / 32.0));
  return 0.35 + 0.10 * doublings;
}

double Tech28::SramWritePjPerByte(u64 macro_bytes) const {
  return 1.15 * SramReadPjPerByte(macro_bytes);
}

double Tech28::SramAreaMm2(u64 macro_bytes) const {
  // ~0.45 mm^2 per MB of high-density 6T SRAM plus fixed periphery.
  const double mb = static_cast<double>(macro_bytes) / (1024.0 * 1024.0);
  return mb * 0.45 + 0.003;
}

const Tech28& DefaultTech28() {
  static const Tech28 tech{};
  return tech;
}

}  // namespace spnerf
