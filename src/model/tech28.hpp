// TSMC 28 nm-class technology constants: per-operation energy, SRAM macro
// energy/area, logic area. Values follow the per-op figures customarily used
// in accelerator evaluations (Horowitz ISSCC'14 scaling and memory-compiler
// style macro models), anchored so the complete SpNeRF design lands on the
// paper's published totals (7.7 mm^2, ~3 W at 1 GHz, 0.61 MB SRAM).
#pragma once

#include "common/types.hpp"

namespace spnerf {

struct Tech28 {
  // ---- dynamic energy per operation (pJ) ----
  double fp16_mac_pj = 0.72;   // fused multiply-add incl. pipeline overhead
  double fp16_add_pj = 0.20;
  double fp16_mul_pj = 0.35;
  double int8_op_pj = 0.08;    // INT8 scale/convert ops in the TIU
  double hash_unit_pj = 0.90;  // Eq.(1): two 32-bit mults + xors + mod
  double bit_probe_pj = 0.05;  // bitmap bit extraction (mux tree)

  // ---- leakage ----
  double leakage_mw_per_mm2 = 30.0;

  // ---- logic area (um^2) ----
  double fp16_mac_area_um2 = 780.0;
  double fp16_alu_area_um2 = 420.0;   // mul/sub pair in the GID
  double hash_unit_area_um2 = 5200.0; // multipliers dominate
  double control_overhead_frac = 0.12;  // per-block control/wiring overhead

  /// SRAM read energy (pJ per byte) as a function of macro size; larger
  /// macros burn more per access (longer bit/word lines).
  [[nodiscard]] double SramReadPjPerByte(u64 macro_bytes) const;
  [[nodiscard]] double SramWritePjPerByte(u64 macro_bytes) const;

  /// SRAM macro area in mm^2 (6T high-density + periphery).
  [[nodiscard]] double SramAreaMm2(u64 macro_bytes) const;
};

/// The default calibrated technology model used across the repo.
const Tech28& DefaultTech28();

}  // namespace spnerf
