// Published operating points of the edge-accelerator baselines the paper
// compares against in Table II. The paper compares against these works'
// reported numbers (it does not re-implement them), so we store the table
// verbatim: RT-NeRF.Edge (ICCAD'22) and NeuRex.Edge (ISCA'23; its FPS is
// inferred from Jetson XNX rendering speed, as the paper's footnote states).
#pragma once

#include <string>
#include <vector>

namespace spnerf {

struct AcceleratorOperatingPoint {
  std::string name;
  double sram_mb = 0.0;
  double area_mm2 = 0.0;
  int tech_nm = 28;
  double power_w = 0.0;
  std::string dram;
  double dram_bw_gbps = 0.0;
  double fps = 0.0;
  double energy_eff_fps_per_w = 0.0;   // as published in Table II
  double area_eff_fps_per_mm2 = 0.0;   // as published in Table II
  bool fps_inferred = false;           // NeuRex.Edge footnote
};

AcceleratorOperatingPoint RtNerfEdge();
AcceleratorOperatingPoint NeurexEdge();

/// Both baselines in Table II order.
std::vector<AcceleratorOperatingPoint> TableIIBaselines();

}  // namespace spnerf
