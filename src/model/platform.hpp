// Computing-platform database (Table I of the paper) plus derived helpers.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace spnerf {

struct PlatformSpec {
  std::string name;
  int tech_nm = 0;
  double power_w = 0.0;        // module power (Table I "Power")
  std::string dram_kind;       // e.g. "128-bit 16 GB LPDDR4"
  double dram_bw_gbps = 0.0;   // GB/s
  u64 l2_bytes = 0;
  double fp32_tflops = 0.0;
  double fp16_tflops = 0.0;

  // --- execution-model calibration (not in Table I) ---
  /// Fraction of peak FLOPS achieved on the batched MLP GEMMs.
  double compute_utilization = 0.35;
  /// Fraction of peak bandwidth achieved on sequential streams.
  double streaming_efficiency = 0.80;
  /// Fraction of peak bandwidth achieved on irregular per-sample gathers
  /// (the paper's "irregular memory access" penalty).
  double gather_efficiency = 0.20;
  /// Fixed per-frame host/framework overhead (kernel launches, sync).
  double frame_overhead_s = 0.0;
  /// Fraction of materialised-intermediate traffic absorbed by the LLC
  /// (large L2/L3 keeps producer-consumer tensors on chip).
  double tensor_cache_discount = 0.0;
};

/// NVIDIA A100 (Table I column 1).
PlatformSpec NvidiaA100();
/// Jetson Orin NX 16 GB (Table I column 2).
PlatformSpec JetsonOnx();
/// Jetson Xavier NX 16 GB (Table I column 3).
PlatformSpec JetsonXnx();

/// All Table I platforms in paper order.
std::vector<PlatformSpec> TableIPlatforms();

}  // namespace spnerf
