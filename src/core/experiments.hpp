// Experiment runners: one function per table/figure of the paper. Each
// returns plain row structs; the bench binaries format them.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "model/comparison.hpp"
#include "model/gpu_roofline.hpp"
#include "model/platform.hpp"
#include "sim/accelerator.hpp"

namespace spnerf {

struct ExperimentConfig {
  std::vector<SceneId> scenes = AllScenes();
  /// 0 = paper-scale per-scene resolution; tests use small values.
  int resolution_override = 0;
  /// Raster size for PSNR measurements.
  int psnr_image_size = 100;
  /// Tile size for hardware workload measurement.
  int tile_size = 96;
  int frame_width = 800;
  int frame_height = 800;
  /// Render worker cap for every experiment render; 0 = all pool workers.
  unsigned threads = 0;
  VqrfBuildParams vqrf;
  SpNeRFParams spnerf;
  RenderOptions render;
  AcceleratorConfig accel;
  u64 mlp_seed = 2025;

  [[nodiscard]] PipelineConfig MakePipelineConfig(SceneId id) const;
};

// ----------------------------------------------------------- Fig 2(b) ----
struct SparsityRow {
  std::string scene;
  u64 total_voxels = 0;
  u64 nonzero_voxels = 0;
  double nonzero_fraction = 0.0;
};
std::vector<SparsityRow> RunSparsity(const ExperimentConfig& cfg);

// ----------------------------------------------------------- Fig 6(a) ----
struct MemoryRow {
  std::string scene;
  u64 vqrf_restored_bytes = 0;
  u64 spnerf_bytes = 0;
  u64 hash_table_bytes = 0;
  u64 bitmap_bytes = 0;
  u64 codebook_bytes = 0;
  u64 true_grid_bytes = 0;
  double reduction = 0.0;  // vqrf / spnerf
};
std::vector<MemoryRow> RunMemory(const ExperimentConfig& cfg);

// ----------------------------------------------------------- Fig 6(b) ----
struct PsnrRow {
  std::string scene;
  double vqrf_psnr = 0.0;
  double spnerf_premask_psnr = 0.0;
  double spnerf_postmask_psnr = 0.0;
  double vqrf_ssim = 0.0;
  double spnerf_postmask_ssim = 0.0;
  double build_collision_rate = 0.0;  // hash build: losing insertions
  double nonzero_alias_rate = 0.0;    // residual post-mask error source
};
std::vector<PsnrRow> RunPsnr(const ExperimentConfig& cfg);

// ------------------------------------------------------------- Fig 7 ----
struct SweepPoint {
  int subgrid_count = 0;
  u32 table_size = 0;
  double mean_psnr = 0.0;     // over cfg.scenes, post-mask
  double alias_rate = 0.0;    // mean non-zero alias rate
  u64 spnerf_bytes = 0;       // mean encoded size
};
/// Fig 7(a): PSNR vs subgrid count at fixed table size.
std::vector<SweepPoint> RunSubgridSweep(const ExperimentConfig& cfg,
                                        const std::vector<int>& subgrid_counts,
                                        u32 table_size);
/// Fig 7(b): PSNR vs table size at fixed subgrid count.
std::vector<SweepPoint> RunTableSweep(const ExperimentConfig& cfg,
                                      int subgrid_count,
                                      const std::vector<u32>& table_sizes);

// ----------------------------------------------------------- Fig 2(a) ----
struct RuntimeBreakdownRow {
  std::string platform;
  double memory_share = 0.0;
  double compute_share = 0.0;
  double overhead_share = 0.0;
  double fps = 0.0;
};
/// VQRF flow on A100/ONX/XNX, averaged over cfg.scenes.
std::vector<RuntimeBreakdownRow> RunRuntimeBreakdown(const ExperimentConfig& cfg);

// ------------------------------------------------- Fig 8 + Table II -----
struct HardwareRow {
  std::string scene;
  SimResult sim;                 // SpNeRF accelerator
  GpuRooflineResult xnx;         // VQRF on Jetson XNX
  GpuRooflineResult onx;         // VQRF on Jetson ONX
  double speedup_vs_xnx = 0.0;
  double speedup_vs_onx = 0.0;
  double energy_eff_gain_vs_xnx = 0.0;
  double energy_eff_gain_vs_onx = 0.0;
};
std::vector<HardwareRow> RunHardwareComparison(const ExperimentConfig& cfg);

struct DesignReport {
  AreaBreakdown area;
  PowerBreakdown power;   // at the mean achieved FPS
  EnergyLedger mean_ledger;
  double mean_fps = 0.0;
  TableIIRow spnerf_row;
  std::vector<TableIIRow> table2;
};
/// Fig 9 + Table II, from already-computed hardware rows.
DesignReport MakeDesignReport(const ExperimentConfig& cfg,
                              const std::vector<HardwareRow>& rows);

/// Geometric-mean helper used for paper-style "x..y, avg z" summaries.
double MeanOf(const std::vector<double>& values);

}  // namespace spnerf
