#include "core/pipeline_repository.hpp"

namespace spnerf {

PipelineRepository& PipelineRepository::Global() {
  static PipelineRepository repo;
  return repo;
}

PipelineRepository::PipelineRepository(AssetCache* cache, std::size_t capacity)
    : cache_(cache ? *cache : AssetCache::Global()), live_(capacity) {}

std::string PipelineRepository::PipelineKey(const PipelineConfig& c) {
  AssetKeyBuilder b;
  // Build identity (the asset key fields)...
  b.Field("dataset", DatasetAssetKey(c.scene_id, c.dataset).hash)
      .Field("subgrids", static_cast<i64>(c.spnerf.subgrid_count))
      .Field("table", static_cast<u64>(c.spnerf.table_size))
      .Field("masking", c.spnerf.bitmap_masking)
      .Field("policy", static_cast<i64>(c.spnerf.collision_policy))
      .Field("coarse", static_cast<i64>(c.coarse_factor))
      // ...plus everything else that changes what this pipeline renders.
      .Field("mlp_seed", c.mlp_seed)
      .Field("step", c.render.step_size)
      .Field("alpha", c.render.alpha_threshold)
      .Field("term", c.render.termination_transmittance)
      .Field("bg_r", c.render.background.x)
      .Field("bg_g", c.render.background.y)
      .Field("bg_b", c.render.background.z)
      .Field("fp16", c.render.fp16_mlp)
      .Field("tile", static_cast<i64>(c.engine.tile_size))
      .Field("threads", static_cast<u64>(c.engine.max_threads))
      .Field("radius", c.camera_radius)
      .Field("elev", c.camera_elevation_deg)
      .Field("fov", c.camera_fov_deg);
  return b.Finish();
}

std::shared_ptr<const ScenePipeline> PipelineRepository::Acquire(
    const PipelineConfig& config) {
  const std::string key = PipelineKey(config);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto* hit = live_.Find(key)) return *hit;
  }

  // Miss on the live-pipeline level: acquire assets (their own two cache
  // levels) and assemble outside the lock.
  PipelineAssets assets = cache_.Acquire(config.scene_id, config.dataset,
                                         config.spnerf, config.coarse_factor);
  auto pipeline = std::make_shared<const ScenePipeline>(
      ScenePipeline::FromAssets(config, std::move(assets)));

  std::lock_guard<std::mutex> lock(mutex_);
  if (auto* hit = live_.Find(key)) return *hit;  // racing acquire won
  live_.Insert(key, pipeline);
  return pipeline;
}

std::vector<AssetTimingEntry> PipelineRepository::DrainTimings() {
  return cache_.DrainTimings();
}

AssetCache::Stats PipelineRepository::CacheStats() const {
  return cache_.GetStats();
}

void PipelineRepository::EvictAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  live_.Clear();
}

}  // namespace spnerf
