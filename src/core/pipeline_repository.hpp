// Shared repository of ready-to-render ScenePipelines, the façade every
// bench, example, experiment runner and tool acquires pipelines through.
// Acquire() is three caches deep:
//   1. an in-memory LRU of live pipelines keyed by the full PipelineConfig
//      (same config twice -> the same shared pipeline instance);
//   2. the AssetCache's in-memory LRU of live assets (same build params,
//      different render options -> a new pipeline over the same dataset);
//   3. the AssetCache's on-disk artifact store (cold process, warm disk ->
//      deserialize instead of rebuild).
// Only a fully cold miss voxelises, VQRF-compresses and SpNeRF-preprocesses
// — once per (scene, build params, format version) per machine.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "assets/asset_cache.hpp"
#include "common/lru.hpp"
#include "core/pipeline.hpp"

namespace spnerf {

class PipelineRepository {
 public:
  /// Process-wide repository over AssetCache::Global().
  static PipelineRepository& Global();

  /// `cache = nullptr` uses AssetCache::Global(). `capacity` bounds the
  /// live-pipeline LRU (each entry pins its assets in memory).
  explicit PipelineRepository(AssetCache* cache = nullptr,
                              std::size_t capacity = 8);

  PipelineRepository(const PipelineRepository&) = delete;
  PipelineRepository& operator=(const PipelineRepository&) = delete;

  /// Returns the shared pipeline for `config`, building/loading at the
  /// shallowest cache level that can serve it. Thread-safe.
  std::shared_ptr<const ScenePipeline> Acquire(const PipelineConfig& config);

  /// Cache identity of a config's live pipeline: every field that changes
  /// rendering behaviour (build params, render/engine options, camera,
  /// MLP seed). Exposed for tests.
  [[nodiscard]] static std::string PipelineKey(const PipelineConfig& config);

  /// Build/load timings accumulated since the last drain (the repository
  /// forwards its AssetCache's entries; benches feed them into the
  /// BENCH_*.json reports).
  std::vector<AssetTimingEntry> DrainTimings();

  [[nodiscard]] AssetCache::Stats CacheStats() const;

  /// Drops every live pipeline (and its pinned assets) from memory.
  void EvictAll();

 private:
  AssetCache& cache_;

  std::mutex mutex_;
  LruList<std::shared_ptr<const ScenePipeline>> live_;  // guarded by mutex_
};

}  // namespace spnerf
