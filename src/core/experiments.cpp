#include "core/experiments.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/ssim.hpp"
#include "common/logging.hpp"
#include "core/pipeline_repository.hpp"

namespace spnerf {

PipelineConfig ExperimentConfig::MakePipelineConfig(SceneId id) const {
  PipelineConfig pc;
  pc.scene_id = id;
  pc.dataset.resolution_override = resolution_override;
  pc.dataset.vqrf = vqrf;
  pc.dataset.max_threads = threads;
  pc.spnerf = spnerf;
  pc.render = render;
  pc.engine.max_threads = threads;
  pc.mlp_seed = mlp_seed;
  return pc;
}

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

std::vector<SparsityRow> RunSparsity(const ExperimentConfig& cfg) {
  std::vector<SparsityRow> rows;
  for (SceneId id : cfg.scenes) {
    DatasetParams dp;
    dp.resolution_override = cfg.resolution_override;
    dp.vqrf = cfg.vqrf;
    dp.max_threads = cfg.threads;
    const std::shared_ptr<const SceneDataset> ds =
        AssetCache::Global().AcquireDataset(id, dp);
    SparsityRow r;
    r.scene = SceneName(id);
    r.total_voxels = ds->full_grid.VoxelCount();
    // The paper's sparsity metric is over the pruned voxel-grid data, i.e.
    // the surviving non-zero points of the compressed model.
    r.nonzero_voxels = ds->vqrf->NonZeroCount();
    r.nonzero_fraction = static_cast<double>(r.nonzero_voxels) /
                         static_cast<double>(r.total_voxels);
    rows.push_back(r);
  }
  return rows;
}

std::vector<MemoryRow> RunMemory(const ExperimentConfig& cfg) {
  std::vector<MemoryRow> rows;
  for (SceneId id : cfg.scenes) {
    const std::shared_ptr<const ScenePipeline> p =
        PipelineRepository::Global().Acquire(cfg.MakePipelineConfig(id));
    const SpNeRFModel& codec = p->Codec();
    MemoryRow r;
    r.scene = SceneName(id);
    r.vqrf_restored_bytes = p->Dataset().vqrf->RestoredBytes();
    r.hash_table_bytes = codec.HashTableBytes();
    r.bitmap_bytes = codec.BitmapBytes();
    r.codebook_bytes = codec.CodebookBytes();
    r.true_grid_bytes = codec.TrueGridBytes();
    r.spnerf_bytes = codec.TotalBytes();
    r.reduction = static_cast<double>(r.vqrf_restored_bytes) /
                  static_cast<double>(r.spnerf_bytes);
    rows.push_back(r);
  }
  return rows;
}

std::vector<PsnrRow> RunPsnr(const ExperimentConfig& cfg) {
  std::vector<PsnrRow> rows;
  for (SceneId id : cfg.scenes) {
    const std::shared_ptr<const ScenePipeline> p =
        PipelineRepository::Global().Acquire(cfg.MakePipelineConfig(id));
    const Camera cam = p->MakeCamera(cfg.psnr_image_size, cfg.psnr_image_size);

    // The four compared paths render as one batch: their tiles interleave
    // through a single scheduler instead of four serial full-frame passes.
    Image gt, vqrf, pre, post;
    (void)p->RenderComparison(cam, &gt, &vqrf, &pre, &post);
    p->ReleaseRestored();

    PsnrRow r;
    r.scene = SceneName(id);
    r.vqrf_psnr = Psnr(gt, vqrf);
    r.spnerf_premask_psnr = Psnr(gt, pre);
    r.spnerf_postmask_psnr = Psnr(gt, post);
    r.vqrf_ssim = Ssim(gt, vqrf);
    r.spnerf_postmask_ssim = Ssim(gt, post);
    r.build_collision_rate = p->Codec().AggregateBuildStats().CollisionRate();
    r.nonzero_alias_rate = p->Codec().NonZeroAliasRate();
    rows.push_back(r);
    SPNERF_LOG_INFO << "PSNR " << r.scene << ": vqrf " << r.vqrf_psnr
                    << " pre " << r.spnerf_premask_psnr << " post "
                    << r.spnerf_postmask_psnr;
  }
  return rows;
}

namespace {

SweepPoint SweepOne(const ExperimentConfig& cfg, int subgrids, u32 table) {
  std::vector<double> psnrs;
  std::vector<double> aliases;
  std::vector<double> bytes;
  for (SceneId id : cfg.scenes) {
    PipelineConfig pc = cfg.MakePipelineConfig(id);
    pc.spnerf.subgrid_count = subgrids;
    pc.spnerf.table_size = table;
    const std::shared_ptr<const ScenePipeline> p =
        PipelineRepository::Global().Acquire(pc);
    const Camera cam = p->MakeCamera(cfg.psnr_image_size, cfg.psnr_image_size);
    Image gt, post;
    (void)p->RenderComparison(cam, &gt, /*vqrf=*/nullptr,
                              /*spnerf_premask=*/nullptr, &post);
    psnrs.push_back(Psnr(gt, post));
    aliases.push_back(p->Codec().NonZeroAliasRate());
    bytes.push_back(static_cast<double>(p->Codec().TotalBytes()));
  }
  SweepPoint pt;
  pt.subgrid_count = subgrids;
  pt.table_size = table;
  pt.mean_psnr = MeanOf(psnrs);
  pt.alias_rate = MeanOf(aliases);
  pt.spnerf_bytes = static_cast<u64>(MeanOf(bytes));
  return pt;
}

}  // namespace

std::vector<SweepPoint> RunSubgridSweep(const ExperimentConfig& cfg,
                                        const std::vector<int>& subgrid_counts,
                                        u32 table_size) {
  std::vector<SweepPoint> points;
  for (int k : subgrid_counts) points.push_back(SweepOne(cfg, k, table_size));
  return points;
}

std::vector<SweepPoint> RunTableSweep(const ExperimentConfig& cfg,
                                      int subgrid_count,
                                      const std::vector<u32>& table_sizes) {
  std::vector<SweepPoint> points;
  for (u32 t : table_sizes) points.push_back(SweepOne(cfg, subgrid_count, t));
  return points;
}

std::vector<RuntimeBreakdownRow> RunRuntimeBreakdown(
    const ExperimentConfig& cfg) {
  // Average the per-scene rooflines on each platform.
  std::vector<PlatformSpec> platforms = TableIPlatforms();
  std::vector<RuntimeBreakdownRow> rows(platforms.size());
  std::vector<std::vector<double>> mem(platforms.size()),
      comp(platforms.size()), over(platforms.size()), fps(platforms.size());

  for (SceneId id : cfg.scenes) {
    const std::shared_ptr<const ScenePipeline> p =
        PipelineRepository::Global().Acquire(cfg.MakePipelineConfig(id));
    const GpuFrameWorkload w =
        p->MeasureGpuWorkload(cfg.tile_size, cfg.frame_width, cfg.frame_height);
    for (std::size_t i = 0; i < platforms.size(); ++i) {
      const GpuRooflineResult r = EvaluateVqrfOnGpu(platforms[i], w);
      mem[i].push_back(r.memory_time_s / r.total_time_s);
      comp[i].push_back(r.compute_time_s / r.total_time_s);
      over[i].push_back(r.overhead_time_s / r.total_time_s);
      fps[i].push_back(r.fps);
    }
  }
  for (std::size_t i = 0; i < platforms.size(); ++i) {
    rows[i].platform = platforms[i].name;
    rows[i].memory_share = MeanOf(mem[i]);
    rows[i].compute_share = MeanOf(comp[i]);
    rows[i].overhead_share = MeanOf(over[i]);
    rows[i].fps = MeanOf(fps[i]);
  }
  return rows;
}

std::vector<HardwareRow> RunHardwareComparison(const ExperimentConfig& cfg) {
  std::vector<HardwareRow> rows;
  const PlatformSpec xnx = JetsonXnx();
  const PlatformSpec onx = JetsonOnx();
  const AcceleratorSim sim(cfg.accel);

  for (SceneId id : cfg.scenes) {
    const std::shared_ptr<const ScenePipeline> p =
        PipelineRepository::Global().Acquire(cfg.MakePipelineConfig(id));
    const FrameWorkload w =
        p->MeasureWorkload(cfg.tile_size, cfg.frame_width, cfg.frame_height);
    const GpuFrameWorkload gw =
        p->MeasureGpuWorkload(cfg.tile_size, cfg.frame_width, cfg.frame_height);

    HardwareRow r;
    r.scene = SceneName(id);
    r.sim = sim.SimulateFrame(w);
    r.xnx = EvaluateVqrfOnGpu(xnx, gw);
    r.onx = EvaluateVqrfOnGpu(onx, gw);
    r.speedup_vs_xnx = r.sim.fps / r.xnx.fps;
    r.speedup_vs_onx = r.sim.fps / r.onx.fps;
    const double spnerf_eff = r.sim.fps / r.sim.power.total_w;
    r.energy_eff_gain_vs_xnx = spnerf_eff / r.xnx.fps_per_watt;
    r.energy_eff_gain_vs_onx = spnerf_eff / r.onx.fps_per_watt;
    rows.push_back(r);
    SPNERF_LOG_INFO << "hw " << r.scene << ": spnerf " << r.sim.fps
                    << " fps (" << r.sim.bottleneck << "), xnx " << r.xnx.fps
                    << ", onx " << r.onx.fps;
  }
  return rows;
}

DesignReport MakeDesignReport(const ExperimentConfig& cfg,
                              const std::vector<HardwareRow>& rows) {
  SPNERF_CHECK_MSG(!rows.empty(), "design report needs hardware rows");
  DesignReport rep;
  std::vector<double> fps;
  for (const HardwareRow& r : rows) {
    fps.push_back(r.sim.fps);
    rep.mean_ledger += r.sim.ledger;
  }
  const double n = static_cast<double>(rows.size());
  rep.mean_ledger.systolic_j /= n;
  rep.mean_ledger.sram_j /= n;
  rep.mean_ledger.sgpu_logic_j /= n;
  rep.mean_ledger.dram_dynamic_j /= n;
  rep.mean_ledger.dram_background_j /= n;
  rep.mean_ledger.other_j /= n;
  rep.mean_fps = MeanOf(fps);

  rep.area = EstimateArea(cfg.accel.inventory);
  rep.power = EstimatePower(rep.mean_ledger, rep.mean_fps, rep.area);
  rep.spnerf_row = SpnerfRow(cfg.accel.inventory, rep.area, rep.power,
                             rep.mean_fps, cfg.accel.dram.name,
                             cfg.accel.dram.peak_bandwidth_gbps);
  rep.table2 = AssembleTableII(rep.spnerf_row);
  return rep;
}

}  // namespace spnerf
