#include "core/pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "render/field_source.hpp"

namespace spnerf {

ScenePipeline ScenePipeline::Build(const PipelineConfig& config) {
  return FromAssets(config,
                    BuildPipelineAssets(config.scene_id, config.dataset,
                                        config.spnerf, config.coarse_factor));
}

ScenePipeline ScenePipeline::FromAssets(const PipelineConfig& config,
                                        PipelineAssets assets) {
  SPNERF_CHECK_MSG(
      assets.dataset && assets.codec && assets.coarse && assets.octree,
      "pipeline assets incomplete");
  SPNERF_CHECK_MSG(assets.codec->Dims() == assets.dataset->full_grid.Dims(),
                   "codec asset does not match the dataset grid");
  ScenePipeline p;
  p.config_ = config;
  p.assets_ = std::move(assets);
  p.mlp_ = Mlp::Random(config.mlp_seed);
  return p;
}

Camera ScenePipeline::MakeCamera(int width, int height, int view,
                                 int n_views) const {
  SPNERF_CHECK_MSG(view >= 0 && view < n_views, "view index out of range");
  const auto cams = OrbitCameras(n_views, Vec3f{0.5f, 0.45f, 0.5f},
                                 config_.camera_radius,
                                 config_.camera_elevation_deg,
                                 config_.camera_fov_deg, width, height);
  return cams[static_cast<std::size_t>(view)];
}

RenderOptions ScenePipeline::RenderOptionsWithSkip() const {
  RenderOptions opt = config_.render;
  opt.coarse_skip = assets_.coarse.get();
  opt.octree_skip = assets_.octree.get();
  return opt;
}

std::shared_ptr<const DenseGrid> ScenePipeline::RestoredShared() const {
  std::lock_guard<std::mutex> lock(*restored_mutex_);
  if (!restored_) {
    restored_ = std::make_shared<DenseGrid>(assets_.dataset->vqrf->Restore());
  }
  return restored_;
}

void ScenePipeline::ReleaseRestored() const {
  std::lock_guard<std::mutex> lock(*restored_mutex_);
  restored_.reset();
}

Image ScenePipeline::RenderGroundTruth(const Camera& camera) const {
  const AnalyticFieldSource source(assets_.dataset->scene);
  RenderJob job;
  job.source = &source;
  job.mlp = &mlp_;
  job.camera = camera;
  job.options = RenderOptionsWithSkip();
  return std::move(MakeEngine().Render(job).image);
}

Image ScenePipeline::RenderVqrf(const Camera& camera) const {
  // Pin the restored grid for the whole render: a concurrent
  // ReleaseRestored() then only drops the pipeline's reference.
  const std::shared_ptr<const DenseGrid> restored = RestoredShared();
  const GridFieldSource source(*restored);
  RenderJob job;
  job.source = &source;
  job.mlp = &mlp_;
  job.camera = camera;
  job.options = RenderOptionsWithSkip();
  return std::move(MakeEngine().Render(job).image);
}

Image ScenePipeline::RenderSpnerf(const Camera& camera, bool bitmap_masking,
                                  RenderStats* stats,
                                  DecodeCounters* counters) const {
  // One stateless source serves every worker; decode activity lands in the
  // engine's per-tile counter shards, never in the source.
  SpNeRFFieldSource source(*assets_.codec, config_.render.fp16_mlp,
                           /*collect_counters=*/false);
  source.SetMasking(bitmap_masking);
  RenderJob job;
  job.source = &source;
  job.mlp = &mlp_;
  job.camera = camera;
  job.options = RenderOptionsWithSkip();
  job.collect_stats = stats != nullptr || counters != nullptr;
  RenderResult result = MakeEngine().Render(job);
  if (stats) stats->Merge(result.stats);
  if (counters) *counters = result.counters;
  return std::move(result.image);
}

double ScenePipeline::RenderComparison(const Camera& camera, Image* gt,
                                       Image* vqrf, Image* spnerf_premask,
                                       Image* spnerf_postmask) const {
  const AnalyticFieldSource gt_src(assets_.dataset->scene);
  SpNeRFFieldSource pre_src(*assets_.codec, config_.render.fp16_mlp,
                            /*collect_counters=*/false);
  pre_src.SetMasking(false);
  SpNeRFFieldSource post_src(*assets_.codec, config_.render.fp16_mlp,
                             /*collect_counters=*/false);
  post_src.SetMasking(true);
  std::shared_ptr<const DenseGrid> restored;  // pinned for the batch
  std::unique_ptr<GridFieldSource> vqrf_src;
  if (vqrf != nullptr) {
    restored = RestoredShared();
    vqrf_src = std::make_unique<GridFieldSource>(*restored);
  }

  RenderJob base;
  base.mlp = &mlp_;
  base.camera = camera;
  base.options = RenderOptionsWithSkip();

  std::vector<RenderJob> jobs;
  std::vector<Image*> outputs;
  const auto add = [&](Image* out, const FieldSource* source) {
    if (out == nullptr) return;
    RenderJob job = base;
    job.source = source;
    jobs.push_back(job);
    outputs.push_back(out);
  };
  add(gt, &gt_src);
  add(vqrf, vqrf_src.get());
  add(spnerf_premask, &pre_src);
  add(spnerf_postmask, &post_src);

  std::vector<RenderResult> results = MakeEngine().RenderBatch(jobs);
  double batch_wall_ms = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    *outputs[i] = std::move(results[i].image);
    // wall_ms is per job (issue to that job's completion); the batch wall
    // time is the slowest job's.
    batch_wall_ms = std::max(batch_wall_ms, results[i].wall_ms);
  }
  return batch_wall_ms;
}

FrameWorkload ScenePipeline::MeasureWorkload(int tile_size, int frame_width,
                                             int frame_height) const {
  const Camera tile_cam = MakeCamera(tile_size, tile_size);
  RenderStats stats;
  DecodeCounters counters;
  (void)RenderSpnerf(tile_cam, /*bitmap_masking=*/true, &stats, &counters);
  return BuildFrameWorkload(*assets_.codec, stats, counters,
                            SceneName(config_.scene_id), frame_width,
                            frame_height);
}

GpuFrameWorkload ScenePipeline::MeasureGpuWorkload(int tile_size,
                                                   int frame_width,
                                                   int frame_height) const {
  const Camera tile_cam = MakeCamera(tile_size, tile_size);
  RenderStats stats;
  DecodeCounters counters;
  (void)RenderSpnerf(tile_cam, /*bitmap_masking=*/true, &stats, &counters);
  return BuildGpuWorkload(*assets_.dataset->vqrf, stats, frame_width,
                          frame_height);
}

}  // namespace spnerf
