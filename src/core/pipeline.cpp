#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "render/field_source.hpp"

namespace spnerf {

ScenePipeline ScenePipeline::Build(const PipelineConfig& config) {
  ScenePipeline p;
  p.config_ = config;
  p.dataset_ =
      std::make_shared<SceneDataset>(BuildDataset(config.scene_id, config.dataset));
  p.codec_ = SpNeRFModel::Preprocess(p.dataset_->vqrf, config.spnerf);
  p.mlp_ = Mlp::Random(config.mlp_seed);
  // Coarse skip from the full grid's occupancy: a superset of every lossy
  // representation, so all pipelines march identical rays.
  p.coarse_ = CoarseOccupancy::Build(BitGrid::FromGrid(p.dataset_->full_grid),
                                     config.coarse_factor);
  return p;
}

Camera ScenePipeline::MakeCamera(int width, int height, int view,
                                 int n_views) const {
  SPNERF_CHECK_MSG(view >= 0 && view < n_views, "view index out of range");
  const auto cams = OrbitCameras(n_views, Vec3f{0.5f, 0.45f, 0.5f},
                                 config_.camera_radius,
                                 config_.camera_elevation_deg,
                                 config_.camera_fov_deg, width, height);
  return cams[static_cast<std::size_t>(view)];
}

RenderOptions ScenePipeline::OptionsWithSkip() const {
  RenderOptions opt = config_.render;
  opt.coarse_skip = &coarse_;
  return opt;
}

Image ScenePipeline::RenderGroundTruth(const Camera& camera) const {
  const AnalyticFieldSource source(dataset_->scene);
  return VolumeRenderer(OptionsWithSkip()).Render(source, mlp_, camera);
}

Image ScenePipeline::RenderVqrf(const Camera& camera) const {
  if (!restored_) {
    restored_ = std::make_shared<DenseGrid>(dataset_->vqrf.Restore());
  }
  const GridFieldSource source(*restored_);
  return VolumeRenderer(OptionsWithSkip()).Render(source, mlp_, camera);
}

Image ScenePipeline::RenderSpnerf(const Camera& camera, bool bitmap_masking,
                                  RenderStats* stats,
                                  DecodeCounters* counters) const {
  const bool collect = counters != nullptr;
  SpNeRFFieldSource source(codec_, config_.render.fp16_mlp, collect);
  source.SetMasking(bitmap_masking);
  Image img;
  if (collect && stats == nullptr) {
    // Counters require a sequential render; force it via a stats sink.
    RenderStats sink;
    img = VolumeRenderer(OptionsWithSkip()).Render(source, mlp_, camera, &sink);
  } else {
    img = VolumeRenderer(OptionsWithSkip()).Render(source, mlp_, camera, stats);
  }
  if (counters) *counters = source.Counters();
  return img;
}

FrameWorkload ScenePipeline::MeasureWorkload(int tile_size, int frame_width,
                                             int frame_height) const {
  const Camera tile_cam = MakeCamera(tile_size, tile_size);
  RenderStats stats;
  DecodeCounters counters;
  (void)RenderSpnerf(tile_cam, /*bitmap_masking=*/true, &stats, &counters);
  return BuildFrameWorkload(codec_, stats, counters,
                            SceneName(config_.scene_id), frame_width,
                            frame_height);
}

GpuFrameWorkload ScenePipeline::MeasureGpuWorkload(int tile_size,
                                                   int frame_width,
                                                   int frame_height) const {
  const Camera tile_cam = MakeCamera(tile_size, tile_size);
  RenderStats stats;
  DecodeCounters counters;
  (void)RenderSpnerf(tile_cam, /*bitmap_masking=*/true, &stats, &counters);
  return BuildGpuWorkload(dataset_->vqrf, stats, frame_width, frame_height);
}

}  // namespace spnerf
