#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "render/field_source.hpp"

namespace spnerf {

ScenePipeline ScenePipeline::Build(const PipelineConfig& config) {
  ScenePipeline p;
  p.config_ = config;
  p.dataset_ =
      std::make_shared<SceneDataset>(BuildDataset(config.scene_id, config.dataset));
  p.codec_ = SpNeRFModel::Preprocess(p.dataset_->vqrf, config.spnerf);
  p.mlp_ = Mlp::Random(config.mlp_seed);
  // Coarse skip from the full grid's occupancy: a superset of every lossy
  // representation, so all pipelines march identical rays.
  p.coarse_ = CoarseOccupancy::Build(BitGrid::FromGrid(p.dataset_->full_grid),
                                     config.coarse_factor);
  return p;
}

Camera ScenePipeline::MakeCamera(int width, int height, int view,
                                 int n_views) const {
  SPNERF_CHECK_MSG(view >= 0 && view < n_views, "view index out of range");
  const auto cams = OrbitCameras(n_views, Vec3f{0.5f, 0.45f, 0.5f},
                                 config_.camera_radius,
                                 config_.camera_elevation_deg,
                                 config_.camera_fov_deg, width, height);
  return cams[static_cast<std::size_t>(view)];
}

RenderOptions ScenePipeline::RenderOptionsWithSkip() const {
  RenderOptions opt = config_.render;
  opt.coarse_skip = &coarse_;
  return opt;
}

const DenseGrid& ScenePipeline::RestoredGrid() const {
  if (!restored_) {
    restored_ = std::make_shared<DenseGrid>(dataset_->vqrf.Restore());
  }
  return *restored_;
}

Image ScenePipeline::RenderGroundTruth(const Camera& camera) const {
  const AnalyticFieldSource source(dataset_->scene);
  RenderJob job;
  job.source = &source;
  job.mlp = &mlp_;
  job.camera = camera;
  job.options = RenderOptionsWithSkip();
  return std::move(MakeEngine().Render(job).image);
}

Image ScenePipeline::RenderVqrf(const Camera& camera) const {
  const GridFieldSource source(RestoredGrid());
  RenderJob job;
  job.source = &source;
  job.mlp = &mlp_;
  job.camera = camera;
  job.options = RenderOptionsWithSkip();
  return std::move(MakeEngine().Render(job).image);
}

Image ScenePipeline::RenderSpnerf(const Camera& camera, bool bitmap_masking,
                                  RenderStats* stats,
                                  DecodeCounters* counters) const {
  // One stateless source serves every worker; decode activity lands in the
  // engine's per-tile counter shards, never in the source.
  SpNeRFFieldSource source(codec_, config_.render.fp16_mlp,
                           /*collect_counters=*/false);
  source.SetMasking(bitmap_masking);
  RenderJob job;
  job.source = &source;
  job.mlp = &mlp_;
  job.camera = camera;
  job.options = RenderOptionsWithSkip();
  job.collect_stats = stats != nullptr || counters != nullptr;
  RenderResult result = MakeEngine().Render(job);
  if (stats) stats->Merge(result.stats);
  if (counters) *counters = result.counters;
  return std::move(result.image);
}

double ScenePipeline::RenderComparison(const Camera& camera, Image* gt,
                                       Image* vqrf, Image* spnerf_premask,
                                       Image* spnerf_postmask) const {
  const AnalyticFieldSource gt_src(dataset_->scene);
  SpNeRFFieldSource pre_src(codec_, config_.render.fp16_mlp,
                            /*collect_counters=*/false);
  pre_src.SetMasking(false);
  SpNeRFFieldSource post_src(codec_, config_.render.fp16_mlp,
                             /*collect_counters=*/false);
  post_src.SetMasking(true);
  std::unique_ptr<GridFieldSource> vqrf_src;
  if (vqrf != nullptr) {
    vqrf_src = std::make_unique<GridFieldSource>(RestoredGrid());
  }

  RenderJob base;
  base.mlp = &mlp_;
  base.camera = camera;
  base.options = RenderOptionsWithSkip();

  std::vector<RenderJob> jobs;
  std::vector<Image*> outputs;
  const auto add = [&](Image* out, const FieldSource* source) {
    if (out == nullptr) return;
    RenderJob job = base;
    job.source = source;
    jobs.push_back(job);
    outputs.push_back(out);
  };
  add(gt, &gt_src);
  add(vqrf, vqrf_src.get());
  add(spnerf_premask, &pre_src);
  add(spnerf_postmask, &post_src);

  std::vector<RenderResult> results = MakeEngine().RenderBatch(jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    *outputs[i] = std::move(results[i].image);
  }
  return results.empty() ? 0.0 : results.front().wall_ms;
}

FrameWorkload ScenePipeline::MeasureWorkload(int tile_size, int frame_width,
                                             int frame_height) const {
  const Camera tile_cam = MakeCamera(tile_size, tile_size);
  RenderStats stats;
  DecodeCounters counters;
  (void)RenderSpnerf(tile_cam, /*bitmap_masking=*/true, &stats, &counters);
  return BuildFrameWorkload(codec_, stats, counters,
                            SceneName(config_.scene_id), frame_width,
                            frame_height);
}

GpuFrameWorkload ScenePipeline::MeasureGpuWorkload(int tile_size,
                                                   int frame_width,
                                                   int frame_height) const {
  const Camera tile_cam = MakeCamera(tile_size, tile_size);
  RenderStats stats;
  DecodeCounters counters;
  (void)RenderSpnerf(tile_cam, /*bitmap_masking=*/true, &stats, &counters);
  return BuildGpuWorkload(dataset_->vqrf, stats, frame_width, frame_height);
}

}  // namespace spnerf
