// Top-level per-scene pipeline: builds the dataset (procedural scene ->
// dense grid -> VQRF model), runs the SpNeRF preprocessing, and exposes the
// three rendering paths the paper compares:
//   ground truth (analytic), VQRF (restored dense grid), SpNeRF (online
//   decode, with or without bitmap masking).
//
// The heavy state (dataset, codec, coarse skip) is held as shared immutable
// assets (src/assets), so pipelines built through PipelineRepository share
// them rather than rebuilding; Build() remains the direct, uncached path.
#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "assets/asset_cache.hpp"
#include "common/image.hpp"
#include "encoding/spnerf_codec.hpp"
#include "grid/occupancy.hpp"
#include "render/camera.hpp"
#include "render/mlp.hpp"
#include "render/render_engine.hpp"
#include "scene/dataset.hpp"
#include "sim/workload.hpp"

namespace spnerf {

struct PipelineConfig {
  SceneId scene_id = SceneId::kChair;
  DatasetParams dataset;
  SpNeRFParams spnerf;
  u64 mlp_seed = 2025;
  RenderOptions render;
  /// Tile scheduler configuration for every render this pipeline issues.
  RenderEngineOptions engine;
  /// Fine voxels per coarse skip cell.
  int coarse_factor = 4;
  float camera_radius = 1.35f;
  float camera_elevation_deg = 25.0f;
  float camera_fov_deg = 35.0f;
};

class ScenePipeline {
 public:
  /// Builds every asset directly (no cache). PipelineRepository::Acquire is
  /// the cached path every bench/example/experiment goes through.
  static ScenePipeline Build(const PipelineConfig& config);

  /// Assembles a pipeline onto already-built (cached) assets. The assets
  /// must match the config's build parameters — the repository guarantees
  /// this by deriving both from the same key fields.
  static ScenePipeline FromAssets(const PipelineConfig& config,
                                  PipelineAssets assets);

  [[nodiscard]] const PipelineConfig& Config() const { return config_; }
  [[nodiscard]] const SceneDataset& Dataset() const { return *assets_.dataset; }
  [[nodiscard]] const SpNeRFModel& Codec() const { return *assets_.codec; }
  [[nodiscard]] const Mlp& GetMlp() const { return mlp_; }
  [[nodiscard]] const CoarseOccupancy& Skip() const { return *assets_.coarse; }
  [[nodiscard]] const OccupancyOctree& Octree() const {
    return *assets_.octree;
  }

  /// Orbit camera `view` of `n_views` at the configured radius/elevation.
  [[nodiscard]] Camera MakeCamera(int width, int height, int view = 0,
                                  int n_views = 8) const;

  /// Tile engine configured from PipelineConfig::engine; all pipeline
  /// renders go through it.
  [[nodiscard]] RenderEngine MakeEngine() const {
    return RenderEngine(config_.engine);
  }
  /// Render options with this pipeline's skip structures attached (coarse
  /// bitmap + occupancy octree; SPNF_SKIP picks which one marches). Callers
  /// building their own RenderJobs (orbit sweeps, codec A/B batches) use
  /// this so every path marches identical rays.
  [[nodiscard]] RenderOptions RenderOptionsWithSkip() const;

  [[nodiscard]] Image RenderGroundTruth(const Camera& camera) const;
  /// Renders from the restored dense grid (the original VQRF flow). The
  /// restored grid is materialised on first use and cached.
  [[nodiscard]] Image RenderVqrf(const Camera& camera) const;
  /// Renders via online decoding; stats/counter collection is fully
  /// parallel (per-tile shards, ordered reduction).
  [[nodiscard]] Image RenderSpnerf(const Camera& camera, bool bitmap_masking,
                                   RenderStats* stats = nullptr,
                                   DecodeCounters* counters = nullptr) const;
  /// Renders the paper's compared paths for one camera as a single engine
  /// batch. Null output pointers skip that path (a null `vqrf` also skips
  /// materialising the restored grid). Returns the batch wall time in ms
  /// (issue to the slowest job's completion).
  double RenderComparison(const Camera& camera, Image* gt, Image* vqrf,
                          Image* spnerf_premask, Image* spnerf_postmask) const;
  /// Restored dense grid, materialised on first use (large: FP32).
  /// Materialisation is mutex-guarded; renders pin the grid through a
  /// shared_ptr, so a concurrent ReleaseRestored() only drops this
  /// pipeline's reference. The raw reference returned here is for
  /// inspection — do not hold it across a ReleaseRestored().
  [[nodiscard]] const DenseGrid& RestoredGrid() const {
    return *RestoredShared();
  }

  /// Tile-render with statistics and scale to a full frame (sim input).
  [[nodiscard]] FrameWorkload MeasureWorkload(int tile_size = 96,
                                              int frame_width = 800,
                                              int frame_height = 800) const;
  /// Same measurement mapped onto the VQRF GPU flow.
  [[nodiscard]] GpuFrameWorkload MeasureGpuWorkload(int tile_size = 96,
                                                    int frame_width = 800,
                                                    int frame_height = 800) const;

  /// Drops the cached restored grid (it is large: full-resolution FP32).
  void ReleaseRestored() const;

 private:
  /// Materialise-once accessor; the returned pointer keeps the grid alive
  /// even if ReleaseRestored() runs concurrently.
  [[nodiscard]] std::shared_ptr<const DenseGrid> RestoredShared() const;

  PipelineConfig config_;
  PipelineAssets assets_;  // shared immutable heavy state
  Mlp mlp_;
  // Lazily-materialised restored grid, guarded against concurrent
  // materialisation (two RenderVqrf calls racing). The mutex lives behind a
  // shared_ptr so the pipeline stays movable/copyable.
  std::shared_ptr<std::mutex> restored_mutex_ =
      std::make_shared<std::mutex>();
  mutable std::shared_ptr<DenseGrid> restored_;
};

}  // namespace spnerf
