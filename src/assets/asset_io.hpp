// Versioned binary serialization of built scene assets: the dataset bundle
// (full grid + VQRF model), the SpNeRF preprocessing output, and the coarse
// occupancy skip structure. Every artifact starts with the shared "SPNA"
// magic, the asset format version (kAssetFormatVersion), and a kind tag, so
// corrupted, truncated, or stale files are rejected with a clean SpnerfError
// instead of being misparsed.
//
// All payloads are written as explicit little-endian arrays (never host
// struct images), so a save → load → save round trip is byte-identical.
#pragma once

#include <iosfwd>
#include <string>

#include "assets/asset_key.hpp"
#include "grid/occupancy.hpp"
#include "grid/occupancy_octree.hpp"
#include "scene/dataset.hpp"

namespace spnerf {

/// "SPNA": shared magic of every asset artifact.
inline constexpr u32 kAssetMagic = 0x53504e41u;

/// Kind tags distinguishing artifact payloads behind the shared header.
enum class AssetPayloadKind : u32 {
  kDataset = 1,
  kCodec = 2,
  kCoarse = 3,
  kOctree = 4,
};

/// Writes the shared artifact header (magic + version + kind).
void WriteAssetHeader(std::ostream& out, AssetPayloadKind kind);

/// Validates the shared header; throws SpnerfError on a bad magic, another
/// format version, or a different payload kind.
void ExpectAssetHeader(std::istream& in, AssetPayloadKind kind);

// --- dataset bundle ------------------------------------------------------
// Stores the scene id, the voxelised full grid and the VQRF compression;
// the procedural Scene itself is rebuilt from the id on load (it is a pure
// function of the id and costs microseconds).
void SaveSceneDataset(const SceneDataset& dataset, std::ostream& out);
SceneDataset LoadSceneDataset(std::istream& in);

// --- SpNeRF codec --------------------------------------------------------
// Stores params, dims, the per-subgrid tables (slots + build stats) and the
// bitmap. The payload stores live in the source VqrfModel, so loading
// rewires the codec onto the dataset it was preprocessed from; `source`
// must be that dataset's model (dims are cross-checked).
void SaveSpNeRFModel(const SpNeRFModel& model, std::ostream& out);
SpNeRFModel LoadSpNeRFModel(std::istream& in, const VqrfModel& source);

// --- coarse occupancy ----------------------------------------------------
void SaveCoarseOccupancy(const CoarseOccupancy& coarse, std::ostream& out);
CoarseOccupancy LoadCoarseOccupancy(std::istream& in);

// --- occupancy octree ----------------------------------------------------
// Stores the factor and every level root-first (dims + packed words). Load
// goes through OccupancyOctree::FromLevels, which re-derives the whole
// reduction chain from the leaf level and rejects any mismatch, so a
// corrupt pyramid can never reach the marcher.
void SaveOccupancyOctree(const OccupancyOctree& tree, std::ostream& out);
OccupancyOctree LoadOccupancyOctree(std::istream& in);

}  // namespace spnerf
