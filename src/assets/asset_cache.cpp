#include "assets/asset_cache.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "assets/asset_io.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spnerf {
namespace {

namespace fs = std::filesystem;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Loads one artifact, treating every failure (missing file, bad magic or
/// version, truncation, inconsistent contents) as a miss: the bad file is
/// removed so the rebuilt artifact replaces it.
template <typename LoadFn>
bool TryLoad(const std::string& path, LoadFn&& load) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  try {
    load(in);
    return true;
  } catch (const std::exception& e) {
    // Not just SpnerfError: a corrupt length field can surface as
    // bad_alloc/length_error from a vector resize before any check fires.
    SPNERF_LOG_WARN << "asset cache: rejecting " << path << " (" << e.what()
                    << "); rebuilding";
    in.close();
    std::error_code ec;
    fs::remove(path, ec);
    return false;
  }
}

}  // namespace

const char* AssetOriginName(AssetOrigin origin) {
  switch (origin) {
    case AssetOrigin::kMemory: return "memory";
    case AssetOrigin::kDisk: return "disk";
    case AssetOrigin::kBuilt: return "cold";
  }
  return "?";
}

namespace {

/// Owns a codec together with the VQRF model its payload stores live in —
/// and nothing more: pinning the model (not the whole dataset) keeps cached
/// codecs at compressed size even after the dataset's full-resolution grid
/// is evicted. The handed-out SpNeRFModel pointer aliases this holder.
struct CodecHolder {
  std::shared_ptr<const VqrfModel> vqrf;
  SpNeRFModel model;
};

std::shared_ptr<const SpNeRFModel> WrapCodec(
    std::shared_ptr<CodecHolder> holder) {
  std::shared_ptr<const CodecHolder> owned = std::move(holder);
  return {owned, &owned->model};
}

std::shared_ptr<const CoarseOccupancy> MakeCoarseAsset(
    const SceneDataset& dataset, int factor) {
  return std::make_shared<const CoarseOccupancy>(
      CoarseOccupancy::Build(BitGrid::FromGrid(dataset.full_grid), factor));
}

}  // namespace

std::shared_ptr<const SpNeRFModel> MakeCodecAsset(
    std::shared_ptr<const SceneDataset> dataset, const SpNeRFParams& params) {
  auto holder = std::make_shared<CodecHolder>();
  holder->vqrf = dataset->vqrf;
  holder->model = SpNeRFModel::Preprocess(*holder->vqrf, params);
  return WrapCodec(std::move(holder));
}

PipelineAssets BuildPipelineAssets(SceneId id, const DatasetParams& dp,
                                   const SpNeRFParams& sp, int coarse_factor) {
  PipelineAssets assets;
  assets.dataset = std::make_shared<const SceneDataset>(BuildDataset(id, dp));
  assets.codec = MakeCodecAsset(assets.dataset, sp);
  // Coarse skip from the full grid's occupancy: a superset of every lossy
  // representation, so all pipelines march identical rays. The octree is
  // the coarse bitmap's bottom-up reduction (leaf level bit-identical).
  assets.coarse = MakeCoarseAsset(*assets.dataset, coarse_factor);
  assets.octree = std::make_shared<const OccupancyOctree>(
      OccupancyOctree::Build(*assets.coarse));
  return assets;
}

AssetCacheOptions AssetCache::DefaultOptions() {
  AssetCacheOptions opts;
  const char* env = std::getenv("SPNERF_ASSET_CACHE");
  if (env == nullptr) {
    opts.disk_root = ".spnerf-cache";
  } else if (std::string(env) == "off" || std::string(env) == "0") {
    opts.disk_root.clear();
  } else {
    opts.disk_root = env;
  }
  if (const char* cap = std::getenv("SPNERF_ASSET_CACHE_ENTRIES")) {
    const long n = std::strtol(cap, nullptr, 10);
    if (n > 0) opts.memory_capacity = static_cast<std::size_t>(n);
  }
  return opts;
}

AssetCache& AssetCache::Global() {
  static AssetCache cache;
  return cache;
}

AssetCache::AssetCache(AssetCacheOptions options)
    : disk_root_(std::move(options.disk_root)),
      live_(options.memory_capacity) {
  if (!disk_root_.empty()) {
    std::error_code ec;
    fs::create_directories(disk_root_, ec);
    if (ec) {
      SPNERF_LOG_WARN << "asset cache: cannot create " << disk_root_ << " ("
                      << ec.message() << "); disk store disabled";
      disk_root_.clear();
    }
  }
}

void AssetCache::RecordTiming(const std::string& name, double wall_ms,
                              unsigned threads, AssetOrigin origin) {
  if (obs::CountersEnabled()) {
    struct CacheMetrics {
      obs::Counter& memory_hits = obs::MetricsRegistry::Global().GetCounter(
          "assets/memory-hits");
      obs::Counter& disk_hits = obs::MetricsRegistry::Global().GetCounter(
          "assets/disk-hits");
      obs::Counter& builds = obs::MetricsRegistry::Global().GetCounter(
          "assets/builds");
      obs::Histogram& acquire_us = obs::MetricsRegistry::Global().GetHistogram(
          "assets/acquire-us");
    };
    static CacheMetrics metrics;
    switch (origin) {
      case AssetOrigin::kMemory: metrics.memory_hits.Add(); break;
      case AssetOrigin::kDisk: metrics.disk_hits.Add(); break;
      case AssetOrigin::kBuilt: metrics.builds.Add(); break;
    }
    metrics.acquire_us.Record(
        wall_ms > 0.0 ? static_cast<u64>(wall_ms * 1000.0) : 0);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  timings_.push_back(AssetTimingEntry{name, wall_ms, threads, origin});
  switch (origin) {
    case AssetOrigin::kMemory: ++stats_.memory_hits; break;
    case AssetOrigin::kDisk: ++stats_.disk_hits; break;
    case AssetOrigin::kBuilt: ++stats_.builds; break;
  }
}

std::string AssetCache::PathFor(const AssetKey& key) const {
  return (fs::path(disk_root_) / key.FileName()).string();
}

void AssetCache::StoreToDisk(
    const AssetKey& key, const std::function<void(std::ostream&)>& save) const {
  if (disk_root_.empty()) return;
  const std::string path = PathFor(key);
  // Unique per-writer temp name: two processes (or threads) cold-building
  // the same key must never interleave writes into one inode; whoever
  // renames last wins with a complete artifact.
  static std::atomic<u64> tmp_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      SPNERF_LOG_WARN << "asset cache: cannot write " << tmp;
      return;
    }
    try {
      save(out);
    } catch (const SpnerfError& e) {
      SPNERF_LOG_WARN << "asset cache: save to " << tmp << " failed ("
                      << e.what() << ")";
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);  // atomic publish on POSIX
  if (ec) {
    SPNERF_LOG_WARN << "asset cache: cannot publish " << path << " ("
                    << ec.message() << ")";
    fs::remove(tmp, ec);
  }
}

template <typename T, typename LoadFn, typename BuildFn, typename SaveFn>
std::shared_ptr<const T> AssetCache::AcquireImpl(const AssetKey& key,
                                                 const std::string& name,
                                                 unsigned build_threads,
                                                 LoadFn&& load, BuildFn&& build,
                                                 SaveFn&& save) {
  const std::string live_key = key.kind + key.hash;
  const auto start = std::chrono::steady_clock::now();
  // Acquisition span tagged with the asset name and, once known, the origin
  // tier it resolved from. Interning per acquire is fine — acquisition is
  // not a per-event hot path.
  obs::TraceSpan acquire_span("assets", "acquire");
  if (acquire_span.Active()) {
    acquire_span.AddStrArg("asset", obs::InternString(name));
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (auto* hit = live_.Find(live_key)) {
      const std::shared_ptr<const void> value = *hit;
      lock.unlock();
      acquire_span.AddStrArg("origin",
                             obs::InternString(AssetOriginName(AssetOrigin::kMemory)));
      RecordTiming(name, ElapsedMs(start), 1, AssetOrigin::kMemory);
      return std::static_pointer_cast<const T>(value);
    }
  }

  // Disk, then build — both outside the lock (concurrent same-key acquires
  // may duplicate work; InsertLocked keeps the first inserted value).
  if (!disk_root_.empty()) {
    std::shared_ptr<const T> loaded;
    if (TryLoad(PathFor(key), [&](std::istream& in) { loaded = load(in); })) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        live_.Insert(live_key, loaded);
      }
      acquire_span.AddStrArg("origin",
                             obs::InternString(AssetOriginName(AssetOrigin::kDisk)));
      RecordTiming(name, ElapsedMs(start), 1, AssetOrigin::kDisk);
      return loaded;
    }
  }

  std::shared_ptr<const T> built = build();
  StoreToDisk(key, [&](std::ostream& out) { save(out, *built); });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live_.Insert(live_key, built);
  }
  acquire_span.AddStrArg("origin",
                         obs::InternString(AssetOriginName(AssetOrigin::kBuilt)));
  RecordTiming(name, ElapsedMs(start), build_threads, AssetOrigin::kBuilt);
  return built;
}

std::shared_ptr<const SceneDataset> AssetCache::AcquireDataset(
    SceneId id, const DatasetParams& dp) {
  // An explicit cap is honoured even past the global pool size (the
  // voxeliser builds a dedicated pool), matching the bench reporting rule.
  const unsigned threads =
      dp.max_threads ? dp.max_threads : ThreadPool::Global().WorkerCount();
  return AcquireImpl<SceneDataset>(
      DatasetAssetKey(id, dp), std::string("dataset/") + SceneName(id),
      threads,
      [&](std::istream& in) -> std::shared_ptr<const SceneDataset> {
        auto loaded = std::make_shared<SceneDataset>(LoadSceneDataset(in));
        SPNERF_CHECK_MSG(loaded->id == id,
                         "dataset asset holds scene " << SceneName(loaded->id)
                             << ", expected " << SceneName(id));
        return loaded;
      },
      [&] { return std::make_shared<const SceneDataset>(BuildDataset(id, dp)); },
      [](std::ostream& out, const SceneDataset& v) {
        SaveSceneDataset(v, out);
      });
}

std::shared_ptr<const SpNeRFModel> AssetCache::AcquireCodec(
    SceneId id, const DatasetParams& dp, const SpNeRFParams& sp,
    const std::shared_ptr<const SceneDataset>& dataset) {
  SPNERF_CHECK_MSG(dataset != nullptr, "AcquireCodec needs a dataset");
  // A memory hit may carry a different (but identically-built) dataset
  // instance than `dataset`; both decode identically by construction.
  return AcquireImpl<SpNeRFModel>(
      CodecAssetKey(DatasetAssetKey(id, dp), sp),
      std::string("codec/") + SceneName(id), 1,
      [&](std::istream& in) {
        auto loaded = std::make_shared<CodecHolder>();
        loaded->vqrf = dataset->vqrf;
        loaded->model = LoadSpNeRFModel(in, *loaded->vqrf);
        return WrapCodec(std::move(loaded));
      },
      [&] { return MakeCodecAsset(dataset, sp); },
      [](std::ostream& out, const SpNeRFModel& v) { SaveSpNeRFModel(v, out); });
}

std::shared_ptr<const CoarseOccupancy> AssetCache::AcquireCoarse(
    SceneId id, const DatasetParams& dp, int factor,
    const std::shared_ptr<const SceneDataset>& dataset) {
  SPNERF_CHECK_MSG(dataset != nullptr, "AcquireCoarse needs a dataset");
  return AcquireImpl<CoarseOccupancy>(
      CoarseAssetKey(DatasetAssetKey(id, dp), factor),
      std::string("coarse/") + SceneName(id), 1,
      [&](std::istream& in) -> std::shared_ptr<const CoarseOccupancy> {
        return std::make_shared<CoarseOccupancy>(LoadCoarseOccupancy(in));
      },
      [&] { return MakeCoarseAsset(*dataset, factor); },
      [](std::ostream& out, const CoarseOccupancy& v) {
        SaveCoarseOccupancy(v, out);
      });
}

std::shared_ptr<const OccupancyOctree> AssetCache::AcquireOctree(
    SceneId id, const DatasetParams& dp, int factor,
    const std::shared_ptr<const CoarseOccupancy>& coarse) {
  SPNERF_CHECK_MSG(coarse != nullptr, "AcquireOctree needs a coarse bitmap");
  return AcquireImpl<OccupancyOctree>(
      OctreeAssetKey(DatasetAssetKey(id, dp), factor),
      std::string("octree/") + SceneName(id), 1,
      [&](std::istream& in) -> std::shared_ptr<const OccupancyOctree> {
        auto loaded =
            std::make_shared<OccupancyOctree>(LoadOccupancyOctree(in));
        SPNERF_CHECK_MSG(
            loaded->LeafBits().Words() == coarse->Bits().Words(),
            "octree asset leaf level disagrees with the coarse bitmap");
        return loaded;
      },
      [&] {
        return std::make_shared<const OccupancyOctree>(
            OccupancyOctree::Build(*coarse));
      },
      [](std::ostream& out, const OccupancyOctree& v) {
        SaveOccupancyOctree(v, out);
      });
}

PipelineAssets AssetCache::Acquire(SceneId id, const DatasetParams& dp,
                                   const SpNeRFParams& sp, int coarse_factor) {
  PipelineAssets assets;
  assets.dataset = AcquireDataset(id, dp);
  assets.codec = AcquireCodec(id, dp, sp, assets.dataset);
  assets.coarse = AcquireCoarse(id, dp, coarse_factor, assets.dataset);
  assets.octree = AcquireOctree(id, dp, coarse_factor, assets.coarse);
  return assets;
}

AssetCache::Stats AssetCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<AssetTimingEntry> AssetCache::DrainTimings() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AssetTimingEntry> out;
  out.swap(timings_);
  return out;
}

void AssetCache::EvictAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  live_.Clear();
}

}  // namespace spnerf
