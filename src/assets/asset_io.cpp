#include "assets/asset_io.hpp"

#include <istream>
#include <ostream>

#include "common/binary_io.hpp"
#include "grid/vqrf_io.hpp"

namespace spnerf {

void WriteAssetHeader(std::ostream& out, AssetPayloadKind kind) {
  WritePod<u32>(out, kAssetMagic);
  WritePod<u32>(out, kAssetFormatVersion);
  WritePod<u32>(out, static_cast<u32>(kind));
}

void ExpectAssetHeader(std::istream& in, AssetPayloadKind kind) {
  ExpectMagic(in, kAssetMagic, "SpNeRF asset");
  ExpectVersion(in, kAssetFormatVersion, "SpNeRF asset");
  const u32 got = ReadPod<u32>(in);
  SPNERF_CHECK_MSG(got == static_cast<u32>(kind),
                   "asset payload kind mismatch: file holds kind " << got
                       << ", expected " << static_cast<u32>(kind));
}

// --- dataset bundle ------------------------------------------------------

void SaveSceneDataset(const SceneDataset& dataset, std::ostream& out) {
  SPNERF_CHECK_MSG(dataset.vqrf != nullptr,
                   "dataset has no VQRF model (not built via BuildDataset?)");
  WriteAssetHeader(out, AssetPayloadKind::kDataset);
  WriteString(out, SceneName(dataset.id));
  const GridDims& dims = dataset.full_grid.Dims();
  WritePod<i32>(out, dims.nx);
  WritePod<i32>(out, dims.ny);
  WritePod<i32>(out, dims.nz);
  WriteVector(out, dataset.full_grid.DensityRaw());
  WriteVector(out, dataset.full_grid.FeaturesRaw());
  SaveVqrfModel(*dataset.vqrf, out);
  SPNERF_CHECK_MSG(out.good(), "dataset asset write failed");
}

SceneDataset LoadSceneDataset(std::istream& in) {
  ExpectAssetHeader(in, AssetPayloadKind::kDataset);
  SceneDataset ds;
  ds.id = SceneFromName(ReadString(in));
  ds.scene = BuildScene(ds.id);
  GridDims dims;
  dims.nx = ReadPod<i32>(in);
  dims.ny = ReadPod<i32>(in);
  dims.nz = ReadPod<i32>(in);
  SPNERF_CHECK_MSG(dims.nx > 0 && dims.ny > 0 && dims.nz > 0,
                   "corrupt dataset asset: non-positive grid dims");
  std::vector<float> density = ReadVector<float>(in);
  std::vector<float> features = ReadVector<float>(in);
  ds.full_grid = DenseGrid::FromRaw(dims, std::move(density),
                                    std::move(features));
  ds.vqrf = std::make_shared<const VqrfModel>(LoadVqrfModel(in));
  SPNERF_CHECK_MSG(ds.vqrf->Dims() == dims,
                   "corrupt dataset asset: VQRF dims disagree with grid");
  return ds;
}

// --- SpNeRF codec --------------------------------------------------------

void SaveSpNeRFModel(const SpNeRFModel& model, std::ostream& out) {
  WriteAssetHeader(out, AssetPayloadKind::kCodec);
  const SpNeRFParams& p = model.params_;
  WritePod<i32>(out, p.subgrid_count);
  WritePod<u32>(out, p.table_size);
  WritePod<u8>(out, p.bitmap_masking ? 1 : 0);
  WritePod<u8>(out, static_cast<u8>(p.collision_policy));
  WritePod<i32>(out, model.dims_.nx);
  WritePod<i32>(out, model.dims_.ny);
  WritePod<i32>(out, model.dims_.nz);

  WritePod<u64>(out, model.tables_.size());
  for (const SubgridHashTable& table : model.tables_) {
    // Slots as parallel arrays so the layout is independent of HashEntry's
    // host padding.
    std::vector<u32> payloads;
    std::vector<i8> densities;
    payloads.reserve(table.Entries().size());
    densities.reserve(table.Entries().size());
    for (const HashEntry& e : table.Entries()) {
      payloads.push_back(e.payload);
      densities.push_back(e.density_q);
    }
    WriteVector(out, payloads);
    WriteVector(out, densities);
    const HashBuildStats& s = table.BuildStats();
    WritePod<u64>(out, s.inserted);
    WritePod<u64>(out, s.collisions);
    WritePod<u64>(out, s.occupied_slots);
  }
  WriteVector(out, model.bitmap_.Words());
  SPNERF_CHECK_MSG(out.good(), "codec asset write failed");
}

SpNeRFModel LoadSpNeRFModel(std::istream& in, const VqrfModel& source) {
  ExpectAssetHeader(in, AssetPayloadKind::kCodec);
  SpNeRFModel model;
  SpNeRFParams p;
  p.subgrid_count = ReadPod<i32>(in);
  p.table_size = ReadPod<u32>(in);
  p.bitmap_masking = ReadPod<u8>(in) != 0;
  p.collision_policy = static_cast<CollisionPolicy>(ReadPod<u8>(in));
  SPNERF_CHECK_MSG(p.subgrid_count > 0 && p.table_size > 0,
                   "corrupt codec asset: bad params");
  model.params_ = p;
  model.dims_.nx = ReadPod<i32>(in);
  model.dims_.ny = ReadPod<i32>(in);
  model.dims_.nz = ReadPod<i32>(in);
  SPNERF_CHECK_MSG(model.dims_ == source.Dims(),
                   "codec asset was preprocessed from a different dataset "
                   "(grid dims disagree)");
  model.partition_ = SubgridPartition(model.dims_, p.subgrid_count);

  const u64 table_count = ReadPod<u64>(in);
  SPNERF_CHECK_MSG(table_count == static_cast<u64>(p.subgrid_count),
                   "corrupt codec asset: " << table_count
                       << " tables for K=" << p.subgrid_count);
  const u64 max_payload = static_cast<u64>(source.GetCodebook().Size()) +
                          source.KeptCount();
  model.tables_.reserve(table_count);
  for (u64 t = 0; t < table_count; ++t) {
    std::vector<u32> payloads = ReadVector<u32>(in);
    std::vector<i8> densities = ReadVector<i8>(in);
    SPNERF_CHECK_MSG(payloads.size() == p.table_size &&
                         densities.size() == p.table_size,
                     "corrupt codec asset: table slot count mismatch");
    std::vector<HashEntry> entries(payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      entries[i].payload = payloads[i];
      entries[i].density_q = densities[i];
      SPNERF_CHECK_MSG(!entries[i].Occupied() || payloads[i] < max_payload,
                       "corrupt codec asset: payload " << payloads[i]
                           << " outside the source's unified space");
    }
    HashBuildStats stats;
    stats.inserted = ReadPod<u64>(in);
    stats.collisions = ReadPod<u64>(in);
    stats.occupied_slots = ReadPod<u64>(in);
    model.tables_.push_back(
        SubgridHashTable::FromParts(std::move(entries), stats));
  }
  std::vector<u64> words = ReadVector<u64>(in);
  model.bitmap_ = BitGrid::FromWords(model.dims_, std::move(words));
  model.source_ = &source;
  return model;
}

// --- coarse occupancy ----------------------------------------------------

void SaveCoarseOccupancy(const CoarseOccupancy& coarse, std::ostream& out) {
  WriteAssetHeader(out, AssetPayloadKind::kCoarse);
  WritePod<i32>(out, coarse.Factor());
  const GridDims& dims = coarse.CoarseDims();
  WritePod<i32>(out, dims.nx);
  WritePod<i32>(out, dims.ny);
  WritePod<i32>(out, dims.nz);
  WriteVector(out, coarse.Bits().Words());
  SPNERF_CHECK_MSG(out.good(), "coarse asset write failed");
}

CoarseOccupancy LoadCoarseOccupancy(std::istream& in) {
  ExpectAssetHeader(in, AssetPayloadKind::kCoarse);
  const i32 factor = ReadPod<i32>(in);
  SPNERF_CHECK_MSG(factor >= 1, "corrupt coarse asset: factor " << factor);
  GridDims dims;
  dims.nx = ReadPod<i32>(in);
  dims.ny = ReadPod<i32>(in);
  dims.nz = ReadPod<i32>(in);
  SPNERF_CHECK_MSG(dims.nx > 0 && dims.ny > 0 && dims.nz > 0,
                   "corrupt coarse asset: non-positive dims");
  std::vector<u64> words = ReadVector<u64>(in);
  return CoarseOccupancy::FromBits(BitGrid::FromWords(dims, std::move(words)),
                                   factor);
}

// --- occupancy octree ----------------------------------------------------

void SaveOccupancyOctree(const OccupancyOctree& tree, std::ostream& out) {
  WriteAssetHeader(out, AssetPayloadKind::kOctree);
  WritePod<i32>(out, tree.Factor());
  WritePod<u32>(out, static_cast<u32>(tree.Levels()));
  for (int l = 0; l < tree.Levels(); ++l) {
    const BitGrid& level = tree.Level(l);
    WritePod<i32>(out, level.Dims().nx);
    WritePod<i32>(out, level.Dims().ny);
    WritePod<i32>(out, level.Dims().nz);
    WriteVector(out, level.Words());
  }
  SPNERF_CHECK_MSG(out.good(), "octree asset write failed");
}

OccupancyOctree LoadOccupancyOctree(std::istream& in) {
  ExpectAssetHeader(in, AssetPayloadKind::kOctree);
  const i32 factor = ReadPod<i32>(in);
  SPNERF_CHECK_MSG(factor >= 1, "corrupt octree asset: factor " << factor);
  const u32 level_count = ReadPod<u32>(in);
  // 32 levels would be a 2^31-wide leaf grid; anything above is a corrupt
  // length field, rejected before it can drive the read loop.
  SPNERF_CHECK_MSG(level_count >= 1 && level_count <= 32,
                   "corrupt octree asset: " << level_count << " levels");
  std::vector<BitGrid> levels;
  levels.reserve(level_count);
  for (u32 l = 0; l < level_count; ++l) {
    GridDims dims;
    dims.nx = ReadPod<i32>(in);
    dims.ny = ReadPod<i32>(in);
    dims.nz = ReadPod<i32>(in);
    SPNERF_CHECK_MSG(dims.nx > 0 && dims.ny > 0 && dims.nz > 0,
                     "corrupt octree asset: non-positive level dims");
    std::vector<u64> words = ReadVector<u64>(in);
    levels.push_back(BitGrid::FromWords(dims, std::move(words)));
  }
  // FromLevels re-derives the reduction chain and throws on any mismatch.
  return OccupancyOctree::FromLevels(std::move(levels), factor);
}

}  // namespace spnerf
