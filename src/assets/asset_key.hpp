// Content-addressed cache keys for built scene assets. A key is the FNV-1a
// hash of a canonical field string covering everything that changes the
// built bytes: the asset format version, the scene id, and every build
// parameter (DatasetParams/VqrfBuildParams for datasets, SpNeRFParams for
// codecs, the reduction factor for coarse occupancy). Execution-policy
// fields (worker caps) are deliberately excluded: they never change the
// content, so warm caches survive thread-count changes.
//
// On-disk artifacts are stored as `<kind>-<hash16>.spnfa`; bumping
// kAssetFormatVersion changes every key and thereby invalidates every
// previously written artifact without any explicit cleanup pass.
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"
#include "encoding/spnerf_codec.hpp"
#include "scene/dataset.hpp"

namespace spnerf {

/// Bumped whenever any asset serialization layout changes. Hashing it into
/// every key makes stale on-disk artifacts unreachable (miss, not error).
/// v2: added the occupancy-octree artifact kind.
inline constexpr u32 kAssetFormatVersion = 2;

/// Identity of one cached artifact: what kind it is plus the 16-hex-digit
/// content hash of its build inputs.
struct AssetKey {
  std::string kind;  // "dataset" | "codec" | "coarse" | "octree"
  std::string hash;  // 16 lowercase hex digits (FNV-1a 64)

  [[nodiscard]] std::string FileName() const {
    return kind + "-" + hash + ".spnfa";
  }
  friend bool operator==(const AssetKey&, const AssetKey&) = default;
};

/// Accumulates named, typed fields into a canonical string and hashes it.
/// Floating-point fields hash their exact bit pattern, so keys distinguish
/// every representable value and never depend on formatting.
class AssetKeyBuilder {
 public:
  AssetKeyBuilder& Field(std::string_view name, i64 value);
  AssetKeyBuilder& Field(std::string_view name, u64 value);
  AssetKeyBuilder& Field(std::string_view name, double value);
  AssetKeyBuilder& Field(std::string_view name, float value);
  AssetKeyBuilder& Field(std::string_view name, bool value);
  AssetKeyBuilder& Field(std::string_view name, std::string_view value);
  /// Without this overload a string literal would prefer the standard
  /// pointer->bool conversion over string_view and hash as a boolean.
  AssetKeyBuilder& Field(std::string_view name, const char* value) {
    return Field(name, std::string_view(value));
  }

  /// The canonical field string hashed by Finish (for debugging/tests).
  [[nodiscard]] const std::string& Canonical() const { return canonical_; }

  /// 16-hex-digit FNV-1a 64 hash of the canonical string.
  [[nodiscard]] std::string Finish() const;

 private:
  std::string canonical_;
};

/// Key of the voxelised + VQRF-compressed dataset bundle for one scene.
AssetKey DatasetAssetKey(SceneId id, const DatasetParams& params);

/// Key of the SpNeRF preprocessing output, derived from the dataset it was
/// preprocessed from plus the codec parameters.
AssetKey CodecAssetKey(const AssetKey& dataset_key, const SpNeRFParams& params);

/// Key of the coarse occupancy skip structure for one dataset + factor.
AssetKey CoarseAssetKey(const AssetKey& dataset_key, int factor);

/// Key of the occupancy octree reduced from one dataset's coarse bitmap.
/// Distinct from the coarse key: the pyramid is its own artifact, rebuilt
/// independently if only its file is corrupted.
AssetKey OctreeAssetKey(const AssetKey& dataset_key, int factor);

}  // namespace spnerf
