#include "assets/asset_key.hpp"

#include <bit>
#include <cstdio>

namespace spnerf {
namespace {

u64 Fnv1a64(std::string_view s) {
  u64 h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string Hex16(u64 v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

AssetKeyBuilder& AssetKeyBuilder::Field(std::string_view name, i64 value) {
  canonical_.append(name).append("=").append(std::to_string(value)).append(";");
  return *this;
}

AssetKeyBuilder& AssetKeyBuilder::Field(std::string_view name, u64 value) {
  canonical_.append(name).append("=u").append(std::to_string(value)).append(";");
  return *this;
}

AssetKeyBuilder& AssetKeyBuilder::Field(std::string_view name, double value) {
  canonical_.append(name).append("=d").append(
      Hex16(std::bit_cast<u64>(value))).append(";");
  return *this;
}

AssetKeyBuilder& AssetKeyBuilder::Field(std::string_view name, float value) {
  canonical_.append(name).append("=f").append(
      Hex16(std::bit_cast<u32>(value))).append(";");
  return *this;
}

AssetKeyBuilder& AssetKeyBuilder::Field(std::string_view name, bool value) {
  canonical_.append(name).append(value ? "=b1;" : "=b0;");
  return *this;
}

AssetKeyBuilder& AssetKeyBuilder::Field(std::string_view name,
                                        std::string_view value) {
  canonical_.append(name).append("=s").append(value).append(";");
  return *this;
}

std::string AssetKeyBuilder::Finish() const { return Hex16(Fnv1a64(canonical_)); }

namespace {

/// Every field of DatasetParams/VqrfBuildParams that shapes the built bytes.
/// `max_threads` is intentionally absent (execution policy, not content).
AssetKeyBuilder DatasetFields(SceneId id, const DatasetParams& p) {
  AssetKeyBuilder b;
  b.Field("format", static_cast<u64>(kAssetFormatVersion))
      .Field("scene", SceneName(id))
      .Field("res", static_cast<i64>(p.resolution_override))
      .Field("prune", p.vqrf.prune_fraction)
      .Field("keep", p.vqrf.keep_fraction)
      .Field("codebook", static_cast<i64>(p.vqrf.codebook_size))
      .Field("kmeans", static_cast<i64>(p.vqrf.kmeans_iterations))
      .Field("vq_samples", static_cast<i64>(p.vqrf.max_vq_train_samples))
      .Field("seed", p.vqrf.seed);
  return b;
}

}  // namespace

AssetKey DatasetAssetKey(SceneId id, const DatasetParams& params) {
  return {"dataset", DatasetFields(id, params).Finish()};
}

AssetKey CodecAssetKey(const AssetKey& dataset_key,
                       const SpNeRFParams& params) {
  AssetKeyBuilder b;
  b.Field("format", static_cast<u64>(kAssetFormatVersion))
      .Field("dataset", dataset_key.hash)
      .Field("subgrids", static_cast<i64>(params.subgrid_count))
      .Field("table", static_cast<u64>(params.table_size))
      .Field("masking", params.bitmap_masking)
      .Field("policy", static_cast<i64>(params.collision_policy));
  return {"codec", b.Finish()};
}

AssetKey CoarseAssetKey(const AssetKey& dataset_key, int factor) {
  AssetKeyBuilder b;
  b.Field("format", static_cast<u64>(kAssetFormatVersion))
      .Field("dataset", dataset_key.hash)
      .Field("factor", static_cast<i64>(factor));
  return {"coarse", b.Finish()};
}

AssetKey OctreeAssetKey(const AssetKey& dataset_key, int factor) {
  AssetKeyBuilder b;
  b.Field("format", static_cast<u64>(kAssetFormatVersion))
      .Field("dataset", dataset_key.hash)
      .Field("factor", static_cast<i64>(factor));
  return {"octree", b.Finish()};
}

}  // namespace spnerf
