// Content-addressed cache of built scene assets. Sits between the builders
// (scene/grid/encoding) and the consumers (core/ and everything above):
// cold acquires build once — voxelise + VQRF-compress, SpNeRF-preprocess,
// coarse-reduce — persist the artifact to the on-disk store, and keep the
// live object in a bounded in-memory LRU; warm acquires return the shared
// live object (memory hit) or deserialize the artifact (disk hit) instead
// of rebuilding.
//
// Keys come from assets/asset_key.hpp: they hash the scene id, every build
// parameter and the format version, so any parameter change or format bump
// is automatically a miss. Unreadable or corrupt artifacts are also treated
// as misses (deleted and rebuilt), never as errors.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "assets/asset_key.hpp"
#include "common/lru.hpp"
#include "grid/occupancy.hpp"
#include "grid/occupancy_octree.hpp"
#include "scene/dataset.hpp"

namespace spnerf {

/// Where an acquired asset came from, in descending order of warmth.
enum class AssetOrigin { kMemory, kDisk, kBuilt };

const char* AssetOriginName(AssetOrigin origin);

/// One acquire-phase measurement, consumed by the bench JSON reports.
struct AssetTimingEntry {
  std::string name;  // e.g. "dataset/lego"
  double wall_ms = 0.0;
  unsigned threads = 1;
  AssetOrigin origin = AssetOrigin::kBuilt;
};

/// The expensive state one ScenePipeline needs. `codec->Source()` points
/// into the dataset's VQRF model, which lives behind its own shared_ptr
/// (`dataset->vqrf`): the codec pins only that compressed model, never the
/// dataset's full-resolution grid.
struct PipelineAssets {
  std::shared_ptr<const SceneDataset> dataset;
  std::shared_ptr<const SpNeRFModel> codec;
  std::shared_ptr<const CoarseOccupancy> coarse;
  std::shared_ptr<const OccupancyOctree> octree;
};

/// Preprocesses a codec over `dataset`, bundling the dataset with the model
/// so the codec's payload-store reference stays alive for exactly as long
/// as the handed-out pointer. The single implementation of this aliasing
/// pattern — cache and direct-build paths both go through it.
std::shared_ptr<const SpNeRFModel> MakeCodecAsset(
    std::shared_ptr<const SceneDataset> dataset, const SpNeRFParams& params);

/// Builds the full asset bundle directly, bypassing every cache level
/// (ScenePipeline::Build's uncached path).
PipelineAssets BuildPipelineAssets(SceneId id, const DatasetParams& dp,
                                   const SpNeRFParams& sp, int coarse_factor);

struct AssetCacheOptions {
  /// On-disk store root; empty disables persistence (memory LRU only).
  std::string disk_root;
  /// Live assets kept in memory before least-recently-used eviction. Each
  /// dataset entry pins its full-resolution grid, so this trades RAM for
  /// rebuild time; SPNERF_ASSET_CACHE_ENTRIES overrides the default.
  std::size_t memory_capacity = 32;
};

class AssetCache {
 public:
  /// Reads SPNERF_ASSET_CACHE: unset uses ".spnerf-cache" under the working
  /// directory, "off" (or "0") disables the disk store, anything else is
  /// the store root.
  static AssetCacheOptions DefaultOptions();

  /// Process-wide cache (DefaultOptions), created on first use.
  static AssetCache& Global();

  explicit AssetCache(AssetCacheOptions options = DefaultOptions());

  AssetCache(const AssetCache&) = delete;
  AssetCache& operator=(const AssetCache&) = delete;

  /// Dataset bundle for one scene: memory hit, disk hit, or parallel build.
  std::shared_ptr<const SceneDataset> AcquireDataset(SceneId id,
                                                     const DatasetParams& dp);

  /// SpNeRF codec preprocessed from `dataset` (which must have been
  /// acquired from this cache or built with the same params).
  std::shared_ptr<const SpNeRFModel> AcquireCodec(
      SceneId id, const DatasetParams& dp, const SpNeRFParams& sp,
      const std::shared_ptr<const SceneDataset>& dataset);

  /// Coarse occupancy for one dataset + reduction factor.
  std::shared_ptr<const CoarseOccupancy> AcquireCoarse(
      SceneId id, const DatasetParams& dp, int factor,
      const std::shared_ptr<const SceneDataset>& dataset);

  /// Occupancy octree reduced from `coarse` (which must have been acquired
  /// for the same dataset + factor).
  std::shared_ptr<const OccupancyOctree> AcquireOctree(
      SceneId id, const DatasetParams& dp, int factor,
      const std::shared_ptr<const CoarseOccupancy>& coarse);

  /// Everything a pipeline needs, acquired in dependency order.
  PipelineAssets Acquire(SceneId id, const DatasetParams& dp,
                         const SpNeRFParams& sp, int coarse_factor);

  struct Stats {
    u64 memory_hits = 0;
    u64 disk_hits = 0;
    u64 builds = 0;
  };
  [[nodiscard]] Stats GetStats() const;

  /// Per-acquire timings accumulated since the last drain.
  std::vector<AssetTimingEntry> DrainTimings();

  /// Drops every live in-memory asset (the disk store is untouched).
  void EvictAll();

  [[nodiscard]] const std::string& DiskRoot() const { return disk_root_; }

 private:
  /// The one acquire protocol every asset kind goes through: memory LRU ->
  /// disk store -> build+persist, with per-origin timing. `load` returns a
  /// typed pointer from a validated stream, `build` constructs cold,
  /// `save` serializes for the disk store. Instantiated only in the .cpp.
  template <typename T, typename LoadFn, typename BuildFn, typename SaveFn>
  std::shared_ptr<const T> AcquireImpl(const AssetKey& key,
                                       const std::string& name,
                                       unsigned build_threads, LoadFn&& load,
                                       BuildFn&& build, SaveFn&& save);

  void RecordTiming(const std::string& name, double wall_ms, unsigned threads,
                    AssetOrigin origin);

  [[nodiscard]] std::string PathFor(const AssetKey& key) const;
  /// Atomically writes an artifact (temp file + rename); failures only warn.
  void StoreToDisk(const AssetKey& key,
                   const std::function<void(std::ostream&)>& save) const;

  std::string disk_root_;  // empty = disk store disabled

  mutable std::mutex mutex_;
  // Values are type-erased; AcquireImpl casts back. A codec entry pins only
  // its source VQRF model (payload stores live there), not the dataset's
  // full-resolution grid, so evicting the dataset entry frees the grid even
  // while codecs stay cached.
  LruList<std::shared_ptr<const void>> live_;  // guarded by mutex_
  Stats stats_;
  std::vector<AssetTimingEntry> timings_;
};

}  // namespace spnerf
