#include "dram/lpddr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace spnerf {

LpddrModel::LpddrModel(DramConfig config) : config_(std::move(config)) {
  SPNERF_CHECK_MSG(config_.channels > 0 && config_.banks_per_channel > 0,
                   "DRAM needs channels and banks");
  SPNERF_CHECK_MSG(config_.row_bytes > 0, "row size must be positive");
  banks_.assign(
      static_cast<std::size_t>(config_.channels * config_.banks_per_channel),
      BankState{});
  channel_free_at_.assign(static_cast<std::size_t>(config_.channels), 0);
}

DramAccessResult LpddrModel::Access(u64 addr, u32 bytes, bool is_write,
                                    Cycle now) {
  SPNERF_CHECK_MSG(bytes > 0, "zero-byte DRAM access");

  // Address mapping: rows interleave across channels then banks, so
  // sequential streams use all channels (this is how the paper's contiguous
  // per-subgrid tables achieve near-peak bandwidth).
  const u64 row_global = addr / config_.row_bytes;
  const auto channel = static_cast<int>(row_global % config_.channels);
  const auto bank_in_ch = static_cast<int>(
      (row_global / config_.channels) % config_.banks_per_channel);
  const i64 row =
      static_cast<i64>(row_global / (static_cast<u64>(config_.channels) *
                                     config_.banks_per_channel));
  BankState& bank =
      banks_[static_cast<std::size_t>(channel * config_.banks_per_channel +
                                      bank_in_ch)];
  Cycle& bus_free = channel_free_at_[static_cast<std::size_t>(channel)];

  Cycle start = std::max({now, bank.busy_until, bus_free});
  const bool hit = bank.open_row == row;

  // Row misses pay precharge + activate before the CAS; consecutive
  // activations to one bank are additionally spaced by tRC = tRAS + tRP.
  double pre_cas_ns = 0.0;
  if (!hit) {
    start = std::max(start, bank.activate_allowed_at);
    pre_cas_ns = config_.timings.t_rp_ns + config_.timings.t_rcd_ns;
    bank.open_row = row;
    bank.activate_allowed_at =
        start + static_cast<Cycle>(std::ceil(config_.timings.t_ras_ns +
                                             config_.timings.t_rp_ns));
    stats_.activate_energy_j += config_.energy.activate_nj * 1e-9;
    ++stats_.row_misses;
  } else {
    ++stats_.row_hits;
  }

  // Data transfer occupies the channel bus; a channel carries 1/channels of
  // device bandwidth.
  const double channel_bytes_per_ns =
      config_.BytesPerNs() / static_cast<double>(config_.channels);
  const double transfer_ns =
      static_cast<double>(bytes) / channel_bytes_per_ns;

  // CAS latency is pipelined: it delays data arrival but does not occupy
  // the bank, so back-to-back row hits stream at the full bus rate.
  const auto complete =
      start + static_cast<Cycle>(
                  std::ceil(pre_cas_ns + config_.timings.t_cl_ns + transfer_ns));
  bank.busy_until =
      start + static_cast<Cycle>(std::ceil(pre_cas_ns + transfer_ns));
  // Only the data transfer occupies the channel bus: ACT/PRE to one bank
  // overlap with other banks' transfers (bank-level parallelism).
  bus_free = start + static_cast<Cycle>(std::ceil(transfer_ns));

  const double bits = static_cast<double>(bytes) * 8.0;
  stats_.rdwr_energy_j += bits * config_.energy.rdwr_pj_per_bit * 1e-12;
  stats_.io_energy_j += bits * config_.energy.io_pj_per_bit * 1e-12;
  if (is_write) {
    ++stats_.writes;
    stats_.bytes_written += bytes;
  } else {
    ++stats_.reads;
    stats_.bytes_read += bytes;
  }

  DramAccessResult result;
  result.issue_cycle = start;
  result.complete_cycle = complete;
  result.row_hit = hit;
  return result;
}

Cycle LpddrModel::DrainCycle() const {
  Cycle latest = 0;
  for (const BankState& b : banks_) latest = std::max(latest, b.busy_until);
  // activate_allowed_at is a spacing constraint, not outstanding work, so it
  // does not extend the drain point.
  for (Cycle c : channel_free_at_) latest = std::max(latest, c);
  return latest;
}

}  // namespace spnerf
