#include "dram/dram_config.hpp"

namespace spnerf {

DramConfig Lpddr4_3200() {
  DramConfig c;
  c.name = "LPDDR4-3200";
  c.peak_bandwidth_gbps = 59.7;
  c.channels = 4;  // 128-bit interface as 4 x 32-bit channels
  c.banks_per_channel = 8;
  c.row_bytes = 2048;
  c.timings = {18.0, 18.0, 18.0, 42.0};
  c.energy = {2.0, 1.5, 2.5, 60.0};
  return c;
}

DramConfig Lpddr4_1600() {
  DramConfig c;
  c.name = "LPDDR4-1600";
  c.peak_bandwidth_gbps = 17.0;
  c.channels = 2;
  c.banks_per_channel = 8;
  c.row_bytes = 2048;
  c.timings = {18.0, 18.0, 18.0, 42.0};
  c.energy = {2.0, 1.5, 2.5, 40.0};
  return c;
}

DramConfig Lpddr5_102() {
  DramConfig c;
  c.name = "LPDDR5";
  c.peak_bandwidth_gbps = 102.4;
  c.channels = 4;
  c.banks_per_channel = 16;
  c.row_bytes = 2048;
  c.timings = {15.0, 15.0, 15.0, 34.0};
  c.energy = {1.8, 1.2, 2.0, 70.0};
  return c;
}

DramConfig Hbm2_A100() {
  DramConfig c;
  c.name = "HBM2";
  c.peak_bandwidth_gbps = 1555.0;
  c.channels = 40;  // 5120-bit interface
  c.banks_per_channel = 16;
  c.row_bytes = 1024;
  c.timings = {14.0, 14.0, 14.0, 33.0};
  c.energy = {1.2, 0.8, 1.0, 4000.0};
  return c;
}

}  // namespace spnerf
