// DRAM device configurations. The paper evaluates SpNeRF with
// Ramulator-derived LPDDR4-3200 timing/power (59.7 GB/s); RT-NeRF.Edge uses
// LPDDR4-1600 (17 GB/s). Timing parameters follow JEDEC-class datasheet
// values; energy parameters use the per-operation figures commonly used in
// accelerator papers for LPDDR4-class parts.
#pragma once

#include <string>

#include "common/types.hpp"

namespace spnerf {

struct DramTimings {
  double t_rcd_ns = 18.0;  // row-to-column delay
  double t_rp_ns = 18.0;   // row precharge
  double t_cl_ns = 18.0;   // CAS latency
  double t_ras_ns = 42.0;  // row active minimum
};

struct DramEnergyParams {
  double activate_nj = 2.0;       // per row activation (ACT+PRE pair)
  double rdwr_pj_per_bit = 1.5;   // array read/write energy
  double io_pj_per_bit = 2.5;     // interface/IO energy
  double background_mw = 60.0;    // static + refresh per device
};

struct DramConfig {
  std::string name;
  double peak_bandwidth_gbps = 59.7;  // GB/s
  int channels = 4;
  int banks_per_channel = 8;
  u32 row_bytes = 2048;  // row-buffer size per bank
  DramTimings timings;
  DramEnergyParams energy;

  /// Bytes the whole device moves per nanosecond at peak.
  [[nodiscard]] double BytesPerNs() const { return peak_bandwidth_gbps; }
};

/// SpNeRF / NeuRex.Edge / Jetson XNX memory system: LPDDR4-3200, 59.7 GB/s.
DramConfig Lpddr4_3200();
/// RT-NeRF.Edge memory system: LPDDR4-1600, 17 GB/s.
DramConfig Lpddr4_1600();
/// Jetson ONX memory system: LPDDR5, 102.4 GB/s.
DramConfig Lpddr5_102();
/// A100 HBM2 (only used by the GPU roofline model): 1555 GB/s.
DramConfig Hbm2_A100();

}  // namespace spnerf
