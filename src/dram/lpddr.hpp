// Request-level LPDDR model with per-bank row-buffer state, bandwidth
// occupancy and an energy ledger. Fast substitute for Ramulator: it captures
// the behaviours the paper's evaluation depends on — row hit/miss latency,
// channel bandwidth saturation, and per-bit + per-activation energy.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "dram/dram_config.hpp"

namespace spnerf {

/// Outcome of one memory request.
struct DramAccessResult {
  Cycle issue_cycle = 0;     // when the channel accepted the request
  Cycle complete_cycle = 0;  // when the last beat arrived
  bool row_hit = false;
};

struct DramStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 bytes_read = 0;
  u64 bytes_written = 0;
  u64 row_hits = 0;
  u64 row_misses = 0;

  double activate_energy_j = 0.0;
  double rdwr_energy_j = 0.0;
  double io_energy_j = 0.0;

  [[nodiscard]] u64 TotalBytes() const { return bytes_read + bytes_written; }
  [[nodiscard]] double RowHitRate() const {
    const u64 total = row_hits + row_misses;
    return total ? static_cast<double>(row_hits) / static_cast<double>(total)
                 : 0.0;
  }
  /// Dynamic energy only; background power is added by the caller over the
  /// simulated wall-clock.
  [[nodiscard]] double DynamicEnergyJ() const {
    return activate_energy_j + rdwr_energy_j + io_energy_j;
  }
};

/// One memory device (all channels). Cycle domain: the accelerator's 1 GHz
/// clock (1 cycle = 1 ns), so timing parameters in ns convert 1:1.
class LpddrModel {
 public:
  explicit LpddrModel(DramConfig config);

  [[nodiscard]] const DramConfig& Config() const { return config_; }

  /// Issues a request of `bytes` at byte address `addr` no earlier than
  /// `now`. Requests to a busy bank/channel queue behind it.
  DramAccessResult Access(u64 addr, u32 bytes, bool is_write, Cycle now);

  /// Earliest cycle at which every in-flight request has completed.
  [[nodiscard]] Cycle DrainCycle() const;

  [[nodiscard]] const DramStats& Stats() const { return stats_; }
  void ResetStats() { stats_ = DramStats{}; }

  /// Background (static + refresh) energy over a simulated duration.
  [[nodiscard]] double BackgroundEnergyJ(double seconds) const {
    return config_.energy.background_mw * 1e-3 * seconds;
  }

  /// Minimum cycles to move `bytes` at peak bandwidth (roofline floor).
  [[nodiscard]] double MinTransferCycles(u64 bytes) const {
    return static_cast<double>(bytes) / config_.BytesPerNs();
  }

 private:
  struct BankState {
    i64 open_row = -1;
    Cycle busy_until = 0;
    Cycle activate_allowed_at = 0;  // tRC spacing between activations
  };

  DramConfig config_;
  std::vector<BankState> banks_;       // channels * banks_per_channel
  std::vector<Cycle> channel_free_at_; // data-bus occupancy per channel
  DramStats stats_;
};

}  // namespace spnerf
