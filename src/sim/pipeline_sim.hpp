// Event-driven dataflow simulation of the accelerator pipeline, at sample-
// batch token granularity with explicit backpressure:
//
//   table DMA (double-buffered, per subgrid)
//        v
//   SGPU (lookup lanes)  -> bounded FIFO ->  MLP unit (systolic array)
//
// This is the fine-grained counterpart to AcceleratorSim's steady-state
// composition (frame = max(stages) + fill): here every token's start time
// honours upstream data readiness, per-subgrid table arrival, downstream
// FIFO space, and unit occupancy. The two models cross-validate each other
// the way the paper validates its simulator against RTL — see
// tests/test_pipeline_sim.cpp and bench_pipeline_validation.
#pragma once

#include "dram/lpddr.hpp"
#include "sim/systolic.hpp"
#include "sim/workload.hpp"

namespace spnerf {

struct PipelineSimConfig {
  int sgpu_lanes = 16;
  SystolicConfig systolic{};
  InputLayout input_layout = InputLayout::kBlockCirculant;
  int mlp_batch = kMlpBatch;
  /// Samples per SGPU token (one position-buffer drain).
  u64 batch_samples = 64;
  /// SGPU -> MLP FIFO depth, in MLP batches.
  std::size_t fifo_depth = 8;
  DramConfig dram = Lpddr4_3200();
  u32 dma_burst_bytes = 256;
};

struct StageActivity {
  u64 tokens = 0;
  u64 busy_cycles = 0;
  Cycle first_start = 0;
  Cycle last_finish = 0;

  [[nodiscard]] double BusyFraction(Cycle frame) const {
    return frame ? static_cast<double>(busy_cycles) / static_cast<double>(frame)
                 : 0.0;
  }
};

struct PipelineSimResult {
  Cycle frame_cycles = 0;
  StageActivity sgpu;
  StageActivity mlp;
  u64 dma_bytes = 0;
  Cycle last_table_ready = 0;
  /// Cycles MLP batches waited on upstream evals (starvation) and SGPU
  /// tokens waited on downstream FIFO space (backpressure).
  u64 mlp_starve_cycles = 0;
  u64 sgpu_backpressure_cycles = 0;
};

class PipelineSim {
 public:
  explicit PipelineSim(PipelineSimConfig config = {});

  [[nodiscard]] const PipelineSimConfig& Config() const { return config_; }

  /// Simulates one frame of the workload token-by-token.
  [[nodiscard]] PipelineSimResult Run(const FrameWorkload& workload) const;

 private:
  PipelineSimConfig config_;
};

}  // namespace spnerf
