#include "sim/input_buffer.hpp"

#include "common/error.hpp"

namespace spnerf {
namespace {

constexpr int kNaivePadded = 64;  // pad to the systolic input dimension
constexpr int kNaiveBlocks = kNaivePadded / kInputBufBlock;  // 16

}  // namespace

BlockCirculantBuffer::BlockCirculantBuffer(int capacity_vectors,
                                           InputLayout layout)
    : capacity_(capacity_vectors), layout_(layout) {
  SPNERF_CHECK_MSG(capacity_vectors > 0, "buffer capacity must be positive");
  // Rows per bank: block-circulant stores one block per vector per bank;
  // padded-naive needs two rows per vector in some banks.
  const int rows = layout == InputLayout::kBlockCirculant
                       ? capacity_vectors
                       : capacity_vectors * 2;
  banks_.assign(kInputBufBanks,
                std::vector<Slot>(static_cast<std::size_t>(rows) *
                                  kInputBufBlock));
}

int BlockCirculantBuffer::BankOfBlock(int v_idx, int block) const {
  if (layout_ == InputLayout::kBlockCirculant) {
    // Fig 5: adjacent blocks in neighbouring banks, rotated per vector so
    // vector v starts at bank v % 10.
    return (block + v_idx) % kInputBufBanks;
  }
  return block % kInputBufBanks;
}

void BlockCirculantBuffer::WriteVector(
    int v_idx, const std::array<float, kMlpInputDim>& values) {
  SPNERF_CHECK_MSG(v_idx >= 0 && v_idx < capacity_,
                   "vector index out of range: " << v_idx);
  const int blocks = layout_ == InputLayout::kBlockCirculant
                         ? kInputBufBanks
                         : kNaiveBlocks;
  for (int b = 0; b < blocks; ++b) {
    const int bank = BankOfBlock(v_idx, b);
    const int row = layout_ == InputLayout::kBlockCirculant
                        ? v_idx
                        : v_idx * 2 + b / kInputBufBanks;
    for (int lane = 0; lane < kInputBufBlock; ++lane) {
      const int elem = b * kInputBufBlock + lane;
      Slot& slot = banks_[static_cast<std::size_t>(bank)]
                         [static_cast<std::size_t>(row) * kInputBufBlock +
                          static_cast<std::size_t>(lane)];
      slot.value = elem < kMlpInputDim ? values[static_cast<std::size_t>(elem)]
                                       : 0.0f;  // zero padding
      slot.valid = true;
    }
  }
}

std::array<float, kMlpInputDim> BlockCirculantBuffer::ReadVector(
    int v_idx) const {
  SPNERF_CHECK_MSG(v_idx >= 0 && v_idx < capacity_,
                   "vector index out of range: " << v_idx);
  std::array<float, kMlpInputDim> out{};
  const int blocks = layout_ == InputLayout::kBlockCirculant
                         ? kInputBufBanks
                         : kNaiveBlocks;
  for (int b = 0; b < blocks; ++b) {
    const int bank = BankOfBlock(v_idx, b);  // the read-side block shift
    const int row = layout_ == InputLayout::kBlockCirculant
                        ? v_idx
                        : v_idx * 2 + b / kInputBufBanks;
    for (int lane = 0; lane < kInputBufBlock; ++lane) {
      const int elem = b * kInputBufBlock + lane;
      if (elem >= kMlpInputDim) continue;
      const Slot& slot = banks_[static_cast<std::size_t>(bank)]
                               [static_cast<std::size_t>(row) * kInputBufBlock +
                                static_cast<std::size_t>(lane)];
      SPNERF_CHECK_MSG(slot.valid, "reading unwritten input-buffer slot");
      out[static_cast<std::size_t>(elem)] = slot.value;
    }
  }
  return out;
}

std::vector<int> BlockCirculantBuffer::WriteBanksOf(int v_idx) const {
  std::vector<int> banks;
  const int blocks = layout_ == InputLayout::kBlockCirculant
                         ? kInputBufBanks
                         : kNaiveBlocks;
  banks.reserve(static_cast<std::size_t>(blocks));
  for (int b = 0; b < blocks; ++b) banks.push_back(BankOfBlock(v_idx, b));
  return banks;
}

int BlockCirculantBuffer::ReadCyclesPerVector() const {
  if (layout_ == InputLayout::kBlockCirculant) return 1;
  // 16 blocks over 10 banks: two bank cycles.
  return (kNaiveBlocks + kInputBufBanks - 1) / kInputBufBanks;
}

u64 BlockCirculantBuffer::BytesPerVector() const {
  const int padded =
      layout_ == InputLayout::kBlockCirculant ? kInputVectorPadded : kNaivePadded;
  return static_cast<u64>(padded) * 2;  // FP16
}

}  // namespace spnerf
