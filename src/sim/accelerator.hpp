// SpNeRF accelerator cycle-level simulator (paper Fig 4): position buffer ->
// GID -> HMU/BLU -> TIU -> block-circulant input buffer -> output-stationary
// systolic MLP, all double-buffered and fully pipelined at 1 GHz, with a
// bank-accurate LPDDR4 model serving table/bitmap streaming and on-demand
// true-voxel-grid fetches.
//
// Granularity: unit timing (SGPU lanes, systolic tiling, DRAM bank/bus
// occupancy) is cycle-accurate; pipeline composition uses steady-state
// overlap (frame time = slowest stage + fill/drain), which the paper's fully
// pipelined, double-buffered design justifies.
#pragma once

#include <string>

#include "dram/lpddr.hpp"
#include "model/area_model.hpp"
#include "model/power_model.hpp"
#include "sim/sgpu.hpp"
#include "sim/systolic.hpp"
#include "sim/workload.hpp"

namespace spnerf {

struct AcceleratorConfig {
  double clock_ghz = 1.0;  // paper: 1 GHz operating clock
  HardwareInventory inventory = DefaultInventory();
  SystolicConfig systolic{};  // 64x64 by default
  InputLayout input_layout = InputLayout::kBlockCirculant;
  int mlp_batch = kMlpBatch;
  DramConfig dram = Lpddr4_3200();
  /// Hit rate of the on-chip true-voxel-grid cache (192 KB holds the hot
  /// working set of kept voxels along the current subgrid).
  double true_grid_cache_hit = 0.75;
  u32 dma_burst_bytes = 256;
  /// Constant controller/NoC/activation power while rendering.
  double other_power_w = 0.50;
  u64 seed = 7;  // for true-grid fetch address sampling
};

struct SimResult {
  std::string scene;
  u64 frame_cycles = 0;
  double frame_seconds = 0.0;
  double fps = 0.0;

  u64 sgpu_cycles = 0;
  u64 mlp_cycles = 0;
  u64 dram_cycles = 0;
  u64 fill_cycles = 0;
  std::string bottleneck;

  double sgpu_lane_utilization = 0.0;
  double systolic_utilization = 0.0;

  SgpuActivity activity;
  DramStats dram;
  EnergyLedger ledger;       // per frame
  AreaBreakdown area;
  PowerBreakdown power;      // at the achieved fps
};

class AcceleratorSim {
 public:
  explicit AcceleratorSim(AcceleratorConfig config = {});

  [[nodiscard]] const AcceleratorConfig& Config() const { return config_; }

  /// Simulates one frame of the given workload.
  [[nodiscard]] SimResult SimulateFrame(const FrameWorkload& workload) const;

 private:
  AcceleratorConfig config_;
};

}  // namespace spnerf
