// Block-circulant MLP input buffer (paper Fig 5). The 39x1 interpolation
// output (padded to 40) is split into 10 blocks of 4 elements; block b of
// vector v is written to bank (b + v) % 10, so all 10 banks are touched
// exactly once per vector and a whole vector is read in a single cycle, with
// shift logic rotating the banks' outputs back into order.
//
// The ablation alternative (kPaddedNaive) pads each vector to the systolic
// array input dimension (64) and stores it bank-aligned without rotation:
// 1.6x the SRAM footprint and 2 read cycles per vector.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"

namespace spnerf {

enum class InputLayout {
  kBlockCirculant,  // paper Fig 5
  kPaddedNaive,     // ablation baseline
};

inline constexpr int kInputBufBanks = 10;
inline constexpr int kInputBufBlock = 4;  // elements per block
inline constexpr int kInputVectorPadded =
    kInputBufBanks * kInputBufBlock;  // 40

/// Functional + timing model of the input buffer for one batch of vectors.
class BlockCirculantBuffer {
 public:
  /// `capacity_vectors` per buffer half (the hardware double-buffers).
  explicit BlockCirculantBuffer(int capacity_vectors,
                                InputLayout layout = InputLayout::kBlockCirculant);

  [[nodiscard]] InputLayout Layout() const { return layout_; }
  [[nodiscard]] int CapacityVectors() const { return capacity_; }

  /// Writes vector `v_idx` (39 elements; element 39 is zero-padded).
  void WriteVector(int v_idx, const std::array<float, kMlpInputDim>& values);

  /// Reads vector `v_idx` back in order (exercises the shift logic).
  [[nodiscard]] std::array<float, kMlpInputDim> ReadVector(int v_idx) const;

  /// Banks touched by writing one vector; the block-circulant layout makes
  /// this a permutation of all banks (no conflicts).
  [[nodiscard]] std::vector<int> WriteBanksOf(int v_idx) const;

  /// Read cycles per vector: 1 for block-circulant, 2 for the padded-naive
  /// layout (64 elements / 40 bank-width).
  [[nodiscard]] int ReadCyclesPerVector() const;

  /// Buffer bytes per stored vector (FP16): 80 (block-circulant) or 128.
  [[nodiscard]] u64 BytesPerVector() const;

  /// Total feed cycles for a batch of `n` vectors.
  [[nodiscard]] u64 FeedCycles(u64 n) const {
    return n * static_cast<u64>(ReadCyclesPerVector());
  }

 private:
  struct Slot {
    float value = 0.0f;
    bool valid = false;
  };

  [[nodiscard]] int BankOfBlock(int v_idx, int block) const;

  int capacity_;
  InputLayout layout_;
  // banks_[bank][row * kInputBufBlock + lane]
  std::vector<std::vector<Slot>> banks_;
};

}  // namespace spnerf
