#include "sim/sgpu.hpp"

#include "common/error.hpp"

namespace spnerf {

SgpuModel::SgpuModel(int lanes) : lanes_(lanes) {
  SPNERF_CHECK_MSG(lanes > 0, "SGPU needs at least one lane");
}

SgpuTiming SgpuModel::Time(const SgpuActivity& activity) const {
  const u64 work = activity.vertex_lookups + activity.coarse_skip_probes;
  SgpuTiming t;
  t.cycles = (work + static_cast<u64>(lanes_) - 1) /
             static_cast<u64>(lanes_);
  t.lane_utilization =
      t.cycles ? static_cast<double>(work) /
                     (static_cast<double>(t.cycles) * lanes_)
               : 0.0;
  return t;
}

double SgpuModel::LogicEnergyJ(const SgpuActivity& activity,
                               const Tech28& tech) const {
  double pj = 0.0;
  // GID: Eq. (2) weight computation — 6 FP16 mul/sub pairs per sample, plus
  // ceil/round logic (counted within the ALU figure).
  pj += static_cast<double>(activity.samples) * 6.0 * tech.fp16_mul_pj;
  // Density interpolation runs for every sample (alpha is needed before the
  // feature path is gated): 8 FP16 FMAs per sample.
  pj += static_cast<double>(activity.samples) * 8.0 * tech.fp16_mac_pj;
  // BLU probes: every vertex lookup and every coarse skip touches one bit.
  pj += static_cast<double>(activity.vertex_lookups +
                            activity.coarse_skip_probes) *
        tech.bit_probe_pj;
  // HMU: Eq. (1) hash per non-masked lookup.
  pj += static_cast<double>(activity.hash_lookups) * tech.hash_unit_pj;
  // TIU: 13 FP16 FMAs (12 feature channels + density) per contributing
  // vertex, 8 vertices per interpolated sample, plus INT8 de-quantisation.
  pj += static_cast<double>(activity.interpolated_samples) * 8.0 *
        (13.0 * tech.fp16_mac_pj + 13.0 * tech.int8_op_pj);
  return pj * 1e-12;
}

}  // namespace spnerf
