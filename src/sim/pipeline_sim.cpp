#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/error.hpp"

namespace spnerf {

PipelineSim::PipelineSim(PipelineSimConfig config) : config_(config) {
  SPNERF_CHECK_MSG(config.sgpu_lanes > 0, "lanes must be positive");
  SPNERF_CHECK_MSG(config.batch_samples > 0, "batch_samples must be positive");
  SPNERF_CHECK_MSG(config.fifo_depth > 0, "fifo_depth must be positive");
}

PipelineSimResult PipelineSim::Run(const FrameWorkload& w) const {
  SPNERF_CHECK_MSG(w.samples > 0 && w.rays > 0, "empty workload");
  PipelineSimResult r;

  // ---- 1. Table DMA schedule: double-buffered per-subgrid streaming. ----
  // DMA for subgrid k may start once the buffer half used by subgrid k-2 is
  // free, i.e. once the SGPU begins processing subgrid k-1. We approximate
  // buffer release with the DMA-chain ordering (the SGPU is never the
  // laggard at the design point; cross-validated against AcceleratorSim).
  const int subgrids = std::max(1, w.subgrid_count);
  const u64 slice_bytes =
      (w.table_bytes + w.bitmap_bytes) / static_cast<u64>(subgrids);
  LpddrModel dram(config_.dram);
  std::vector<Cycle> table_ready(static_cast<std::size_t>(subgrids), 0);
  {
    u64 addr = 0;
    for (int k = 0; k < subgrids; ++k) {
      Cycle done = 0;
      for (u64 off = 0; off < slice_bytes; off += config_.dma_burst_bytes) {
        const u32 chunk = static_cast<u32>(
            std::min<u64>(config_.dma_burst_bytes, slice_bytes - off));
        done = dram.Access(addr + off, chunk, false, 0).complete_cycle;
      }
      addr += slice_bytes;
      table_ready[static_cast<std::size_t>(k)] = done;
      r.dma_bytes += slice_bytes;
    }
    r.last_table_ready = table_ready.empty() ? 0 : table_ready.back();
  }

  // ---- 2. Token streams. ----
  // Samples are spread uniformly across subgrids (rays traverse the x range);
  // each SGPU token covers `batch_samples` samples and yields a
  // proportional share of MLP evaluations.
  const u64 n_tokens =
      (w.samples + config_.batch_samples - 1) / config_.batch_samples;
  const double evals_per_token =
      static_cast<double>(w.mlp_evals) / static_cast<double>(n_tokens);
  const u64 skip_probes_per_token =
      w.coarse_skips / std::max<u64>(1, n_tokens);

  const u64 lookups_per_token = config_.batch_samples * 8;
  const u64 sgpu_service =
      (lookups_per_token + skip_probes_per_token +
       static_cast<u64>(config_.sgpu_lanes) - 1) /
      static_cast<u64>(config_.sgpu_lanes);

  const SystolicArray array(config_.systolic);
  const u64 mlp_service =
      array.CyclesPerMlpBatch(config_.mlp_batch, config_.input_layout);

  // ---- 3. Dataflow loop with bounded FIFO backpressure. ----
  // fifo_pop_times holds the start cycles of the most recent MLP batches;
  // an SGPU token may only finish into the FIFO if fewer than fifo_depth
  // batches are waiting.
  Cycle sgpu_free = 0;
  Cycle mlp_free = 0;
  double evals_accumulated = 0.0;
  u64 mlp_batches_launched = 0;
  std::deque<Cycle> fifo_entries;  // finish times of tokens waiting in FIFO

  const u64 tokens_per_subgrid =
      (n_tokens + static_cast<u64>(subgrids) - 1) / static_cast<u64>(subgrids);

  for (u64 t = 0; t < n_tokens; ++t) {
    const int subgrid = static_cast<int>(
        std::min<u64>(t / std::max<u64>(1, tokens_per_subgrid),
                      static_cast<u64>(subgrids - 1)));

    // SGPU start: unit free, this subgrid's table resident, FIFO not full.
    Cycle start = std::max(sgpu_free,
                           table_ready[static_cast<std::size_t>(subgrid)]);
    if (fifo_entries.size() >=
        config_.fifo_depth * static_cast<std::size_t>(config_.mlp_batch) /
            std::max<u64>(1, config_.batch_samples)) {
      // FIFO full: wait until the MLP drains one entry.
      const Cycle drained = fifo_entries.front();
      if (drained > start) {
        r.sgpu_backpressure_cycles += drained - start;
        start = drained;
      }
      fifo_entries.pop_front();
    }
    const Cycle finish = start + sgpu_service;
    sgpu_free = finish;
    r.sgpu.busy_cycles += sgpu_service;
    if (r.sgpu.tokens == 0) r.sgpu.first_start = start;
    r.sgpu.last_finish = finish;
    ++r.sgpu.tokens;

    // Evals produced by this token feed the MLP accumulator.
    evals_accumulated += evals_per_token;
    while (evals_accumulated >=
           static_cast<double>((mlp_batches_launched + 1) *
                               static_cast<u64>(config_.mlp_batch))) {
      // The batch is data-ready when this token finishes.
      Cycle mlp_start = std::max(mlp_free, finish);
      if (mlp_start > mlp_free) r.mlp_starve_cycles += mlp_start - mlp_free;
      const Cycle mlp_finish = mlp_start + mlp_service;
      mlp_free = mlp_finish;
      r.mlp.busy_cycles += mlp_service;
      if (r.mlp.tokens == 0) r.mlp.first_start = mlp_start;
      r.mlp.last_finish = mlp_finish;
      ++r.mlp.tokens;
      ++mlp_batches_launched;
      fifo_entries.push_back(mlp_finish);
      if (fifo_entries.size() > config_.fifo_depth) fifo_entries.pop_front();
    }
  }

  // Flush the final partial MLP batch.
  if (evals_accumulated >
      static_cast<double>(mlp_batches_launched *
                          static_cast<u64>(config_.mlp_batch))) {
    const Cycle mlp_start = std::max(mlp_free, sgpu_free);
    mlp_free = mlp_start + mlp_service;
    r.mlp.busy_cycles += mlp_service;
    r.mlp.last_finish = mlp_free;
    ++r.mlp.tokens;
  }

  r.frame_cycles = std::max({sgpu_free, mlp_free, r.last_table_ready});
  return r;
}

}  // namespace spnerf
