#include "sim/workload.hpp"

#include <cmath>

#include "common/error.hpp"

namespace spnerf {
namespace {

u64 ScaleCount(u64 tile_count, double ray_scale) {
  return static_cast<u64>(std::llround(static_cast<double>(tile_count) *
                                       ray_scale));
}

}  // namespace

FrameWorkload BuildFrameWorkload(const SpNeRFModel& model,
                                 const RenderStats& tile_stats,
                                 const DecodeCounters& tile_counters,
                                 const std::string& scene_name, int width,
                                 int height) {
  SPNERF_CHECK_MSG(tile_stats.rays > 0, "tile statistics are empty");
  FrameWorkload w;
  w.scene = scene_name;
  w.width = width;
  w.height = height;
  w.rays = static_cast<u64>(width) * static_cast<u64>(height);

  const double scale = static_cast<double>(w.rays) /
                       static_cast<double>(tile_stats.rays);
  w.samples = ScaleCount(tile_stats.steps, scale);
  w.coarse_skips = ScaleCount(tile_stats.coarse_skips, scale);
  w.mlp_evals = ScaleCount(tile_stats.mlp_evals, scale);

  w.table_bytes = model.HashTableBytes();
  w.bitmap_bytes = model.BitmapBytes();
  w.codebook_bytes = model.CodebookBytes();
  w.true_grid_bytes = model.TrueGridBytes();
  w.weight_bytes = Mlp::WeightBytesFp16() / 2;  // INT8 weight buffer
  w.subgrid_count = model.Params().subgrid_count;

  if (tile_counters.queries > 0) {
    const auto q = static_cast<double>(tile_counters.queries);
    w.bitmap_zero_frac = static_cast<double>(tile_counters.bitmap_zero) / q;
    w.codebook_frac = static_cast<double>(tile_counters.codebook_hits) / q;
    w.true_grid_frac = static_cast<double>(tile_counters.true_grid_hits) / q;
  }
  return w;
}

GpuFrameWorkload BuildGpuWorkload(const VqrfModel& vqrf,
                                  const RenderStats& tile_stats, int width,
                                  int height) {
  SPNERF_CHECK_MSG(tile_stats.rays > 0, "tile statistics are empty");
  GpuFrameWorkload w;
  w.rays = static_cast<u64>(width) * static_cast<u64>(height);
  const double scale =
      static_cast<double>(w.rays) / static_cast<double>(tile_stats.rays);
  w.samples = ScaleCount(tile_stats.steps, scale);
  w.mlp_evals = ScaleCount(tile_stats.mlp_evals, scale);
  w.restored_grid_bytes = vqrf.RestoredBytes();
  w.compressed_bytes = vqrf.CompressedBytes();
  return w;
}

}  // namespace spnerf
