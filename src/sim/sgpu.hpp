// Sparse Grid Processing Unit model (paper IV-B): GID, BLU, HMU and TIU as
// parallel lookup lanes. Functional decode lives in encoding/; this model
// charges cycles and energy for the exact per-vertex unit activity the
// decode counters report.
#pragma once

#include "common/types.hpp"
#include "model/power_model.hpp"
#include "model/tech28.hpp"

namespace spnerf {

/// Per-frame SGPU activity (scaled from decode/render counters).
struct SgpuActivity {
  u64 samples = 0;            // interpolated sample points
  u64 coarse_skip_probes = 0; // bitmap-only probes on skipped supervoxels
  u64 vertex_lookups = 0;     // 8 per sample
  u64 bitmap_zero = 0;        // lookups answered by the bitmap alone
  u64 hash_lookups = 0;       // lookups that proceeded to the HMU
  u64 codebook_fetches = 0;
  u64 true_grid_fetches = 0;
  u64 interpolated_samples = 0;  // samples whose TIU accumulation ran
};

struct SgpuTiming {
  u64 cycles = 0;
  double lane_utilization = 0.0;
};

class SgpuModel {
 public:
  explicit SgpuModel(int lanes);

  [[nodiscard]] int Lanes() const { return lanes_; }

  /// Pipeline cycles to process a frame's activity: each lane retires one
  /// vertex lookup (or skip probe) per cycle, fully pipelined.
  [[nodiscard]] SgpuTiming Time(const SgpuActivity& activity) const;

  /// Datapath energy (GID weight ALUs + hash units + bitmap probes + TIU
  /// FMAs + INT8 de-quantisation), excluding SRAM access energy which is
  /// accounted by the buffer models.
  [[nodiscard]] double LogicEnergyJ(const SgpuActivity& activity,
                                    const Tech28& tech) const;

 private:
  int lanes_;
};

}  // namespace spnerf
