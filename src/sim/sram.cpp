#include "sim/sram.hpp"

#include "common/error.hpp"

namespace spnerf {

SramModel::SramModel(std::string name, u64 bytes)
    : name_(std::move(name)), bytes_(bytes) {
  SPNERF_CHECK_MSG(bytes > 0, "SRAM capacity must be positive");
}

}  // namespace spnerf
