#include "sim/systolic.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spnerf {

SystolicArray::SystolicArray(SystolicConfig config) : config_(config) {
  SPNERF_CHECK_MSG(config.rows > 0 && config.cols > 0,
                   "systolic array dims must be positive");
}

LayerTiming SystolicArray::TimeGemm(int m, int k, int n) const {
  SPNERF_CHECK_MSG(m > 0 && k > 0 && n > 0, "GEMM dims must be positive");
  const int tiles_m = (m + config_.rows - 1) / config_.rows;
  const int tiles_n = (n + config_.cols - 1) / config_.cols;
  const u64 tiles = static_cast<u64>(tiles_m) * static_cast<u64>(tiles_n);
  LayerTiming t;
  t.cycles = tiles * (static_cast<u64>(k) +
                      static_cast<u64>(config_.tile_overhead_cycles));
  t.macs = static_cast<u64>(m) * static_cast<u64>(k) * static_cast<u64>(n);
  const double capacity = static_cast<double>(t.cycles) * config_.rows *
                          static_cast<double>(config_.cols);
  t.utilization = capacity > 0 ? static_cast<double>(t.macs) / capacity : 0.0;
  return t;
}

u64 SystolicArray::CyclesPerMlpBatch(int batch, InputLayout layout) const {
  const u64 compute = TimeGemm(batch, kMlpInputDim, kMlpHiddenDim).cycles +
                      TimeGemm(batch, kMlpHiddenDim, kMlpHiddenDim).cycles +
                      TimeGemm(batch, kMlpHiddenDim, kMlpOutputDim).cycles;
  const BlockCirculantBuffer buf(batch, layout);
  const u64 feed = buf.FeedCycles(static_cast<u64>(batch));
  return std::max(compute, feed);
}

std::vector<float> SystolicArray::ComputeLayerFp16(
    const std::vector<float>& in, int m, int k, const std::vector<float>& w,
    const std::vector<float>& bias, int n, bool relu) {
  SPNERF_CHECK_MSG(in.size() == static_cast<std::size_t>(m) * k,
                   "input shape mismatch");
  SPNERF_CHECK_MSG(w.size() == static_cast<std::size_t>(n) * k,
                   "weight shape mismatch");
  SPNERF_CHECK_MSG(bias.size() == static_cast<std::size_t>(n),
                   "bias shape mismatch");
  std::vector<float> out(static_cast<std::size_t>(m) * n);
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < n; ++c) {
      Half acc(bias[static_cast<std::size_t>(c)]);
      const float* wrow = &w[static_cast<std::size_t>(c) * k];
      const float* irow = &in[static_cast<std::size_t>(r) * k];
      for (int i = 0; i < k; ++i) {
        acc = Half::Fma(Half(wrow[i]), Half(irow[i]), acc);
      }
      float v = acc.ToFloat();
      if (relu && v < 0.0f) v = 0.0f;
      out[static_cast<std::size_t>(r) * n + c] = v;
    }
  }
  return out;
}

}  // namespace spnerf
