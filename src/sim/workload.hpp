// Frame workload construction: the renderer is run on a representative tile
// (same optics, smaller raster), and its measured per-ray statistics are
// scaled to the full frame the accelerator is evaluated on (800x800, as for
// Synthetic-NeRF). Data-structure sizes come from the actual SpNeRF model.
#pragma once

#include <string>

#include "common/types.hpp"
#include "encoding/spnerf_codec.hpp"
#include "model/gpu_roofline.hpp"
#include "render/mlp.hpp"
#include "render/volume_renderer.hpp"

namespace spnerf {

struct FrameWorkload {
  std::string scene;
  int width = 800;
  int height = 800;

  u64 rays = 0;
  u64 samples = 0;       // fine samples (8 vertex lookups each)
  u64 coarse_skips = 0;  // bitmap-only supervoxel probes
  u64 mlp_evals = 0;

  // Resident data-structure sizes (from the SpNeRF model).
  u64 table_bytes = 0;
  u64 bitmap_bytes = 0;
  u64 codebook_bytes = 0;
  u64 true_grid_bytes = 0;
  u64 weight_bytes = 0;
  int subgrid_count = 0;

  // Decode mix, as fractions of vertex lookups.
  double bitmap_zero_frac = 0.0;
  double codebook_frac = 0.0;
  double true_grid_frac = 0.0;

  [[nodiscard]] u64 VertexLookups() const { return samples * 8; }
  [[nodiscard]] u64 OutputBytes() const { return rays * 3; }  // RGB8 frame
};

/// Scales tile-render statistics to a `width` x `height` frame.
FrameWorkload BuildFrameWorkload(const SpNeRFModel& model,
                                 const RenderStats& tile_stats,
                                 const DecodeCounters& tile_counters,
                                 const std::string& scene_name,
                                 int width = 800, int height = 800);

/// Same scaling for the VQRF-on-GPU roofline model.
GpuFrameWorkload BuildGpuWorkload(const VqrfModel& vqrf,
                                  const RenderStats& tile_stats,
                                  int width = 800, int height = 800);

}  // namespace spnerf
