// On-chip SRAM macro model: access counting plus tech-derived energy. All
// accelerator buffers are instances of this; the double-buffering flag only
// affects capacity/area, not per-access energy.
#pragma once

#include <string>

#include "common/types.hpp"
#include "model/tech28.hpp"

namespace spnerf {

class SramModel {
 public:
  SramModel() = default;
  SramModel(std::string name, u64 bytes);

  [[nodiscard]] const std::string& Name() const { return name_; }
  [[nodiscard]] u64 CapacityBytes() const { return bytes_; }

  void Read(u64 bytes, u64 times = 1) {
    reads_ += times;
    bytes_read_ += bytes * times;
  }
  void Write(u64 bytes, u64 times = 1) {
    writes_ += times;
    bytes_written_ += bytes * times;
  }

  [[nodiscard]] u64 Reads() const { return reads_; }
  [[nodiscard]] u64 Writes() const { return writes_; }
  [[nodiscard]] u64 BytesRead() const { return bytes_read_; }
  [[nodiscard]] u64 BytesWritten() const { return bytes_written_; }

  [[nodiscard]] double EnergyJ(const Tech28& tech) const {
    return (static_cast<double>(bytes_read_) * tech.SramReadPjPerByte(bytes_) +
            static_cast<double>(bytes_written_) *
                tech.SramWritePjPerByte(bytes_)) *
           1e-12;
  }

  void ResetCounters() {
    reads_ = writes_ = bytes_read_ = bytes_written_ = 0;
  }

 private:
  std::string name_;
  u64 bytes_ = 0;
  u64 reads_ = 0;
  u64 writes_ = 0;
  u64 bytes_read_ = 0;
  u64 bytes_written_ = 0;
};

}  // namespace spnerf
