// Bounded FIFO with occupancy/stall accounting, used by pipeline stages of
// the accelerator simulator and its tests.
#pragma once

#include <deque>

#include "common/error.hpp"
#include "common/types.hpp"

namespace spnerf {

template <typename T>
class BoundedFifo {
 public:
  explicit BoundedFifo(std::size_t capacity) : capacity_(capacity) {
    SPNERF_CHECK_MSG(capacity > 0, "FIFO capacity must be positive");
  }

  [[nodiscard]] bool Full() const { return items_.size() >= capacity_; }
  [[nodiscard]] bool Empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t Size() const { return items_.size(); }
  [[nodiscard]] std::size_t Capacity() const { return capacity_; }

  /// Returns false (and counts a stall) when full.
  bool TryPush(T value) {
    if (Full()) {
      ++push_stalls_;
      return false;
    }
    items_.push_back(std::move(value));
    max_occupancy_ = std::max(max_occupancy_, items_.size());
    ++pushes_;
    return true;
  }

  /// Returns false (and counts a stall) when empty.
  bool TryPop(T& out) {
    if (Empty()) {
      ++pop_stalls_;
      return false;
    }
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  [[nodiscard]] const T& Front() const {
    SPNERF_CHECK_MSG(!Empty(), "Front() on empty FIFO");
    return items_.front();
  }

  [[nodiscard]] u64 Pushes() const { return pushes_; }
  [[nodiscard]] u64 PushStalls() const { return push_stalls_; }
  [[nodiscard]] u64 PopStalls() const { return pop_stalls_; }
  [[nodiscard]] std::size_t MaxOccupancy() const { return max_occupancy_; }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  u64 pushes_ = 0;
  u64 push_stalls_ = 0;
  u64 pop_stalls_ = 0;
  std::size_t max_occupancy_ = 0;
};

}  // namespace spnerf
