#include "sim/accelerator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "render/mlp.hpp"
#include "sim/sram.hpp"

namespace spnerf {
namespace {

/// Streams `bytes` sequentially starting at `base` through the DRAM model.
void StreamDma(LpddrModel& dram, u64 base, u64 bytes, u32 burst, bool write,
               Cycle now) {
  for (u64 off = 0; off < bytes; off += burst) {
    const u32 chunk = static_cast<u32>(std::min<u64>(burst, bytes - off));
    dram.Access(base + off, chunk, write, now);
  }
}

}  // namespace

AcceleratorSim::AcceleratorSim(AcceleratorConfig config)
    : config_(std::move(config)) {
  SPNERF_CHECK_MSG(config_.clock_ghz > 0, "clock must be positive");
  SPNERF_CHECK_MSG(config_.mlp_batch > 0, "batch must be positive");
}

SimResult AcceleratorSim::SimulateFrame(const FrameWorkload& w) const {
  SPNERF_CHECK_MSG(w.rays > 0 && w.samples > 0, "empty frame workload");
  const Tech28& tech = DefaultTech28();

  SimResult r;
  r.scene = w.scene;

  // ---------------- SGPU activity & timing ----------------
  SgpuActivity act;
  act.samples = w.samples;
  act.coarse_skip_probes = w.coarse_skips;
  act.vertex_lookups = w.VertexLookups();
  act.bitmap_zero =
      static_cast<u64>(w.bitmap_zero_frac * static_cast<double>(act.vertex_lookups));
  act.hash_lookups = act.vertex_lookups - act.bitmap_zero;
  act.codebook_fetches =
      static_cast<u64>(w.codebook_frac * static_cast<double>(act.vertex_lookups));
  act.true_grid_fetches =
      static_cast<u64>(w.true_grid_frac * static_cast<double>(act.vertex_lookups));
  act.interpolated_samples = w.mlp_evals;
  r.activity = act;

  const SgpuModel sgpu(config_.inventory.sgpu_lanes);
  const SgpuTiming sgpu_time = sgpu.Time(act);
  r.sgpu_cycles = sgpu_time.cycles;
  r.sgpu_lane_utilization = sgpu_time.lane_utilization;

  // ---------------- MLP unit timing ----------------
  const SystolicArray array(config_.systolic);
  const u64 batches =
      (w.mlp_evals + static_cast<u64>(config_.mlp_batch) - 1) /
      static_cast<u64>(config_.mlp_batch);
  const u64 cycles_per_batch =
      array.CyclesPerMlpBatch(config_.mlp_batch, config_.input_layout);
  r.mlp_cycles = batches * cycles_per_batch;
  {
    const u64 useful_macs = w.mlp_evals * Mlp::MacsPerSample();
    const double capacity = static_cast<double>(r.mlp_cycles) *
                            config_.systolic.rows * config_.systolic.cols;
    r.systolic_utilization =
        capacity > 0 ? static_cast<double>(useful_macs) / capacity : 0.0;
  }

  // ---------------- DRAM traffic ----------------
  LpddrModel dram(config_.dram);
  // Address map regions (byte offsets in device space).
  const u64 kTableBase = 0;
  const u64 kBitmapBase = kTableBase + w.table_bytes;
  const u64 kCodebookBase = kBitmapBase + w.bitmap_bytes;
  const u64 kWeightBase = kCodebookBase + w.codebook_bytes;
  const u64 kTrueGridBase = kWeightBase + w.weight_bytes;
  const u64 kFrameBase = kTrueGridBase + w.true_grid_bytes;

  // Per-subgrid streaming of the hash table and bitmap slice (sequential,
  // double-buffered so it overlaps compute).
  StreamDma(dram, kTableBase, w.table_bytes, config_.dma_burst_bytes, false, 0);
  StreamDma(dram, kBitmapBase, w.bitmap_bytes, config_.dma_burst_bytes, false,
            0);
  StreamDma(dram, kCodebookBase, w.codebook_bytes, config_.dma_burst_bytes,
            false, 0);
  StreamDma(dram, kWeightBase, w.weight_bytes, config_.dma_burst_bytes, false,
            0);
  // On-demand true-grid fetches that miss the on-chip cache: 32 B random
  // accesses across the true-grid region.
  const u64 misses = static_cast<u64>(
      static_cast<double>(act.true_grid_fetches) *
      (1.0 - config_.true_grid_cache_hit));
  Rng rng(config_.seed);
  if (w.true_grid_bytes > 32) {
    for (u64 i = 0; i < misses; ++i) {
      const u64 addr =
          kTrueGridBase + (rng.NextBelow(w.true_grid_bytes - 32) & ~31ull);
      dram.Access(addr, 32, false, 0);
    }
  }
  // Rendered frame writeback.
  StreamDma(dram, kFrameBase, w.OutputBytes(), config_.dma_burst_bytes, true,
            0);
  r.dram_cycles = dram.DrainCycle();
  r.dram = dram.Stats();

  // ---------------- frame composition ----------------
  // Fill: the first subgrid's table+bitmap slice must arrive before the SGPU
  // starts, plus the pipeline depth through SGPU -> input buffer -> array.
  const u64 first_slice =
      w.subgrid_count > 0
          ? (w.table_bytes + w.bitmap_bytes) / static_cast<u64>(w.subgrid_count)
          : 0;
  const u64 fill_dma = static_cast<u64>(
      std::ceil(static_cast<double>(first_slice) / config_.dram.BytesPerNs()));
  const u64 pipeline_depth =
      64 + static_cast<u64>(config_.systolic.rows + config_.systolic.cols);
  r.fill_cycles = fill_dma + pipeline_depth;

  const u64 steady = std::max({r.sgpu_cycles, r.mlp_cycles, r.dram_cycles});
  r.frame_cycles = steady + r.fill_cycles;
  if (steady == r.mlp_cycles) {
    r.bottleneck = "mlp-systolic";
  } else if (steady == r.sgpu_cycles) {
    r.bottleneck = "sgpu";
  } else {
    r.bottleneck = "dram";
  }

  r.frame_seconds =
      static_cast<double>(r.frame_cycles) / (config_.clock_ghz * 1e9);
  r.fps = 1.0 / r.frame_seconds;

  // ---------------- energy ----------------
  EnergyLedger& e = r.ledger;
  e.systolic_j = static_cast<double>(w.mlp_evals) *
                 static_cast<double>(Mlp::MacsPerSample()) *
                 tech.fp16_mac_pj * 1e-12;
  e.sgpu_logic_j = sgpu.LogicEnergyJ(act, tech);

  // SRAM ledger via macro models.
  {
    SramModel index_density("index+density", 104 * 1024);
    SramModel bitmap("bitmap", 48 * 1024);
    SramModel codebook("codebook", 48 * 1024);
    SramModel true_cache("true-grid cache", 192 * 1024);
    SramModel position("position", 8 * 1024);
    SramModel input_buf("input buffer", 5 * 1024);
    SramModel weight_buf("weights", 44 * 1024);
    SramModel output_buf("output", 4 * 1024);

    // DMA fills (once per frame).
    index_density.Write(w.table_bytes);
    bitmap.Write(w.bitmap_bytes);
    codebook.Write(w.codebook_bytes);
    weight_buf.Write(w.weight_bytes);

    // Per-lookup activity. Hash-table entry: 26 bits ~ 4 B read granule;
    // bitmap probe reads one byte-granule.
    index_density.Read(4, act.hash_lookups);
    bitmap.Read(1, act.vertex_lookups + act.coarse_skip_probes);
    codebook.Read(kColorFeatureDim, act.codebook_fetches);
    true_cache.Read(kColorFeatureDim, act.true_grid_fetches);
    true_cache.Write(32, misses);

    // Position buffer: write+read per sample (3 x FP16).
    position.Write(6, w.samples);
    position.Read(6, w.samples);

    // MLP input buffer: one 80 B vector written and read per eval.
    const BlockCirculantBuffer ibuf(config_.mlp_batch, config_.input_layout);
    input_buf.Write(ibuf.BytesPerVector(), w.mlp_evals);
    input_buf.Read(ibuf.BytesPerVector(), w.mlp_evals);

    // Weight streaming: all INT8 weights stream through the array per batch.
    weight_buf.Read(w.weight_bytes, batches);

    // Output buffer: RGB FP16 per eval, drained once.
    output_buf.Write(6, w.mlp_evals);
    output_buf.Read(6, w.mlp_evals);

    e.sram_j = index_density.EnergyJ(tech) + bitmap.EnergyJ(tech) +
               codebook.EnergyJ(tech) + true_cache.EnergyJ(tech) +
               position.EnergyJ(tech) + input_buf.EnergyJ(tech) +
               weight_buf.EnergyJ(tech) + output_buf.EnergyJ(tech);
  }

  e.dram_dynamic_j = r.dram.DynamicEnergyJ();
  e.dram_background_j = dram.BackgroundEnergyJ(r.frame_seconds);
  e.other_j = config_.other_power_w * r.frame_seconds;

  // ---------------- area & power ----------------
  r.area = EstimateArea(config_.inventory, tech);
  r.power = EstimatePower(e, r.fps, r.area, tech);
  return r;
}

}  // namespace spnerf
