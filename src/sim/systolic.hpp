// Output-stationary systolic array model (the MLP Unit's core, paper IV-C).
// Timing: an R x C array holds an R x C output tile; operands stream through
// for K cycles per tile plus a fill/drain skew. Function: FP16 MACs in the
// same accumulation order as the renderer's ForwardFp16 path, so the
// simulator's arithmetic is bit-identical to the algorithm model.
#pragma once

#include <vector>

#include "common/half.hpp"
#include "common/types.hpp"
#include "sim/input_buffer.hpp"

namespace spnerf {

struct SystolicConfig {
  int rows = 64;
  int cols = 64;
  /// Per-tile pipeline skew charged once per tile (operand fill + partial
  /// output drain that cannot be hidden).
  int tile_overhead_cycles = 8;
};

struct LayerTiming {
  u64 cycles = 0;
  u64 macs = 0;          // useful MACs
  double utilization = 0.0;  // useful MACs / (cycles * rows * cols)
};

class SystolicArray {
 public:
  explicit SystolicArray(SystolicConfig config = {});

  [[nodiscard]] const SystolicConfig& Config() const { return config_; }

  /// Cycles/MACs to compute an [M x K] * [K x N] product.
  [[nodiscard]] LayerTiming TimeGemm(int m, int k, int n) const;

  /// Cycles for one 3-layer MLP batch (paper: 39->128->128->3, batch 64),
  /// including the input-buffer feed (overlapped: the batch takes
  /// max(feed, compute) in steady state).
  [[nodiscard]] u64 CyclesPerMlpBatch(int batch, InputLayout layout) const;

  /// Functional FP16 GEMM + bias + optional ReLU, accumulating over k in
  /// ascending order (output-stationary order). Inputs/outputs row-major.
  static std::vector<float> ComputeLayerFp16(const std::vector<float>& in,
                                             int m, int k,
                                             const std::vector<float>& w,
                                             const std::vector<float>& bias,
                                             int n, bool relu);

 private:
  SystolicConfig config_;
};

}  // namespace spnerf
