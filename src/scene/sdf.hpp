// Signed-distance primitives used to build procedural stand-ins for the
// Synthetic-NeRF scenes. Negative distance = inside. All primitives live in
// the unit cube [0,1]^3 world space.
#pragma once

#include <variant>
#include <vector>

#include "common/vec.hpp"

namespace spnerf {

struct SphereSdf {
  Vec3f center;
  float radius;
};

/// Axis-aligned box given by center and half extents, optionally rounded.
struct BoxSdf {
  Vec3f center;
  Vec3f half_extent;
  float round = 0.0f;
};

/// Capsule (line segment swept by a sphere).
struct CapsuleSdf {
  Vec3f a;
  Vec3f b;
  float radius;
};

/// Capped cylinder around the +y axis.
struct CylinderSdf {
  Vec3f center;   // mid-height center
  float radius;
  float half_height;
};

/// Torus in the xz-plane around +y through `center`.
struct TorusSdf {
  Vec3f center;
  float major_radius;
  float minor_radius;
};

/// Ellipsoid (approximate SDF, exact at axes).
struct EllipsoidSdf {
  Vec3f center;
  Vec3f radii;
};

using SdfShape = std::variant<SphereSdf, BoxSdf, CapsuleSdf, CylinderSdf,
                              TorusSdf, EllipsoidSdf>;

/// Signed distance of `p` to a shape.
float SdfEval(const SdfShape& shape, Vec3f p);

/// Conservative bounding box of a shape (used to skip voxelization work).
Aabb SdfBounds(const SdfShape& shape);

/// Exact volume of the shape where cheap (sphere/box/capsule/cylinder/
/// torus/ellipsoid all have closed forms); used by scene-design tests to
/// keep occupancy in the paper's sparsity band.
double SdfVolume(const SdfShape& shape);

}  // namespace spnerf
