#include "scene/dataset.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace spnerf {

Vec3f VoxelVertexPosition(const GridDims& dims, Vec3i v) {
  return {static_cast<float>(v.x) / static_cast<float>(dims.nx - 1),
          static_cast<float>(v.y) / static_cast<float>(dims.ny - 1),
          static_cast<float>(v.z) / static_cast<float>(dims.nz - 1)};
}

DenseGrid VoxelizeScene(const Scene& scene, const VoxelizeParams& params) {
  SPNERF_CHECK_MSG(params.resolution >= 2, "resolution must be >= 2");
  const GridDims dims{params.resolution, params.resolution, params.resolution};
  DenseGrid grid(dims);

  // Restrict the scan to the scene bounds, padded by the density band, so
  // voxelisation cost scales with occupied volume.
  Aabb bounds = scene.Bounds();
  const float pad = scene.FieldParams().density_band + 2.0f / params.resolution;
  bounds.lo -= Vec3f::Splat(pad);
  bounds.hi += Vec3f::Splat(pad);

  const auto to_cell = [&](float w, int n) {
    return std::clamp(static_cast<int>(w * static_cast<float>(n - 1)), 0, n - 1);
  };
  const Vec3i lo{to_cell(bounds.lo.x, dims.nx), to_cell(bounds.lo.y, dims.ny),
                 to_cell(bounds.lo.z, dims.nz)};
  const Vec3i hi{to_cell(bounds.hi.x, dims.nx), to_cell(bounds.hi.y, dims.ny),
                 to_cell(bounds.hi.z, dims.nz)};

  // Parallel over x-slabs: in the x-major flattening every slab writes a
  // disjoint contiguous voxel range, so any worker count produces the same
  // grid bytes (the cached-asset determinism guarantee). A cap above the
  // global pool size builds a dedicated pool — the same explicit
  // oversubscription the render engine offers for cgroup-limited
  // containers that under-report the core count.
  std::unique_ptr<ThreadPool> dedicated;
  ThreadPool* pool = nullptr;
  if (params.max_threads > ThreadPool::Global().WorkerCount()) {
    dedicated = std::make_unique<ThreadPool>(params.max_threads);
    pool = dedicated.get();
  }
  const auto slabs = static_cast<std::size_t>(hi.x - lo.x + 1);
  ParallelFor(
      slabs,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          const int x = lo.x + static_cast<int>(s);
          for (int y = lo.y; y <= hi.y; ++y) {
            for (int z = lo.z; z <= hi.z; ++z) {
              const Vec3i v{x, y, z};
              const Vec3f p = VoxelVertexPosition(dims, v);
              const float density = scene.Density(p);
              if (density <= 0.0f) continue;
              VoxelData data;
              data.density = density;
              data.features = scene.ColorFeature(p);
              grid.SetVoxel(v, data);
            }
          }
        }
      },
      params.max_threads, pool);
  return grid;
}

SceneDataset BuildDataset(SceneId id, const DatasetParams& params) {
  SceneDataset ds;
  ds.id = id;
  ds.scene = BuildScene(id);
  VoxelizeParams vp;
  vp.resolution = params.resolution_override > 0 ? params.resolution_override
                                                 : SceneDefaultResolution(id);
  vp.max_threads = params.max_threads;
  ds.full_grid = VoxelizeScene(ds.scene, vp);
  VqrfBuildParams vb = params.vqrf;
  if (vb.max_threads == 0) vb.max_threads = params.max_threads;
  ds.vqrf = std::make_shared<const VqrfModel>(VqrfModel::Build(ds.full_grid, vb));
  SPNERF_LOG_DEBUG << "dataset " << SceneName(id) << ": res " << vp.resolution
                   << ", non-zero " << ds.full_grid.CountNonZero() << " ("
                   << ds.full_grid.NonZeroFraction() * 100.0 << "%)";
  return ds;
}

}  // namespace spnerf
