#include "scene/scene_zoo.hpp"

#include <cmath>

#include "common/error.hpp"

namespace spnerf {
namespace {

Scene MakeChair() {
  std::vector<ScenePrimitive> prims;
  // Seat.
  prims.push_back({BoxSdf{{0.50f, 0.46f, 0.50f}, {0.22f, 0.02f, 0.22f}, 0.005f},
                   {0.55f, 0.35f, 0.20f},
                   0.1f});
  // Cushion.
  prims.push_back({BoxSdf{{0.50f, 0.50f, 0.50f}, {0.20f, 0.03f, 0.20f}, 0.01f},
                   {0.75f, 0.15f, 0.15f},
                   1.3f});
  // Backrest.
  prims.push_back({BoxSdf{{0.50f, 0.64f, 0.70f}, {0.22f, 0.15f, 0.02f}, 0.005f},
                   {0.55f, 0.35f, 0.20f},
                   2.2f});
  // Four legs.
  const float leg_r = 0.025f;
  const float top = 0.44f, bottom = 0.14f;
  for (int ix = 0; ix < 2; ++ix) {
    for (int iz = 0; iz < 2; ++iz) {
      const float x = ix ? 0.68f : 0.32f;
      const float z = iz ? 0.68f : 0.32f;
      prims.push_back({CapsuleSdf{{x, bottom, z}, {x, top, z}, leg_r},
                       {0.45f, 0.28f, 0.16f},
                       3.0f + static_cast<float>(ix * 2 + iz)});
    }
  }
  return Scene("chair", std::move(prims));
}

Scene MakeDrums() {
  std::vector<ScenePrimitive> prims;
  // Bass drum.
  prims.push_back({CylinderSdf{{0.50f, 0.30f, 0.46f}, 0.16f, 0.08f},
                   {0.80f, 0.10f, 0.12f},
                   0.4f});
  // Two toms.
  prims.push_back({CylinderSdf{{0.34f, 0.46f, 0.58f}, 0.12f, 0.07f},
                   {0.85f, 0.75f, 0.25f},
                   1.1f});
  prims.push_back({CylinderSdf{{0.66f, 0.46f, 0.58f}, 0.12f, 0.07f},
                   {0.25f, 0.55f, 0.85f},
                   2.6f});
  // Cymbals (thin discs).
  prims.push_back({CylinderSdf{{0.28f, 0.66f, 0.40f}, 0.10f, 0.012f},
                   {0.90f, 0.80f, 0.35f},
                   3.8f});
  prims.push_back({CylinderSdf{{0.72f, 0.66f, 0.40f}, 0.10f, 0.012f},
                   {0.90f, 0.80f, 0.35f},
                   4.9f});
  // Small percussion spheres.
  prims.push_back({SphereSdf{{0.50f, 0.58f, 0.66f}, 0.06f},
                   {0.95f, 0.90f, 0.85f},
                   5.5f});
  prims.push_back({SphereSdf{{0.50f, 0.22f, 0.70f}, 0.06f},
                   {0.30f, 0.30f, 0.32f},
                   6.1f});
  return Scene("drums", std::move(prims));
}

Scene MakeFicus() {
  std::vector<ScenePrimitive> prims;
  // Pot.
  prims.push_back({CylinderSdf{{0.50f, 0.16f, 0.50f}, 0.11f, 0.065f},
                   {0.60f, 0.30f, 0.18f},
                   0.2f});
  // Trunk.
  prims.push_back(
      {CapsuleSdf{{0.50f, 0.20f, 0.50f}, {0.50f, 0.62f, 0.50f}, 0.030f},
       {0.42f, 0.26f, 0.12f},
       1.0f});
  // Foliage: a deterministic cloud of leaf-cluster spheres.
  const int kLeaves = 30;
  for (int i = 0; i < kLeaves; ++i) {
    const float t = static_cast<float>(i) / kLeaves;
    const float ang = 6.2831853f * 2.618f * static_cast<float>(i);  // golden
    const float rad = 0.06f + 0.13f * t;
    const float x = 0.50f + rad * std::cos(ang);
    const float z = 0.50f + rad * std::sin(ang);
    const float y = 0.56f + 0.20f * t;
    prims.push_back({SphereSdf{{x, y, z}, 0.063f},
                     {0.18f, 0.50f + 0.2f * t, 0.16f},
                     2.0f + static_cast<float>(i) * 0.37f});
  }
  return Scene("ficus", std::move(prims));
}

Scene MakeHotdog() {
  std::vector<ScenePrimitive> prims;
  // Plate.
  prims.push_back({CylinderSdf{{0.50f, 0.24f, 0.50f}, 0.30f, 0.025f},
                   {0.92f, 0.92f, 0.95f},
                   0.3f});
  // Bun.
  prims.push_back({EllipsoidSdf{{0.50f, 0.32f, 0.50f}, {0.25f, 0.10f, 0.14f}},
                   {0.85f, 0.62f, 0.30f},
                   1.5f});
  // Two sausages.
  prims.push_back(
      {CapsuleSdf{{0.33f, 0.42f, 0.46f}, {0.68f, 0.42f, 0.46f}, 0.055f},
       {0.70f, 0.22f, 0.10f},
       2.7f});
  prims.push_back(
      {CapsuleSdf{{0.33f, 0.42f, 0.56f}, {0.68f, 0.42f, 0.56f}, 0.055f},
       {0.72f, 0.24f, 0.11f},
       3.9f});
  return Scene("hotdog", std::move(prims));
}

Scene MakeLego() {
  std::vector<ScenePrimitive> prims;
  // Base chassis.
  prims.push_back({BoxSdf{{0.50f, 0.34f, 0.50f}, {0.22f, 0.06f, 0.14f}, 0.004f},
                   {0.85f, 0.70f, 0.15f},
                   0.5f});
  // Cab.
  prims.push_back({BoxSdf{{0.58f, 0.50f, 0.50f}, {0.12f, 0.09f, 0.11f}, 0.004f},
                   {0.85f, 0.70f, 0.15f},
                   1.6f});
  // Blade.
  prims.push_back({BoxSdf{{0.24f, 0.32f, 0.50f}, {0.03f, 0.07f, 0.16f}, 0.004f},
                   {0.75f, 0.75f, 0.20f},
                   2.8f});
  // Tracks.
  prims.push_back({BoxSdf{{0.50f, 0.26f, 0.34f}, {0.22f, 0.045f, 0.03f}, 0.01f},
                   {0.25f, 0.25f, 0.28f},
                   3.4f});
  prims.push_back({BoxSdf{{0.50f, 0.26f, 0.66f}, {0.22f, 0.045f, 0.03f}, 0.01f},
                   {0.25f, 0.25f, 0.28f},
                   4.1f});
  // Lift arms.
  prims.push_back(
      {CapsuleSdf{{0.38f, 0.44f, 0.38f}, {0.25f, 0.36f, 0.44f}, 0.02f},
       {0.55f, 0.55f, 0.58f},
       5.2f});
  prims.push_back(
      {CapsuleSdf{{0.38f, 0.44f, 0.62f}, {0.25f, 0.36f, 0.56f}, 0.02f},
       {0.55f, 0.55f, 0.58f},
       6.3f});
  return Scene("lego", std::move(prims));
}

Scene MakeMaterials() {
  std::vector<ScenePrimitive> prims;
  // Two rows of four shaded balls.
  const Vec3f palette[8] = {
      {0.85f, 0.20f, 0.18f}, {0.20f, 0.60f, 0.85f}, {0.25f, 0.75f, 0.30f},
      {0.90f, 0.75f, 0.20f}, {0.70f, 0.30f, 0.75f}, {0.90f, 0.50f, 0.20f},
      {0.35f, 0.35f, 0.40f}, {0.90f, 0.90f, 0.92f}};
  for (int i = 0; i < 8; ++i) {
    const int row = i / 4;
    const int col = i % 4;
    const float x = 0.26f + 0.16f * static_cast<float>(col);
    const float z = 0.42f + 0.18f * static_cast<float>(row);
    prims.push_back({SphereSdf{{x, 0.40f, z}, 0.09f},
                     palette[i],
                     0.9f * static_cast<float>(i)});
  }
  return Scene("materials", std::move(prims));
}

Scene MakeMic() {
  std::vector<ScenePrimitive> prims;
  // Head.
  prims.push_back({SphereSdf{{0.55f, 0.62f, 0.52f}, 0.145f},
                   {0.75f, 0.75f, 0.78f},
                   0.6f});
  // Handle.
  prims.push_back(
      {CapsuleSdf{{0.49f, 0.50f, 0.50f}, {0.36f, 0.28f, 0.46f}, 0.062f},
       {0.22f, 0.22f, 0.24f},
       1.8f});
  // Stand column.
  prims.push_back(
      {CapsuleSdf{{0.40f, 0.12f, 0.48f}, {0.37f, 0.30f, 0.47f}, 0.030f},
       {0.30f, 0.30f, 0.32f},
       2.9f});
  // Base.
  prims.push_back({CylinderSdf{{0.42f, 0.10f, 0.48f}, 0.19f, 0.045f},
                   {0.28f, 0.28f, 0.30f},
                   4.0f});
  return Scene("mic", std::move(prims));
}

Scene MakeShip() {
  std::vector<ScenePrimitive> prims;
  // Water surface (thin, wide slab — this is why ship is the densest grid).
  prims.push_back({BoxSdf{{0.50f, 0.22f, 0.50f}, {0.42f, 0.032f, 0.42f}, 0.0f},
                   {0.15f, 0.35f, 0.45f},
                   0.2f});
  // Hull.
  prims.push_back({EllipsoidSdf{{0.50f, 0.30f, 0.50f}, {0.32f, 0.10f, 0.15f}},
                   {0.45f, 0.30f, 0.20f},
                   1.4f});
  // Deck.
  prims.push_back({BoxSdf{{0.50f, 0.38f, 0.50f}, {0.26f, 0.03f, 0.11f}, 0.004f},
                   {0.60f, 0.45f, 0.28f},
                   2.5f});
  // Cabin.
  prims.push_back({BoxSdf{{0.60f, 0.46f, 0.50f}, {0.08f, 0.05f, 0.06f}, 0.004f},
                   {0.65f, 0.50f, 0.32f},
                   3.6f});
  // Masts.
  prims.push_back(
      {CapsuleSdf{{0.38f, 0.40f, 0.50f}, {0.38f, 0.78f, 0.50f}, 0.025f},
       {0.40f, 0.28f, 0.18f},
       4.7f});
  prims.push_back(
      {CapsuleSdf{{0.56f, 0.40f, 0.50f}, {0.56f, 0.72f, 0.50f}, 0.025f},
       {0.40f, 0.28f, 0.18f},
       5.8f});
  return Scene("ship", std::move(prims));
}

}  // namespace

std::vector<SceneId> AllScenes() {
  return {SceneId::kChair,     SceneId::kDrums, SceneId::kFicus,
          SceneId::kHotdog,    SceneId::kLego,  SceneId::kMaterials,
          SceneId::kMic,       SceneId::kShip};
}

const char* SceneName(SceneId id) {
  switch (id) {
    case SceneId::kChair:
      return "chair";
    case SceneId::kDrums:
      return "drums";
    case SceneId::kFicus:
      return "ficus";
    case SceneId::kHotdog:
      return "hotdog";
    case SceneId::kLego:
      return "lego";
    case SceneId::kMaterials:
      return "materials";
    case SceneId::kMic:
      return "mic";
    case SceneId::kShip:
      return "ship";
  }
  return "?";
}

SceneId SceneFromName(const std::string& name) {
  for (SceneId id : AllScenes()) {
    if (name == SceneName(id)) return id;
  }
  throw SpnerfError("unknown scene: " + name);
}

int SceneDefaultResolution(SceneId id) {
  // DVGO-style resolutions; slightly varied per scene as trained grids are.
  switch (id) {
    case SceneId::kChair:
      return 160;
    case SceneId::kDrums:
      return 160;
    case SceneId::kFicus:
      return 144;
    case SceneId::kHotdog:
      return 160;
    case SceneId::kLego:
      return 160;
    case SceneId::kMaterials:
      return 152;
    case SceneId::kMic:
      return 152;
    case SceneId::kShip:
      return 176;
  }
  return 160;
}

Scene BuildScene(SceneId id) {
  switch (id) {
    case SceneId::kChair:
      return MakeChair();
    case SceneId::kDrums:
      return MakeDrums();
    case SceneId::kFicus:
      return MakeFicus();
    case SceneId::kHotdog:
      return MakeHotdog();
    case SceneId::kLego:
      return MakeLego();
    case SceneId::kMaterials:
      return MakeMaterials();
    case SceneId::kMic:
      return MakeMic();
    case SceneId::kShip:
      return MakeShip();
  }
  throw SpnerfError("unknown scene id");
}

}  // namespace spnerf
