#include "scene/scene.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace spnerf {

Scene::Scene(std::string name, std::vector<ScenePrimitive> primitives,
             SceneFieldParams params)
    : name_(std::move(name)),
      primitives_(std::move(primitives)),
      params_(params) {
  SPNERF_CHECK_MSG(!primitives_.empty(), "scene needs at least one primitive");
}

float Scene::SignedDistance(Vec3f p, int* nearest) const {
  float best = std::numeric_limits<float>::max();
  int best_i = 0;
  for (std::size_t i = 0; i < primitives_.size(); ++i) {
    const float d = SdfEval(primitives_[i].shape, p);
    if (d < best) {
      best = d;
      best_i = static_cast<int>(i);
    }
  }
  if (nearest) *nearest = best_i;
  return best;
}

float Scene::Density(Vec3f p) const {
  const float d = SignedDistance(p);
  if (d >= 0.0f) return 0.0f;
  // Ramp from 0 at the surface to peak at `band` inside, then plateau. This
  // mimics the sharp-but-finite boundaries of trained density grids.
  const float t = Clamp(-d / params_.density_band, 0.0f, 1.0f);
  return params_.density_peak * t;
}

FeatureVec Scene::ColorFeature(Vec3f p) const {
  FeatureVec f{};
  int nearest = 0;
  const float d = SignedDistance(p, &nearest);
  if (d >= 0.0f) return f;  // outside: exact zero, keeps the grid sparse

  const ScenePrimitive& prim = primitives_[static_cast<std::size_t>(nearest)];
  const float freq = params_.texture_frequency;
  const float phase = prim.feature_phase;

  // Albedo channels with a gentle procedural texture.
  const float tex =
      0.85f + 0.15f * std::sin(freq * p.x + phase) *
                  std::cos(freq * 1.3f * p.z + 0.7f * phase);
  f[0] = prim.base_color.x * tex;
  f[1] = prim.base_color.y * tex;
  f[2] = prim.base_color.z * tex;

  // Harmonic channels: smooth positional signals of increasing frequency.
  const float a = params_.harmonic_amplitude;
  for (int c = 3; c < kColorFeatureDim; ++c) {
    const float fc = freq * (0.5f + 0.25f * static_cast<float>(c - 3));
    const float axis = (c % 3 == 0) ? p.x : (c % 3 == 1 ? p.y : p.z);
    f[c] = a * std::sin(fc * axis + phase + 0.9f * static_cast<float>(c));
  }
  return f;
}

double Scene::PrimitiveVolume() const {
  double v = 0.0;
  for (const auto& prim : primitives_) v += SdfVolume(prim.shape);
  return v;
}

Aabb Scene::Bounds() const {
  Vec3f lo = Vec3f::Splat(std::numeric_limits<float>::max());
  Vec3f hi = Vec3f::Splat(std::numeric_limits<float>::lowest());
  for (const auto& prim : primitives_) {
    const Aabb b = SdfBounds(prim.shape);
    lo = Min(lo, b.lo);
    hi = Max(hi, b.hi);
  }
  return {lo, hi};
}

}  // namespace spnerf
