#include "scene/sdf.hpp"

#include <algorithm>
#include <cmath>

namespace spnerf {
namespace {

constexpr double kPi = 3.14159265358979323846;

float Eval(const SphereSdf& s, Vec3f p) {
  return (p - s.center).Norm() - s.radius;
}

float Eval(const BoxSdf& s, Vec3f p) {
  const Vec3f q = (p - s.center).Abs() - s.half_extent;
  const Vec3f qpos = Max(q, Vec3f{0.f, 0.f, 0.f});
  const float outside = qpos.Norm();
  const float inside = std::min(q.MaxComponent(), 0.0f);
  return outside + inside - s.round;
}

float Eval(const CapsuleSdf& s, Vec3f p) {
  const Vec3f pa = p - s.a;
  const Vec3f ba = s.b - s.a;
  const float denom = ba.Norm2();
  const float h = denom > 0.f ? Clamp(pa.Dot(ba) / denom, 0.0f, 1.0f) : 0.0f;
  return (pa - ba * h).Norm() - s.radius;
}

float Eval(const CylinderSdf& s, Vec3f p) {
  const Vec3f q = p - s.center;
  const float dxz = std::sqrt(q.x * q.x + q.z * q.z) - s.radius;
  const float dy = std::fabs(q.y) - s.half_height;
  const float outside = std::sqrt(std::max(dxz, 0.f) * std::max(dxz, 0.f) +
                                  std::max(dy, 0.f) * std::max(dy, 0.f));
  return outside + std::min(std::max(dxz, dy), 0.0f);
}

float Eval(const TorusSdf& s, Vec3f p) {
  const Vec3f q = p - s.center;
  const float qxz = std::sqrt(q.x * q.x + q.z * q.z) - s.major_radius;
  return std::sqrt(qxz * qxz + q.y * q.y) - s.minor_radius;
}

float Eval(const EllipsoidSdf& s, Vec3f p) {
  // Standard bound-preserving approximation (iq): k0*(k0-1)/k1.
  const Vec3f q = p - s.center;
  const Vec3f k{q.x / s.radii.x, q.y / s.radii.y, q.z / s.radii.z};
  const Vec3f k2{q.x / (s.radii.x * s.radii.x), q.y / (s.radii.y * s.radii.y),
                 q.z / (s.radii.z * s.radii.z)};
  const float k0 = k.Norm();
  const float k1 = k2.Norm();
  if (k1 == 0.f) return -s.radii.MinComponent();
  return k0 * (k0 - 1.0f) / k1;
}

Aabb Bounds(const SphereSdf& s) {
  return {s.center - Vec3f::Splat(s.radius), s.center + Vec3f::Splat(s.radius)};
}
Aabb Bounds(const BoxSdf& s) {
  const Vec3f e = s.half_extent + Vec3f::Splat(s.round);
  return {s.center - e, s.center + e};
}
Aabb Bounds(const CapsuleSdf& s) {
  return {Min(s.a, s.b) - Vec3f::Splat(s.radius),
          Max(s.a, s.b) + Vec3f::Splat(s.radius)};
}
Aabb Bounds(const CylinderSdf& s) {
  const Vec3f e{s.radius, s.half_height, s.radius};
  return {s.center - e, s.center + e};
}
Aabb Bounds(const TorusSdf& s) {
  const float r = s.major_radius + s.minor_radius;
  const Vec3f e{r, s.minor_radius, r};
  return {s.center - e, s.center + e};
}
Aabb Bounds(const EllipsoidSdf& s) {
  return {s.center - s.radii, s.center + s.radii};
}

double Volume(const SphereSdf& s) {
  return 4.0 / 3.0 * kPi * std::pow(s.radius, 3);
}
double Volume(const BoxSdf& s) {
  // Ignores rounding (small for our scenes).
  return 8.0 * s.half_extent.x * s.half_extent.y * s.half_extent.z;
}
double Volume(const CapsuleSdf& s) {
  const double len = (s.b - s.a).Norm();
  return kPi * s.radius * s.radius * len +
         4.0 / 3.0 * kPi * std::pow(s.radius, 3);
}
double Volume(const CylinderSdf& s) {
  return kPi * s.radius * s.radius * 2.0 * s.half_height;
}
double Volume(const TorusSdf& s) {
  return 2.0 * kPi * kPi * s.major_radius * s.minor_radius * s.minor_radius;
}
double Volume(const EllipsoidSdf& s) {
  return 4.0 / 3.0 * kPi * s.radii.x * s.radii.y * s.radii.z;
}

}  // namespace

float SdfEval(const SdfShape& shape, Vec3f p) {
  return std::visit([p](const auto& s) { return Eval(s, p); }, shape);
}

Aabb SdfBounds(const SdfShape& shape) {
  return std::visit([](const auto& s) { return Bounds(s); }, shape);
}

double SdfVolume(const SdfShape& shape) {
  return std::visit([](const auto& s) { return Volume(s); }, shape);
}

}  // namespace spnerf
