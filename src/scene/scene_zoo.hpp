// The 8-scene zoo standing in for the Synthetic-NeRF dataset (chair, drums,
// ficus, hotdog, lego, materials, mic, ship). Each procedural scene is
// designed so its voxelised occupancy lands inside the paper's measured
// sparsity band (non-zero fraction 2.01%..6.48%, Fig 2(b)) with the same
// qualitative spread: ficus/mic sparse, ship densest.
#pragma once

#include <string>
#include <vector>

#include "scene/scene.hpp"

namespace spnerf {

enum class SceneId {
  kChair = 0,
  kDrums,
  kFicus,
  kHotdog,
  kLego,
  kMaterials,
  kMic,
  kShip,
};

inline constexpr int kSceneCount = 8;

/// All scene ids in dataset order.
std::vector<SceneId> AllScenes();

const char* SceneName(SceneId id);
SceneId SceneFromName(const std::string& name);  // throws on unknown name

/// Default voxel-grid resolution used for this scene in the paper-scale
/// experiments (DVGO-style grids, ~160^3).
int SceneDefaultResolution(SceneId id);

/// Builds the procedural scene geometry + fields.
Scene BuildScene(SceneId id);

}  // namespace spnerf
