// Voxelisation of procedural scenes into DVGO-style dense grids, plus the
// per-scene dataset bundle (full grid + VQRF compression) used by the
// experiments.
#pragma once

#include <memory>

#include "grid/dense_grid.hpp"
#include "grid/vqrf_model.hpp"
#include "scene/scene.hpp"
#include "scene/scene_zoo.hpp"

namespace spnerf {

struct VoxelizeParams {
  int resolution = 160;  // cubic grid (nx = ny = nz)
  /// Worker cap for the voxelisation scan; 0 uses every pool worker. Pure
  /// execution policy: the produced grid is byte-identical at any value.
  unsigned max_threads = 0;
};

/// Samples the analytic density/feature fields at voxel vertices
/// (corner-aligned: vertex i at i/(n-1) in [0,1]). The scan parallelises
/// over x-slabs; each slab owns a disjoint contiguous index range of the
/// x-major grid, so the result is deterministic for any worker count.
DenseGrid VoxelizeScene(const Scene& scene, const VoxelizeParams& params);

/// World position of a voxel vertex under the corner-aligned convention.
Vec3f VoxelVertexPosition(const GridDims& dims, Vec3i v);

/// Everything the experiments need for one scene. The compressed model
/// lives behind its own shared_ptr so consumers that only need the VQRF
/// payload stores (the SpNeRF codec) can pin it without keeping the
/// full-resolution grid alive; BuildDataset always populates it.
struct SceneDataset {
  SceneId id{};
  Scene scene;
  DenseGrid full_grid;  // ground-truth full-precision voxel grid
  std::shared_ptr<const VqrfModel> vqrf;  // compressed model (SpNeRF input)
};

struct DatasetParams {
  /// <= 0 means "use SceneDefaultResolution(id)". Tests use small values.
  int resolution_override = 0;
  VqrfBuildParams vqrf;
  /// Worker cap for the voxelisation scan; 0 uses every pool worker. Does
  /// not affect the built bytes, so asset cache keys exclude it.
  unsigned max_threads = 0;
};

SceneDataset BuildDataset(SceneId id, const DatasetParams& params = {});

}  // namespace spnerf
