// A procedural radiance-field scene: a union of colored SDF primitives with
// an analytic density and 12-channel color-feature field. This substitutes
// for the Synthetic-NeRF dataset: sparsity, spatial clustering and feature
// smoothness match what a trained DVGO/VQRF grid holds, which is all the
// SpNeRF mechanisms depend on.
#pragma once

#include <string>
#include <vector>

#include "common/vec.hpp"
#include "grid/codebook.hpp"  // FeatureVec
#include "scene/sdf.hpp"

namespace spnerf {

/// One solid object in a scene.
struct ScenePrimitive {
  SdfShape shape;
  Vec3f base_color{0.7f, 0.7f, 0.7f};  // dominant albedo-like tint
  float feature_phase = 0.0f;          // decorrelates the harmonic channels
};

struct SceneFieldParams {
  /// Peak density (sigma) inside objects. High values give the hard, quickly
  /// opaque surfaces typical of converged Synthetic-NeRF grids, which is
  /// what makes early ray termination effective.
  float density_peak = 420.0f;
  /// Distance band over which density ramps from 0 to peak (world units).
  float density_band = 0.015f;
  /// Amplitude of the non-color harmonic feature channels.
  float harmonic_amplitude = 0.35f;
  /// Spatial frequency of the feature texture.
  float texture_frequency = 9.0f;
};

class Scene {
 public:
  Scene() = default;
  Scene(std::string name, std::vector<ScenePrimitive> primitives,
        SceneFieldParams params = {});

  [[nodiscard]] const std::string& Name() const { return name_; }
  [[nodiscard]] const std::vector<ScenePrimitive>& Primitives() const {
    return primitives_;
  }
  [[nodiscard]] const SceneFieldParams& FieldParams() const { return params_; }

  /// Signed distance to the scene's union surface; also reports the nearest
  /// primitive (for coloring).
  [[nodiscard]] float SignedDistance(Vec3f p, int* nearest = nullptr) const;

  /// Analytic raw density at a world position (0 outside objects).
  [[nodiscard]] float Density(Vec3f p) const;

  /// Analytic 12-channel color feature at a world position. Channels 0..2
  /// carry the tinted albedo, channels 3..11 carry positional harmonics the
  /// MLP decodes — mirroring the structure of trained DVGO k0 grids.
  [[nodiscard]] FeatureVec ColorFeature(Vec3f p) const;

  /// Sum of primitive volumes (upper bound of occupied fraction of the unit
  /// cube; overlaps make the true occupancy slightly smaller).
  [[nodiscard]] double PrimitiveVolume() const;

  /// Tight world bounds of all primitives.
  [[nodiscard]] Aabb Bounds() const;

 private:
  std::string name_;
  std::vector<ScenePrimitive> primitives_;
  SceneFieldParams params_;
};

}  // namespace spnerf
