#include "render/volume_renderer.hpp"

#include <cmath>

#include "render/embedding.hpp"
#include "render/render_engine.hpp"

namespace spnerf {

namespace render_detail {

float CellExitT(const Ray& ray, const Aabb& cell, float t) {
  float exit_t = std::numeric_limits<float>::max();
  for (int axis = 0; axis < 3; ++axis) {
    const float d = ray.direction[axis];
    if (std::fabs(d) < 1e-12f) continue;
    const float boundary = d > 0.f ? cell.hi[axis] : cell.lo[axis];
    const float tx = (boundary - ray.origin[axis]) / d;
    if (tx > t && tx < exit_t) exit_t = tx;
  }
  if (exit_t == std::numeric_limits<float>::max()) {
    // Zero-area cell (or a ray with no boundary ahead): force strictly
    // forward progress so the skip loop cannot revisit the same t.
    return std::nextafter(t, std::numeric_limits<float>::infinity());
  }
  return exit_t;
}

}  // namespace render_detail

Vec3f VolumeRenderer::RenderRay(const FieldSource& source, const Mlp& mlp,
                                const Ray& ray, RenderStats* stats,
                                DecodeCounters* counters) const {
  const Aabb scene_box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  float t_near = 0.f, t_far = 0.f;
  if (stats) ++stats->rays;
  if (!IntersectAabb(ray, scene_box, t_near, t_far)) {
    if (stats) {
      ++stats->missed_rays;
      stats->steps_per_ray.Add(0.0);
      stats->evals_per_ray.Add(0.0);
    }
    return options_.background;
  }

  const ViewEmbedding view = EmbedViewDirection(ray.direction);
  Vec3f color{0.f, 0.f, 0.f};
  float transmittance = 1.0f;
  u64 ray_steps = 0;
  u64 ray_evals = 0;
  bool terminated = false;

  float t = t_near;
  while (t < t_far) {
    // Empty-space skipping: jump to the exit of unoccupied supervoxels.
    if (options_.coarse_skip != nullptr) {
      const Vec3f p = ray.At(t);
      if (!options_.coarse_skip->OccupiedAtWorld(p)) {
        const Aabb cell = options_.coarse_skip->CellBounds(
            options_.coarse_skip->CellOfWorld(p));
        const float exit_t = render_detail::CellExitT(ray, cell, t);
        t = std::max(exit_t + 1e-5f, t + options_.step_size);
        if (stats) ++stats->coarse_skips;
        continue;
      }
    }

    ++ray_steps;
    const FieldSample s = source.Sample(ray.At(t), counters);
    t += options_.step_size;

    // Stored density is post-activation sigma; negative values (possible
    // after lossy decode) clamp to zero.
    const float sigma = s.density > 0.0f ? s.density : 0.0f;
    const float alpha = 1.0f - std::exp(-sigma * options_.step_size);
    if (alpha <= options_.alpha_threshold) continue;

    ++ray_evals;
    const auto in = AssembleMlpInput(s.features, view);
    const Vec3f rgb = options_.fp16_mlp ? mlp.ForwardFp16(in) : mlp.Forward(in);
    const float weight = transmittance * alpha;
    color += rgb * weight;
    transmittance *= 1.0f - alpha;
    if (transmittance < options_.termination_transmittance) {
      terminated = true;
      break;
    }
  }

  color += options_.background * transmittance;
  if (stats) {
    stats->steps += ray_steps;
    stats->mlp_evals += ray_evals;
    if (terminated) ++stats->terminated_rays;
    stats->steps_per_ray.Add(static_cast<double>(ray_steps));
    stats->evals_per_ray.Add(static_cast<double>(ray_evals));
  }
  return color;
}

Image VolumeRenderer::Render(const FieldSource& source, const Mlp& mlp,
                             const Camera& camera, RenderStats* stats) const {
  RenderJob job;
  job.source = &source;
  job.mlp = &mlp;
  job.camera = camera;
  job.options = options_;
  job.collect_stats = stats != nullptr;
  RenderResult result = RenderEngine().Render(job);
  if (stats) stats->Merge(result.stats);
  return std::move(result.image);
}

}  // namespace spnerf
