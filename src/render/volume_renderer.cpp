#include "render/volume_renderer.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>

#include "common/aligned.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "render/embedding.hpp"
#include "render/render_engine.hpp"

namespace spnerf {

namespace render_detail {

float CellExitT(const Ray& ray, const Aabb& cell, float t) {
  float exit_t = std::numeric_limits<float>::max();
  for (int axis = 0; axis < 3; ++axis) {
    const float d = ray.direction[axis];
    if (std::fabs(d) < kDegenerateDirectionEpsilon) continue;
    const float boundary = d > 0.f ? cell.hi[axis] : cell.lo[axis];
    const float tx = (boundary - ray.origin[axis]) / d;
    if (tx > t && tx < exit_t) exit_t = tx;
  }
  if (exit_t == std::numeric_limits<float>::max()) {
    // Zero-area cell (or a ray with no boundary ahead): force strictly
    // forward progress so the skip loop cannot revisit the same t.
    return std::nextafter(t, std::numeric_limits<float>::infinity());
  }
  return exit_t;
}

float CellExitTDda(const Ray& ray, Vec3i cell, const GridDims& dims, float t) {
  float exit_t = std::numeric_limits<float>::max();
  for (int axis = 0; axis < 3; ++axis) {
    const float d = ray.direction[axis];
    if (std::fabs(d) < kDegenerateDirectionEpsilon) continue;
    const int n = axis == 0 ? dims.nx : axis == 1 ? dims.ny : dims.nz;
    const int c = axis == 0 ? cell.x : axis == 1 ? cell.y : cell.z;
    // The exact CellBounds expressions for the one face ahead of the ray:
    // identical operands, identical division, so the float is identical.
    const float boundary = d > 0.f
                               ? static_cast<float>(c + 1) / static_cast<float>(n)
                               : static_cast<float>(c) / static_cast<float>(n);
    const float tx = (boundary - ray.origin[axis]) / d;
    if (tx > t && tx < exit_t) exit_t = tx;
  }
  if (exit_t == std::numeric_limits<float>::max()) {
    return std::nextafter(t, std::numeric_limits<float>::infinity());
  }
  return exit_t;
}

}  // namespace render_detail

namespace {

/// Pre-resolved metric handles for the skip instrumentation (handle lookup
/// takes the registry mutex; resolving once keeps the march wait-free).
/// Octrees deeper than kMaxLevels fold into the last bucket — 12 levels
/// already covers a 2048^3 coarse grid.
struct SkipObsHandles {
  static constexpr int kMaxLevels = 12;
  std::array<obs::Counter*, kMaxLevels> level{};
  obs::Counter* outside = nullptr;
  obs::Histogram* cells_per_ray = nullptr;

  SkipObsHandles() {
    auto& reg = obs::MetricsRegistry::Global();
    for (int l = 0; l < kMaxLevels; ++l) {
      level[static_cast<std::size_t>(l)] =
          &reg.GetCounter("render/skip-l" + std::to_string(l));
    }
    outside = &reg.GetCounter("render/skip-outside");
    cells_per_ray = &reg.GetHistogram("render/skipped-cells-per-ray");
  }
};

SkipObsHandles& SkipObs() {
  static SkipObsHandles handles;
  return handles;
}

/// Local accumulator for the per-level skip counters (octree mode only);
/// flushed to the registry once per ray (scalar path) or tile (wavefront).
struct SkipShard {
  std::array<u32, SkipObsHandles::kMaxLevels> level{};
  u32 outside = 0;

  void Flush() const {
    SkipObsHandles& h = SkipObs();
    for (std::size_t l = 0; l < level.size(); ++l) {
      if (level[l] != 0) h.level[l]->Add(level[l]);
    }
    if (outside != 0) h.outside->Add(outside);
  }
};

/// The shared empty-space-skipping advance of both marchers: moves `t`
/// forward to the ray's next occupied sample position (returns true) or
/// past `t_far` (returns false), counting skipped cells into `skips`.
///
/// Flat and octree modes replay the IDENTICAL t-update chain — the same
/// `ray.At(t)` world points, the same clamped cell, the same exit boundary
/// floats, the same `max(exit_t + eps, t + step)` — so images, stats and
/// decode counters are bit-identical across modes. The octree mode merely
/// answers the occupancy question cheaper (the cached empty node covers
/// whole regions with six integer compares, no bitmap probe) and computes
/// only the <= 3 exit boundaries the ray can cross (CellExitTDda) instead
/// of materialising the cell Aabb (6 divisions per empty cell).
/// CellExitTDda with the boundary divisions replaced by the octree's
/// precomputed plane tables (table[i] is bitwise float(i)/float(n)): an
/// empty iteration pays 3 divisions where the flat chain pays 9. The
/// comparison structure mirrors CellExitT exactly — only the boundary
/// operand's provenance changes, never its value.
float CellExitTCached(const Ray& ray, Vec3i cell, const float* bx,
                      const float* by, const float* bz, float t) {
  float exit_t = std::numeric_limits<float>::max();
  for (int axis = 0; axis < 3; ++axis) {
    const float d = ray.direction[axis];
    if (std::fabs(d) < render_detail::kDegenerateDirectionEpsilon) continue;
    const float* table = axis == 0 ? bx : axis == 1 ? by : bz;
    const int c = axis == 0 ? cell.x : axis == 1 ? cell.y : cell.z;
    const float boundary = table[c + (d > 0.f ? 1 : 0)];
    const float tx = (boundary - ray.origin[axis]) / d;
    if (tx > t && tx < exit_t) exit_t = tx;
  }
  if (exit_t == std::numeric_limits<float>::max()) {
    return std::nextafter(t, std::numeric_limits<float>::infinity());
  }
  return exit_t;
}

bool AdvanceToOccupied(const RenderOptions& opt, bool use_octree,
                       const Ray& ray, float t_far, float& t, u64& skips,
                       OctreeRayCache& cache, SkipShard* shard) {
  const CoarseOccupancy* coarse = opt.coarse_skip;
  if (coarse == nullptr) return t < t_far;
  if (!use_octree) {
    // Flat probe: the original reference chain, verbatim.
    while (t < t_far) {
      const Vec3f p = ray.At(t);
      if (coarse->OccupiedAtWorld(p)) return true;
      const Aabb cell = coarse->CellBounds(coarse->CellOfWorld(p));
      const float exit_t = render_detail::CellExitT(ray, cell, t);
      t = std::max(exit_t + render_detail::kSkipForwardEpsilon,
                   t + opt.step_size);
      ++skips;
    }
    return false;
  }
  const OccupancyOctree& tree = *opt.octree_skip;
  if (opt.octree_level_cap > 0) {
    // Degraded-preview march (quality ladder): occupancy is answered `cap`
    // levels above the leaves. The capped bit ORs every descendant leaf, so
    // it is conservative — a region is only skipped when every leaf under
    // it is empty — and the march crosses empty space in capped-level cells
    // (2^cap wider per axis), so the skip loop runs far fewer iterations on
    // sparse rays. Exit distances use the division DDA on the capped grid;
    // this path trades the leaf chain's bit-identity for cost, so it never
    // engages at rung 0 (octree_level_cap stays 0 there).
    const int leaf_level = tree.Levels() - 1;
    const int cap = std::min(opt.octree_level_cap, leaf_level);
    const int level = leaf_level - cap;
    const BitGrid& bits = tree.Level(level);
    const GridDims& dims = bits.Dims();
    while (t < t_far) {
      const Vec3f p = ray.At(t);
      const bool inside = !(p.x < 0.f || p.x > 1.f || p.y < 0.f ||
                            p.y > 1.f || p.z < 0.f || p.z > 1.f);
      const Vec3i leaf = coarse->CellOfWorld(p);
      const Vec3i cell{leaf.x >> cap, leaf.y >> cap, leaf.z >> cap};
      if (inside && bits.Test(cell)) return true;
      if (shard != nullptr) {
        if (inside) {
          ++shard->level[static_cast<std::size_t>(
              std::min(level, SkipObsHandles::kMaxLevels - 1))];
        } else {
          ++shard->outside;
        }
      }
      const float exit_t = render_detail::CellExitTDda(ray, cell, dims, t);
      t = std::max(exit_t + render_detail::kSkipForwardEpsilon,
                   t + opt.step_size);
      ++skips;
    }
    return false;
  }
  const float* bx = tree.BoundaryX();
  const float* by = tree.BoundaryY();
  const float* bz = tree.BoundaryZ();
  while (t < t_far) {
    const Vec3f p = ray.At(t);
    // OccupiedAtWorld's out-of-box rule, inlined: outside points are
    // unoccupied but still march through their clamped boundary cell.
    const bool inside = !(p.x < 0.f || p.x > 1.f || p.y < 0.f || p.y > 1.f ||
                          p.z < 0.f || p.z > 1.f);
    const Vec3i cell = coarse->CellOfWorld(p);
    if (inside && tree.OccupiedAt(cell, cache)) return true;
    if (shard != nullptr) {
      if (inside) {
        ++shard->level[static_cast<std::size_t>(
            std::min(cache.level, SkipObsHandles::kMaxLevels - 1))];
      } else {
        ++shard->outside;
      }
    }
    const float exit_t = CellExitTCached(ray, cell, bx, by, bz, t);
    t = std::max(exit_t + render_detail::kSkipForwardEpsilon,
                 t + opt.step_size);
    ++skips;
  }
  return false;
}

}  // namespace

Vec3f VolumeRenderer::RenderRay(const FieldSource& source, const Mlp& mlp,
                                const Ray& ray, RenderStats* stats,
                                DecodeCounters* counters) const {
  const Aabb scene_box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  float t_near = 0.f, t_far = 0.f;
  if (stats) ++stats->rays;
  if (!IntersectAabb(ray, scene_box, t_near, t_far)) {
    if (stats) {
      ++stats->missed_rays;
      stats->steps_per_ray.Add(0.0);
      stats->evals_per_ray.Add(0.0);
    }
    return options_.background;
  }

  const ViewEmbedding view = EmbedViewDirection(ray.direction);
  Vec3f color{0.f, 0.f, 0.f};
  float transmittance = 1.0f;
  u64 ray_steps = 0;
  u64 ray_evals = 0;
  u64 ray_skips = 0;
  bool terminated = false;

  const bool count_obs = obs::CountersEnabled();
  OctreeRayCache dda;
  SkipShard shard;
  SkipShard* shard_ptr = (count_obs && use_octree_) ? &shard : nullptr;

  float t = t_near;
  // Empty-space skipping: jump to the exit of unoccupied supervoxels until
  // the next occupied sample position (or out of the box).
  while (AdvanceToOccupied(options_, use_octree_, ray, t_far, t, ray_skips,
                           dda, shard_ptr)) {
    ++ray_steps;
    const FieldSample s = source.Sample(ray.At(t), counters);
    t += options_.step_size;

    // Stored density is post-activation sigma; negative values (possible
    // after lossy decode) clamp to zero.
    const float sigma = s.density > 0.0f ? s.density : 0.0f;
    const float alpha = 1.0f - std::exp(-sigma * options_.step_size);
    if (alpha <= options_.alpha_threshold) continue;

    ++ray_evals;
    const auto in = AssembleMlpInput(s.features, view);
    const Vec3f rgb = options_.fp16_mlp ? mlp.ForwardFp16(in) : mlp.Forward(in);
    const float weight = transmittance * alpha;
    color += rgb * weight;
    transmittance *= 1.0f - alpha;
    if (transmittance < options_.termination_transmittance) {
      terminated = true;
      break;
    }
  }

  color += options_.background * transmittance;
  if (stats) {
    stats->steps += ray_steps;
    stats->coarse_skips += ray_skips;
    stats->mlp_evals += ray_evals;
    if (terminated) ++stats->terminated_rays;
    stats->steps_per_ray.Add(static_cast<double>(ray_steps));
    stats->evals_per_ray.Add(static_cast<double>(ray_evals));
  }
  if (count_obs) {
    if (shard_ptr != nullptr) shard_ptr->Flush();
    SkipObs().cells_per_ray->Record(ray_skips);
  }
  return color;
}

namespace {

/// Per-ray march state of the wavefront tile marcher. The sample/shade
/// buffers of the front are SoA (see WavefrontScratch); this is the per-ray
/// bookkeeping that survives between wavefront iterations.
struct WavefrontRay {
  Ray ray;
  ViewEmbedding view{};
  Vec3f color{0.f, 0.f, 0.f};
  float transmittance = 1.0f;
  float t = 0.0f;
  float t_far = 0.0f;
  u64 steps = 0;
  u64 evals = 0;
  u64 skips = 0;
  OctreeRayCache dda;  // octree skip mode: cached empty-node range
  bool missed = false;
  bool terminated = false;
};

/// Reusable SoA buffers of one wavefront tile; thread_local so a pool
/// worker's buffers warm up once and are reused across every tile it
/// renders, with no cross-thread sharing. 64-byte aligned (AlignedVector)
/// so the SIMD wavefront kernels can use natural aligned vector accesses
/// on every front buffer.
struct WavefrontScratch {
  std::vector<WavefrontRay> rays;      // per tile pixel, row-major
  AlignedVector<u32> active;           // ray indices still marching
  AlignedVector<u32> next_active;
  AlignedVector<Vec3f> positions;      // front: sample positions
  AlignedVector<u32> front_ray;        // front: owning ray index
  AlignedVector<FieldSample> samples;  // front: SampleBatch output
  AlignedVector<float> alphas;         // survivors: alpha at their sample
  AlignedVector<u32> survivor_ray;     // survivors: owning ray index
  AlignedVector<std::array<float, kMlpInputDim>> mlp_in;
  AlignedVector<Vec3f> mlp_out;
};

}  // namespace

void VolumeRenderer::RenderTileWavefront(const FieldSource& source,
                                         const Mlp& mlp, const Camera& camera,
                                         int x0, int y0, int x1, int y1,
                                         Image& out, RenderStats* stats,
                                         DecodeCounters* counters) const {
  thread_local WavefrontScratch s;
  const Aabb scene_box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  const int width = x1 - x0;
  const bool count_obs = obs::CountersEnabled();
  SkipShard skip_shard;
  SkipShard* skip_shard_ptr = (count_obs && use_octree_) ? &skip_shard : nullptr;

  // Ray setup, row-major over the tile (the same enumeration the scalar
  // loop uses; every per-ray quantity below reduces in this order).
  s.rays.clear();
  s.active.clear();
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      WavefrontRay r;
      r.ray = camera.PixelRay(x, y);
      float t_near = 0.f, t_far = 0.f;
      if (!IntersectAabb(r.ray, scene_box, t_near, t_far)) {
        r.missed = true;
      } else {
        r.view = EmbedViewDirection(r.ray.direction);
        r.t = t_near;
        r.t_far = t_far;
        s.active.push_back(static_cast<u32>(s.rays.size()));
      }
      s.rays.push_back(r);
    }
  }

  // Wavefront march: each iteration advances every active ray to its next
  // in-volume sample (empty-space skipping is per-ray control flow and
  // needs no field access), gathers the front into one SampleBatch, gates
  // it on the alpha threshold and shades the survivors through one
  // ForwardBatch. A ray contributes at most one sample per iteration, so
  // its compositing chain runs in strict t order with exactly the scalar
  // path's arithmetic.
  while (!s.active.empty()) {
    s.positions.clear();
    s.front_ray.clear();
    for (const u32 idx : s.active) {
      WavefrontRay& r = s.rays[idx];
      // Advance to the next sample position (the scalar loop's skip logic,
      // shared: AdvanceToOccupied replays the identical t-update chain in
      // either skip mode).
      if (!AdvanceToOccupied(options_, use_octree_, r.ray, r.t_far, r.t,
                             r.skips, r.dda, skip_shard_ptr)) {
        continue;  // marched out of the box: ray retires
      }
      ++r.steps;
      s.positions.push_back(r.ray.At(r.t));
      s.front_ray.push_back(idx);
      r.t += options_.step_size;
    }

    // Decode + interpolate the whole front in one call.
    if (obs::CountersEnabled()) {
      static obs::Histogram& front_size =
          obs::MetricsRegistry::Global().GetHistogram("render/front-size");
      front_size.Record(s.positions.size());
    }
    s.samples.resize(s.positions.size());
    source.SampleBatch(s.positions, s.samples, counters);

    // Alpha gate: survivors assemble their MLP inputs; the rest keep
    // marching without shading, exactly like the scalar `continue`.
    s.alphas.clear();
    s.survivor_ray.clear();
    s.mlp_in.clear();
    for (std::size_t e = 0; e < s.samples.size(); ++e) {
      const FieldSample& smp = s.samples[e];
      const float sigma = smp.density > 0.0f ? smp.density : 0.0f;
      const float alpha = 1.0f - std::exp(-sigma * options_.step_size);
      if (alpha <= options_.alpha_threshold) continue;
      WavefrontRay& r = s.rays[s.front_ray[e]];
      ++r.evals;
      s.alphas.push_back(alpha);
      s.survivor_ray.push_back(s.front_ray[e]);
      s.mlp_in.push_back(AssembleMlpInput(smp.features, r.view));
    }

    // Shade the survivors as one blocked matrix product.
    s.mlp_out.resize(s.mlp_in.size());
    if (options_.fp16_mlp) {
      mlp.ForwardFp16Batch(s.mlp_in, s.mlp_out);
    } else {
      mlp.ForwardBatch(s.mlp_in, s.mlp_out);
    }

    // Composite. Each ray appears at most once per front, so per-ray
    // accumulation order equals t order.
    for (std::size_t k = 0; k < s.survivor_ray.size(); ++k) {
      WavefrontRay& r = s.rays[s.survivor_ray[k]];
      const float alpha = s.alphas[k];
      const float weight = r.transmittance * alpha;
      r.color += s.mlp_out[k] * weight;
      r.transmittance *= 1.0f - alpha;
      if (r.transmittance < options_.termination_transmittance) {
        r.terminated = true;
      }
    }

    // Next front: rays that sampled this round and neither terminated nor
    // marched out. Front order preserves active order, so the active list
    // stays in tile row-major order (determinism is not affected either
    // way; rays are independent).
    s.next_active.clear();
    for (const u32 idx : s.front_ray) {
      if (!s.rays[idx].terminated) s.next_active.push_back(idx);
    }
    s.active.swap(s.next_active);
  }

  // Finalize in row-major order: pixels, then the per-ray stat reductions
  // in exactly the scalar loop's Add() order (RunningStats merges are
  // order-sensitive; integer counters are not).
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const WavefrontRay& r =
          s.rays[static_cast<std::size_t>(y - y0) *
                     static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(x - x0)];
      if (r.missed) {
        out.At(x, y) = options_.background;
        if (stats) {
          ++stats->rays;
          ++stats->missed_rays;
          stats->steps_per_ray.Add(0.0);
          stats->evals_per_ray.Add(0.0);
        }
        continue;
      }
      out.At(x, y) = r.color + options_.background * r.transmittance;
      if (count_obs) SkipObs().cells_per_ray->Record(r.skips);
      if (stats) {
        ++stats->rays;
        stats->steps += r.steps;
        stats->mlp_evals += r.evals;
        stats->coarse_skips += r.skips;
        if (r.terminated) ++stats->terminated_rays;
        stats->steps_per_ray.Add(static_cast<double>(r.steps));
        stats->evals_per_ray.Add(static_cast<double>(r.evals));
      }
    }
  }
  if (skip_shard_ptr != nullptr) skip_shard_ptr->Flush();
}

void VolumeRenderer::RenderTile(const FieldSource& source, const Mlp& mlp,
                                const Camera& camera, int x0, int y0, int x1,
                                int y1, Image& out, RenderStats* stats,
                                DecodeCounters* counters) const {
  if (options_.wavefront) {
    RenderTileWavefront(source, mlp, camera, x0, y0, x1, y1, out, stats,
                        counters);
    return;
  }
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      out.At(x, y) =
          RenderRay(source, mlp, camera.PixelRay(x, y), stats, counters);
    }
  }
}

Image VolumeRenderer::Render(const FieldSource& source, const Mlp& mlp,
                             const Camera& camera, RenderStats* stats,
                             const RenderEngine* engine) const {
  RenderJob job;
  job.source = &source;
  job.mlp = &mlp;
  job.camera = camera;
  job.options = options_;
  job.collect_stats = stats != nullptr;
  const RenderEngine& eng = engine != nullptr ? *engine : RenderEngine::Shared();
  RenderResult result = eng.Render(job);
  if (stats) stats->Merge(result.stats);
  return std::move(result.image);
}

}  // namespace spnerf
