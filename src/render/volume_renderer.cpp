#include "render/volume_renderer.hpp"

#include <cmath>

#include "common/aligned.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "render/embedding.hpp"
#include "render/render_engine.hpp"

namespace spnerf {

namespace render_detail {

float CellExitT(const Ray& ray, const Aabb& cell, float t) {
  float exit_t = std::numeric_limits<float>::max();
  for (int axis = 0; axis < 3; ++axis) {
    const float d = ray.direction[axis];
    if (std::fabs(d) < 1e-12f) continue;
    const float boundary = d > 0.f ? cell.hi[axis] : cell.lo[axis];
    const float tx = (boundary - ray.origin[axis]) / d;
    if (tx > t && tx < exit_t) exit_t = tx;
  }
  if (exit_t == std::numeric_limits<float>::max()) {
    // Zero-area cell (or a ray with no boundary ahead): force strictly
    // forward progress so the skip loop cannot revisit the same t.
    return std::nextafter(t, std::numeric_limits<float>::infinity());
  }
  return exit_t;
}

}  // namespace render_detail

Vec3f VolumeRenderer::RenderRay(const FieldSource& source, const Mlp& mlp,
                                const Ray& ray, RenderStats* stats,
                                DecodeCounters* counters) const {
  const Aabb scene_box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  float t_near = 0.f, t_far = 0.f;
  if (stats) ++stats->rays;
  if (!IntersectAabb(ray, scene_box, t_near, t_far)) {
    if (stats) {
      ++stats->missed_rays;
      stats->steps_per_ray.Add(0.0);
      stats->evals_per_ray.Add(0.0);
    }
    return options_.background;
  }

  const ViewEmbedding view = EmbedViewDirection(ray.direction);
  Vec3f color{0.f, 0.f, 0.f};
  float transmittance = 1.0f;
  u64 ray_steps = 0;
  u64 ray_evals = 0;
  bool terminated = false;

  float t = t_near;
  while (t < t_far) {
    // Empty-space skipping: jump to the exit of unoccupied supervoxels.
    if (options_.coarse_skip != nullptr) {
      const Vec3f p = ray.At(t);
      if (!options_.coarse_skip->OccupiedAtWorld(p)) {
        const Aabb cell = options_.coarse_skip->CellBounds(
            options_.coarse_skip->CellOfWorld(p));
        const float exit_t = render_detail::CellExitT(ray, cell, t);
        t = std::max(exit_t + 1e-5f, t + options_.step_size);
        if (stats) ++stats->coarse_skips;
        continue;
      }
    }

    ++ray_steps;
    const FieldSample s = source.Sample(ray.At(t), counters);
    t += options_.step_size;

    // Stored density is post-activation sigma; negative values (possible
    // after lossy decode) clamp to zero.
    const float sigma = s.density > 0.0f ? s.density : 0.0f;
    const float alpha = 1.0f - std::exp(-sigma * options_.step_size);
    if (alpha <= options_.alpha_threshold) continue;

    ++ray_evals;
    const auto in = AssembleMlpInput(s.features, view);
    const Vec3f rgb = options_.fp16_mlp ? mlp.ForwardFp16(in) : mlp.Forward(in);
    const float weight = transmittance * alpha;
    color += rgb * weight;
    transmittance *= 1.0f - alpha;
    if (transmittance < options_.termination_transmittance) {
      terminated = true;
      break;
    }
  }

  color += options_.background * transmittance;
  if (stats) {
    stats->steps += ray_steps;
    stats->mlp_evals += ray_evals;
    if (terminated) ++stats->terminated_rays;
    stats->steps_per_ray.Add(static_cast<double>(ray_steps));
    stats->evals_per_ray.Add(static_cast<double>(ray_evals));
  }
  return color;
}

namespace {

/// Per-ray march state of the wavefront tile marcher. The sample/shade
/// buffers of the front are SoA (see WavefrontScratch); this is the per-ray
/// bookkeeping that survives between wavefront iterations.
struct WavefrontRay {
  Ray ray;
  ViewEmbedding view{};
  Vec3f color{0.f, 0.f, 0.f};
  float transmittance = 1.0f;
  float t = 0.0f;
  float t_far = 0.0f;
  u64 steps = 0;
  u64 evals = 0;
  u64 skips = 0;
  bool missed = false;
  bool terminated = false;
};

/// Reusable SoA buffers of one wavefront tile; thread_local so a pool
/// worker's buffers warm up once and are reused across every tile it
/// renders, with no cross-thread sharing. 64-byte aligned (AlignedVector)
/// so the SIMD wavefront kernels can use natural aligned vector accesses
/// on every front buffer.
struct WavefrontScratch {
  std::vector<WavefrontRay> rays;      // per tile pixel, row-major
  AlignedVector<u32> active;           // ray indices still marching
  AlignedVector<u32> next_active;
  AlignedVector<Vec3f> positions;      // front: sample positions
  AlignedVector<u32> front_ray;        // front: owning ray index
  AlignedVector<FieldSample> samples;  // front: SampleBatch output
  AlignedVector<float> alphas;         // survivors: alpha at their sample
  AlignedVector<u32> survivor_ray;     // survivors: owning ray index
  AlignedVector<std::array<float, kMlpInputDim>> mlp_in;
  AlignedVector<Vec3f> mlp_out;
};

}  // namespace

void VolumeRenderer::RenderTileWavefront(const FieldSource& source,
                                         const Mlp& mlp, const Camera& camera,
                                         int x0, int y0, int x1, int y1,
                                         Image& out, RenderStats* stats,
                                         DecodeCounters* counters) const {
  thread_local WavefrontScratch s;
  const Aabb scene_box{{0.f, 0.f, 0.f}, {1.f, 1.f, 1.f}};
  const int width = x1 - x0;

  // Ray setup, row-major over the tile (the same enumeration the scalar
  // loop uses; every per-ray quantity below reduces in this order).
  s.rays.clear();
  s.active.clear();
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      WavefrontRay r;
      r.ray = camera.PixelRay(x, y);
      float t_near = 0.f, t_far = 0.f;
      if (!IntersectAabb(r.ray, scene_box, t_near, t_far)) {
        r.missed = true;
      } else {
        r.view = EmbedViewDirection(r.ray.direction);
        r.t = t_near;
        r.t_far = t_far;
        s.active.push_back(static_cast<u32>(s.rays.size()));
      }
      s.rays.push_back(r);
    }
  }

  // Wavefront march: each iteration advances every active ray to its next
  // in-volume sample (empty-space skipping is per-ray control flow and
  // needs no field access), gathers the front into one SampleBatch, gates
  // it on the alpha threshold and shades the survivors through one
  // ForwardBatch. A ray contributes at most one sample per iteration, so
  // its compositing chain runs in strict t order with exactly the scalar
  // path's arithmetic.
  while (!s.active.empty()) {
    s.positions.clear();
    s.front_ray.clear();
    for (const u32 idx : s.active) {
      WavefrontRay& r = s.rays[idx];
      // Advance to the next sample position (the scalar loop's skip logic,
      // verbatim).
      bool sampled = false;
      while (r.t < r.t_far) {
        if (options_.coarse_skip != nullptr) {
          const Vec3f p = r.ray.At(r.t);
          if (!options_.coarse_skip->OccupiedAtWorld(p)) {
            const Aabb cell = options_.coarse_skip->CellBounds(
                options_.coarse_skip->CellOfWorld(p));
            const float exit_t = render_detail::CellExitT(r.ray, cell, r.t);
            r.t = std::max(exit_t + 1e-5f, r.t + options_.step_size);
            ++r.skips;
            continue;
          }
        }
        sampled = true;
        break;
      }
      if (!sampled) continue;  // marched out of the box: ray retires
      ++r.steps;
      s.positions.push_back(r.ray.At(r.t));
      s.front_ray.push_back(idx);
      r.t += options_.step_size;
    }

    // Decode + interpolate the whole front in one call.
    if (obs::CountersEnabled()) {
      static obs::Histogram& front_size =
          obs::MetricsRegistry::Global().GetHistogram("render/front-size");
      front_size.Record(s.positions.size());
    }
    s.samples.resize(s.positions.size());
    source.SampleBatch(s.positions, s.samples, counters);

    // Alpha gate: survivors assemble their MLP inputs; the rest keep
    // marching without shading, exactly like the scalar `continue`.
    s.alphas.clear();
    s.survivor_ray.clear();
    s.mlp_in.clear();
    for (std::size_t e = 0; e < s.samples.size(); ++e) {
      const FieldSample& smp = s.samples[e];
      const float sigma = smp.density > 0.0f ? smp.density : 0.0f;
      const float alpha = 1.0f - std::exp(-sigma * options_.step_size);
      if (alpha <= options_.alpha_threshold) continue;
      WavefrontRay& r = s.rays[s.front_ray[e]];
      ++r.evals;
      s.alphas.push_back(alpha);
      s.survivor_ray.push_back(s.front_ray[e]);
      s.mlp_in.push_back(AssembleMlpInput(smp.features, r.view));
    }

    // Shade the survivors as one blocked matrix product.
    s.mlp_out.resize(s.mlp_in.size());
    if (options_.fp16_mlp) {
      mlp.ForwardFp16Batch(s.mlp_in, s.mlp_out);
    } else {
      mlp.ForwardBatch(s.mlp_in, s.mlp_out);
    }

    // Composite. Each ray appears at most once per front, so per-ray
    // accumulation order equals t order.
    for (std::size_t k = 0; k < s.survivor_ray.size(); ++k) {
      WavefrontRay& r = s.rays[s.survivor_ray[k]];
      const float alpha = s.alphas[k];
      const float weight = r.transmittance * alpha;
      r.color += s.mlp_out[k] * weight;
      r.transmittance *= 1.0f - alpha;
      if (r.transmittance < options_.termination_transmittance) {
        r.terminated = true;
      }
    }

    // Next front: rays that sampled this round and neither terminated nor
    // marched out. Front order preserves active order, so the active list
    // stays in tile row-major order (determinism is not affected either
    // way; rays are independent).
    s.next_active.clear();
    for (const u32 idx : s.front_ray) {
      if (!s.rays[idx].terminated) s.next_active.push_back(idx);
    }
    s.active.swap(s.next_active);
  }

  // Finalize in row-major order: pixels, then the per-ray stat reductions
  // in exactly the scalar loop's Add() order (RunningStats merges are
  // order-sensitive; integer counters are not).
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const WavefrontRay& r =
          s.rays[static_cast<std::size_t>(y - y0) *
                     static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(x - x0)];
      if (r.missed) {
        out.At(x, y) = options_.background;
        if (stats) {
          ++stats->rays;
          ++stats->missed_rays;
          stats->steps_per_ray.Add(0.0);
          stats->evals_per_ray.Add(0.0);
        }
        continue;
      }
      out.At(x, y) = r.color + options_.background * r.transmittance;
      if (stats) {
        ++stats->rays;
        stats->steps += r.steps;
        stats->mlp_evals += r.evals;
        stats->coarse_skips += r.skips;
        if (r.terminated) ++stats->terminated_rays;
        stats->steps_per_ray.Add(static_cast<double>(r.steps));
        stats->evals_per_ray.Add(static_cast<double>(r.evals));
      }
    }
  }
}

void VolumeRenderer::RenderTile(const FieldSource& source, const Mlp& mlp,
                                const Camera& camera, int x0, int y0, int x1,
                                int y1, Image& out, RenderStats* stats,
                                DecodeCounters* counters) const {
  if (options_.wavefront) {
    RenderTileWavefront(source, mlp, camera, x0, y0, x1, y1, out, stats,
                        counters);
    return;
  }
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      out.At(x, y) =
          RenderRay(source, mlp, camera.PixelRay(x, y), stats, counters);
    }
  }
}

Image VolumeRenderer::Render(const FieldSource& source, const Mlp& mlp,
                             const Camera& camera, RenderStats* stats,
                             const RenderEngine* engine) const {
  RenderJob job;
  job.source = &source;
  job.mlp = &mlp;
  job.camera = camera;
  job.options = options_;
  job.collect_stats = stats != nullptr;
  const RenderEngine& eng = engine != nullptr ? *engine : RenderEngine::Shared();
  RenderResult result = eng.Render(job);
  if (stats) stats->Merge(result.stats);
  return std::move(result.image);
}

}  // namespace spnerf
