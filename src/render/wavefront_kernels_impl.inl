// Generic lane-major implementations of the wavefront kernels, written
// once against the lane-ops concept (common/simd_lanes_*.hpp) and included
// by each per-ISA translation unit with SPNF_LANES defined to the ISA's
// lane-ops struct and SPNF_PATH_NAME to its name.
//
// Bit-exactness design, shared by every kernel here:
//   * Lanes are SAMPLES. Within a lane, every accumulation chain performs
//     exactly the scalar reference's IEEE operations in the scalar order;
//     nothing is reassociated and mul→add pairs are never contracted (the
//     ISA TUs build with -ffp-contract=off).
//   * Corners/inputs that the scalar loop skips contribute an exact +0.0f
//     (masked gathers return +0, and the corresponding weight lanes are
//     +0), and x + (+0.0f) == x bitwise for every x the accumulators can
//     hold (they start at +0 and IEEE addition never produces -0 from a
//     +0 running sum), so "skip" and "add nothing" coincide.
//   * fp16 chains round through binary16 after every operation exactly as
//     Half does: products/sums evaluate as float(double*double+double)
//     (Half::Fma's pre-round chain) followed by an RNE float→half→float
//     round trip. Skipped corners pass w == +0 through the same chain,
//     which reproduces the accumulator unchanged.
//
// This file must only be included inside `namespace spnerf::wavefront`.

namespace {

using V = SPNF_LANES;
constexpr int kW = V::kWidth;
using F32 = typename V::F32;
using I32 = typename V::I32;

// FieldSample / VoxelData are gathered through raw float indexing
// (density at float offset 0, features at 1..kColorFeatureDim).
static_assert(sizeof(FieldSample) == (1 + kColorFeatureDim) * sizeof(float));
static_assert(sizeof(VoxelData) == (1 + kColorFeatureDim) * sizeof(float));
constexpr int kVoxelFloats = 1 + kColorFeatureDim;

/// Samples shaded per MLP block — matches the scalar reference's blocking
/// so both keep activations L1/L2-resident; bit-identity does not depend
/// on the block size (chains are per-sample).
constexpr std::size_t kBlock = 32;
static_assert(kBlock % kW == 0);

inline float SigmoidRef(float x) { return 1.0f / (1.0f + std::exp(-x)); }

inline float MaskAllOnes() { return std::bit_cast<float>(0xffffffffu); }

/// relu(x) with the scalar reference's exact semantics (`x > 0 ? x : 0`):
/// -0 and NaN both map to +0.
inline F32 Relu(F32 x) {
  const F32 z = V::Zero();
  return V::Select(V::CmpGt(x, z), x, z);
}

// ------------------------------------------------------------------ MLP --

/// Dense layer + ReLU over lane-major fp32 activations: dst[o][s] =
/// relu(b[o] + sum_i w[o][i] * src[i][s]), the per-sample chain identical
/// to Mlp::Forward. Rows are processed four at a time so four independent
/// accumulation chains hide the FP add latency; the chain per row is
/// untouched.
void DenseLayerFp32(const float* w, const float* b, const float* src,
                    int in_dim, float* dst, int out_dim, std::size_t mpad) {
  int o = 0;
  for (; o + 4 <= out_dim; o += 4) {
    const float* r0 = w + static_cast<std::size_t>(o + 0) * in_dim;
    const float* r1 = w + static_cast<std::size_t>(o + 1) * in_dim;
    const float* r2 = w + static_cast<std::size_t>(o + 2) * in_dim;
    const float* r3 = w + static_cast<std::size_t>(o + 3) * in_dim;
    for (std::size_t g = 0; g < mpad; g += kW) {
      F32 a0 = V::Set1(b[o + 0]);
      F32 a1 = V::Set1(b[o + 1]);
      F32 a2 = V::Set1(b[o + 2]);
      F32 a3 = V::Set1(b[o + 3]);
      for (int i = 0; i < in_dim; ++i) {
        const F32 x = V::Load(src + static_cast<std::size_t>(i) * kBlock + g);
        a0 = V::Add(a0, V::Mul(V::Set1(r0[i]), x));
        a1 = V::Add(a1, V::Mul(V::Set1(r1[i]), x));
        a2 = V::Add(a2, V::Mul(V::Set1(r2[i]), x));
        a3 = V::Add(a3, V::Mul(V::Set1(r3[i]), x));
      }
      V::Store(dst + static_cast<std::size_t>(o + 0) * kBlock + g, Relu(a0));
      V::Store(dst + static_cast<std::size_t>(o + 1) * kBlock + g, Relu(a1));
      V::Store(dst + static_cast<std::size_t>(o + 2) * kBlock + g, Relu(a2));
      V::Store(dst + static_cast<std::size_t>(o + 3) * kBlock + g, Relu(a3));
    }
  }
  for (; o < out_dim; ++o) {
    const float* row = w + static_cast<std::size_t>(o) * in_dim;
    for (std::size_t g = 0; g < mpad; g += kW) {
      F32 acc = V::Set1(b[o]);
      for (int i = 0; i < in_dim; ++i) {
        acc = V::Add(acc, V::Mul(V::Set1(row[i]),
                                 V::Load(src + static_cast<std::size_t>(i) *
                                                   kBlock +
                                               g)));
      }
      V::Store(dst + static_cast<std::size_t>(o) * kBlock + g, Relu(acc));
    }
  }
}

/// Dense layer + ReLU over packed-binary16 lane-major activations. wq/bq
/// are the binary16-VALUED float expansions of the packed half weights;
/// every accumulation step rounds through binary16 exactly like
/// Half::Fma, so dst round-trips through Half identically to the scalar
/// ForwardFp16 chain.
void DenseLayerFp16(const float* wq, const float* bq, const u16* src,
                    int in_dim, u16* dst, int out_dim, std::size_t mpad) {
  int o = 0;
  for (; o + 4 <= out_dim; o += 4) {
    const float* r0 = wq + static_cast<std::size_t>(o + 0) * in_dim;
    const float* r1 = wq + static_cast<std::size_t>(o + 1) * in_dim;
    const float* r2 = wq + static_cast<std::size_t>(o + 2) * in_dim;
    const float* r3 = wq + static_cast<std::size_t>(o + 3) * in_dim;
    for (std::size_t g = 0; g < mpad; g += kW) {
      F32 a0 = V::Set1(bq[o + 0]);
      F32 a1 = V::Set1(bq[o + 1]);
      F32 a2 = V::Set1(bq[o + 2]);
      F32 a3 = V::Set1(bq[o + 3]);
      for (int i = 0; i < in_dim; ++i) {
        const F32 x =
            V::FromHalf(src + static_cast<std::size_t>(i) * kBlock + g);
        a0 = V::RoundHalfValues(V::DoubleMulAdd(V::Set1(r0[i]), x, a0));
        a1 = V::RoundHalfValues(V::DoubleMulAdd(V::Set1(r1[i]), x, a1));
        a2 = V::RoundHalfValues(V::DoubleMulAdd(V::Set1(r2[i]), x, a2));
        a3 = V::RoundHalfValues(V::DoubleMulAdd(V::Set1(r3[i]), x, a3));
      }
      V::ToHalf(dst + static_cast<std::size_t>(o + 0) * kBlock + g, Relu(a0));
      V::ToHalf(dst + static_cast<std::size_t>(o + 1) * kBlock + g, Relu(a1));
      V::ToHalf(dst + static_cast<std::size_t>(o + 2) * kBlock + g, Relu(a2));
      V::ToHalf(dst + static_cast<std::size_t>(o + 3) * kBlock + g, Relu(a3));
    }
  }
  for (; o < out_dim; ++o) {
    const float* row = wq + static_cast<std::size_t>(o) * in_dim;
    for (std::size_t g = 0; g < mpad; g += kW) {
      F32 acc = V::Set1(bq[o]);
      for (int i = 0; i < in_dim; ++i) {
        const F32 x =
            V::FromHalf(src + static_cast<std::size_t>(i) * kBlock + g);
        acc = V::RoundHalfValues(V::DoubleMulAdd(V::Set1(row[i]), x, acc));
      }
      V::ToHalf(dst + static_cast<std::size_t>(o) * kBlock + g, Relu(acc));
    }
  }
}

/// Expands packed binary16 values to their float values (vector main loop,
/// software-Half scalar tail so any length is exact).
void ExpandHalf(float* dst, const u16* src, std::size_t count) {
  std::size_t i = 0;
  for (; i + kW <= count; i += kW) V::Store(dst + i, V::FromHalf(src + i));
  for (; i < count; ++i) dst[i] = Half::FromBits(src[i]).ToFloat();
}

void MlpForwardFp32Kernel(const MlpBatchArgs& a) {
  thread_local AlignedArena arena;
  constexpr std::size_t kPlane = kBlock * sizeof(float);
  arena.Reserve((kMlpInputDim + 2 * kMlpHiddenDim) * kPlane +
                4 * kSimdAlignment);
  arena.Reset();
  float* xT = arena.Alloc<float>(kMlpInputDim * kBlock);
  float* h1 = arena.Alloc<float>(kMlpHiddenDim * kBlock);
  float* h2 = arena.Alloc<float>(kMlpHiddenDim * kBlock);
  const MlpWeightsView& wv = a.weights;

  for (std::size_t b0 = 0; b0 < a.n; b0 += kBlock) {
    const std::size_t m = std::min(kBlock, a.n - b0);
    const std::size_t mpad = (m + kW - 1) / kW * kW;
    // Transpose the block to lane-major; pad lanes with zeros (their
    // results are finite garbage and are never stored).
    for (int i = 0; i < kMlpInputDim; ++i) {
      float* dst = xT + static_cast<std::size_t>(i) * kBlock;
      for (std::size_t s = 0; s < m; ++s) dst[s] = a.in[b0 + s][i];
      for (std::size_t s = m; s < mpad; ++s) dst[s] = 0.0f;
    }
    DenseLayerFp32(wv.w[0], wv.b[0], xT, kMlpInputDim, h1, kMlpHiddenDim,
                   mpad);
    DenseLayerFp32(wv.w[1], wv.b[1], h1, kMlpHiddenDim, h2, kMlpHiddenDim,
                   mpad);
    for (int o = 0; o < kMlpOutputDim; ++o) {
      const float* row = wv.w[2] + static_cast<std::size_t>(o) * kMlpHiddenDim;
      for (std::size_t g = 0; g < mpad; g += kW) {
        F32 acc = V::Set1(wv.b[2][o]);
        for (int i = 0; i < kMlpHiddenDim; ++i) {
          acc = V::Add(acc, V::Mul(V::Set1(row[i]),
                                   V::Load(h2 + static_cast<std::size_t>(i) *
                                                    kBlock +
                                                g)));
        }
        alignas(kSimdAlignment) float tmp[kW];
        V::Store(tmp, acc);
        const std::size_t lim = std::min<std::size_t>(kW, m - g);
        for (std::size_t l = 0; l < lim; ++l) {
          a.out[b0 + g + l][o] = SigmoidRef(tmp[l]);
        }
      }
    }
  }
}

void MlpForwardFp16Kernel(const MlpBatchArgs& a) {
  constexpr std::size_t kW0 =
      static_cast<std::size_t>(kMlpInputDim) * kMlpHiddenDim;
  constexpr std::size_t kW1 =
      static_cast<std::size_t>(kMlpHiddenDim) * kMlpHiddenDim;
  constexpr std::size_t kW2 =
      static_cast<std::size_t>(kMlpHiddenDim) * kMlpOutputDim;
  thread_local AlignedArena arena;
  arena.Reserve(kMlpInputDim * kBlock * sizeof(float) +
                (kMlpInputDim + 2 * kMlpHiddenDim) * kBlock * sizeof(u16) +
                (kW0 + kW1 + kW2 + 2 * kMlpHiddenDim + kMlpOutputDim) *
                    sizeof(float) +
                12 * kSimdAlignment);
  arena.Reset();
  float* xT = arena.Alloc<float>(kMlpInputDim * kBlock);
  u16* xh = arena.Alloc<u16>(kMlpInputDim * kBlock);
  u16* h1 = arena.Alloc<u16>(kMlpHiddenDim * kBlock);
  u16* h2 = arena.Alloc<u16>(kMlpHiddenDim * kBlock);
  float* wq0 = arena.Alloc<float>(kW0);
  float* wq1 = arena.Alloc<float>(kW1);
  float* wq2 = arena.Alloc<float>(kW2);
  float* bq0 = arena.Alloc<float>(kMlpHiddenDim);
  float* bq1 = arena.Alloc<float>(kMlpHiddenDim);
  float* bq2 = arena.Alloc<float>(kMlpOutputDim);
  const MlpWeightsView& wv = a.weights;
  ExpandHalf(wq0, wv.wh[0], kW0);
  ExpandHalf(wq1, wv.wh[1], kW1);
  ExpandHalf(wq2, wv.wh[2], kW2);
  ExpandHalf(bq0, wv.bh[0], kMlpHiddenDim);
  ExpandHalf(bq1, wv.bh[1], kMlpHiddenDim);
  ExpandHalf(bq2, wv.bh[2], kMlpOutputDim);

  for (std::size_t b0 = 0; b0 < a.n; b0 += kBlock) {
    const std::size_t m = std::min(kBlock, a.n - b0);
    const std::size_t mpad = (m + kW - 1) / kW * kW;
    for (int i = 0; i < kMlpInputDim; ++i) {
      float* dst = xT + static_cast<std::size_t>(i) * kBlock;
      for (std::size_t s = 0; s < m; ++s) dst[s] = a.in[b0 + s][i];
      for (std::size_t s = m; s < mpad; ++s) dst[s] = 0.0f;
      // Quantize the row to the packed-binary16 lane format (the scalar
      // chain's Half(x[i]) conversion, hoisted out of the o-loop).
      u16* dsth = xh + static_cast<std::size_t>(i) * kBlock;
      for (std::size_t g = 0; g < mpad; g += kW) {
        V::ToHalf(dsth + g, V::Load(dst + g));
      }
    }
    DenseLayerFp16(wq0, bq0, xh, kMlpInputDim, h1, kMlpHiddenDim, mpad);
    DenseLayerFp16(wq1, bq1, h1, kMlpHiddenDim, h2, kMlpHiddenDim, mpad);
    for (int o = 0; o < kMlpOutputDim; ++o) {
      const float* row = wq2 + static_cast<std::size_t>(o) * kMlpHiddenDim;
      for (std::size_t g = 0; g < mpad; g += kW) {
        F32 acc = V::Set1(bq2[o]);
        for (int i = 0; i < kMlpHiddenDim; ++i) {
          const F32 x =
              V::FromHalf(h2 + static_cast<std::size_t>(i) * kBlock + g);
          acc = V::RoundHalfValues(V::DoubleMulAdd(V::Set1(row[i]), x, acc));
        }
        alignas(kSimdAlignment) float tmp[kW];
        V::Store(tmp, acc);
        const std::size_t lim = std::min<std::size_t>(kW, m - g);
        for (std::size_t l = 0; l < lim; ++l) {
          a.out[b0 + g + l][o] = SigmoidRef(tmp[l]);
        }
      }
    }
  }
}

// --------------------------------------------------------- trilinear blend --

/// Per-lane-group pack of the Eq. (2) fractions. Dead lanes (outside the
/// volume, or past the front's end) get zero fractions so their weight
/// lanes stay finite; their gathers are masked off and produce +0
/// contributions, so their outputs remain exactly zero like the scalar
/// reference's default-initialised FieldSample.
struct FracLanes {
  alignas(kSimdAlignment) float fx[kW];
  alignas(kSimdAlignment) float fy[kW];
  alignas(kSimdAlignment) float fz[kW];
};

void PackFrac(FracLanes& fl, const Vec3f* frac, const u8* inside,
              std::size_t i0, int m) {
  for (int s = 0; s < kW; ++s) {
    const bool live = s < m && inside[i0 + static_cast<std::size_t>(s)] != 0;
    const Vec3f f = live ? frac[i0 + static_cast<std::size_t>(s)] : Vec3f{};
    fl.fx[s] = f.x;
    fl.fy[s] = f.y;
    fl.fz[s] = f.z;
  }
}

void SpnerfBlendFp32Kernel(const SpnerfBlendArgs& a) {
  const float* dec = reinterpret_cast<const float*>(a.decoded);
  for (std::size_t i0 = 0; i0 < a.n; i0 += kW) {
    const int m = static_cast<int>(std::min<std::size_t>(kW, a.n - i0));
    FracLanes fl;
    PackFrac(fl, a.frac, a.inside, i0, m);
    alignas(kSimdAlignment) i32 ridx[8][kW];
    alignas(kSimdAlignment) float rmask[8][kW];
    for (int s = 0; s < kW; ++s) {
      for (int c = 0; c < 8; ++c) {
        const u32 r = s < m ? a.refs[(i0 + static_cast<std::size_t>(s)) * 8 +
                                     static_cast<std::size_t>(c)]
                            : kNoVertexRef;
        ridx[c][s] =
            r == kNoVertexRef ? 0 : static_cast<i32>(r) * kVoxelFloats;
        rmask[c][s] = r == kNoVertexRef ? 0.0f : MaskAllOnes();
      }
    }
    const F32 one = V::Set1(1.0f);
    const F32 fxv = V::Load(fl.fx);
    const F32 fyv = V::Load(fl.fy);
    const F32 fzv = V::Load(fl.fz);
    F32 w[8], msk[8];
    I32 idx[8];
    for (int c = 0; c < 8; ++c) {
      const F32 wx = (c & 1) ? fxv : V::Sub(one, fxv);
      const F32 wy = ((c >> 1) & 1) ? fyv : V::Sub(one, fyv);
      const F32 wz = ((c >> 2) & 1) ? fzv : V::Sub(one, fzv);
      w[c] = V::Mul(V::Mul(wx, wy), wz);
      msk[c] = V::Load(rmask[c]);
      idx[c] = V::LoadI(ridx[c]);
    }
    alignas(kSimdAlignment) float res[kVoxelFloats][kW];
    for (int ch = 0; ch < kVoxelFloats; ++ch) {
      F32 acc = V::Zero();
      for (int c = 0; c < 8; ++c) {
        const F32 d = V::GatherMasked(dec + ch, idx[c], msk[c]);
        acc = V::Add(acc, V::Mul(w[c], d));
      }
      V::Store(res[ch], acc);
    }
    for (int s = 0; s < m; ++s) {
      FieldSample& o = a.out[i0 + static_cast<std::size_t>(s)];
      o.density = res[0][s];
      for (int ch = 0; ch < kColorFeatureDim; ++ch) {
        o.features[static_cast<std::size_t>(ch)] = res[1 + ch][s];
      }
    }
  }
}

void SpnerfBlendFp16Kernel(const SpnerfBlendArgs& a) {
  const float* dec = reinterpret_cast<const float*>(a.decoded);
  for (std::size_t i0 = 0; i0 < a.n; i0 += kW) {
    const int m = static_cast<int>(std::min<std::size_t>(kW, a.n - i0));
    FracLanes fl;
    PackFrac(fl, a.frac, a.inside, i0, m);
    alignas(kSimdAlignment) i32 ridx[8][kW];
    alignas(kSimdAlignment) float rmask[8][kW];
    for (int s = 0; s < kW; ++s) {
      for (int c = 0; c < 8; ++c) {
        const u32 r = s < m ? a.refs[(i0 + static_cast<std::size_t>(s)) * 8 +
                                     static_cast<std::size_t>(c)]
                            : kNoVertexRef;
        ridx[c][s] =
            r == kNoVertexRef ? 0 : static_cast<i32>(r) * kVoxelFloats;
        rmask[c][s] = r == kNoVertexRef ? 0.0f : MaskAllOnes();
      }
    }
    const F32 one = V::Set1(1.0f);
    const F32 fxv = V::Load(fl.fx);
    const F32 fyv = V::Load(fl.fy);
    const F32 fzv = V::Load(fl.fz);
    F32 w[8], msk[8];
    I32 idx[8];
    for (int c = 0; c < 8; ++c) {
      // Half(wx) * Half(wy) * Half(wz): quantize each factor, round after
      // each multiply — the GID's FP16 multiplier chain, per lane.
      const F32 wx =
          V::RoundHalfValues((c & 1) ? fxv : V::Sub(one, fxv));
      const F32 wy =
          V::RoundHalfValues(((c >> 1) & 1) ? fyv : V::Sub(one, fyv));
      const F32 wz =
          V::RoundHalfValues(((c >> 2) & 1) ? fzv : V::Sub(one, fzv));
      const F32 t = V::RoundHalfValues(V::Mul(wx, wy));
      w[c] = V::RoundHalfValues(V::Mul(t, wz));
      msk[c] = V::Load(rmask[c]);
      idx[c] = V::LoadI(ridx[c]);
    }
    alignas(kSimdAlignment) float res[kVoxelFloats][kW];
    for (int ch = 0; ch < kVoxelFloats; ++ch) {
      F32 acc = V::Zero();
      for (int c = 0; c < 8; ++c) {
        // Skipped corners (masked gather -> d = +0, and their weight lanes
        // are exactly +0 because the dedup pass keyed the skip on the very
        // same rounded product) leave acc bit-unchanged through the Fma.
        const F32 d = V::RoundHalfValues(
            V::GatherMasked(dec + ch, idx[c], msk[c]));
        acc = V::RoundHalfValues(V::DoubleMulAdd(w[c], d, acc));
      }
      V::Store(res[ch], acc);
    }
    for (int s = 0; s < m; ++s) {
      FieldSample& o = a.out[i0 + static_cast<std::size_t>(s)];
      o.density = res[0][s];
      for (int ch = 0; ch < kColorFeatureDim; ++ch) {
        o.features[static_cast<std::size_t>(ch)] = res[1 + ch][s];
      }
    }
  }
}

void GridTrilinearKernel(const GridTrilinearArgs& a) {
  const i64 nynz = static_cast<i64>(a.ny) * a.nz;
  const i64 corner_off[8] = {0,
                             nynz,
                             a.nz,
                             nynz + a.nz,
                             1,
                             nynz + 1,
                             a.nz + 1,
                             nynz + a.nz + 1};
  for (std::size_t i0 = 0; i0 < a.n; i0 += kW) {
    const int m = static_cast<int>(std::min<std::size_t>(kW, a.n - i0));
    FracLanes fl;
    PackFrac(fl, a.frac, a.inside, i0, m);
    alignas(kSimdAlignment) i32 didx[8][kW];
    alignas(kSimdAlignment) i32 fidx[8][kW];
    alignas(kSimdAlignment) float livef[kW];
    for (int s = 0; s < kW; ++s) {
      const std::size_t i = i0 + static_cast<std::size_t>(s);
      const bool live = s < m && a.inside[i] != 0;
      livef[s] = live ? MaskAllOnes() : 0.0f;
      const Vec3i base = live ? a.base[i] : Vec3i{};
      const i64 flat =
          (static_cast<i64>(base.x) * a.ny + base.y) * a.nz + base.z;
      for (int c = 0; c < 8; ++c) {
        const i64 v = live ? flat + corner_off[c] : 0;
        didx[c][s] = static_cast<i32>(v);
        fidx[c][s] = static_cast<i32>(v * kColorFeatureDim);
      }
    }
    const F32 livev = V::Load(livef);
    const F32 one = V::Set1(1.0f);
    const F32 fxv = V::Load(fl.fx);
    const F32 fyv = V::Load(fl.fy);
    const F32 fzv = V::Load(fl.fz);
    F32 w[8], msk[8];
    for (int c = 0; c < 8; ++c) {
      const F32 wx = (c & 1) ? fxv : V::Sub(one, fxv);
      const F32 wy = ((c >> 1) & 1) ? fyv : V::Sub(one, fyv);
      const F32 wz = ((c >> 2) & 1) ? fzv : V::Sub(one, fzv);
      w[c] = V::Mul(V::Mul(wx, wy), wz);
      // The scalar loop skips w == 0 corners outright (no load, no add):
      // mask them out of the gather so their contribution is Mul(+0, +0).
      msk[c] = V::AndNot(V::CmpEq(w[c], V::Zero()), livev);
    }
    alignas(kSimdAlignment) float res[kVoxelFloats][kW];
    {
      F32 acc = V::Zero();
      for (int c = 0; c < 8; ++c) {
        const F32 d = V::GatherMasked(a.density, V::LoadI(didx[c]), msk[c]);
        acc = V::Add(acc, V::Mul(w[c], d));
      }
      V::Store(res[0], acc);
    }
    for (int ch = 0; ch < kColorFeatureDim; ++ch) {
      F32 acc = V::Zero();
      for (int c = 0; c < 8; ++c) {
        const F32 d =
            V::GatherMasked(a.features + ch, V::LoadI(fidx[c]), msk[c]);
        acc = V::Add(acc, V::Mul(w[c], d));
      }
      V::Store(res[1 + ch], acc);
    }
    for (int s = 0; s < m; ++s) {
      FieldSample& o = a.out[i0 + static_cast<std::size_t>(s)];
      o.density = res[0][s];
      for (int ch = 0; ch < kColorFeatureDim; ++ch) {
        o.features[static_cast<std::size_t>(ch)] = res[1 + ch][s];
      }
    }
  }
}

}  // namespace

const KernelTable kTable = {
    SPNF_PATH_NAME,        &MlpForwardFp32Kernel, &MlpForwardFp16Kernel,
    &GridTrilinearKernel,  &SpnerfBlendFp32Kernel, &SpnerfBlendFp16Kernel,
};
