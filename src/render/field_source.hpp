// Field sources: where the volume renderer gets (density, color feature)
// samples from. One renderer, four sources:
//   * AnalyticFieldSource — the procedural scene itself (ground truth);
//   * GridFieldSource     — trilinear interpolation over a dense grid
//                           (full-precision grid, or VQRF's restored grid);
//   * SpNeRFFieldSource   — the paper's pipeline: per-vertex online hash
//                           decode + trilinear interpolation, optionally with
//                           the TIU's FP16/INT8 arithmetic.
#pragma once

#include <memory>
#include <span>

#include "common/types.hpp"
#include "encoding/spnerf_codec.hpp"
#include "grid/dense_grid.hpp"
#include "scene/scene.hpp"

namespace spnerf {

struct FieldSample {
  float density = 0.0f;
  std::array<float, kColorFeatureDim> features{};
};

class FieldSource {
 public:
  virtual ~FieldSource() = default;
  /// Samples the field at a world position in [0,1]^3.
  [[nodiscard]] virtual FieldSample Sample(Vec3f world) const = 0;
  /// Counter-aware sampling: decode activity is accumulated into `counters`
  /// (caller-owned, may be a per-tile shard). Sources without a decode stage
  /// ignore it. This is the thread-safe entry point the render engine uses;
  /// distinct counter shards may be sampled concurrently.
  [[nodiscard]] virtual FieldSample Sample(Vec3f world,
                                           DecodeCounters* counters) const {
    (void)counters;
    return Sample(world);
  }
  /// Batched sampling: decodes `positions.size()` world positions into `out`
  /// in one call — the wavefront renderer's decode+interpolate stage. The
  /// contract is bit-identity with the scalar path: `out[i]` must equal
  /// `Sample(positions[i], counters)` exactly (values AND counter activity),
  /// so a batched render is byte-for-byte the scalar render. The default is
  /// the scalar loop; real sources override it with SoA implementations
  /// (shared-vertex dedup, no per-sample virtual dispatch). Thread-safe like
  /// the two-argument Sample: distinct counter shards may batch concurrently.
  virtual void SampleBatch(std::span<const Vec3f> positions,
                           std::span<FieldSample> out,
                           DecodeCounters* counters) const;
  [[nodiscard]] virtual const char* Name() const = 0;
};

/// Ground truth: evaluates the analytic scene fields directly.
class AnalyticFieldSource final : public FieldSource {
 public:
  explicit AnalyticFieldSource(const Scene& scene) : scene_(&scene) {}
  using FieldSource::Sample;  // keep the counter-aware overload visible
  [[nodiscard]] FieldSample Sample(Vec3f world) const override;
  /// Batched evaluation of the analytic fields (no decode stage; one devirt
  /// call for the whole front instead of one per sample).
  void SampleBatch(std::span<const Vec3f> positions,
                   std::span<FieldSample> out,
                   DecodeCounters* counters) const override;
  [[nodiscard]] const char* Name() const override { return "analytic"; }

 private:
  const Scene* scene_;
};

/// Trilinear interpolation over a dense voxel grid (corner-aligned
/// vertices). Used both for the full-precision grid and for VQRF's restored
/// grid.
class GridFieldSource final : public FieldSource {
 public:
  explicit GridFieldSource(const DenseGrid& grid) : grid_(&grid) {}
  using FieldSource::Sample;  // keep the counter-aware overload visible
  [[nodiscard]] FieldSample Sample(Vec3f world) const override;
  /// Batched trilinear gather: a setup pass computes every sample's base
  /// vertex and Eq. (2) weights into SoA scratch, then one gather pass walks
  /// the grid — per-sample arithmetic (corner order, accumulation order) is
  /// exactly the scalar body's, so results are bit-identical.
  void SampleBatch(std::span<const Vec3f> positions,
                   std::span<FieldSample> out,
                   DecodeCounters* counters) const override;
  [[nodiscard]] const char* Name() const override { return "dense-grid"; }

 private:
  const DenseGrid* grid_;
};

/// The SpNeRF online-decoding path: each of the 8 surrounding vertices is
/// decoded through bitmap + hash table + unified 18-bit lookup, then
/// trilinearly blended with Eq. (2) weights.
class SpNeRFFieldSource final : public FieldSource {
 public:
  /// When `fp16_tiu` is set, interpolation weights and accumulation are
  /// rounded to binary16, matching the hardware TIU exactly.
  ///
  /// The two-argument Sample overload writes decode activity to the
  /// caller-supplied counter shard and touches no source state, so one
  /// source instance can serve many render workers. The one-argument
  /// overload keeps the legacy convenience of an internal accumulator
  /// (enabled by `collect_counters`); that path is single-threaded only.
  explicit SpNeRFFieldSource(const SpNeRFModel& model, bool fp16_tiu = false,
                             bool collect_counters = true)
      : model_(&model),
        fp16_tiu_(fp16_tiu),
        collect_counters_(collect_counters),
        masking_(model.Params().bitmap_masking) {}

  /// Overrides the model's bitmap-masking setting for this source (used by
  /// the Fig 6(b) pre-mask vs post-mask comparison).
  void SetMasking(bool masking) { masking_ = masking; }
  [[nodiscard]] bool Masking() const { return masking_; }

  [[nodiscard]] FieldSample Sample(Vec3f world) const override {
    return Sample(world, collect_counters_ ? &counters_ : nullptr);
  }
  [[nodiscard]] FieldSample Sample(Vec3f world,
                                   DecodeCounters* counters) const override;
  /// Batched vertex decode + blend, the paper's dataflow in software: the
  /// setup pass computes bases/fractions, the dedup pass maps every
  /// non-zero-weight corner of the front to a unique-vertex list (adjacent
  /// samples share 4 of their 8 corners along a ray and across neighbouring
  /// rays), one SpNeRFModel::DecodeBatch call decodes each unique vertex
  /// once, and the blend pass re-applies the scalar corner loop against the
  /// decoded table. DecodeCounters are replicated per (sample, corner)
  /// reference from the per-vertex outcome class, so counters — like the
  /// blended values — are bit-identical to scalar sampling while the hash
  /// tables see a fraction of the lookups.
  void SampleBatch(std::span<const Vec3f> positions,
                   std::span<FieldSample> out,
                   DecodeCounters* counters) const override;

  /// Disables shared-corner deduplication in SampleBatch (every non-zero
  /// weight corner decodes individually, as scalar sampling does). For
  /// benchmarking the dedup win; results and counters are identical either
  /// way.
  void SetBatchDedup(bool dedup) { batch_dedup_ = dedup; }
  [[nodiscard]] bool BatchDedup() const { return batch_dedup_; }

  [[nodiscard]] const char* Name() const override { return "spnerf"; }

  [[nodiscard]] const DecodeCounters& Counters() const { return counters_; }
  void ResetCounters() { counters_ = {}; }

 private:
  const SpNeRFModel* model_;
  bool fp16_tiu_;
  bool collect_counters_;
  bool masking_;
  bool batch_dedup_ = true;
  mutable DecodeCounters counters_;  // one-argument Sample path only
};

namespace detail {

/// Computes the base vertex and interpolation fractions for a world position
/// (corner-aligned vertices); false when outside [0,1]^3.
inline bool SetupTrilinear(const GridDims& dims, Vec3f world, Vec3i& base,
                           Vec3f& frac) {
  if (world.x < 0.f || world.x > 1.f || world.y < 0.f || world.y > 1.f ||
      world.z < 0.f || world.z > 1.f) {
    return false;
  }
  const Vec3f g{world.x * static_cast<float>(dims.nx - 1),
                world.y * static_cast<float>(dims.ny - 1),
                world.z * static_cast<float>(dims.nz - 1)};
  base = Floor(g);
  base.x = Clamp(base.x, 0, dims.nx - 2);
  base.y = Clamp(base.y, 0, dims.ny - 2);
  base.z = Clamp(base.z, 0, dims.nz - 2);
  frac = g - ToFloat(base);
  frac = Clamp(frac, Vec3f{0.f, 0.f, 0.f}, Vec3f{1.f, 1.f, 1.f});
  return true;
}

}  // namespace detail

/// Generic trilinear field source over any codec exposing
/// `Dims()` and `VoxelData Decode(Vec3i)` — used by encoding extensions
/// (e.g. the two-choice codec) so they plug into the same renderer.
template <typename Codec>
class CodecFieldSource final : public FieldSource {
 public:
  explicit CodecFieldSource(const Codec& codec) : codec_(&codec) {}

  using FieldSource::Sample;  // keep the counter-aware overload visible
  [[nodiscard]] FieldSample Sample(Vec3f world) const override {
    FieldSample out;
    Vec3i base;
    Vec3f frac;
    if (!detail::SetupTrilinear(codec_->Dims(), world, base, frac)) return out;
    for (int corner = 0; corner < 8; ++corner) {
      const Vec3i v{base.x + (corner & 1), base.y + ((corner >> 1) & 1),
                    base.z + ((corner >> 2) & 1)};
      const float wx = (corner & 1) ? frac.x : 1.0f - frac.x;
      const float wy = ((corner >> 1) & 1) ? frac.y : 1.0f - frac.y;
      const float wz = ((corner >> 2) & 1) ? frac.z : 1.0f - frac.z;
      const float w = wx * wy * wz;
      if (w == 0.0f) continue;
      const VoxelData d = codec_->Decode(v);
      out.density += w * d.density;
      for (int c = 0; c < kColorFeatureDim; ++c)
        out.features[c] += w * d.features[c];
    }
    return out;
  }
  [[nodiscard]] const char* Name() const override { return "codec"; }

 private:
  const Codec* codec_;
};

}  // namespace spnerf
