// AVX2 + F16C instantiation of the generic wavefront kernels. This TU is
// compiled with -mavx2 -mf16c -ffp-contract=off (see CMakeLists.txt); the
// kernels are only ever dispatched to after a runtime
// __builtin_cpu_supports check (common/simd.cpp), so building them in does
// not raise the binary's baseline ISA.
#include "render/wavefront_kernels.hpp"

#if defined(__AVX2__) && defined(__F16C__)

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>

#include "common/aligned.hpp"
#include "common/half.hpp"
#include "common/simd_lanes_avx2.hpp"

#define SPNF_LANES ::spnerf::simd::LanesAvx2
#define SPNF_PATH_NAME "avx2"

namespace spnerf::wavefront {
namespace avx2impl {
#include "render/wavefront_kernels_impl.inl"
}  // namespace avx2impl

const KernelTable* Avx2Table() { return &avx2impl::kTable; }

}  // namespace spnerf::wavefront

#else  // !(__AVX2__ && __F16C__)

namespace spnerf::wavefront {
const KernelTable* Avx2Table() { return nullptr; }
}  // namespace spnerf::wavefront

#endif
