// AArch64 NEON instantiation of the generic wavefront kernels. Advanced
// SIMD is architectural baseline on ARMv8-A so no target flags are needed;
// the TU still carries -ffp-contract=off so intrinsic mul/add pairs are
// never fused.
#include "render/wavefront_kernels.hpp"

#if defined(__aarch64__)

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>

#include "common/aligned.hpp"
#include "common/half.hpp"
#include "common/simd_lanes_neon.hpp"

#define SPNF_LANES ::spnerf::simd::LanesNeon
#define SPNF_PATH_NAME "neon"

namespace spnerf::wavefront {
namespace neonimpl {
#include "render/wavefront_kernels_impl.inl"
}  // namespace neonimpl

const KernelTable* NeonTable() { return &neonimpl::kTable; }

}  // namespace spnerf::wavefront

#else  // !__aarch64__

namespace spnerf::wavefront {
const KernelTable* NeonTable() { return nullptr; }
}  // namespace spnerf::wavefront

#endif
