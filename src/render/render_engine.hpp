// Batched tile-based render engine: the single scheduling seam every
// rendering caller goes through (benches, examples, the per-scene pipeline,
// VolumeRenderer::Render itself and the serving layer).
//
// A RenderJob names what to render (field source, MLP, camera, options); the
// engine splits every job of a batch into square pixel tiles and feeds the
// flattened (job, tile) list to the persistent ThreadPool through an atomic
// cursor. Batches can be issued two ways: SubmitBatch enqueues the tiles as
// a detached pool region and returns per-job futures immediately, so a
// caller can keep several independent batches in flight on one pool;
// RenderBatch is the blocking wrapper (submit, help render, wait). Tile
// decomposition and per-job reduction order depend only on the image sizes
// — never on the worker count, the schedule, or what other batches are in
// flight — so a stats-on render is bit-identical from 1 thread to N.
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "common/image.hpp"
#include "common/parallel.hpp"
#include "render/camera.hpp"
#include "render/volume_renderer.hpp"

namespace spnerf {

/// One view to render. `source` and `mlp` are non-owning and must outlive
/// the batch — for SubmitBatch that means until every returned future is
/// ready; one source instance may back many jobs of a batch.
struct RenderJob {
  const FieldSource* source = nullptr;
  const Mlp* mlp = nullptr;
  Camera camera;
  RenderOptions options;
  /// Collect RenderStats and DecodeCounters for this view. Stats-on tiles
  /// render at full parallelism (per-tile shards, ordered reduction).
  bool collect_stats = false;
  /// Trace correlation id (obs/trace.hpp flow). Layers above set it to their
  /// request id so engine tile/job spans land on the request's timeline;
  /// 0 means uncorrelated.
  u64 trace_flow = 0;
};

struct RenderResult {
  Image image;
  RenderStats stats;        // zero unless the job collected stats
  DecodeCounters counters;  // zero unless the job collected stats
  /// Wall-clock from this batch's issue (the SubmitBatch/RenderBatch call)
  /// to the moment this job's last tile finished and its stats reduced —
  /// the batch's own issue-to-completion span. Under concurrent batches
  /// each batch reports its own clock (time spent interleaving with other
  /// in-flight batches included); jobs of one batch may report slightly
  /// different values because they complete tile-by-tile.
  double wall_ms = 0.0;
};

struct RenderEngineOptions {
  /// Square tile edge in pixels. Also the stat-shard granularity.
  int tile_size = 32;
  /// Cap on parallel workers; 0 uses every pool worker. A value above the
  /// global pool size builds a dedicated pool for the call — explicit
  /// oversubscription for machines where the detected core count is wrong
  /// (cgroup-limited containers under-report it).
  unsigned max_threads = 0;
  /// Pool to schedule on; nullptr uses ThreadPool::Global() (or a dedicated
  /// pool when max_threads exceeds its size, see above).
  ThreadPool* pool = nullptr;
};

class RenderEngine {
 public:
  explicit RenderEngine(RenderEngineOptions options = {});
  ~RenderEngine();

  [[nodiscard]] const RenderEngineOptions& Options() const { return options_; }

  /// Process-wide default engine (default options, global pool) — the one
  /// VolumeRenderer::Render schedules on when the caller passes no engine,
  /// so convenience renders never construct a throwaway engine per call.
  [[nodiscard]] static const RenderEngine& Shared();

  /// The pool this engine schedules batches on (the explicit options pool,
  /// the engine's dedicated oversubscription pool, or the global pool).
  /// Exposed so layers above can co-schedule their own detached work — the
  /// serving layer runs batch issue (pipeline acquisition, job setup) here.
  [[nodiscard]] ThreadPool& Pool() const { return SchedulePool(); }

  /// Renders one view. Equivalent to a one-job batch.
  [[nodiscard]] RenderResult Render(const RenderJob& job) const;

  /// Renders N views through one tile queue, blocking until every job is
  /// done: tiles of all jobs interleave across the workers (the calling
  /// thread helps), so short jobs do not leave the pool idle while a long
  /// job finishes. A wrapper over SubmitBatch.
  [[nodiscard]] std::vector<RenderResult> RenderBatch(
      const std::vector<RenderJob>& jobs) const;

  /// Asynchronous submission: enqueues the batch's tiles as a detached pool
  /// region and returns one future per job, each becoming ready when that
  /// job's last tile finishes. Several batches can be in flight at once;
  /// later batches overlap with earlier ones — their tiles start as soon
  /// as any worker seat frees up (small batches interleave fully; a long
  /// batch's tail no longer idles the pool). A job whose render throws
  /// delivers the exception through its future (get() rethrows) instead of
  /// terminating a pool worker. On a pool with no worker threads
  /// (WorkerCount() == 1) the batch renders inline before SubmitBatch
  /// returns — the sequential fallback; the futures still behave
  /// identically.
  [[nodiscard]] std::vector<std::future<RenderResult>> SubmitBatch(
      std::vector<RenderJob> jobs) const;

  /// Callback flavor of the async path: delivers the batch's per-job
  /// futures — every one already ready — to `on_complete` once the whole
  /// batch finished. get() on each future returns the job's result or
  /// rethrows its render error. The callback runs on a pool worker (inline
  /// on the calling thread when the pool has no worker threads — callers
  /// must tolerate completion before SubmitBatch returns). Futures arrive
  /// in job order.
  void SubmitBatch(
      std::vector<RenderJob> jobs,
      std::function<void(std::vector<std::future<RenderResult>>)> on_complete)
      const;

 private:
  struct BatchState;

  [[nodiscard]] ThreadPool& SchedulePool() const;
  [[nodiscard]] std::shared_ptr<BatchState> PrepareBatch(
      std::vector<RenderJob> jobs) const;

  RenderEngineOptions options_;
  // Owned pool for explicit oversubscription (max_threads beyond the global
  // pool), built once per engine rather than per render call.
  std::unique_ptr<ThreadPool> dedicated_;
  // Recycled batch records (common/object_pool.hpp): PrepareBatch acquires
  // one per batch, the batch's last shared_ptr reference releases it. The
  // record keeps its grown task/shard/latch storage between uses, so the
  // steady-state serving path (one SubmitBatch per dispatched request)
  // stops allocating a fresh BatchState per request. Held by shared_ptr
  // because each batch's deleter co-owns the pool: the last in-flight batch
  // may finish on a worker after the engine itself was destroyed (the
  // engine has never been required to outlive its batches — only the
  // sources, the MLPs and the thread pool are).
  mutable std::shared_ptr<ObjectPool<BatchState>> batch_pool_;
};

}  // namespace spnerf
