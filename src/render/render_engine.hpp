// Batched tile-based render engine: the single scheduling seam every
// rendering caller goes through (benches, examples, the per-scene pipeline
// and VolumeRenderer::Render itself).
//
// A RenderJob names what to render (field source, MLP, camera, options); the
// engine splits every job of a batch into square pixel tiles, feeds the
// flattened (job, tile) list to the persistent ThreadPool through an atomic
// cursor, and reduces the per-tile statistic shards in tile order. Tile
// decomposition and reduction order depend only on the image sizes — never
// on the worker count or schedule — so a stats-on render is bit-identical
// from 1 thread to N.
#pragma once

#include <memory>
#include <vector>

#include "common/image.hpp"
#include "common/parallel.hpp"
#include "render/camera.hpp"
#include "render/volume_renderer.hpp"

namespace spnerf {

/// One view to render. `source` and `mlp` are non-owning and must outlive
/// the engine call; one source instance may back many jobs of a batch.
struct RenderJob {
  const FieldSource* source = nullptr;
  const Mlp* mlp = nullptr;
  Camera camera;
  RenderOptions options;
  /// Collect RenderStats and DecodeCounters for this view. Stats-on tiles
  /// render at full parallelism (per-tile shards, ordered reduction).
  bool collect_stats = false;
};

struct RenderResult {
  Image image;
  RenderStats stats;        // zero unless the job collected stats
  DecodeCounters counters;  // zero unless the job collected stats
  /// Wall-clock of the engine call that produced this result. Jobs of one
  /// batch share the scheduler, so they report the same batch wall time.
  double wall_ms = 0.0;
};

struct RenderEngineOptions {
  /// Square tile edge in pixels. Also the stat-shard granularity.
  int tile_size = 32;
  /// Cap on parallel workers; 0 uses every pool worker. A value above the
  /// global pool size builds a dedicated pool for the call — explicit
  /// oversubscription for machines where the detected core count is wrong
  /// (cgroup-limited containers under-report it).
  unsigned max_threads = 0;
  /// Pool to schedule on; nullptr uses ThreadPool::Global() (or a dedicated
  /// pool when max_threads exceeds its size, see above).
  ThreadPool* pool = nullptr;
};

class RenderEngine {
 public:
  explicit RenderEngine(RenderEngineOptions options = {});

  [[nodiscard]] const RenderEngineOptions& Options() const { return options_; }

  /// Renders one view. Equivalent to a one-job batch.
  [[nodiscard]] RenderResult Render(const RenderJob& job) const;

  /// Renders N views through one tile queue: tiles of all jobs interleave
  /// across the workers, so short jobs do not leave the pool idle while a
  /// long job finishes.
  [[nodiscard]] std::vector<RenderResult> RenderBatch(
      const std::vector<RenderJob>& jobs) const;

 private:
  [[nodiscard]] ThreadPool& SchedulePool() const;

  RenderEngineOptions options_;
  // Owned pool for explicit oversubscription (max_threads beyond the global
  // pool), built once per engine rather than per render call.
  std::unique_ptr<ThreadPool> dedicated_;
};

}  // namespace spnerf
