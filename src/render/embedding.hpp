// View-direction frequency embedding. The MLP input is the 12-d interpolated
// color feature concatenated with this 27-d embedding (3 raw components +
// sin/cos at 4 octaves x 3 components), giving the paper's 39-element MLP
// input vector.
#pragma once

#include <array>

#include "common/types.hpp"
#include "common/vec.hpp"

namespace spnerf {

inline constexpr int kViewEmbedFreqs = 4;
inline constexpr int kViewEmbedDim = 3 + 2 * kViewEmbedFreqs * 3;  // 27
static_assert(kColorFeatureDim + kViewEmbedDim == kMlpInputDim);

using ViewEmbedding = std::array<float, kViewEmbedDim>;

/// Embeds a (unit) view direction: [d, sin(2^k d), cos(2^k d)] for k < 4.
ViewEmbedding EmbedViewDirection(Vec3f dir);

/// Assembles the full 39-d MLP input from a feature vector and embedding.
std::array<float, kMlpInputDim> AssembleMlpInput(
    const std::array<float, kColorFeatureDim>& feature,
    const ViewEmbedding& view);

}  // namespace spnerf
