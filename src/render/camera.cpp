#include "render/camera.hpp"

#include <cmath>

#include "common/error.hpp"

namespace spnerf {

Camera::Camera(Vec3f position, Vec3f look_at, Vec3f up, float fov_y_deg,
               int width, int height)
    : position_(position), width_(width), height_(height) {
  SPNERF_CHECK_MSG(width > 0 && height > 0, "camera needs positive resolution");
  SPNERF_CHECK_MSG(fov_y_deg > 0.0f && fov_y_deg < 180.0f,
                   "fov must be in (0, 180)");
  forward_ = (look_at - position).Normalized();
  SPNERF_CHECK_MSG(forward_.Norm2() > 0.0f, "camera position equals look_at");
  right_ = up.Cross(forward_).Normalized();
  SPNERF_CHECK_MSG(right_.Norm2() > 0.0f, "up is parallel to view direction");
  up_ = forward_.Cross(right_);
  tan_half_fov_ = std::tan(fov_y_deg * 0.5f * 3.14159265358979f / 180.0f);
}

Ray Camera::PixelRay(int px, int py) const {
  SPNERF_CHECK(px >= 0 && px < width_ && py >= 0 && py < height_);
  const float aspect = static_cast<float>(width_) / static_cast<float>(height_);
  const float u =
      (2.0f * (static_cast<float>(px) + 0.5f) / static_cast<float>(width_) -
       1.0f) *
      tan_half_fov_ * aspect;
  // Image y grows downward; world up is +up_.
  const float v =
      (1.0f -
       2.0f * (static_cast<float>(py) + 0.5f) / static_cast<float>(height_)) *
      tan_half_fov_;
  Ray ray;
  ray.origin = position_;
  ray.direction = (forward_ + right_ * u + up_ * v).Normalized();
  return ray;
}

std::vector<Camera> OrbitCameras(int count, Vec3f center, float radius,
                                 float elevation_deg, float fov_y_deg,
                                 int width, int height) {
  SPNERF_CHECK_MSG(count > 0, "need at least one camera");
  std::vector<Camera> cams;
  cams.reserve(static_cast<std::size_t>(count));
  const float el = elevation_deg * 3.14159265358979f / 180.0f;
  for (int i = 0; i < count; ++i) {
    const float az =
        2.0f * 3.14159265358979f * static_cast<float>(i) / static_cast<float>(count);
    const Vec3f pos{center.x + radius * std::cos(el) * std::cos(az),
                    center.y + radius * std::sin(el),
                    center.z + radius * std::cos(el) * std::sin(az)};
    cams.emplace_back(pos, center, Vec3f{0.f, 1.f, 0.f}, fov_y_deg, width,
                      height);
  }
  return cams;
}

bool IntersectAabb(const Ray& ray, const Aabb& box, float& t_near,
                   float& t_far) {
  float t0 = 0.0f;
  float t1 = std::numeric_limits<float>::max();
  for (int axis = 0; axis < 3; ++axis) {
    const float o = ray.origin[axis];
    const float d = ray.direction[axis];
    const float lo = box.lo[axis];
    const float hi = box.hi[axis];
    if (std::fabs(d) < 1e-12f) {
      if (o < lo || o > hi) return false;
      continue;
    }
    float ta = (lo - o) / d;
    float tb = (hi - o) / d;
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return false;
  }
  t_near = t0;
  t_far = t1;
  return true;
}

}  // namespace spnerf
