#include "render/field_source.hpp"

#include <cmath>

#include "common/half.hpp"

namespace spnerf {
namespace {

struct VertexPayload {
  float density;
  std::array<float, kColorFeatureDim> features;
};

}  // namespace

FieldSample AnalyticFieldSource::Sample(Vec3f world) const {
  FieldSample s;
  s.density = scene_->Density(world);
  if (s.density > 0.0f) s.features = scene_->ColorFeature(world);
  return s;
}

FieldSample GridFieldSource::Sample(Vec3f world) const {
  FieldSample out;
  Vec3i base;
  Vec3f frac;
  if (!detail::SetupTrilinear(grid_->Dims(), world, base, frac)) return out;

  for (int corner = 0; corner < 8; ++corner) {
    const Vec3i v{base.x + (corner & 1), base.y + ((corner >> 1) & 1),
                  base.z + ((corner >> 2) & 1)};
    // Eq. (2): w = (1-|xp-xg|)(1-|yp-yg|)(1-|zp-zg|) in grid units.
    const float wx = (corner & 1) ? frac.x : 1.0f - frac.x;
    const float wy = ((corner >> 1) & 1) ? frac.y : 1.0f - frac.y;
    const float wz = ((corner >> 2) & 1) ? frac.z : 1.0f - frac.z;
    const float w = wx * wy * wz;
    if (w == 0.0f) continue;
    const VoxelIndex idx = grid_->Dims().Flatten(v);
    out.density += w * grid_->Density(idx);
    const float* f = grid_->Features(idx);
    for (int c = 0; c < kColorFeatureDim; ++c) out.features[c] += w * f[c];
  }
  return out;
}

FieldSample SpNeRFFieldSource::Sample(Vec3f world,
                                      DecodeCounters* counters) const {
  FieldSample out;
  Vec3i base;
  Vec3f frac;
  if (!detail::SetupTrilinear(model_->Dims(), world, base, frac)) return out;

  if (!fp16_tiu_) {
    for (int corner = 0; corner < 8; ++corner) {
      const Vec3i v{base.x + (corner & 1), base.y + ((corner >> 1) & 1),
                    base.z + ((corner >> 2) & 1)};
      const float wx = (corner & 1) ? frac.x : 1.0f - frac.x;
      const float wy = ((corner >> 1) & 1) ? frac.y : 1.0f - frac.y;
      const float wz = ((corner >> 2) & 1) ? frac.z : 1.0f - frac.z;
      const float w = wx * wy * wz;
      if (w == 0.0f) continue;
      const VoxelData d = model_->Decode(v, masking_, counters);
      out.density += w * d.density;
      for (int c = 0; c < kColorFeatureDim; ++c)
        out.features[c] += w * d.features[c];
    }
    return out;
  }

  // FP16 TIU path: weights from the GID's FP16 multipliers, accumulation via
  // FP16 FMAs (C_interp = sum_i w_i * (s * C_i), paper IV-B).
  Half density_acc(0.0f);
  Half feat_acc[kColorFeatureDim] = {};
  for (int corner = 0; corner < 8; ++corner) {
    const Vec3i v{base.x + (corner & 1), base.y + ((corner >> 1) & 1),
                  base.z + ((corner >> 2) & 1)};
    const Half wx((corner & 1) ? frac.x : 1.0f - frac.x);
    const Half wy(((corner >> 1) & 1) ? frac.y : 1.0f - frac.y);
    const Half wz(((corner >> 2) & 1) ? frac.z : 1.0f - frac.z);
    const Half w = wx * wy * wz;
    if (w.IsZero()) continue;
    const VoxelData d = model_->Decode(v, masking_, counters);
    density_acc = Half::Fma(w, Half(d.density), density_acc);
    for (int c = 0; c < kColorFeatureDim; ++c)
      feat_acc[c] = Half::Fma(w, Half(d.features[c]), feat_acc[c]);
  }
  out.density = density_acc.ToFloat();
  for (int c = 0; c < kColorFeatureDim; ++c)
    out.features[c] = feat_acc[c].ToFloat();
  return out;
}

}  // namespace spnerf
