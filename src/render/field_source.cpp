#include "render/field_source.hpp"

#include <climits>
#include <cmath>
#include <unordered_map>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "render/wavefront_kernels.hpp"

namespace spnerf {

void FieldSource::SampleBatch(std::span<const Vec3f> positions,
                              std::span<FieldSample> out,
                              DecodeCounters* counters) const {
  SPNERF_CHECK_MSG(out.size() == positions.size(),
                   "SampleBatch span sizes must match");
  for (std::size_t i = 0; i < positions.size(); ++i) {
    out[i] = Sample(positions[i], counters);
  }
}

FieldSample AnalyticFieldSource::Sample(Vec3f world) const {
  FieldSample s;
  s.density = scene_->Density(world);
  if (s.density > 0.0f) s.features = scene_->ColorFeature(world);
  return s;
}

void AnalyticFieldSource::SampleBatch(std::span<const Vec3f> positions,
                                      std::span<FieldSample> out,
                                      DecodeCounters* counters) const {
  SPNERF_CHECK_MSG(out.size() == positions.size(),
                   "SampleBatch span sizes must match");
  (void)counters;  // no decode stage
  for (std::size_t i = 0; i < positions.size(); ++i) {
    FieldSample s;
    s.density = scene_->Density(positions[i]);
    if (s.density > 0.0f) s.features = scene_->ColorFeature(positions[i]);
    out[i] = s;
  }
}

FieldSample GridFieldSource::Sample(Vec3f world) const {
  FieldSample out;
  Vec3i base;
  Vec3f frac;
  if (!detail::SetupTrilinear(grid_->Dims(), world, base, frac)) return out;

  for (int corner = 0; corner < 8; ++corner) {
    const Vec3i v{base.x + (corner & 1), base.y + ((corner >> 1) & 1),
                  base.z + ((corner >> 2) & 1)};
    // Eq. (2): w = (1-|xp-xg|)(1-|yp-yg|)(1-|zp-zg|) in grid units.
    const float wx = (corner & 1) ? frac.x : 1.0f - frac.x;
    const float wy = ((corner >> 1) & 1) ? frac.y : 1.0f - frac.y;
    const float wz = ((corner >> 2) & 1) ? frac.z : 1.0f - frac.z;
    const float w = wx * wy * wz;
    if (w == 0.0f) continue;
    const VoxelIndex idx = grid_->Dims().Flatten(v);
    out.density += w * grid_->Density(idx);
    const float* f = grid_->Features(idx);
    for (int c = 0; c < kColorFeatureDim; ++c) out.features[c] += w * f[c];
  }
  return out;
}

void GridFieldSource::SampleBatch(std::span<const Vec3f> positions,
                                  std::span<FieldSample> out,
                                  DecodeCounters* counters) const {
  SPNERF_CHECK_MSG(out.size() == positions.size(),
                   "SampleBatch span sizes must match");
  (void)counters;  // no decode stage
  struct Scratch {
    AlignedVector<Vec3i> base;
    AlignedVector<Vec3f> frac;
    AlignedVector<u8> inside;
  };
  thread_local Scratch s;
  const std::size_t n = positions.size();
  s.base.resize(n);
  s.frac.resize(n);
  s.inside.resize(n);

  const GridDims& dims = grid_->Dims();
  for (std::size_t i = 0; i < n; ++i) {
    s.inside[i] =
        detail::SetupTrilinear(dims, positions[i], s.base[i], s.frac[i]) ? 1
                                                                         : 0;
  }
  // Gather pass, vectorised across samples when a SIMD kernel is active.
  // The kernels use 32-bit gather indices, so oversized grids (flattened
  // feature index would overflow i32) take the scalar loop below instead.
  if (const wavefront::KernelTable* kt = wavefront::Active();
      kt != nullptr && kt->grid_trilinear != nullptr && n > 0 &&
      dims.VoxelCount() * kColorFeatureDim <= static_cast<u64>(INT_MAX)) {
    wavefront::GridTrilinearArgs args;
    args.base = s.base.data();
    args.frac = s.frac.data();
    args.inside = s.inside.data();
    args.density = grid_->DensityRaw().data();
    args.features = grid_->FeaturesRaw().data();
    args.ny = dims.ny;
    args.nz = dims.nz;
    args.out = out.data();
    args.n = n;
    kt->grid_trilinear(args);
    return;
  }
  // Scalar reference gather pass (also the SIMD bit-exactness oracle): the
  // scalar corner loop per sample, against precomputed bases/fractions.
  // Identical corner enumeration and accumulation order keep every sample
  // bit-identical to Sample().
  for (std::size_t i = 0; i < n; ++i) {
    FieldSample acc;
    if (s.inside[i]) {
      const Vec3i base = s.base[i];
      const Vec3f frac = s.frac[i];
      for (int corner = 0; corner < 8; ++corner) {
        const Vec3i v{base.x + (corner & 1), base.y + ((corner >> 1) & 1),
                      base.z + ((corner >> 2) & 1)};
        const float wx = (corner & 1) ? frac.x : 1.0f - frac.x;
        const float wy = ((corner >> 1) & 1) ? frac.y : 1.0f - frac.y;
        const float wz = ((corner >> 2) & 1) ? frac.z : 1.0f - frac.z;
        const float w = wx * wy * wz;
        if (w == 0.0f) continue;
        const VoxelIndex idx = dims.Flatten(v);
        acc.density += w * grid_->Density(idx);
        const float* f = grid_->Features(idx);
        for (int c = 0; c < kColorFeatureDim; ++c) acc.features[c] += w * f[c];
      }
    }
    out[i] = acc;
  }
}

FieldSample SpNeRFFieldSource::Sample(Vec3f world,
                                      DecodeCounters* counters) const {
  FieldSample out;
  Vec3i base;
  Vec3f frac;
  if (!detail::SetupTrilinear(model_->Dims(), world, base, frac)) return out;

  if (!fp16_tiu_) {
    for (int corner = 0; corner < 8; ++corner) {
      const Vec3i v{base.x + (corner & 1), base.y + ((corner >> 1) & 1),
                    base.z + ((corner >> 2) & 1)};
      const float wx = (corner & 1) ? frac.x : 1.0f - frac.x;
      const float wy = ((corner >> 1) & 1) ? frac.y : 1.0f - frac.y;
      const float wz = ((corner >> 2) & 1) ? frac.z : 1.0f - frac.z;
      const float w = wx * wy * wz;
      if (w == 0.0f) continue;
      const VoxelData d = model_->Decode(v, masking_, counters);
      out.density += w * d.density;
      for (int c = 0; c < kColorFeatureDim; ++c)
        out.features[c] += w * d.features[c];
    }
    return out;
  }

  // FP16 TIU path: weights from the GID's FP16 multipliers, accumulation via
  // FP16 FMAs (C_interp = sum_i w_i * (s * C_i), paper IV-B).
  Half density_acc(0.0f);
  Half feat_acc[kColorFeatureDim] = {};
  for (int corner = 0; corner < 8; ++corner) {
    const Vec3i v{base.x + (corner & 1), base.y + ((corner >> 1) & 1),
                  base.z + ((corner >> 2) & 1)};
    const Half wx((corner & 1) ? frac.x : 1.0f - frac.x);
    const Half wy(((corner >> 1) & 1) ? frac.y : 1.0f - frac.y);
    const Half wz(((corner >> 2) & 1) ? frac.z : 1.0f - frac.z);
    const Half w = wx * wy * wz;
    if (w.IsZero()) continue;
    const VoxelData d = model_->Decode(v, masking_, counters);
    density_acc = Half::Fma(w, Half(d.density), density_acc);
    for (int c = 0; c < kColorFeatureDim; ++c)
      feat_acc[c] = Half::Fma(w, Half(d.features[c]), feat_acc[c]);
  }
  out.density = density_acc.ToFloat();
  for (int c = 0; c < kColorFeatureDim; ++c)
    out.features[c] = feat_acc[c].ToFloat();
  return out;
}

void SpNeRFFieldSource::SampleBatch(std::span<const Vec3f> positions,
                                    std::span<FieldSample> out,
                                    DecodeCounters* counters) const {
  SPNERF_CHECK_MSG(out.size() == positions.size(),
                   "SampleBatch span sizes must match");
  constexpr u32 kNoRef = wavefront::kNoVertexRef;
  struct Scratch {
    AlignedVector<Vec3i> base;
    AlignedVector<Vec3f> frac;
    AlignedVector<u8> inside;
    AlignedVector<u32> refs;  // 8 per sample: unique-vertex slot or kNoRef
    std::unordered_map<u64, u32> vertex_slot;  // flattened index -> slot
    std::vector<Vec3i> unique;
    std::vector<u32> ref_count;  // per slot: (sample, corner) references
    AlignedVector<VoxelData> decoded;
    std::vector<DecodeClass> classes;
  };
  thread_local Scratch s;
  const std::size_t n = positions.size();
  s.base.resize(n);
  s.frac.resize(n);
  s.inside.resize(n);
  s.refs.assign(n * 8, kNoRef);
  s.vertex_slot.clear();
  s.unique.clear();
  s.ref_count.clear();

  const GridDims& dims = model_->Dims();

  // Setup + dedup pass: register every corner the scalar path would decode
  // (non-zero Eq. (2) weight, under the active arithmetic mode) against the
  // unique-vertex list. Adjacent samples of a wavefront share corners, so
  // the list is much shorter than 8N references.
  for (std::size_t i = 0; i < n; ++i) {
    s.inside[i] =
        detail::SetupTrilinear(dims, positions[i], s.base[i], s.frac[i]) ? 1
                                                                         : 0;
    if (!s.inside[i]) continue;
    const Vec3i base = s.base[i];
    const Vec3f frac = s.frac[i];
    for (int corner = 0; corner < 8; ++corner) {
      const float wx = (corner & 1) ? frac.x : 1.0f - frac.x;
      const float wy = ((corner >> 1) & 1) ? frac.y : 1.0f - frac.y;
      const float wz = ((corner >> 2) & 1) ? frac.z : 1.0f - frac.z;
      // Replicate the scalar skip test exactly: float product for the FP32
      // path, binary16 product for the TIU path (which may flush where the
      // float product is tiny-but-non-zero).
      const bool skip = fp16_tiu_ ? (Half(wx) * Half(wy) * Half(wz)).IsZero()
                                  : (wx * wy * wz) == 0.0f;
      if (skip) continue;
      const Vec3i v{base.x + (corner & 1), base.y + ((corner >> 1) & 1),
                    base.z + ((corner >> 2) & 1)};
      u32 slot;
      if (batch_dedup_) {
        const auto [it, fresh] = s.vertex_slot.try_emplace(
            dims.Flatten(v), static_cast<u32>(s.unique.size()));
        slot = it->second;
        if (fresh) {
          s.unique.push_back(v);
          s.ref_count.push_back(0);
        }
      } else {
        slot = static_cast<u32>(s.unique.size());
        s.unique.push_back(v);
        s.ref_count.push_back(0);
      }
      ++s.ref_count[slot];
      s.refs[i * 8 + static_cast<std::size_t>(corner)] = slot;
    }
  }

  // Decode pass: each unique vertex runs bitmap/hash/18-bit lookup once;
  // counters replicate per reference, so totals match scalar sampling
  // exactly (integer adds commute).
  s.decoded.resize(s.unique.size());
  s.classes.resize(s.unique.size());
  model_->DecodeBatch(s.unique, masking_, s.decoded, s.classes);
  if (counters) {
    for (std::size_t k = 0; k < s.unique.size(); ++k) {
      counters->AddQueries(s.classes[k], s.ref_count[k]);
    }
  }

  // Blend pass, vectorised across samples when a SIMD kernel is active
  // (32-bit gather indices: fall back to scalar if the unique-vertex table
  // could overflow them — practically unreachable for wavefront fronts).
  if (const wavefront::KernelTable* kt = wavefront::Active();
      kt != nullptr && kt->spnerf_blend_fp32 != nullptr && n > 0 &&
      s.unique.size() * (1 + kColorFeatureDim) <=
          static_cast<std::size_t>(INT_MAX)) {
    wavefront::SpnerfBlendArgs args;
    args.frac = s.frac.data();
    args.inside = s.inside.data();
    args.refs = s.refs.data();
    args.decoded = s.decoded.data();
    args.out = out.data();
    args.n = n;
    (fp16_tiu_ ? kt->spnerf_blend_fp16 : kt->spnerf_blend_fp32)(args);
    return;
  }

  // Scalar reference blend pass (also the SIMD bit-exactness oracle): the
  // scalar corner loop per sample against the decoded table — same corner
  // order, same accumulation order, same arithmetic mode, hence
  // bit-identical blended samples.
  for (std::size_t i = 0; i < n; ++i) {
    FieldSample acc;
    if (s.inside[i]) {
      const Vec3f frac = s.frac[i];
      const u32* refs = &s.refs[i * 8];
      if (!fp16_tiu_) {
        for (int corner = 0; corner < 8; ++corner) {
          if (refs[corner] == kNoRef) continue;
          const float wx = (corner & 1) ? frac.x : 1.0f - frac.x;
          const float wy = ((corner >> 1) & 1) ? frac.y : 1.0f - frac.y;
          const float wz = ((corner >> 2) & 1) ? frac.z : 1.0f - frac.z;
          const float w = wx * wy * wz;
          const VoxelData& d = s.decoded[refs[corner]];
          acc.density += w * d.density;
          for (int c = 0; c < kColorFeatureDim; ++c)
            acc.features[c] += w * d.features[c];
        }
      } else {
        Half density_acc(0.0f);
        Half feat_acc[kColorFeatureDim] = {};
        for (int corner = 0; corner < 8; ++corner) {
          if (refs[corner] == kNoRef) continue;
          const Half wx((corner & 1) ? frac.x : 1.0f - frac.x);
          const Half wy(((corner >> 1) & 1) ? frac.y : 1.0f - frac.y);
          const Half wz(((corner >> 2) & 1) ? frac.z : 1.0f - frac.z);
          const Half w = wx * wy * wz;
          const VoxelData& d = s.decoded[refs[corner]];
          density_acc = Half::Fma(w, Half(d.density), density_acc);
          for (int c = 0; c < kColorFeatureDim; ++c)
            feat_acc[c] = Half::Fma(w, Half(d.features[c]), feat_acc[c]);
        }
        acc.density = density_acc.ToFloat();
        for (int c = 0; c < kColorFeatureDim; ++c)
          acc.features[c] = feat_acc[c].ToFloat();
      }
    }
    out[i] = acc;
  }
}

}  // namespace spnerf
