#include "render/embedding.hpp"

#include <cmath>

namespace spnerf {

ViewEmbedding EmbedViewDirection(Vec3f dir) {
  ViewEmbedding e{};
  e[0] = dir.x;
  e[1] = dir.y;
  e[2] = dir.z;
  int at = 3;
  for (int k = 0; k < kViewEmbedFreqs; ++k) {
    const float scale = static_cast<float>(1 << k);
    for (int c = 0; c < 3; ++c) {
      e[at++] = std::sin(scale * dir[c]);
    }
    for (int c = 0; c < 3; ++c) {
      e[at++] = std::cos(scale * dir[c]);
    }
  }
  return e;
}

std::array<float, kMlpInputDim> AssembleMlpInput(
    const std::array<float, kColorFeatureDim>& feature,
    const ViewEmbedding& view) {
  std::array<float, kMlpInputDim> in{};
  for (int c = 0; c < kColorFeatureDim; ++c) in[c] = feature[c];
  for (int c = 0; c < kViewEmbedDim; ++c) in[kColorFeatureDim + c] = view[c];
  return in;
}

}  // namespace spnerf
