#include "render/wavefront_kernels.hpp"

namespace spnerf::wavefront {

const KernelTable* ForPath(simd::Path path) {
  switch (path) {
    case simd::Path::kScalar:
      // The scalar reference lives inline at the call sites (mlp.cpp,
      // field_source.cpp) so it can never rot independently of the oracle
      // the differential tests compare against.
      return nullptr;
    case simd::Path::kAvx2:
      return Avx2Table();
    case simd::Path::kNeon:
      return NeonTable();
  }
  return nullptr;
}

const KernelTable* Active() { return ForPath(simd::ActivePath()); }

}  // namespace spnerf::wavefront
