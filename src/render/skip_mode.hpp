// Empty-space-skip structure selection for the ray marchers: the
// hierarchical occupancy octree (multi-level DDA skipping), or the original
// flat per-supervoxel CoarseOccupancy probe kept in-tree as the
// differential oracle — the same scalar-reference-first rule the SIMD and
// dispatch layers follow (common/simd.hpp, common/dispatch.hpp).
//
//   * The mode is process-global, resolved once from the SPNF_SKIP
//     environment variable ("octree" | "flat"); absent or unparseable
//     values resolve to octree (the default fast path).
//   * Renderers capture the mode AT CONSTRUCTION (the engine builds one
//     VolumeRenderer per job), so a job never changes skip structure
//     mid-render; tests and benches flip the mode programmatically via
//     SetActiveMode and construct fresh jobs per mode.
//   * Both modes are required to produce bit-identical results: images,
//     RenderStats (including coarse_skips/steps) and DecodeCounters — the
//     octree path replays the flat path's t-update chain across empty
//     cells exactly, and the differential CI legs run the render suites
//     under both.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace spnerf::skip {

/// Skip structures. kFlat is the original one-probe-per-supervoxel path —
/// always available, and the correctness oracle kOctree is differentially
/// tested against.
enum class Mode : u8 {
  kFlat = 0,
  kOctree,
};

/// Lower-case mode name ("flat", "octree") — used in bench entry names and
/// the SPNF_SKIP override.
[[nodiscard]] const char* ModeName(Mode mode);

/// Parses a mode name; returns false (and leaves `out` untouched) for
/// unknown strings. Case-sensitive: the override contract is lower-case.
bool ParseModeName(std::string_view name, Mode& out);

/// The mode newly constructed renderers adopt. First call resolves the
/// SPNF_SKIP override; later calls are one relaxed atomic load.
[[nodiscard]] Mode ActiveMode();

/// Forces the mode for renderers constructed from now on (tests, benches,
/// operational override). Returns the previously active mode, so callers
/// can save/restore around a scoped override.
Mode SetActiveMode(Mode mode);

/// Pure resolution rule for an override string, exposed for tests:
/// nullptr/empty -> kOctree (default); a parseable name -> that mode;
/// garbage -> kOctree with a warning.
[[nodiscard]] Mode ResolveOverride(const char* value);

}  // namespace spnerf::skip
