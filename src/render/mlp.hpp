// The rendering MLP: 3 layers with channel sizes 128, 128, 3 (paper IV-C),
// ReLU hidden activations and sigmoid RGB output — the DVGO/VQRF "rgbnet".
// Weights are seeded deterministically (the repo has no training loop; the
// MLP is a fixed decoder, identical across all compared pipelines, so any
// feature error propagates to RGB exactly as in the real system).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/vec.hpp"

namespace spnerf {

class Mlp {
 public:
  Mlp() = default;

  /// Xavier-uniform initialisation from a seed.
  static Mlp Random(u64 seed);

  /// Forward pass for one 39-d input; returns RGB in [0,1].
  [[nodiscard]] Vec3f Forward(const std::array<float, kMlpInputDim>& in) const;

  /// Forward pass with every intermediate rounded to FP16 — bit-faithful to
  /// the accelerator's systolic datapath (FP16 MACs, FP32 accumulate is NOT
  /// used; the array is FP16 end-to-end).
  [[nodiscard]] Vec3f ForwardFp16(
      const std::array<float, kMlpInputDim>& in) const;

  /// Batched forward pass: shades `in.size()` inputs as a blocked matrix
  /// product — each weight row streams across a block of samples while it is
  /// hot in cache, the software analogue of the systolic array's
  /// weight-stationary reuse. The per-sample accumulation chain (bias first,
  /// then inputs in index order) is exactly Forward()'s, so `out[i]` is
  /// bit-identical to `Forward(in[i])`.
  void ForwardBatch(std::span<const std::array<float, kMlpInputDim>> in,
                    std::span<Vec3f> out) const;

  /// FP16 flavour of ForwardBatch; `out[i]` is bit-identical to
  /// `ForwardFp16(in[i])`.
  void ForwardFp16Batch(std::span<const std::array<float, kMlpInputDim>> in,
                        std::span<Vec3f> out) const;

  /// MAC count of one forward pass (used by performance models):
  /// 39*128 + 128*128 + 128*3.
  static constexpr u64 MacsPerSample() {
    return static_cast<u64>(kMlpInputDim) * kMlpHiddenDim +
           static_cast<u64>(kMlpHiddenDim) * kMlpHiddenDim +
           static_cast<u64>(kMlpHiddenDim) * kMlpOutputDim;
  }

  /// Total parameter count (weights + biases).
  static constexpr u64 ParameterCount() {
    return static_cast<u64>(kMlpInputDim) * kMlpHiddenDim + kMlpHiddenDim +
           static_cast<u64>(kMlpHiddenDim) * kMlpHiddenDim + kMlpHiddenDim +
           static_cast<u64>(kMlpHiddenDim) * kMlpOutputDim + kMlpOutputDim;
  }

  /// Weight-buffer bytes when stored FP16 on chip.
  static constexpr u64 WeightBytesFp16() { return ParameterCount() * 2; }

  // Row-major weight accessors (layer 0: [hidden x in], 1: [hidden x hidden],
  // 2: [out x hidden]); used by the systolic-array simulator.
  [[nodiscard]] const std::vector<float>& W(int layer) const;
  [[nodiscard]] const std::vector<float>& B(int layer) const;

  // Packed-binary16 copies of W/B (bits of Half(w)), same row-major layout.
  // Pre-packed at initialisation so the vectorised FP16 kernels gather
  // half bits directly; Half::FromBits(PackedHalfW(l)[k]) ==
  // Half(W(l)[k]) exactly, which is the quantisation ForwardFp16 applies
  // on the fly. 64-byte aligned for SIMD loads.
  [[nodiscard]] const u16* PackedHalfW(int layer) const;
  [[nodiscard]] const u16* PackedHalfB(int layer) const;

 private:
  void PackHalfWeights();

  std::vector<float> w_[3];
  std::vector<float> b_[3];
  AlignedVector<u16> wh_[3];
  AlignedVector<u16> bh_[3];
};

}  // namespace spnerf
