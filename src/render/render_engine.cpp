#include "render/render_engine.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace spnerf {
namespace {

/// One (job, tile) work unit; its position in the task list indexes the
/// tile's stat accumulator shard.
struct TileTask {
  std::size_t job = 0;
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
};

struct TileAccum {
  RenderStats stats;
  DecodeCounters counters;
};

}  // namespace

RenderEngine::RenderEngine(RenderEngineOptions options) : options_(options) {
  SPNERF_CHECK_MSG(options_.tile_size > 0, "tile size must be positive");
  if (options_.pool == nullptr && options_.max_threads != 0 &&
      options_.max_threads > ThreadPool::Global().WorkerCount()) {
    // Explicit oversubscription: the caller asked for more workers than the
    // global pool detected cores, so give them a pool of that size.
    dedicated_ = std::make_unique<ThreadPool>(options_.max_threads);
  }
}

ThreadPool& RenderEngine::SchedulePool() const {
  if (options_.pool != nullptr) return *options_.pool;
  if (dedicated_ != nullptr) return *dedicated_;
  return ThreadPool::Global();
}

RenderResult RenderEngine::Render(const RenderJob& job) const {
  std::vector<RenderResult> results = RenderBatch({job});
  return std::move(results.front());
}

std::vector<RenderResult> RenderEngine::RenderBatch(
    const std::vector<RenderJob>& jobs) const {
  const auto start = std::chrono::steady_clock::now();
  std::vector<RenderResult> results(jobs.size());
  if (jobs.empty()) return results;

  // Deterministic tile decomposition: row-major tiles per job, jobs in batch
  // order. Shard indices follow the same enumeration, so the reduction below
  // is a fixed-order fold for a given batch regardless of scheduling.
  const int tile = options_.tile_size;
  std::vector<TileTask> tasks;
  std::vector<VolumeRenderer> renderers;
  renderers.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const RenderJob& job = jobs[j];
    SPNERF_CHECK_MSG(job.source != nullptr && job.mlp != nullptr,
                     "render job needs a field source and an MLP");
    renderers.emplace_back(job.options);
    results[j].image = Image(job.camera.Width(), job.camera.Height());
    for (int y = 0; y < job.camera.Height(); y += tile) {
      for (int x = 0; x < job.camera.Width(); x += tile) {
        TileTask t;
        t.job = j;
        t.x0 = x;
        t.y0 = y;
        t.x1 = std::min(x + tile, job.camera.Width());
        t.y1 = std::min(y + tile, job.camera.Height());
        tasks.push_back(t);
      }
    }
  }

  std::vector<TileAccum> shards(tasks.size());
  const auto render_tile = [&](std::size_t task_index) {
    const TileTask& t = tasks[task_index];
    const RenderJob& job = jobs[t.job];
    RenderStats* stats =
        job.collect_stats ? &shards[task_index].stats : nullptr;
    DecodeCounters* counters =
        job.collect_stats ? &shards[task_index].counters : nullptr;
    Image& img = results[t.job].image;
    const VolumeRenderer& renderer = renderers[t.job];
    for (int y = t.y0; y < t.y1; ++y) {
      for (int x = t.x0; x < t.x1; ++x) {
        img.At(x, y) = renderer.RenderRay(*job.source, *job.mlp,
                                          job.camera.PixelRay(x, y), stats,
                                          counters);
      }
    }
  };

  ThreadPool& pool = SchedulePool();
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      pool.ResolveWorkers(options_.max_threads), tasks.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) render_tile(i);
  } else {
    std::atomic<std::size_t> cursor{0};
    pool.RunOnWorkers(workers, [&](unsigned) {
      for (;;) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= tasks.size()) break;
        render_tile(i);
      }
    });
  }

  // Ordered reduction: shard order == tile enumeration order.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TileTask& t = tasks[i];
    if (!jobs[t.job].collect_stats) continue;
    results[t.job].stats.Merge(shards[i].stats);
    results[t.job].counters.Merge(shards[i].counters);
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  for (RenderResult& r : results) r.wall_ms = wall_ms;
  return results;
}

}  // namespace spnerf
